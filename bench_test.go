// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure. ns/op measures how fast the simulation runs on the host; the
// reproduced quantities (virtual-time latencies, bandwidths, run times)
// are attached as custom metrics so `go test -bench` output doubles as the
// experiment record.
package repro_test

import (
	"testing"

	"repro/internal/atm"
	"repro/internal/bench"
)

var opts = bench.Opts{Iters: 3}

// --- Figure 1: Meiko transfer mechanisms ------------------------------

func BenchmarkFigure1TransferMechanisms(b *testing.B) {
	var cross int
	for i := 0; i < b.N; i++ {
		c, err := bench.Figure1Crossover()
		if err != nil {
			b.Fatal(err)
		}
		cross = c
	}
	b.ReportMetric(float64(cross), "crossover_bytes")
}

func BenchmarkFigure1EagerRTT64B(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		v, err := bench.MeikoPingPong("lowlatency", 1<<20, 64, 3)
		if err != nil {
			b.Fatal(err)
		}
		us = v
	}
	b.ReportMetric(us, "virtual_us_rtt")
}

func BenchmarkFigure1RendezvousRTT64B(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		v, err := bench.MeikoPingPong("lowlatency", 1, 64, 3)
		if err != nil {
			b.Fatal(err)
		}
		us = v
	}
	b.ReportMetric(us, "virtual_us_rtt")
}

// --- Figure 2: Meiko round-trip latency -------------------------------

func BenchmarkFigure2LowLatency1B(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		v, err := bench.MeikoPingPong("lowlatency", 0, 1, 5)
		if err != nil {
			b.Fatal(err)
		}
		us = v
	}
	b.ReportMetric(us, "virtual_us_rtt") // paper: 104
}

func BenchmarkFigure2MPICH1B(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		v, err := bench.MeikoPingPong("mpich", 0, 1, 5)
		if err != nil {
			b.Fatal(err)
		}
		us = v
	}
	b.ReportMetric(us, "virtual_us_rtt") // paper: 210
}

func BenchmarkFigure2Tport1B(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.TportPingPong(1, 5)
	}
	b.ReportMetric(us, "virtual_us_rtt") // paper: 52
}

// --- Figure 3: Meiko bandwidth ----------------------------------------

func BenchmarkFigure3LowLatencyBandwidth(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		v, err := bench.MeikoBandwidth("lowlatency", 256<<10, 4)
		if err != nil {
			b.Fatal(err)
		}
		mbps = v
	}
	b.ReportMetric(mbps, "virtual_MBps") // paper: ~39
}

func BenchmarkFigure3MPICHBandwidth(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		v, err := bench.MeikoBandwidth("mpich", 256<<10, 4)
		if err != nil {
			b.Fatal(err)
		}
		mbps = v
	}
	b.ReportMetric(mbps, "virtual_MBps")
}

// --- Figure 4: ATM raw transport latency ------------------------------

func BenchmarkFigure4AAL4(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.RawAAL4PingPong(512, 5)
	}
	b.ReportMetric(us, "virtual_us_rtt")
}

func BenchmarkFigure4TCPOverATM(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.RawTCPPingPong(atm.OverATM, 512, 5)
	}
	b.ReportMetric(us, "virtual_us_rtt")
}

func BenchmarkFigure4UDPOverATM(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.RawUDPPingPong(atm.OverATM, 512, 5)
	}
	b.ReportMetric(us, "virtual_us_rtt")
}

// --- Figure 5: TCP round-trip latency ---------------------------------

func BenchmarkFigure5MPIOverTCPEthernet1B(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		v, err := bench.ClusterPingPong("tcp", "eth", 1, 5)
		if err != nil {
			b.Fatal(err)
		}
		us = v
	}
	b.ReportMetric(us, "virtual_us_rtt")
}

func BenchmarkFigure5MPIOverTCPATM1B(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		v, err := bench.ClusterPingPong("tcp", "atm", 1, 5)
		if err != nil {
			b.Fatal(err)
		}
		us = v
	}
	b.ReportMetric(us, "virtual_us_rtt")
}

func BenchmarkFigure5RawTCPEthernet1B(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.RawTCPPingPong(atm.OverEthernet, 1, 5)
	}
	b.ReportMetric(us, "virtual_us_rtt") // paper: 925
}

func BenchmarkFigure5RawTCPATM1B(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		us = bench.RawTCPPingPong(atm.OverATM, 1, 5)
	}
	b.ReportMetric(us, "virtual_us_rtt") // paper: 1065
}

// --- Table 1: overhead breakdown --------------------------------------

func BenchmarkTable1Breakdown(b *testing.B) {
	var tab bench.Table1Data
	for i := 0; i < b.N; i++ {
		t, err := bench.Table1(opts)
		if err != nil {
			b.Fatal(err)
		}
		tab = t
	}
	for _, r := range tab.Rows {
		_ = r
	}
	b.ReportMetric(tab.Rows[2].Eth, "readtype_eth_us") // paper: 65
	b.ReportMetric(tab.Rows[2].ATM, "readtype_atm_us") // paper: 85
	b.ReportMetric(tab.Rows[4].Eth, "match_us")        // paper: 35
}

// --- Figure 6: TCP bandwidth ------------------------------------------

func BenchmarkFigure6MPIOverTCPATM(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		v, err := bench.ClusterBandwidth("tcp", "atm", 64<<10, 4)
		if err != nil {
			b.Fatal(err)
		}
		mbps = v
	}
	b.ReportMetric(mbps, "virtual_MBps")
}

func BenchmarkFigure6MPIOverTCPEthernet(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		v, err := bench.ClusterBandwidth("tcp", "eth", 64<<10, 4)
		if err != nil {
			b.Fatal(err)
		}
		mbps = v
	}
	b.ReportMetric(mbps, "virtual_MBps")
}

// --- Figure 7: linear equation solver ---------------------------------

func BenchmarkFigure7LinsolveLowLatency8P(b *testing.B) {
	var sec float64
	for i := 0; i < b.N; i++ {
		v, err := bench.LinsolveMeiko("lowlatency", 8, 64)
		if err != nil {
			b.Fatal(err)
		}
		sec = v
	}
	b.ReportMetric(sec*1000, "virtual_ms")
}

func BenchmarkFigure7LinsolveMPICH8P(b *testing.B) {
	var sec float64
	for i := 0; i < b.N; i++ {
		v, err := bench.LinsolveMeiko("mpich", 8, 64)
		if err != nil {
			b.Fatal(err)
		}
		sec = v
	}
	b.ReportMetric(sec*1000, "virtual_ms")
}

// --- Figure 8: Meiko particle ring ------------------------------------

func BenchmarkFigure8ParticlesLowLatency8P(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		v, err := bench.ParticlesMeiko("lowlatency", 8, 24)
		if err != nil {
			b.Fatal(err)
		}
		us = v
	}
	b.ReportMetric(us, "virtual_us")
}

func BenchmarkFigure8ParticlesMPICH8P(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		v, err := bench.ParticlesMeiko("mpich", 8, 24)
		if err != nil {
			b.Fatal(err)
		}
		us = v
	}
	b.ReportMetric(us, "virtual_us")
}

// --- Figure 9: cluster particle ring ----------------------------------

func BenchmarkFigure9ParticlesEthernet4P(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		v, err := bench.ParticlesCluster("eth", 4, 128)
		if err != nil {
			b.Fatal(err)
		}
		us = v
	}
	b.ReportMetric(us, "virtual_us")
}

func BenchmarkFigure9ParticlesATM4P(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		v, err := bench.ParticlesCluster("atm", 4, 128)
		if err != nil {
			b.Fatal(err)
		}
		us = v
	}
	b.ReportMetric(us, "virtual_us")
}

// --- Ablations ---------------------------------------------------------

func BenchmarkAblationThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationThreshold(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBcastAlgorithms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationBcast(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationUDPLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationUDPLoss(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNonblockingOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationNonblockingOverlap(opts); err != nil {
			b.Fatal(err)
		}
	}
}
