// Command apps runs the application experiments of section 6: the linear
// equation solver (Figure 7), the Meiko particle ring (Figure 8), the
// cluster particle ring (Figure 9), and the matrix multiply.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	fig := flag.Int("fig", 0, "figure to run (7, 8 or 9); 0 runs all")
	matmul := flag.Bool("matmul", false, "run the matrix multiply")
	full := flag.Bool("full", false, "full sweep ranges (32 processes, N=128)")
	iters := flag.Int("iters", 3, "repetitions per point")
	flag.Parse()

	o := bench.Opts{Iters: *iters, Full: *full}
	fns := map[int]func(bench.Opts) (bench.Figure, error){
		7: bench.Figure7, 8: bench.Figure8, 9: bench.Figure9,
	}
	for i := 7; i <= 9; i++ {
		if *fig != 0 && *fig != i {
			continue
		}
		f, err := fns[i](o)
		if err != nil {
			log.Fatalf("figure %d: %v", i, err)
		}
		fmt.Println(f)
	}
	if *matmul || *fig == 0 {
		f, err := bench.MatMulMeiko(o)
		if err != nil {
			log.Fatalf("matmul: %v", err)
		}
		fmt.Println(f)
	}
}
