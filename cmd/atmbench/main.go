// Command atmbench runs the cluster microbenchmarks: Figure 4 (raw ATM
// transports), Figure 5 (TCP latency), Figure 6 (TCP bandwidth) and
// Table 1 (overhead breakdown).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	fig := flag.Int("fig", 0, "figure to run (4, 5 or 6); 0 runs all")
	table := flag.Bool("table1", false, "regenerate Table 1")
	full := flag.Bool("full", false, "full sweep ranges")
	iters := flag.Int("iters", 5, "repetitions per point")
	flag.Parse()

	o := bench.Opts{Iters: *iters, Full: *full}
	fns := map[int]func(bench.Opts) (bench.Figure, error){
		4: bench.Figure4, 5: bench.Figure5, 6: bench.Figure6,
	}
	ranAny := false
	for i := 4; i <= 6; i++ {
		if *fig != 0 && *fig != i {
			continue
		}
		f, err := fns[i](o)
		if err != nil {
			log.Fatalf("figure %d: %v", i, err)
		}
		fmt.Println(f)
		ranAny = true
	}
	if *table || (!ranAny && *fig == 0) || *fig == 0 {
		tab, err := bench.Table1(o)
		if err != nil {
			log.Fatalf("table 1: %v", err)
		}
		fmt.Println(tab)
	}
}
