// Command meikobench runs the Meiko CS/2 microbenchmarks: Figure 1
// (transfer mechanisms), Figure 2 (round-trip latency) and Figure 3
// (bandwidth).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	fig := flag.Int("fig", 0, "figure to run (1, 2 or 3); 0 runs all")
	full := flag.Bool("full", false, "full sweep ranges")
	iters := flag.Int("iters", 5, "repetitions per point")
	flag.Parse()

	o := bench.Opts{Iters: *iters, Full: *full}
	fns := map[int]func(bench.Opts) (bench.Figure, error){
		1: bench.Figure1, 2: bench.Figure2, 3: bench.Figure3,
	}
	for i := 1; i <= 3; i++ {
		if *fig != 0 && *fig != i {
			continue
		}
		f, err := fns[i](o)
		if err != nil {
			log.Fatalf("figure %d: %v", i, err)
		}
		fmt.Println(f)
	}
}
