// Command mpirun launches any of the built-in applications on either
// modeled platform — the front door for kicking the tires:
//
//	mpirun -np 8 -app linsolve -platform meiko -impl lowlatency -n 128
//	mpirun -np 4 -app particles -platform cluster -net eth
//	mpirun -np 8 -app samplesort -platform cluster -transport unet
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/atm"
	"repro/mpi"
	"repro/platform/cluster"
	"repro/platform/meiko"
)

func main() {
	log.SetFlags(0)
	np := flag.Int("np", 4, "number of ranks")
	app := flag.String("app", "linsolve", "linsolve | matmul | particles | samplesort")
	platform := flag.String("platform", "meiko", "meiko | cluster")
	impl := flag.String("impl", "lowlatency", "meiko implementation: lowlatency | mpich")
	transport := flag.String("transport", "tcp", "cluster transport: tcp | udp | unet")
	network := flag.String("net", "atm", "cluster network: atm | eth")
	n := flag.Int("n", 0, "problem size (0 = per-app default)")
	seed := flag.Int64("seed", 1, "workload seed")
	fattree := flag.Bool("fattree", false, "meiko: staged fat-tree congestion model")
	flag.Parse()

	secPerFlop := apps.MeikoSecPerFlop
	if *platform == "cluster" {
		secPerFlop = apps.SGISecPerFlop
	}

	body := func(c *mpi.Comm) error {
		switch *app {
		case "linsolve":
			size := *n
			if size == 0 {
				size = 96
			}
			res, err := apps.Linsolve(c, apps.LinsolveConfig{N: size, SecPerFlop: secPerFlop, Seed: *seed})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("linsolve N=%d: %.4fs virtual, residual %.2e\n", size, res.Elapsed.Seconds(), res.Residual)
			}
		case "matmul":
			size := *n
			if size == 0 {
				size = 64
			}
			res, err := apps.MatMul(c, apps.MatMulConfig{N: size, SecPerFlop: secPerFlop, Seed: *seed})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("matmul N=%d: %.4fs virtual, max error %.2e\n", size, res.Elapsed.Seconds(), res.MaxError)
			}
		case "particles":
			size := *n
			if size == 0 {
				size = 24
				for size%*np != 0 {
					size += 24
				}
			}
			res, err := apps.Particles(c, apps.ParticlesConfig{N: size, SecPerFlop: secPerFlop, Seed: *seed})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("particles N=%d: %.1fus virtual\n", size, float64(res.Elapsed)/1e3)
			}
		case "samplesort":
			size := *n
			if size == 0 {
				size = 128 * *np
			}
			res, err := apps.SampleSort(c, apps.SampleSortConfig{N: size, SecPerFlop: secPerFlop, Seed: *seed})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("samplesort N=%d: %.1fus virtual, rank0 holds %d keys\n", size, float64(res.Elapsed)/1e3, len(res.Sorted))
			}
		default:
			return fmt.Errorf("unknown app %q", *app)
		}
		return nil
	}

	var rep *mpi.Report
	var err error
	switch *platform {
	case "meiko":
		im := meiko.LowLatency
		if *impl == "mpich" {
			im = meiko.MPICH
		}
		rep, err = meiko.Run(meiko.Config{Nodes: *np, Impl: im, FatTree: *fattree}, body)
	case "cluster":
		tr := cluster.TCP
		switch *transport {
		case "udp":
			tr = cluster.UDP
		case "unet":
			tr = cluster.UNET
		}
		net := atm.OverATM
		if *network == "eth" {
			net = atm.OverEthernet
		}
		rep, err = cluster.Run(cluster.Config{Hosts: *np, Transport: tr, Network: net}, body)
	default:
		log.Fatalf("unknown platform %q", *platform)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job: %d ranks, finished at virtual t=%v (%d sends, %d receives)\n",
		*np, rep.MaxRankElapsed, rep.Acct.Count["send"], rep.Acct.Count["recv"])
}
