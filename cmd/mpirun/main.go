// Command mpirun launches any of the built-in applications on any
// registered backend — the front door for kicking the tires:
//
//	mpirun -np 8 -app linsolve -platform meiko -impl lowlatency -n 128
//	mpirun -np 4 -app particles -platform cluster -net eth
//	mpirun -np 8 -app samplesort -platform cluster -transport unet
//
// Backends come from platform/registry; -platform/-impl/-transport
// resolve through registry.Run, whose typed errors list the registered
// backends (or algorithms, for -coll) on a typo instead of silently
// falling back to a default.
//
// Exit codes under fault injection (-kill): 0 means the job completed
// with its full membership, 2 means members died but the survivors
// recovered (revoke + shrink) and completed, and 1 means the job failed —
// a death the application did not survive, or any other error.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/mpi"
	"repro/platform/registry"

	_ "repro/platform/cluster"
	_ "repro/platform/meiko"
)

// appNames lists the launchable applications, for validation and usage.
var appNames = []string{"linsolve", "matmul", "particles", "samplesort", "ftshrink"}

func main() {
	log.SetFlags(0)
	np := flag.Int("np", 4, "number of ranks")
	app := flag.String("app", "linsolve", strings.Join(appNames, " | "))
	platform := flag.String("platform", "meiko", "meiko | cluster | mem")
	impl := flag.String("impl", "", "meiko implementation: lowlatency | mpich (default lowlatency)")
	transport := flag.String("transport", "", "cluster transport: tcp | udp | unet | shm (default tcp)")
	network := flag.String("net", "", "cluster network: atm | eth (default atm)")
	n := flag.Int("n", 0, "problem size (0 = per-app default)")
	seed := flag.Int64("seed", 1, "workload seed")
	fattree := flag.Bool("fattree", false, "meiko: staged fat-tree congestion model")
	lanes := flag.Int("lanes", 0, "run on the sharded kernel with this many lanes (0 = single-lane kernel)")
	parallel := flag.Bool("parallel", false, "with -lanes: execute epochs on pinned worker goroutines")
	collTune := flag.String("coll", "", `force collective algorithms, e.g. "bcast=pipelined,allreduce=rsag" (default auto-select)`)
	loss := flag.Float64("loss", 0, "cluster: per-frame loss probability (datagram traffic)")
	delay := flag.Duration("delay", 0, "cluster: fixed one-way latency added per frame")
	jitter := flag.Duration("jitter", 0, "cluster: extra uniform per-frame latency in [0, jitter)")
	reorder := flag.Float64("reorder", 0, "cluster: per-frame reordering probability")
	dup := flag.Float64("dup", 0, "cluster: per-frame duplication probability")
	dropnth := flag.Int("dropnth", 0, "cluster: deterministically drop every Nth frame")
	partition := flag.String("partition", "", `cluster: partition schedule, e.g. "0-1@5ms:20ms;2-*" (A-B[@FROM:UNTIL], * = any host)`)
	faultseed := flag.Int64("faultseed", 0, "cluster: fault-injection RNG seed (0 = derive from -seed)")
	nortr := flag.Bool("nortr", false, "cluster: disable the RDMA-write rendezvous (pin large sends to RTS/CTS)")
	kill := flag.String("kill", "", `process-death schedule, e.g. "2@5ms;3@8ms" (RANK@T; any backend)`)
	treefault := flag.String("treefault", "", `meiko: switch-plane outage schedule, e.g. "1:0@5ms-20ms" (STAGE:LANE@FROM[-UNTIL]; implies -fattree)`)
	flag.Parse()

	validApp := false
	for _, name := range appNames {
		if *app == name {
			validApp = true
			break
		}
	}
	if !validApp {
		log.Fatalf("mpirun: unknown app %q\napps: %s", *app, strings.Join(appNames, ", "))
	}

	spec := registry.Spec{
		Platform:   *platform,
		Impl:       *impl,
		Transport:  *transport,
		Network:    *network,
		Ranks:      *np,
		Lanes:      *lanes,
		Parallel:   *parallel,
		Seed:       *seed,
		FatTree:    *fattree,
		Coll:       *collTune,
		LossRate:   *loss,
		Delay:      *delay,
		Jitter:     *jitter,
		Reorder:    *reorder,
		Duplicate:  *dup,
		DropEveryN: *dropnth,
		Partition:  *partition,
		FaultSeed:  *faultseed,
		NoRTR:      *nortr,
		Kills:      *kill,
		TreeFaults: *treefault,
	}

	secPerFlop := apps.MeikoSecPerFlop
	if *platform == "cluster" {
		secPerFlop = apps.SGISecPerFlop
	}

	// Survival bookkeeping for the exit-code contract: bodies run as
	// concurrent procs, so the tallies take a lock (the parallel kernel
	// really does run them on multiple OS threads).
	var (
		ftMu     sync.Mutex
		ftDied   int
		ftShrunk int
	)

	body := func(c *mpi.Comm) error {
		switch *app {
		case "linsolve":
			size := *n
			if size == 0 {
				size = 96
			}
			res, err := apps.Linsolve(c, apps.LinsolveConfig{N: size, SecPerFlop: secPerFlop, Seed: *seed})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("linsolve N=%d: %.4fs virtual, residual %.2e\n", size, res.Elapsed.Seconds(), res.Residual)
			}
		case "matmul":
			size := *n
			if size == 0 {
				size = 64
			}
			res, err := apps.MatMul(c, apps.MatMulConfig{N: size, SecPerFlop: secPerFlop, Seed: *seed})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("matmul N=%d: %.4fs virtual, max error %.2e\n", size, res.Elapsed.Seconds(), res.MaxError)
			}
		case "particles":
			size := *n
			if size == 0 {
				size = 24
				for size%*np != 0 {
					size += 24
				}
			}
			res, err := apps.Particles(c, apps.ParticlesConfig{N: size, SecPerFlop: secPerFlop, Seed: *seed})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("particles N=%d: %.1fus virtual\n", size, float64(res.Elapsed)/1e3)
			}
		case "samplesort":
			size := *n
			if size == 0 {
				size = 128 * *np
			}
			res, err := apps.SampleSort(c, apps.SampleSortConfig{N: size, SecPerFlop: secPerFlop, Seed: *seed})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("samplesort N=%d: %.1fus virtual, rank0 holds %d keys\n", size, float64(res.Elapsed)/1e3, len(res.Sorted))
			}
		case "ftshrink":
			res, err := apps.FTShrink(c, apps.FTShrinkConfig{Compute: 100 * time.Microsecond})
			if err != nil {
				return err
			}
			ftMu.Lock()
			if res.Died {
				ftDied++
			}
			if res.Shrunk {
				ftShrunk++
			}
			ftMu.Unlock()
			if !res.Died && res.NewRank == 0 {
				fmt.Printf("ftshrink: sum %d over %d survivors (shrunk=%v), %.1fus virtual\n",
					res.Sum, res.Survivors, res.Shrunk, float64(res.Elapsed.Nanoseconds())/1e3)
			}
		}
		return nil
	}

	rep, err := registry.Run(spec, body)
	if err != nil {
		// registry.Build's typed errors carry the registered backend and
		// algorithm listings, so a typo prints them instead of a usage dump.
		// A death the application did not survive lands here too: the
		// victim's (or a stuck survivor's) body error is world-fatal.
		log.Fatalf("mpirun: %v", err)
	}
	fmt.Printf("job: %d ranks on %s, finished at virtual t=%v (%d sends, %d receives)\n",
		*np, spec.Key(), rep.MaxRankElapsed, rep.Acct.Count["send"], rep.Acct.Count["recv"])
	if ftDied > 0 {
		fmt.Printf("faults: %d rank(s) killed, %d survivor(s) recovered by shrink\n", ftDied, ftShrunk)
		os.Exit(2) // survived-with-shrink: degraded success, not failure
	}
}
