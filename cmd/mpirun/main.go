// Command mpirun launches any of the built-in applications on any
// registered backend — the front door for kicking the tires:
//
//	mpirun -np 8 -app linsolve -platform meiko -impl lowlatency -n 128
//	mpirun -np 4 -app particles -platform cluster -net eth
//	mpirun -np 8 -app samplesort -platform cluster -transport unet
//
// Backends come from platform/registry; -platform/-impl/-transport
// resolve through registry.Run, whose typed errors list the registered
// backends (or algorithms, for -coll) on a typo instead of silently
// falling back to a default.
//
// Instead of -app, -workload drives a macro-workload pattern
// (internal/workload) and -record saves its event stream as a binary
// trace; -replay re-runs a saved trace and verifies the fresh timeline
// reproduces it event for event:
//
//	mpirun -workload halo -record t.bin
//	mpirun -replay t.bin
//	mpirun -replay t.bin -lanes 8 -parallel   # cross-kernel determinism
//
// A replay that diverges prints the first divergent event (rank, virtual
// time, op) and exits 1.
//
// Exit codes under fault injection (-kill): 0 means the job completed
// with its full membership, 2 means members died but the survivors
// recovered (revoke + shrink) and completed, and 1 means the job failed —
// a death the application did not survive, or any other error.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/workload"
	"repro/mpi"
	"repro/platform/registry"

	_ "repro/platform/cluster"
	_ "repro/platform/meiko"
)

// appNames lists the launchable applications, for validation and usage.
var appNames = []string{"linsolve", "matmul", "particles", "samplesort", "ftshrink"}

func main() {
	log.SetFlags(0)
	np := flag.Int("np", 4, "number of ranks")
	app := flag.String("app", "linsolve", strings.Join(appNames, " | "))
	platform := flag.String("platform", "meiko", "meiko | cluster | mem")
	impl := flag.String("impl", "", "meiko implementation: lowlatency | mpich (default lowlatency)")
	transport := flag.String("transport", "", "cluster transport: tcp | udp | unet | shm (default tcp)")
	network := flag.String("net", "", "cluster network: atm | eth (default atm)")
	n := flag.Int("n", 0, "problem size (0 = per-app default)")
	seed := flag.Int64("seed", 1, "workload seed")
	fattree := flag.Bool("fattree", false, "meiko: staged fat-tree congestion model")
	lanes := flag.Int("lanes", 0, "run on the sharded kernel with this many lanes (0 = single-lane kernel)")
	parallel := flag.Bool("parallel", false, "with -lanes: execute epochs on pinned worker goroutines")
	collTune := flag.String("coll", "", `force collective algorithms, e.g. "bcast=pipelined,allreduce=rsag" (default auto-select)`)
	loss := flag.Float64("loss", 0, "cluster: per-frame loss probability (datagram traffic)")
	delay := flag.Duration("delay", 0, "cluster: fixed one-way latency added per frame")
	jitter := flag.Duration("jitter", 0, "cluster: extra uniform per-frame latency in [0, jitter)")
	reorder := flag.Float64("reorder", 0, "cluster: per-frame reordering probability")
	dup := flag.Float64("dup", 0, "cluster: per-frame duplication probability")
	dropnth := flag.Int("dropnth", 0, "cluster: deterministically drop every Nth frame")
	partition := flag.String("partition", "", `cluster: partition schedule, e.g. "0-1@5ms:20ms;2-*" (A-B[@FROM:UNTIL], * = any host)`)
	faultseed := flag.Int64("faultseed", 0, "cluster: fault-injection RNG seed (0 = derive from -seed)")
	nortr := flag.Bool("nortr", false, "cluster: disable the RDMA-write rendezvous (pin large sends to RTS/CTS)")
	kill := flag.String("kill", "", `process-death schedule, e.g. "2@5ms;3@8ms" (RANK@T; any backend)`)
	treefault := flag.String("treefault", "", `meiko: switch-plane outage schedule, e.g. "1:0@5ms-20ms" (STAGE:LANE@FROM[-UNTIL]; implies -fattree)`)
	wl := flag.String("workload", "", "run a macro-workload pattern instead of -app: "+strings.Join(workload.Names(), " | "))
	record := flag.String("record", "", "with -workload: write the recorded binary trace here")
	replay := flag.String("replay", "", "replay a recorded trace (world rebuilt from its header; -lanes/-parallel may override the kernel)")
	steps := flag.Int("steps", 0, "workload iterations per rank (0 = default 20)")
	wbytes := flag.Int("bytes", 0, "workload per-message payload bytes (0 = default 1024)")
	rate := flag.Float64("rate", 0, "rpc workload: mean arrivals/sec per client (0 = default 2000)")
	arrival := flag.String("arrival", "", "rpc workload arrival process: "+strings.Join(workload.ArrivalNames(), " | ")+" (default poisson)")
	flag.Parse()

	if *replay != "" {
		os.Exit(replayTrace(*replay, *lanes, *parallel))
	}

	validApp := false
	for _, name := range appNames {
		if *app == name {
			validApp = true
			break
		}
	}
	if !validApp && *wl == "" {
		log.Fatalf("mpirun: unknown app %q\napps: %s", *app, strings.Join(appNames, ", "))
	}

	spec := registry.Spec{
		Platform:   *platform,
		Impl:       *impl,
		Transport:  *transport,
		Network:    *network,
		Ranks:      *np,
		Lanes:      *lanes,
		Parallel:   *parallel,
		Seed:       *seed,
		FatTree:    *fattree,
		Coll:       *collTune,
		LossRate:   *loss,
		Delay:      *delay,
		Jitter:     *jitter,
		Reorder:    *reorder,
		Duplicate:  *dup,
		DropEveryN: *dropnth,
		Partition:  *partition,
		FaultSeed:  *faultseed,
		NoRTR:      *nortr,
		Kills:      *kill,
		TreeFaults: *treefault,
		Workload:   *wl,
	}

	if *wl != "" {
		cfg := workload.Config{
			Pattern: *wl, Backend: spec.Key(), Ranks: *np,
			Lanes: *lanes, Parallel: *parallel, Seed: *seed,
			Steps: *steps, Bytes: *wbytes, Rate: *rate, Arrival: *arrival,
		}
		os.Exit(runWorkload(spec, cfg, *record))
	}

	secPerFlop := apps.MeikoSecPerFlop
	if *platform == "cluster" {
		secPerFlop = apps.SGISecPerFlop
	}

	// Survival bookkeeping for the exit-code contract: bodies run as
	// concurrent procs, so the tallies take a lock (the parallel kernel
	// really does run them on multiple OS threads).
	var (
		ftMu     sync.Mutex
		ftDied   int
		ftShrunk int
	)

	body := func(c *mpi.Comm) error {
		switch *app {
		case "linsolve":
			size := *n
			if size == 0 {
				size = 96
			}
			res, err := apps.Linsolve(c, apps.LinsolveConfig{N: size, SecPerFlop: secPerFlop, Seed: *seed})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("linsolve N=%d: %.4fs virtual, residual %.2e\n", size, res.Elapsed.Seconds(), res.Residual)
			}
		case "matmul":
			size := *n
			if size == 0 {
				size = 64
			}
			res, err := apps.MatMul(c, apps.MatMulConfig{N: size, SecPerFlop: secPerFlop, Seed: *seed})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("matmul N=%d: %.4fs virtual, max error %.2e\n", size, res.Elapsed.Seconds(), res.MaxError)
			}
		case "particles":
			size := *n
			if size == 0 {
				size = 24
				for size%*np != 0 {
					size += 24
				}
			}
			res, err := apps.Particles(c, apps.ParticlesConfig{N: size, SecPerFlop: secPerFlop, Seed: *seed})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("particles N=%d: %.1fus virtual\n", size, float64(res.Elapsed)/1e3)
			}
		case "samplesort":
			size := *n
			if size == 0 {
				size = 128 * *np
			}
			res, err := apps.SampleSort(c, apps.SampleSortConfig{N: size, SecPerFlop: secPerFlop, Seed: *seed})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("samplesort N=%d: %.1fus virtual, rank0 holds %d keys\n", size, float64(res.Elapsed)/1e3, len(res.Sorted))
			}
		case "ftshrink":
			res, err := apps.FTShrink(c, apps.FTShrinkConfig{Compute: 100 * time.Microsecond})
			if err != nil {
				return err
			}
			ftMu.Lock()
			if res.Died {
				ftDied++
			}
			if res.Shrunk {
				ftShrunk++
			}
			ftMu.Unlock()
			if !res.Died && res.NewRank == 0 {
				fmt.Printf("ftshrink: sum %d over %d survivors (shrunk=%v), %.1fus virtual\n",
					res.Sum, res.Survivors, res.Shrunk, float64(res.Elapsed.Nanoseconds())/1e3)
			}
		}
		return nil
	}

	rep, err := registry.Run(spec, body)
	if err != nil {
		// registry.Build's typed errors carry the registered backend and
		// algorithm listings, so a typo prints them instead of a usage dump.
		// A death the application did not survive lands here too: the
		// victim's (or a stuck survivor's) body error is world-fatal.
		log.Fatalf("mpirun: %v", err)
	}
	fmt.Printf("job: %d ranks on %s, finished at virtual t=%v (%d sends, %d receives)\n",
		*np, spec.Key(), rep.MaxRankElapsed, rep.Acct.Count["send"], rep.Acct.Count["recv"])
	if ftDied > 0 {
		fmt.Printf("faults: %d rank(s) killed, %d survivor(s) recovered by shrink\n", ftDied, ftShrunk)
		os.Exit(2) // survived-with-shrink: degraded success, not failure
	}
}

// runWorkload records one workload run, prints its SLO summary, and
// optionally saves the binary trace. Returns the process exit code.
func runWorkload(spec registry.Spec, cfg workload.Config, recordPath string) int {
	w, err := registry.Build(spec)
	if err != nil {
		log.Printf("mpirun: %v", err)
		return 1
	}
	res, err := workload.Run(w, cfg)
	if err != nil {
		log.Printf("mpirun: workload: %v", err)
		return 1
	}
	printSummary(spec.Key(), res)
	if recordPath != "" {
		data := res.Trace.Marshal()
		if err := os.WriteFile(recordPath, data, 0o644); err != nil {
			log.Printf("mpirun: %v", err)
			return 1
		}
		fmt.Printf("recorded %d events (%d bytes) to %s\n", len(res.Trace.Events), len(data), recordPath)
	}
	return 0
}

// replayTrace re-runs a saved trace on a world rebuilt from its header
// (kernel overridable via -lanes/-parallel) and verifies determinism.
func replayTrace(path string, lanes int, parallel bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Printf("mpirun: %v", err)
		return 1
	}
	tr, err := workload.Unmarshal(data)
	if err != nil {
		log.Printf("mpirun: %s: %v", path, err)
		return 1
	}
	spec := registry.SpecFor(tr.Cfg.Backend)
	spec.Ranks = tr.Cfg.Ranks
	spec.Seed = tr.Cfg.Seed
	spec.Workload = tr.Cfg.Pattern
	spec.Lanes, spec.Parallel = tr.Cfg.Lanes, tr.Cfg.Parallel
	if lanes > 0 {
		spec.Lanes, spec.Parallel = lanes, parallel
	}
	w, err := registry.Build(spec)
	if err != nil {
		log.Printf("mpirun: %v", err)
		return 1
	}
	res, err := workload.Replay(w, tr)
	if err != nil {
		log.Printf("mpirun: %v", err)
		return 1
	}
	printSummary(spec.Key(), res)
	fmt.Printf("replay ok: %d events reproduced bit-identically\n", len(tr.Events))
	return 0
}

func printSummary(backend string, res *workload.Result) {
	s := res.Summary
	fmt.Printf("workload %s on %s: %d SLO events, elapsed %.1fus virtual\n",
		s.Pattern, backend, s.Events, s.ElapsedUS)
	fmt.Printf("latency p50/p99/p999 %.1f/%.1f/%.1f us; throughput %.0f ops/s, %.2f MB/s\n",
		s.P50US, s.P99US, s.P999US, s.OpsPerSec, s.MBPerSec)
}
