// Command repro regenerates every table and figure of the paper's
// evaluation, printing the same series the paper plots.
//
// Usage:
//
//	repro -all              # every figure, table and ablation
//	repro -fig 1,2,7        # specific figures
//	repro -table1           # the overhead breakdown
//	repro -ablations        # the extension experiments
//	repro -full             # paper-complete sweep ranges (slower)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	figs := flag.String("fig", "", "comma-separated figure numbers (1-9)")
	table1 := flag.Bool("table1", false, "regenerate Table 1")
	matmul := flag.Bool("matmul", false, "run the matrix-multiply experiment (§6.1)")
	ablations := flag.Bool("ablations", false, "run the ablation experiments")
	anchors := flag.Bool("anchors", false, "print the calibration-anchor comparison")
	collectives := flag.Bool("collectives", false, "sweep every collective algorithm across sizes and derive crossovers")
	faults := flag.Bool("faults", false, "sweep latency and bandwidth across injected loss rates on every cluster transport")
	matchbench := flag.Bool("matchbench", false, "run the receive-matching microbenchmarks (indexed vs linear, allocation profile)")
	rma := flag.Bool("rma", false, "run the one-sided (RMA) sweep and the RDMA-write rendezvous ablation")
	scale := flag.Bool("scale", false, "run the kernel scale sweep (sharded vs single-lane, 64-4096 ranks; 16384 with -full)")
	chaos := flag.Bool("chaos", false, "sweep kill schedules x loss over every kill-capable backend and lane count")
	workloads := flag.Bool("workloads", false, "sweep every macro-workload pattern across backends x kernels with record/replay verification")
	all := flag.Bool("all", false, "run everything")
	full := flag.Bool("full", false, "use the paper's full sweep ranges")
	iters := flag.Int("iters", 5, "repetitions per point")
	svgDir := flag.String("svg", "", "also write each figure as an SVG chart into this directory")
	jsonPath := flag.String("json", "BENCH_anchors.json", "with -anchors: write the machine-readable record here (\"\" disables)")
	collJSONPath := flag.String("colljson", "BENCH_collectives.json", "with -collectives: write the machine-readable record here (\"\" disables)")
	faultsJSONPath := flag.String("faultsjson", "BENCH_faults.json", "with -faults: write the machine-readable record here (\"\" disables)")
	matchJSONPath := flag.String("matchjson", "BENCH_match.json", "with -matchbench: write the machine-readable record here (\"\" disables)")
	matchBaseline := flag.String("matchbaseline", "", "with -matchbench: compare against this committed baseline and exit nonzero on >10% regression")
	rmaJSONPath := flag.String("rmajson", "BENCH_rma.json", "with -rma: write the machine-readable record here (\"\" disables)")
	rmaBaseline := flag.String("rmabaseline", "", "with -rma: compare against this committed baseline and exit nonzero on regression (the RTR>RTS/CTS floor applies regardless)")
	scaleJSONPath := flag.String("scalejson", "BENCH_scale.json", "with -scale: write the machine-readable record here (\"\" disables)")
	scaleBaseline := flag.String("scalebaseline", "", "with -scale: compare against this committed baseline and exit nonzero on >10% events/sec regression or any allocs/op increase")
	chaosJSONPath := flag.String("chaosjson", "BENCH_chaos.json", "with -chaos: write the machine-readable record here (\"\" disables)")
	chaosBaseline := flag.String("chaosbaseline", "", "with -chaos: compare against this committed baseline and exit nonzero on lost survival or >10% latency regression (the 100%-survival floor for single-failure schedules applies regardless)")
	workloadsJSONPath := flag.String("workloadsjson", "BENCH_workloads.json", "with -workloads: write the machine-readable record here (\"\" disables)")
	workloadsBaseline := flag.String("workloadsbaseline", "", "with -workloads: compare against this committed baseline and exit nonzero on a dropped point or >10% p99/throughput regression (the byte-identical re-record and replay floors apply regardless)")
	flag.Parse()

	o := bench.Opts{Iters: *iters, Full: *full}
	var figures []bench.Figure
	emit := func(f bench.Figure) {
		fmt.Println(f)
		figures = append(figures, f)
		if *svgDir == "" {
			return
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			log.Fatal(err)
		}
		name := strings.ToLower(strings.ReplaceAll(strings.ReplaceAll(f.ID, " ", "-"), "§", "s")) + ".svg"
		path := filepath.Join(*svgDir, name)
		if err := os.WriteFile(path, []byte(f.SVG()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s\n\n", path)
	}

	want := map[string]bool{}
	if *figs != "" {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	if *all {
		for i := 1; i <= 9; i++ {
			want[fmt.Sprint(i)] = true
		}
		*table1 = true
		*matmul = true
		*ablations = true
	}
	if *all {
		*anchors = true
		*collectives = true
		*faults = true
		*matchbench = true
		*rma = true
		*scale = true
		*chaos = true
		*workloads = true
	}
	if len(want) == 0 && !*table1 && !*matmul && !*ablations && !*anchors && !*collectives && !*faults && !*matchbench && !*rma && !*scale && !*chaos && !*workloads {
		flag.Usage()
		return
	}
	var anchorTable []bench.Anchor
	if *anchors {
		as, err := bench.Anchors(o)
		if err != nil {
			log.Fatalf("anchors: %v", err)
		}
		anchorTable = as
		fmt.Println(bench.FormatAnchors(as))
	}

	type figFn func(bench.Opts) (bench.Figure, error)
	figFns := map[string]figFn{
		"1": bench.Figure1, "2": bench.Figure2, "3": bench.Figure3,
		"4": bench.Figure4, "5": bench.Figure5, "6": bench.Figure6,
		"7": bench.Figure7, "8": bench.Figure8, "9": bench.Figure9,
	}
	for i := 1; i <= 9; i++ {
		id := fmt.Sprint(i)
		if !want[id] {
			continue
		}
		f, err := figFns[id](o)
		if err != nil {
			log.Fatalf("figure %s: %v", id, err)
		}
		emit(f)
	}
	if *table1 {
		tab, err := bench.Table1(o)
		if err != nil {
			log.Fatalf("table 1: %v", err)
		}
		fmt.Println(tab)
	}
	if *matmul {
		f, err := bench.MatMulMeiko(o)
		if err != nil {
			log.Fatalf("matmul: %v", err)
		}
		emit(f)
	}
	if *ablations {
		for _, fn := range []figFn{
			bench.AblationThreshold,
			bench.AblationBcast,
			bench.AblationBcastLarge,
			bench.AblationUDPLoss,
			bench.AblationNagle,
			bench.AblationUNet,
			bench.AblationSlots,
			bench.AblationCredits,
			bench.AblationMatchLocation,
			bench.AblationNonblockingOverlap,
		} {
			f, err := fn(o)
			if err != nil {
				log.Fatalf("ablation: %v", err)
			}
			emit(f)
		}
	}

	if *collectives {
		rep, err := bench.Collectives(o)
		if err != nil {
			log.Fatalf("collectives: %v", err)
		}
		fmt.Println(bench.FormatCollectives(rep))
		if *collJSONPath != "" {
			data, err := rep.Marshal()
			if err != nil {
				log.Fatalf("collectives json: %v", err)
			}
			if err := os.WriteFile(*collJSONPath, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", *collJSONPath)
		}
	}

	if *faults {
		rep, err := bench.Faults(o)
		if err != nil {
			log.Fatalf("faults: %v", err)
		}
		fmt.Println(bench.FormatFaults(rep))
		if *faultsJSONPath != "" {
			data, err := rep.Marshal()
			if err != nil {
				log.Fatalf("faults json: %v", err)
			}
			if err := os.WriteFile(*faultsJSONPath, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", *faultsJSONPath)
		}
	}

	if *matchbench {
		// Read the baseline before writing the fresh record, so the gate can
		// compare and overwrite the same path (CI uploads the fresh copy as
		// an artifact).
		var base *bench.MatchReport
		if *matchBaseline != "" {
			data, err := os.ReadFile(*matchBaseline)
			if err != nil {
				log.Fatalf("matchbench baseline: %v", err)
			}
			b, err := bench.UnmarshalMatch(data)
			if err != nil {
				log.Fatalf("matchbench baseline: %v", err)
			}
			base = &b
		}
		rep, err := bench.MatchBench(o)
		if err != nil {
			log.Fatalf("matchbench: %v", err)
		}
		fmt.Println(bench.FormatMatch(rep))
		if *matchJSONPath != "" {
			data, err := rep.Marshal()
			if err != nil {
				log.Fatalf("matchbench json: %v", err)
			}
			if err := os.WriteFile(*matchJSONPath, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", *matchJSONPath)
		}
		if fails := bench.CheckMatch(rep, base, 0.10); len(fails) > 0 {
			for _, f := range fails {
				log.Printf("matchbench regression: %s", f)
			}
			os.Exit(1)
		}
	}

	if *rma {
		var base *bench.RMAReport
		if *rmaBaseline != "" {
			data, err := os.ReadFile(*rmaBaseline)
			if err != nil {
				log.Fatalf("rma baseline: %v", err)
			}
			b, err := bench.UnmarshalRMA(data)
			if err != nil {
				log.Fatalf("rma baseline: %v", err)
			}
			base = &b
		}
		rep, err := bench.RMABench(o)
		if err != nil {
			log.Fatalf("rma: %v", err)
		}
		fmt.Println(bench.FormatRMA(rep))
		if *rmaJSONPath != "" {
			data, err := rep.Marshal()
			if err != nil {
				log.Fatalf("rma json: %v", err)
			}
			if err := os.WriteFile(*rmaJSONPath, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", *rmaJSONPath)
		}
		if fails := bench.CheckRMA(rep, base, 0.10); len(fails) > 0 {
			for _, f := range fails {
				log.Printf("rma regression: %s", f)
			}
			os.Exit(1)
		}
	}

	if *scale {
		var base *bench.ScaleReport
		if *scaleBaseline != "" {
			data, err := os.ReadFile(*scaleBaseline)
			if err != nil {
				log.Fatalf("scale baseline: %v", err)
			}
			b, err := bench.UnmarshalScale(data)
			if err != nil {
				log.Fatalf("scale baseline: %v", err)
			}
			base = &b
		}
		rep, err := bench.ScaleBench(o)
		if err != nil {
			log.Fatalf("scale: %v", err)
		}
		fmt.Println(bench.FormatScale(rep))
		if *scaleJSONPath != "" {
			data, err := rep.Marshal()
			if err != nil {
				log.Fatalf("scale json: %v", err)
			}
			if err := os.WriteFile(*scaleJSONPath, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", *scaleJSONPath)
		}
		if fails := bench.CheckScale(rep, base, 0.10); len(fails) > 0 {
			for _, f := range fails {
				log.Printf("scale regression: %s", f)
			}
			os.Exit(1)
		}
	}

	if *chaos {
		var base *bench.ChaosReport
		if *chaosBaseline != "" {
			data, err := os.ReadFile(*chaosBaseline)
			if err != nil {
				log.Fatalf("chaos baseline: %v", err)
			}
			b, err := bench.UnmarshalChaos(data)
			if err != nil {
				log.Fatalf("chaos baseline: %v", err)
			}
			base = &b
		}
		rep, err := bench.Chaos(o)
		if err != nil {
			log.Fatalf("chaos: %v", err)
		}
		fmt.Println(bench.FormatChaos(rep))
		if *chaosJSONPath != "" {
			data, err := rep.Marshal()
			if err != nil {
				log.Fatalf("chaos json: %v", err)
			}
			if err := os.WriteFile(*chaosJSONPath, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", *chaosJSONPath)
		}
		if fails := bench.CheckChaos(rep, base, 0.10); len(fails) > 0 {
			for _, f := range fails {
				log.Printf("chaos gate: %s", f)
			}
			os.Exit(1)
		}
	}

	if *workloads {
		var base *bench.WorkloadsReport
		if *workloadsBaseline != "" {
			data, err := os.ReadFile(*workloadsBaseline)
			if err != nil {
				log.Fatalf("workloads baseline: %v", err)
			}
			b, err := bench.UnmarshalWorkloads(data)
			if err != nil {
				log.Fatalf("workloads baseline: %v", err)
			}
			base = &b
		}
		rep, err := bench.Workloads(o)
		if err != nil {
			log.Fatalf("workloads: %v", err)
		}
		fmt.Println(bench.FormatWorkloads(rep))
		if *workloadsJSONPath != "" {
			data, err := rep.Marshal()
			if err != nil {
				log.Fatalf("workloads json: %v", err)
			}
			if err := os.WriteFile(*workloadsJSONPath, data, 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", *workloadsJSONPath)
		}
		if fails := bench.CheckWorkloads(rep, base, 0.10); len(fails) > 0 {
			for _, f := range fails {
				log.Printf("workloads gate: %s", f)
			}
			os.Exit(1)
		}
	}

	// With -anchors, the same run also lands as a machine-readable record
	// (anchors plus any figures regenerated above) for perf-trajectory
	// tracking across revisions.
	if *anchors && *jsonPath != "" {
		data, err := bench.NewAnchorsReport(anchorTable, figures).Marshal()
		if err != nil {
			log.Fatalf("anchors json: %v", err)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonPath)
	}
}
