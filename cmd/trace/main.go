// Command trace runs a small MPI workload with the profiling interface
// enabled and prints the message timeline plus per-pair traffic stats —
// the microsecond-by-microsecond view behind the paper's latency analysis.
//
//	trace -platform meiko|cluster -impl lowlatency|mpich -ranks 3
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/mpi"
	"repro/platform/registry"

	_ "repro/platform/cluster"
	_ "repro/platform/meiko"
)

func main() {
	log.SetFlags(0)
	platform := flag.String("platform", "meiko", "meiko | cluster | mem")
	impl := flag.String("impl", "", "meiko implementation: lowlatency | mpich (default lowlatency)")
	ranks := flag.Int("ranks", 3, "number of ranks")
	size := flag.Int("size", 64, "message payload bytes")
	lanes := flag.Int("lanes", 0, "run on the sharded kernel with this many lanes (0 = single-lane kernel)")
	parallel := flag.Bool("parallel", false, "with -lanes: execute epochs on pinned worker goroutines")
	flag.Parse()

	spec := registry.Spec{Platform: *platform, Impl: *impl, Ranks: *ranks, Lanes: *lanes, Parallel: *parallel}
	w, err := registry.Build(spec)
	if err != nil {
		log.Fatalf("trace: %v", err)
	}
	tl := w.EnableTrace()

	n := *ranks
	payload := *size
	rep, err := mpi.Launch(w, func(c *mpi.Comm) error {
		// A short pipeline: each rank sends to the next, the last replies
		// to rank 0 — enough traffic to show sends, arrivals, matches and
		// completions interleaving.
		right := (c.Rank() + 1) % n
		left := (c.Rank() - 1 + n) % n
		if c.Rank() == 0 {
			if err := c.Send(right, 1, make([]byte, payload)); err != nil {
				return err
			}
			_, err := c.Recv(left, 1, make([]byte, payload))
			return err
		}
		if _, err := c.Recv(left, 1, make([]byte, payload)); err != nil {
			return err
		}
		return c.Send(right, 1, make([]byte, payload))
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(tl.Timeline())
	fmt.Println("\nPer-pair traffic:")
	stats := tl.Stats()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			s := stats[src][dst]
			if s == nil || s.Messages == 0 {
				continue
			}
			line := fmt.Sprintf("  %d -> %d: %d msgs, %d bytes", src, dst, s.Messages, s.Bytes)
			if s.Matched > 0 {
				line += fmt.Sprintf(", mean arrive->match %.1fus", float64(s.MatchLatency)/float64(s.Matched)/1e3)
			}
			fmt.Println(line)
		}
	}

	// Receive-path internals from the merged books: matcher queue depths
	// (job-wide high-water marks) and buffer-pool effectiveness.
	cnt := rep.Acct.Count
	fmt.Println("\nReceive path:")
	fmt.Printf("  posted queue high-water     %d\n", cnt["match.posted-max"])
	fmt.Printf("  unexpected queue high-water %d\n", cnt["match.unexpected-max"])
	hits, misses := cnt[core.PoolHit], cnt[core.PoolMiss]
	if hits+misses > 0 {
		fmt.Printf("  buffer pool                 %d hits / %d misses (%.0f%%), %d bytes recycled\n",
			hits, misses, 100*float64(hits)/float64(hits+misses), cnt[core.PoolRecycled])
	}

	// Control-plane counters from the sharded kernel, when one ran the job.
	if st := rep.Shard; st != nil {
		fmt.Println("\nSharded kernel:")
		fmt.Printf("  lanes                       %d\n", st.Lanes)
		fmt.Printf("  epochs                      %d (%d lane stalls)\n", st.Epochs, st.Stalls)
		fmt.Printf("  cross-lane envelopes        %d routed, mailbox high-water %d\n", st.Routed, st.MailboxHighWater)
		var min, max uint64
		for i, ev := range st.LaneEvents {
			if i == 0 || ev < min {
				min = ev
			}
			if ev > max {
				max = ev
			}
		}
		fmt.Printf("  events per lane             %d total, min %d / max %d\n", st.Events, min, max)
	}
}
