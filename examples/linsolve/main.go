// Linsolve runs the paper's Figure 7 workload interactively: the
// broadcast-based Gaussian elimination solver on the Meiko, comparing the
// low-latency implementation (hardware broadcast) against the MPICH
// baseline (point-to-point tree) across process counts.
//
//	go run ./examples/linsolve [-n 96] [-procs 1,2,4,8]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/mpi"
	"repro/platform/meiko"
)

func main() {
	n := flag.Int("n", 96, "unknowns in the linear system")
	procsFlag := flag.String("procs", "1,2,4,8", "process counts to sweep")
	flag.Parse()

	var procs []int
	for _, s := range strings.Split(*procsFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad -procs: %v", err)
		}
		procs = append(procs, p)
	}

	fmt.Printf("Gaussian elimination, N=%d (times are virtual seconds)\n", *n)
	fmt.Printf("%8s %14s %14s %10s\n", "procs", "low latency", "mpich", "residual")
	for _, p := range procs {
		var lowSec, mpichSec, residual float64
		for _, impl := range []meiko.Impl{meiko.LowLatency, meiko.MPICH} {
			impl := impl
			_, err := meiko.Run(meiko.Config{Nodes: p, Impl: impl}, func(c *mpi.Comm) error {
				res, err := apps.Linsolve(c, apps.LinsolveConfig{N: *n})
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					if impl == meiko.LowLatency {
						lowSec = res.Elapsed.Seconds()
						residual = res.Residual
					} else {
						mpichSec = res.Elapsed.Seconds()
					}
				}
				return nil
			})
			if err != nil {
				log.Fatalf("procs=%d impl=%v: %v", p, impl, err)
			}
		}
		fmt.Printf("%8d %13.4fs %13.4fs %10.2e\n", p, lowSec, mpichSec, residual)
	}
}
