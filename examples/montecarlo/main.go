// Montecarlo estimates pi on both platforms with an embarrassingly
// parallel sampler whose only communication is collectives — showing how a
// latency-bound job (tiny allreduces each round) behaves on the Meiko vs
// the TCP cluster, the contrast the paper's application section draws.
//
//	go run ./examples/montecarlo [-samples 200000] [-rounds 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro/internal/atm"
	"repro/mpi"
	"repro/platform/cluster"
	"repro/platform/meiko"
)

func estimator(samples, rounds int) func(c *mpi.Comm) error {
	return func(c *mpi.Comm) error {
		rng := rand.New(rand.NewSource(int64(1 + c.Rank())))
		per := samples / c.Size()
		var inside, total int64
		for round := 0; round < rounds; round++ {
			for i := 0; i < per/rounds; i++ {
				x, y := rng.Float64(), rng.Float64()
				if x*x+y*y <= 1 {
					inside++
				}
				total++
			}
			// ~100ns of modeled work per sample on the host CPU.
			c.Compute(time.Duration(per/rounds) * 100 * time.Nanosecond)
			// A tiny allreduce each round: the running global estimate.
			sums, err := c.AllreduceFloat64(mpi.SumFloat64, []float64{float64(inside), float64(total)})
			if err != nil {
				return err
			}
			if c.Rank() == 0 && round == rounds-1 {
				pi := 4 * sums[0] / sums[1]
				fmt.Printf("    pi ~= %.5f (err %.5f) after %d samples, t=%v\n",
					pi, math.Abs(pi-math.Pi), int64(sums[1]), c.Wtime())
			}
		}
		return nil
	}
}

func main() {
	samples := flag.Int("samples", 200_000, "total samples")
	rounds := flag.Int("rounds", 10, "allreduce rounds")
	flag.Parse()

	fmt.Println("Meiko CS/2, 8 ranks:")
	rep, err := meiko.Run(meiko.Config{Nodes: 8, Impl: meiko.LowLatency}, estimator(*samples, *rounds))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    virtual time %v\n", rep.MaxRankElapsed)

	fmt.Println("TCP/ATM cluster, 8 ranks (same work, millisecond collectives):")
	rep, err = cluster.Run(cluster.Config{Hosts: 8, Transport: cluster.TCP, Network: atm.OverATM}, estimator(*samples, *rounds))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    virtual time %v\n", rep.MaxRankElapsed)
}
