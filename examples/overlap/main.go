// Overlap demonstrates the communication patterns the paper's design
// choices serve: nonblocking sends progressing in the background on the
// Meiko's Elan, probe-driven receives with MPI_ANY_SOURCE, and the four
// send modes.
//
//	go run ./examples/overlap
package main

import (
	"fmt"
	"log"
	"time"

	"repro/mpi"
	"repro/platform/meiko"
)

func main() {
	_, err := meiko.Run(meiko.Config{Nodes: 3, Impl: meiko.LowLatency}, func(c *mpi.Comm) error {
		switch c.Rank() {
		case 0:
			// Nonblocking send overlapped with computation: the Elan moves
			// 200 KB while the SPARC computes.
			data := make([]byte, 200_000)
			t0 := c.Wtime()
			req, err := c.Isend(1, 0, data)
			if err != nil {
				return err
			}
			c.Compute(5 * time.Millisecond)
			if _, err := req.Wait(); err != nil {
				return err
			}
			fmt.Printf("rank 0: 200KB send + 5ms compute finished in %v (overlapped)\n", c.Wtime()-t0)

			// The four send modes.
			c.BufferAttach(4096)
			if err := c.Bsend(2, 1, []byte("buffered")); err != nil {
				return err
			}
			if err := c.Rsend(2, 3, []byte("ready")); err != nil { // receiver posted early
				return err
			}
			if err := c.Ssend(2, 2, []byte("synchronous")); err != nil {
				return err
			}
			return c.Send(2, 4, []byte("standard"))
		case 1:
			_, err := c.Recv(0, 0, make([]byte, 200_000))
			return err
		default: // rank 2
			// Post the ready-mode receive before rank 0 reaches Rsend.
			ready, err := c.Irecv(0, 3, make([]byte, 16))
			if err != nil {
				return err
			}
			// Drain the rest with Probe + ANY_SOURCE.
			for _, want := range []int{1, 2, 4} {
				st, err := c.Probe(mpi.AnySource, want)
				if err != nil {
					return err
				}
				buf := make([]byte, st.Count)
				if _, err := c.Recv(st.Source, st.Tag, buf); err != nil {
					return err
				}
				fmt.Printf("rank 2: probed tag %d -> %q\n", st.Tag, buf)
			}
			st, err := ready.Wait()
			if err != nil {
				return err
			}
			fmt.Printf("rank 2: ready-mode message arrived (%d bytes)\n", st.Count)
			return nil
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
