// Particles runs the paper's section 6.2 molecular-dynamics ring on both
// platforms: 24 particles on the Meiko (Figure 8) and 128 particles on the
// ATM/Ethernet cluster (Figure 9), verifying forces against the sequential
// reference.
//
//	go run ./examples/particles
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/apps"
	"repro/internal/atm"
	"repro/mpi"
	"repro/platform/cluster"
	"repro/platform/meiko"
)

func verify(n int, seed int64, got [][3]float64) float64 {
	want := apps.SequentialForces(n, seed)
	var maxErr float64
	for i := range want {
		for d := 0; d < 3; d++ {
			maxErr = math.Max(maxErr, math.Abs(got[i][d]-want[i][d]))
		}
	}
	return maxErr
}

func main() {
	fmt.Println("Meiko CS/2, 24 particles (Figure 8):")
	fmt.Printf("%8s %14s %14s\n", "procs", "low latency", "mpich")
	for _, p := range []int{1, 2, 4, 8} {
		times := map[meiko.Impl]float64{}
		for _, impl := range []meiko.Impl{meiko.LowLatency, meiko.MPICH} {
			got := make([][3]float64, 24)
			rep, err := meiko.Run(meiko.Config{Nodes: p, Impl: impl}, func(c *mpi.Comm) error {
				res, err := apps.Particles(c, apps.ParticlesConfig{N: 24, Seed: 1})
				if err != nil {
					return err
				}
				copy(got[c.Rank()*(24/p):], res.Forces)
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
			if e := verify(24, 1, got); e > 1e-9 {
				log.Fatalf("forces diverge from sequential reference: %g", e)
			}
			times[impl] = float64(rep.MaxRankElapsed) / 1e3
		}
		fmt.Printf("%8d %12.1fus %12.1fus\n", p, times[meiko.LowLatency], times[meiko.MPICH])
	}

	fmt.Println("\nWorkstation cluster over TCP, 128 particles (Figure 9):")
	fmt.Printf("%8s %14s %14s\n", "procs", "Ethernet", "ATM")
	for _, p := range []int{2, 4, 8} {
		times := map[atm.MediumKind]float64{}
		for _, net := range []atm.MediumKind{atm.OverEthernet, atm.OverATM} {
			rep, err := cluster.Run(cluster.Config{Hosts: p, Transport: cluster.TCP, Network: net}, func(c *mpi.Comm) error {
				_, err := apps.Particles(c, apps.ParticlesConfig{N: 128, Seed: 2, SecPerFlop: apps.SGISecPerFlop})
				return err
			})
			if err != nil {
				log.Fatal(err)
			}
			times[net] = float64(rep.MaxRankElapsed) / 1e3
		}
		fmt.Printf("%8d %12.1fus %12.1fus\n", p, times[atm.OverEthernet], times[atm.OverATM])
	}
}
