// Quickstart: a four-rank MPI program on both modeled platforms.
//
// Rank 0 sends each rank a greeting, everyone answers with its rank
// squared, and a broadcast plus an allreduce close the round — exercising
// point-to-point, wildcards, and collectives through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/atm"
	"repro/mpi"
	"repro/platform/cluster"
	"repro/platform/meiko"
)

func body(c *mpi.Comm) error {
	rank, size := c.Rank(), c.Size()
	if rank == 0 {
		for r := 1; r < size; r++ {
			if err := c.Send(r, 1, []byte(fmt.Sprintf("hello rank %d", r))); err != nil {
				return err
			}
		}
		total := 0
		for r := 1; r < size; r++ {
			buf := make([]byte, 8)
			st, err := c.Recv(mpi.AnySource, 2, buf)
			if err != nil {
				return err
			}
			total += int(buf[0])
			_ = st
		}
		fmt.Printf("  rank 0 collected sum of squares: %d\n", total)
	} else {
		buf := make([]byte, 64)
		st, err := c.Recv(0, 1, buf)
		if err != nil {
			return err
		}
		fmt.Printf("  rank %d got %q at t=%v\n", rank, buf[:st.Count], c.Wtime())
		if err := c.Send(0, 2, []byte{byte(rank * rank)}); err != nil {
			return err
		}
	}

	// A broadcast from rank 0 (hardware broadcast on the Meiko).
	pi := make([]byte, 8)
	if rank == 0 {
		pi = mpi.Float64Bytes([]float64{3.14159})
	}
	if err := c.Bcast(0, pi); err != nil {
		return err
	}

	// And an allreduce.
	sum, err := c.AllreduceFloat64(mpi.SumFloat64, []float64{float64(rank)})
	if err != nil {
		return err
	}
	if rank == 0 {
		fmt.Printf("  allreduce sum of ranks: %v (pi=%v)\n", sum[0], mpi.BytesFloat64(pi)[0])
	}
	return nil
}

func main() {
	fmt.Println("Meiko CS/2 (low-latency MPI, hardware broadcast):")
	rep, err := meiko.Run(meiko.Config{Nodes: 4, Impl: meiko.LowLatency}, body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  job finished at virtual t=%v\n\n", rep.MaxRankElapsed)

	fmt.Println("ATM cluster (MPI over TCP):")
	rep, err = cluster.Run(cluster.Config{Hosts: 4, Transport: cluster.TCP, Network: atm.OverATM}, body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  job finished at virtual t=%v\n", rep.MaxRankElapsed)
}
