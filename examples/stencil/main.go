// Stencil runs a 2-D Jacobi heat-diffusion iteration on a Cartesian
// process grid with halo exchange — the canonical MPI domain decomposition,
// exercising the Cart topology, Sendrecv halos, and an Allreduce
// convergence test.
//
//	go run ./examples/stencil [-n 96] [-iters 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/mpi"
	"repro/platform/meiko"
)

func main() {
	n := flag.Int("n", 96, "global grid edge (cells)")
	iters := flag.Int("iters", 40, "Jacobi iterations")
	ranks := flag.Int("ranks", 6, "processes")
	flag.Parse()

	rep, err := meiko.Run(meiko.Config{Nodes: *ranks, Impl: meiko.LowLatency}, func(c *mpi.Comm) error {
		py, px := mpi.Dims2(c.Size())
		cart, err := c.CartCreate([]int{py, px}, []bool{false, false})
		if err != nil {
			return err
		}
		if cart == nil {
			return nil // surplus rank
		}
		coords := cart.Coords(c.Rank())
		rows := *n / py
		cols := *n / px

		// Local grid with a one-cell halo; boundary condition: hot top edge.
		w := cols + 2
		h := rows + 2
		grid := make([]float64, w*h)
		next := make([]float64, w*h)
		if coords[0] == 0 {
			for x := 0; x < w; x++ {
				grid[x] = 100
				next[x] = 100
			}
		}

		up, down := cart.Shift(0, 1)    // (src, dst) moving down rows
		left, right := cart.Shift(1, 1) // moving right in columns

		rowBuf := func(y int) []float64 { return grid[y*w+1 : y*w+1+cols] }
		var maxDelta float64
		for it := 0; it < *iters; it++ {
			// Halo exchange: rows up/down, columns left/right.
			if down >= 0 || up >= 0 {
				// Send my bottom row down, receive my top halo from above.
				out := mpi.Float64Bytes(rowBuf(rows))
				in := make([]byte, 8*cols)
				if down >= 0 && up >= 0 {
					if _, err := c.Sendrecv(down, 1, out, up, 1, in); err != nil {
						return err
					}
					copy(grid[0*w+1:], mpi.BytesFloat64(in))
				} else if down >= 0 {
					if err := c.Send(down, 1, out); err != nil {
						return err
					}
				} else {
					if _, err := c.Recv(up, 1, in); err != nil {
						return err
					}
					copy(grid[0*w+1:], mpi.BytesFloat64(in))
				}
				// And the reverse direction.
				out = mpi.Float64Bytes(rowBuf(1))
				in = make([]byte, 8*cols)
				if up >= 0 && down >= 0 {
					if _, err := c.Sendrecv(up, 2, out, down, 2, in); err != nil {
						return err
					}
					copy(grid[(h-1)*w+1:], mpi.BytesFloat64(in))
				} else if up >= 0 {
					if err := c.Send(up, 2, out); err != nil {
						return err
					}
				} else if down >= 0 {
					if _, err := c.Recv(down, 2, in); err != nil {
						return err
					}
					copy(grid[(h-1)*w+1:], mpi.BytesFloat64(in))
				}
			}
			// Column halos via a strided datatype, both directions.
			colType := mpi.Vector{Count: rows, BlockLen: 1, Stride: w, Of: mpi.Float64}
			recvCol := func(src, tag, haloX int) error {
				dst := make([]byte, 8*w*h)
				if _, err := c.RecvTyped(src, tag, colType, 1, dst); err != nil {
					return err
				}
				dec := mpi.BytesFloat64(dst)
				for y := 0; y < rows; y++ {
					grid[(y+1)*w+haloX] = dec[y*w]
				}
				return nil
			}
			if right >= 0 { // my rightmost column -> right neighbor's left halo
				if err := c.SendTyped(right, 3, colType, 1, mpi.Float64Bytes(grid[1*w+cols:])); err != nil {
					return err
				}
			}
			if left >= 0 {
				if err := recvCol(left, 3, 0); err != nil {
					return err
				}
				// And my leftmost column -> left neighbor's right halo.
				if err := c.SendTyped(left, 4, colType, 1, mpi.Float64Bytes(grid[1*w+1:])); err != nil {
					return err
				}
			}
			if right >= 0 {
				if err := recvCol(right, 4, cols+1); err != nil {
					return err
				}
			}

			// Jacobi sweep (real arithmetic, modeled flops).
			maxDelta = 0
			for y := 1; y <= rows; y++ {
				for x := 1; x <= cols; x++ {
					v := 0.25 * (grid[(y-1)*w+x] + grid[(y+1)*w+x] + grid[y*w+x-1] + grid[y*w+x+1])
					if d := v - grid[y*w+x]; d > maxDelta {
						maxDelta = d
					} else if -d > maxDelta {
						maxDelta = -d
					}
					next[y*w+x] = v
				}
			}
			grid, next = next, grid
			c.Compute(time.Duration(rows*cols) * 6 * 100 * time.Nanosecond)

			// Global convergence check.
			global, err := c.AllreduceFloat64(mpi.MaxFloat64, []float64{maxDelta})
			if err != nil {
				return err
			}
			if c.Rank() == 0 && (it+1)%10 == 0 {
				fmt.Printf("  iter %3d: max delta %.4f, t=%v\n", it+1, global[0], c.Wtime())
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in virtual %v\n", rep.MaxRankElapsed)
}
