package apps

import (
	"math"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/mpi"
	pcluster "repro/platform/cluster"
	pmeiko "repro/platform/meiko"
)

func TestLinsolveCorrectMeiko(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 7} {
		procs := procs
		var residual float64
		_, err := pmeiko.Run(pmeiko.Config{Nodes: procs, Impl: pmeiko.LowLatency}, func(c *mpi.Comm) error {
			res, err := Linsolve(c, LinsolveConfig{N: 48})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				residual = res.Residual
			}
			return nil
		})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if residual > 1e-8 {
			t.Fatalf("procs=%d: residual %g", procs, residual)
		}
	}
}

func TestLinsolveCorrectMPICH(t *testing.T) {
	var residual float64
	_, err := pmeiko.Run(pmeiko.Config{Nodes: 4, Impl: pmeiko.MPICH}, func(c *mpi.Comm) error {
		res, err := Linsolve(c, LinsolveConfig{N: 32})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			residual = res.Residual
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if residual > 1e-8 {
		t.Fatalf("residual %g", residual)
	}
}

func TestLinsolveCorrectCluster(t *testing.T) {
	var residual float64
	_, err := pcluster.Run(pcluster.Config{Hosts: 4, Transport: pcluster.TCP, Network: atm.OverATM}, func(c *mpi.Comm) error {
		res, err := Linsolve(c, LinsolveConfig{N: 32, SecPerFlop: SGISecPerFlop})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			residual = res.Residual
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if residual > 1e-8 {
		t.Fatalf("residual %g", residual)
	}
}

// Figure 7's claim: the hardware-broadcast implementation beats MPICH's
// point-to-point broadcast, and both speed up with processors.
func TestLinsolveFigure7Shape(t *testing.T) {
	elapsed := func(impl pmeiko.Impl, procs int) time.Duration {
		var el time.Duration
		_, err := pmeiko.Run(pmeiko.Config{Nodes: procs, Impl: impl}, func(c *mpi.Comm) error {
			res, err := Linsolve(c, LinsolveConfig{N: 64})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				el = res.Elapsed
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return el
	}
	low1 := elapsed(pmeiko.LowLatency, 1)
	low8 := elapsed(pmeiko.LowLatency, 8)
	mpich8 := elapsed(pmeiko.MPICH, 8)
	if low8 >= low1 {
		t.Fatalf("no speedup: 1 proc %v, 8 procs %v", low1, low8)
	}
	if low8 >= mpich8 {
		t.Fatalf("hardware bcast (%v) not beating mpich p2p bcast (%v) at 8 procs", low8, mpich8)
	}
}

func TestMatMulCorrect(t *testing.T) {
	var maxErr float64 = -1
	_, err := pmeiko.Run(pmeiko.Config{Nodes: 4, Impl: pmeiko.LowLatency}, func(c *mpi.Comm) error {
		res, err := MatMul(c, MatMulConfig{N: 24})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			maxErr = res.MaxError
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxErr < 0 || maxErr > 1e-9 {
		t.Fatalf("max error %g", maxErr)
	}
}

func TestParticlesMatchSequential(t *testing.T) {
	const n = 24
	want := SequentialForces(n, 1)
	for _, procs := range []int{1, 2, 4, 8} {
		procs := procs
		got := make([][3]float64, n)
		_, err := pmeiko.Run(pmeiko.Config{Nodes: procs, Impl: pmeiko.LowLatency}, func(c *mpi.Comm) error {
			res, err := Particles(c, ParticlesConfig{N: n, Seed: 1})
			if err != nil {
				return err
			}
			per := n / procs
			copy(got[c.Rank()*per:], res.Forces)
			return nil
		})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		for i := range want {
			for d := 0; d < 3; d++ {
				if math.Abs(got[i][d]-want[i][d]) > 1e-9*(1+math.Abs(want[i][d])) {
					t.Fatalf("procs=%d particle %d dim %d: %g vs %g", procs, i, d, got[i][d], want[i][d])
				}
			}
		}
	}
}

func TestParticlesClusterBothMedia(t *testing.T) {
	const n = 128
	want := SequentialForces(n, 2)
	elapsed := map[atm.MediumKind]time.Duration{}
	for _, net := range []atm.MediumKind{atm.OverEthernet, atm.OverATM} {
		got := make([][3]float64, n)
		rep, err := pcluster.Run(pcluster.Config{Hosts: 4, Transport: pcluster.TCP, Network: net}, func(c *mpi.Comm) error {
			res, err := Particles(c, ParticlesConfig{N: n, Seed: 2, SecPerFlop: SGISecPerFlop})
			if err != nil {
				return err
			}
			per := n / 4
			copy(got[c.Rank()*per:], res.Forces)
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", net, err)
		}
		elapsed[net] = rep.MaxRankElapsed
		for i := 0; i < n; i += 17 {
			if math.Abs(got[i][0]-want[i][0]) > 1e-9*(1+math.Abs(want[i][0])) {
				t.Fatalf("%v: particle %d force mismatch", net, i)
			}
		}
	}
	// Figure 9: ATM wins on the cluster.
	if elapsed[atm.OverATM] >= elapsed[atm.OverEthernet] {
		t.Fatalf("atm %v not faster than ethernet %v", elapsed[atm.OverATM], elapsed[atm.OverEthernet])
	}
}

// Figure 8's setting: low latency matters because the ring processes
// interact in lock-step; the low-latency implementation beats MPICH.
func TestParticlesFigure8Shape(t *testing.T) {
	elapsed := func(impl pmeiko.Impl) time.Duration {
		rep, err := pmeiko.Run(pmeiko.Config{Nodes: 8, Impl: impl}, func(c *mpi.Comm) error {
			_, err := Particles(c, ParticlesConfig{N: 24, Seed: 1})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaxRankElapsed
	}
	low, mpich := elapsed(pmeiko.LowLatency), elapsed(pmeiko.MPICH)
	if low >= mpich {
		t.Fatalf("low latency %v not beating mpich %v on the fine-grained ring", low, mpich)
	}
}

func TestParticlesBadDivision(t *testing.T) {
	_, err := pmeiko.Run(pmeiko.Config{Nodes: 5, Impl: pmeiko.LowLatency}, func(c *mpi.Comm) error {
		_, err := Particles(c, ParticlesConfig{N: 24, Seed: 1})
		return err
	})
	if err == nil {
		t.Fatal("24 particles on 5 ranks should error")
	}
}

func TestSampleSortGloballyOrdered(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		procs := procs
		const n = 512
		parts := make([][]int64, procs)
		_, err := pmeiko.Run(pmeiko.Config{Nodes: procs, Impl: pmeiko.LowLatency}, func(c *mpi.Comm) error {
			res, err := SampleSort(c, SampleSortConfig{N: n, Seed: 4})
			if err != nil {
				return err
			}
			parts[c.Rank()] = res.Sorted
			return nil
		})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		// Concatenated partitions must be globally sorted and complete.
		var all []int64
		for r, part := range parts {
			for i := 1; i < len(part); i++ {
				if part[i] < part[i-1] {
					t.Fatalf("procs=%d rank %d: local partition unsorted", procs, r)
				}
			}
			if len(all) > 0 && len(part) > 0 && part[0] < all[len(all)-1] {
				t.Fatalf("procs=%d: partition %d starts below partition %d's end", procs, r, r-1)
			}
			all = append(all, part...)
		}
		if len(all) != n {
			t.Fatalf("procs=%d: %d keys out, want %d", procs, len(all), n)
		}
	}
}

func TestSampleSortCluster(t *testing.T) {
	parts := make([][]int64, 4)
	_, err := pcluster.Run(pcluster.Config{Hosts: 4, Transport: pcluster.TCP, Network: atm.OverATM}, func(c *mpi.Comm) error {
		res, err := SampleSort(c, SampleSortConfig{N: 256, Seed: 9, SecPerFlop: SGISecPerFlop})
		if err != nil {
			return err
		}
		parts[c.Rank()] = res.Sorted
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 256 {
		t.Fatalf("keys out = %d", total)
	}
}

func TestSampleSortBadDivision(t *testing.T) {
	_, err := pmeiko.Run(pmeiko.Config{Nodes: 3, Impl: pmeiko.LowLatency}, func(c *mpi.Comm) error {
		_, err := SampleSort(c, SampleSortConfig{N: 100, Seed: 1})
		return err
	})
	if err == nil {
		t.Fatal("100 keys on 3 ranks should error")
	}
}
