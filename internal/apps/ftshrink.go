package apps

import (
	"time"

	"repro/mpi"
)

// FTShrinkConfig parameterizes the fault-tolerant allreduce demo.
type FTShrinkConfig struct {
	// Compute is a per-rank computation phase before the collective,
	// giving a kill schedule a window to land mid-run.
	Compute time.Duration
}

// FTShrinkResult reports one rank's view of the run.
type FTShrinkResult struct {
	Died       bool          // this rank was killed by the fault schedule
	Shrunk     bool          // recovery ran: revoke, agree, shrink
	Shrinks    int           // recovery rounds (one per shrink; >1 under multi-failure)
	Survivors  int           // communicator size the final answer came from
	NewRank    int           // this rank's position in that communicator
	Sum        int64         // the allreduce result (survivor contributions)
	Elapsed    time.Duration // virtual time from entry to answer
	DetectedAt time.Duration // virtual time the first failure was observed (0 if clean)
	ShrunkAt   time.Duration // virtual time the last shrunken communicator was ready
}

// FTShrink runs the ULFM recovery loop as an application: every rank
// contributes rank+1 to a sum-allreduce; when a member dies mid-collective
// the survivors revoke the communicator, shrink to the agreed-live
// membership, and retry the reduction there — looping, so failures that
// land during recovery (or a second scheduled kill) just trigger another
// round. A killed rank reports Died and returns no error — its death is
// the injected fault, not an application failure.
func FTShrink(c *mpi.Comm, cfg FTShrinkConfig) (FTShrinkResult, error) {
	res := FTShrinkResult{Survivors: c.Size(), NewRank: c.Rank()}
	start := c.Wtime()
	if cfg.Compute > 0 {
		c.Compute(cfg.Compute)
	}
	contrib := []int64{int64(c.Rank()) + 1}
	cur := c
	for {
		sum, err := cur.AllreduceInt64(mpi.SumInt64, contrib)
		if err == nil {
			res.Sum = sum[0]
			res.Elapsed = c.Wtime() - start
			return res, nil
		}
		if c.Dead() {
			res.Died = true
			return res, nil
		}
		if res.DetectedAt == 0 {
			res.DetectedAt = c.Wtime()
		}
		switch {
		case mpi.IsPeerDown(err):
			// We saw the death first: poison the communicator so peers
			// hung on the dead rank's contribution are woken with an
			// error instead of waiting forever.
			if rerr := cur.Revoke(); rerr != nil {
				return res, rerr
			}
		case mpi.IsRevoked(err):
			// A peer revoked first; fall through to the rebuild.
		default:
			return res, err
		}
		if res.Shrinks >= c.Size() {
			return res, err // more rounds than members: something is wrong
		}
		smaller, serr := cur.Shrink()
		if serr != nil {
			return res, serr
		}
		cur = smaller
		res.Shrunk = true
		res.Shrinks++
		res.Survivors = cur.Size()
		res.NewRank = cur.Rank()
		res.ShrunkAt = c.Wtime()
	}
}
