// Package apps implements the paper's section 6 applications: the
// broadcast-based linear equation solver (Figure 7), the matrix multiply
// mentioned alongside it, and the ring-structured particle pairwise
// interaction code (Figures 8 and 9).
//
// The arithmetic is real — results are verified against sequential
// computation — while CPU time is modeled by charging a per-flop cost
// appropriate to the platform (a 40 MHz SPARC on the Meiko, a 133 MHz SGI
// on the cluster).
package apps

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/mpi"
)

// Per-flop virtual time for the two platforms' processors.
const (
	// MeikoSecPerFlop models the CS/2's 40 MHz SPARC (~2.5 MFLOPS on
	// compiled elimination loops).
	MeikoSecPerFlop = 400 * time.Nanosecond
	// SGISecPerFlop models the cluster's 133 MHz SGI Indy (~10 MFLOPS).
	SGISecPerFlop = 100 * time.Nanosecond
)

// LinsolveConfig parameterizes the solver.
type LinsolveConfig struct {
	N          int           // number of unknowns
	SecPerFlop time.Duration // CPU model
	Seed       int64         // system generator seed
}

// LinsolveResult reports the run; X and Residual are valid at rank 0.
type LinsolveResult struct {
	Elapsed  time.Duration
	X        []float64
	Residual float64 // max |Ax - b|
}

// genSystem builds a diagonally-dominant N x (N+1) augmented system
// deterministically from seed; all ranks generate it identically, so the
// only communication is the broadcast of pivot rows — matching the paper's
// description of the application.
func genSystem(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		for j := 0; j <= n; j++ {
			m[i][j] = rng.Float64()*2 - 1
		}
		m[i][i] += float64(n) // dominance keeps pivoting trivial
	}
	return m
}

// Linsolve runs the paper's Gaussian-elimination solver: an initial
// generation phase at the initiator, N phases of pivot-row broadcast and
// elimination by all processes (rows dealt round-robin), and a final
// gather + back-substitution at the initiator.
func Linsolve(c *mpi.Comm, cfg LinsolveConfig) (*LinsolveResult, error) {
	n := cfg.N
	p := c.Size()
	rank := c.Rank()
	if cfg.SecPerFlop == 0 {
		cfg.SecPerFlop = MeikoSecPerFlop
	}
	flops := func(k int) { c.Compute(time.Duration(k) * cfg.SecPerFlop) }

	m := genSystem(n, cfg.Seed+7)
	if rank == 0 {
		// The initiator's initial computation phase (system setup).
		flops(2 * n * n)
	}

	start := c.Wtime()
	for k := 0; k < n; k++ {
		owner := k % p
		// Broadcast the active tail of the pivot row.
		buf := make([]byte, 8*(n+1-k))
		if rank == owner {
			buf = mpi.Float64Bytes(m[k][k:])
		}
		if err := c.Bcast(owner, buf); err != nil {
			return nil, fmt.Errorf("linsolve bcast %d: %w", k, err)
		}
		pivot := mpi.BytesFloat64(buf)
		if rank != owner {
			copy(m[k][k:], pivot) // keep the local copy consistent
		}
		// Eliminate below the pivot in owned rows.
		for i := k + 1; i < n; i++ {
			if i%p != rank {
				continue
			}
			f := m[i][k] / pivot[0]
			for j := k; j <= n; j++ {
				m[i][j] -= f * pivot[j-k]
			}
			flops(2 * (n + 1 - k))
		}
	}

	// Gather the reduced rows at the initiator.
	rowBytes := 8 * (n + 1)
	if rank != 0 {
		for i := 0; i < n; i++ {
			if i%p == rank {
				if err := c.Send(0, 1000+i, mpi.Float64Bytes(m[i])); err != nil {
					return nil, err
				}
			}
		}
		return &LinsolveResult{Elapsed: c.Wtime() - start}, nil
	}
	for i := 0; i < n; i++ {
		if i%p == 0 {
			continue
		}
		buf := make([]byte, rowBytes)
		if _, err := c.Recv(i%p, 1000+i, buf); err != nil {
			return nil, err
		}
		m[i] = mpi.BytesFloat64(buf)
	}

	// Back substitution at the initiator.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	flops(n * n)

	// Residual against the original system.
	orig := genSystem(n, cfg.Seed+7)
	var res float64
	for i := 0; i < n; i++ {
		s := -orig[i][n]
		for j := 0; j < n; j++ {
			s += orig[i][j] * x[j]
		}
		res = math.Max(res, math.Abs(s))
	}
	return &LinsolveResult{Elapsed: c.Wtime() - start, X: x, Residual: res}, nil
}
