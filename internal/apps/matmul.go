package apps

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/mpi"
)

// MatMulConfig parameterizes the distributed matrix multiply the paper
// reports as behaving like the linear solver.
type MatMulConfig struct {
	N          int
	SecPerFlop time.Duration
	Seed       int64
}

// MatMulResult reports the run; MaxError is valid at rank 0.
type MatMulResult struct {
	Elapsed  time.Duration
	MaxError float64 // vs sequential reference, sampled
}

// MatMul computes C = A x B with A's rows block-distributed and B
// broadcast from the initiator, then gathers C — all communication is the
// broadcast plus the final gather, as with the solver.
func MatMul(c *mpi.Comm, cfg MatMulConfig) (*MatMulResult, error) {
	n := cfg.N
	p := c.Size()
	rank := c.Rank()
	if cfg.SecPerFlop == 0 {
		cfg.SecPerFlop = MeikoSecPerFlop
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}

	start := c.Wtime()
	// Initiator broadcasts B (A is generated deterministically everywhere,
	// mirroring the solver's setup).
	bBytes := mpi.Float64Bytes(b)
	if err := c.Bcast(0, bBytes); err != nil {
		return nil, fmt.Errorf("matmul bcast: %w", err)
	}
	b = mpi.BytesFloat64(bBytes)

	lo := rank * n / p
	hi := (rank + 1) * n / p
	rows := make([]float64, (hi-lo)*n)
	for i := lo; i < hi; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			rows[(i-lo)*n+j] = s
		}
	}
	c.Compute(time.Duration(2*(hi-lo)*n*n) * cfg.SecPerFlop)

	// Gather C at the initiator.
	counts := make([]int, p)
	for r := 0; r < p; r++ {
		counts[r] = ((r+1)*n/p - r*n/p) * n * 8
	}
	var all []byte
	if rank == 0 {
		all = make([]byte, 8*n*n)
	}
	if err := c.Gatherv(0, mpi.Float64Bytes(rows), all, counts); err != nil {
		return nil, err
	}
	res := &MatMulResult{Elapsed: c.Wtime() - start}
	if rank == 0 {
		cm := mpi.BytesFloat64(all)
		// Spot-check against direct computation.
		for s := 0; s < 20; s++ {
			i := (s * 31) % n
			j := (s * 17) % n
			var want float64
			for k := 0; k < n; k++ {
				want += a[i*n+k] * b[k*n+j]
			}
			res.MaxError = math.Max(res.MaxError, math.Abs(cm[i*n+j]-want))
		}
	}
	return res, nil
}
