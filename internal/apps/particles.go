package apps

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/mpi"
)

// ParticlesConfig parameterizes the molecular-dynamics pairwise
// interaction code of Figures 8 (24 particles, Meiko) and 9 (128
// particles, cluster).
type ParticlesConfig struct {
	N          int // total particles; must divide by Size()
	SecPerFlop time.Duration
	Seed       int64
}

// flopsPerPair is the modeled cost of one pairwise force evaluation
// (displacements, r^2, inverse-square law, accumulation).
const flopsPerPair = 20

// ParticlesResult reports the run. Forces holds this rank's owned
// particles' force vectors.
type ParticlesResult struct {
	Elapsed time.Duration
	Forces  [][3]float64
}

// particleBytes is the wire size of one particle (x, y, z, mass).
const particleBytes = 32

func genParticles(n int, seed int64) [][4]float64 {
	rng := rand.New(rand.NewSource(seed + 3))
	ps := make([][4]float64, n)
	for i := range ps {
		ps[i] = [4]float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10, 1 + rng.Float64()}
	}
	return ps
}

// accumulate adds the forces that the particles in src exert on the
// particles in own (skipping self-pairs by identity index).
func accumulate(own [][4]float64, ownIdx int, src [][4]float64, srcIdx int, f [][3]float64) int {
	pairs := 0
	for i := range own {
		gi := ownIdx + i
		for j := range src {
			gj := srcIdx + j
			if gi == gj {
				continue
			}
			dx := src[j][0] - own[i][0]
			dy := src[j][1] - own[i][1]
			dz := src[j][2] - own[i][2]
			r2 := dx*dx + dy*dy + dz*dz + 1e-9
			inv := src[j][3] * own[i][3] / (r2 * math.Sqrt(r2))
			f[i][0] += dx * inv
			f[i][1] += dy * inv
			f[i][2] += dz * inv
			pairs++
		}
	}
	return pairs
}

func packParticles(ps [][4]float64) []byte {
	flat := make([]float64, 4*len(ps))
	for i, p := range ps {
		copy(flat[4*i:], p[:])
	}
	return mpi.Float64Bytes(flat)
}

func unpackParticles(b []byte) [][4]float64 {
	flat := mpi.BytesFloat64(b)
	ps := make([][4]float64, len(flat)/4)
	for i := range ps {
		copy(ps[i][:], flat[4*i:4*i+4])
	}
	return ps
}

// Particles computes all pairwise forces on N particles with the paper's
// ring algorithm: each rank owns N/P particles and, for P-1 phases, posts
// a nonblocking send of the traveling partition to the next rank, performs
// a blocking receive from the previous rank, and then waits on the send —
// exactly the communication structure of section 6.2.
func Particles(c *mpi.Comm, cfg ParticlesConfig) (*ParticlesResult, error) {
	p := c.Size()
	rank := c.Rank()
	if cfg.N%p != 0 {
		return nil, fmt.Errorf("particles: %d particles do not divide across %d ranks", cfg.N, p)
	}
	if cfg.SecPerFlop == 0 {
		cfg.SecPerFlop = MeikoSecPerFlop
	}
	per := cfg.N / p
	all := genParticles(cfg.N, cfg.Seed)
	own := all[rank*per : (rank+1)*per]

	start := c.Wtime()
	forces := make([][3]float64, per)
	// Phase 0: interactions within the local partition.
	pairs := accumulate(own, rank*per, own, rank*per, forces)
	c.Compute(time.Duration(pairs*flopsPerPair) * cfg.SecPerFlop)

	right := (rank + 1) % p
	left := (rank - 1 + p) % p
	traveling := make([][4]float64, per)
	copy(traveling, own)
	travelIdx := rank * per

	for phase := 1; phase < p; phase++ {
		sreq, err := c.Isend(right, phase, packParticles(traveling))
		if err != nil {
			return nil, err
		}
		buf := make([]byte, per*particleBytes)
		if _, err := c.Recv(left, phase, buf); err != nil {
			return nil, err
		}
		if _, err := sreq.Wait(); err != nil {
			return nil, err
		}
		traveling = unpackParticles(buf)
		travelIdx = ((rank-phase)%p + p) % p * per
		pairs := accumulate(own, rank*per, traveling, travelIdx, forces)
		c.Compute(time.Duration(pairs*flopsPerPair) * cfg.SecPerFlop)
	}
	return &ParticlesResult{Elapsed: c.Wtime() - start, Forces: forces}, nil
}

// SequentialForces computes the reference forces for verification.
func SequentialForces(n int, seed int64) [][3]float64 {
	all := genParticles(n, seed)
	f := make([][3]float64, n)
	accumulate(all, 0, all, 0, f)
	return f
}
