package apps

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/mpi"
)

// SampleSortConfig parameterizes the parallel sample sort — an extension
// application exercising the vector collectives (Gather, Bcast,
// Alltoallv) on an all-to-all-heavy communication pattern, the opposite
// corner from the solver's broadcast tree and the particles' ring.
type SampleSortConfig struct {
	N          int // total keys; divided evenly across ranks
	SecPerFlop time.Duration
	Seed       int64
}

// SampleSortResult reports the run; Sorted holds this rank's output
// partition (globally ordered across ranks by rank index).
type SampleSortResult struct {
	Elapsed time.Duration
	Sorted  []int64
}

// SampleSort sorts N uniformly random keys: each rank sorts its local
// block, the root gathers a regular sample and broadcasts P-1 splitters,
// every rank partitions its keys and exchanges partitions with Alltoallv,
// and a final local merge yields globally ordered output.
func SampleSort(c *mpi.Comm, cfg SampleSortConfig) (*SampleSortResult, error) {
	p := c.Size()
	rank := c.Rank()
	if cfg.N%p != 0 {
		return nil, fmt.Errorf("samplesort: %d keys do not divide across %d ranks", cfg.N, p)
	}
	if cfg.SecPerFlop == 0 {
		cfg.SecPerFlop = MeikoSecPerFlop
	}
	per := cfg.N / p
	rng := rand.New(rand.NewSource(cfg.Seed + int64(rank)*101))
	local := make([]int64, per)
	for i := range local {
		local[i] = rng.Int63n(1 << 40)
	}

	start := c.Wtime()
	charge := func(ops int) { c.Compute(time.Duration(ops) * cfg.SecPerFlop) }

	// Local sort: ~n log n comparisons.
	sort.Slice(local, func(i, j int) bool { return local[i] < local[j] })
	charge(per * bits(per))

	// Regular sampling: p samples per rank, gathered at the root.
	samples := make([]int64, p)
	for i := range samples {
		samples[i] = local[i*per/p]
	}
	var all []byte
	if rank == 0 {
		all = make([]byte, 8*p*p)
	}
	if err := c.Gather(0, mpi.Int64Bytes(samples), all); err != nil {
		return nil, err
	}

	// Root picks p-1 splitters and broadcasts them.
	splitters := make([]byte, 8*(p-1))
	if rank == 0 {
		gathered := mpi.BytesInt64(all)
		sort.Slice(gathered, func(i, j int) bool { return gathered[i] < gathered[j] })
		charge(p * p * bits(p*p))
		sp := make([]int64, p-1)
		for i := range sp {
			sp[i] = gathered[(i+1)*p]
		}
		splitters = mpi.Int64Bytes(sp)
	}
	if err := c.Bcast(0, splitters); err != nil {
		return nil, err
	}
	sp := mpi.BytesInt64(splitters)

	// Partition the sorted local block by splitter (binary-search bounds).
	bounds := make([]int, p+1)
	bounds[p] = per
	for i, s := range sp {
		bounds[i+1] = sort.Search(per, func(j int) bool { return local[j] > s })
	}
	scounts := make([]int, p)
	sdispls := make([]int, p)
	for i := 0; i < p; i++ {
		sdispls[i] = 8 * bounds[i]
		scounts[i] = 8 * (bounds[i+1] - bounds[i])
	}

	// Exchange partition sizes, then the partitions.
	sizes := make([]byte, 8*p)
	mine := make([]int64, p)
	for i := range mine {
		mine[i] = int64(scounts[i])
	}
	if err := c.Alltoall(mpi.Int64Bytes(mine), sizes); err != nil {
		return nil, err
	}
	rsz := mpi.BytesInt64(sizes)
	rcounts := make([]int, p)
	rdispls := make([]int, p)
	total := 0
	for i := range rcounts {
		rcounts[i] = int(rsz[i])
		rdispls[i] = total
		total += rcounts[i]
	}
	recv := make([]byte, total)
	if err := c.Alltoallv(mpi.Int64Bytes(local), scounts, sdispls, recv, rcounts, rdispls); err != nil {
		return nil, err
	}

	// Final local sort of the received partition.
	out := mpi.BytesInt64(recv)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	charge(len(out) * bits(len(out)))

	return &SampleSortResult{Elapsed: c.Wtime() - start, Sorted: out}, nil
}

// bits approximates log2(n) for the comparison-count charge.
func bits(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}
