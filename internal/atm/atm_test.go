package atm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func newCluster(n int) (*sim.Scheduler, *Cluster) {
	s := sim.NewScheduler(1)
	s.MaxEvents = 20_000_000
	return s, NewCluster(s, n, DefaultCosts())
}

// --- SAR / cells ---

func TestAAL5CellMath(t *testing.T) {
	cases := []struct{ n, cells int }{
		{0, 1}, {1, 1}, {40, 1}, {41, 2}, {88, 2}, {89, 3}, {1000, 21},
	}
	for _, c := range cases {
		if got := AAL5Cells(c.n); got != c.cells {
			t.Errorf("AAL5Cells(%d) = %d, want %d", c.n, got, c.cells)
		}
	}
	if AAL5WireBytes(40) != 53 {
		t.Errorf("AAL5WireBytes(40) = %d", AAL5WireBytes(40))
	}
}

func TestAAL34CellMath(t *testing.T) {
	if got := AAL34Cells(36); got != 1 {
		t.Errorf("AAL34Cells(36) = %d, want 1", got)
	}
	if got := AAL34Cells(37); got != 2 {
		t.Errorf("AAL34Cells(37) = %d, want 2", got)
	}
	// AAL3/4 wastes more wire than AAL5 for the same payload.
	if AAL34WireBytes(1000) <= AAL5WireBytes(1000) {
		t.Error("AAL3/4 should cost more cells than AAL5")
	}
}

func TestSegmentReassembleIdentity(t *testing.T) {
	prop := func(data []byte, cp uint8) bool {
		cellPayload := int(cp%64) + 1
		return bytes.Equal(Reassemble(Segment(data, cellPayload)), data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentSizes(t *testing.T) {
	cells := Segment(make([]byte, 100), 48)
	if len(cells) != 3 || len(cells[0]) != 48 || len(cells[2]) != 4 {
		t.Fatalf("segment sizes wrong: %d cells", len(cells))
	}
}

// --- media ---

func TestEthernetSharedMediumContention(t *testing.T) {
	s, cl := newCluster(4)
	var done []sim.Time
	s.At(0, func() {
		// Two disjoint host pairs still contend on the shared wire.
		cl.Eth.Deliver(0, 1, 1000, DeliverOpts{}, func() { done = append(done, s.Now()) })
		cl.Eth.Deliver(2, 3, 1000, DeliverOpts{}, func() { done = append(done, s.Now()) })
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatal("frames lost")
	}
	gap := done[1] - done[0]
	wire := sim.Time(sim.Duration(FrameWireBytes(1000)) * cl.Costs.EthPerByte)
	if gap < wire {
		t.Fatalf("second frame finished only %v after first; shared wire not serializing (frame time %v)", gap, wire)
	}
}

func TestATMDisjointPairsParallel(t *testing.T) {
	s, cl := newCluster(4)
	var done []sim.Time
	s.At(0, func() {
		cl.Atm.Deliver(0, 1, 8000, DeliverOpts{}, func() { done = append(done, s.Now()) })
		cl.Atm.Deliver(2, 3, 8000, DeliverOpts{}, func() { done = append(done, s.Now()) })
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done[0] != done[1] {
		t.Fatalf("disjoint ATM pairs did not run in parallel: %v vs %v", done[0], done[1])
	}
}

func TestLossInjectionDeterministic(t *testing.T) {
	run := func() int {
		s, cl := newCluster(2)
		cl.SetFaults(Faults{Seed: 7, Loss: 0.3})
		delivered := 0
		s.At(0, func() {
			for i := 0; i < 100; i++ {
				cl.Medium(OverEthernet).Deliver(0, 1, 100, DeliverOpts{Droppable: true}, func() { delivered++ })
			}
		})
		s.Run()
		return delivered
	}
	a, b := run(), run()
	if a == 100 || a == 0 {
		t.Fatalf("loss rate ineffective: %d delivered", a)
	}
	if a != b {
		t.Fatalf("loss injection nondeterministic: %d vs %d", a, b)
	}
}

func TestNonDroppableNeverLost(t *testing.T) {
	s, cl := newCluster(2)
	cl.SetFaults(Faults{Seed: 1, Loss: 1.0})
	delivered := 0
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			cl.Medium(OverEthernet).Deliver(0, 1, 100, DeliverOpts{}, func() { delivered++ })
		}
	})
	s.Run()
	if delivered != 10 {
		t.Fatalf("non-droppable frames lost: %d/10", delivered)
	}
}

// --- TCP ---

func tcpPingPong(t *testing.T, k MediumKind, n, iters int) sim.Duration {
	t.Helper()
	s, cl := newCluster(2)
	a, b := cl.TCPPair(0, 1, k)
	msg := make([]byte, n)
	var rtt sim.Duration
	s.Spawn("h0", func(p *sim.Proc) {
		buf := make([]byte, n)
		start := p.Now()
		for i := 0; i < iters; i++ {
			a.Write(p, msg)
			a.ReadFull(p, buf)
		}
		rtt = sim.Duration(p.Now()-start) / sim.Duration(iters)
	})
	s.Spawn("h1", func(p *sim.Proc) {
		buf := make([]byte, n)
		for i := 0; i < iters; i++ {
			b.ReadFull(p, buf)
			b.Write(p, msg)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return rtt
}

// Paper anchors (Table 1): 1-byte TCP round trips of ~925 us over Ethernet
// and ~1065 us over ATM.
func TestTCPRTTCalibrationEthernet(t *testing.T) {
	us := float64(tcpPingPong(t, OverEthernet, 1, 10)) / 1e3
	if us < 880 || us > 970 {
		t.Fatalf("tcp/eth 1-byte RTT = %.0f us, want ~925 (paper anchor)", us)
	}
}

func TestTCPRTTCalibrationATM(t *testing.T) {
	us := float64(tcpPingPong(t, OverATM, 1, 10)) / 1e3
	if us < 1010 || us > 1120 {
		t.Fatalf("tcp/atm 1-byte RTT = %.0f us, want ~1065 (paper anchor)", us)
	}
}

// ATM loses at tiny messages (driver cost) but wins at large ones
// (15x wire bandwidth) — Figure 5's crossover.
func TestTCPEthATMCrossover(t *testing.T) {
	smallEth := tcpPingPong(t, OverEthernet, 1, 5)
	smallATM := tcpPingPong(t, OverATM, 1, 5)
	if smallATM < smallEth {
		t.Fatalf("1-byte: atm %v < eth %v; paper shows ATM slower for tiny messages", smallATM, smallEth)
	}
	bigEth := tcpPingPong(t, OverEthernet, 8192, 5)
	bigATM := tcpPingPong(t, OverATM, 8192, 5)
	if bigATM > bigEth {
		t.Fatalf("8KB: atm %v > eth %v; ATM should win for large messages", bigATM, bigEth)
	}
}

func TestTCPStreamIntegrity(t *testing.T) {
	s, cl := newCluster(2)
	a, b := cl.TCPPair(0, 1, OverATM)
	const total = 200_000
	src := make([]byte, total)
	for i := range src {
		src[i] = byte(i * 7)
	}
	var got []byte
	s.Spawn("w", func(p *sim.Proc) {
		// Write in irregular chunks.
		for off := 0; off < total; {
			n := 1 + (off*13)%7000
			if off+n > total {
				n = total - off
			}
			a.Write(p, src[off:off+n])
			off += n
		}
	})
	s.Spawn("r", func(p *sim.Proc) {
		buf := make([]byte, 3000)
		for len(got) < total {
			n := b.Read(p, buf)
			got = append(got, buf[:n]...)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("TCP delivered different bytes than were written")
	}
}

func TestTCPWindowBlocksSender(t *testing.T) {
	s, cl := newCluster(2)
	a, b := cl.TCPPair(0, 1, OverATM)
	const chunk = 32 * 1024
	var wroteThird sim.Time
	const readerDelay = 500 * time.Millisecond
	s.Spawn("w", func(p *sim.Proc) {
		a.Write(p, make([]byte, chunk))
		a.Write(p, make([]byte, chunk))
		// Window (64KB) now full: the third write must block until the
		// reader drains.
		a.Write(p, make([]byte, chunk))
		wroteThird = p.Now()
	})
	s.Spawn("r", func(p *sim.Proc) {
		p.Advance(readerDelay)
		buf := make([]byte, 3*chunk)
		b.ReadFull(p, buf)
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if wroteThird < sim.Time(readerDelay) {
		t.Fatalf("third write completed at %v, before reader drained at %v", wroteThird, readerDelay)
	}
}

func TestTCPBandwidthShape(t *testing.T) {
	// One-way throughput: ATM must be many times Ethernet, and Ethernet
	// must land near its 1.25 MB/s line rate (Figure 6's shape).
	bw := func(k MediumKind) float64 {
		s, cl := newCluster(2)
		a, b := cl.TCPPair(0, 1, k)
		const total = 1 << 20
		var elapsed sim.Duration
		s.Spawn("w", func(p *sim.Proc) {
			for i := 0; i < total/(32*1024); i++ {
				a.Write(p, make([]byte, 32*1024))
			}
		})
		s.Spawn("r", func(p *sim.Proc) {
			buf := make([]byte, total)
			b.ReadFull(p, buf)
			elapsed = sim.Duration(p.Now())
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(total) / elapsed.Seconds() / 1e6
	}
	eth := bw(OverEthernet)
	am := bw(OverATM)
	if eth < 0.8 || eth > 1.2 {
		t.Fatalf("tcp/eth bandwidth = %.2f MB/s, want ~1.0-1.1", eth)
	}
	if am < 4 || am > 14 {
		t.Fatalf("tcp/atm bandwidth = %.2f MB/s, want mid-single-digit", am)
	}
	if am < 4*eth {
		t.Fatalf("atm (%.2f) should be several times eth (%.2f)", am, eth)
	}
}

// --- UDP ---

func TestUDPDeliversDatagram(t *testing.T) {
	s, cl := newCluster(2)
	u0 := cl.UDPSocket(0, OverATM)
	u1 := cl.UDPSocket(1, OverATM)
	msg := []byte("hello atm")
	s.Spawn("tx", func(p *sim.Proc) { u0.SendTo(p, 1, msg) })
	s.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 64)
		n, src := u1.RecvFrom(p, buf)
		if src != 0 || !bytes.Equal(buf[:n], msg) {
			t.Errorf("got (%d, %q)", src, buf[:n])
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUDPFragmentationRoundTrip(t *testing.T) {
	s, cl := newCluster(2)
	u0 := cl.UDPSocket(0, OverEthernet) // MTU 1500: forces fragmentation
	u1 := cl.UDPSocket(1, OverEthernet)
	msg := make([]byte, 6000)
	for i := range msg {
		msg[i] = byte(i)
	}
	s.Spawn("tx", func(p *sim.Proc) { u0.SendTo(p, 1, msg) })
	s.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 8000)
		n, _ := u1.RecvFrom(p, buf)
		if n != 6000 || !bytes.Equal(buf[:n], msg) {
			t.Errorf("fragmented datagram corrupted (n=%d)", n)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUDPLossDropsDatagrams(t *testing.T) {
	s, cl := newCluster(2)
	cl.SetFaults(Faults{Seed: 3, Loss: 0.5})
	u0 := cl.UDPSocket(0, OverATM)
	u1 := cl.UDPSocket(1, OverATM)
	const sent = 60
	got := 0
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < sent; i++ {
			u0.SendTo(p, 1, []byte{byte(i)})
		}
	})
	s.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for {
			if u1.Readable() {
				u1.RecvFrom(p, buf)
				got++
				continue
			}
			if p.Now() > sim.Time(2*time.Second) {
				return
			}
			p.Advance(10 * time.Millisecond)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got == sent || got == 0 {
		t.Fatalf("loss rate 0.5 delivered %d/%d", got, sent)
	}
}

// --- Fore AAL4 (Figure 4) ---

func rawPingPong(t *testing.T, send func(p *sim.Proc, host, dst int, data []byte), recv func(p *sim.Proc, host int, buf []byte), n, iters int, s *sim.Scheduler) sim.Duration {
	t.Helper()
	var rtt sim.Duration
	s.Spawn("h0", func(p *sim.Proc) {
		buf := make([]byte, n)
		start := p.Now()
		for i := 0; i < iters; i++ {
			send(p, 0, 1, make([]byte, n))
			recv(p, 0, buf)
		}
		rtt = sim.Duration(p.Now()-start) / sim.Duration(iters)
	})
	s.Spawn("h1", func(p *sim.Proc) {
		buf := make([]byte, n)
		for i := 0; i < iters; i++ {
			recv(p, 1, buf)
			send(p, 1, 0, make([]byte, n))
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return rtt
}

// Figure 4: over ATM, Fore AAL4, TCP and UDP latencies are within ~25% of
// each other (the STREAMS stack swamps the adaptation-layer savings).
func TestFigure4AAL4NotMuchFasterThanTCPUDP(t *testing.T) {
	size := 512

	s1, cl1 := newCluster(2)
	a0, a1 := cl1.AAL4Socket(0), cl1.AAL4Socket(1)
	aal := rawPingPong(t,
		func(p *sim.Proc, host, dst int, data []byte) {
			if host == 0 {
				a0.SendTo(p, dst, data)
			} else {
				a1.SendTo(p, dst, data)
			}
		},
		func(p *sim.Proc, host int, buf []byte) {
			if host == 0 {
				a0.RecvFrom(p, buf)
			} else {
				a1.RecvFrom(p, buf)
			}
		}, size, 10, s1)

	s2, cl2 := newCluster(2)
	u0, u1 := cl2.UDPSocket(0, OverATM), cl2.UDPSocket(1, OverATM)
	udp := rawPingPong(t,
		func(p *sim.Proc, host, dst int, data []byte) {
			if host == 0 {
				u0.SendTo(p, dst, data)
			} else {
				u1.SendTo(p, dst, data)
			}
		},
		func(p *sim.Proc, host int, buf []byte) {
			if host == 0 {
				u0.RecvFrom(p, buf)
			} else {
				u1.RecvFrom(p, buf)
			}
		}, size, 10, s2)

	tcp := tcpPingPong(t, OverATM, size, 10)

	ratio := func(a, b sim.Duration) float64 { return float64(a) / float64(b) }
	if r := ratio(tcp, aal); r < 0.75 || r > 1.35 {
		t.Fatalf("tcp/aal4 ratio = %.2f (tcp %v, aal4 %v); Figure 4 shows them close", r, tcp, aal)
	}
	if r := ratio(udp, aal); r < 0.7 || r > 1.3 {
		t.Fatalf("udp/aal4 ratio = %.2f (udp %v, aal4 %v); Figure 4 shows them close", r, udp, aal)
	}
}

// --- RUDP ---

func TestRUDPReliableInOrderUnderLoss(t *testing.T) {
	s, cl := newCluster(2)
	cl.SetFaults(Faults{Seed: 5, Loss: 0.25})
	r0 := NewRUDP(cl.UDPSocket(0, OverATM))
	r1 := NewRUDP(cl.UDPSocket(1, OverATM))
	const msgs = 40
	var got []byte
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			if err := r0.Send(p, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
		// Keep draining acks so retransmission state settles.
		for i := 0; i < 200 && len(r0.peer(1).unacked) > 0; i++ {
			r0.drain(p)
			p.Advance(5 * time.Millisecond)
		}
	})
	s.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 16)
		for i := 0; i < msgs; i++ {
			n, src, err := r1.Recv(p, buf)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if n != 1 || src != 0 {
				t.Errorf("recv %d: n=%d src=%d", i, n, src)
			}
			got = append(got, buf[0])
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if int(b) != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if r0.Retransmits == 0 {
		t.Error("no retransmissions under 25% loss — loss injection not exercised")
	}
}

func TestRUDPNoLossNoRetransmit(t *testing.T) {
	s, cl := newCluster(2)
	r0 := NewRUDP(cl.UDPSocket(0, OverATM))
	r1 := NewRUDP(cl.UDPSocket(1, OverATM))
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			r0.Send(p, 1, []byte{byte(i)})
		}
	})
	s.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < 10; i++ {
			r1.Recv(p, buf)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if r0.Retransmits != 0 {
		t.Fatalf("%d spurious retransmissions on a lossless link", r0.Retransmits)
	}
}

func TestRUDPWindowBlocks(t *testing.T) {
	s, cl := newCluster(2)
	r0 := NewRUDP(cl.UDPSocket(0, OverATM))
	r1 := NewRUDP(cl.UDPSocket(1, OverATM))
	r0.Window = 4
	const msgs = 12
	var sendDone sim.Time
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			r0.Send(p, 1, []byte{byte(i)})
		}
		sendDone = p.Now()
	})
	s.Spawn("rx", func(p *sim.Proc) {
		p.Advance(100 * time.Millisecond)
		buf := make([]byte, 8)
		for i := 0; i < msgs; i++ {
			r1.Recv(p, buf)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone < sim.Time(100*time.Millisecond) {
		t.Fatalf("12 sends with window 4 finished at %v, before receiver started acking", sendDone)
	}
}

func TestCSMACDAddsContentionCost(t *testing.T) {
	run := func(csmacd bool) (sim.Time, int) {
		s, cl := newCluster(4)
		cl.Eth.CSMACD = csmacd
		var last sim.Time
		s.At(0, func() {
			for i := 0; i < 12; i++ {
				src := i % 4
				dst := (i + 1) % 4
				cl.Eth.Deliver(src, dst, 1000, DeliverOpts{}, func() {
					if s.Now() > last {
						last = s.Now()
					}
				})
			}
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return last, cl.Eth.Collisions
	}
	plain, c0 := run(false)
	backoff, c1 := run(true)
	if c0 != 0 {
		t.Fatalf("collisions counted with CSMACD off: %d", c0)
	}
	if c1 == 0 {
		t.Fatal("no collisions under 12-frame burst with CSMACD on")
	}
	if backoff <= plain {
		t.Fatalf("CSMA/CD backoff (%v) did not slow the contended burst (plain %v)", backoff, plain)
	}
}

func TestCSMACDUncontendedUnchanged(t *testing.T) {
	run := func(csmacd bool) sim.Time {
		s, cl := newCluster(2)
		cl.Eth.CSMACD = csmacd
		var done sim.Time
		s.At(0, func() {
			cl.Eth.Deliver(0, 1, 500, DeliverOpts{}, func() { done = s.Now() })
		})
		s.Run()
		return done
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("uncontended frame differs: %v vs %v", a, b)
	}
}

func TestCSMACDDeterministic(t *testing.T) {
	run := func() sim.Time {
		s, cl := newCluster(3)
		cl.Eth.CSMACD = true
		var last sim.Time
		s.At(0, func() {
			for i := 0; i < 9; i++ {
				cl.Eth.Deliver(i%3, (i+1)%3, 800, DeliverOpts{}, func() { last = s.Now() })
			}
		})
		s.Run()
		return last
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic backoff: %v vs %v", a, b)
	}
}

// The classic Nagle x delayed-ack interaction: a one-way stream of small
// writes stalls on the 200 ms ack timer; with TCP_NODELAY semantics
// (default) the same stream flows at wire speed.
func TestNagleDelayedAckStall(t *testing.T) {
	run := func(nagle bool) sim.Time {
		s, cl := newCluster(2)
		a, b := cl.TCPPair(0, 1, OverEthernet)
		if nagle {
			a.Nagle, a.DelayedAck = true, true
			b.Nagle, b.DelayedAck = true, true
		}
		const msgs, sz = 10, 100
		var done sim.Time
		s.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < msgs; i++ {
				a.Write(p, make([]byte, sz))
			}
		})
		s.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, msgs*sz)
			b.ReadFull(p, buf)
			done = p.Now()
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	nodelay := run(false)
	nagle := run(true)
	if nodelay > sim.Time(50*time.Millisecond) {
		t.Fatalf("nodelay stream took %v", nodelay)
	}
	if nagle < sim.Time(150*time.Millisecond) {
		t.Fatalf("nagle+delayed-ack stream took only %v; expected a ~200ms ack stall", nagle)
	}
}

// Bidirectional traffic escapes the stall: acks piggyback on reverse data.
func TestNaglePingPongPiggyback(t *testing.T) {
	s, cl := newCluster(2)
	a, b := cl.TCPPair(0, 1, OverEthernet)
	for _, c := range []*TCP{a, b} {
		c.Nagle, c.DelayedAck = true, true
	}
	var rtt sim.Duration
	const iters = 5
	s.Spawn("h0", func(p *sim.Proc) {
		buf := make([]byte, 64)
		start := p.Now()
		for i := 0; i < iters; i++ {
			a.Write(p, make([]byte, 64))
			a.ReadFull(p, buf)
		}
		rtt = sim.Duration(p.Now()-start) / iters
	})
	s.Spawn("h1", func(p *sim.Proc) {
		buf := make([]byte, 64)
		for i := 0; i < iters; i++ {
			b.ReadFull(p, buf)
			b.Write(p, make([]byte, 64))
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if rtt > 20*time.Millisecond {
		t.Fatalf("ping-pong RTT %v with Nagle; piggybacked acks should avoid the 200ms stall", rtt)
	}
}

// Data held by Nagle is never lost or reordered.
func TestNagleStreamIntegrity(t *testing.T) {
	s, cl := newCluster(2)
	a, b := cl.TCPPair(0, 1, OverATM)
	a.Nagle, a.DelayedAck = true, true
	b.Nagle, b.DelayedAck = true, true
	const total = 50_000
	src := make([]byte, total)
	for i := range src {
		src[i] = byte(i * 11)
	}
	var got []byte
	s.Spawn("tx", func(p *sim.Proc) {
		for off := 0; off < total; {
			n := 1 + (off*7)%900
			if off+n > total {
				n = total - off
			}
			a.Write(p, src[off:off+n])
			off += n
		}
	})
	s.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 4096)
		for len(got) < total {
			n := b.Read(p, buf)
			got = append(got, buf[:n]...)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("nagle reordered or lost bytes")
	}
}

// U-Net (the paper's future-work direction): the user-level path must cut
// the kernel round trip by an order of magnitude, landing near the
// SOSP'95 measurements (~65-100 us small-message RTT).
func TestUNetRTTNearPaper(t *testing.T) {
	s, cl := newCluster(2)
	u0 := cl.UNetSocket(0)
	u1 := cl.UNetSocket(1)
	var rtt sim.Duration
	const iters = 10
	s.Spawn("h0", func(p *sim.Proc) {
		buf := make([]byte, 8)
		start := p.Now()
		for i := 0; i < iters; i++ {
			u0.SendTo(p, 1, make([]byte, 8))
			u0.RecvFrom(p, buf)
		}
		rtt = sim.Duration(p.Now()-start) / iters
	})
	s.Spawn("h1", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < iters; i++ {
			u1.RecvFrom(p, buf)
			u1.SendTo(p, 0, make([]byte, 8))
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	us := float64(rtt) / 1e3
	if us < 40 || us > 130 {
		t.Fatalf("unet 8B RTT = %.1f us, want tens of microseconds (U-Net ~65)", us)
	}
	tcp := tcpPingPong(t, OverATM, 8, 5)
	if sim.Duration(rtt)*8 > tcp {
		t.Fatalf("unet RTT %v not an order of magnitude under tcp %v", rtt, tcp)
	}
}

func TestUNetPayloadIntegrityAndOrder(t *testing.T) {
	s, cl := newCluster(2)
	u0 := cl.UNetSocket(0)
	u1 := cl.UNetSocket(1)
	const msgs = 20
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			data := make([]byte, 100+i)
			for j := range data {
				data[j] = byte(i + j)
			}
			u0.SendTo(p, 1, data)
		}
	})
	s.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 256)
		for i := 0; i < msgs; i++ {
			n, src := u1.RecvFrom(p, buf)
			if src != 0 || n != 100+i {
				t.Errorf("msg %d: n=%d src=%d", i, n, src)
				return
			}
			for j := 0; j < n; j++ {
				if buf[j] != byte(i+j) {
					t.Errorf("msg %d corrupt at %d", i, j)
					return
				}
			}
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
