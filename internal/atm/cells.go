package atm

// Segmentation and reassembly for the ATM adaptation layers. The GIA-200's
// i960 performs SAR on the card; the model charges its per-packet cost and
// computes wire occupancy from the exact cell counts, and these helpers are
// also used directly (with real byte movement) by the AAL tests.

// AAL5Cells reports the number of 53-byte cells an n-byte PDU occupies:
// payload plus the 8-byte trailer, padded up to a whole number of 48-byte
// cell payloads.
func AAL5Cells(n int) int {
	return (n + AAL5Trailer + AAL5CellPayload - 1) / AAL5CellPayload
}

// AAL5WireBytes reports wire occupancy of an n-byte PDU in bytes.
func AAL5WireBytes(n int) int { return AAL5Cells(n) * CellBytes }

// AAL34Cells reports the cell count for an n-byte AAL3/4 PDU: each cell
// carries 44 payload bytes (4 bytes of per-cell SAR header inside the
// 48-byte payload field), and the CPCS adds an 8-byte envelope.
func AAL34Cells(n int) int {
	return (n + 8 + AAL34CellPayload - 1) / AAL34CellPayload
}

// AAL34WireBytes reports wire occupancy of an n-byte AAL3/4 PDU.
func AAL34WireBytes(n int) int { return AAL34Cells(n) * CellBytes }

// Segment splits payload into cell-payload-sized chunks (the data the SAR
// hardware would place into successive cells). The final chunk is not
// padded; Reassemble inverts Segment exactly.
func Segment(payload []byte, cellPayload int) [][]byte {
	if cellPayload <= 0 {
		panic("atm: non-positive cell payload")
	}
	var cells [][]byte
	for off := 0; off < len(payload); off += cellPayload {
		end := off + cellPayload
		if end > len(payload) {
			end = len(payload)
		}
		cells = append(cells, payload[off:end])
	}
	return cells
}

// Reassemble concatenates cell payloads back into the original PDU.
func Reassemble(cells [][]byte) []byte {
	var n int
	for _, c := range cells {
		n += len(c)
	}
	out := make([]byte, 0, n)
	for _, c := range cells {
		out = append(out, c...)
	}
	return out
}
