package atm

import (
	"repro/internal/sim"
)

// Cluster is the modeled testbed: n workstation hosts attached to both the
// shared Ethernet and the ATM switch, as in the paper's evaluation.
type Cluster struct {
	S     *sim.Scheduler
	Costs Costs
	N     int
	Eth   *Ethernet
	Atm   *ATMNet

	udpPorts map[MediumKind]map[int]*UDP // medium -> host -> bound socket
	aal4     map[int]*AAL4               // host -> Fore API socket
	unet     map[int]*UNet               // host -> user-level endpoint
}

// NewCluster builds an n-host cluster on scheduler s.
func NewCluster(s *sim.Scheduler, n int, c Costs) *Cluster {
	return &Cluster{
		S:     s,
		Costs: c,
		N:     n,
		Eth:   NewEthernet(s, c),
		Atm:   NewATMNet(s, n, c),
		udpPorts: map[MediumKind]map[int]*UDP{
			OverEthernet: {},
			OverATM:      {},
		},
	}
}

// Medium returns the requested wire.
func (cl *Cluster) Medium(k MediumKind) Medium {
	if k == OverEthernet {
		return cl.Eth
	}
	return cl.Atm
}

// readExtra is the per-read stack cost that differs between the Ethernet
// driver and the Fore STREAMS stack (Table 1's 65 vs 85 µs reads).
func (cl *Cluster) readExtra(k MediumKind) sim.Duration {
	if k == OverEthernet {
		return cl.Costs.ReadExtraEth
	}
	return cl.Costs.ReadExtraATM
}
