package atm

import (
	"repro/internal/sim"
)

// Cluster is the modeled testbed: n workstation hosts attached to both the
// shared Ethernet and the ATM switch, as in the paper's evaluation.
type Cluster struct {
	S     *sim.Scheduler
	Costs Costs
	N     int
	Eth   *Ethernet
	Atm   *ATMNet

	// Every protocol stack reaches the wire through these fault injectors
	// (transparent until SetFaults installs a policy).
	ethInj, atmInj *Injector

	udpPorts map[MediumKind]map[int]*UDP // medium -> host -> bound socket
	aal4     map[int]*AAL4               // host -> Fore API socket
	unet     map[int]*UNet               // host -> user-level endpoint
}

// NewCluster builds an n-host cluster on scheduler s.
func NewCluster(s *sim.Scheduler, n int, c Costs) *Cluster {
	cl := &Cluster{
		S:     s,
		Costs: c,
		N:     n,
		Eth:   NewEthernet(s, c),
		Atm:   NewATMNet(s, n, c),
		udpPorts: map[MediumKind]map[int]*UDP{
			OverEthernet: {},
			OverATM:      {},
		},
	}
	cl.ethInj = NewInjector(s, cl.Eth)
	cl.atmInj = NewInjector(s, cl.Atm)
	return cl
}

// Medium returns the requested wire, behind its fault injector.
func (cl *Cluster) Medium(k MediumKind) Medium {
	return cl.Injector(k)
}

// Injector returns the fault injector in front of medium k.
func (cl *Cluster) Injector(k MediumKind) *Injector {
	if k == OverEthernet {
		return cl.ethInj
	}
	return cl.atmInj
}

// SetFaults installs one fault policy on both media (each injector draws
// from its own stream of the policy seed).
func (cl *Cluster) SetFaults(f Faults) error {
	if err := cl.ethInj.Set(f); err != nil {
		return err
	}
	return cl.atmInj.Set(f)
}

// readExtra is the per-read stack cost that differs between the Ethernet
// driver and the Fore STREAMS stack (Table 1's 65 vs 85 µs reads).
func (cl *Cluster) readExtra(k MediumKind) sim.Duration {
	if k == OverEthernet {
		return cl.Costs.ReadExtraEth
	}
	return cl.Costs.ReadExtraATM
}
