package atm

import (
	"repro/internal/sim"
)

// Cluster is the modeled testbed: n workstation hosts attached to both the
// shared Ethernet and the ATM switch, as in the paper's evaluation.
//
// A cluster can live on one scheduler (NewCluster) or with its hosts
// pinned to shard lanes (NewShardedCluster): each host's sockets, FIFOs,
// and timers then stay on that host's lane, the ATM switch hop routes
// between lanes, and the shared Ethernet segment homes on lane 0 as a
// sim.Stage. SwitchDelay is the lookahead bound (the Ethernet spans are
// far coarser and accept any lookahead the switch accepts).
type Cluster struct {
	S     *sim.Scheduler
	Costs Costs
	N     int
	Eth   *Ethernet
	Atm   *ATMNet

	// Every protocol stack reaches the wire through these fault injectors
	// (transparent until SetFaults installs a policy). On a sharded
	// cluster each (src, dst) link draws from its own seed-derived RNG
	// stream, so fault decisions are independent of lane interleaving;
	// single-lane runs keep the legacy world-global stream bit-for-bit.
	ethInj, atmInj *Injector

	scheds []*sim.Scheduler // per-host lane scheduler; nil when unsharded
	laneOf []int

	udpPorts map[MediumKind]map[int]*UDP // medium -> host -> bound socket
	aal4     map[int]*AAL4               // host -> Fore API socket
	unet     map[int]*UNet               // host -> user-level endpoint
}

// NewCluster builds an n-host cluster on scheduler s.
func NewCluster(s *sim.Scheduler, n int, c Costs) *Cluster {
	cl := &Cluster{
		S:     s,
		Costs: c,
		N:     n,
		Eth:   NewEthernet(s, c),
		Atm:   NewATMNet(s, n, c),
		udpPorts: map[MediumKind]map[int]*UDP{
			OverEthernet: {},
			OverATM:      {},
		},
	}
	cl.ethInj = NewInjector(s, cl.Eth)
	cl.atmInj = NewInjector(s, cl.Atm)
	return cl
}

// NewShardedCluster builds a cluster with host i pinned to lane laneOf[i].
// Cl.S is lane 0's scheduler (world-global bookkeeping); per-host work
// must use SchedOf.
func NewShardedCluster(sh *sim.Shard, laneOf []int, c Costs) *Cluster {
	n := len(laneOf)
	cl := &Cluster{
		S:      sh.Lane(0),
		Costs:  c,
		N:      n,
		Eth:    NewShardedEthernet(sh, laneOf, c),
		Atm:    NewShardedATMNet(sh, laneOf, c),
		laneOf: laneOf,
		udpPorts: map[MediumKind]map[int]*UDP{
			OverEthernet: {},
			OverATM:      {},
		},
	}
	for _, l := range laneOf {
		cl.scheds = append(cl.scheds, sh.Lane(l))
	}
	cl.ethInj = NewInjector(cl.S, cl.Eth)
	cl.atmInj = NewInjector(cl.S, cl.Atm)
	cl.ethInj.Shard(n, cl.SchedOf)
	cl.atmInj.Shard(n, cl.SchedOf)
	return cl
}

// SchedOf reports host h's scheduler: its shard lane when sharded, the
// cluster scheduler otherwise. Per-host protocol state — socket buffers,
// conds, retransmit timers — must live on it.
func (cl *Cluster) SchedOf(h int) *sim.Scheduler {
	if cl.scheds == nil {
		return cl.S
	}
	return cl.scheds[h]
}

// LaneOf reports host h's lane (0 when unsharded).
func (cl *Cluster) LaneOf(h int) int {
	if cl.laneOf == nil {
		return 0
	}
	return cl.laneOf[h]
}

// Medium returns the requested wire, behind its fault injector.
func (cl *Cluster) Medium(k MediumKind) Medium {
	return cl.Injector(k)
}

// Injector returns the fault injector in front of medium k.
func (cl *Cluster) Injector(k MediumKind) *Injector {
	if k == OverEthernet {
		return cl.ethInj
	}
	return cl.atmInj
}

// SetFaults installs one fault policy on both media (each injector draws
// from its own stream of the policy seed).
func (cl *Cluster) SetFaults(f Faults) error {
	if err := cl.ethInj.Set(f); err != nil {
		return err
	}
	return cl.atmInj.Set(f)
}

// readExtra is the per-read stack cost that differs between the Ethernet
// driver and the Fore STREAMS stack (Table 1's 65 vs 85 µs reads).
func (cl *Cluster) readExtra(k MediumKind) sim.Duration {
	if k == OverEthernet {
		return cl.Costs.ReadExtraEth
	}
	return cl.Costs.ReadExtraATM
}
