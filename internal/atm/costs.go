// Package atm models the paper's workstation cluster: SGI hosts on a
// 10 Mbit/s shared Ethernet and a Fore ASX-200 ATM switch with 155 Mbit/s
// ports and GIA-200 interface cards (i960 segmentation-and-reassembly
// processors), plus the IRIX kernel protocol stacks the paper measures
// through: TCP/IP, UDP/IP and the Fore AAL3/4 API on STREAMS.
//
// As on the Meiko, bytes are real and time is virtual; Costs carries the
// calibrated kernel/driver charges that reproduce Table 1 and Figures 4-6.
package atm

import (
	"time"

	"repro/internal/sim"
)

// Costs parameterizes the cluster model.
type Costs struct {
	// Syscall boundary.
	SyscallWrite sim.Duration // enter kernel for a send
	SyscallRead  sim.Duration // enter kernel for a receive
	ReadExtraEth sim.Duration // per-read stack cost over the Ethernet driver
	ReadExtraATM sim.Duration // per-read stack cost over the Fore STREAMS stack
	CopyPerByte  sim.Duration // user <-> kernel copy bandwidth

	// In-kernel protocol processing.
	TCPPerSegment   sim.Duration // TCP+IP output or input processing per segment
	UDPPerPacket    sim.Duration // UDP+IP processing per datagram
	ChecksumPerByte sim.Duration
	KernelWakeup    sim.Duration // interrupt-to-user scheduling latency

	// Driver / NIC.
	DriverEthPerFrame sim.Duration // Ethernet interrupt+driver per frame
	DriverATMPerFrame sim.Duration // Fore STREAMS driver per packet (the paper's AAL4 ~ TCP culprit)
	I960PerPacket     sim.Duration // on-card SAR processing per packet, each direction
	AAL4PerPacket     sim.Duration // Fore API processing per packet (excl. IP/UDP)

	// Wires.
	EthPerByte   sim.Duration // 10 Mbit/s shared medium
	ATMPerByte   sim.Duration // 155 Mbit/s per port
	SwitchDelay  sim.Duration // ASX-200 forwarding latency per packet
	EthPropDelay sim.Duration // Ethernet propagation (tiny)

	// Shared memory segment (the cluster's attached-memory interconnect:
	// hosts mapping one coherent segment, the CXL-style analogue of the
	// Meiko's remote-store hardware). No kernel, no framing — a store
	// becomes remotely visible after ShmLatency plus the segment's copy
	// bandwidth.
	ShmLatency sim.Duration // visibility latency of a remote store
	ShmPerByte sim.Duration // segment copy bandwidth
}

// DefaultCosts reproduces the paper's measured anchors:
//
//	tcp/eth 1-byte round trip ≈  925 µs (Figure 5, Table 1)
//	tcp/atm 1-byte round trip ≈ 1065 µs
//	read-for-type / read-for-envelope ≈ 65 µs (eth) and 85 µs (atm)
//	Fore AAL4 latency ≈ TCP ≈ UDP (Figure 4)
func DefaultCosts() Costs {
	return Costs{
		SyscallWrite: 60 * time.Microsecond,
		SyscallRead:  55 * time.Microsecond,
		ReadExtraEth: 10 * time.Microsecond,
		ReadExtraATM: 30 * time.Microsecond,
		CopyPerByte:  60 * time.Nanosecond, // ~16 MB/s kernel copy on a 133 MHz Indy

		TCPPerSegment:   127 * time.Microsecond,
		UDPPerPacket:    80 * time.Microsecond,
		ChecksumPerByte: 15 * time.Nanosecond,
		KernelWakeup:    55 * time.Microsecond,

		DriverEthPerFrame: 25 * time.Microsecond,
		DriverATMPerFrame: 112 * time.Microsecond,
		I960PerPacket:     15 * time.Microsecond,
		AAL4PerPacket:     140 * time.Microsecond,

		EthPerByte:   800 * time.Nanosecond, // 10 Mbit/s
		ATMPerByte:   52 * time.Nanosecond,  // 155 Mbit/s per port
		SwitchDelay:  10 * time.Microsecond,
		EthPropDelay: 2 * time.Microsecond,

		ShmLatency: 2 * time.Microsecond,
		ShmPerByte: 1 * time.Nanosecond, // ~1 GB/s segment bandwidth
	}
}

// Ethernet framing constants.
const (
	EthOverheadBytes = 38   // preamble, header, FCS, interframe gap
	EthMinPayload    = 46   // minimum frame payload (padded)
	EthMTU           = 1500 // maximum frame payload
)

// ATM constants.
const (
	CellBytes        = 53
	AAL5CellPayload  = 48
	AAL5Trailer      = 8
	AAL34CellPayload = 44
	ATMMTU           = 9180 // Classical IP over ATM default MTU
)

// IP/transport header sizes.
const (
	TCPIPHeader = 40
	UDPIPHeader = 28
)
