package atm

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// This file is the cluster's fault/condition layer: one composable policy
// (Faults) applied by an Injector that wraps any Medium. Every way the wire
// can misbehave — loss, added latency, jitter, reordering, duplication,
// partitions, scripted drops — lives here, seeded and deterministic, instead
// of being hand-rolled per medium. The protocol stacks above (UDP/RUDP, TCP,
// AAL4, U-Net) see only the Medium interface and are driven through faults
// without knowing the policy exists.

// Partition blocks all frames (droppable or not) between a host pair during
// a virtual-time window. A == -1 or B == -1 matches any host, so {-1, h}
// isolates h from everyone. Until == 0 means the partition never heals.
type Partition struct {
	A, B        int
	From, Until sim.Duration
}

// blocks reports whether the partition severs a src->dst frame at time now.
func (pt Partition) blocks(src, dst int, now sim.Time) bool {
	pair := func(a, b int) bool {
		return (pt.A == -1 || pt.A == a) && (pt.B == -1 || pt.B == b)
	}
	if !pair(src, dst) && !pair(dst, src) {
		return false
	}
	if now < sim.Time(pt.From) {
		return false
	}
	if pt.Until != 0 && now >= sim.Time(pt.Until) {
		return false
	}
	return true
}

// Faults is one fault policy. The zero value injects nothing. Probabilities
// are in [0, 1]; random draws come from a dedicated generator seeded with
// Seed, so fault decisions are reproducible and independent of the
// workload's own randomness.
type Faults struct {
	Seed int64

	// Loss drops each droppable frame with this probability. Frames sent
	// with DeliverOpts.Droppable == false (TCP segments, whose loss recovery
	// the model deliberately omits) are exempt, as are U-Net frames (the
	// switch's dedicated links are flow controlled and lossless).
	Loss float64
	// DropEveryN deterministically drops every Nth droppable frame
	// (1-based), for scripted scenarios independent of the seed.
	DropEveryN int

	// Delay adds a fixed one-way latency to every frame; Jitter adds a
	// further uniform draw from [0, Jitter) per frame.
	Delay  sim.Duration
	Jitter sim.Duration

	// Reorder holds each droppable frame for an extra ReorderDelay with
	// this probability, letting later frames overtake it (the media are
	// otherwise FIFO per pair). ReorderDelay == 0 uses DefaultReorderDelay.
	Reorder      float64
	ReorderDelay sim.Duration

	// Duplicate delivers each droppable frame twice with this probability.
	Duplicate float64

	// Partitions lists scheduled connectivity cuts.
	Partitions []Partition
}

// DefaultReorderDelay is the hold time applied to reordered frames when the
// policy does not set one: long enough that back-to-back small frames
// overtake, short against any RTO.
const DefaultReorderDelay = 500 * time.Microsecond

// active reports whether the policy can ever perturb a frame.
func (f Faults) active() bool {
	return f.Loss > 0 || f.DropEveryN > 0 || f.Delay > 0 || f.Jitter > 0 ||
		f.Reorder > 0 || f.Duplicate > 0 || len(f.Partitions) > 0
}

// Validate rejects out-of-range knobs.
func (f Faults) Validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("faults: %s probability %g outside [0, 1]", name, p)
		}
		return nil
	}
	if err := check("loss", f.Loss); err != nil {
		return err
	}
	if err := check("reorder", f.Reorder); err != nil {
		return err
	}
	if err := check("duplicate", f.Duplicate); err != nil {
		return err
	}
	if f.DropEveryN < 0 {
		return fmt.Errorf("faults: drop-every-N %d is negative", f.DropEveryN)
	}
	if f.Delay < 0 || f.Jitter < 0 || f.ReorderDelay < 0 {
		return fmt.Errorf("faults: negative delay")
	}
	for _, pt := range f.Partitions {
		if pt.Until != 0 && pt.Until <= pt.From {
			return fmt.Errorf("faults: partition %d-%d heals at %v before starting at %v", pt.A, pt.B, pt.Until, pt.From)
		}
	}
	return nil
}

// FaultStats counts injected events (tests and instrumentation). Counters
// are updated atomically: on a sharded cluster frames from different
// source lanes pass the injector concurrently.
type FaultStats struct {
	Dropped     int64 // frames lost to Loss or DropEveryN
	Partitioned int64 // frames severed by a partition
	Duplicated  int64 // frames delivered twice
	Reordered   int64 // frames held past their successors
	Delayed     int64 // frames carrying added Delay/Jitter
}

// Injector applies a Faults policy in front of a Medium. With no policy set
// it is a transparent passthrough that consumes no randomness, so a
// fault-free run is bit-identical to one without the injector. Frames
// surviving the policy enter the wrapped medium in their (possibly delayed)
// order; reordering works by holding a frame so its successors reach the
// FIFO wire first.
type Injector struct {
	s     *sim.Scheduler
	inner Medium

	policy *Faults
	rng    *rand.Rand
	nth    int // droppable-frame counter for DropEveryN

	// Per-link mode (sharded clusters): one independent RNG stream and
	// DropEveryN counter per (src, dst) pair, each derived from the policy
	// seed, the endpoints, and the medium kind. Frames of one pair always
	// originate on the source host's lane, so each stream is consumed
	// sequentially even when lanes run in parallel — and a single-lane run
	// keeps the legacy world-global stream, bit-identical to earlier
	// releases.
	links   []faultLink // n*n, indexed src*n+dst; nil when unsharded
	n       int
	schedOf func(h int) *sim.Scheduler

	Stats FaultStats
}

// faultLink is one (src, dst) pair's private fault stream.
type faultLink struct {
	rng *rand.Rand
	nth int
}

// NewInjector wraps inner with a (initially empty) fault policy.
func NewInjector(s *sim.Scheduler, inner Medium) *Injector {
	return &Injector{s: s, inner: inner}
}

// Shard switches the injector to per-link fault streams for an n-host
// sharded cluster, with schedOf naming each host's lane scheduler (fault
// decisions and added delays happen on the frame's source lane).
func (in *Injector) Shard(n int, schedOf func(h int) *sim.Scheduler) {
	in.n = n
	in.schedOf = schedOf
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash for
// deriving independent per-link seeds from (seed, src, dst, medium).
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// linkSeed derives the (src, dst) pair's stream seed.
func (in *Injector) linkSeed(seed int64, src, dst int) int64 {
	z := splitmix64(uint64(seed))
	z = splitmix64(z ^ uint64(src+1)<<32 ^ uint64(dst+1))
	z = splitmix64(z ^ uint64(in.inner.Kind()))
	return int64(z)
}

// Set installs policy f; an inactive policy clears the injector.
func (in *Injector) Set(f Faults) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if !f.active() {
		in.Clear()
		return nil
	}
	cp := f
	in.policy = &cp
	if in.n > 0 {
		in.links = make([]faultLink, in.n*in.n)
		for src := 0; src < in.n; src++ {
			for dst := 0; dst < in.n; dst++ {
				in.links[src*in.n+dst] = faultLink{rng: rand.New(rand.NewSource(in.linkSeed(f.Seed, src, dst)))}
			}
		}
		return nil
	}
	// Distinct streams per medium so eth and atm draws do not track each
	// other under the same policy seed.
	in.rng = rand.New(rand.NewSource(f.Seed<<1 ^ int64(in.inner.Kind())))
	in.nth = 0
	return nil
}

// Clear removes the policy, restoring transparent passthrough.
func (in *Injector) Clear() {
	in.policy = nil
	in.rng = nil
	in.links = nil
}

// Policy reports the installed policy (nil when passthrough).
func (in *Injector) Policy() *Faults { return in.policy }

// Kind implements Medium.
func (in *Injector) Kind() MediumKind { return in.inner.Kind() }

// MTU implements Medium.
func (in *Injector) MTU() int { return in.inner.MTU() }

// srcSched reports the scheduler owning frames from host src: its lane on
// a sharded cluster, the world scheduler otherwise.
func (in *Injector) srcSched(src int) *sim.Scheduler {
	if in.schedOf == nil {
		return in.s
	}
	return in.schedOf(src)
}

// plan decides one frame's fate: dropped, or delivered once (or twice, when
// duplicated) with the listed extra delays. It consumes randomness only when
// a policy is installed. It runs on the frame's source lane; per-link
// streams make the draws independent of cross-lane interleaving.
func (in *Injector) plan(src, dst int, droppable bool) (drop bool, extras []sim.Duration) {
	f := in.policy
	if f == nil {
		return false, nil
	}
	rng, nth := in.rng, &in.nth
	if in.links != nil {
		l := &in.links[src*in.n+dst]
		rng, nth = l.rng, &l.nth
	}
	now := in.srcSched(src).Now()
	for _, pt := range f.Partitions {
		if pt.blocks(src, dst, now) {
			atomic.AddInt64(&in.Stats.Partitioned, 1)
			return true, nil
		}
	}
	if droppable {
		if f.DropEveryN > 0 {
			*nth++
			if *nth%f.DropEveryN == 0 {
				atomic.AddInt64(&in.Stats.Dropped, 1)
				return true, nil
			}
		}
		if f.Loss > 0 && rng.Float64() < f.Loss {
			atomic.AddInt64(&in.Stats.Dropped, 1)
			return true, nil
		}
	}
	extra := f.Delay
	if f.Jitter > 0 {
		extra += sim.Duration(rng.Int63n(int64(f.Jitter)))
	}
	if droppable && f.Reorder > 0 && rng.Float64() < f.Reorder {
		hold := f.ReorderDelay
		if hold == 0 {
			hold = DefaultReorderDelay
		}
		extra += hold
		atomic.AddInt64(&in.Stats.Reordered, 1)
	}
	if extra > 0 {
		atomic.AddInt64(&in.Stats.Delayed, 1)
	}
	extras = []sim.Duration{extra}
	if droppable && f.Duplicate > 0 && rng.Float64() < f.Duplicate {
		atomic.AddInt64(&in.Stats.Duplicated, 1)
		extras = append(extras, extra)
	}
	return false, extras
}

// Deliver implements Medium: the frame passes through the policy, then (if
// it survives) enters the wrapped medium after any added delay. A dropped
// frame never reaches the wire — it is cut at the sending port.
func (in *Injector) Deliver(src, dst, n int, opts DeliverOpts, deliver func()) bool {
	if in.policy == nil {
		return in.inner.Deliver(src, dst, n, opts, deliver)
	}
	drop, extras := in.plan(src, dst, opts.Droppable)
	if drop {
		return false
	}
	for _, extra := range extras {
		if extra == 0 {
			in.inner.Deliver(src, dst, n, opts, deliver)
			continue
		}
		// The hold timer lives on the source lane (where the send runs);
		// the wrapped medium does its own cross-lane routing afterwards.
		in.srcSched(src).After(extra, func() {
			in.inner.Deliver(src, dst, n, opts, deliver)
		})
	}
	return true
}

// admit is plan for byte paths that bypass the Medium interface entirely
// (the U-Net endpoint writes straight into the switch FIFOs). Partition and
// delay faults still apply there; loss/duplication/reordering do not when
// droppable is false, matching the lossless flow-controlled links.
func (in *Injector) admit(src, dst int, droppable bool) (drop bool, extras []sim.Duration) {
	if in.policy == nil {
		return false, []sim.Duration{0}
	}
	drop, extras = in.plan(src, dst, droppable)
	if drop {
		return true, nil
	}
	return false, extras
}

// ParsePartitions parses a partition schedule DSL: semicolon-separated
// entries of the form "A-B[@FROM:UNTIL]", where A/B are host ids or "*"
// (any host), FROM/UNTIL are Go durations since run start, an empty UNTIL
// never heals, and a missing "@..." means "cut forever from t=0".
//
//	"0-1"              hosts 0 and 1 cut for the whole run
//	"0-*@1ms:"         host 0 isolated from 1 ms on
//	"0-1@5ms:20ms;2-3" two cuts, one windowed, one permanent
func ParsePartitions(spec string) ([]Partition, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Partition
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		pair, window, windowed := strings.Cut(entry, "@")
		a, b, ok := strings.Cut(pair, "-")
		if !ok {
			return nil, fmt.Errorf("partition %q: want A-B[@FROM:UNTIL]", entry)
		}
		pt := Partition{}
		var err error
		if pt.A, err = parseHost(a); err != nil {
			return nil, fmt.Errorf("partition %q: %v", entry, err)
		}
		if pt.B, err = parseHost(b); err != nil {
			return nil, fmt.Errorf("partition %q: %v", entry, err)
		}
		if windowed {
			from, until, ok := strings.Cut(window, ":")
			if !ok {
				return nil, fmt.Errorf("partition %q: window %q wants FROM:UNTIL", entry, window)
			}
			if pt.From, err = parseDur(from); err != nil {
				return nil, fmt.Errorf("partition %q: %v", entry, err)
			}
			if until != "" {
				if pt.Until, err = parseDur(until); err != nil {
					return nil, fmt.Errorf("partition %q: %v", entry, err)
				}
			}
		}
		if (Faults{Partitions: []Partition{pt}}).Validate() != nil {
			return nil, fmt.Errorf("partition %q: heals before it starts", entry)
		}
		out = append(out, pt)
	}
	return out, nil
}

// Kill schedules the death of one rank's process at a virtual time — the
// process-failure analogue of a Partition. Unlike the other fault knobs it
// is not a property of any medium: the registry hands the schedule to
// mpi.World.ScheduleKills, which arranges the victim's failure and every
// survivor's detection as simulated-time events on each rank's own lane,
// so injection works identically on every backend and costs zero wire
// traffic.
type Kill struct {
	Rank int
	At   sim.Duration
}

// ParseKills parses a kill schedule DSL: semicolon-separated entries of
// the form "RANK@T", where RANK is the victim and T is a Go duration since
// run start.
//
//	"2@5ms"        rank 2 dies 5 ms in
//	"1@1ms;3@2ms"  two deaths
func ParseKills(spec string) ([]Kill, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Kill
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		rankStr, atStr, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("kill %q: want RANK@T", entry)
		}
		rank, err := strconv.Atoi(strings.TrimSpace(rankStr))
		if err != nil || rank < 0 {
			return nil, fmt.Errorf("kill %q: bad rank %q", entry, rankStr)
		}
		at, err := parseDur(atStr)
		if err != nil {
			return nil, fmt.Errorf("kill %q: %v", entry, err)
		}
		out = append(out, Kill{Rank: rank, At: at})
	}
	return out, nil
}

func parseHost(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "*" {
		return -1, nil
	}
	h, err := strconv.Atoi(s)
	if err != nil || h < 0 {
		return 0, fmt.Errorf("bad host %q (id or *)", s)
	}
	return h, nil
}

func parseDur(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %v", s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return d, nil
}
