package atm

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// This file is the cluster's fault/condition layer: one composable policy
// (Faults) applied by an Injector that wraps any Medium. Every way the wire
// can misbehave — loss, added latency, jitter, reordering, duplication,
// partitions, scripted drops — lives here, seeded and deterministic, instead
// of being hand-rolled per medium. The protocol stacks above (UDP/RUDP, TCP,
// AAL4, U-Net) see only the Medium interface and are driven through faults
// without knowing the policy exists.

// Partition blocks all frames (droppable or not) between a host pair during
// a virtual-time window. A == -1 or B == -1 matches any host, so {-1, h}
// isolates h from everyone. Until == 0 means the partition never heals.
type Partition struct {
	A, B        int
	From, Until sim.Duration
}

// blocks reports whether the partition severs a src->dst frame at time now.
func (pt Partition) blocks(src, dst int, now sim.Time) bool {
	pair := func(a, b int) bool {
		return (pt.A == -1 || pt.A == a) && (pt.B == -1 || pt.B == b)
	}
	if !pair(src, dst) && !pair(dst, src) {
		return false
	}
	if now < sim.Time(pt.From) {
		return false
	}
	if pt.Until != 0 && now >= sim.Time(pt.Until) {
		return false
	}
	return true
}

// Faults is one fault policy. The zero value injects nothing. Probabilities
// are in [0, 1]; random draws come from a dedicated generator seeded with
// Seed, so fault decisions are reproducible and independent of the
// workload's own randomness.
type Faults struct {
	Seed int64

	// Loss drops each droppable frame with this probability. Frames sent
	// with DeliverOpts.Droppable == false (TCP segments, whose loss recovery
	// the model deliberately omits) are exempt, as are U-Net frames (the
	// switch's dedicated links are flow controlled and lossless).
	Loss float64
	// DropEveryN deterministically drops every Nth droppable frame
	// (1-based), for scripted scenarios independent of the seed.
	DropEveryN int

	// Delay adds a fixed one-way latency to every frame; Jitter adds a
	// further uniform draw from [0, Jitter) per frame.
	Delay  sim.Duration
	Jitter sim.Duration

	// Reorder holds each droppable frame for an extra ReorderDelay with
	// this probability, letting later frames overtake it (the media are
	// otherwise FIFO per pair). ReorderDelay == 0 uses DefaultReorderDelay.
	Reorder      float64
	ReorderDelay sim.Duration

	// Duplicate delivers each droppable frame twice with this probability.
	Duplicate float64

	// Partitions lists scheduled connectivity cuts.
	Partitions []Partition
}

// DefaultReorderDelay is the hold time applied to reordered frames when the
// policy does not set one: long enough that back-to-back small frames
// overtake, short against any RTO.
const DefaultReorderDelay = 500 * time.Microsecond

// active reports whether the policy can ever perturb a frame.
func (f Faults) active() bool {
	return f.Loss > 0 || f.DropEveryN > 0 || f.Delay > 0 || f.Jitter > 0 ||
		f.Reorder > 0 || f.Duplicate > 0 || len(f.Partitions) > 0
}

// Validate rejects out-of-range knobs.
func (f Faults) Validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("faults: %s probability %g outside [0, 1]", name, p)
		}
		return nil
	}
	if err := check("loss", f.Loss); err != nil {
		return err
	}
	if err := check("reorder", f.Reorder); err != nil {
		return err
	}
	if err := check("duplicate", f.Duplicate); err != nil {
		return err
	}
	if f.DropEveryN < 0 {
		return fmt.Errorf("faults: drop-every-N %d is negative", f.DropEveryN)
	}
	if f.Delay < 0 || f.Jitter < 0 || f.ReorderDelay < 0 {
		return fmt.Errorf("faults: negative delay")
	}
	for _, pt := range f.Partitions {
		if pt.Until != 0 && pt.Until <= pt.From {
			return fmt.Errorf("faults: partition %d-%d heals at %v before starting at %v", pt.A, pt.B, pt.Until, pt.From)
		}
	}
	return nil
}

// FaultStats counts injected events (tests and instrumentation).
type FaultStats struct {
	Dropped     int // frames lost to Loss or DropEveryN
	Partitioned int // frames severed by a partition
	Duplicated  int // frames delivered twice
	Reordered   int // frames held past their successors
	Delayed     int // frames carrying added Delay/Jitter
}

// Injector applies a Faults policy in front of a Medium. With no policy set
// it is a transparent passthrough that consumes no randomness, so a
// fault-free run is bit-identical to one without the injector. Frames
// surviving the policy enter the wrapped medium in their (possibly delayed)
// order; reordering works by holding a frame so its successors reach the
// FIFO wire first.
type Injector struct {
	s     *sim.Scheduler
	inner Medium

	policy *Faults
	rng    *rand.Rand
	nth    int // droppable-frame counter for DropEveryN

	Stats FaultStats
}

// NewInjector wraps inner with a (initially empty) fault policy.
func NewInjector(s *sim.Scheduler, inner Medium) *Injector {
	return &Injector{s: s, inner: inner}
}

// Set installs policy f; an inactive policy clears the injector.
func (in *Injector) Set(f Faults) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if !f.active() {
		in.Clear()
		return nil
	}
	cp := f
	// Distinct streams per medium so eth and atm draws do not track each
	// other under the same policy seed.
	in.policy = &cp
	in.rng = rand.New(rand.NewSource(f.Seed<<1 ^ int64(in.inner.Kind())))
	in.nth = 0
	return nil
}

// Clear removes the policy, restoring transparent passthrough.
func (in *Injector) Clear() {
	in.policy = nil
	in.rng = nil
}

// Policy reports the installed policy (nil when passthrough).
func (in *Injector) Policy() *Faults { return in.policy }

// Kind implements Medium.
func (in *Injector) Kind() MediumKind { return in.inner.Kind() }

// MTU implements Medium.
func (in *Injector) MTU() int { return in.inner.MTU() }

// plan decides one frame's fate: dropped, or delivered once (or twice, when
// duplicated) with the listed extra delays. It consumes randomness only when
// a policy is installed.
func (in *Injector) plan(src, dst int, droppable bool) (drop bool, extras []sim.Duration) {
	f := in.policy
	if f == nil {
		return false, nil
	}
	now := in.s.Now()
	for _, pt := range f.Partitions {
		if pt.blocks(src, dst, now) {
			in.Stats.Partitioned++
			return true, nil
		}
	}
	if droppable {
		if f.DropEveryN > 0 {
			in.nth++
			if in.nth%f.DropEveryN == 0 {
				in.Stats.Dropped++
				return true, nil
			}
		}
		if f.Loss > 0 && in.rng.Float64() < f.Loss {
			in.Stats.Dropped++
			return true, nil
		}
	}
	extra := f.Delay
	if f.Jitter > 0 {
		extra += sim.Duration(in.rng.Int63n(int64(f.Jitter)))
	}
	if droppable && f.Reorder > 0 && in.rng.Float64() < f.Reorder {
		hold := f.ReorderDelay
		if hold == 0 {
			hold = DefaultReorderDelay
		}
		extra += hold
		in.Stats.Reordered++
	}
	if extra > 0 {
		in.Stats.Delayed++
	}
	extras = []sim.Duration{extra}
	if droppable && f.Duplicate > 0 && in.rng.Float64() < f.Duplicate {
		in.Stats.Duplicated++
		extras = append(extras, extra)
	}
	return false, extras
}

// Deliver implements Medium: the frame passes through the policy, then (if
// it survives) enters the wrapped medium after any added delay. A dropped
// frame never reaches the wire — it is cut at the sending port.
func (in *Injector) Deliver(src, dst, n int, opts DeliverOpts, deliver func()) bool {
	if in.policy == nil {
		return in.inner.Deliver(src, dst, n, opts, deliver)
	}
	drop, extras := in.plan(src, dst, opts.Droppable)
	if drop {
		return false
	}
	for _, extra := range extras {
		if extra == 0 {
			in.inner.Deliver(src, dst, n, opts, deliver)
			continue
		}
		in.s.After(extra, func() {
			in.inner.Deliver(src, dst, n, opts, deliver)
		})
	}
	return true
}

// admit is plan for byte paths that bypass the Medium interface entirely
// (the U-Net endpoint writes straight into the switch FIFOs). Partition and
// delay faults still apply there; loss/duplication/reordering do not when
// droppable is false, matching the lossless flow-controlled links.
func (in *Injector) admit(src, dst int, droppable bool) (drop bool, extras []sim.Duration) {
	if in.policy == nil {
		return false, []sim.Duration{0}
	}
	drop, extras = in.plan(src, dst, droppable)
	if drop {
		return true, nil
	}
	return false, extras
}

// ParsePartitions parses a partition schedule DSL: semicolon-separated
// entries of the form "A-B[@FROM:UNTIL]", where A/B are host ids or "*"
// (any host), FROM/UNTIL are Go durations since run start, an empty UNTIL
// never heals, and a missing "@..." means "cut forever from t=0".
//
//	"0-1"              hosts 0 and 1 cut for the whole run
//	"0-*@1ms:"         host 0 isolated from 1 ms on
//	"0-1@5ms:20ms;2-3" two cuts, one windowed, one permanent
func ParsePartitions(spec string) ([]Partition, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Partition
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		pair, window, windowed := strings.Cut(entry, "@")
		a, b, ok := strings.Cut(pair, "-")
		if !ok {
			return nil, fmt.Errorf("partition %q: want A-B[@FROM:UNTIL]", entry)
		}
		pt := Partition{}
		var err error
		if pt.A, err = parseHost(a); err != nil {
			return nil, fmt.Errorf("partition %q: %v", entry, err)
		}
		if pt.B, err = parseHost(b); err != nil {
			return nil, fmt.Errorf("partition %q: %v", entry, err)
		}
		if windowed {
			from, until, ok := strings.Cut(window, ":")
			if !ok {
				return nil, fmt.Errorf("partition %q: window %q wants FROM:UNTIL", entry, window)
			}
			if pt.From, err = parseDur(from); err != nil {
				return nil, fmt.Errorf("partition %q: %v", entry, err)
			}
			if until != "" {
				if pt.Until, err = parseDur(until); err != nil {
					return nil, fmt.Errorf("partition %q: %v", entry, err)
				}
			}
		}
		if (Faults{Partitions: []Partition{pt}}).Validate() != nil {
			return nil, fmt.Errorf("partition %q: heals before it starts", entry)
		}
		out = append(out, pt)
	}
	return out, nil
}

func parseHost(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "*" {
		return -1, nil
	}
	h, err := strconv.Atoi(s)
	if err != nil || h < 0 {
		return 0, fmt.Errorf("bad host %q (id or *)", s)
	}
	return h, nil
}

func parseDur(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %v", s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return d, nil
}
