package atm

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// --- injector policy mechanics ---

func TestFaultsDropEveryNExactCount(t *testing.T) {
	s, cl := newCluster(2)
	if err := cl.SetFaults(Faults{DropEveryN: 3}); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	s.At(0, func() {
		for i := 0; i < 30; i++ {
			cl.Medium(OverEthernet).Deliver(0, 1, 100, DeliverOpts{Droppable: true}, func() { delivered++ })
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 20 {
		t.Fatalf("drop-every-3rd delivered %d/30, want 20", delivered)
	}
	if got := cl.Injector(OverEthernet).Stats.Dropped; got != 10 {
		t.Fatalf("Stats.Dropped = %d, want 10", got)
	}
}

func TestFaultsDelayShiftsArrivalExactly(t *testing.T) {
	arrival := func(f *Faults) sim.Time {
		s, cl := newCluster(2)
		if f != nil {
			if err := cl.SetFaults(*f); err != nil {
				t.Fatal(err)
			}
		}
		var at sim.Time
		s.At(0, func() {
			cl.Medium(OverATM).Deliver(0, 1, 100, DeliverOpts{Droppable: true}, func() { at = s.Now() })
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	base := arrival(nil)
	const extra = 5 * time.Millisecond
	delayed := arrival(&Faults{Delay: extra})
	if delayed-base != sim.Time(extra) {
		t.Fatalf("delay fault shifted arrival by %v, want exactly %v", sim.Duration(delayed-base), extra)
	}
}

func TestFaultsJitterBoundedAndDeterministic(t *testing.T) {
	const jitter = 1 * time.Millisecond
	run := func(f *Faults) []sim.Time {
		s, cl := newCluster(2)
		if f != nil {
			if err := cl.SetFaults(*f); err != nil {
				t.Fatal(err)
			}
		}
		var at []sim.Time
		// Space frames far apart so queuing never adds to the arrival time.
		for i := 0; i < 10; i++ {
			s.At(sim.Time(i)*sim.Time(10*time.Millisecond), func() {
				cl.Medium(OverATM).Deliver(0, 1, 100, DeliverOpts{Droppable: true}, func() { at = append(at, s.Now()) })
			})
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	base := run(nil)
	a := run(&Faults{Seed: 11, Jitter: jitter})
	b := run(&Faults{Seed: 11, Jitter: jitter})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("jitter nondeterministic under a fixed seed:\n%v\n%v", a, b)
	}
	varied := false
	for i := range base {
		d := a[i] - base[i]
		if d < 0 || d >= sim.Time(jitter) {
			t.Fatalf("frame %d jittered by %v, outside [0, %v)", i, sim.Duration(d), jitter)
		}
		if d != a[0]-base[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("every frame drew the same jitter; generator not advancing")
	}
}

func TestFaultsReorderOvertakesOnFIFOWire(t *testing.T) {
	run := func() ([]int, FaultStats) {
		s, cl := newCluster(2)
		if err := cl.SetFaults(Faults{Seed: 1, Reorder: 0.5}); err != nil {
			t.Fatal(err)
		}
		var order []int
		s.At(0, func() {
			for i := 0; i < 8; i++ {
				i := i
				cl.Medium(OverATM).Deliver(0, 1, 100, DeliverOpts{Droppable: true}, func() { order = append(order, i) })
			}
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order, cl.Injector(OverATM).Stats
	}
	a, stats := run()
	b, _ := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reordering nondeterministic: %v vs %v", a, b)
	}
	if len(a) != 8 {
		t.Fatalf("reordering lost frames: %d/8 delivered", len(a))
	}
	if stats.Reordered == 0 {
		t.Fatal("no frames held for reordering at p=0.5")
	}
	inOrder := true
	for i, id := range a {
		if id != i {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatalf("held frames never overtaken; order still %v", a)
	}
}

func TestFaultsDuplicateDeliversTwice(t *testing.T) {
	s, cl := newCluster(2)
	if err := cl.SetFaults(Faults{Seed: 2, Duplicate: 1.0}); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			cl.Medium(OverATM).Deliver(0, 1, 100, DeliverOpts{Droppable: true}, func() { delivered++ })
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 20 {
		t.Fatalf("duplicate=1.0 delivered %d copies of 10 frames, want 20", delivered)
	}
	if got := cl.Injector(OverATM).Stats.Duplicated; got != 10 {
		t.Fatalf("Stats.Duplicated = %d, want 10", got)
	}
}

func TestFaultsPartitionWindow(t *testing.T) {
	s, cl := newCluster(2)
	err := cl.SetFaults(Faults{Partitions: []Partition{
		{A: 0, B: 1, From: 5 * time.Millisecond, Until: 50 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	send := func(id int, at time.Duration) {
		s.At(sim.Time(at), func() {
			// Partitions sever everything, droppable or not.
			cl.Medium(OverATM).Deliver(0, 1, 100, DeliverOpts{}, func() { got = append(got, id) })
		})
	}
	send(0, 0)                   // before the cut: delivered
	send(1, 10*time.Millisecond) // inside the window: severed
	send(2, 30*time.Millisecond) // inside the window: severed
	send(3, 60*time.Millisecond) // healed: delivered
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 3}) {
		t.Fatalf("partition window delivered %v, want [0 3]", got)
	}
	if cl.Injector(OverATM).Stats.Partitioned != 2 {
		t.Fatalf("Stats.Partitioned = %d, want 2", cl.Injector(OverATM).Stats.Partitioned)
	}
}

func TestFaultsWildcardPartitionIsolatesHost(t *testing.T) {
	s, cl := newCluster(3)
	if err := cl.SetFaults(Faults{Partitions: []Partition{{A: 0, B: -1}}}); err != nil {
		t.Fatal(err)
	}
	var got []string
	s.At(0, func() {
		cl.Medium(OverATM).Deliver(0, 1, 100, DeliverOpts{}, func() { got = append(got, "0->1") })
		cl.Medium(OverATM).Deliver(2, 0, 100, DeliverOpts{}, func() { got = append(got, "2->0") })
		cl.Medium(OverATM).Deliver(1, 2, 100, DeliverOpts{}, func() { got = append(got, "1->2") })
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"1->2"}) {
		t.Fatalf("wildcard partition let through %v, want only 1->2", got)
	}
}

// A composite policy must replay identically under the same seed: same
// arrival order and same virtual timestamps.
func TestFaultsCompositePolicyDeterministic(t *testing.T) {
	type arrival struct {
		ID int
		At sim.Time
	}
	run := func() []arrival {
		s, cl := newCluster(2)
		err := cl.SetFaults(Faults{
			Seed: 99, Loss: 0.2, Jitter: 200 * time.Microsecond,
			Reorder: 0.3, Duplicate: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		var got []arrival
		s.At(0, func() {
			for i := 0; i < 50; i++ {
				i := i
				cl.Medium(OverEthernet).Deliver(0, 1, 200, DeliverOpts{Droppable: true}, func() {
					got = append(got, arrival{i, s.Now()})
				})
			}
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("composite fault policy nondeterministic:\n%v\n%v", a, b)
	}
	if len(a) == 0 || len(a) == 50 {
		t.Fatalf("composite policy inert: %d arrivals", len(a))
	}
}

func TestFaultsSetInactiveClearsPolicy(t *testing.T) {
	_, cl := newCluster(2)
	if err := cl.SetFaults(Faults{Seed: 3, Loss: 0.5}); err != nil {
		t.Fatal(err)
	}
	if cl.Injector(OverATM).Policy() == nil {
		t.Fatal("active policy not installed")
	}
	if err := cl.SetFaults(Faults{}); err != nil {
		t.Fatal(err)
	}
	if cl.Injector(OverATM).Policy() != nil || cl.Injector(OverEthernet).Policy() != nil {
		t.Fatal("inactive policy did not clear the injectors")
	}
}

func TestFaultsValidate(t *testing.T) {
	bad := []Faults{
		{Loss: 1.5},
		{Loss: -0.1},
		{Reorder: 2},
		{Duplicate: -1},
		{DropEveryN: -1},
		{Delay: -time.Millisecond},
		{Partitions: []Partition{{A: 0, B: 1, From: 10 * time.Millisecond, Until: 5 * time.Millisecond}}},
	}
	for i, f := range bad {
		if f.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, f)
		}
	}
	ok := []Faults{
		{},
		{Loss: 1.0},
		{Loss: 0.5, Reorder: 1, Duplicate: 1, DropEveryN: 2, Delay: time.Millisecond, Jitter: time.Millisecond},
		{Partitions: []Partition{{A: 0, B: -1, From: 0, Until: 0}}},
	}
	for i, f := range ok {
		if err := f.Validate(); err != nil {
			t.Errorf("case %d: Validate rejected %+v: %v", i, f, err)
		}
	}
}

func TestParsePartitions(t *testing.T) {
	got, err := ParsePartitions(" 0-1 ; 2-*@1ms: ; 3-4@5ms:20ms ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Partition{
		{A: 0, B: 1},
		{A: 2, B: -1, From: time.Millisecond},
		{A: 3, B: 4, From: 5 * time.Millisecond, Until: 20 * time.Millisecond},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParsePartitions = %+v, want %+v", got, want)
	}
	if got, err := ParsePartitions("  "); err != nil || got != nil {
		t.Fatalf("empty spec: got %v, %v", got, err)
	}
	for _, bad := range []string{"0", "x-1", "0-1@5ms", "0-1@bad:", "0-1@10ms:5ms", "-1-2"} {
		if _, err := ParsePartitions(bad); err == nil {
			t.Errorf("ParsePartitions(%q) accepted", bad)
		}
	}
}

// --- hardened RUDP ---

// rudpPair spins up a reliable pair on the ATM medium.
func rudpPair(cl *Cluster) (*RUDP, *RUDP) {
	return NewRUDP(cl.UDPSocket(0, OverATM)), NewRUDP(cl.UDPSocket(1, OverATM))
}

func TestRUDPAdaptiveRTOConverges(t *testing.T) {
	s, cl := newCluster(2)
	r0, r1 := rudpPair(cl)
	const iters = 30
	s.Spawn("h0", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < iters; i++ {
			if err := r0.Send(p, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			if _, _, err := r0.Recv(p, buf); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
		}
	})
	s.Spawn("h1", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < iters; i++ {
			if _, _, err := r1.Recv(p, buf); err != nil {
				return
			}
			if err := r1.Send(p, 0, []byte{byte(i)}); err != nil {
				return
			}
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	pr := r0.peer(1)
	if pr.srtt == 0 {
		t.Fatal("no RTT samples folded into the estimator")
	}
	if pr.rto >= r0.RTO {
		t.Fatalf("adaptive RTO %v never converged below the initial %v (srtt %v, rttvar %v)",
			pr.rto, r0.RTO, pr.srtt, pr.rttvar)
	}
	if pr.rto < r0.MinRTO {
		t.Fatalf("RTO %v under the %v floor", pr.rto, r0.MinRTO)
	}
}

// Karn's rule: a retransmitted frame must never feed the estimator, or a
// spurious short sample would collapse the timeout.
func TestRUDPKarnExcludesRetransmits(t *testing.T) {
	s, cl := newCluster(2)
	r0, _ := rudpPair(cl)
	s.Spawn("tx", func(p *sim.Proc) {
		pr := r0.peer(1)
		if err := r0.Send(p, 1, []byte{1}); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		pend := pr.unacked[0]
		pend.tries = 1 // pretend the timer already re-sent it
		r0.applyAck(pr, 1)
		if pr.srtt != 0 {
			t.Errorf("retransmitted frame sampled: srtt = %v", pr.srtt)
		}
		pend.acked = true // silence the pending timer
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRUDPFastRetransmitOnDupAcks(t *testing.T) {
	s, cl := newCluster(2)
	r0, _ := rudpPair(cl)
	r0.MaxRetries = 2
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if err := r0.Send(p, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
		pr := r0.peer(1)
		// The peer acks seq 0, then repeats itself: frames past a hole at
		// seq 1 keep landing.
		r0.applyAck(pr, 1)
		for i := 0; i < rudpDupThreshold-1; i++ {
			r0.applyAck(pr, 1)
			if r0.FastRetransmits != 0 {
				t.Errorf("fast retransmit fired after only %d duplicate acks", i+1)
			}
		}
		r0.applyAck(pr, 1)
		if r0.FastRetransmits != 1 {
			t.Errorf("FastRetransmits = %d after %d duplicate acks, want 1", r0.FastRetransmits, rudpDupThreshold)
		}
		if pr.dupAcks != 0 {
			t.Errorf("dup-ack counter not reset after fast retransmit: %d", pr.dupAcks)
		}
		// Full acknowledgement quiesces the timers.
		r0.applyAck(pr, 4)
		if len(pr.unacked) != 0 {
			t.Errorf("%d frames still unacked after cumulative ack 4", len(pr.unacked))
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// End to end: a deterministically dropped data frame is repaired by the
// duplicate acks its successors provoke, without waiting out the timer.
func TestRUDPFastRetransmitEndToEnd(t *testing.T) {
	s, cl := newCluster(2)
	if err := cl.SetFaults(Faults{DropEveryN: 9}); err != nil {
		t.Fatal(err)
	}
	r0, r1 := rudpPair(cl)
	const msgs = 30
	var got []byte
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			if err := r0.Send(p, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
		for i := 0; i < 400 && len(r0.peer(1).unacked) > 0; i++ {
			r0.drain(p)
			p.Advance(time.Millisecond)
		}
	})
	s.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 16)
		for i := 0; i < msgs; i++ {
			if _, _, err := r1.Recv(p, buf); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			got = append(got, buf[0])
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if int(b) != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if r0.FastRetransmits == 0 {
		t.Errorf("pipelined stream over a drop-every-9th link triggered no fast retransmits (%d timer retransmits)", r0.Retransmits)
	}
}

func TestRUDPPiggybackedAcksSuppressPureAcks(t *testing.T) {
	s, cl := newCluster(2)
	r0, r1 := rudpPair(cl)
	r0.AckDelay = 2 * time.Millisecond
	r1.AckDelay = 2 * time.Millisecond
	const iters = 10
	s.Spawn("h0", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < iters; i++ {
			if err := r0.Send(p, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			if _, _, err := r0.Recv(p, buf); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
		}
	})
	s.Spawn("h1", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < iters; i++ {
			if _, _, err := r1.Recv(p, buf); err != nil {
				return
			}
			if err := r1.Send(p, 0, []byte{byte(i)}); err != nil {
				return
			}
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if r0.Retransmits != 0 || r1.Retransmits != 0 {
		t.Fatalf("spurious retransmits with delayed acks: %d/%d", r0.Retransmits, r1.Retransmits)
	}
	if r1.PiggybackedAcks < iters-1 {
		t.Fatalf("replies piggybacked only %d/%d acks", r1.PiggybackedAcks, iters)
	}
	// Only the final pong, with no reverse data behind it, should need a
	// pure ack (flushed by the delayed-ack timer).
	if r0.PureAcks > 1 || r1.PureAcks > 1 {
		t.Fatalf("ping-pong under AckDelay still sent %d+%d pure acks", r0.PureAcks, r1.PureAcks)
	}
}

func TestRUDPSurvivesPartitionWindow(t *testing.T) {
	s, cl := newCluster(2)
	err := cl.SetFaults(Faults{Partitions: []Partition{
		{A: 0, B: 1, From: 0, Until: 50 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := rudpPair(cl)
	const msgs = 5
	var got []byte
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			if err := r0.Send(p, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
		for i := 0; i < 400 && len(r0.peer(1).unacked) > 0; i++ {
			r0.drain(p)
			p.Advance(time.Millisecond)
		}
	})
	s.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 16)
		for i := 0; i < msgs; i++ {
			if _, _, err := r1.Recv(p, buf); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			got = append(got, buf[0])
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if int(b) != i {
			t.Fatalf("out of order after partition heal: %v", got)
		}
	}
	if cl.Injector(OverATM).Stats.Partitioned == 0 {
		t.Fatal("partition never severed a frame")
	}
	if r0.Retransmits == 0 {
		t.Fatal("no retransmissions bridged the outage")
	}
}

func TestRUDPDedupsDuplicatedFrames(t *testing.T) {
	s, cl := newCluster(2)
	if err := cl.SetFaults(Faults{Seed: 4, Duplicate: 1.0}); err != nil {
		t.Fatal(err)
	}
	r0, r1 := rudpPair(cl)
	const msgs = 20
	var got []byte
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			if err := r0.Send(p, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	})
	s.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 16)
		for i := 0; i < msgs; i++ {
			if _, _, err := r1.Recv(p, buf); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			got = append(got, buf[0])
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != msgs {
		t.Fatalf("duplication leaked through: %d/%d delivered", len(got), msgs)
	}
	for i, b := range got {
		if int(b) != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if r1.Duplicates == 0 {
		t.Fatal("receiver never saw a duplicate data frame to suppress")
	}
}

func TestRUDPRestoresOrderUnderReordering(t *testing.T) {
	s, cl := newCluster(2)
	if err := cl.SetFaults(Faults{Seed: 6, Reorder: 0.4}); err != nil {
		t.Fatal(err)
	}
	r0, r1 := rudpPair(cl)
	const msgs = 30
	var got []byte
	s.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			if err := r0.Send(p, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
		for i := 0; i < 400 && len(r0.peer(1).unacked) > 0; i++ {
			r0.drain(p)
			p.Advance(time.Millisecond)
		}
	})
	s.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 16)
		for i := 0; i < msgs; i++ {
			if _, _, err := r1.Recv(p, buf); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			got = append(got, buf[0])
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if int(b) != i {
			t.Fatalf("sequencing failed to restore order at %d: %v", i, got)
		}
	}
	if cl.Injector(OverATM).Stats.Reordered == 0 {
		t.Fatal("reordering never exercised")
	}
}

func TestRUDPLinkDeathSetsErr(t *testing.T) {
	s, cl := newCluster(2)
	if err := cl.SetFaults(Faults{Partitions: []Partition{{A: 0, B: 1}}}); err != nil {
		t.Fatal(err)
	}
	r0, _ := rudpPair(cl)
	r0.MaxRetries = 3
	s.Spawn("tx", func(p *sim.Proc) {
		if err := r0.Send(p, 1, []byte{1}); err != nil {
			t.Errorf("first send should queue, got %v", err)
			return
		}
		for r0.Err == nil && p.Now() < sim.Time(2*time.Second) {
			p.Advance(5 * time.Millisecond)
		}
		if r0.Err == nil {
			t.Error("permanently partitioned peer never declared dead")
			return
		}
		// After death the link fails fast.
		if err := r0.Send(p, 1, []byte{2}); err == nil {
			t.Error("Send succeeded on a dead link")
		}
		if _, _, err := r0.Recv(p, make([]byte, 8)); err == nil {
			t.Error("Recv succeeded on a dead link")
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// --- U-Net under the injector (Medium-bypassing path) ---

func TestUNetDelayFaultApplies(t *testing.T) {
	rtt := func(f *Faults) sim.Duration {
		s, cl := newCluster(2)
		if f != nil {
			if err := cl.SetFaults(*f); err != nil {
				t.Fatal(err)
			}
		}
		u0, u1 := cl.UNetSocket(0), cl.UNetSocket(1)
		var d sim.Duration
		s.Spawn("h0", func(p *sim.Proc) {
			buf := make([]byte, 8)
			start := p.Now()
			u0.SendTo(p, 1, make([]byte, 8))
			u0.RecvFrom(p, buf)
			d = sim.Duration(p.Now() - start)
		})
		s.Spawn("h1", func(p *sim.Proc) {
			buf := make([]byte, 8)
			u1.RecvFrom(p, buf)
			u1.SendTo(p, 0, make([]byte, 8))
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	base := rtt(nil)
	const oneWay = 1 * time.Millisecond
	slowed := rtt(&Faults{Delay: oneWay})
	if slowed-base != 2*oneWay {
		t.Fatalf("1ms one-way delay fault stretched U-Net RTT by %v, want exactly 2ms", slowed-base)
	}
}

func TestUNetPartitionSevers(t *testing.T) {
	s, cl := newCluster(2)
	if err := cl.SetFaults(Faults{Partitions: []Partition{{A: 0, B: 1}}}); err != nil {
		t.Fatal(err)
	}
	u0, u1 := cl.UNetSocket(0), cl.UNetSocket(1)
	got := 0
	s.Spawn("tx", func(p *sim.Proc) {
		u0.SendTo(p, 1, []byte{1})
	})
	s.Spawn("rx", func(p *sim.Proc) {
		for p.Now() < sim.Time(20*time.Millisecond) {
			if u1.Readable() {
				u1.RecvFrom(p, make([]byte, 8))
				got++
			}
			p.Advance(time.Millisecond)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("partitioned U-Net still delivered %d frames", got)
	}
	if cl.Injector(OverATM).Stats.Partitioned == 0 {
		t.Fatal("partition not charged to the injector stats")
	}
}
