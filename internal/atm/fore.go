package atm

import (
	"fmt"

	"repro/internal/sim"
)

// AAL4 is a Fore API datagram socket over ATM adaptation layer 3/4 (the
// paper treats AAL3 and AAL4 identically). It bypasses IP and UDP, but the
// Fore API sits on STREAMS, whose per-packet cost is what makes Figure 4's
// AAL4 curve land on top of TCP and UDP instead of far below them.
type AAL4 struct {
	cl   *Cluster
	host int

	dq       []Datagram
	readable *sim.Cond
}

// aal4Ports registers one socket per host (lazily allocated on Cluster).
func (cl *Cluster) aal4Port(h int) *AAL4 {
	if cl.aal4 == nil {
		cl.aal4 = make(map[int]*AAL4)
	}
	if s, ok := cl.aal4[h]; ok {
		return s
	}
	s := &AAL4{cl: cl, host: h, readable: sim.NewCond(cl.SchedOf(h))}
	cl.aal4[h] = s
	return s
}

// AAL4Socket binds (or returns) the Fore API socket for host h.
func (cl *Cluster) AAL4Socket(h int) *AAL4 { return cl.aal4Port(h) }

// MaxPDU is the largest AAL3/4 CPCS PDU the API accepts.
const MaxPDU = 64 * 1024

// SendTo transmits one AAL3/4 PDU to host dst.
func (a *AAL4) SendTo(p *sim.Proc, dst int, data []byte) {
	k := a.cl.Costs
	if len(data) > MaxPDU {
		panic(fmt.Sprintf("aal4: PDU of %d bytes exceeds max %d", len(data), MaxPDU))
	}
	p.Advance(k.SyscallWrite)
	p.Advance(sim.Duration(len(data)) * k.CopyPerByte)
	p.Advance(k.AAL4PerPacket)

	peer := a.cl.aal4Port(dst)
	payload := make([]byte, len(data))
	copy(payload, data)
	src := a.host
	a.cl.Medium(OverATM).Deliver(a.host, dst, len(data), DeliverOpts{AAL34: true, Droppable: true}, func() {
		a.cl.SchedOf(dst).After(k.AAL4PerPacket, func() {
			peer.dq = append(peer.dq, Datagram{Src: src, Data: payload})
			peer.readable.Broadcast()
		})
	})
}

// RecvFrom blocks for the next PDU.
func (a *AAL4) RecvFrom(p *sim.Proc, buf []byte) (int, int) {
	k := a.cl.Costs
	p.Advance(k.SyscallRead + k.ReadExtraATM)
	if len(a.dq) == 0 {
		for len(a.dq) == 0 {
			a.readable.Wait(p)
		}
		p.Advance(k.KernelWakeup)
	}
	d := a.dq[0]
	a.dq = a.dq[1:]
	n := copy(buf, d.Data)
	p.Advance(sim.Duration(n) * k.CopyPerByte)
	return n, d.Src
}

// Readable reports whether RecvFrom would return without blocking.
func (a *AAL4) Readable() bool { return len(a.dq) > 0 }
