package atm

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// MediumKind selects the wire below the protocol stack.
type MediumKind int

const (
	OverEthernet MediumKind = iota
	OverATM
)

func (k MediumKind) String() string {
	if k == OverEthernet {
		return "eth"
	}
	return "atm"
}

// DeliverOpts qualifies one link-layer packet.
type DeliverOpts struct {
	AAL34     bool // ATM only: AAL3/4 cells instead of AAL5
	Droppable bool // may be lost per the medium's loss rate (datagram traffic)
}

// Medium carries link-layer packets between hosts, charging wire and
// driver time on the way. Event-context safe; delivery between a fixed
// (src, dst) pair is FIFO.
type Medium interface {
	Kind() MediumKind
	MTU() int
	// Deliver carries n payload bytes from src to dst and runs deliver at
	// the destination after wire, NIC, and driver time. Returns false if
	// the packet was dropped by loss injection (deliver will not run).
	Deliver(src, dst, n int, opts DeliverOpts, deliver func()) bool
}

// Ethernet is the 10 Mbit/s shared medium: every frame from every host
// serializes on one wire, which is what makes the cluster's Figure 9 lose
// to ATM under contention. Loss and other faults are not modeled here: the
// Injector wrapping every medium (faults.go) owns misbehavior.
//
// The segment is a world-global resource, so it is built as a sim.Stage
// homed on lane 0 when sharded (NewShardedEthernet): every Deliver detours
// to the home lane carrying its source stamp, reserves the wire backdated
// to the stamp, and routes the frame out to the destination's lane — the
// contention arithmetic is identical to the single-scheduler segment, and
// on a single scheduler the stage degrades to the historical inline path.
type Ethernet struct {
	s     *sim.Scheduler
	c     Costs
	stage *sim.Stage
	wire  *sim.FIFO

	scheds []*sim.Scheduler // per-host lane scheduler; nil when unsharded
	laneOf []int

	// CSMACD enables collision modeling: a station finding the medium
	// busy pays a random exponential backoff (in slot times) scaled by the
	// number of frames already queued, approximating 10Base-T's truncated
	// binary exponential backoff under contention. Off by default — the
	// paper's quiet-LAN measurements see essentially no collisions.
	CSMACD bool
	// SlotTime is the collision slot (51.2 µs at 10 Mbit/s); zero uses
	// the standard value.
	SlotTime sim.Duration
	// Collisions counts backoff episodes (tests/instrumentation).
	Collisions int
	queued     int
}

// NewEthernet builds the shared segment.
func NewEthernet(s *sim.Scheduler, c Costs) *Ethernet {
	return &Ethernet{s: s, c: c, stage: sim.NewStage(s), wire: sim.NewFIFO(s, "ether")}
}

// NewShardedEthernet builds the shared segment homed on lane 0 of sh, with
// host i's frames delivered onto lane laneOf[i]. The model's spans bound
// the shard lookahead: the minimum frame wire time covers the stamp-to-
// completion window and the propagation+driver tail covers the
// completion-to-delivery hop, so both must be at least the lookahead.
func NewShardedEthernet(sh *sim.Shard, laneOf []int, c Costs) *Ethernet {
	minSpan := sim.Duration(FrameWireBytes(0)) * c.EthPerByte
	post := c.EthPropDelay + c.DriverEthPerFrame
	if minSpan < sh.Lookahead() || post < sh.Lookahead() {
		panic(fmt.Sprintf("ethernet: frame span %v / delivery tail %v below shard lookahead %v", minSpan, post, sh.Lookahead()))
	}
	home := sh.Lane(0)
	e := &Ethernet{s: home, c: c, stage: sim.NewStage(home), wire: sim.NewFIFO(home, "ether"), laneOf: laneOf}
	for _, l := range laneOf {
		e.scheds = append(e.scheds, sh.Lane(l))
	}
	return e
}

func (e *Ethernet) schedOf(host int) *sim.Scheduler {
	if e.scheds == nil {
		return e.s
	}
	return e.scheds[host]
}

func (e *Ethernet) lane(host int) int {
	if e.laneOf == nil {
		return 0
	}
	return e.laneOf[host]
}

// Kind implements Medium.
func (e *Ethernet) Kind() MediumKind { return OverEthernet }

// MTU implements Medium.
func (e *Ethernet) MTU() int { return EthMTU }

// FrameWireBytes reports the wire occupancy of an n-byte frame payload.
func FrameWireBytes(n int) int {
	if n < EthMinPayload {
		n = EthMinPayload
	}
	return n + EthOverheadBytes
}

// Deliver implements Medium. Must be called from src's lane context on a
// sharded segment; deliver runs on dst's lane.
func (e *Ethernet) Deliver(src, dst, n int, opts DeliverOpts, deliver func()) bool {
	if n > EthMTU {
		panic(fmt.Sprintf("ethernet: frame payload %d exceeds MTU", n))
	}
	wire := sim.Duration(FrameWireBytes(n)) * e.c.EthPerByte
	e.stage.Request(e.schedOf(src), func(t0 sim.Time) {
		if e.CSMACD && e.wire.BusyUntil() > t0 {
			// Contended medium: model collisions + truncated binary
			// exponential backoff. The backoff window doubles with the number
			// of frames already fighting for the wire.
			e.Collisions++
			slot := e.SlotTime
			if slot == 0 {
				slot = 51200 // 51.2 µs: 512 bit times at 10 Mbit/s
			}
			window := 2 << min(e.queued, 9)
			backoff := sim.Duration(e.s.Rand().Intn(window)) * slot
			wire += backoff
		}
		e.queued++
		end := e.wire.ReserveAt(t0, wire)
		e.stage.At(end, func() {
			e.queued--
			e.stage.Exit(e.lane(dst), end+sim.Time(e.c.EthPropDelay+e.c.DriverEthPerFrame), deliver)
		})
	})
	return true
}

// ATMNet is the switched ATM fabric: a dedicated 155 Mbit/s full-duplex
// link per host into a ForeRunner ASX-200, which forwards cells to the
// destination port. Uplinks and downlinks are independent resources, so
// there is no cross-host contention except at a shared destination port.
//
// Because every per-host resource (uplink, downlink, NIC time) belongs to
// exactly one host, the fabric shards cleanly: NewShardedATMNet pins host
// i's FIFOs to its lane, and the switch-forwarding hop — the only point
// where a packet leaves its source host — crosses lanes through Route,
// with SwitchDelay as the lookahead bound. On a single scheduler the hop
// degrades to a plain timer, bit-identical to the historical model. The
// shared Ethernet segment serializes all hosts on one wire and shards as
// a lane-0-homed sim.Stage instead (NewShardedEthernet).
type ATMNet struct {
	s        *sim.Scheduler
	c        Costs
	up, down []*sim.FIFO
	ports    []*portArbiter

	scheds []*sim.Scheduler // per-host lane scheduler; nil when unsharded
	laneOf []int
}

// NewATMNet builds the switch with n host ports.
func NewATMNet(s *sim.Scheduler, n int, c Costs) *ATMNet {
	a := &ATMNet{s: s, c: c}
	for i := 0; i < n; i++ {
		a.up = append(a.up, sim.NewFIFO(s, fmt.Sprintf("atm-up%d", i)))
		a.down = append(a.down, sim.NewFIFO(s, fmt.Sprintf("atm-down%d", i)))
		a.ports = append(a.ports, &portArbiter{})
	}
	return a
}

// NewShardedATMNet builds the switch with host i's port FIFOs pinned to
// lane laneOf[i]. The switch forwarding delay must be at least the shard's
// lookahead (it is the only cross-lane hop).
func NewShardedATMNet(sh *sim.Shard, laneOf []int, c Costs) *ATMNet {
	if c.SwitchDelay < sh.Lookahead() {
		panic(fmt.Sprintf("atm: switch delay %v below shard lookahead %v", c.SwitchDelay, sh.Lookahead()))
	}
	a := &ATMNet{s: sh.Lane(0), c: c, laneOf: laneOf}
	for i, l := range laneOf {
		ls := sh.Lane(l)
		a.scheds = append(a.scheds, ls)
		a.up = append(a.up, sim.NewFIFO(ls, fmt.Sprintf("atm-up%d", i)))
		a.down = append(a.down, sim.NewFIFO(ls, fmt.Sprintf("atm-down%d", i)))
		a.ports = append(a.ports, &portArbiter{})
	}
	return a
}

// portArbiter serializes one destination port's downlink with a fixed
// arbitration order. The downlink is the fabric's only resource shared by
// several senders, so when two packets reach the switch output at the same
// virtual instant, which one wins decides both their delivery order and
// their queueing delays. Event execution order at equal timestamps is a
// kernel artifact — insertion order on the single scheduler, the
// (lane, sequence) merge on the shard — so reserving the FIFO directly in
// arrival order would let the two kernels resolve the tie differently.
// Instead arrivals buffer for one sub-cell arbitration window and reserve
// in (stamp, source-port) order, the ASX-200's fixed port priority:
// reservations are backdated to their stamps (FIFO.ReserveAt), so untied
// traffic keeps bit-identical timing and tied packets get one canonical
// winner on both kernels.
type portArbiter struct {
	pending []portReq
	flushAt sim.Time // scheduled flush; zero when none pending
}

type portReq struct {
	stamp   sim.Time
	src     int
	wire    sim.Duration
	deliver func()
}

// portArbDelay is the arbitration window. It must stay below the minimum
// downlink occupancy (one cell, ~2.8 µs) so reservations are always booked
// before their completion events fire.
const portArbDelay sim.Duration = 100 // ns

// enqueue registers an arrival at dst's switch output. Runs on dst's lane.
func (a *ATMNet) enqueue(dst, src int, wire sim.Duration, deliver func()) {
	s := a.schedOf(dst)
	q := a.ports[dst]
	q.pending = append(q.pending, portReq{stamp: s.Now(), src: src, wire: wire, deliver: deliver})
	if q.flushAt == 0 {
		q.flushAt = s.Now() + sim.Time(portArbDelay)
		s.At(q.flushAt, func() { a.flush(dst) })
	}
}

// flush reserves the downlink for every arrival stamped strictly before
// now, in (stamp, src) order. Arrivals stamped exactly at the flush
// instant wait for the next window — they may land in the pending list
// before or after this event depending on kernel tie-breaking, so deciding
// them here would reintroduce the ambiguity the arbiter removes.
func (a *ATMNet) flush(dst int) {
	s := a.schedOf(dst)
	now := s.Now()
	q := a.ports[dst]
	q.flushAt = 0
	batch := q.pending[:0:0]
	rest := q.pending[:0]
	for _, r := range q.pending {
		if r.stamp < now {
			batch = append(batch, r)
		} else {
			rest = append(rest, r)
		}
	}
	q.pending = rest
	sort.SliceStable(batch, func(i, j int) bool {
		if batch[i].stamp != batch[j].stamp {
			return batch[i].stamp < batch[j].stamp
		}
		return batch[i].src < batch[j].src
	})
	for _, r := range batch {
		end := a.down[dst].ReserveAt(r.stamp, r.wire)
		s.At(end+sim.Time(a.c.I960PerPacket+a.c.DriverATMPerFrame), r.deliver)
	}
	if len(q.pending) > 0 && q.flushAt == 0 {
		q.flushAt = now + sim.Time(portArbDelay)
		s.At(q.flushAt, func() { a.flush(dst) })
	}
}

func (a *ATMNet) schedOf(host int) *sim.Scheduler {
	if a.scheds == nil {
		return a.s
	}
	return a.scheds[host]
}

func (a *ATMNet) lane(host int) int {
	if a.laneOf == nil {
		return 0
	}
	return a.laneOf[host]
}

// Kind implements Medium.
func (a *ATMNet) Kind() MediumKind { return OverATM }

// MTU implements Medium (Classical IP over ATM).
func (a *ATMNet) MTU() int { return ATMMTU }

// Deliver implements Medium. Must be called from src's lane context on a
// sharded fabric.
func (a *ATMNet) Deliver(src, dst, n int, opts DeliverOpts, deliver func()) bool {
	wireBytes := AAL5WireBytes(n)
	if opts.AAL34 {
		wireBytes = AAL34WireBytes(n)
	}
	wire := sim.Duration(wireBytes) * a.c.ATMPerByte
	ss := a.schedOf(src)
	// Outbound SAR on the i960, uplink serialization, switch forwarding,
	// then the destination port arbiter, which reserves the downlink
	// (backdated to the switch-hop arrival) and schedules inbound SAR plus
	// the STREAMS driver after the serialization completes. The switch hop
	// routes to the destination's lane, so the downlink is reserved in
	// destination context at the same virtual time the single-scheduler
	// model reserved it.
	ss.After(a.c.I960PerPacket, func() {
		a.up[src].UseAsync(wire, func() {
			ss.RouteAfter(a.lane(dst), a.c.SwitchDelay, func() {
				a.enqueue(dst, src, wire, deliver)
			})
		})
	})
	return true
}
