package atm

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/sim"
)

// RUDP header: 1 flag byte, 4-byte sequence, 4-byte cumulative ack.
const rudpHeader = 9

const (
	rudpData = 1
	rudpAck  = 2
)

// RUDP layers reliability over a UDP socket: per-peer sequence numbers,
// cumulative acknowledgements, timer-driven retransmission, duplicate
// suppression and in-order delivery — the paper's "additional measures
// taken to make the UDP communication reliable", whose cost is why its
// UDP MPI performed like the TCP one.
type RUDP struct {
	sock *UDP
	s    *sim.Scheduler

	Window     int          // max unacked datagrams per peer
	RTO        sim.Duration // retransmission timeout
	MaxRetries int

	peers     map[int]*rudpPeer
	delivered []Datagram
	arrival   *sim.Cond

	// Stats.
	Retransmits int
	Duplicates  int

	// Err is set if a peer exceeded MaxRetries (the link is declared dead).
	Err error
}

type rudpPeer struct {
	nextSend uint32
	unacked  map[uint32]*rudpPending
	nextRecv uint32
	stash    map[uint32][]byte
}

type rudpPending struct {
	frame []byte
	dst   int
	tries int
	acked bool
}

// NewRUDP wraps sock with reliability.
func NewRUDP(sock *UDP) *RUDP {
	r := &RUDP{
		sock:       sock,
		s:          sock.cl.S,
		Window:     32,
		RTO:        10 * time.Millisecond,
		MaxRetries: 25,
		peers:      make(map[int]*rudpPeer),
		arrival:    sim.NewCond(sock.cl.S),
	}
	// Pure acknowledgements are consumed at interrupt level, like the
	// kernel timers that drive retransmission: the sender's window opens
	// and its timers settle even when the application is off computing.
	sock.OnReadable(func() {
		r.consumeAcks()
		r.arrival.Broadcast()
	})
	return r
}

// consumeAcks removes and processes ack-only datagrams from the raw socket
// queue. Runs in event context, so it charges no process time.
func (r *RUDP) consumeAcks() {
	kept := r.sock.dq[:0]
	for _, d := range r.sock.dq {
		if len(d.Data) == rudpHeader && d.Data[0]&rudpAck != 0 {
			ack := binary.BigEndian.Uint32(d.Data[5:9])
			pr := r.peer(d.Src)
			for s, pend := range pr.unacked {
				if s < ack {
					pend.acked = true
					delete(pr.unacked, s)
				}
			}
			continue
		}
		kept = append(kept, d)
	}
	r.sock.dq = kept
}

func (r *RUDP) peer(h int) *rudpPeer {
	p, ok := r.peers[h]
	if !ok {
		p = &rudpPeer{unacked: make(map[uint32]*rudpPending), stash: make(map[uint32][]byte)}
		r.peers[h] = p
	}
	return p
}

// Send reliably transmits data to host dst, blocking on the send window.
func (r *RUDP) Send(p *sim.Proc, dst int, data []byte) error {
	pr := r.peer(dst)
	for len(pr.unacked) >= r.Window {
		r.drain(p)
		if r.Err != nil {
			return r.Err
		}
		if len(pr.unacked) >= r.Window {
			r.arrival.Wait(p)
		}
	}
	seq := pr.nextSend
	pr.nextSend++
	frame := make([]byte, rudpHeader+len(data))
	frame[0] = rudpData
	binary.BigEndian.PutUint32(frame[1:5], seq)
	copy(frame[rudpHeader:], data)
	pend := &rudpPending{frame: frame, dst: dst}
	pr.unacked[seq] = pend
	r.sock.SendTo(p, dst, frame)
	r.armRetransmit(pr, seq, pend)
	return r.Err
}

// armRetransmit schedules the loss-recovery timer for seq.
func (r *RUDP) armRetransmit(pr *rudpPeer, seq uint32, pend *rudpPending) {
	r.s.After(r.RTO, func() {
		if pend.acked {
			return
		}
		pend.tries++
		if pend.tries > r.MaxRetries {
			r.Err = fmt.Errorf("rudp: peer %d unreachable after %d retransmissions of seq %d", pend.dst, pend.tries-1, seq)
			r.arrival.Broadcast()
			return
		}
		r.Retransmits++
		// Kernel-timer retransmission: wire costs only, no user syscall.
		r.sock.sendRaw(pend.dst, pend.frame)
		r.armRetransmit(pr, seq, pend)
	})
}

// TryRecv drains arrivals and returns one in-order datagram if available,
// without blocking.
func (r *RUDP) TryRecv(p *sim.Proc, buf []byte) (n, src int, ok bool, err error) {
	r.drain(p)
	if len(r.delivered) > 0 {
		d := r.delivered[0]
		r.delivered = r.delivered[1:]
		return copy(buf, d.Data), d.Src, true, nil
	}
	return 0, 0, false, r.Err
}

// MaxDatagram reports the largest payload Send accepts.
func (r *RUDP) MaxDatagram() int { return r.sock.MaxDatagram() - rudpHeader }

// OnArrival registers fn to run when raw datagrams arrive (event context).
func (r *RUDP) OnArrival(fn func()) { r.sock.OnReadable(fn) }

// Recv blocks for the next in-order datagram from any peer.
func (r *RUDP) Recv(p *sim.Proc, buf []byte) (int, int, error) {
	for {
		r.drain(p)
		if len(r.delivered) > 0 {
			d := r.delivered[0]
			r.delivered = r.delivered[1:]
			return copy(buf, d.Data), d.Src, nil
		}
		if r.Err != nil {
			return 0, 0, r.Err
		}
		r.arrival.Wait(p)
	}
}

// Readable reports whether an in-order datagram is deliverable (after a
// drain by the owning proc).
func (r *RUDP) Readable() bool { return len(r.delivered) > 0 || r.sock.Readable() }

// drain processes every queued raw datagram: data is ordered, deduplicated
// and acked; acks clear retransmission state.
func (r *RUDP) drain(p *sim.Proc) {
	for r.sock.Readable() {
		buf := make([]byte, r.sock.MaxDatagram())
		n, src := r.sock.RecvFrom(p, buf)
		if n < rudpHeader {
			continue
		}
		flags := buf[0]
		seq := binary.BigEndian.Uint32(buf[1:5])
		ack := binary.BigEndian.Uint32(buf[5:9])
		pr := r.peer(src)
		if flags&rudpAck != 0 {
			for s, pend := range pr.unacked {
				if s < ack {
					pend.acked = true
					delete(pr.unacked, s)
				}
			}
			r.arrival.Broadcast()
			continue
		}
		payload := make([]byte, n-rudpHeader)
		copy(payload, buf[rudpHeader:n])
		switch {
		case seq == pr.nextRecv:
			pr.nextRecv++
			r.delivered = append(r.delivered, Datagram{Src: src, Data: payload})
			for {
				next, ok := pr.stash[pr.nextRecv]
				if !ok {
					break
				}
				delete(pr.stash, pr.nextRecv)
				r.delivered = append(r.delivered, Datagram{Src: src, Data: next})
				pr.nextRecv++
			}
		case seq < pr.nextRecv:
			r.Duplicates++ // retransmission of delivered data: just re-ack
		default:
			pr.stash[seq] = payload
		}
		r.sendAck(p, src, pr.nextRecv)
	}
}

// sendAck transmits a cumulative ack through the full UDP path: the
// syscall and protocol costs of acking are exactly the overhead that made
// the paper's reliable-UDP MPI no faster than TCP.
func (r *RUDP) sendAck(p *sim.Proc, dst int, cum uint32) {
	frame := make([]byte, rudpHeader)
	frame[0] = rudpAck
	binary.BigEndian.PutUint32(frame[5:9], cum)
	r.sock.SendTo(p, dst, frame)
}
