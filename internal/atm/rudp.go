package atm

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/sim"
)

// RUDP header: 1 flag byte, 4-byte sequence, 4-byte cumulative ack. Every
// data frame carries both bits: the sequence it introduces and the ack it
// piggybacks.
const rudpHeader = 9

const (
	rudpData = 1
	rudpAck  = 2
)

// Retransmission tuning. The estimator starts from the classic fixed RTO
// and converges onto Jacobson's srtt + 4*rttvar once samples arrive.
const (
	rudpInitialRTO   = 10 * time.Millisecond
	rudpMinRTO       = 1 * time.Millisecond
	rudpMaxRTO       = 640 * time.Millisecond
	rudpDupThreshold = 3 // duplicate cumulative acks before fast retransmit
)

// RUDP layers reliability over a UDP socket: per-peer sequence numbers,
// cumulative acknowledgements, timer-driven retransmission, duplicate
// suppression and in-order delivery — the paper's "additional measures
// taken to make the UDP communication reliable", whose cost is why its
// UDP MPI performed like the TCP one.
//
// Loss recovery is TCP-shaped: the RTO adapts to measured round trips
// (Jacobson's estimator, with Karn's rule excluding retransmitted frames
// from sampling), backs off exponentially across retries, and three
// duplicate cumulative acks trigger a fast retransmit of the oldest
// outstanding frame without waiting for the timer. Acks piggyback on every
// outbound data frame; pure acks are sent immediately by default, or
// coalesced behind AckDelay when reverse traffic is expected to carry them.
type RUDP struct {
	sock *UDP
	s    *sim.Scheduler

	Window     int          // max unacked datagrams per peer
	RTO        sim.Duration // initial timeout, before any RTT sample
	MinRTO     sim.Duration // floor for the adaptive timeout
	MaxRTO     sim.Duration // ceiling for the backed-off timeout
	MaxRetries int
	// AckDelay, when nonzero, withholds pure acks for that long so a data
	// frame in the reverse direction can carry the ack for free. Zero keeps
	// the paper's behavior: every delivery is acked through the full UDP
	// send path immediately.
	AckDelay sim.Duration

	peers     map[int]*rudpPeer
	dead      map[int]bool // peers fenced by DropPeer: sends are swallowed
	delivered []Datagram
	arrival   *sim.Cond
	watchers  []func()

	// Stats.
	Retransmits     int // frames re-sent (timer + fast retransmit)
	FastRetransmits int // re-sends triggered by duplicate acks
	Duplicates      int // already-delivered data frames received
	PureAcks        int // ack-only datagrams transmitted
	PiggybackedAcks int // owed acks satisfied by outbound data frames

	// Err is set if a peer exceeded MaxRetries (the link is declared dead).
	Err error
}

type rudpPeer struct {
	host     int
	nextSend uint32
	unacked  map[uint32]*rudpPending
	nextRecv uint32
	stash    map[uint32][]byte

	// Jacobson/Karn RTT estimator state (zero until the first sample).
	srtt, rttvar, rto sim.Duration

	// Fast-retransmit state: the highest cumulative ack seen and how many
	// times it has repeated without progress.
	lastAck uint32
	dupAcks int

	// Delayed-ack state (AckDelay > 0).
	ackOwed  bool
	ackTimer bool
}

type rudpPending struct {
	frame  []byte
	dst    int
	seq    uint32
	tries  int
	acked  bool
	sentAt sim.Time     // first transmission time, for RTT sampling
	rto    sim.Duration // current (backed-off) timeout for this frame
}

// NewRUDP wraps sock with reliability.
func NewRUDP(sock *UDP) *RUDP {
	hs := sock.cl.SchedOf(sock.host)
	r := &RUDP{
		sock:       sock,
		s:          hs,
		Window:     32,
		RTO:        rudpInitialRTO,
		MinRTO:     rudpMinRTO,
		MaxRTO:     rudpMaxRTO,
		MaxRetries: 25,
		peers:      make(map[int]*rudpPeer),
		arrival:    sim.NewCond(hs),
	}
	// Pure acknowledgements are consumed at interrupt level, like the
	// kernel timers that drive retransmission: the sender's window opens
	// and its timers settle even when the application is off computing.
	sock.OnReadable(func() {
		r.consumeAcks()
		r.arrival.Broadcast()
		r.notify()
	})
	return r
}

// consumeAcks removes and processes ack-only datagrams from the raw socket
// queue. Runs in event context, so it charges no process time.
func (r *RUDP) consumeAcks() {
	kept := r.sock.dq[:0]
	for _, d := range r.sock.dq {
		if len(d.Data) == rudpHeader && d.Data[0]&rudpData == 0 && d.Data[0]&rudpAck != 0 {
			r.applyAck(r.peer(d.Src), binary.BigEndian.Uint32(d.Data[5:9]))
			continue
		}
		kept = append(kept, d)
	}
	r.sock.dq = kept
}

// applyAck is the one ack-processing path, shared by the interrupt-level
// consumer, the syscall-level drain, and piggybacked acks on data frames:
// clear acknowledged frames below the cumulative ack, sample the RTT, and
// count duplicate acks toward fast retransmit.
func (r *RUDP) applyAck(pr *rudpPeer, ack uint32) {
	progress := false
	for s, pend := range pr.unacked {
		if s < ack {
			pend.acked = true
			delete(pr.unacked, s)
			progress = true
			// Karn's rule: sample only never-retransmitted frames, and only
			// the one this ack directly covers (at most one per ack, so the
			// estimator's input order is deterministic).
			if pend.tries == 0 && pend.seq+1 == ack {
				r.sampleRTT(pr, sim.Duration(r.s.Now()-pend.sentAt))
			}
		}
	}
	if ack > pr.lastAck {
		pr.lastAck = ack
		pr.dupAcks = 0
	} else if ack == pr.lastAck && !progress && len(pr.unacked) > 0 {
		// The peer is repeating itself: frames beyond a hole are landing.
		pr.dupAcks++
		if pr.dupAcks == rudpDupThreshold {
			r.fastRetransmit(pr)
		}
	}
	if progress {
		r.arrival.Broadcast()
	}
}

// sampleRTT folds one round-trip measurement into the peer's estimator
// (RFC 6298 / Jacobson '88 coefficients) and refreshes its timeout.
func (r *RUDP) sampleRTT(pr *rudpPeer, sample sim.Duration) {
	if pr.srtt == 0 {
		pr.srtt = sample
		pr.rttvar = sample / 2
	} else {
		dev := sample - pr.srtt
		if dev < 0 {
			dev = -dev
		}
		pr.rttvar += (dev - pr.rttvar) / 4
		pr.srtt += (sample - pr.srtt) / 8
	}
	pr.rto = r.clampRTO(pr.srtt + 4*pr.rttvar)
}

func (r *RUDP) clampRTO(d sim.Duration) sim.Duration {
	// The floor must clear the peer's delayed-ack timer, or every message
	// with no reverse traffic behind it would retransmit spuriously while
	// the ack sits in the peer's coalescing window (the same reason TCP
	// keeps its minimum RTO above the delayed-ack timer).
	min := r.MinRTO
	if f := 2 * r.AckDelay; f > min {
		min = f
	}
	if d < min {
		return min
	}
	if d > r.MaxRTO {
		return r.MaxRTO
	}
	return d
}

// rtoFor reports the timeout for a fresh transmission to pr.
func (r *RUDP) rtoFor(pr *rudpPeer) sim.Duration {
	if pr.rto == 0 {
		return r.RTO
	}
	return pr.rto
}

// fastRetransmit re-sends the oldest outstanding frame after three
// duplicate cumulative acks: the hole they point at is almost certainly
// lost, and waiting out the timer would idle the window. Runs in whichever
// context observed the duplicate ack (no process time charged).
func (r *RUDP) fastRetransmit(pr *rudpPeer) {
	var oldest *rudpPending
	for _, pend := range pr.unacked {
		if oldest == nil || pend.seq < oldest.seq {
			oldest = pend
		}
	}
	if oldest == nil {
		return
	}
	oldest.tries++ // a retransmission: Karn excludes it from sampling
	r.Retransmits++
	r.FastRetransmits++
	r.restampAck(pr, oldest)
	r.sock.sendRaw(oldest.dst, oldest.frame)
	pr.dupAcks = 0
}

// restampAck refreshes the piggybacked cumulative ack on a frame about to
// be (re)transmitted.
func (r *RUDP) restampAck(pr *rudpPeer, pend *rudpPending) {
	binary.BigEndian.PutUint32(pend.frame[5:9], pr.nextRecv)
}

func (r *RUDP) peer(h int) *rudpPeer {
	p, ok := r.peers[h]
	if !ok {
		p = &rudpPeer{host: h, unacked: make(map[uint32]*rudpPending), stash: make(map[uint32][]byte)}
		r.peers[h] = p
	}
	return p
}

// DropPeer fences a dead peer: outstanding frames toward it are abandoned
// (their retransmission timers observe them acked and die) and every
// future send to it is swallowed. Without the fence, a single process
// failure would escalate into MaxRetries link death for the survivor —
// the corpse can never acknowledge anything.
func (r *RUDP) DropPeer(host int) {
	if r.dead == nil {
		r.dead = make(map[int]bool)
	}
	r.dead[host] = true
	pr, ok := r.peers[host]
	if !ok {
		return
	}
	for s, pend := range pr.unacked {
		pend.acked = true
		delete(pr.unacked, s)
	}
	pr.dupAcks = 0
	r.arrival.Broadcast()
}

// Send reliably transmits data to host dst, blocking on the send window.
func (r *RUDP) Send(p *sim.Proc, dst int, data []byte) error {
	if r.dead[dst] {
		return nil // fenced by DropPeer: swallowed, nothing to wait for
	}
	pr := r.peer(dst)
	for len(pr.unacked) >= r.Window {
		r.drain(p)
		if r.Err != nil {
			return r.Err
		}
		if len(pr.unacked) >= r.Window {
			r.arrival.Wait(p)
		}
	}
	if r.Err != nil {
		return r.Err
	}
	seq := pr.nextSend
	pr.nextSend++
	frame := make([]byte, rudpHeader+len(data))
	frame[0] = rudpData | rudpAck
	binary.BigEndian.PutUint32(frame[1:5], seq)
	binary.BigEndian.PutUint32(frame[5:9], pr.nextRecv)
	copy(frame[rudpHeader:], data)
	if pr.ackOwed {
		// The piggybacked ack satisfies what a delayed pure ack owed.
		pr.ackOwed = false
		r.PiggybackedAcks++
	}
	pend := &rudpPending{frame: frame, dst: dst, seq: seq}
	pr.unacked[seq] = pend
	r.sock.SendTo(p, dst, frame)
	pend.sentAt = r.s.Now()
	pend.rto = r.rtoFor(pr)
	r.armRetransmit(pr, pend)
	return r.Err
}

// armRetransmit schedules the loss-recovery timer for pend, backing off
// exponentially on every expiry until MaxRetries declares the link dead.
func (r *RUDP) armRetransmit(pr *rudpPeer, pend *rudpPending) {
	r.s.After(pend.rto, func() {
		if pend.acked || r.Err != nil {
			return
		}
		pend.tries++
		if pend.tries > r.MaxRetries {
			r.Err = fmt.Errorf("rudp: peer %d unreachable after %d retransmissions of seq %d", pend.dst, pend.tries-1, pend.seq)
			r.arrival.Broadcast()
			r.notify()
			return
		}
		pend.rto = r.clampRTO(pend.rto * 2)
		// The connection backs off with its oldest frame, so frames queued
		// behind an outage do not add their own retransmission storm.
		if pend.rto > pr.rto {
			pr.rto = pend.rto
		}
		r.Retransmits++
		// Kernel-timer retransmission: wire costs only, no user syscall.
		r.restampAck(pr, pend)
		r.sock.sendRaw(pend.dst, pend.frame)
		r.armRetransmit(pr, pend)
	})
}

// TryRecv drains arrivals and returns one in-order datagram if available,
// without blocking. Remaining delivered data is surfaced before a dead
// link's error.
func (r *RUDP) TryRecv(p *sim.Proc, buf []byte) (n, src int, ok bool, err error) {
	r.drain(p)
	if len(r.delivered) > 0 {
		d := r.delivered[0]
		r.delivered = r.delivered[1:]
		return copy(buf, d.Data), d.Src, true, nil
	}
	return 0, 0, false, r.Err
}

// MaxDatagram reports the largest payload Send accepts.
func (r *RUDP) MaxDatagram() int { return r.sock.MaxDatagram() - rudpHeader }

// OnArrival registers fn to run when raw datagrams arrive or the link dies
// (event context) — death must wake pollers just like an arrival, or a
// blocked Wait would never observe the error.
func (r *RUDP) OnArrival(fn func()) { r.watchers = append(r.watchers, fn) }

// notify runs the arrival watchers (event context).
func (r *RUDP) notify() {
	for _, fn := range r.watchers {
		fn()
	}
}

// Recv blocks for the next in-order datagram from any peer.
func (r *RUDP) Recv(p *sim.Proc, buf []byte) (int, int, error) {
	for {
		r.drain(p)
		if len(r.delivered) > 0 {
			d := r.delivered[0]
			r.delivered = r.delivered[1:]
			return copy(buf, d.Data), d.Src, nil
		}
		if r.Err != nil {
			return 0, 0, r.Err
		}
		r.arrival.Wait(p)
	}
}

// Readable reports whether an in-order datagram is deliverable (after a
// drain by the owning proc).
func (r *RUDP) Readable() bool { return len(r.delivered) > 0 || r.sock.Readable() }

// drain processes every queued raw datagram: piggybacked and pure acks go
// through applyAck; data is ordered, deduplicated and acked.
func (r *RUDP) drain(p *sim.Proc) {
	for r.sock.Readable() {
		buf := make([]byte, r.sock.MaxDatagram())
		n, src := r.sock.RecvFrom(p, buf)
		if n < rudpHeader {
			continue
		}
		flags := buf[0]
		seq := binary.BigEndian.Uint32(buf[1:5])
		ack := binary.BigEndian.Uint32(buf[5:9])
		pr := r.peer(src)
		if flags&rudpAck != 0 {
			r.applyAck(pr, ack)
		}
		if flags&rudpData == 0 {
			continue // pure ack
		}
		payload := make([]byte, n-rudpHeader)
		copy(payload, buf[rudpHeader:n])
		switch {
		case seq == pr.nextRecv:
			pr.nextRecv++
			r.delivered = append(r.delivered, Datagram{Src: src, Data: payload})
			for {
				next, ok := pr.stash[pr.nextRecv]
				if !ok {
					break
				}
				delete(pr.stash, pr.nextRecv)
				r.delivered = append(r.delivered, Datagram{Src: src, Data: next})
				pr.nextRecv++
			}
		case seq < pr.nextRecv:
			r.Duplicates++ // retransmission of delivered data: just re-ack
		default:
			pr.stash[seq] = payload
		}
		r.scheduleAck(p, pr)
	}
}

// scheduleAck acknowledges received data: immediately through the full UDP
// send path (the default, whose syscall cost is the paper's reliable-UDP
// overhead story), or — with AckDelay — lazily, hoping an outbound data
// frame will piggyback it first.
func (r *RUDP) scheduleAck(p *sim.Proc, pr *rudpPeer) {
	if r.dead[pr.host] {
		return // no point acknowledging toward a fenced corpse
	}
	if r.AckDelay == 0 {
		r.sendAck(p, pr.host, pr.nextRecv)
		return
	}
	pr.ackOwed = true
	if pr.ackTimer {
		return
	}
	pr.ackTimer = true
	r.s.After(r.AckDelay, func() {
		pr.ackTimer = false
		if !pr.ackOwed {
			return
		}
		// No reverse data carried it: flush a pure ack from timer context.
		pr.ackOwed = false
		r.PureAcks++
		frame := make([]byte, rudpHeader)
		frame[0] = rudpAck
		binary.BigEndian.PutUint32(frame[5:9], pr.nextRecv)
		r.sock.sendRaw(pr.host, frame)
	})
}

// sendAck transmits a cumulative ack through the full UDP path: the
// syscall and protocol costs of acking are exactly the overhead that made
// the paper's reliable-UDP MPI no faster than TCP.
func (r *RUDP) sendAck(p *sim.Proc, dst int, cum uint32) {
	r.PureAcks++
	frame := make([]byte, rudpHeader)
	frame[0] = rudpAck
	binary.BigEndian.PutUint32(frame[5:9], cum)
	r.sock.SendTo(p, dst, frame)
}
