package atm

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// The sharded ATM fabric is the same cost model on a different kernel:
// deliveries — including downlink contention at a shared destination port
// from sources on different lanes — must land at exactly the
// single-scheduler times.
func TestShardedATMNetMatchesSingleScheduler(t *testing.T) {
	c := DefaultCosts()
	run := func(a *ATMNet, drive func() (sim.Time, error)) []sim.Time {
		var ends []sim.Time
		// Two hosts blast the same destination port; a third packet rides
		// the opposite direction.
		a.Deliver(0, 2, 1024, DeliverOpts{}, func() { ends = append(ends, a.schedOf(2).Now()) })
		a.Deliver(1, 2, 512, DeliverOpts{}, func() { ends = append(ends, a.schedOf(2).Now()) })
		a.Deliver(2, 0, 256, DeliverOpts{AAL34: true}, func() { ends = append(ends, a.schedOf(0).Now()) })
		if _, err := drive(); err != nil {
			t.Fatal(err)
		}
		return ends
	}
	s := sim.NewScheduler(1)
	want := run(NewATMNet(s, 3, c), s.Run)
	sh := sim.NewShard(1, 3, c.SwitchDelay)
	got := run(NewShardedATMNet(sh, []int{0, 1, 2}, c), sh.Run)
	if len(want) != 3 || len(got) != 3 {
		t.Fatalf("deliveries: single %v, sharded %v", want, got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d at %v sharded, %v single (all: %v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

// The shared Ethernet segment homes on lane 0 as a sim.Stage: frames from
// every lane must serialize on the one wire in stamp order, landing at
// exactly the single-scheduler times — including back-to-back contention
// where the queueing arithmetic, not just the latency, decides.
func TestShardedEthernetMatchesSingleScheduler(t *testing.T) {
	c := DefaultCosts()
	run := func(e *Ethernet, drive func() (sim.Time, error)) []sim.Time {
		ends := make([]sim.Time, 4)
		// All hosts contend for the wire at t=0, then host 0 sends again.
		e.Deliver(0, 2, 700, DeliverOpts{}, func() {
			ends[0] = e.schedOf(2).Now()
			e.Deliver(2, 1, 40, DeliverOpts{}, func() { ends[3] = e.schedOf(1).Now() })
		})
		e.Deliver(1, 2, 300, DeliverOpts{}, func() { ends[1] = e.schedOf(2).Now() })
		e.Deliver(2, 0, 1, DeliverOpts{}, func() { ends[2] = e.schedOf(0).Now() })
		if _, err := drive(); err != nil {
			t.Fatal(err)
		}
		return ends
	}
	s := sim.NewScheduler(1)
	want := run(NewEthernet(s, c), s.Run)
	sh := sim.NewShard(1, 3, c.SwitchDelay)
	got := run(NewShardedEthernet(sh, []int{0, 1, 2}, c), sh.Run)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d at %v sharded, %v single (all: %v vs %v)", i, got[i], want[i], got, want)
		}
		if want[i] == 0 {
			t.Fatalf("delivery %d never ran", i)
		}
	}
}

func TestShardedEthernetRejectsLongLookahead(t *testing.T) {
	c := DefaultCosts()
	// A lookahead above the propagation+driver tail must be rejected.
	sh := sim.NewShard(1, 2, c.EthPropDelay+c.DriverEthPerFrame+time.Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lookahead above the delivery tail")
		}
	}()
	NewShardedEthernet(sh, []int{0, 1}, c)
}

func TestShardedATMNetRejectsShortSwitchDelay(t *testing.T) {
	c := DefaultCosts()
	sh := sim.NewShard(1, 2, c.SwitchDelay+time.Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for switch delay below lookahead")
		}
	}()
	NewShardedATMNet(sh, []int{0, 1}, c)
}
