package atm

import (
	"time"

	"repro/internal/sim"
)

// DefaultTCPBuffer is the kernel socket buffer size: the receive window.
const DefaultTCPBuffer = 64 * 1024

// TCP is one end of an established TCP connection (connections are static
// in the paper's setup, so connection establishment is out of scope). The
// model implements what the paper's MPI rides on: a reliable ordered byte
// stream with segmentation at the MSS, kernel protocol processing per
// segment, user/kernel copies, and receiver-buffer flow control. Loss
// recovery is not modeled — both testbed media are effectively lossless
// and the paper treats TCP as a reliable stream (UDP reliability is
// modeled separately in RUDP).
type TCP struct {
	cl   *Cluster
	host int
	med  Medium
	peer *TCP

	rq        []byte // kernel receive buffer (delivered, unread)
	readable  *sim.Cond
	watchers  []func() // arrival callbacks (event context)
	wwatchers []func() // window-opened callbacks (event context)

	sndCredit int // peer receive-buffer space we may consume
	sndWait   *sim.Cond

	// Nagle enables RFC 896 coalescing: while data is unacknowledged,
	// sub-MSS writes are held and merged. Off by default — the paper's
	// latency work presupposes TCP_NODELAY, and the MPI device writes each
	// protocol message as a single frame precisely to keep small messages
	// off this path.
	Nagle bool
	// DelayedAck enables 4.2BSD-style ack delay: acknowledgements (window
	// updates) are withheld until two segments' worth is owed or the delay
	// timer fires. Acks piggyback on reverse data immediately. The classic
	// Nagle x DelayedAck interaction stalls one-way small-message streams
	// by AckDelay per exchange.
	DelayedAck bool
	// AckDelay is the delayed-ack timer (0 = the classic 200 ms).
	AckDelay sim.Duration

	dropped  bool   // fenced by Drop: the peer is dead, writes are discarded
	unacked  int    // bytes sent, not yet acknowledged
	nagleQ   []byte // coalesced sub-MSS data awaiting an ack
	owedAck  int    // window bytes not yet returned to the peer
	ackTimer bool   // delayed-ack timer armed

	// Stats for tests and instrumentation.
	SegmentsOut int
	BytesIn     int
}

// TCPPair establishes a connection between hosts h0 and h1 over medium k,
// returning the two endpoints.
func (cl *Cluster) TCPPair(h0, h1 int, k MediumKind) (*TCP, *TCP) {
	m := cl.Medium(k)
	s0, s1 := cl.SchedOf(h0), cl.SchedOf(h1)
	a := &TCP{cl: cl, host: h0, med: m, readable: sim.NewCond(s0), sndWait: sim.NewCond(s0), sndCredit: DefaultTCPBuffer}
	b := &TCP{cl: cl, host: h1, med: m, readable: sim.NewCond(s1), sndWait: sim.NewCond(s1), sndCredit: DefaultTCPBuffer}
	a.peer, b.peer = b, a
	return a, b
}

// Host reports the endpoint's host id.
func (c *TCP) Host() int { return c.host }

// MSS reports the maximum segment payload for the connection's medium.
func (c *TCP) MSS() int { return c.med.MTU() - TCPIPHeader }

// Write sends len(data) bytes down the stream, blocking (in virtual time)
// on the receiver's window. It charges the syscall, the user-to-kernel
// copy, checksumming, and per-segment protocol processing to p.
func (c *TCP) Write(p *sim.Proc, data []byte) {
	k := c.cl.Costs
	p.Advance(k.SyscallWrite)
	p.Advance(sim.Duration(len(data)) * (k.CopyPerByte + k.ChecksumPerByte))
	mss := c.MSS()
	for off := 0; off < len(data); off += mss {
		end := off + mss
		if end > len(data) {
			end = len(data)
		}
		c.writeSegment(p, data[off:end])
	}
	if len(data) == 0 {
		c.writeSegment(p, nil)
	}
}

// Drop fences the connection against a dead peer: segments written from
// now on are discarded instead of transmitted (the corpse will never read
// them), send credit is pinned open (it will never return window updates
// either), and writers parked on window space are released. Without the
// fence a single dead peer would park every survivor that still owes it a
// frame on a window that can never reopen.
func (c *TCP) Drop() {
	c.dropped = true
	c.sndCredit = DefaultTCPBuffer
	c.sndWait.Broadcast()
	for _, fn := range c.wwatchers {
		fn()
	}
}

func (c *TCP) writeSegment(p *sim.Proc, seg []byte) {
	if c.dropped {
		return // fenced: the bytes would go to a dead peer
	}
	if c.Nagle && c.unacked > 0 && len(c.nagleQ)+len(seg) < c.MSS() {
		// Hold sub-MSS data while anything is in flight (RFC 896).
		c.nagleQ = append(c.nagleQ, seg...)
		return
	}
	if len(c.nagleQ) > 0 {
		seg = append(append([]byte{}, c.nagleQ...), seg...)
		c.nagleQ = nil
	}
	// A data transmission is an opportunity to piggyback any ack we owe.
	c.flushOwedAck()
	k := c.cl.Costs
	for c.sndCredit < len(seg) {
		c.sndWait.Wait(p)
	}
	if c.dropped {
		return // the peer died while we were parked on its window
	}
	c.sndCredit -= len(seg)
	c.unacked += len(seg)
	p.Advance(k.TCPPerSegment)
	payload := make([]byte, len(seg))
	copy(payload, seg)
	c.SegmentsOut++
	c.med.Deliver(c.host, c.peer.host, len(seg)+TCPIPHeader, DeliverOpts{}, func() {
		// Receiver-side kernel input processing, then the data becomes
		// readable. The medium ran us on the peer's lane; stay there.
		c.cl.SchedOf(c.peer.host).After(k.TCPPerSegment, func() {
			c.peer.rq = append(c.peer.rq, payload...)
			c.peer.BytesIn += len(payload)
			c.peer.readable.Broadcast()
			for _, fn := range c.peer.watchers {
				fn()
			}
		})
	})
}

// WriteInterleaved is Write for callers that must keep draining their own
// inbound side while a large frame pushes against a closed window: whenever
// the next segment would block on window space, yield runs instead of
// parking here. yield should consume inbound data (freeing the peer to
// drain this frame) or park on a condition woken by both arrivals and
// window updates (see OnWritable). Two peers pushing window-exceeding
// frames at each other would both park forever in plain Write — the classic
// socket-MPI progress deadlock. Costs charged to p are identical to
// Write's.
func (c *TCP) WriteInterleaved(p *sim.Proc, data []byte, yield func()) {
	k := c.cl.Costs
	p.Advance(k.SyscallWrite)
	p.Advance(sim.Duration(len(data)) * (k.CopyPerByte + k.ChecksumPerByte))
	mss := c.MSS()
	for off := 0; off < len(data); off += mss {
		end := off + mss
		if end > len(data) {
			end = len(data)
		}
		for c.sndCredit < end-off {
			yield()
		}
		c.writeSegment(p, data[off:end])
	}
	if len(data) == 0 {
		c.writeSegment(p, nil)
	}
}

// Read blocks until at least one byte is available, then transfers up to
// len(buf) bytes to the caller, charging the read syscall, the
// medium-dependent stack cost, and the kernel-to-user copy. It returns the
// byte count. Reading frees window space, which flows back to the sender
// as a window-update frame.
func (c *TCP) Read(p *sim.Proc, buf []byte) int {
	k := c.cl.Costs
	p.Advance(k.SyscallRead + c.cl.readExtra(c.med.Kind()))
	if len(c.rq) == 0 {
		for len(c.rq) == 0 {
			c.readable.Wait(p)
		}
		p.Advance(k.KernelWakeup)
	}
	n := copy(buf, c.rq)
	c.rq = c.rq[n:]
	p.Advance(sim.Duration(n) * k.CopyPerByte)
	c.sendWindowUpdate(n)
	return n
}

// ReadFull fills buf completely, looping over Read.
func (c *TCP) ReadFull(p *sim.Proc, buf []byte) {
	for off := 0; off < len(buf); {
		off += c.Read(p, buf[off:])
	}
}

// sendWindowUpdate returns n bytes of window to the peer via a bare-header
// frame (the ack traffic of the model). With DelayedAck the update is
// withheld until two MSS of window is owed or the delay timer fires.
func (c *TCP) sendWindowUpdate(n int) {
	if n == 0 {
		return
	}
	if !c.DelayedAck {
		c.transmitAck(n)
		return
	}
	c.owedAck += n
	if c.owedAck >= 2*c.MSS() {
		c.flushOwedAck()
		return
	}
	if !c.ackTimer {
		c.ackTimer = true
		delay := c.AckDelay
		if delay == 0 {
			delay = 200 * time.Millisecond
		}
		c.cl.SchedOf(c.host).After(delay, func() {
			c.ackTimer = false
			c.flushOwedAck()
		})
	}
}

// flushOwedAck transmits any withheld window update.
func (c *TCP) flushOwedAck() {
	if c.owedAck == 0 {
		return
	}
	n := c.owedAck
	c.owedAck = 0
	c.transmitAck(n)
}

// transmitAck carries an n-byte window update (and acknowledgement) to the
// peer, unblocking its window waiters and releasing Nagle-held data.
func (c *TCP) transmitAck(n int) {
	c.med.Deliver(c.host, c.peer.host, TCPIPHeader, DeliverOpts{}, func() {
		p := c.peer
		p.sndCredit += n
		p.unacked -= n
		if p.unacked < 0 {
			p.unacked = 0
		}
		if p.Nagle && p.unacked == 0 && len(p.nagleQ) > 0 {
			// The ack releases coalesced data; transmission happens in
			// kernel context (timer/interrupt), like RUDP retransmits.
			p.kernelFlushNagle()
		}
		p.sndWait.Broadcast()
		for _, fn := range p.wwatchers {
			fn()
		}
	})
}

// kernelFlushNagle transmits the coalesced queue from kernel context.
func (c *TCP) kernelFlushNagle() {
	seg := c.nagleQ
	c.nagleQ = nil
	if len(seg) > c.sndCredit {
		// Window closed: put it back; the next update retries.
		c.nagleQ = seg
		return
	}
	k := c.cl.Costs
	c.sndCredit -= len(seg)
	c.unacked += len(seg)
	payload := make([]byte, len(seg))
	copy(payload, seg)
	c.SegmentsOut++
	c.med.Deliver(c.host, c.peer.host, len(seg)+TCPIPHeader, DeliverOpts{}, func() {
		c.cl.SchedOf(c.peer.host).After(k.TCPPerSegment, func() {
			c.peer.rq = append(c.peer.rq, payload...)
			c.peer.BytesIn += len(payload)
			c.peer.readable.Broadcast()
			for _, fn := range c.peer.watchers {
				fn()
			}
		})
	})
}

// Buffered reports how many received bytes are waiting in the kernel.
func (c *TCP) Buffered() int { return len(c.rq) }

// Readable reports whether a Read would return without blocking.
func (c *TCP) Readable() bool { return len(c.rq) > 0 }

// OnReadable registers fn to run whenever new bytes become readable; used
// by pollers that watch many connections. fn runs in event context.
func (c *TCP) OnReadable(fn func()) {
	c.watchers = append(c.watchers, fn)
}

// OnWritable registers fn to run whenever a window update restores send
// space; a WriteInterleaved yield that parks on a shared condition needs
// this to relay the wakeup. fn runs in event context.
func (c *TCP) OnWritable(fn func()) {
	c.wwatchers = append(c.wwatchers, fn)
}
