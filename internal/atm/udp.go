package atm

import (
	"fmt"

	"repro/internal/sim"
)

// Datagram is a received UDP (or AAL4) datagram.
type Datagram struct {
	Src  int
	Data []byte
}

// UDP is a bound datagram socket on one host over one medium. One socket
// per (host, medium) carries all of the model's UDP traffic — addressing
// is by host id, matching the paper's static process-per-host placement.
type UDP struct {
	cl   *Cluster
	host int
	med  Medium

	dq       []Datagram
	readable *sim.Cond
	watchers []func()

	// Drops counts datagrams lost to loss injection on send (whole
	// datagram lost when any fragment is).
	Drops int
}

// UDPSocket binds (or returns the existing) datagram socket for host h on
// medium k.
func (cl *Cluster) UDPSocket(h int, k MediumKind) *UDP {
	if s, ok := cl.udpPorts[k][h]; ok {
		return s
	}
	s := &UDP{cl: cl, host: h, med: cl.Medium(k), readable: sim.NewCond(cl.SchedOf(h))}
	cl.udpPorts[k][h] = s
	return s
}

// Host reports the bound host id.
func (u *UDP) Host() int { return u.host }

// MaxDatagram reports the largest datagram the socket accepts (bounded by
// IP fragmentation across the medium MTU; we cap at 8 fragments).
func (u *UDP) MaxDatagram() int { return 8*(u.med.MTU()-UDPIPHeader) - UDPIPHeader }

// SendTo transmits data as one datagram to host dst, charging syscall,
// copy, checksum and protocol costs, fragmenting across the MTU when
// needed. Datagrams are unreliable when the medium injects loss; they are
// never reordered between a host pair (both media are FIFO), matching what
// the paper's reliability layer assumes.
func (u *UDP) SendTo(p *sim.Proc, dst int, data []byte) {
	k := u.cl.Costs
	if len(data) > u.MaxDatagram() {
		panic(fmt.Sprintf("udp: datagram of %d bytes exceeds max %d", len(data), u.MaxDatagram()))
	}
	p.Advance(k.SyscallWrite)
	p.Advance(sim.Duration(len(data)) * (k.CopyPerByte + k.ChecksumPerByte))
	p.Advance(k.UDPPerPacket)
	u.transmit(dst, data)
}

// transmit fragments and delivers one datagram toward dst's socket,
// reassembling at the far side; the whole datagram is lost if any fragment
// is. Safe from event context (used by timer-driven retransmission).
func (u *UDP) transmit(dst int, data []byte) {
	k := u.cl.Costs
	peer := u.cl.udpPorts[u.med.Kind()][dst]
	if peer == nil {
		panic(fmt.Sprintf("udp: no socket bound on host %d/%v", dst, u.med.Kind()))
	}
	payload := make([]byte, len(data))
	copy(payload, data)
	src := u.host

	frag := u.med.MTU() - UDPIPHeader
	nfrags := (len(data) + frag - 1) / frag
	if nfrags == 0 {
		nfrags = 1
	}
	arrived := 0
	lost := false
	for i := 0; i < nfrags; i++ {
		end := (i + 1) * frag
		if end > len(data) {
			end = len(data)
		}
		fragLen := end - i*frag
		if fragLen < 0 {
			fragLen = 0
		}
		ok := u.med.Deliver(u.host, dst, fragLen+UDPIPHeader, DeliverOpts{Droppable: true}, func() {
			arrived++
			// Each complete fragment set yields a datagram, so a duplicated
			// wire frame surfaces as a duplicate datagram (as real IP
			// reassembly would) instead of being silently absorbed.
			if arrived%nfrags == 0 && !lost {
				// Reassembly complete: kernel input processing, then queue.
				// The medium ran us on dst's lane, so the timer and the
				// socket state stay there.
				u.cl.SchedOf(dst).After(k.UDPPerPacket, func() {
					peer.dq = append(peer.dq, Datagram{Src: src, Data: payload})
					peer.readable.Broadcast()
					for _, fn := range peer.watchers {
						fn()
					}
				})
			}
		})
		if !ok {
			lost = true
		}
	}
	if lost {
		u.Drops++
	}
}

// RecvFrom blocks until a datagram arrives, copies it into buf (truncating
// silently like the BSD API), and reports the byte count and source host.
func (u *UDP) RecvFrom(p *sim.Proc, buf []byte) (int, int) {
	k := u.cl.Costs
	p.Advance(k.SyscallRead + u.cl.readExtra(u.med.Kind()))
	if len(u.dq) == 0 {
		for len(u.dq) == 0 {
			u.readable.Wait(p)
		}
		p.Advance(k.KernelWakeup)
	}
	d := u.dq[0]
	u.dq = u.dq[1:]
	n := copy(buf, d.Data)
	p.Advance(sim.Duration(n) * k.CopyPerByte)
	return n, d.Src
}

// Readable reports whether RecvFrom would return without blocking.
func (u *UDP) Readable() bool { return len(u.dq) > 0 }

// sendRaw transmits a datagram from kernel context (timer-driven
// retransmission): wire and kernel delivery only, no user-side charges.
func (u *UDP) sendRaw(dst int, data []byte) {
	u.transmit(dst, data)
}

// OnReadable registers an arrival callback (event context).
func (u *UDP) OnReadable(fn func()) { u.watchers = append(u.watchers, fn) }
