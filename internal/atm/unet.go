package atm

import (
	"fmt"

	"repro/internal/sim"
)

// UNet is a user-level network endpoint over the ATM switch, after
// von Eicken et al.'s U-Net (SOSP'95) — the future-work direction the
// paper's related-work section points at: "a DMA mechanism such as this
// could be used in conjunction with the Meiko implementation for a high
// performance ATM implementation."
//
// The kernel is out of the data path: sends are a user-space doorbell
// write into a pinned transmit queue the i960 drains, and receives are
// polled from a user-mapped receive queue — no syscalls, no IP/transport
// processing, no STREAMS driver. What remains is the NIC and the wire,
// which is why U-Net cut the ~1 ms kernel round trips of Figure 4 to tens
// of microseconds.
type UNet struct {
	cl   *Cluster
	host int

	dq       []Datagram
	readable *sim.Cond
	watchers []func()
}

// U-Net cost model (calibrated to the SOSP'95 measurements: ~65 µs
// round trip for small messages on a 140 Mbit/s SBA-200).
const (
	// UNetDoorbell is the user-space send cost: compose the descriptor and
	// ring the doorbell.
	UNetDoorbell = 3000 // ns
	// UNetPoll is the user-space receive cost: check and consume a receive
	// queue entry.
	UNetPoll = 3000 // ns
	// UNetSARPerPacket is the on-card segmentation/reassembly cost with
	// U-Net's streamlined firmware (lower than the stock i960 path).
	UNetSARPerPacket = 8000 // ns
)

// UNetSocket binds (or returns) the user-level endpoint for host h.
func (cl *Cluster) UNetSocket(h int) *UNet {
	if cl.unet == nil {
		cl.unet = make(map[int]*UNet)
	}
	if s, ok := cl.unet[h]; ok {
		return s
	}
	s := &UNet{cl: cl, host: h, readable: sim.NewCond(cl.SchedOf(h))}
	cl.unet[h] = s
	return s
}

// MaxPDU bounds one U-Net message (one pinned buffer).
const UNetMaxPDU = 64 * 1024

// SendTo transmits one message to host dst. The per-message cost is the
// doorbell write plus the user-to-NIC copy at memory bandwidth; the
// switch's dedicated flow-controlled links deliver reliably and in order.
func (u *UNet) SendTo(p *sim.Proc, dst int, data []byte) {
	k := u.cl.Costs
	if len(data) > UNetMaxPDU {
		panic(fmt.Sprintf("unet: PDU of %d bytes exceeds max %d", len(data), UNetMaxPDU))
	}
	p.Advance(UNetDoorbell)
	p.Advance(sim.Duration(len(data)) * k.CopyPerByte)

	peer := u.cl.UNetSocket(dst)
	payload := make([]byte, len(data))
	copy(payload, data)
	src := u.host
	// U-Net bypasses the Medium interface (no kernel stack), but not the
	// physical network: partitions and added latency from the fault layer
	// still apply. Loss/duplication/reordering do not — the dedicated
	// switch links are flow controlled, lossless and FIFO by construction.
	drop, extras := u.cl.atmInj.admit(src, dst, false)
	if drop {
		return
	}
	wire := sim.Duration(AAL5WireBytes(len(data))) * k.ATMPerByte
	// Outbound SAR, uplink, switch, downlink, inbound SAR — and straight
	// into the user-mapped receive queue. The switch hop is where the
	// packet leaves its source host's lane (a plain timer when unsharded).
	ss, ds := u.cl.SchedOf(src), u.cl.SchedOf(dst)
	for _, extra := range extras {
		ss.After(extra+UNetSARPerPacket, func() {
			u.cl.Atm.up[src].UseAsync(wire, func() {
				ss.RouteAfter(u.cl.LaneOf(dst), k.SwitchDelay, func() {
					u.cl.Atm.down[dst].UseAsync(wire, func() {
						ds.After(UNetSARPerPacket, func() {
							peer.dq = append(peer.dq, Datagram{Src: src, Data: payload})
							peer.readable.Broadcast()
							for _, fn := range peer.watchers {
								fn()
							}
						})
					})
				})
			})
		})
	}
}

// RecvFrom blocks polling the receive queue for the next message.
func (u *UNet) RecvFrom(p *sim.Proc, buf []byte) (int, int) {
	k := u.cl.Costs
	p.Advance(UNetPoll)
	for len(u.dq) == 0 {
		u.readable.Wait(p)
	}
	d := u.dq[0]
	u.dq = u.dq[1:]
	n := copy(buf, d.Data)
	p.Advance(sim.Duration(n) * k.CopyPerByte)
	return n, d.Src
}

// Readable reports whether RecvFrom would return without blocking.
func (u *UNet) Readable() bool { return len(u.dq) > 0 }

// OnReadable registers an arrival callback (event context).
func (u *UNet) OnReadable(fn func()) { u.watchers = append(u.watchers, fn) }
