package bench

import (
	"fmt"
	"time"

	"repro/mpi"
	"repro/platform/registry"
)

// Ablations beyond the paper's figures, covering the design choices
// DESIGN.md calls out: the crossover threshold, the broadcast algorithm,
// and the cost of reliability under datagram loss.

// AblationThreshold sweeps the Meiko eager/rendezvous threshold and
// reports the 256-byte round trip — showing why the measured 180-byte
// crossover is the right setting (256 B should use rendezvous; thresholds
// above it force buffering).
func AblationThreshold(o Opts) (Figure, error) {
	o = o.Norm()
	thresholds := []int{1, 64, 128, 180, 256, 512, 1024}
	const size = 256
	var s Series
	s.Name = fmt.Sprintf("%dB RTT", size)
	for _, th := range thresholds {
		us, err := MeikoPingPong("lowlatency", th, size, o.Iters)
		if err != nil {
			return Figure{}, err
		}
		s.Points = append(s.Points, Point{th, us})
	}
	return Figure{
		ID:     "Ablation A",
		Title:  "Eager/rendezvous threshold sweep (Meiko, 256-byte messages)",
		XLabel: "threshold",
		YLabel: "us",
		Series: []Series{s},
		Notes:  []string{"messages above the 180-byte crossover should rendezvous; forcing eager pays the bounce copy"},
	}, nil
}

// AblationBcast compares broadcast algorithms on the Meiko: the hardware
// broadcast against linear and binomial point-to-point trees.
func AblationBcast(o Opts) (Figure, error) {
	o = o.Norm()
	procs := []int{2, 4, 8, 16}
	algs := []struct {
		name string
		alg  mpi.BcastAlg
	}{
		{"hardware", mpi.BcastHardware},
		{"binomial", mpi.BcastBinomial},
		{"linear", mpi.BcastLinear},
	}
	fig := Figure{
		ID:     "Ablation B",
		Title:  "Broadcast algorithm (Meiko, 1 KB payload, per-bcast time)",
		XLabel: "# processes",
		YLabel: "us",
	}
	for _, a := range algs {
		var s Series
		s.Name = a.name
		for _, p := range procs {
			rep, err := registry.Run(registry.Spec{Platform: "meiko", Ranks: p, Bcast: a.alg}, func(c *mpi.Comm) error {
				buf := make([]byte, 1024)
				for i := 0; i < o.Iters; i++ {
					if err := c.Bcast(0, buf); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return Figure{}, err
			}
			s.Points = append(s.Points, Point{p, float64(rep.MaxRankElapsed) / 1e3 / float64(o.Iters)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationBcastLarge compares broadcast algorithms for bulk payloads,
// where the pipelined chain overlaps stages that a binomial tree
// serializes (128 KB payload on the Meiko).
func AblationBcastLarge(o Opts) (Figure, error) {
	o = o.Norm()
	procs := []int{4, 8, 16}
	algs := []struct {
		name string
		alg  mpi.BcastAlg
	}{
		{"hardware", mpi.BcastHardware},
		{"binomial", mpi.BcastBinomial},
		{"pipelined", mpi.BcastPipelined},
	}
	fig := Figure{
		ID:     "Ablation B2",
		Title:  "Large-payload broadcast (Meiko, 128 KB, per-bcast time)",
		XLabel: "# processes",
		YLabel: "us",
		Notes: []string{
			"pipelined rendezvous lands in user buffers; the hardware broadcast pays a slot-to-user copy at bulk sizes",
		},
	}
	for _, a := range algs {
		var s Series
		s.Name = a.name
		for _, p := range procs {
			rep, err := registry.Run(registry.Spec{Platform: "meiko", Ranks: p, Bcast: a.alg}, func(c *mpi.Comm) error {
				buf := make([]byte, 128<<10)
				for i := 0; i < 3; i++ {
					if err := c.Bcast(0, buf); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return Figure{}, err
			}
			s.Points = append(s.Points, Point{p, float64(rep.MaxRankElapsed) / 1e3 / 3})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationUDPLoss measures the reliable-UDP MPI round trip under
// increasing datagram loss, exposing the retransmission cost that the
// paper's reliability layer hides at zero loss.
func AblationUDPLoss(o Opts) (Figure, error) {
	o = o.Norm()
	rates := []int{0, 5, 10, 20} // percent
	var s Series
	s.Name = "256B RTT"
	for _, r := range rates {
		w, err := registry.Build(registry.Spec{
			Platform:  "cluster",
			Transport: "udp",
			Ranks:     2,
			LossRate:  float64(r) / 100,
		})
		if err != nil {
			return Figure{}, err
		}
		us, err := mpiPingPong(w, 256, o.Iters*4)
		if err != nil {
			return Figure{}, err
		}
		s.Points = append(s.Points, Point{r, us})
	}
	return Figure{
		ID:     "Ablation C",
		Title:  "Reliable-UDP MPI under datagram loss (ATM)",
		XLabel: "loss %",
		YLabel: "us",
		Series: []Series{s},
		Notes:  []string{"retransmission timeouts dominate once loss is non-negligible"},
	}, nil
}

// AblationMatchLocation isolates the SPARC-vs-Elan matching question by
// reporting the per-size latency penalty of the MPICH (Elan) baseline over
// the low-latency (SPARC) implementation — the paper's central trade.
func AblationMatchLocation(o Opts) (Figure, error) {
	o = o.Norm()
	var s Series
	s.Name = "mpich - lowlat"
	for _, n := range []int{1, 64, 256, 1024, 4096} {
		m, err := MeikoPingPong("mpich", 0, n, o.Iters)
		if err != nil {
			return Figure{}, err
		}
		l, err := MeikoPingPong("lowlatency", 0, n, o.Iters)
		if err != nil {
			return Figure{}, err
		}
		s.Points = append(s.Points, Point{n, m - l})
	}
	return Figure{
		ID:     "Ablation D",
		Title:  "Latency penalty of Elan (background) matching vs SPARC matching",
		XLabel: "bytes",
		YLabel: "us RTT delta",
		Series: []Series{s},
	}, nil
}

// AblationNagle measures what the era's implementors learned the hard
// way: leaving Nagle + delayed acks enabled stalls one-way small-message
// streams on the ack timer, while TCP_NODELAY (the library default, as the
// paper's latencies presuppose) flows at wire speed. One-way burst of
// 100-byte eager messages over TCP/ATM; per-message latency.
func AblationNagle(o Opts) (Figure, error) {
	o = o.Norm()
	run := func(nagle bool) (float64, error) {
		w, err := registry.Build(registry.Spec{Platform: "cluster", Ranks: 2, TCPNagle: nagle})
		if err != nil {
			return 0, err
		}
		const msgs = 20
		rep, err := mpi.Launch(w, func(c *mpi.Comm) error {
			if c.Rank() == 0 {
				for i := 0; i < msgs; i++ {
					if err := c.Send(1, i, make([]byte, 100)); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < msgs; i++ {
				if _, err := c.Recv(0, i, make([]byte, 100)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		return float64(rep.MaxRankElapsed) / 1e3 / msgs, nil
	}
	nodelay, err := run(false)
	if err != nil {
		return Figure{}, err
	}
	nagle, err := run(true)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "Ablation F",
		Title:  "TCP_NODELAY vs Nagle+delayed-ack (one-way 100B eager stream)",
		XLabel: "variant (0=nodelay, 1=nagle)",
		YLabel: "us per message",
		Series: []Series{{Name: "per-message latency", Points: []Point{{0, nodelay}, {1, nagle}}}},
		Notes:  []string{"single-write framing keeps ping-pong safe; one-way streams still hit the ack timer"},
	}, nil
}

// AblationUNet realizes the paper's future-work pointer (related work:
// U-Net, Thekkath et al.): replace the kernel TCP path with user-level
// networking on the same ATM hardware and measure the 1-byte MPI round
// trip against the paper's transports.
func AblationUNet(o Opts) (Figure, error) {
	o = o.Norm()
	var s Series
	s.Name = "1B MPI RTT"
	kinds := []struct {
		x  int
		tr string
	}{{0, "unet"}, {1, "udp"}, {2, "tcp"}}
	for _, k := range kinds {
		us, err := ClusterPingPong(k.tr, "atm", 1, o.Iters)
		if err != nil {
			return Figure{}, err
		}
		s.Points = append(s.Points, Point{k.x, us})
	}
	return Figure{
		ID:     "Ablation G",
		Title:  "User-level networking (0=unet, 1=udp, 2=tcp; MPI over ATM)",
		XLabel: "transport",
		YLabel: "us RTT",
		Series: []Series{s},
		Notes:  []string{"kernel bypass removes the syscall/protocol/driver costs Table 1 charges"},
	}, nil
}

// AblationSlots sweeps the per-pair envelope slot count on the Meiko: the
// paper allocates exactly one (minimizing latency and receiver memory),
// which serializes back-to-back eager streams on the slot-free round trip;
// extra slots pipeline them. Per-message time of a one-way 100-byte burst.
func AblationSlots(o Opts) (Figure, error) {
	o = o.Norm()
	var s Series
	s.Name = "100B one-way stream"
	for _, slots := range []int{1, 2, 4, 8} {
		w, err := registry.Build(registry.Spec{Platform: "meiko", Ranks: 2, EnvelopeSlots: slots})
		if err != nil {
			return Figure{}, err
		}
		const msgs = 20
		rep, err := mpi.Launch(w, func(c *mpi.Comm) error {
			if c.Rank() == 0 {
				for i := 0; i < msgs; i++ {
					if err := c.Send(1, i, make([]byte, 100)); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < msgs; i++ {
				if _, err := c.Recv(0, i, make([]byte, 100)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Figure{}, err
		}
		s.Points = append(s.Points, Point{slots, float64(rep.MaxRankElapsed) / 1e3 / msgs})
	}
	return Figure{
		ID:     "Ablation H",
		Title:  "Envelope slots per pair (Meiko, one-way eager stream)",
		XLabel: "slots",
		YLabel: "us per message",
		Series: []Series{s},
		Notes: []string{
			"negative result: receiver-side processing dominates the slot-free round trip,",
			"so one slot per pair (the paper's choice) costs streams nothing",
		},
	}, nil
}

// AblationCredits sweeps the cluster's per-pair reservation: small
// reservations stall optimistic senders on credit round trips.
func AblationCredits(o Opts) (Figure, error) {
	o = o.Norm()
	var s Series
	s.Name = "1KB one-way stream"
	for _, kb := range []int{2, 4, 16, 64} {
		w, err := registry.Build(registry.Spec{Platform: "cluster", Ranks: 2, Credit: kb * 1024})
		if err != nil {
			return Figure{}, err
		}
		const msgs = 16
		rep, err := mpi.Launch(w, func(c *mpi.Comm) error {
			if c.Rank() == 0 {
				for i := 0; i < msgs; i++ {
					if err := c.Send(1, i, make([]byte, 1024)); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < msgs; i++ {
				if _, err := c.Recv(0, i, make([]byte, 1024)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Figure{}, err
		}
		s.Points = append(s.Points, Point{kb, float64(rep.MaxRankElapsed) / 1e3 / msgs})
	}
	return Figure{
		ID:     "Ablation I",
		Title:  "Per-pair credit reservation (cluster, one-way eager stream)",
		XLabel: "KB reserved",
		YLabel: "us per message",
		Series: []Series{s},
		Notes:  []string{"the paper's receiver-reserved memory: big enough and senders never stall"},
	}, nil
}

// AblationNonblockingOverlap quantifies what Elan background sending buys:
// total time for send+compute with blocking vs nonblocking sends on the
// Meiko (rendezvous-sized payload).
func AblationNonblockingOverlap(o Opts) (Figure, error) {
	o = o.Norm()
	const size = 200_000
	compute := []int{0, 2, 5, 10} // ms of overlap-able work
	run := func(nonblocking bool, computeMS int) (float64, error) {
		rep, err := registry.Run(registry.Spec{Platform: "meiko", Ranks: 2}, func(c *mpi.Comm) error {
			if c.Rank() == 0 {
				data := make([]byte, size)
				if nonblocking {
					req, err := c.Isend(1, 0, data)
					if err != nil {
						return err
					}
					c.Compute(time.Duration(computeMS) * time.Millisecond)
					_, err = req.Wait()
					return err
				}
				if err := c.Send(1, 0, data); err != nil {
					return err
				}
				c.Compute(time.Duration(computeMS) * time.Millisecond)
				return nil
			}
			_, err := c.Recv(0, 0, make([]byte, size))
			return err
		})
		if err != nil {
			return 0, err
		}
		return float64(rep.MaxRankElapsed) / 1e3, nil
	}
	var blk, nb Series
	blk.Name = "blocking"
	nb.Name = "nonblocking"
	for _, ms := range compute {
		b, err := run(false, ms)
		if err != nil {
			return Figure{}, err
		}
		n, err := run(true, ms)
		if err != nil {
			return Figure{}, err
		}
		blk.Points = append(blk.Points, Point{ms, b})
		nb.Points = append(nb.Points, Point{ms, n})
	}
	return Figure{
		ID:     "Ablation E",
		Title:  "Overlap from nonblocking sends (Meiko, 200 KB payload)",
		XLabel: "compute ms",
		YLabel: "us total",
		Series: []Series{blk, nb},
	}, nil
}
