package bench

import (
	"fmt"
	"strings"

	"repro/internal/atm"
)

// Anchor is one calibration target from the paper, with the measured value.
type Anchor struct {
	Name      string
	Unit      string
	Paper     float64
	Measured  float64
	Tolerance float64 // acceptable relative error
}

// Within reports whether the measurement sits inside the tolerance band.
func (a Anchor) Within() bool {
	if a.Paper == 0 {
		return false
	}
	rel := (a.Measured - a.Paper) / a.Paper
	if rel < 0 {
		rel = -rel
	}
	return rel <= a.Tolerance
}

// Anchors measures every calibration anchor of DESIGN.md §6 and returns
// the paper-vs-measured table — the single source of truth behind the
// calibration tests.
func Anchors(o Opts) ([]Anchor, error) {
	o = o.Norm()
	iters := o.Iters * 2

	tport := TportPingPong(1, iters)
	lowlat, err := MeikoPingPong("lowlatency", 0, 1, iters)
	if err != nil {
		return nil, err
	}
	mpich, err := MeikoPingPong("mpich", 0, 1, iters)
	if err != nil {
		return nil, err
	}
	cross, err := Figure1Crossover()
	if err != nil {
		return nil, err
	}
	bw, err := MeikoBandwidth("lowlatency", 1<<20, 3)
	if err != nil {
		return nil, err
	}
	tcpEth := RawTCPPingPong(atm.OverEthernet, 1, iters)
	tcpATM := RawTCPPingPong(atm.OverATM, 1, iters)

	tab, err := Table1(o)
	if err != nil {
		return nil, err
	}
	readTypeEth := tab.Rows[2].Eth
	readTypeATM := tab.Rows[2].ATM
	match := tab.Rows[4].Eth

	return []Anchor{
		{"tport 1B round trip", "us", 52, tport, 0.06},
		{"low-latency MPI 1B round trip", "us", 104, lowlat, 0.05},
		{"MPICH 1B round trip", "us", 210, mpich, 0.06},
		{"eager/rendezvous crossover", "bytes", 180, float64(cross), 0.20},
		{"Meiko DMA bandwidth", "MB/s", 39, bw, 0.05},
		{"tcp/eth 1B round trip", "us", 925, tcpEth, 0.05},
		{"tcp/atm 1B round trip", "us", 1065, tcpATM, 0.05},
		{"read for msg type (eth)", "us", 65, readTypeEth, 0.15},
		{"read for msg type (atm)", "us", 85, readTypeATM, 0.15},
		{"matching overhead", "us", 35, match, 0.15},
	}, nil
}

// FormatAnchors renders the anchor table.
func FormatAnchors(as []Anchor) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Calibration anchors (paper vs measured):\n")
	fmt.Fprintf(&b, "%-34s %10s %10s %7s  %s\n", "anchor", "paper", "measured", "err", "ok")
	for _, a := range as {
		rel := (a.Measured - a.Paper) / a.Paper * 100
		ok := "PASS"
		if !a.Within() {
			ok = "OUT OF BAND"
		}
		fmt.Fprintf(&b, "%-34s %8.1f%s %8.1f%s %+6.1f%%  %s\n", a.Name, a.Paper, a.Unit, a.Measured, a.Unit, rel, ok)
	}
	return b.String()
}
