package bench

import (
	"time"

	"repro/internal/apps"
	"repro/mpi"
	"repro/platform/registry"
)

// LinsolveMeiko runs the Figure 7 solver and reports the root's elapsed
// seconds. impl is a registry implementation name ("lowlatency" | "mpich").
func LinsolveMeiko(impl string, procs, n int) (float64, error) {
	var el time.Duration
	_, err := registry.Run(registry.Spec{Platform: "meiko", Impl: impl, Ranks: procs}, func(c *mpi.Comm) error {
		res, err := apps.Linsolve(c, apps.LinsolveConfig{N: n})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			el = res.Elapsed
		}
		return nil
	})
	return el.Seconds(), err
}

// Figure7 regenerates "Meiko Linear Equation Solver": time vs processes
// for the MPICH and low-latency implementations.
func Figure7(o Opts) (Figure, error) {
	o = o.Norm()
	procs := []int{1, 2, 4, 8}
	n := 64
	if o.Full {
		procs = []int{1, 2, 4, 8, 16, 32}
		n = 128
	}
	var mpich, lowlat Series
	mpich.Name = "mpich"
	lowlat.Name = "low latency"
	for _, p := range procs {
		m, err := LinsolveMeiko("mpich", p, n)
		if err != nil {
			return Figure{}, err
		}
		l, err := LinsolveMeiko("lowlatency", p, n)
		if err != nil {
			return Figure{}, err
		}
		mpich.Points = append(mpich.Points, Point{p, m})
		lowlat.Points = append(lowlat.Points, Point{p, l})
	}
	return Figure{
		ID:     "Figure 7",
		Title:  "Meiko Linear Equation Solver",
		XLabel: "# processes",
		YLabel: "s",
		Series: []Series{mpich, lowlat},
		Notes:  []string{"hardware broadcast vs MPICH's point-to-point broadcast"},
	}, nil
}

// ParticlesMeiko runs the Figure 8 ring and reports the slowest rank's
// elapsed microseconds.
func ParticlesMeiko(impl string, procs, n int) (float64, error) {
	rep, err := registry.Run(registry.Spec{Platform: "meiko", Impl: impl, Ranks: procs}, func(c *mpi.Comm) error {
		_, err := apps.Particles(c, apps.ParticlesConfig{N: n, Seed: 1})
		return err
	})
	if err != nil {
		return 0, err
	}
	return float64(rep.MaxRankElapsed) / 1e3, nil
}

// Figure8 regenerates "Meiko Particle Pairwise Interactions": 24 particles
// on 1-8 processes.
func Figure8(o Opts) (Figure, error) {
	o = o.Norm()
	procs := []int{1, 2, 4, 8}
	if o.Full {
		procs = []int{1, 2, 3, 4, 6, 8}
	}
	var mpich, lowlat Series
	mpich.Name = "mpich"
	lowlat.Name = "low latency"
	for _, p := range procs {
		m, err := ParticlesMeiko("mpich", p, 24)
		if err != nil {
			return Figure{}, err
		}
		l, err := ParticlesMeiko("lowlatency", p, 24)
		if err != nil {
			return Figure{}, err
		}
		mpich.Points = append(mpich.Points, Point{p, m})
		lowlat.Points = append(lowlat.Points, Point{p, l})
	}
	return Figure{
		ID:     "Figure 8",
		Title:  "Meiko Particle Pairwise Interactions (24 particles)",
		XLabel: "# processors",
		YLabel: "us",
		Series: []Series{mpich, lowlat},
	}, nil
}

// ParticlesCluster runs the Figure 9 ring over TCP and reports the slowest
// rank's elapsed microseconds.
func ParticlesCluster(net string, procs, n int) (float64, error) {
	rep, err := registry.Run(registry.Spec{Platform: "cluster", Network: net, Ranks: procs}, func(c *mpi.Comm) error {
		_, err := apps.Particles(c, apps.ParticlesConfig{N: n, Seed: 2, SecPerFlop: apps.SGISecPerFlop})
		return err
	})
	if err != nil {
		return 0, err
	}
	return float64(rep.MaxRankElapsed) / 1e3, nil
}

// Figure9 regenerates "TCP Particle Pairwise Interactions": 128 particles,
// Ethernet vs ATM.
func Figure9(o Opts) (Figure, error) {
	o = o.Norm()
	procs := []int{2, 4, 8}
	var eth, am Series
	eth.Name = "Ethernet"
	am.Name = "ATM"
	for _, p := range procs {
		e, err := ParticlesCluster("eth", p, 128)
		if err != nil {
			return Figure{}, err
		}
		a, err := ParticlesCluster("atm", p, 128)
		if err != nil {
			return Figure{}, err
		}
		eth.Points = append(eth.Points, Point{p, e})
		am.Points = append(am.Points, Point{p, a})
	}
	return Figure{
		ID:     "Figure 9",
		Title:  "TCP Particle Pairwise Interactions (128 particles)",
		XLabel: "# processors",
		YLabel: "us",
		Series: []Series{eth, am},
		Notes:  []string{"paper: ATM wins — no contention and larger messages exploit its bandwidth"},
	}, nil
}

// MatMulMeiko regenerates the matrix-multiply result mentioned in §6.1
// ("performance results are similar to that of the linear equation
// solver").
func MatMulMeiko(o Opts) (Figure, error) {
	o = o.Norm()
	procs := []int{1, 2, 4, 8}
	n := 48
	if o.Full {
		procs = []int{1, 2, 4, 8, 16}
		n = 96
	}
	var mpich, lowlat Series
	mpich.Name = "mpich"
	lowlat.Name = "low latency"
	run := func(impl string, p int) (float64, error) {
		var el time.Duration
		_, err := registry.Run(registry.Spec{Platform: "meiko", Impl: impl, Ranks: p}, func(c *mpi.Comm) error {
			res, err := apps.MatMul(c, apps.MatMulConfig{N: n})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				el = res.Elapsed
			}
			return nil
		})
		return el.Seconds(), err
	}
	for _, p := range procs {
		m, err := run("mpich", p)
		if err != nil {
			return Figure{}, err
		}
		l, err := run("lowlatency", p)
		if err != nil {
			return Figure{}, err
		}
		mpich.Points = append(mpich.Points, Point{p, m})
		lowlat.Points = append(lowlat.Points, Point{p, l})
	}
	return Figure{
		ID:     "MatMul (§6.1)",
		Title:  "Meiko Matrix Multiply",
		XLabel: "# processes",
		YLabel: "s",
		Series: []Series{mpich, lowlat},
	}, nil
}
