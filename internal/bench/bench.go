// Package bench regenerates every table and figure of the paper's
// evaluation: the Meiko transfer-mechanism and latency/bandwidth plots
// (Figures 1-3), the cluster transport comparisons (Figures 4-6, Table 1),
// and the application results (Figures 7-9), plus ablations over the
// design choices DESIGN.md calls out. cmd/repro and the root bench_test.go
// both drive this package.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Opts tunes experiment effort.
type Opts struct {
	// Iters is the per-point repetition count (virtual time is
	// deterministic, so iterations only smooth pipeline warmup).
	Iters int
	// Full widens sweeps to the paper's complete ranges.
	Full bool
}

// Norm fills defaults.
func (o Opts) Norm() Opts {
	if o.Iters == 0 {
		o.Iters = 5
	}
	return o
}

// Point is one measurement: X is the swept parameter (bytes, processes),
// Y the measured value (µs, MB/s, seconds).
type Point struct {
	X int
	Y float64
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a regenerated plot: the same series the paper draws.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// String renders the figure as an aligned text table, series as columns.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	// Collect the union of X values.
	xs := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	var xsort []int
	for x := range xs {
		xsort = append(xsort, x)
	}
	sort.Ints(xsort)

	fmt.Fprintf(&b, "%12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %18s", s.Name)
	}
	fmt.Fprintf(&b, "   (%s)\n", f.YLabel)
	for _, x := range xsort {
		fmt.Fprintf(&b, "%12d", x)
		for _, s := range f.Series {
			y, ok := lookup(s, x)
			if !ok {
				fmt.Fprintf(&b, " %18s", "-")
				continue
			}
			fmt.Fprintf(&b, " %18.2f", y)
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func lookup(s Series, x int) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// sizes helpers shared by the figures.
func latencySizes(full bool) []int {
	if full {
		return []int{1, 4, 16, 32, 64, 96, 128, 160, 180, 200, 256, 384, 512, 1024, 2048, 4096}
	}
	return []int{1, 64, 180, 512, 2048}
}

func bandwidthSizes(full bool) []int {
	if full {
		return []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	}
	return []int{16 << 10, 256 << 10}
}
