package bench

import (
	"strings"
	"testing"
)

var quick = Opts{Iters: 3}

func checkFigure(t *testing.T, f Figure, err error, wantSeries int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", f.ID, len(f.Series), wantSeries)
	}
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			t.Fatalf("%s/%s: no points", f.ID, s.Name)
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("%s/%s: non-positive value at %d", f.ID, s.Name, p.X)
			}
		}
	}
	if !strings.Contains(f.String(), f.ID) {
		t.Fatalf("%s: String() missing ID", f.ID)
	}
}

func TestFigure1(t *testing.T) {
	f, err := Figure1(quick)
	checkFigure(t, f, err, 2)
	// Eager wins below the crossover; rendezvous above.
	eager, rndv := f.Series[0], f.Series[1]
	if y1, _ := lookup(eager, 64); true {
		if y2, _ := lookup(rndv, 64); y1 >= y2 {
			t.Fatalf("64B: eager %f >= rndv %f", y1, y2)
		}
	}
	if y1, _ := lookup(eager, 512); true {
		if y2, _ := lookup(rndv, 512); y1 <= y2 {
			t.Fatalf("512B: eager %f <= rndv %f", y1, y2)
		}
	}
}

func TestFigure1CrossoverNear180(t *testing.T) {
	c, err := Figure1Crossover()
	if err != nil {
		t.Fatal(err)
	}
	if c < 140 || c > 230 {
		t.Fatalf("crossover = %d, want near 180", c)
	}
}

func TestFigure2(t *testing.T) {
	f, err := Figure2(quick)
	checkFigure(t, f, err, 3)
	// Ordering at every size: tport < lowlat < mpich.
	for _, p := range f.Series[2].Points {
		l, _ := lookup(f.Series[1], p.X)
		m, _ := lookup(f.Series[0], p.X)
		if !(p.Y < l && l < m) {
			t.Fatalf("size %d: tport %f, lowlat %f, mpich %f out of order", p.X, p.Y, l, m)
		}
	}
}

func TestFigure3(t *testing.T) {
	f, err := Figure3(quick)
	checkFigure(t, f, err, 3)
	// Largest-size low-latency bandwidth near the DMA limit.
	pts := f.Series[1].Points
	if last := pts[len(pts)-1]; last.Y < 30 || last.Y > 41 {
		t.Fatalf("lowlat bandwidth = %f MB/s", last.Y)
	}
}

func TestFigure4(t *testing.T) {
	f, err := Figure4(quick)
	checkFigure(t, f, err, 3)
	// All three transports within ~40% of each other at 512B.
	var ys []float64
	for _, s := range f.Series {
		y, ok := lookup(s, 512)
		if !ok {
			t.Fatal("missing 512B point")
		}
		ys = append(ys, y)
	}
	for _, y := range ys {
		if y < ys[0]*0.6 || y > ys[0]*1.4 {
			t.Fatalf("Figure 4 transports diverge: %v", ys)
		}
	}
}

func TestFigure5(t *testing.T) {
	f, err := Figure5(quick)
	checkFigure(t, f, err, 4)
	// MPI above raw on both media at 1 byte.
	ma, _ := lookup(f.Series[0], 1)
	ra, _ := lookup(f.Series[2], 1)
	me, _ := lookup(f.Series[1], 1)
	re, _ := lookup(f.Series[3], 1)
	if ma <= ra || me <= re {
		t.Fatalf("MPI not above raw: atm %f vs %f, eth %f vs %f", ma, ra, me, re)
	}
}

func TestFigure6(t *testing.T) {
	f, err := Figure6(quick)
	checkFigure(t, f, err, 4)
}

func TestTable1(t *testing.T) {
	tab, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	get := func(name string) Table1Row {
		for _, r := range tab.Rows {
			if strings.Contains(r.Name, name) {
				return r
			}
		}
		t.Fatalf("row %q missing", name)
		return Table1Row{}
	}
	rtt := get("round-trip")
	if rtt.Eth < 880 || rtt.Eth > 970 || rtt.ATM < 1010 || rtt.ATM > 1120 {
		t.Fatalf("base RTT row off: %+v", rtt)
	}
	rt := get("msg type")
	if rt.Eth < 50 || rt.Eth > 90 || rt.ATM < 65 || rt.ATM > 115 {
		t.Fatalf("read-type row off: %+v", rt)
	}
	m := get("matching")
	if m.Eth < 30 || m.Eth > 80 {
		t.Fatalf("matching row off: %+v", m)
	}
	if !strings.Contains(tab.String(), "Table 1") {
		t.Fatal("table renders without title")
	}
}

func TestFigure7(t *testing.T) {
	f, err := Figure7(quick)
	checkFigure(t, f, err, 2)
	// lowlat <= mpich at each P, and both speed up from P=1 to P=8.
	for _, p := range f.Series[0].Points {
		l, _ := lookup(f.Series[1], p.X)
		if l > p.Y {
			t.Fatalf("P=%d: lowlat %f > mpich %f", p.X, l, p.Y)
		}
	}
	first := f.Series[1].Points[0].Y
	last := f.Series[1].Points[len(f.Series[1].Points)-1].Y
	if last >= first {
		t.Fatalf("no speedup: %f -> %f", first, last)
	}
}

func TestFigure8(t *testing.T) {
	f, err := Figure8(quick)
	checkFigure(t, f, err, 2)
}

func TestFigure9(t *testing.T) {
	f, err := Figure9(quick)
	checkFigure(t, f, err, 2)
	for _, p := range f.Series[0].Points { // Ethernet series
		a, _ := lookup(f.Series[1], p.X)
		if a >= p.Y {
			t.Fatalf("P=%d: atm %f >= eth %f", p.X, a, p.Y)
		}
	}
}

func TestMatMul(t *testing.T) {
	f, err := MatMulMeiko(quick)
	checkFigure(t, f, err, 2)
}

func TestAblationThreshold(t *testing.T) {
	f, err := AblationThreshold(quick)
	checkFigure(t, f, err, 1)
	// 256B messages: rendezvous (threshold < 256) beats forced eager
	// (threshold >= 256).
	lo, _ := lookup(f.Series[0], 180)
	hi, _ := lookup(f.Series[0], 1024)
	if lo >= hi {
		t.Fatalf("threshold sweep inverted: rndv %f >= eager %f", lo, hi)
	}
}

func TestAblationBcast(t *testing.T) {
	f, err := AblationBcast(quick)
	checkFigure(t, f, err, 3)
	// Hardware fastest at 16 ranks; binomial beats linear.
	hw, _ := lookup(f.Series[0], 16)
	bin, _ := lookup(f.Series[1], 16)
	lin, _ := lookup(f.Series[2], 16)
	if !(hw < bin && bin < lin) {
		t.Fatalf("bcast ordering: hw %f, binomial %f, linear %f", hw, bin, lin)
	}
}

func TestAblationUDPLoss(t *testing.T) {
	f, err := AblationUDPLoss(quick)
	checkFigure(t, f, err, 1)
	clean, _ := lookup(f.Series[0], 0)
	lossy, _ := lookup(f.Series[0], 20)
	if lossy <= clean {
		t.Fatalf("loss did not raise RTT: %f vs %f", clean, lossy)
	}
}

func TestAblationMatchLocation(t *testing.T) {
	f, err := AblationMatchLocation(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f.Series[0].Points {
		if p.Y <= 0 {
			t.Fatalf("mpich faster than lowlat at %d bytes (%f)", p.X, p.Y)
		}
	}
}

func TestAblationNonblockingOverlap(t *testing.T) {
	f, err := AblationNonblockingOverlap(quick)
	checkFigure(t, f, err, 2)
	// With 5ms of compute, nonblocking must be clearly faster.
	b, _ := lookup(f.Series[0], 5)
	n, _ := lookup(f.Series[1], 5)
	if n >= b {
		t.Fatalf("no overlap benefit: nonblocking %f >= blocking %f", n, b)
	}
}

func TestSVGRendering(t *testing.T) {
	f := Figure{
		ID: "Figure X", Title: "test & demo", XLabel: "bytes", YLabel: "us",
		Series: []Series{
			{Name: "a<b", Points: []Point{{1, 10}, {1024, 500}, {65536, 900}}},
			{Name: "c", Points: []Point{{1, 20}, {1024, 100}, {65536, 300}}},
		},
		Notes: []string{"note"},
	}
	svg := f.SVG()
	for _, want := range []string{"<svg", "polyline", "a&lt;b", "test &amp; demo", "</svg>", "64K"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Empty figure does not panic.
	if out := (Figure{}).SVG(); !strings.Contains(out, "<svg") {
		t.Fatal("empty figure svg")
	}
	// Linear axis for process counts.
	lin := Figure{Series: []Series{{Name: "s", Points: []Point{{1, 1}, {8, 2}}}}}
	if out := lin.SVG(); !strings.Contains(out, "<svg") {
		t.Fatal("linear figure svg")
	}
}

func TestAblationNagle(t *testing.T) {
	f, err := AblationNagle(quick)
	checkFigure(t, f, err, 1)
	nodelay, _ := lookup(f.Series[0], 0)
	nagle, _ := lookup(f.Series[0], 1)
	if nagle < 3*nodelay {
		t.Fatalf("nagle per-message %f us not clearly above nodelay %f us", nagle, nodelay)
	}
}

func TestAblationBcastLarge(t *testing.T) {
	f, err := AblationBcastLarge(quick)
	checkFigure(t, f, err, 3)
	hw, _ := lookup(f.Series[0], 16)
	bin, _ := lookup(f.Series[1], 16)
	pipe, _ := lookup(f.Series[2], 16)
	// At bulk sizes the pipelined chain wins: its rendezvous payloads land
	// directly in user buffers, while the hardware broadcast pays a
	// slot-to-user copy and the binomial tree repeats full payload times.
	if !(pipe < bin && pipe < hw) {
		t.Fatalf("large bcast ordering: hw %f, pipelined %f, binomial %f", hw, pipe, bin)
	}
}

func TestAblationUNet(t *testing.T) {
	f, err := AblationUNet(quick)
	checkFigure(t, f, err, 1)
	unet, _ := lookup(f.Series[0], 0)
	tcp, _ := lookup(f.Series[0], 2)
	if unet > tcp/5 {
		t.Fatalf("unet MPI RTT %f us not dramatically under tcp %f us", unet, tcp)
	}
	if unet < 50 || unet > 400 {
		t.Fatalf("unet MPI RTT %f us outside plausible range", unet)
	}
}

func TestAblationSlots(t *testing.T) {
	f, err := AblationSlots(quick)
	checkFigure(t, f, err, 1)
	one, _ := lookup(f.Series[0], 1)
	eight, _ := lookup(f.Series[0], 8)
	// Negative result, and the point of the ablation: receiver-side
	// processing dominates the slot-free round trip, so extra slots buy
	// (almost) nothing — the quantitative case for the paper's single
	// preallocated envelope per pair.
	if eight > one || one > eight*1.10 {
		t.Fatalf("slots sweep: 1 slot %f vs 8 slots %f us/msg; expected within 10%%", one, eight)
	}
}

func TestAblationCredits(t *testing.T) {
	f, err := AblationCredits(quick)
	checkFigure(t, f, err, 1)
	small, _ := lookup(f.Series[0], 2)
	big, _ := lookup(f.Series[0], 64)
	if big >= small {
		t.Fatalf("64KB reservation (%f us/msg) not faster than 2KB (%f)", big, small)
	}
}

func TestAnchorsAllWithinBand(t *testing.T) {
	as, err := Anchors(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 10 {
		t.Fatalf("anchors = %d", len(as))
	}
	for _, a := range as {
		if !a.Within() {
			t.Errorf("%s: paper %.1f%s, measured %.1f%s (out of band)", a.Name, a.Paper, a.Unit, a.Measured, a.Unit)
		}
	}
	out := FormatAnchors(as)
	if !strings.Contains(out, "PASS") || strings.Contains(out, "OUT OF BAND") {
		t.Fatalf("render:\n%s", out)
	}
}
