package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/atm"
	"repro/mpi"
	"repro/platform/registry"
)

// The -chaos sweep: kill schedules × injected loss over every
// kill-capable backend and lane count. Each point runs the ULFM recovery
// loop (apps.FTShrink) under a pinned fault schedule and records whether
// the survivors completed with the right answer, how long detection took
// (virtual time from the kill to the first survivor observing it), and
// how long the revoke/agree/shrink rebuild took. Every number is
// simulated time, so two runs of the sweep must produce byte-identical
// JSON — CI runs it twice and compares.

// ChaosPoint is one (backend, lanes, kill schedule, loss) cell.
type ChaosPoint struct {
	Backend   string  `json:"backend"`
	Lanes     int     `json:"lanes"`
	Kills     string  `json:"kills,omitempty"`
	Loss      float64 `json:"loss,omitempty"`
	Failures  int     `json:"failures"`   // ranks the schedule kills
	Survived  bool    `json:"survived"`   // all survivors finished with the survivor sum
	Shrinks   int     `json:"shrinks"`    // most recovery rounds any survivor ran
	DetectUS  float64 `json:"detect_us"`  // worst survivor: kill -> failure observed
	ShrinkUS  float64 `json:"shrink_us"`  // worst survivor: observed -> shrunken comm ready
	ElapsedUS float64 `json:"elapsed_us"` // worst survivor: entry -> final answer
}

// ChaosReport is the machine-readable record of one sweep
// (BENCH_chaos.json).
type ChaosReport struct {
	Ranks        int          `json:"ranks"`
	FaultSeed    int64        `json:"fault_seed"`
	Points       []ChaosPoint `json:"points"`
	SurvivalRate float64      `json:"survival_rate"` // over the kill-bearing points
	DetectP50US  float64      `json:"detect_p50_us"`
	DetectP99US  float64      `json:"detect_p99_us"`
	ShrinkP50US  float64      `json:"shrink_p50_us"`
	ShrinkP99US  float64      `json:"shrink_p99_us"`
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r ChaosReport) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// UnmarshalChaos parses a committed baseline.
func UnmarshalChaos(data []byte) (ChaosReport, error) {
	var r ChaosReport
	err := json.Unmarshal(data, &r)
	return r, err
}

const chaosRanks = 4

// chaosBackends are the kill-capable backends (every poll-model engine;
// the Meiko MPICH baseline rejects kill schedules by design).
var chaosBackends = []string{
	"mem", "meiko/lowlatency",
	"cluster/tcp", "cluster/udp", "cluster/unet", "cluster/shm",
}

// chaosSchedules pairs each swept kill schedule with the instants the
// deaths land (for detection-latency accounting). Kills land inside every
// rank's 100µs compute phase, so the collective is interrupted, not
// dodged. The multi-failure schedule is reported but not survival-gated:
// CheckChaos requires 100% survival for the single-failure points.
var chaosSchedules = []struct {
	Kills string
	At    []time.Duration
}{
	{"", nil},
	{"2@50us", []time.Duration{50 * time.Microsecond}},
	{"1@50us;3@80us", []time.Duration{50 * time.Microsecond, 80 * time.Microsecond}},
}

// chaosLossy are the transports whose wire the fault layer can drop
// datagrams on; each also runs its schedule sweep at 1% loss.
var chaosLossy = map[string]bool{"cluster/tcp": true, "cluster/udp": true, "cluster/unet": true}

// Chaos sweeps the recovery path over backends × lanes × kill schedules
// × loss.
func Chaos(o Opts) (ChaosReport, error) {
	rep := ChaosReport{Ranks: chaosRanks, FaultSeed: faultsSeed}
	var detects, shrinks []float64
	killPoints, survived := 0, 0
	for _, backend := range chaosBackends {
		for _, lanes := range []int{1, 2, 8} {
			losses := []float64{0}
			if chaosLossy[backend] {
				losses = append(losses, 0.01)
			}
			for _, loss := range losses {
				for _, sched := range chaosSchedules {
					pt, ds, ss, err := chaosRun(backend, lanes, loss, sched.Kills, sched.At)
					if err != nil {
						return rep, err
					}
					rep.Points = append(rep.Points, pt)
					detects = append(detects, ds...)
					shrinks = append(shrinks, ss...)
					if pt.Failures > 0 {
						killPoints++
						if pt.Survived {
							survived++
						}
					}
				}
			}
		}
	}
	if killPoints > 0 {
		rep.SurvivalRate = float64(survived) / float64(killPoints)
	}
	rep.DetectP50US, rep.DetectP99US = pctile(detects, 0.50), pctile(detects, 0.99)
	rep.ShrinkP50US, rep.ShrinkP99US = pctile(shrinks, 0.50), pctile(shrinks, 0.99)
	return rep, nil
}

// chaosRun executes one point and returns it plus the per-survivor
// detection and shrink latency samples.
func chaosRun(backend string, lanes int, loss float64, kills string, killAt []time.Duration) (ChaosPoint, []float64, []float64, error) {
	pt := ChaosPoint{Backend: backend, Lanes: lanes, Kills: kills, Loss: loss, Failures: len(killAt)}
	spec := registry.SpecFor(backend)
	spec.Ranks = chaosRanks
	spec.Kills = kills
	if lanes > 1 {
		spec.Lanes = lanes
	}
	if loss > 0 {
		spec.LossRate = loss
		spec.FaultSeed = faultsSeed
	}
	w, err := registry.Build(spec)
	if err != nil {
		return pt, nil, nil, fmt.Errorf("chaos %s lanes=%d: %v", backend, lanes, err)
	}
	var mu sync.Mutex
	results := make([]apps.FTShrinkResult, chaosRanks)
	_, lerr := mpi.Launch(w, func(c *mpi.Comm) error {
		res, err := apps.FTShrink(c, apps.FTShrinkConfig{Compute: 100 * time.Microsecond})
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return err
	})
	victim := make(map[int]bool, len(killAt))
	want := int64(0)
	if kills != "" {
		ks, err := atm.ParseKills(kills)
		if err != nil {
			return pt, nil, nil, err
		}
		for _, k := range ks {
			victim[k.Rank] = true
		}
	}
	for r := 0; r < chaosRanks; r++ {
		if !victim[r] {
			want += int64(r) + 1
		}
	}
	firstKill := time.Duration(0)
	for i, at := range killAt {
		if i == 0 || at < firstKill {
			firstKill = at
		}
	}
	pt.Survived = lerr == nil
	var detects, shrinks []float64
	for r, res := range results {
		if victim[r] {
			if !res.Died {
				pt.Survived = false
			}
			continue
		}
		if res.Died || res.Sum != want || (pt.Failures > 0 && !res.Shrunk) {
			pt.Survived = false
		}
		if res.Shrinks > pt.Shrinks {
			pt.Shrinks = res.Shrinks
		}
		if us := float64(res.Elapsed) / 1e3; us > pt.ElapsedUS {
			pt.ElapsedUS = us
		}
		if res.DetectedAt > 0 {
			d := float64(res.DetectedAt-firstKill) / 1e3
			detects = append(detects, d)
			if d > pt.DetectUS {
				pt.DetectUS = d
			}
		}
		if res.ShrunkAt > 0 {
			s := float64(res.ShrunkAt-res.DetectedAt) / 1e3
			shrinks = append(shrinks, s)
			if s > pt.ShrinkUS {
				pt.ShrinkUS = s
			}
		}
	}
	return pt, detects, shrinks, nil
}

// pctile is the nearest-rank percentile of xs (not mutated); 0 if empty.
func pctile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p*float64(len(s)-1) + 0.5)
	return s[i]
}

// FormatChaos renders the sweep as the text table the CLI prints.
func FormatChaos(r ChaosReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos sweep: kill schedules x loss over %d-rank worlds (fault seed %d)\n", r.Ranks, r.FaultSeed)
	fmt.Fprintf(&b, "survival %.0f%% over kill points; detect p50/p99 %.1f/%.1f us; shrink p50/p99 %.1f/%.1f us\n\n",
		r.SurvivalRate*100, r.DetectP50US, r.DetectP99US, r.ShrinkP50US, r.ShrinkP99US)
	fmt.Fprintf(&b, "%-18s %5s %6s %-16s %8s %7s %10s %10s %10s\n",
		"backend", "lanes", "loss", "kills", "survived", "shrinks", "detect us", "shrink us", "elapsed us")
	for _, p := range r.Points {
		kills := p.Kills
		if kills == "" {
			kills = "-"
		}
		fmt.Fprintf(&b, "%-18s %5d %5.0f%% %-16s %8v %7d %10.1f %10.1f %10.1f\n",
			p.Backend, p.Lanes, p.Loss*100, kills, p.Survived, p.Shrinks, p.DetectUS, p.ShrinkUS, p.ElapsedUS)
	}
	return b.String()
}

// CheckChaos gates the sweep. Static floors, baseline or not: every
// fault-free point and every single-failure point must survive (the
// multi-failure points are reported, not gated). Against a committed
// baseline: survival must not drop anywhere, no point may disappear, and
// detection/shrink latency may not regress more than tol on any point
// that both runs survived.
func CheckChaos(r ChaosReport, base *ChaosReport, tol float64) []string {
	var fails []string
	for _, p := range r.Points {
		if p.Failures <= 1 && !p.Survived {
			fails = append(fails, fmt.Sprintf("%s lanes=%d loss=%g kills=%q: world did not survive a %d-failure schedule",
				p.Backend, p.Lanes, p.Loss, p.Kills, p.Failures))
		}
	}
	if base == nil {
		return fails
	}
	key := func(p ChaosPoint) string {
		return fmt.Sprintf("%s|%d|%g|%s", p.Backend, p.Lanes, p.Loss, p.Kills)
	}
	cur := make(map[string]ChaosPoint, len(r.Points))
	for _, p := range r.Points {
		cur[key(p)] = p
	}
	for _, bp := range base.Points {
		p, ok := cur[key(bp)]
		if !ok {
			fails = append(fails, fmt.Sprintf("baseline point %s dropped from the sweep", key(bp)))
			continue
		}
		if bp.Survived && !p.Survived {
			fails = append(fails, fmt.Sprintf("%s: survived in baseline, not now", key(bp)))
		}
		if bp.Survived && p.Survived {
			if p.DetectUS > bp.DetectUS*(1+tol) {
				fails = append(fails, fmt.Sprintf("%s: detection %.1fus vs baseline %.1fus", key(bp), p.DetectUS, bp.DetectUS))
			}
			if p.ShrinkUS > bp.ShrinkUS*(1+tol) {
				fails = append(fails, fmt.Sprintf("%s: shrink %.1fus vs baseline %.1fus", key(bp), p.ShrinkUS, bp.ShrinkUS))
			}
		}
	}
	return fails
}
