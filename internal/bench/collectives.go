package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/coll"
	"repro/mpi"
	"repro/platform/registry"
)

// The collective-algorithm sweep (cmd/repro -collectives): measure every
// registered algorithm of every collective across message sizes on each
// backend, and derive the empirical crossover points — the measured
// counterpart of the selector's thresholds in internal/coll.

// CollectivesReport is the machine-readable record cmd/repro writes as
// BENCH_collectives.json.
type CollectivesReport struct {
	Ranks    int           `json:"ranks"`
	Iters    int           `json:"iters"`
	Backends []CollBackend `json:"backends"`
}

// CollBackend holds one backend's sweep.
type CollBackend struct {
	Backend string   `json:"backend"`
	Ops     []CollOp `json:"ops"`
}

// CollOp holds one collective's per-algorithm series (points are
// [bytes, µs] pairs) and the crossovers derived from them.
type CollOp struct {
	Op         string          `json:"op"`
	Series     []SeriesJSON    `json:"series"`
	Crossovers []CollCrossover `json:"crossovers,omitempty"`
	Skipped    []string        `json:"skipped,omitempty"`
}

// CollCrossover records that the fastest algorithm changes at Bytes:
// below it From wins, from Bytes upward To does.
type CollCrossover struct {
	Bytes int    `json:"bytes"`
	From  string `json:"from"`
	To    string `json:"to"`
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r CollectivesReport) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// collOps are the swept collectives; barrier has no payload, so it gets a
// single zero-size point.
var collOps = []string{"bcast", "barrier", "allreduce", "allgather", "alltoall"}

func collSizes(op string, full bool) []int {
	if op == "barrier" {
		return []int{0}
	}
	if full {
		return []int{64, 256, 1 << 10, 4 << 10, 8 << 10, 16 << 10, 64 << 10, 128 << 10, 256 << 10}
	}
	return []int{64, 1 << 10, 8 << 10, 64 << 10}
}

func collBackends(full bool) []string {
	if full {
		return registry.Names()
	}
	return []string{"meiko/lowlatency", "cluster/tcp"}
}

// collBody runs one collective iters times with an n-byte payload.
func collBody(c *mpi.Comm, op string, n, iters int) error {
	p := c.Size()
	switch op {
	case "bcast":
		buf := make([]byte, n)
		for i := 0; i < iters; i++ {
			if err := c.Bcast(0, buf); err != nil {
				return err
			}
		}
	case "barrier":
		for i := 0; i < iters; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
	case "allreduce":
		// Round to whole 8-byte lanes so the element-splitting algorithms
		// are reachable.
		if n = n - n%8; n == 0 {
			n = 8
		}
		send := make([]byte, n)
		recv := make([]byte, n)
		for i := 0; i < iters; i++ {
			if err := c.AllreduceElem(mpi.SumInt64, 8, send, recv); err != nil {
				return err
			}
		}
	case "allgather":
		send := make([]byte, n)
		recv := make([]byte, n*p)
		for i := 0; i < iters; i++ {
			if err := c.Allgather(send, recv); err != nil {
				return err
			}
		}
	case "alltoall":
		send := make([]byte, n*p)
		recv := make([]byte, n*p)
		for i := 0; i < iters; i++ {
			if err := c.Alltoall(send, recv); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("collectives sweep: unknown op %q", op)
	}
	return nil
}

// measureColl times one (backend, op, algorithm, size) cell in µs per call.
func measureColl(backend, op, alg string, ranks, n, iters int) (float64, error) {
	spec := registry.SpecFor(backend)
	spec.Ranks = ranks
	spec.Coll = op + "=" + alg
	w, err := registry.Build(spec)
	if err != nil {
		return 0, err
	}
	rep, err := mpi.Launch(w, func(c *mpi.Comm) error { return collBody(c, op, n, iters) })
	if err != nil {
		return 0, err
	}
	return float64(rep.MaxRankElapsed) / float64(iters) / 1e3, nil
}

// skippable reports whether the measurement error means "algorithm not
// applicable here" (hardware broadcast on a cluster, a power-of-two
// algorithm on an odd communicator) rather than a real failure.
func skippable(err error) bool {
	return err != nil && strings.Contains(err.Error(), "not applicable")
}

// Collectives sweeps every registered algorithm of every collective across
// sizes on each backend. The quick sweep covers the two headline backends;
// Full covers every registered backend and the paper-width size range.
func Collectives(o Opts) (CollectivesReport, error) {
	o = o.Norm()
	const ranks = 8
	rep := CollectivesReport{Ranks: ranks, Iters: o.Iters}
	for _, backend := range collBackends(o.Full) {
		cb := CollBackend{Backend: backend}
		for _, op := range collOps {
			co := CollOp{Op: op}
			for _, alg := range coll.Names(op) {
				s := SeriesJSON{Name: alg}
				skipped := false
				for _, n := range collSizes(op, o.Full) {
					us, err := measureColl(backend, op, alg, ranks, n, o.Iters)
					if skippable(err) {
						skipped = true
						continue
					}
					if err != nil {
						return rep, fmt.Errorf("%s %s/%s n=%d: %w", backend, op, alg, n, err)
					}
					s.Points = append(s.Points, [2]float64{float64(n), us})
				}
				if len(s.Points) > 0 {
					co.Series = append(co.Series, s)
				}
				if skipped {
					co.Skipped = append(co.Skipped, alg)
				}
			}
			co.Crossovers = deriveCrossovers(co.Series)
			cb.Ops = append(cb.Ops, co)
		}
		rep.Backends = append(rep.Backends, cb)
	}
	return rep, nil
}

// deriveCrossovers walks the sizes in order and records every change of
// the fastest algorithm.
func deriveCrossovers(series []SeriesJSON) []CollCrossover {
	best := map[float64]string{}
	var xs []float64
	for _, s := range series {
		for _, p := range s.Points {
			cur, ok := best[p[0]]
			if !ok {
				best[p[0]] = s.Name
				xs = append(xs, p[0])
				continue
			}
			if y, ok2 := seriesAt(series, cur, p[0]); ok2 && p[1] < y {
				best[p[0]] = s.Name
			}
		}
	}
	var out []CollCrossover
	for i := 1; i < len(xs); i++ {
		if from, to := best[xs[i-1]], best[xs[i]]; from != to {
			out = append(out, CollCrossover{Bytes: int(xs[i]), From: from, To: to})
		}
	}
	return out
}

func seriesAt(series []SeriesJSON, name string, x float64) (float64, bool) {
	for _, s := range series {
		if s.Name != name {
			continue
		}
		for _, p := range s.Points {
			if p[0] == x {
				return p[1], true
			}
		}
	}
	return 0, false
}

// FormatCollectives renders the sweep as the familiar aligned text tables,
// one figure per (backend, op), with the derived crossovers as notes.
func FormatCollectives(r CollectivesReport) string {
	var b strings.Builder
	for _, cb := range r.Backends {
		for _, co := range cb.Ops {
			f := Figure{
				ID:     "collectives " + cb.Backend,
				Title:  fmt.Sprintf("%s across algorithms (%d ranks)", co.Op, r.Ranks),
				XLabel: "bytes",
				YLabel: "us/call",
			}
			for _, s := range co.Series {
				ser := Series{Name: s.Name}
				for _, p := range s.Points {
					ser.Points = append(ser.Points, Point{X: int(p[0]), Y: p[1]})
				}
				f.Series = append(f.Series, ser)
			}
			for _, x := range co.Crossovers {
				f.Notes = append(f.Notes, fmt.Sprintf("crossover at %d bytes: %s -> %s", x.Bytes, x.From, x.To))
			}
			if len(co.Skipped) > 0 {
				f.Notes = append(f.Notes, "not applicable here: "+strings.Join(co.Skipped, ", "))
			}
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
	}
	return strings.TrimRight(b.String(), "\n") + "\n"
}
