package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/platform/registry"
)

// The -faults sweep: how each cluster transport degrades as the fault layer
// injects datagram loss. TCP segments and U-Net frames ride links whose
// loss recovery the model deliberately omits (TCP is treated as a reliable
// stream; the U-Net switch links are flow controlled), so their series are
// flat baselines; the reliable-UDP curve is the interesting one — its
// adaptive RTO and fast retransmit absorb the loss at a measurable latency
// and bandwidth cost.

// FaultsReport is the machine-readable record of one sweep
// (BENCH_faults.json).
type FaultsReport struct {
	Ranks     int             `json:"ranks"`
	Iters     int             `json:"iters"`
	FaultSeed int64           `json:"fault_seed"`
	LossRates []float64       `json:"loss_rates"`
	Backends  []FaultsBackend `json:"backends"`
}

// FaultsBackend holds one transport's series across the swept loss rates:
// 1-byte round-trip latency and 64 KB-chunk streaming bandwidth.
type FaultsBackend struct {
	Backend      string    `json:"backend"`
	LatencyUS    []float64 `json:"latency_us"`
	BandwidthMBs []float64 `json:"bandwidth_mbs"`
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r FaultsReport) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// faultsSeed pins the fault RNG so the sweep is reproducible run to run.
const faultsSeed = 42

func faultsRates(full bool) []float64 {
	if full {
		return []float64{0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1}
	}
	return []float64{0, 0.001, 0.01, 0.05}
}

// Faults sweeps 1-byte latency and bandwidth across injected loss rates on
// every cluster transport.
func Faults(o Opts) (FaultsReport, error) {
	rep := FaultsReport{
		Ranks:     2,
		Iters:     o.Iters,
		FaultSeed: faultsSeed,
		LossRates: faultsRates(o.Full),
	}
	const chunk = 64 * 1024
	// A handful of round trips would likely dodge a 0.1% loss rate
	// entirely; scale the iteration counts so retransmission effects are
	// actually sampled.
	pingIters := 40 * o.Iters
	bwIters := 4 * o.Iters
	for _, tr := range []string{"tcp", "udp", "unet"} {
		fb := FaultsBackend{Backend: "cluster/" + tr}
		for _, rate := range rep.LossRates {
			spec := registry.Spec{
				Platform:  "cluster",
				Transport: tr,
				Ranks:     2,
				LossRate:  rate,
				FaultSeed: faultsSeed,
			}
			w, err := registry.Build(spec)
			if err != nil {
				return rep, fmt.Errorf("%s at loss %g: %v", fb.Backend, rate, err)
			}
			lat, err := mpiPingPong(w, 1, pingIters)
			if err != nil {
				return rep, fmt.Errorf("%s latency at loss %g: %v", fb.Backend, rate, err)
			}
			w, err = registry.Build(spec)
			if err != nil {
				return rep, err
			}
			bw, err := mpiBandwidth(w, chunk, bwIters)
			if err != nil {
				return rep, fmt.Errorf("%s bandwidth at loss %g: %v", fb.Backend, rate, err)
			}
			fb.LatencyUS = append(fb.LatencyUS, lat)
			fb.BandwidthMBs = append(fb.BandwidthMBs, bw)
		}
		rep.Backends = append(rep.Backends, fb)
	}
	return rep, nil
}

// FormatFaults renders the sweep as the text tables the CLI prints.
func FormatFaults(r FaultsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault sweep: injected datagram loss (seed %d, %d iters)\n", r.FaultSeed, r.Iters)
	b.WriteString("TCP and U-Net frames are not droppable (loss recovery out of model): flat baselines.\n\n")
	row := func(name string, cells func(fb FaultsBackend) []float64, unit string) {
		fmt.Fprintf(&b, "%-24s", name)
		for _, rate := range r.LossRates {
			fmt.Fprintf(&b, "%11s", fmt.Sprintf("%g%%", rate*100))
		}
		b.WriteByte('\n')
		for _, fb := range r.Backends {
			fmt.Fprintf(&b, "%-24s", fb.Backend)
			for _, v := range cells(fb) {
				fmt.Fprintf(&b, "%11.1f", v)
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-24s(%s)\n\n", "", unit)
	}
	row("1B round trip / loss", func(fb FaultsBackend) []float64 { return fb.LatencyUS }, "us")
	row("64KB bandwidth / loss", func(fb FaultsBackend) []float64 { return fb.BandwidthMBs }, "MB/s")
	return b.String()
}
