package bench

import (
	"bytes"
	"testing"
)

// The sweep's whole value is its reproducibility: same binary, same seed,
// bit-identical BENCH_faults.json.
func TestFaultsSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full sweeps")
	}
	run := func() []byte {
		rep, err := Faults(Opts{Iters: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("fault sweep not reproducible:\n%s\nvs\n%s", a, b)
	}
}

// The reliable-UDP series must actually degrade with loss — if it stays
// flat the injector is not under the transport — while the zero-loss
// column matches a fault-free run (the injector's passthrough guarantee).
func TestFaultsSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	rep, err := Faults(Opts{Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	var udp *FaultsBackend
	for i := range rep.Backends {
		if rep.Backends[i].Backend == "cluster/udp" {
			udp = &rep.Backends[i]
		}
	}
	if udp == nil {
		t.Fatal("no cluster/udp series in the sweep")
	}
	last := len(udp.LatencyUS) - 1
	if udp.LatencyUS[last] <= udp.LatencyUS[0] {
		t.Fatalf("udp latency flat under loss: %.1f us at 0%% vs %.1f us at %g%%",
			udp.LatencyUS[0], udp.LatencyUS[last], rep.LossRates[last]*100)
	}
	if udp.BandwidthMBs[last] >= udp.BandwidthMBs[0] {
		t.Fatalf("udp bandwidth immune to loss: %.2f MB/s at 0%% vs %.2f at %g%%",
			udp.BandwidthMBs[0], udp.BandwidthMBs[last], rep.LossRates[last]*100)
	}
}
