package bench

import (
	"fmt"
	"strings"

	"repro/internal/atm"
	"repro/internal/core"
)

// Figure1 regenerates "Meiko transfer mechanisms": round-trip time of the
// buffering (eager) mechanism vs the no-buffering (rendezvous) mechanism,
// whose intersection the paper measures at 180 bytes.
func Figure1(o Opts) (Figure, error) {
	o = o.Norm()
	sizes := []int{1, 32, 64, 96, 128, 160, 180, 200, 232, 264, 320, 384, 448, 512}
	if !o.Full {
		sizes = []int{1, 64, 128, 180, 256, 384, 512}
	}
	var eager, rndv Series
	eager.Name = "Buffering"
	rndv.Name = "No buffering"
	for _, n := range sizes {
		e, err := MeikoPingPong("lowlatency", 1<<20, n, o.Iters) // force eager
		if err != nil {
			return Figure{}, err
		}
		r, err := MeikoPingPong("lowlatency", 1, n, o.Iters) // force rendezvous
		if err != nil {
			return Figure{}, err
		}
		eager.Points = append(eager.Points, Point{n, e})
		rndv.Points = append(rndv.Points, Point{n, r})
	}
	cross, err := Figure1Crossover()
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "Figure 1",
		Title:  "Meiko transfer mechanisms (round-trip time)",
		XLabel: "bytes",
		YLabel: "us",
		Series: []Series{eager, rndv},
		Notes:  []string{fmt.Sprintf("measured crossover ~%d bytes (paper: 180)", cross)},
	}, nil
}

// Figure1Crossover scans for the eager/rendezvous break-even size.
func Figure1Crossover() (int, error) {
	lo := 0
	for n := 16; n <= 512; n += 16 {
		e, err := MeikoPingPong("lowlatency", 1<<20, n, 3)
		if err != nil {
			return 0, err
		}
		r, err := MeikoPingPong("lowlatency", 1, n, 3)
		if err != nil {
			return 0, err
		}
		if e <= r {
			lo = n
		} else {
			return lo + 8, nil
		}
	}
	return lo, nil
}

// Figure2 regenerates "Meiko round-trip latency": MPICH, the low-latency
// implementation, and the raw tport widget.
func Figure2(o Opts) (Figure, error) {
	o = o.Norm()
	var mpich, lowlat, tport Series
	mpich.Name = "MPI(mpich)"
	lowlat.Name = "MPI(low latency)"
	tport.Name = "Meiko tport"
	for _, n := range latencySizes(o.Full) {
		m, err := MeikoPingPong("mpich", 0, n, o.Iters)
		if err != nil {
			return Figure{}, err
		}
		l, err := MeikoPingPong("lowlatency", 0, n, o.Iters)
		if err != nil {
			return Figure{}, err
		}
		mpich.Points = append(mpich.Points, Point{n, m})
		lowlat.Points = append(lowlat.Points, Point{n, l})
		tport.Points = append(tport.Points, Point{n, TportPingPong(n, o.Iters)})
	}
	return Figure{
		ID:     "Figure 2",
		Title:  "Meiko round-trip latency",
		XLabel: "bytes",
		YLabel: "us",
		Series: []Series{mpich, lowlat, tport},
		Notes:  []string{"paper anchors at 1 byte: tport 52, low latency 104, mpich 210 us"},
	}, nil
}

// Figure3 regenerates "Meiko bandwidth" for large transfers.
func Figure3(o Opts) (Figure, error) {
	o = o.Norm()
	var mpich, lowlat, tport Series
	mpich.Name = "MPI(mpich)"
	lowlat.Name = "MPI(low latency)"
	tport.Name = "Meiko tport"
	for _, n := range bandwidthSizes(o.Full) {
		m, err := MeikoBandwidth("mpich", n, 4)
		if err != nil {
			return Figure{}, err
		}
		l, err := MeikoBandwidth("lowlatency", n, 4)
		if err != nil {
			return Figure{}, err
		}
		mpich.Points = append(mpich.Points, Point{n, m})
		lowlat.Points = append(lowlat.Points, Point{n, l})
		tport.Points = append(tport.Points, Point{n, TportBandwidth(n, 4)})
	}
	return Figure{
		ID:     "Figure 3",
		Title:  "Meiko bandwidth",
		XLabel: "bytes",
		YLabel: "MB/s",
		Series: []Series{mpich, lowlat, tport},
		Notes:  []string{"paper: best DMA bandwidth of 39 MB/s nearly reached"},
	}, nil
}

// Figure4 regenerates "ATM round-trip latency": TCP vs UDP vs Fore AAL4.
func Figure4(o Opts) (Figure, error) {
	o = o.Norm()
	var tcp, udp, aal4 Series
	tcp.Name = "TCP"
	udp.Name = "UDP"
	aal4.Name = "Fore aal4"
	for _, n := range latencySizes(o.Full) {
		tcp.Points = append(tcp.Points, Point{n, RawTCPPingPong(atm.OverATM, n, o.Iters)})
		udp.Points = append(udp.Points, Point{n, RawUDPPingPong(atm.OverATM, n, o.Iters)})
		aal4.Points = append(aal4.Points, Point{n, RawAAL4PingPong(n, o.Iters)})
	}
	return Figure{
		ID:     "Figure 4",
		Title:  "ATM round-trip latency (raw transports)",
		XLabel: "bytes",
		YLabel: "us",
		Series: []Series{tcp, udp, aal4},
		Notes:  []string{"paper: except for small sizes the protocols are indistinguishable (STREAMS overhead)"},
	}, nil
}

// Figure5 regenerates "TCP round-trip latency": MPI over TCP vs raw TCP on
// both media.
func Figure5(o Opts) (Figure, error) {
	o = o.Norm()
	var mpiATM, mpiEth, tcpATM, tcpEth Series
	mpiATM.Name = "mpi/tcp/atm"
	mpiEth.Name = "mpi/tcp/eth"
	tcpATM.Name = "tcp/atm"
	tcpEth.Name = "tcp/eth"
	sizes := latencySizes(o.Full)
	sizes = append(sizes, 8192)
	for _, n := range sizes {
		a, err := ClusterPingPong("tcp", "atm", n, o.Iters)
		if err != nil {
			return Figure{}, err
		}
		e, err := ClusterPingPong("tcp", "eth", n, o.Iters)
		if err != nil {
			return Figure{}, err
		}
		mpiATM.Points = append(mpiATM.Points, Point{n, a})
		mpiEth.Points = append(mpiEth.Points, Point{n, e})
		tcpATM.Points = append(tcpATM.Points, Point{n, RawTCPPingPong(atm.OverATM, n, o.Iters)})
		tcpEth.Points = append(tcpEth.Points, Point{n, RawTCPPingPong(atm.OverEthernet, n, o.Iters)})
	}
	return Figure{
		ID:     "Figure 5",
		Title:  "TCP round-trip latency",
		XLabel: "bytes",
		YLabel: "us",
		Series: []Series{mpiATM, mpiEth, tcpATM, tcpEth},
		Notes:  []string{"paper anchors at 1 byte: tcp/eth 925, tcp/atm 1065 us; MPI adds envelope reads + matching"},
	}, nil
}

// Figure6 regenerates "TCP bandwidth".
func Figure6(o Opts) (Figure, error) {
	o = o.Norm()
	var mpiATM, mpiEth, tcpATM, tcpEth Series
	mpiATM.Name = "mpi/tcp/atm"
	mpiEth.Name = "mpi/tcp/eth"
	tcpATM.Name = "tcp/atm"
	tcpEth.Name = "tcp/eth"
	sizes := []int{16 << 10, 64 << 10}
	if o.Full {
		sizes = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 512 << 10}
	}
	for _, n := range sizes {
		a, err := ClusterBandwidth("tcp", "atm", n, 4)
		if err != nil {
			return Figure{}, err
		}
		e, err := ClusterBandwidth("tcp", "eth", n, 4)
		if err != nil {
			return Figure{}, err
		}
		mpiATM.Points = append(mpiATM.Points, Point{n, a})
		mpiEth.Points = append(mpiEth.Points, Point{n, e})
		tcpATM.Points = append(tcpATM.Points, Point{n, RawTCPBandwidth(atm.OverATM, 4*n)})
		tcpEth.Points = append(tcpEth.Points, Point{n, RawTCPBandwidth(atm.OverEthernet, 4*n)})
	}
	return Figure{
		ID:     "Figure 6",
		Title:  "TCP bandwidth",
		XLabel: "bytes",
		YLabel: "MB/s",
		Series: []Series{mpiATM, mpiEth, tcpATM, tcpEth},
	}, nil
}

// Table1Data is the regenerated Table 1: the MPI-over-TCP overhead
// breakdown for a 1-byte message, per medium, derived from the engine's
// cost accounting rather than subtraction.
type Table1Data struct {
	Rows []Table1Row
}

// Table1Row is one line of the table (values in µs).
type Table1Row struct {
	Name     string
	ATM, Eth float64
}

// String renders the table like the paper's.
func (t Table1Data) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: MPI round-trip overheads with TCP\n")
	fmt.Fprintf(&b, "%12s %12s   %s\n", "ATM", "Ethernet", "Overhead")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%9.0f us %9.0f us   %s\n", r.ATM, r.Eth, r.Name)
	}
	return b.String()
}

// Table1 regenerates the overhead breakdown.
func Table1(o Opts) (Table1Data, error) {
	o = o.Norm()
	iters := o.Iters * 4
	rawATM := RawTCPPingPong(atm.OverATM, 1, iters)
	rawEth := RawTCPPingPong(atm.OverEthernet, 1, iters)
	// The 25-byte protocol header's wire cost: raw RTT at 26 bytes minus
	// raw RTT at 1 byte.
	infoATM := RawTCPPingPong(atm.OverATM, 26, iters) - rawATM
	infoEth := RawTCPPingPong(atm.OverEthernet, 26, iters) - rawEth

	acctATM, err := clusterAcctPingPong("atm", iters)
	if err != nil {
		return Table1Data{}, err
	}
	acctEth, err := clusterAcctPingPong("eth", iters)
	if err != nil {
		return Table1Data{}, err
	}
	read := func(acct *core.Acct, label string) float64 {
		if acct.Count[label] == 0 {
			return 0
		}
		return float64(acct.Time[label]) / float64(acct.Count[label]) / 1e3
	}
	match := func(acct *core.Acct) float64 {
		if acct.Count["recv"] == 0 {
			return 0
		}
		return float64(acct.Time["match"]) / float64(acct.Count["recv"]) / 1e3
	}
	return Table1Data{Rows: []Table1Row{
		{"1 byte round-trip latency", rawATM, rawEth},
		{"25 byte info overhead (round trip)", infoATM, infoEth},
		{"Read for msg type", read(acctATM, "read-type"), read(acctEth, "read-type")},
		{"Read for envelope", read(acctATM, "read-env"), read(acctEth, "read-env")},
		{"Overheads for matching", match(acctATM), match(acctEth)},
	}}, nil
}
