package bench

import "encoding/json"

// AnchorsReport is the machine-readable record cmd/repro writes as
// BENCH_anchors.json: the calibration anchors (the paper's 1-byte round
// trips, the eager/rendezvous crossover, bandwidth and overhead numbers)
// plus any figures regenerated in the same invocation (latency curves,
// broadcast ablations), for perf-trajectory tracking across revisions.
type AnchorsReport struct {
	Anchors []AnchorJSON `json:"anchors"`
	Figures []FigureJSON `json:"figures,omitempty"`
}

// AnchorJSON is one calibration anchor in the JSON record.
type AnchorJSON struct {
	Name      string  `json:"name"`
	Unit      string  `json:"unit"`
	Paper     float64 `json:"paper"`
	Measured  float64 `json:"measured"`
	Tolerance float64 `json:"tolerance"`
	OK        bool    `json:"ok"`
}

// FigureJSON is one regenerated figure in the JSON record.
type FigureJSON struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"xlabel"`
	YLabel string       `json:"ylabel"`
	Series []SeriesJSON `json:"series"`
}

// SeriesJSON is one curve: points as [x, y] pairs.
type SeriesJSON struct {
	Name   string       `json:"name"`
	Points [][2]float64 `json:"points"`
}

// NewAnchorsReport assembles the JSON record from measured anchors and
// regenerated figures.
func NewAnchorsReport(as []Anchor, figs []Figure) AnchorsReport {
	rep := AnchorsReport{}
	for _, a := range as {
		rep.Anchors = append(rep.Anchors, AnchorJSON{
			Name:      a.Name,
			Unit:      a.Unit,
			Paper:     a.Paper,
			Measured:  a.Measured,
			Tolerance: a.Tolerance,
			OK:        a.Within(),
		})
	}
	for _, f := range figs {
		fj := FigureJSON{ID: f.ID, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel}
		for _, s := range f.Series {
			sj := SeriesJSON{Name: s.Name}
			for _, p := range s.Points {
				sj.Points = append(sj.Points, [2]float64{float64(p.X), p.Y})
			}
			fj.Series = append(fj.Series, sj)
		}
		rep.Figures = append(rep.Figures, fj)
	}
	return rep
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r AnchorsReport) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
