package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

// Match microbenchmarks: the receive-side hot path in isolation. Each
// scenario drives the indexed matcher (and, where a speedup is claimed,
// the linear reference oracle on identical work) through the steady-state
// cycle the engine executes per message, and records ns/op plus the
// allocation profile.
//
// The regression gate deliberately compares only hardware-independent
// metrics: allocations per operation (exact, deterministic) and the
// indexed-vs-linear speedup ratio (both sides run on the same machine, so
// the ratio survives CI hardware churn). Absolute ns/op is recorded for
// trajectory plots but never gated on.

// MatchScenario is one measured scenario in BENCH_match.json.
type MatchScenario struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// MatchReport is the machine-readable record cmd/repro writes as
// BENCH_match.json: per-scenario measurements plus indexed-vs-linear
// speedup ratios. The committed copy is the regression baseline CI
// compares against (see CheckMatch).
type MatchReport struct {
	Scenarios []MatchScenario    `json:"scenarios"`
	Speedups  map[string]float64 `json:"speedups"`
}

// matchQueue is the method set shared by the indexed matcher and the
// linear oracle; the scenarios are generic over it so both run the exact
// same loop body.
type matchQueue interface {
	PostRecv(*core.Request) *core.InMsg
	Arrive(core.Envelope) *core.Request
	AddUnexpected(*core.InMsg)
}

// benchArrivePosted measures Arrive against 64 posted receives. The
// arrival matches the last-posted pattern, so the linear oracle scans the
// whole queue — the paper's worst case for deep posted queues — while the
// indexed matcher reads one bin. The matched receive is re-posted to keep
// the depth constant.
func benchArrivePosted(mk func() matchQueue) func(b *testing.B) {
	return func(b *testing.B) {
		m := mk()
		const n = 64
		for i := 0; i < n; i++ {
			m.PostRecv(&core.Request{IsRecv: true, Env: core.Envelope{Source: i % 4, Tag: i, Context: 0}})
		}
		env := core.Envelope{Source: (n - 1) % 4, Tag: n - 1, Context: 0}
		cycle := func() {
			r := m.Arrive(env)
			if r == nil {
				b.Fatal("arrival missed posted receive")
			}
			m.PostRecv(r)
		}
		for i := 0; i < 512; i++ { // settle bins, freelists, slice capacity
			cycle()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cycle()
		}
	}
}

// benchPostUnexpected measures PostRecv against 256 queued unexpected
// messages, matching the last-queued one (again the linear worst case).
// The matched message is re-queued to keep the depth constant.
func benchPostUnexpected(mk func() matchQueue) func(b *testing.B) {
	return func(b *testing.B) {
		m := mk()
		const n = 256
		msgs := make([]*core.InMsg, n)
		for i := 0; i < n; i++ {
			msgs[i] = &core.InMsg{Env: core.Envelope{Source: i % 4, Tag: i, Context: 0, Seq: uint64(i + 1)}}
			m.AddUnexpected(msgs[i])
		}
		req := &core.Request{IsRecv: true, Env: core.Envelope{Source: (n - 1) % 4, Tag: n - 1, Context: 0}}
		cycle := func() {
			got := m.PostRecv(req)
			if got == nil {
				b.Fatal("post missed unexpected message")
			}
			m.AddUnexpected(got)
		}
		for i := 0; i < 512; i++ {
			cycle()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cycle()
		}
	}
}

// benchEagerRecvPath composes the full engine-side eager receive: take a
// pooled bounce buffer, copy the payload in (the transport), match the
// arrival, copy out to the user buffer, recycle the bounce buffer, and
// re-post. This is the path the acceptance criterion pins at zero
// allocations per operation.
func benchEagerRecvPath(b *testing.B) {
	var m core.Matcher
	pool := core.NewBufPool(nil)
	payload := make([]byte, 256)
	req := &core.Request{
		IsRecv: true,
		Env:    core.Envelope{Source: core.AnySource, Tag: 7, Context: 0},
		Buf:    make([]byte, 256),
	}
	m.PostRecv(req)
	env := core.Envelope{Source: 1, Tag: 7, Context: 0}
	cycle := func() {
		data := pool.Get(len(payload))
		copy(data, payload)
		r := m.Arrive(env)
		if r == nil {
			b.Fatal("eager arrival missed posted receive")
		}
		copy(r.Buf, data)
		pool.Put(data)
		m.PostRecv(r)
	}
	for i := 0; i < 512; i++ {
		cycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

func runMatchScenario(name string, fn func(b *testing.B)) MatchScenario {
	r := testing.Benchmark(fn)
	return MatchScenario{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// MatchBench runs every matching scenario and derives the
// indexed-vs-linear speedup ratios.
func MatchBench(o Opts) (MatchReport, error) {
	mkIdx := func() matchQueue { return &core.Matcher{} }
	mkLin := func() matchQueue { return &core.LinearMatcher{} }

	rep := MatchReport{Speedups: map[string]float64{}}
	pairs := []struct {
		name string
		fn   func(func() matchQueue) func(*testing.B)
	}{
		{"arrive/posted64", benchArrivePosted},
		{"post/unexpected256", benchPostUnexpected},
	}
	for _, p := range pairs {
		idx := runMatchScenario(p.name+"/indexed", p.fn(mkIdx))
		lin := runMatchScenario(p.name+"/linear", p.fn(mkLin))
		rep.Scenarios = append(rep.Scenarios, idx, lin)
		if idx.NsPerOp > 0 {
			rep.Speedups[p.name] = lin.NsPerOp / idx.NsPerOp
		}
	}
	rep.Scenarios = append(rep.Scenarios, runMatchScenario("eager/recv-path", benchEagerRecvPath))
	return rep, nil
}

// FormatMatch renders the report as a table.
func FormatMatch(r MatchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matching microbenchmarks\n")
	fmt.Fprintf(&b, "  %-28s %12s %10s %10s\n", "scenario", "ns/op", "allocs/op", "B/op")
	for _, s := range r.Scenarios {
		fmt.Fprintf(&b, "  %-28s %12.1f %10d %10d\n", s.Name, s.NsPerOp, s.AllocsPerOp, s.BytesPerOp)
	}
	var names []string
	for k := range r.Speedups {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "  %-28s %11.1fx indexed over linear\n", k, r.Speedups[k])
	}
	return b.String()
}

// Static floors the gate enforces regardless of baseline: the acceptance
// bar for the indexed matcher, below which the rewrite has regressed to
// linear behavior no matter what the committed baseline says.
const (
	matchMinSpeedup  = 2.0               // arrive at 64 posted receives
	matchGateSpeedup = "arrive/posted64" // the scenario the floor applies to
	matchGateAlloc   = "eager/recv-path" // must stay allocation-free
)

// CheckMatch compares a fresh report against the committed baseline and
// returns the list of regressions (empty means the gate passes). tol is
// the fractional slack on speedup ratios (0.10 = fail on >10% regression).
// Allocation counts are exact and deterministic, so any increase over the
// baseline fails. Absolute ns/op is never compared — it is hardware-bound.
// base may be nil (first run, no baseline yet): only the static floors
// apply.
func CheckMatch(cur MatchReport, base *MatchReport, tol float64) []string {
	var fails []string
	curAllocs := map[string]int64{}
	for _, s := range cur.Scenarios {
		curAllocs[s.Name] = s.AllocsPerOp
	}
	if a, ok := curAllocs[matchGateAlloc]; !ok {
		fails = append(fails, fmt.Sprintf("scenario %s missing from report", matchGateAlloc))
	} else if a != 0 {
		fails = append(fails, fmt.Sprintf("%s allocates %d objects/op, want 0", matchGateAlloc, a))
	}
	if sp, ok := cur.Speedups[matchGateSpeedup]; !ok {
		fails = append(fails, fmt.Sprintf("speedup %s missing from report", matchGateSpeedup))
	} else if sp < matchMinSpeedup {
		fails = append(fails, fmt.Sprintf("%s speedup %.2fx below the %.1fx floor", matchGateSpeedup, sp, matchMinSpeedup))
	}
	if base == nil {
		return fails
	}
	for _, bs := range base.Scenarios {
		a, ok := curAllocs[bs.Name]
		if !ok {
			fails = append(fails, fmt.Sprintf("scenario %s dropped from report", bs.Name))
			continue
		}
		if a > bs.AllocsPerOp {
			fails = append(fails, fmt.Sprintf("%s allocs/op %d exceeds baseline %d", bs.Name, a, bs.AllocsPerOp))
		}
	}
	for name, bsp := range base.Speedups {
		sp, ok := cur.Speedups[name]
		if !ok {
			fails = append(fails, fmt.Sprintf("speedup %s dropped from report", name))
			continue
		}
		if sp < bsp*(1-tol) {
			fails = append(fails, fmt.Sprintf("%s speedup %.2fx regressed >%.0f%% from baseline %.2fx", name, sp, tol*100, bsp))
		}
	}
	return fails
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r MatchReport) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// UnmarshalMatch parses a BENCH_match.json baseline.
func UnmarshalMatch(data []byte) (MatchReport, error) {
	var r MatchReport
	err := json.Unmarshal(data, &r)
	return r, err
}
