package bench

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/meiko"
	"repro/internal/sim"
	"repro/mpi"
	"repro/platform/registry"

	// Every MPI-level measurement builds its world through the registry;
	// the platforms register themselves on import.
	_ "repro/platform/cluster"
	_ "repro/platform/meiko"
)

// ---- MPI-level measurement primitives --------------------------------

// mpiPingPong runs an n-byte ping-pong for iters round trips under any
// world and reports the mean RTT in microseconds.
func mpiPingPong(w *mpi.World, n, iters int) (float64, error) {
	var rtt time.Duration
	_, err := mpi.Launch(w, func(c *mpi.Comm) error {
		data := make([]byte, n)
		buf := make([]byte, n)
		if c.Rank() == 0 {
			start := c.Wtime()
			for i := 0; i < iters; i++ {
				if err := c.Send(1, 0, data); err != nil {
					return err
				}
				if _, err := c.Recv(1, 0, buf); err != nil {
					return err
				}
			}
			rtt = (c.Wtime() - start) / time.Duration(iters)
			return nil
		}
		if c.Rank() == 1 {
			for i := 0; i < iters; i++ {
				if _, err := c.Recv(0, 0, buf); err != nil {
					return err
				}
				if err := c.Send(0, 0, data); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return float64(rtt) / 1e3, err
}

// mpiBandwidth streams iters chunks one way and reports MB/s.
func mpiBandwidth(w *mpi.World, chunk, iters int) (float64, error) {
	var elapsed time.Duration
	_, err := mpi.Launch(w, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			data := make([]byte, chunk)
			for i := 0; i < iters; i++ {
				if err := c.Send(1, 0, data); err != nil {
					return err
				}
			}
			_, err := c.Recv(1, 1, make([]byte, 1))
			return err
		}
		if c.Rank() == 1 {
			buf := make([]byte, chunk)
			for i := 0; i < iters; i++ {
				if _, err := c.Recv(0, 0, buf); err != nil {
					return err
				}
			}
			elapsed = c.Wtime()
			return c.Send(0, 1, []byte{1})
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return float64(chunk*iters) / elapsed.Seconds() / 1e6, nil
}

// MeikoPingPong measures the MPI RTT on the Meiko. impl is a registry
// implementation name ("lowlatency" | "mpich"); eager == 0 uses the
// default 180-byte crossover.
func MeikoPingPong(impl string, eager, size, iters int) (float64, error) {
	w, err := registry.Build(registry.Spec{Platform: "meiko", Impl: impl, Ranks: 2, Eager: eager})
	if err != nil {
		return 0, err
	}
	return mpiPingPong(w, size, iters)
}

// MeikoBandwidth measures one-way MPI bandwidth on the Meiko in MB/s.
func MeikoBandwidth(impl string, chunk, iters int) (float64, error) {
	w, err := registry.Build(registry.Spec{Platform: "meiko", Impl: impl, Ranks: 2})
	if err != nil {
		return 0, err
	}
	return mpiBandwidth(w, chunk, iters)
}

// ClusterPingPong measures the MPI RTT on the cluster. tr is a registry
// transport name ("tcp" | "udp" | "unet"), net a network name ("atm" | "eth").
func ClusterPingPong(tr, net string, size, iters int) (float64, error) {
	w, err := registry.Build(registry.Spec{Platform: "cluster", Transport: tr, Network: net, Ranks: 2})
	if err != nil {
		return 0, err
	}
	return mpiPingPong(w, size, iters)
}

// ClusterBandwidth measures one-way MPI bandwidth on the cluster in MB/s.
func ClusterBandwidth(tr, net string, chunk, iters int) (float64, error) {
	w, err := registry.Build(registry.Spec{Platform: "cluster", Transport: tr, Network: net, Ranks: 2})
	if err != nil {
		return 0, err
	}
	return mpiBandwidth(w, chunk, iters)
}

// ---- raw substrate primitives ----------------------------------------

// TportPingPong measures the raw tport widget RTT (Figure 2's base line).
func TportPingPong(size, iters int) float64 {
	s := sim.NewScheduler(1)
	s.MaxEvents = 100_000_000
	m := meiko.NewMachine(s, 2, meiko.DefaultCosts())
	t0 := m.NewTport(m.Nodes[0])
	t1 := m.NewTport(m.Nodes[1])
	data := make([]byte, size)
	var rtt sim.Duration
	s.Spawn("n0", func(p *sim.Proc) {
		buf := make([]byte, size)
		start := p.Now()
		for i := 0; i < iters; i++ {
			t0.Send(p, 1, 7, data)
			t0.Recv(p, 7, ^uint64(0), buf)
		}
		rtt = sim.Duration(p.Now()-start) / sim.Duration(iters)
	})
	s.Spawn("n1", func(p *sim.Proc) {
		buf := make([]byte, size)
		for i := 0; i < iters; i++ {
			t1.Recv(p, 7, ^uint64(0), buf)
			t1.Send(p, 0, 7, data)
		}
	})
	if _, err := s.Run(); err != nil {
		panic(fmt.Sprintf("tport pingpong: %v", err))
	}
	return float64(rtt) / 1e3
}

// TportBandwidth measures raw tport streaming bandwidth in MB/s.
func TportBandwidth(chunk, iters int) float64 {
	s := sim.NewScheduler(1)
	s.MaxEvents = 100_000_000
	m := meiko.NewMachine(s, 2, meiko.DefaultCosts())
	t0 := m.NewTport(m.Nodes[0])
	t1 := m.NewTport(m.Nodes[1])
	var elapsed sim.Duration
	s.Spawn("tx", func(p *sim.Proc) {
		data := make([]byte, chunk)
		for i := 0; i < iters; i++ {
			t0.Send(p, 1, 7, data)
		}
	})
	s.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, chunk)
		for i := 0; i < iters; i++ {
			t1.Recv(p, 7, ^uint64(0), buf)
		}
		elapsed = sim.Duration(p.Now())
	})
	if _, err := s.Run(); err != nil {
		panic(fmt.Sprintf("tport bandwidth: %v", err))
	}
	return float64(chunk*iters) / elapsed.Seconds() / 1e6
}

// rawCluster builds a fresh cluster for a raw-transport measurement.
func rawCluster() (*sim.Scheduler, *atm.Cluster) {
	s := sim.NewScheduler(1)
	s.MaxEvents = 100_000_000
	return s, atm.NewCluster(s, 2, atm.DefaultCosts())
}

// RawTCPPingPong measures raw TCP RTT on the given medium in µs.
func RawTCPPingPong(net atm.MediumKind, size, iters int) float64 {
	s, cl := rawCluster()
	a, b := cl.TCPPair(0, 1, net)
	msg := make([]byte, size)
	var rtt sim.Duration
	s.Spawn("h0", func(p *sim.Proc) {
		buf := make([]byte, size)
		start := p.Now()
		for i := 0; i < iters; i++ {
			a.Write(p, msg)
			a.ReadFull(p, buf)
		}
		rtt = sim.Duration(p.Now()-start) / sim.Duration(iters)
	})
	s.Spawn("h1", func(p *sim.Proc) {
		buf := make([]byte, size)
		for i := 0; i < iters; i++ {
			b.ReadFull(p, buf)
			b.Write(p, msg)
		}
	})
	if _, err := s.Run(); err != nil {
		panic(fmt.Sprintf("tcp pingpong: %v", err))
	}
	return float64(rtt) / 1e3
}

// RawTCPBandwidth measures one-way raw TCP throughput in MB/s.
func RawTCPBandwidth(net atm.MediumKind, total int) float64 {
	s, cl := rawCluster()
	a, b := cl.TCPPair(0, 1, net)
	var elapsed sim.Duration
	s.Spawn("tx", func(p *sim.Proc) {
		const chunk = 32 * 1024
		for sent := 0; sent < total; sent += chunk {
			n := chunk
			if total-sent < n {
				n = total - sent
			}
			a.Write(p, make([]byte, n))
		}
	})
	s.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, total)
		b.ReadFull(p, buf)
		elapsed = sim.Duration(p.Now())
	})
	if _, err := s.Run(); err != nil {
		panic(fmt.Sprintf("tcp bandwidth: %v", err))
	}
	return float64(total) / elapsed.Seconds() / 1e6
}

// RawUDPPingPong measures raw (unreliable) UDP RTT in µs.
func RawUDPPingPong(net atm.MediumKind, size, iters int) float64 {
	s, cl := rawCluster()
	u0 := cl.UDPSocket(0, net)
	u1 := cl.UDPSocket(1, net)
	var rtt sim.Duration
	s.Spawn("h0", func(p *sim.Proc) {
		buf := make([]byte, size)
		start := p.Now()
		for i := 0; i < iters; i++ {
			u0.SendTo(p, 1, make([]byte, size))
			u0.RecvFrom(p, buf)
		}
		rtt = sim.Duration(p.Now()-start) / sim.Duration(iters)
	})
	s.Spawn("h1", func(p *sim.Proc) {
		buf := make([]byte, size)
		for i := 0; i < iters; i++ {
			u1.RecvFrom(p, buf)
			u1.SendTo(p, 0, make([]byte, size))
		}
	})
	if _, err := s.Run(); err != nil {
		panic(fmt.Sprintf("udp pingpong: %v", err))
	}
	return float64(rtt) / 1e3
}

// RawAAL4PingPong measures the Fore API AAL3/4 RTT in µs (ATM only).
func RawAAL4PingPong(size, iters int) float64 {
	s, cl := rawCluster()
	a0 := cl.AAL4Socket(0)
	a1 := cl.AAL4Socket(1)
	var rtt sim.Duration
	s.Spawn("h0", func(p *sim.Proc) {
		buf := make([]byte, size)
		start := p.Now()
		for i := 0; i < iters; i++ {
			a0.SendTo(p, 1, make([]byte, size))
			a0.RecvFrom(p, buf)
		}
		rtt = sim.Duration(p.Now()-start) / sim.Duration(iters)
	})
	s.Spawn("h1", func(p *sim.Proc) {
		buf := make([]byte, size)
		for i := 0; i < iters; i++ {
			a1.RecvFrom(p, buf)
			a1.SendTo(p, 0, make([]byte, size))
		}
	})
	if _, err := s.Run(); err != nil {
		panic(fmt.Sprintf("aal4 pingpong: %v", err))
	}
	return float64(rtt) / 1e3
}

// clusterAcctPingPong runs a 1-byte MPI ping-pong and returns rank 1's
// cost account plus the per-direction message count (Table 1's source).
func clusterAcctPingPong(net string, iters int) (*core.Acct, error) {
	w, err := registry.Build(registry.Spec{Platform: "cluster", Network: net, Ranks: 2})
	if err != nil {
		return nil, err
	}
	rep, err := mpi.Launch(w, func(c *mpi.Comm) error {
		data := make([]byte, 1)
		if c.Rank() == 0 {
			for i := 0; i < iters; i++ {
				if err := c.Send(1, 0, data); err != nil {
					return err
				}
				if _, err := c.Recv(1, 0, data); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < iters; i++ {
			if _, err := c.Recv(0, 0, data); err != nil {
				return err
			}
			if err := c.Send(0, 0, data); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep.RankAccts[1], nil
}
