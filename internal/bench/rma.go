package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/mpi"
	"repro/platform/registry"
)

// The -rma sweep: one-sided communication cost on the backends with a
// native remote-memory primitive, plus the RDMA-write rendezvous ablation
// on the socket transports — the same large two-sided transfer with the
// receiver's pre-posted buffer advertised (the sender writes data
// directly) versus pinned to the classic RTS/CTS round trip.
//
// Every number is virtual time, so the record is deterministic and the
// gate compares values exactly as committed: a drift is a model change,
// not host noise.

// RMAPutPoint is one Put+Fence epoch measurement on a native-RMA backend.
type RMAPutPoint struct {
	Backend string  `json:"backend"`
	Bytes   int     `json:"bytes"`
	EpochUS float64 `json:"epoch_us"`
}

// RMARendezvousPoint compares a pre-posted large-message ping-pong with
// the RDMA-write rendezvous enabled against the same exchange pinned to
// RTS/CTS. Speedup > 1 means skipping the CTS round trip paid off.
type RMARendezvousPoint struct {
	Backend    string  `json:"backend"`
	Bytes      int     `json:"bytes"`
	RTRUS      float64 `json:"rtr_us"`
	TwoSidedUS float64 `json:"two_sided_us"`
	Speedup    float64 `json:"speedup"`
}

// RMAFencePoint is one emulated Put+Fence epoch on a socket transport,
// where one-sided operations deflate to matched messages inside the
// closing fence. RTRPerEpoch counts the rendezvous transfers that rode
// the receiver-ready RDMA-write fast path per epoch: a bulk fence must
// keep it above zero, proving the exchange pre-posts its receives rather
// than round-tripping RTS/CTS.
type RMAFencePoint struct {
	Backend     string  `json:"backend"`
	Bytes       int     `json:"bytes"`
	EpochUS     float64 `json:"epoch_us"`
	RTRPerEpoch float64 `json:"rtr_per_epoch"`
}

// RMAReport is the machine-readable record cmd/repro writes as
// BENCH_rma.json. The committed copy is the baseline CI gates against
// (see CheckRMA).
type RMAReport struct {
	Iters      int                  `json:"iters"`
	Puts       []RMAPutPoint        `json:"puts"`
	Rendezvous []RMARendezvousPoint `json:"rendezvous"`
	Fences     []RMAFencePoint      `json:"fences"`
}

// rmaPutEpoch measures one rank Putting n bytes into its neighbor's window
// each epoch, reporting the mean Put+Fence epoch time in microseconds.
func rmaPutEpoch(w *mpi.World, n, iters int) (float64, error) {
	var per time.Duration
	_, err := mpi.Launch(w, func(c *mpi.Comm) error {
		win, err := c.WinCreate(n)
		if err != nil {
			return err
		}
		data := make([]byte, n)
		if err := win.Fence(); err != nil {
			return err
		}
		start := c.Wtime()
		for i := 0; i < iters; i++ {
			if c.Rank() == 0 {
				if err := win.Put(1, 0, data); err != nil {
					return err
				}
			}
			if err := win.Fence(); err != nil {
				return err
			}
		}
		per = (c.Wtime() - start) / time.Duration(iters)
		return win.Free()
	})
	return float64(per) / 1e3, err
}

// rmaFenceEpoch measures the deferred-at-fence emulation on a world
// without native RMA: rank 0 Puts n bytes into rank 1's window each
// epoch, and the closing fence carries the blob. Reports the mean epoch
// time and how many rendezvous transfers took the RTR fast path per
// epoch (from the merged rndv-rtr counter).
func rmaFenceEpoch(w *mpi.World, n, iters int) (float64, float64, error) {
	var per time.Duration
	rep, err := mpi.Launch(w, func(c *mpi.Comm) error {
		win, err := c.WinCreate(n)
		if err != nil {
			return err
		}
		if win.Native() {
			return fmt.Errorf("fence bench wants the emulated path, got native RMA")
		}
		data := make([]byte, n)
		if err := win.Fence(); err != nil {
			return err
		}
		start := c.Wtime()
		for i := 0; i < iters; i++ {
			if c.Rank() == 0 {
				if err := win.Put(1, 0, data); err != nil {
					return err
				}
			}
			if err := win.Fence(); err != nil {
				return err
			}
		}
		per = (c.Wtime() - start) / time.Duration(iters)
		return win.Free()
	})
	if err != nil {
		return 0, 0, err
	}
	return float64(per) / 1e3, float64(rep.Acct.Count["rndv-rtr"]) / float64(iters), nil
}

// prePostedPingPong measures an n-byte ping-pong where both sides post
// their receive (and let the advert propagate under a barrier) before the
// matching send starts — the shape the RDMA-write rendezvous accelerates.
// Reports the mean round trip, barrier included, in microseconds.
func prePostedPingPong(w *mpi.World, n, iters int) (float64, error) {
	var rtt time.Duration
	_, err := mpi.Launch(w, func(c *mpi.Comm) error {
		data := make([]byte, n)
		buf := make([]byte, n)
		peer := 1 - c.Rank()
		start := c.Wtime()
		for i := 0; i < iters; i++ {
			r, err := c.Irecv(peer, 0, buf)
			if err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if c.Rank() == 0 {
				if err := c.Send(peer, 0, data); err != nil {
					return err
				}
				if _, err := r.Wait(); err != nil {
					return err
				}
			} else {
				if _, err := r.Wait(); err != nil {
					return err
				}
				if err := c.Send(peer, 0, data); err != nil {
					return err
				}
			}
		}
		rtt = (c.Wtime() - start) / time.Duration(iters)
		return nil
	})
	return float64(rtt) / 1e3, err
}

// rmaPutSizes/rmaRendezvousSizes are the swept transfer sizes; the largest
// rendezvous size is the one the gate's RTR floor applies to.
func rmaPutSizes(full bool) []int {
	if full {
		return []int{1 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	}
	return []int{1 << 10, 64 << 10, 1 << 20}
}

func rmaRendezvousSizes(full bool) []int {
	if full {
		return []int{64 << 10, 256 << 10, 1 << 20, 4 << 20}
	}
	return []int{256 << 10, 1 << 20}
}

// rmaFenceSizes are the emulated-fence sweep sizes; everything at or
// above the gate size must ride the RTR fast path.
func rmaFenceSizes(full bool) []int {
	if full {
		return []int{4 << 10, 256 << 10, 1 << 20}
	}
	return []int{256 << 10}
}

// rmaNativeBackends lists the backends whose transports implement
// core.RemoteMemory, i.e. where Put is a genuine one-sided transfer.
var rmaNativeBackends = []string{"mem", "meiko/lowlatency", "cluster/shm"}

// RMABench runs the one-sided sweep and the rendezvous ablation.
func RMABench(o Opts) (RMAReport, error) {
	o = o.Norm()
	rep := RMAReport{Iters: o.Iters}
	for _, name := range rmaNativeBackends {
		for _, n := range rmaPutSizes(o.Full) {
			spec := registry.SpecFor(name)
			spec.Ranks = 2
			w, err := registry.Build(spec)
			if err != nil {
				return rep, fmt.Errorf("rma %s: %v", name, err)
			}
			us, err := rmaPutEpoch(w, n, o.Iters)
			if err != nil {
				return rep, fmt.Errorf("rma %s %dB: %v", name, n, err)
			}
			rep.Puts = append(rep.Puts, RMAPutPoint{Backend: name, Bytes: n, EpochUS: us})
		}
	}
	for _, tr := range []string{"tcp", "udp"} {
		for _, n := range rmaRendezvousSizes(o.Full) {
			point := RMARendezvousPoint{Backend: "cluster/" + tr, Bytes: n}
			for _, noRTR := range []bool{false, true} {
				spec := registry.Spec{Platform: "cluster", Transport: tr, Ranks: 2, NoRTR: noRTR}
				w, err := registry.Build(spec)
				if err != nil {
					return rep, fmt.Errorf("rendezvous %s: %v", point.Backend, err)
				}
				us, err := prePostedPingPong(w, n, o.Iters)
				if err != nil {
					return rep, fmt.Errorf("rendezvous %s %dB: %v", point.Backend, n, err)
				}
				if noRTR {
					point.TwoSidedUS = us
				} else {
					point.RTRUS = us
				}
			}
			if point.RTRUS > 0 {
				point.Speedup = point.TwoSidedUS / point.RTRUS
			}
			rep.Rendezvous = append(rep.Rendezvous, point)
		}
	}
	for _, tr := range []string{"tcp", "udp"} {
		for _, n := range rmaFenceSizes(o.Full) {
			spec := registry.Spec{Platform: "cluster", Transport: tr, Ranks: 2}
			w, err := registry.Build(spec)
			if err != nil {
				return rep, fmt.Errorf("fence %s: %v", tr, err)
			}
			us, rtr, err := rmaFenceEpoch(w, n, o.Iters)
			if err != nil {
				return rep, fmt.Errorf("fence cluster/%s %dB: %v", tr, n, err)
			}
			rep.Fences = append(rep.Fences, RMAFencePoint{
				Backend: "cluster/" + tr, Bytes: n, EpochUS: us, RTRPerEpoch: rtr,
			})
		}
	}
	return rep, nil
}

// FormatRMA renders the report as the text tables the CLI prints.
func FormatRMA(r RMAReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "One-sided communication (%d iters)\n", r.Iters)
	fmt.Fprintf(&b, "  %-20s %10s %14s\n", "backend", "bytes", "Put+Fence us")
	for _, p := range r.Puts {
		fmt.Fprintf(&b, "  %-20s %10d %14.1f\n", p.Backend, p.Bytes, p.EpochUS)
	}
	fmt.Fprintf(&b, "\nRDMA-write rendezvous vs RTS/CTS (pre-posted ping-pong)\n")
	fmt.Fprintf(&b, "  %-20s %10s %12s %12s %9s\n", "backend", "bytes", "rtr us", "rts/cts us", "speedup")
	for _, p := range r.Rendezvous {
		fmt.Fprintf(&b, "  %-20s %10d %12.1f %12.1f %8.2fx\n", p.Backend, p.Bytes, p.RTRUS, p.TwoSidedUS, p.Speedup)
	}
	if len(r.Fences) > 0 {
		fmt.Fprintf(&b, "\nEmulated Put+Fence over matched sends (rendezvous fast-path usage)\n")
		fmt.Fprintf(&b, "  %-20s %10s %12s %14s\n", "backend", "bytes", "epoch us", "rtr/epoch")
		for _, p := range r.Fences {
			fmt.Fprintf(&b, "  %-20s %10d %12.1f %14.1f\n", p.Backend, p.Bytes, p.EpochUS, p.RTRPerEpoch)
		}
	}
	return b.String()
}

// rmaGateBytes is the transfer size from which the RDMA-write rendezvous
// must beat the two-sided path on every cluster socket transport — the
// acceptance bar for skipping the CTS round trip.
const rmaGateBytes = 1 << 20

// CheckRMA compares a fresh report against the committed baseline and
// returns the list of regressions (empty means the gate passes). The
// static floor applies with or without a baseline: every rendezvous point
// at or above rmaGateBytes must show speedup > 1. Against a baseline, a
// speedup regression beyond tol fails; Put epochs are virtual time and
// must not regress beyond tol either.
func CheckRMA(cur RMAReport, base *RMAReport, tol float64) []string {
	var fails []string
	gated := 0
	for _, p := range cur.Rendezvous {
		if p.Bytes >= rmaGateBytes {
			gated++
			if p.Speedup <= 1.0 {
				fails = append(fails, fmt.Sprintf("%s %dB: rendezvous speedup %.3fx, want >1 (RTR must beat RTS/CTS)", p.Backend, p.Bytes, p.Speedup))
			}
		}
	}
	if gated == 0 {
		fails = append(fails, fmt.Sprintf("no rendezvous point at >=%d bytes; the RTR gate did not run", rmaGateBytes))
	}
	// Bulk emulated fences must prove they rode the fast path: the blob
	// exchange pre-posts receives under a barrier exactly so that no RTS
	// finds an unmatched queue.
	for _, p := range cur.Fences {
		if p.Bytes >= 64<<10 && p.RTRPerEpoch <= 0 {
			fails = append(fails, fmt.Sprintf("%s %dB: emulated fence took the RTR fast path %.1f times/epoch, want >0", p.Backend, p.Bytes, p.RTRPerEpoch))
		}
	}
	if base == nil {
		return fails
	}
	curRv := map[string]RMARendezvousPoint{}
	for _, p := range cur.Rendezvous {
		curRv[fmt.Sprintf("%s/%d", p.Backend, p.Bytes)] = p
	}
	for _, bp := range base.Rendezvous {
		key := fmt.Sprintf("%s/%d", bp.Backend, bp.Bytes)
		p, ok := curRv[key]
		if !ok {
			fails = append(fails, fmt.Sprintf("rendezvous point %s dropped from report", key))
			continue
		}
		if p.Speedup < bp.Speedup*(1-tol) {
			fails = append(fails, fmt.Sprintf("%s speedup %.2fx regressed >%.0f%% from baseline %.2fx", key, p.Speedup, tol*100, bp.Speedup))
		}
	}
	curPut := map[string]float64{}
	for _, p := range cur.Puts {
		curPut[fmt.Sprintf("%s/%d", p.Backend, p.Bytes)] = p.EpochUS
	}
	for _, bp := range base.Puts {
		key := fmt.Sprintf("%s/%d", bp.Backend, bp.Bytes)
		us, ok := curPut[key]
		if !ok {
			fails = append(fails, fmt.Sprintf("put point %s dropped from report", key))
			continue
		}
		if us > bp.EpochUS*(1+tol) {
			fails = append(fails, fmt.Sprintf("%s Put+Fence %.1fus regressed >%.0f%% from baseline %.1fus", key, us, tol*100, bp.EpochUS))
		}
	}
	curFence := map[string]RMAFencePoint{}
	for _, p := range cur.Fences {
		curFence[fmt.Sprintf("%s/%d", p.Backend, p.Bytes)] = p
	}
	for _, bp := range base.Fences {
		key := fmt.Sprintf("%s/%d", bp.Backend, bp.Bytes)
		p, ok := curFence[key]
		if !ok {
			fails = append(fails, fmt.Sprintf("fence point %s dropped from report", key))
			continue
		}
		if p.EpochUS > bp.EpochUS*(1+tol) {
			fails = append(fails, fmt.Sprintf("%s emulated fence %.1fus regressed >%.0f%% from baseline %.1fus", key, p.EpochUS, tol*100, bp.EpochUS))
		}
	}
	return fails
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r RMAReport) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// UnmarshalRMA parses a BENCH_rma.json baseline.
func UnmarshalRMA(data []byte) (RMAReport, error) {
	var r RMAReport
	err := json.Unmarshal(data, &r)
	return r, err
}
