package bench

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/mpi"
	"repro/platform/registry"
)

// Scale sweep: the sharded kernel against the single-lane kernel on a
// kernel-level dissemination barrier — the densest cross-node traffic
// pattern the simulator runs (every rank sends every round, every send
// crosses the fabric). The world is built directly on sim procs, Conds,
// and Route so the sweep measures the kernels themselves rather than the
// MPI engine above them.
//
// Three regression arms, from hardware-robust to hardware-bound:
//   - Allocations per event in the sharded kernel's steady state: exact
//     and deterministic; any nonzero value fails outright.
//   - The sharded-over-single speedup ratio: both kernels run on the same
//     machine in the same process, so the ratio survives CI hardware
//     churn. Floored at scaleMinSpeedup for the largest >=1024-rank point.
//   - Absolute events/sec against the committed baseline (tolerance-gated):
//     this arm assumes the baseline machine and the CI machine are
//     comparable; it exists to catch the large regressions the ratio arm
//     cannot see (both kernels slowing down together).
//   - The pinned-worker parallel executor against the sequential sharded
//     kernel: never meaningfully slower, and at least scaleMinParSpeedup
//     faster when the measuring machine has cores to use (MaxProcs is
//     recorded in the report so single-core runners skip the floor).
//
// Every point also cross-checks determinism: the single-lane kernel, the
// sequential sharded kernel, and the parallel sharded kernel must execute
// the identical event count and finish at the identical virtual time.

// scaleIters is the number of barrier iterations per world. Fixed (not an
// Opts knob) so the event counts in BENCH_scale.json are comparable across
// revisions.
const scaleIters = 10

// scaleSchemaVersion identifies the BENCH_scale.json layout. Version 0 is
// the original mem-only record (no version field); version 1 adds the
// measuring machine's GOMAXPROCS, the per-point parallel speedup, and the
// per-backend collective points. Baselines from older versions still
// compare: fields they lack are simply not gated against.
const scaleSchemaVersion = 1

// ScalePoint is one rank count in BENCH_scale.json: both kernels measured
// on the same world, plus the sharded control-plane counters.
type ScalePoint struct {
	Ranks  int `json:"ranks"`
	Lanes  int `json:"lanes"`
	Rounds int `json:"rounds"` // dissemination rounds per barrier: ceil(log2 ranks)

	Events    uint64  `json:"events"`     // identical across kernels (asserted)
	VirtualUs float64 `json:"virtual_us"` // identical across kernels (asserted)
	Identical bool    `json:"identical"`  // events and virtual time matched across all kernels

	SingleEvPerSec   float64 `json:"single_ev_per_sec"`
	ShardEvPerSec    float64 `json:"shard_ev_per_sec"`
	ParallelEvPerSec float64 `json:"parallel_ev_per_sec"`
	Speedup          float64 `json:"speedup"` // sharded (sequential) over single, same machine
	// ParallelSpeedup is the pinned-worker executor over the sequential
	// sharded kernel at the 1 µs lookahead — the focused Shard.Parallel
	// regression arm. On a single-core machine it measures pure overhead
	// (one channel handoff per epoch) and hovers near 1.0.
	ParallelSpeedup float64 `json:"parallel_speedup"`

	Epochs           uint64 `json:"epochs"`
	Stalls           uint64 `json:"stalls"`
	Routed           uint64 `json:"routed"`
	MailboxHighWater int    `json:"mailbox_high_water"`
}

// ScaleCollPoint is one full-MPI collective re-run at scale: the same
// operation on the same world, single-lane kernel versus sharded, with the
// per-rank finish times required to match exactly. The sweep covers every
// backend family — the mem reference at 1k+ ranks, plus the Meiko and
// cluster models at the rank counts their heavier per-message cost models
// afford — so the whole stack (engine, flow, collectives, media stages) is
// proven on the sharded kernel, not just raw sim procs. The fault sweeps
// stay on the single-lane kernel: the injector's RNG stream is world-global,
// so the registry rejects faults combined with lanes.
type ScaleCollPoint struct {
	// Backend is the registry key the point ran on; empty in schema-v0
	// baselines, which only swept "mem".
	Backend   string  `json:"backend,omitempty"`
	Op        string  `json:"op"`
	Ranks     int     `json:"ranks"`
	Bytes     int     `json:"bytes"`
	VirtualUs float64 `json:"virtual_us"`
	Identical bool    `json:"identical"` // per-rank virtual finish times match across kernels
	Speedup   float64 `json:"speedup"`   // sharded over single wall clock, same machine
}

// collBackend reports a point's backend, naming "mem" for schema-v0
// baselines that predate the field.
func collBackend(p ScaleCollPoint) string {
	if p.Backend == "" {
		return "mem"
	}
	return p.Backend
}

// ScaleReport is the machine-readable record cmd/repro writes as
// BENCH_scale.json. The committed copy is the regression baseline CI
// compares against (see CheckScale).
type ScaleReport struct {
	// SchemaVersion is scaleSchemaVersion at write time; 0 marks the
	// original mem-only layout.
	SchemaVersion int `json:"schema_version,omitempty"`
	// MaxProcs is GOMAXPROCS on the measuring machine. The parallel-speedup
	// floor only binds when the machine that produced the report had cores
	// to parallelize over.
	MaxProcs    int              `json:"max_procs,omitempty"`
	Points      []ScalePoint     `json:"points"`
	Collectives []ScaleCollPoint `json:"collectives"`
	// LaneAllocsPerOp is the steady-state heap allocations per executed
	// event on the sequential sharded kernel, measured as the malloc-count
	// delta between a short and a long run of the same world divided by the
	// event-count delta — setup and warmup costs subtract out, leaving the
	// scheduling hot path alone. Zero is the acceptance bar.
	LaneAllocsPerOp int64 `json:"lane_allocs_per_op"`
}

// scaleRun is one measured execution of the dissemination-barrier world.
type scaleRun struct {
	events  uint64
	virtual sim.Time
	wall    time.Duration
	stats   sim.ShardStats // zero value on the single-lane kernel
}

// dissemWorld builds and runs the dissemination barrier: ranks procs, each
// performing scaleIters barriers of ceil(log2 ranks) rounds; round k sends
// to (i + 2^k) mod ranks and waits for the matching arrival. lanes == 0
// selects the single-lane kernel; otherwise one lane per node with ranks
// block-mapped on, and every send crossing lanes through Route with the
// fabric latency as the lookahead bound.
func dissemWorld(ranks, lanes, iters int, parallel bool) scaleRun {
	const lat = time.Microsecond
	K := bits.Len(uint(ranks - 1))
	scheds := make([]*sim.Scheduler, ranks)
	laneOf := make([]int, ranks)
	var sh *sim.Shard
	var drive func() (sim.Time, error)
	if lanes == 0 {
		s := sim.NewScheduler(1)
		for i := range scheds {
			scheds[i] = s
		}
		drive = s.Run
	} else {
		sh = sim.NewShard(1, lanes, lat)
		sh.Parallel = parallel
		for i := range scheds {
			laneOf[i] = i * lanes / ranks
			scheds[i] = sh.Lane(laneOf[i])
		}
		drive = sh.Run
	}
	conds := make([]*sim.Cond, ranks)
	got := make([][]int, ranks)
	for i := range conds {
		conds[i] = sim.NewCond(scheds[i])
		got[i] = make([]int, K)
	}
	// One reusable arrival closure per (dst, round): the counters are
	// monotonic, so the same closure serves every barrier iteration and the
	// steady-state send path allocates nothing.
	arrive := make([][]func(), ranks)
	for i := range arrive {
		arrive[i] = make([]func(), K)
		for k := 0; k < K; k++ {
			i, k := i, k
			arrive[i][k] = func() {
				got[i][k]++
				conds[i].Signal()
			}
		}
	}
	for i := 0; i < ranks; i++ {
		i := i
		scheds[i].Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			for it := 0; it < iters; it++ {
				for k := 0; k < K; k++ {
					dst := (i + 1<<k) % ranks
					p.Scheduler().RouteAfter(laneOf[dst], lat, arrive[dst][k])
					for got[i][k] < it+1 {
						conds[i].Wait(p)
					}
				}
			}
		})
	}
	start := time.Now()
	end, err := drive()
	if err != nil {
		panic(fmt.Sprintf("bench: scale world failed: %v", err))
	}
	r := scaleRun{virtual: end, wall: time.Since(start)}
	if sh != nil {
		r.stats = sh.Stats()
		r.events = r.stats.Events
	} else {
		r.events = scheds[0].Events()
	}
	return r
}

// bestOf runs fn reps times and keeps the fastest wall clock (virtual time
// and event counts are deterministic, so repetitions only shed scheduler
// and allocator noise).
func bestOf(reps int, fn func() scaleRun) scaleRun {
	best := fn()
	for i := 1; i < reps; i++ {
		if r := fn(); r.wall < best.wall {
			best.wall = r.wall
		}
	}
	return best
}

// laneAllocsPerOp probes the sharded kernel's steady-state allocation rate:
// run the same world short and long, subtract. Setup (procs, conds,
// closures) and warmup (freelists, outbox capacity) are identical in both
// runs and cancel; the quotient is the per-event allocation count of the
// scheduling hot path plus the epoch-amortized control-plane residue
// (sort.Slice scratch), which sits far below one per event. GC is disabled
// around the probe so assists don't blur the malloc counter.
func laneAllocsPerOp(ranks int) int64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	measure := func(iters int) (uint64, uint64) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		r := dissemWorld(ranks, ranks, iters, false)
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs, r.events
	}
	m1, e1 := measure(4)
	m2, e2 := measure(40)
	if e2 <= e1 {
		panic("bench: scale alloc probe ran no steady-state events")
	}
	return int64((m2 - m1) / (e2 - e1))
}

// collAtScale runs one collective on the named backend at ranks on the
// given kernel (lanes 0 = single) and reports per-rank finish times plus
// wall clock.
func collAtScale(backend, op string, ranks, lanes, n int) ([]sim.Duration, time.Duration, error) {
	spec := registry.SpecFor(backend)
	spec.Ranks, spec.Lanes, spec.Seed = ranks, lanes, 1
	w, err := registry.Build(spec)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	rep, err := mpi.Launch(w, func(c *mpi.Comm) error { return collBody(c, op, n, 1) })
	if err != nil {
		return nil, 0, err
	}
	return rep.RankElapsed, time.Since(start), nil
}

// scaleCollBackends are the backend families the collective sweep proves on
// the sharded kernel, each at the rank counts its per-message cost model
// affords within a CI budget (the mem fabric is cheap enough for 1k+; the
// Meiko and cluster models charge full protocol costs per hop).
var scaleCollBackends = []struct {
	backend          string
	ranks, fullRanks int
}{
	{"mem", 1024, 2048},
	{"meiko/lowlatency", 256, 512},
	{"cluster/tcp", 64, 128},
}

// scaleCollectives re-runs the headline collectives through the full MPI
// stack on both kernels, on every backend family.
func scaleCollectives(full bool) ([]ScaleCollPoint, error) {
	var out []ScaleCollPoint
	for _, bk := range scaleCollBackends {
		ranksList := []int{bk.ranks}
		if full {
			ranksList = append(ranksList, bk.fullRanks)
		}
		for _, ranks := range ranksList {
			for _, c := range []struct {
				op string
				n  int
			}{{"barrier", 0}, {"bcast", 1024}, {"allreduce", 1024}} {
				single, w0, err := collAtScale(bk.backend, c.op, ranks, 0, c.n)
				if err != nil {
					return nil, fmt.Errorf("%s %s ranks=%d single: %w", bk.backend, c.op, ranks, err)
				}
				shard, w1, err := collAtScale(bk.backend, c.op, ranks, ranks, c.n)
				if err != nil {
					return nil, fmt.Errorf("%s %s ranks=%d sharded: %w", bk.backend, c.op, ranks, err)
				}
				p := ScaleCollPoint{Backend: bk.backend, Op: c.op, Ranks: ranks, Bytes: c.n, Identical: len(single) == len(shard)}
				var max sim.Duration
				for i := range single {
					if i < len(shard) && single[i] != shard[i] {
						p.Identical = false
					}
					if single[i] > max {
						max = single[i]
					}
				}
				p.VirtualUs = float64(max) / 1e3
				if w1 > 0 {
					p.Speedup = w0.Seconds() / w1.Seconds()
				}
				out = append(out, p)
			}
		}
	}
	return out, nil
}

// ScaleBench runs the rank sweep on both kernels, the full-MPI collective
// re-runs, and the allocation probe.
func ScaleBench(o Opts) (ScaleReport, error) {
	o = o.Norm()
	rankPoints := []int{64, 256, 1024, 4096}
	if o.Full {
		rankPoints = append(rankPoints, 16384)
	}
	rep := ScaleReport{SchemaVersion: scaleSchemaVersion, MaxProcs: runtime.GOMAXPROCS(0)}
	for _, ranks := range rankPoints {
		single := bestOf(o.Iters, func() scaleRun { return dissemWorld(ranks, 0, scaleIters, false) })
		shard := bestOf(o.Iters, func() scaleRun { return dissemWorld(ranks, ranks, scaleIters, false) })
		par := bestOf(o.Iters, func() scaleRun { return dissemWorld(ranks, ranks, scaleIters, true) })
		p := ScalePoint{
			Ranks:     ranks,
			Lanes:     ranks,
			Rounds:    bits.Len(uint(ranks - 1)),
			Events:    single.events,
			VirtualUs: single.virtual.Duration().Seconds() * 1e6,
			Identical: single.events == shard.events && shard.events == par.events &&
				single.virtual == shard.virtual && shard.virtual == par.virtual,
			SingleEvPerSec:   float64(single.events) / single.wall.Seconds(),
			ShardEvPerSec:    float64(shard.events) / shard.wall.Seconds(),
			ParallelEvPerSec: float64(par.events) / par.wall.Seconds(),
			Epochs:           shard.stats.Epochs,
			Stalls:           shard.stats.Stalls,
			Routed:           shard.stats.Routed,
			MailboxHighWater: shard.stats.MailboxHighWater,
		}
		if p.SingleEvPerSec > 0 {
			p.Speedup = p.ShardEvPerSec / p.SingleEvPerSec
		}
		if p.ShardEvPerSec > 0 {
			p.ParallelSpeedup = p.ParallelEvPerSec / p.ShardEvPerSec
		}
		rep.Points = append(rep.Points, p)
	}
	coll, err := scaleCollectives(o.Full)
	if err != nil {
		return rep, err
	}
	rep.Collectives = coll
	rep.LaneAllocsPerOp = laneAllocsPerOp(512)
	return rep, nil
}

// FormatScale renders the report as a table.
func FormatScale(r ScaleReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kernel scale sweep (dissemination barrier, %d iterations)\n", scaleIters)
	fmt.Fprintf(&b, "  %6s %6s %10s %12s %12s %12s %8s %7s %9s %5s\n",
		"ranks", "lanes", "events", "single ev/s", "shard ev/s", "par ev/s", "speedup", "epochs", "routed", "ident")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %6d %6d %10d %12.0f %12.0f %12.0f %7.2fx %7d %9d %5v\n",
			p.Ranks, p.Lanes, p.Events, p.SingleEvPerSec, p.ShardEvPerSec, p.ParallelEvPerSec,
			p.Speedup, p.Epochs, p.Routed, p.Identical)
	}
	if len(r.Collectives) > 0 {
		fmt.Fprintf(&b, "  full-MPI collectives at scale (sharded vs single kernel)\n")
		fmt.Fprintf(&b, "  %-18s %10s %6s %8s %12s %8s %5s\n", "backend", "op", "ranks", "bytes", "virtual µs", "speedup", "ident")
		for _, p := range r.Collectives {
			fmt.Fprintf(&b, "  %-18s %10s %6d %8d %12.1f %7.2fx %5v\n", collBackend(p), p.Op, p.Ranks, p.Bytes, p.VirtualUs, p.Speedup, p.Identical)
		}
	}
	fmt.Fprintf(&b, "  lane scheduling steady state: %d allocs/event\n", r.LaneAllocsPerOp)
	return b.String()
}

// Static floors the gate enforces regardless of baseline.
const (
	scaleMinSpeedup = 2.0  // sharded over single at the largest >=1024-rank point
	scaleGateRanks  = 1024 // the floor applies from this scale up
	// The pinned-worker executor must never be meaningfully slower than the
	// sequential sharded kernel (slack absorbs the per-epoch handoff and
	// timer noise), and on a machine with cores to use it must actually
	// parallelize. The speedup floor keys off the report's own MaxProcs, so
	// single-core CI runners gate overhead without demanding the impossible.
	scaleParSlack      = 0.90
	scaleMinParSpeedup = 1.5
)

// CheckScale compares a fresh report against the committed baseline and
// returns the list of regressions (empty means the gate passes). tol is the
// fractional slack on events/sec (0.10 = fail on >10% regression).
// Allocation counts are exact, so any increase fails. base may be nil
// (first run): only the static floors apply.
func CheckScale(cur ScaleReport, base *ScaleReport, tol float64) []string {
	var fails []string
	if cur.LaneAllocsPerOp != 0 {
		fails = append(fails, fmt.Sprintf("lane scheduling allocates %d objects/event, want 0", cur.LaneAllocsPerOp))
	}
	var gatePoint *ScalePoint
	for i := range cur.Points {
		p := &cur.Points[i]
		if !p.Identical {
			fails = append(fails, fmt.Sprintf("ranks=%d: kernels diverged (events or virtual time differ between single, sharded, and parallel)", p.Ranks))
		}
		if p.Ranks >= scaleGateRanks {
			gatePoint = p
		}
	}
	if gatePoint == nil {
		fails = append(fails, fmt.Sprintf("no >=%d-rank point in report", scaleGateRanks))
	} else {
		if gatePoint.Speedup < scaleMinSpeedup {
			fails = append(fails, fmt.Sprintf("ranks=%d speedup %.2fx below the %.1fx floor", gatePoint.Ranks, gatePoint.Speedup, scaleMinSpeedup))
		}
		if gatePoint.ParallelEvPerSec < gatePoint.ShardEvPerSec*scaleParSlack {
			fails = append(fails, fmt.Sprintf("ranks=%d parallel executor %.0f ev/s slower than sequential sharded %.0f ev/s",
				gatePoint.Ranks, gatePoint.ParallelEvPerSec, gatePoint.ShardEvPerSec))
		}
		if cur.MaxProcs >= 2 && gatePoint.ParallelSpeedup < scaleMinParSpeedup {
			fails = append(fails, fmt.Sprintf("ranks=%d parallel speedup %.2fx below the %.1fx floor on a %d-core machine",
				gatePoint.Ranks, gatePoint.ParallelSpeedup, scaleMinParSpeedup, cur.MaxProcs))
		}
	}
	seenBackend := map[string]bool{}
	for _, p := range cur.Collectives {
		seenBackend[collBackend(p)] = true
		if !p.Identical {
			fails = append(fails, fmt.Sprintf("%s %s ranks=%d: per-rank finish times diverged between kernels", collBackend(p), p.Op, p.Ranks))
		}
	}
	for _, bk := range scaleCollBackends {
		if !seenBackend[bk.backend] {
			fails = append(fails, fmt.Sprintf("no %s collective points in report", bk.backend))
		}
	}
	if base == nil {
		return fails
	}
	if cur.LaneAllocsPerOp > base.LaneAllocsPerOp {
		fails = append(fails, fmt.Sprintf("lane allocs/event %d exceeds baseline %d", cur.LaneAllocsPerOp, base.LaneAllocsPerOp))
	}
	curByRanks := map[int]ScalePoint{}
	for _, p := range cur.Points {
		curByRanks[p.Ranks] = p
	}
	for _, bp := range base.Points {
		p, ok := curByRanks[bp.Ranks]
		if !ok {
			// -full baselines carry 16384; plain CI runs stop at 4096.
			continue
		}
		if p.ShardEvPerSec < bp.ShardEvPerSec*(1-tol) {
			fails = append(fails, fmt.Sprintf("ranks=%d sharded %.0f ev/s regressed >%.0f%% from baseline %.0f",
				bp.Ranks, p.ShardEvPerSec, tol*100, bp.ShardEvPerSec))
		}
		if p.SingleEvPerSec < bp.SingleEvPerSec*(1-tol) {
			fails = append(fails, fmt.Sprintf("ranks=%d single %.0f ev/s regressed >%.0f%% from baseline %.0f",
				bp.Ranks, p.SingleEvPerSec, tol*100, bp.SingleEvPerSec))
		}
	}
	return fails
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r ScaleReport) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// UnmarshalScale parses a BENCH_scale.json baseline.
func UnmarshalScale(data []byte) (ScaleReport, error) {
	var r ScaleReport
	err := json.Unmarshal(data, &r)
	return r, err
}
