package bench

import (
	"strings"
	"testing"
)

func TestScaleWorldKernelsAgree(t *testing.T) {
	single := dissemWorld(64, 0, 4, false)
	seq := dissemWorld(64, 64, 4, false)
	par := dissemWorld(64, 64, 4, true)
	if single.events != seq.events || seq.events != par.events {
		t.Fatalf("event counts diverged: single=%d seq=%d par=%d", single.events, seq.events, par.events)
	}
	if single.virtual != seq.virtual || seq.virtual != par.virtual {
		t.Fatalf("virtual times diverged: single=%v seq=%v par=%v", single.virtual, seq.virtual, par.virtual)
	}
	if seq.stats.Routed == 0 {
		t.Fatal("sharded run routed no cross-lane envelopes")
	}
}

func TestScaleCollectiveParitySmall(t *testing.T) {
	for _, backend := range []string{"mem", "meiko/lowlatency", "cluster/tcp"} {
		for _, op := range []string{"barrier", "bcast", "allreduce"} {
			single, _, err := collAtScale(backend, op, 16, 0, 256)
			if err != nil {
				t.Fatalf("%s %s single: %v", backend, op, err)
			}
			shard, _, err := collAtScale(backend, op, 16, 16, 256)
			if err != nil {
				t.Fatalf("%s %s sharded: %v", backend, op, err)
			}
			for i := range single {
				if single[i] != shard[i] {
					t.Fatalf("%s %s: rank %d finished at %v on single, %v on sharded", backend, op, i, single[i], shard[i])
				}
			}
		}
	}
}

func TestCheckScaleGate(t *testing.T) {
	good := ScaleReport{
		SchemaVersion: scaleSchemaVersion,
		MaxProcs:      1,
		Points: []ScalePoint{
			{Ranks: 64, Identical: true, SingleEvPerSec: 1e6, ShardEvPerSec: 3e6, Speedup: 3, ParallelEvPerSec: 3e6, ParallelSpeedup: 1},
			{Ranks: 1024, Identical: true, SingleEvPerSec: 1e6, ShardEvPerSec: 3e6, Speedup: 3, ParallelEvPerSec: 3e6, ParallelSpeedup: 1},
		},
		Collectives: []ScaleCollPoint{
			{Op: "barrier", Ranks: 1024, Identical: true}, // backendless = mem (schema v0)
			{Backend: "meiko/lowlatency", Op: "barrier", Ranks: 256, Identical: true},
			{Backend: "cluster/tcp", Op: "barrier", Ranks: 64, Identical: true},
		},
	}
	if fails := CheckScale(good, nil, 0.10); len(fails) != 0 {
		t.Fatalf("clean report failed the gate: %v", fails)
	}

	bad := good
	bad.LaneAllocsPerOp = 1
	requireFail(t, CheckScale(bad, nil, 0.10), "allocates")

	bad = good
	bad.Points = append([]ScalePoint(nil), good.Points...)
	bad.Points[1].Identical = false
	requireFail(t, CheckScale(bad, nil, 0.10), "diverged")

	bad = good
	bad.Points = append([]ScalePoint(nil), good.Points...)
	bad.Points[1].Speedup = 1.5
	requireFail(t, CheckScale(bad, nil, 0.10), "below the")

	bad = good
	bad.Points = good.Points[:1] // no >=1024-rank point
	requireFail(t, CheckScale(bad, nil, 0.10), "no >=1024-rank point")

	bad = good
	bad.Collectives = append([]ScaleCollPoint(nil), good.Collectives...)
	bad.Collectives[0].Identical = false
	requireFail(t, CheckScale(bad, nil, 0.10), "finish times diverged")

	// A backend silently dropping out of the collective sweep fails.
	bad = good
	bad.Collectives = good.Collectives[:2] // no cluster points
	requireFail(t, CheckScale(bad, nil, 0.10), "no cluster/tcp collective points")

	// The parallel executor must not run meaningfully slower than the
	// sequential sharded kernel, on any machine.
	bad = good
	bad.Points = append([]ScalePoint(nil), good.Points...)
	bad.Points[1].ParallelEvPerSec = 3e6 * 0.8
	bad.Points[1].ParallelSpeedup = 0.8
	requireFail(t, CheckScale(bad, nil, 0.10), "slower than sequential")

	// The 1.5x parallel-speedup floor binds only on multi-core machines:
	// a 1.0x report passes from a single-core runner, fails from a
	// multi-core one.
	multi := good
	multi.MaxProcs = 8
	requireFail(t, CheckScale(multi, nil, 0.10), "below the 1.5x floor")
	multi.Points = append([]ScalePoint(nil), good.Points...)
	multi.Points[1].ParallelEvPerSec = 3e6 * 2
	multi.Points[1].ParallelSpeedup = 2
	if fails := CheckScale(multi, nil, 0.10); len(fails) != 0 {
		t.Fatalf("2x parallel speedup failed the multi-core gate: %v", fails)
	}

	// Baseline comparisons: a >10% events/sec drop fails, a smaller one and
	// a baseline-only 16384 point do not.
	base := good
	base.Points = append([]ScalePoint(nil), good.Points...)
	base.Points = append(base.Points, ScalePoint{Ranks: 16384, Identical: true, SingleEvPerSec: 1e6, ShardEvPerSec: 3e6, Speedup: 3})
	cur := good
	cur.Points = append([]ScalePoint(nil), good.Points...)
	cur.Points[1].ShardEvPerSec = 3e6 * 0.95
	if fails := CheckScale(cur, &base, 0.10); len(fails) != 0 {
		t.Fatalf("5%% drop tripped the 10%% gate: %v", fails)
	}
	cur.Points[1].ShardEvPerSec = 3e6 * 0.8
	requireFail(t, CheckScale(cur, &base, 0.10), "regressed")

	cur = good
	base.LaneAllocsPerOp = 0
	cur.LaneAllocsPerOp = 0
	base2 := base
	cur2 := cur
	cur2.LaneAllocsPerOp = 0
	base2.LaneAllocsPerOp = -1 // any increase over baseline fails
	requireFail(t, CheckScale(cur2, &base2, 0.10), "exceeds baseline")
}

func requireFail(t *testing.T, fails []string, substr string) {
	t.Helper()
	for _, f := range fails {
		if strings.Contains(f, substr) {
			return
		}
	}
	t.Fatalf("gate did not report %q: %v", substr, fails)
}

func TestScaleReportRoundTrip(t *testing.T) {
	rep := ScaleReport{
		SchemaVersion:   scaleSchemaVersion,
		MaxProcs:        4,
		Points:          []ScalePoint{{Ranks: 64, Lanes: 64, Events: 7744, Identical: true, Speedup: 2.5}},
		Collectives:     []ScaleCollPoint{{Backend: "meiko/lowlatency", Op: "bcast", Ranks: 1024, Bytes: 1024, Identical: true}},
		LaneAllocsPerOp: 0,
	}
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalScale(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 1 || back.Points[0].Ranks != 64 || len(back.Collectives) != 1 {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
	if back.SchemaVersion != scaleSchemaVersion || back.MaxProcs != 4 || collBackend(back.Collectives[0]) != "meiko/lowlatency" {
		t.Fatalf("round trip dropped v1 fields: %+v", back)
	}
	// A schema-v0 (mem-only) baseline still parses: missing fields default
	// and backendless collective points read as mem.
	v0, err := UnmarshalScale([]byte(`{"points":[{"ranks":1024}],"collectives":[{"op":"barrier","ranks":1024,"identical":true}],"lane_allocs_per_op":0}`))
	if err != nil {
		t.Fatal(err)
	}
	if v0.SchemaVersion != 0 || collBackend(v0.Collectives[0]) != "mem" {
		t.Fatalf("v0 baseline misparsed: %+v", v0)
	}
}
