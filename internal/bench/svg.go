package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// SVG renders the figure as a standalone line chart, log-scaled on X when
// the swept values span more than a decade (message sizes) and linear
// otherwise (process counts). No dependencies; the output opens in any
// browser next to the paper's plots.
func (f Figure) SVG() string {
	const (
		w, h                      = 720, 440
		mLeft, mRight, mTop, mBot = 70, 160, 40, 50
	)
	plotW := float64(w - mLeft - mRight)
	plotH := float64(h - mTop - mBot)

	var xs []int
	seen := map[int]bool{}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if len(xs) == 0 {
		return fmt.Sprintf("<svg xmlns=%q width=%q height=%q/>", "http://www.w3.org/2000/svg", "10", "10")
	}
	sort.Ints(xs)
	minX, maxX := float64(xs[0]), float64(xs[len(xs)-1])
	logX := maxX/math.Max(minX, 1) > 12
	if minY == maxY {
		maxY = minY + 1
	}
	// Pad the Y range and anchor at zero when it is close.
	if minY > 0 && minY < maxY/3 {
		minY = 0
	}
	maxY *= 1.05

	xpos := func(x float64) float64 {
		if logX {
			lo, hi := math.Log(math.Max(minX, 1)), math.Log(math.Max(maxX, 2))
			return float64(mLeft) + plotW*(math.Log(math.Max(x, 1))-lo)/(hi-lo)
		}
		if maxX == minX {
			return float64(mLeft) + plotW/2
		}
		return float64(mLeft) + plotW*(x-minX)/(maxX-minX)
	}
	ypos := func(y float64) float64 {
		return float64(mTop) + plotH*(1-(y-minY)/(maxY-minY))
	}

	palette := []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="15" font-weight="bold">%s: %s</text>`, mLeft, f.ID, xmlEscape(f.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, mLeft, h-mBot, w-mRight, h-mBot)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, mLeft, mTop, mLeft, h-mBot)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`, mLeft+int(plotW/2), h-12, xmlEscape(f.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`, mTop+int(plotH/2), mTop+int(plotH/2), xmlEscape(f.YLabel))

	// X ticks at the swept values (thinned to <= 8 labels).
	step := (len(xs) + 7) / 8
	for i, x := range xs {
		px := xpos(float64(x))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`, px, h-mBot, px, h-mBot+4)
		if i%step == 0 || i == len(xs)-1 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`, px, h-mBot+18, compactInt(x))
		}
	}
	// Y ticks: five divisions.
	for i := 0; i <= 5; i++ {
		y := minY + (maxY-minY)*float64(i)/5
		py := ypos(y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`, mLeft, py, w-mRight, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`, mLeft-6, py+4, compactFloat(y))
	}

	// Series.
	for si, s := range f.Series {
		color := palette[si%len(palette)]
		pts := append([]Point(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		var poly []string
		for _, p := range pts {
			poly = append(poly, fmt.Sprintf("%.1f,%.1f", xpos(float64(p.X)), ypos(p.Y)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`, strings.Join(poly, " "), color)
		for _, p := range pts {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, xpos(float64(p.X)), ypos(p.Y), color)
		}
		// Legend.
		ly := mTop + 10 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`, w-mRight+10, ly, w-mRight+30, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`, w-mRight+36, ly+4, xmlEscape(s.Name))
	}
	for i, n := range f.Notes {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" fill="#555">%s</text>`, mLeft, h-mBot+34+i*12, xmlEscape(n))
	}
	b.WriteString("</svg>")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func compactInt(x int) string {
	switch {
	case x >= 1<<20 && x%(1<<20) == 0:
		return fmt.Sprintf("%dM", x>>20)
	case x >= 1024 && x%1024 == 0:
		return fmt.Sprintf("%dK", x>>10)
	default:
		return fmt.Sprint(x)
	}
}

func compactFloat(y float64) string {
	switch {
	case y >= 100000:
		return fmt.Sprintf("%.0fk", y/1000)
	case y >= 1000:
		return fmt.Sprintf("%.1fk", y/1000)
	case y >= 10:
		return fmt.Sprintf("%.0f", y)
	default:
		return fmt.Sprintf("%.2f", y)
	}
}
