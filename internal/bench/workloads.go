package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/workload"
	"repro/mpi"
	"repro/platform/registry"
)

// The -workloads sweep: every registered macro-workload pattern over the
// representative backends × kernels grid. Each (backend, pattern) cell
// records the workload twice on the single-lane kernel (the traces must
// be byte-identical), then replays the recording on the sharded and
// parallel kernels (the replayed event streams and per-rank finish times
// must match event for event). Latency percentiles and throughput are
// virtual-time numbers, so the whole report is bit-reproducible — CI runs
// the sweep twice and compares bytes.

// WorkloadPoint is one (workload, backend, kernel) cell.
type WorkloadPoint struct {
	Workload   string  `json:"workload"`
	Backend    string  `json:"backend"`
	Lanes      int     `json:"lanes"`
	Parallel   bool    `json:"parallel,omitempty"`
	Events     int     `json:"events"`      // SLO-op completions scored
	TraceBytes int     `json:"trace_bytes"` // encoded size of the recording
	ElapsedUS  float64 `json:"elapsed_us"`  // slowest rank's virtual finish
	P50US      float64 `json:"p50_us"`
	P99US      float64 `json:"p99_us"`
	P999US     float64 `json:"p999_us"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	MBPerSec   float64 `json:"mb_per_sec"`
	RerecordOK bool    `json:"rerecord_ok"` // second recording byte-identical
	ReplayOK   bool    `json:"replay_ok"`   // replay reproduced the recording
}

// WorkloadsReport is the machine-readable record of one sweep
// (BENCH_workloads.json).
type WorkloadsReport struct {
	Ranks  int             `json:"ranks"`
	Seed   int64           `json:"seed"`
	Points []WorkloadPoint `json:"points"`
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r WorkloadsReport) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// UnmarshalWorkloads parses a committed baseline.
func UnmarshalWorkloads(data []byte) (WorkloadsReport, error) {
	var r WorkloadsReport
	err := json.Unmarshal(data, &r)
	return r, err
}

const (
	workloadRanks = 8
	workloadSeed  = 1
)

// workloadBackends are the swept backends: the reference fabric, the
// paper's Meiko port, and the ATM cluster's TCP transport.
var workloadBackends = []string{"mem", "meiko/lowlatency", "cluster/tcp"}

// workloadKernels are the swept kernels: single-lane (the recording
// baseline), sharded sequential, and sharded with pinned parallel
// workers.
var workloadKernels = []struct {
	Lanes    int
	Parallel bool
}{
	{1, false},
	{2, false},
	{8, true},
}

// Workloads sweeps every registered pattern across backends × kernels.
func Workloads(o Opts) (WorkloadsReport, error) {
	rep := WorkloadsReport{Ranks: workloadRanks, Seed: workloadSeed}
	for _, backend := range workloadBackends {
		for _, pattern := range workload.Names() {
			pts, err := workloadCell(backend, pattern)
			if err != nil {
				return rep, err
			}
			rep.Points = append(rep.Points, pts...)
		}
	}
	return rep, nil
}

// workloadCell records one (backend, pattern) pair on the single-lane
// kernel and replays it on the sharded kernels.
func workloadCell(backend, pattern string) ([]WorkloadPoint, error) {
	cfg := workload.Config{
		Pattern: pattern, Backend: backend,
		Ranks: workloadRanks, Seed: workloadSeed,
	}
	var pts []WorkloadPoint
	var base *workload.Result
	var baseBytes []byte
	for _, k := range workloadKernels {
		w, err := workloadWorld(backend, pattern, k.Lanes, k.Parallel)
		if err != nil {
			return nil, err
		}
		pt := WorkloadPoint{Workload: pattern, Backend: backend, Lanes: k.Lanes, Parallel: k.Parallel}
		var res *workload.Result
		if base == nil {
			// The single-lane recording: run it twice; the encodings
			// must agree byte for byte.
			if res, err = workload.Run(w, cfg); err != nil {
				return nil, fmt.Errorf("workloads %s/%s: %w", backend, pattern, err)
			}
			baseBytes = res.Trace.Marshal()
			w2, err := workloadWorld(backend, pattern, k.Lanes, k.Parallel)
			if err != nil {
				return nil, err
			}
			again, err := workload.Run(w2, cfg)
			if err != nil {
				return nil, fmt.Errorf("workloads %s/%s re-record: %w", backend, pattern, err)
			}
			pt.RerecordOK = bytes.Equal(baseBytes, again.Trace.Marshal())
			pt.ReplayOK = true
			base = res
		} else {
			res, err = workload.Replay(w, base.Trace)
			var div *workload.Divergence
			switch {
			case err == nil:
				pt.ReplayOK = workloadRanksMatch(res, base)
				pt.RerecordOK = true
			case errors.As(err, &div):
				pt.ReplayOK = false
			default:
				return nil, fmt.Errorf("workloads %s/%s lanes=%d: %w", backend, pattern, k.Lanes, err)
			}
		}
		if res != nil {
			s := res.Summary
			pt.Events = s.Events
			pt.TraceBytes = len(baseBytes)
			pt.ElapsedUS = s.ElapsedUS
			pt.P50US, pt.P99US, pt.P999US = s.P50US, s.P99US, s.P999US
			pt.OpsPerSec, pt.MBPerSec = s.OpsPerSec, s.MBPerSec
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

func workloadWorld(backend, pattern string, lanes int, parallel bool) (*mpi.World, error) {
	spec := registry.SpecFor(backend)
	spec.Ranks = workloadRanks
	spec.Seed = workloadSeed
	spec.Workload = pattern
	if lanes > 1 {
		spec.Lanes = lanes
		spec.Parallel = parallel
	}
	w, err := registry.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("workloads %s lanes=%d: %w", backend, lanes, err)
	}
	return w, nil
}

// workloadRanksMatch reports whether a replay's per-rank finish times
// equal the recording's.
func workloadRanksMatch(got, want *workload.Result) bool {
	if len(got.Report.RankElapsed) != len(want.Report.RankElapsed) {
		return false
	}
	for i, d := range got.Report.RankElapsed {
		if d != want.Report.RankElapsed[i] {
			return false
		}
	}
	return true
}

// FormatWorkloads renders the sweep as the text table the CLI prints.
func FormatWorkloads(r WorkloadsReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Workload sweep: %d-rank worlds, seed %d (latencies in virtual us)\n\n", r.Ranks, r.Seed)
	fmt.Fprintf(&b, "%-10s %-18s %5s %4s %7s %9s %9s %9s %10s %9s %9s %9s\n",
		"workload", "backend", "lanes", "par", "events", "p50", "p99", "p999", "ops/s", "MB/s", "rerecord", "replay")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10s %-18s %5d %4v %7d %9.1f %9.1f %9.1f %10.0f %9.2f %9v %9v\n",
			p.Workload, p.Backend, p.Lanes, p.Parallel, p.Events,
			p.P50US, p.P99US, p.P999US, p.OpsPerSec, p.MBPerSec, p.RerecordOK, p.ReplayOK)
	}
	return b.String()
}

// CheckWorkloads gates the sweep. Static floors, baseline or not: the
// full backends × patterns × kernels grid must be present, every
// recording must re-record byte-identically, every replay must reproduce
// its recording, and every point must score at least one SLO event.
// Against a committed baseline: no point may disappear, and neither p99
// latency nor throughput may regress more than tol on any point (the
// numbers are virtual time, so a drift means the model changed — the
// tolerance leaves room for deliberate, reviewed cost-model edits
// without letting them slip through unnoticed on a point that was not
// supposed to move).
func CheckWorkloads(r WorkloadsReport, base *WorkloadsReport, tol float64) []string {
	var fails []string
	key := func(p WorkloadPoint) string {
		return fmt.Sprintf("%s|%s|%d|%v", p.Workload, p.Backend, p.Lanes, p.Parallel)
	}
	cur := make(map[string]WorkloadPoint, len(r.Points))
	for _, p := range r.Points {
		cur[key(p)] = p
	}
	for _, backend := range workloadBackends {
		for _, pattern := range workload.Names() {
			for _, k := range workloadKernels {
				id := fmt.Sprintf("%s|%s|%d|%v", pattern, backend, k.Lanes, k.Parallel)
				p, ok := cur[id]
				if !ok {
					fails = append(fails, fmt.Sprintf("missing sweep point %s", id))
					continue
				}
				if !p.RerecordOK {
					fails = append(fails, fmt.Sprintf("%s: re-record was not byte-identical", id))
				}
				if !p.ReplayOK {
					fails = append(fails, fmt.Sprintf("%s: replay diverged from the recording", id))
				}
				if p.Events <= 0 {
					fails = append(fails, fmt.Sprintf("%s: no SLO events scored", id))
				}
			}
		}
	}
	if base == nil {
		return fails
	}
	for _, bp := range base.Points {
		p, ok := cur[key(bp)]
		if !ok {
			fails = append(fails, fmt.Sprintf("baseline point %s dropped from the sweep", key(bp)))
			continue
		}
		if bp.P99US > 0 && p.P99US > bp.P99US*(1+tol) {
			fails = append(fails, fmt.Sprintf("%s: p99 %.1fus vs baseline %.1fus", key(bp), p.P99US, bp.P99US))
		}
		if bp.OpsPerSec > 0 && p.OpsPerSec < bp.OpsPerSec*(1-tol) {
			fails = append(fails, fmt.Sprintf("%s: throughput %.0f ops/s vs baseline %.0f", key(bp), p.OpsPerSec, bp.OpsPerSec))
		}
	}
	return fails
}
