package bench

import (
	"strings"
	"testing"
)

// The full sweep is exercised (and double-run) by the CI workloads job;
// here one cell proves the record/re-record/replay plumbing end to end.
func TestWorkloadCell(t *testing.T) {
	pts, err := workloadCell("mem", "halo")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(workloadKernels) {
		t.Fatalf("got %d points, want %d", len(pts), len(workloadKernels))
	}
	for _, p := range pts {
		if !p.RerecordOK || !p.ReplayOK {
			t.Errorf("lanes=%d: rerecord=%v replay=%v", p.Lanes, p.RerecordOK, p.ReplayOK)
		}
		if p.Events == 0 || p.P50US <= 0 || p.OpsPerSec <= 0 {
			t.Errorf("lanes=%d: degenerate point %+v", p.Lanes, p)
		}
		if p.TraceBytes == 0 {
			t.Errorf("lanes=%d: trace size not recorded", p.Lanes)
		}
	}
	// The sharded replays must score the same virtual-time summary.
	for _, p := range pts[1:] {
		if p.P99US != pts[0].P99US || p.ElapsedUS != pts[0].ElapsedUS {
			t.Errorf("lanes=%d summary differs from single-lane: %+v vs %+v", p.Lanes, p, pts[0])
		}
	}
}

func TestCheckWorkloadsGate(t *testing.T) {
	rep := WorkloadsReport{Ranks: workloadRanks, Seed: workloadSeed}
	for _, backend := range workloadBackends {
		for _, pattern := range []string{"allreduce", "halo", "rpc", "shuffle", "stencil"} {
			for _, k := range workloadKernels {
				rep.Points = append(rep.Points, WorkloadPoint{
					Workload: pattern, Backend: backend, Lanes: k.Lanes, Parallel: k.Parallel,
					Events: 160, P50US: 100, P99US: 200, P999US: 300, OpsPerSec: 1000, MBPerSec: 5,
					RerecordOK: true, ReplayOK: true,
				})
			}
		}
	}
	if fails := CheckWorkloads(rep, nil, 0.10); len(fails) != 0 {
		t.Fatalf("clean report failed static floors: %v", fails)
	}

	broken := rep
	broken.Points = append([]WorkloadPoint(nil), rep.Points...)
	broken.Points[0].ReplayOK = false
	if fails := CheckWorkloads(broken, nil, 0.10); len(fails) != 1 || !strings.Contains(fails[0], "diverged") {
		t.Fatalf("divergence not gated: %v", fails)
	}

	missing := rep
	missing.Points = rep.Points[1:]
	if fails := CheckWorkloads(missing, nil, 0.10); len(fails) == 0 {
		t.Fatal("missing grid point not gated")
	}

	regressed := rep
	regressed.Points = append([]WorkloadPoint(nil), rep.Points...)
	regressed.Points[3].P99US *= 1.5
	regressed.Points[4].OpsPerSec *= 0.5
	fails := CheckWorkloads(regressed, &rep, 0.10)
	if len(fails) != 2 {
		t.Fatalf("want p99 + throughput regressions flagged, got %v", fails)
	}
	if !strings.Contains(fails[0], "p99") || !strings.Contains(fails[1], "throughput") {
		t.Fatalf("unexpected gate messages: %v", fails)
	}

	if fails := CheckWorkloads(rep, &regressed, 0.10); len(fails) != 0 {
		t.Fatalf("improvement flagged as regression: %v", fails)
	}
}
