package coll

// All-to-all algorithms: the linear shift (round i exchanges with
// rank±i, any communicator size) and the pairwise XOR exchange (round i
// pairs rank with rank^i — a perfect matching each round, contention-free
// on bidirectional fabrics; power-of-two sizes only).

func init() {
	register("alltoall", &Alg{
		Name:   "linear-shift",
		Rounds: func(h Hint) int { return h.Ranks - 1 },
		Run:    func(c Comm, a Args) error { return alltoallShift(c, a.Send, a.Recv) },
	})
	register("alltoall", &Alg{
		Name:     "pairwise",
		Pow2Only: true,
		Rounds:   func(h Hint) int { return h.Ranks - 1 },
		Run:      func(c Comm, a Args) error { return alltoallPairwise(c, a.Send, a.Recv) },
	})
	register("alltoallv", &Alg{
		Name:   "linear-shift",
		Rounds: func(h Hint) int { return h.Ranks - 1 },
		Run: func(c Comm, a Args) error {
			return alltoallvShift(c, a.Send, a.SCounts, a.SDispls, a.Recv, a.RCounts, a.RDispls)
		},
	})
}

// alltoallShift: in round i, send to (rank+i) and receive from (rank-i).
func alltoallShift(c Comm, send, recv []byte) error {
	p := c.Size()
	me := c.Rank()
	n := len(send) / p
	copy(recv[me*n:(me+1)*n], send[me*n:(me+1)*n])
	for round := 1; round < p; round++ {
		to := (me + round) % p
		from := (me - round + p) % p
		if err := sendrecv(c, to, send[to*n:(to+1)*n], from, recv[from*n:(from+1)*n], tagAlltoall); err != nil {
			return err
		}
	}
	return nil
}

// alltoallPairwise: in round i, exchange with partner rank^i.
func alltoallPairwise(c Comm, send, recv []byte) error {
	p := c.Size()
	me := c.Rank()
	n := len(send) / p
	copy(recv[me*n:(me+1)*n], send[me*n:(me+1)*n])
	for round := 1; round < p; round++ {
		peer := me ^ round
		if err := sendrecv(c, peer, send[peer*n:(peer+1)*n], peer, recv[peer*n:(peer+1)*n], tagAlltoall); err != nil {
			return err
		}
	}
	return nil
}

// alltoallvShift is the linear shift over per-pair counts/displacements.
func alltoallvShift(c Comm, send []byte, scounts, sdispls []int, recv []byte, rcounts, rdispls []int) error {
	p := c.Size()
	me := c.Rank()
	copy(recv[rdispls[me]:rdispls[me]+rcounts[me]], send[sdispls[me]:sdispls[me]+scounts[me]])
	for round := 1; round < p; round++ {
		to := (me + round) % p
		from := (me - round + p) % p
		if err := sendrecv(c, to, send[sdispls[to]:sdispls[to]+scounts[to]],
			from, recv[rdispls[from]:rdispls[from]+rcounts[from]], tagAlltoall); err != nil {
			return err
		}
	}
	return nil
}
