package coll

// Barrier algorithms: the dissemination barrier (log2 P rounds of
// pairwise tokens) and the broadcast-assisted tree (binomial fan-in to
// rank 0 plus a broadcast release, which rides the Meiko's hardware
// broadcast when the platform has one — Yu et al.'s NIC-assisted barrier
// shape).

func init() {
	register("barrier", &Alg{
		Name:   "dissemination",
		Rounds: func(h Hint) int { return log2Ceil(h.Ranks) },
		Run:    func(c Comm, a Args) error { return barrierDissemination(c) },
	})
	register("barrier", &Alg{
		Name:   "tree",
		Rounds: func(h Hint) int { return log2Ceil(h.Ranks) + 1 },
		Run:    func(c Comm, a Args) error { return barrierTree(c, a.Tune) },
	})
}

// barrierDissemination: in round k every rank sends a token to
// (rank + 2^k) and waits for one from (rank - 2^k); after ceil(log2 P)
// rounds everyone has transitively heard from everyone.
func barrierDissemination(c Comm) error {
	p := c.Size()
	me := c.Rank()
	token := []byte{0}
	in := make([]byte, 1)
	for k := 1; k < p; k <<= 1 {
		to := (me + k) % p
		from := (me - k + p) % p
		if err := sendrecv(c, to, token, from, in, tagBarrier); err != nil {
			return err
		}
	}
	return nil
}

// barrierTree: binomial fan-in of tokens to rank 0, then a one-byte
// broadcast release resolved through the bcast registry — on hardware
// platforms the release is a single broadcast transaction.
func barrierTree(c Comm, t Tuning) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	me := c.Rank()
	token := []byte{0}
	for mask := 1; mask < p; mask <<= 1 {
		if me&mask != 0 {
			if err := c.Send(me&^mask, tagBarrier, token); err != nil {
				return err
			}
			break
		}
		if src := me | mask; src < p {
			if err := c.Recv(src, tagBarrier, token); err != nil {
				return err
			}
		}
	}
	return Run(c, t, "bcast", 1, Args{Root: 0, Buf: token})
}
