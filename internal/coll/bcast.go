package coll

// Broadcast algorithms: the paper's cluster linear succession, MPICH's
// binomial tree, the segmented pipeline for bulk payloads, and the Meiko
// hardware broadcast.

func init() {
	register("bcast", &Alg{
		Name:   "binomial",
		Rounds: func(h Hint) int { return log2Ceil(h.Ranks) },
		Run:    func(c Comm, a Args) error { return bcastBinomial(c, a.Root, a.Buf) },
	})
	register("bcast", &Alg{
		Name:   "linear",
		Rounds: func(h Hint) int { return h.Ranks - 1 },
		Run:    func(c Comm, a Args) error { return bcastLinear(c, a.Root, a.Buf) },
	})
	register("bcast", &Alg{
		Name: "pipelined",
		Rounds: func(h Hint) int {
			nseg := (h.Bytes + bcastSegment - 1) / bcastSegment
			if nseg == 0 {
				nseg = 1
			}
			return nseg + h.Ranks - 2
		},
		Run: func(c Comm, a Args) error { return bcastPipelined(c, a.Root, a.Buf) },
	})
	register("bcast", &Alg{
		Name:    "hardware",
		NeedsHW: true,
		Rounds:  func(h Hint) int { return 1 },
		Run:     func(c Comm, a Args) error { return c.HWBcast(a.Root, a.Buf) },
	})
}

// bcastLinear is the paper's cluster broadcast: a succession of
// point-to-point messages from the root.
func bcastLinear(c Comm, root int, buf []byte) error {
	if c.Rank() != root {
		return c.Recv(root, tagBcast, buf)
	}
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if err := c.Send(r, tagBcast, buf); err != nil {
			return err
		}
	}
	return nil
}

// bcastBinomial is MPICH's tree broadcast over point-to-point messages:
// each rank receives from the parent at its lowest set bit (in
// root-relative numbering), then forwards down each lower bit.
func bcastBinomial(c Comm, root int, buf []byte) error {
	p := c.Size()
	rel := (c.Rank() - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			parent := ((rel - mask) + root) % p
			if err := c.Recv(parent, tagBcast, buf); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if child := rel + mask; child < p {
			if err := c.Send((child+root)%p, tagBcast, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// bcastSegment is the pipeline stage size for the pipelined broadcast.
const bcastSegment = 8 * 1024

// bcastPipelined streams buf through the chain root, root+1, ..., in
// bcastSegment-sized pieces: while rank r forwards segment k, rank r-1 is
// already sending it segment k+1. Completion latency approaches one
// traversal plus one full payload time, instead of log2(P) payload times.
func bcastPipelined(c Comm, root int, buf []byte) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	me := c.Rank()
	rel := (me - root + p) % p
	prev := (me - 1 + p) % p
	next := (me + 1) % p
	last := rel == p-1

	nseg := (len(buf) + bcastSegment - 1) / bcastSegment
	if nseg == 0 {
		nseg = 1
	}
	var fwd Req
	for k := 0; k < nseg; k++ {
		lo := k * bcastSegment
		hi := lo + bcastSegment
		if hi > len(buf) {
			hi = len(buf)
		}
		seg := buf[lo:hi]
		if rel != 0 {
			if err := c.Recv(prev, tagBcast, seg); err != nil {
				return err
			}
		}
		if !last {
			if fwd != nil {
				if err := c.Wait(fwd); err != nil {
					return err
				}
			}
			r, err := c.Isend(next, tagBcast, seg)
			if err != nil {
				return err
			}
			fwd = r
		}
	}
	if fwd != nil {
		return c.Wait(fwd)
	}
	return nil
}
