// Package coll is the collective-algorithm layer: a per-collective
// registry of interchangeable algorithm implementations behind one Run
// entry point, plus an auto-selector that picks by message size,
// communicator size, and platform capability — the paper's
// eager/rendezvous crossover idea lifted to the collective level (the
// Meiko picks its hardware broadcast, the ATM cluster a point-to-point
// tree, and both switch algorithms as payloads grow).
//
// The mpi package routes every collective through Run; entrypoints force
// specific algorithms with a Tuning parsed by ParseTuning (the registry
// validates names, like platform/registry does for backends), and
// cmd/repro's -collectives sweep measures every registered algorithm to
// derive the empirical crossover points the selector's thresholds encode.
package coll

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Comm is the narrow communicator view algorithms drive: rank-addressed
// point-to-point traffic on the collective context, plus the platform
// capability probes. The mpi package supplies the one real implementation.
type Comm interface {
	Rank() int
	Size() int

	Send(dst, tag int, data []byte) error
	Recv(src, tag int, buf []byte) error
	Isend(dst, tag int, data []byte) (Req, error)
	Irecv(src, tag int, buf []byte) (Req, error)
	Wait(r Req) error

	// HasHW reports whether the platform's hardware broadcast can reach
	// exactly this communicator (the device implements it and the
	// communicator spans the world).
	HasHW() bool
	// HWBcast invokes the hardware broadcast; only legal when HasHW.
	HWBcast(root int, buf []byte) error

	// Bookkeeping hooks for Run's per-algorithm accounting.
	Acct() *core.Acct
	TraceLog() *trace.Log
	WorldRank() int
	Now() sim.Time
}

// Req is an in-flight nonblocking operation, completed by Comm.Wait.
type Req interface{}

// Collective-context tags, one per operation type for readable traces
// (correctness comes from the dedicated collective context).
const (
	tagBcast = iota + 1
	tagBarrier
	tagGather
	tagScatter
	tagReduce
	tagScan
	tagAlltoall
)

// Args carries one collective call's operands; each operation reads the
// fields it defines (bcast: Root+Buf; reductions: Op+Send+Recv; vector
// variants: the count/displacement slices).
type Args struct {
	Root int
	Buf  []byte
	Send []byte
	Recv []byte
	Op   func(dst, src []byte)
	// Elem is the reduction element size in bytes; splitting algorithms
	// (reduce-scatter+allgather) may partition vectors only at Elem-byte
	// boundaries, so Elem == 0 rules them out.
	Elem   int
	Counts []int
	// Alltoallv geometry.
	SCounts, SDispls, RCounts, RDispls []int
	// Tune propagates forced algorithm choices into composite algorithms
	// (an allgather built from gather+bcast resolves its inner bcast
	// through the same tuning). Run fills it before invoking.
	Tune Tuning
}

// Hint describes one call site for auto-selection.
type Hint struct {
	Bytes int  // payload bytes (per rank) the call moves
	Elem  int  // reduction element size; 0 = opaque buffer
	Ranks int  // communicator size
	HW    bool // hardware broadcast reaches this communicator
}

// Alg is one registered algorithm for one collective operation.
type Alg struct {
	Name string
	// NeedsHW marks algorithms that require the platform's hardware
	// broadcast; forcing one on a backend without it is an error.
	NeedsHW bool
	// Pow2Only marks algorithms defined only for power-of-two
	// communicator sizes (recursive doubling and halving).
	Pow2Only bool
	// NeedsElem marks algorithms that split reduction vectors and so
	// require a declared element size.
	NeedsElem bool
	// Rounds models the message-round count for the books.
	Rounds func(h Hint) int
	Run    func(c Comm, a Args) error
}

// ok reports whether the algorithm is applicable under h.
func (a *Alg) ok(h Hint) bool {
	if a.NeedsHW && !h.HW {
		return false
	}
	if a.Pow2Only && h.Ranks&(h.Ranks-1) != 0 {
		return false
	}
	if a.NeedsElem && (h.Elem <= 0 || h.Bytes/h.Elem < h.Ranks) {
		return false
	}
	return true
}

// registries maps operation name -> algorithms in registration order; the
// first entry that is applicable everywhere is the fallback default.
var registries = map[string][]*Alg{}

// register adds an algorithm for op (wiring bug to duplicate a name).
func register(op string, a *Alg) {
	for _, have := range registries[op] {
		if have.Name == a.Name {
			panic(fmt.Sprintf("coll: duplicate algorithm %s/%s", op, a.Name))
		}
	}
	registries[op] = append(registries[op], a)
}

// Ops reports every collective operation with registered algorithms.
func Ops() []string {
	out := make([]string, 0, len(registries))
	for op := range registries {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// Names reports the algorithms registered for op, in registration order.
func Names(op string) []string {
	var out []string
	for _, a := range registries[op] {
		out = append(out, a.Name)
	}
	return out
}

// Lookup reports the algorithm registered for op under name.
func Lookup(op, name string) (*Alg, bool) {
	for _, a := range registries[op] {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Auto-selection thresholds: the size crossovers the selector encodes,
// chosen from the cost model's structure and checked empirically by
// cmd/repro -collectives (which derives the measured crossover points).
const (
	// HWBcastMax is the largest broadcast the hardware network wins: above
	// it the slot-to-user copy makes the pipelined chain (whose rendezvous
	// payloads land directly in user buffers) cheaper.
	HWBcastMax = 32 << 10
	// PipelineBytes is the point-to-point broadcast crossover from a
	// binomial tree (log P full-payload times) to the segmented pipeline.
	PipelineBytes = 32 << 10
	// RdblBytes is the allreduce crossover from recursive doubling
	// (latency-optimal, log P rounds of full payload) to
	// reduce-scatter+allgather (bandwidth-optimal).
	RdblBytes = 4 << 10
	// RingBytes is the allgather crossover from gather+bcast (root
	// bottleneck, fine for small payloads) to the ring.
	RingBytes = 4 << 10
)

// Select picks the algorithm for op under h: by payload size, by
// communicator size, and by platform capability. It never returns nil for
// a registered op.
func Select(op string, h Hint) *Alg {
	algs := registries[op]
	if len(algs) == 0 {
		return nil
	}
	pick := func(name string) *Alg {
		if a, okName := Lookup(op, name); okName && a.ok(h) {
			return a
		}
		return nil
	}
	if h.Ranks > 1 {
		var want *Alg
		switch op {
		case "bcast":
			switch {
			case h.HW && h.Bytes <= HWBcastMax:
				want = pick("hardware")
			case h.Bytes > PipelineBytes && h.Ranks >= 3:
				want = pick("pipelined")
			default:
				want = pick("binomial")
			}
		case "barrier":
			if h.HW {
				want = pick("tree")
			}
		case "allreduce":
			if h.Bytes > RdblBytes {
				if want = pick("rsag"); want == nil {
					want = pick("rdbl")
				}
			}
		case "allgather":
			if h.Bytes > RingBytes {
				want = pick("ring")
			}
		case "alltoall":
			if h.Ranks >= 4 {
				want = pick("pairwise")
			}
		}
		if want != nil {
			return want
		}
	}
	// Fallback: the first registered algorithm applicable under h (every
	// op registers a restriction-free algorithm first).
	for _, a := range algs {
		if a.ok(h) {
			return a
		}
	}
	return algs[0]
}

// Tuning forces specific algorithms per collective operation; missing
// entries auto-select.
type Tuning map[string]string

// ParseTuning parses "op=alg,op=alg" (e.g. "bcast=binomial,allreduce=rsag")
// into a Tuning, validating both operation and algorithm names against the
// registry — a typo prints the listing instead of silently auto-selecting.
func ParseTuning(s string) (Tuning, error) {
	if s == "" {
		return nil, nil
	}
	t := Tuning{}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		i := strings.IndexByte(kv, '=')
		if i < 0 {
			return nil, fmt.Errorf("coll: bad tuning %q, want op=alg", kv)
		}
		op, alg := kv[:i], kv[i+1:]
		if _, ok := registries[op]; !ok {
			return nil, fmt.Errorf("coll: unknown collective %q (registered: %s)", op, strings.Join(Ops(), ", "))
		}
		if _, ok := Lookup(op, alg); !ok {
			return nil, fmt.Errorf("coll: unknown %s algorithm %q (registered: %s)", op, alg, strings.Join(Names(op), ", "))
		}
		t[op] = alg
	}
	return t, nil
}

// String renders the tuning in ParseTuning's format, sorted.
func (t Tuning) String() string {
	var parts []string
	for op, alg := range t {
		parts = append(parts, op+"="+alg)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Run resolves the algorithm for op — t[op] when forced, Select otherwise
// — books the choice into the rank's cost account (per-algorithm
// invocation, byte, and round counters), brackets it with trace events,
// and executes it.
func Run(c Comm, t Tuning, op string, bytes int, a Args) error {
	h := Hint{Bytes: bytes, Elem: a.Elem, Ranks: c.Size(), HW: c.HasHW()}
	var alg *Alg
	if name := t[op]; name != "" {
		forced, ok := Lookup(op, name)
		if !ok {
			return core.Errorf(core.ErrInternal, "no %s algorithm %q (registered: %s)", op, name, strings.Join(Names(op), ", "))
		}
		if !forced.ok(h) {
			return core.Errorf(core.ErrInternal, "%s algorithm %q not applicable (ranks=%d hw=%v elem=%d): needs hw=%v pow2=%v elem=%v",
				op, name, h.Ranks, h.HW, h.Elem, forced.NeedsHW, forced.Pow2Only, forced.NeedsElem)
		}
		alg = forced
	} else {
		alg = Select(op, h)
		if alg == nil {
			return core.Errorf(core.ErrInternal, "no algorithms registered for collective %q", op)
		}
	}
	a.Tune = t

	acct := c.Acct()
	acct.Incr("coll."+op+"."+alg.Name, 1)
	acct.Incr("coll."+op+".bytes", int64(bytes))
	if alg.Rounds != nil {
		acct.Incr("coll."+op+".rounds", int64(alg.Rounds(h)))
	}
	tl := c.TraceLog()
	if tl != nil {
		tl.Add(trace.Event{T: c.Now(), Rank: c.WorldRank(), Kind: trace.CollectiveStart, Peer: -1, Bytes: bytes, Note: op + "/" + alg.Name})
	}
	err := alg.Run(c, a)
	if tl != nil && err == nil {
		tl.Add(trace.Event{T: c.Now(), Rank: c.WorldRank(), Kind: trace.CollectiveDone, Peer: -1, Bytes: bytes, Note: op + "/" + alg.Name})
	}
	return err
}

// log2Ceil reports ceil(log2(p)) (rounds of a binomial tree over p ranks).
func log2Ceil(p int) int {
	n := 0
	for m := 1; m < p; m <<= 1 {
		n++
	}
	return n
}

// sendrecv posts the receive, runs the send, and completes the receive —
// the deadlock-free pairwise exchange every symmetric algorithm uses.
func sendrecv(c Comm, to int, out []byte, from int, in []byte, tag int) error {
	rr, err := c.Irecv(from, tag, in)
	if err != nil {
		return err
	}
	if err := c.Send(to, tag, out); err != nil {
		return err
	}
	return c.Wait(rr)
}
