package coll

import (
	"strings"
	"testing"
)

// TestSelect pins the auto-selector's decisions: algorithm choice must
// track payload size, communicator size, and the hardware-broadcast
// capability exactly as the threshold constants promise.
func TestSelect(t *testing.T) {
	cases := []struct {
		name string
		op   string
		h    Hint
		want string
	}{
		{"bcast small hw", "bcast", Hint{Bytes: 1 << 10, Ranks: 8, HW: true}, "hardware"},
		{"bcast at hw limit", "bcast", Hint{Bytes: HWBcastMax, Ranks: 8, HW: true}, "hardware"},
		{"bcast large hw", "bcast", Hint{Bytes: HWBcastMax + 1, Ranks: 8, HW: true}, "pipelined"},
		{"bcast small cluster", "bcast", Hint{Bytes: 1 << 10, Ranks: 8}, "binomial"},
		{"bcast large cluster", "bcast", Hint{Bytes: 128 << 10, Ranks: 8}, "pipelined"},
		{"bcast large pair", "bcast", Hint{Bytes: 128 << 10, Ranks: 2}, "binomial"},
		{"barrier hw", "barrier", Hint{Ranks: 8, HW: true}, "tree"},
		{"barrier cluster", "barrier", Hint{Ranks: 8}, "dissemination"},
		{"allreduce small", "allreduce", Hint{Bytes: 256, Elem: 8, Ranks: 8}, "reduce-bcast"},
		{"allreduce large elem", "allreduce", Hint{Bytes: 64 << 10, Elem: 8, Ranks: 8}, "rsag"},
		{"allreduce large opaque", "allreduce", Hint{Bytes: 64 << 10, Ranks: 8}, "rdbl"},
		{"allreduce large odd", "allreduce", Hint{Bytes: 64 << 10, Elem: 8, Ranks: 5}, "reduce-bcast"},
		{"allgather small", "allgather", Hint{Bytes: 256, Ranks: 8}, "gather-bcast"},
		{"allgather large", "allgather", Hint{Bytes: 64 << 10, Ranks: 8}, "ring"},
		{"alltoall pow2", "alltoall", Hint{Bytes: 1 << 10, Ranks: 8}, "pairwise"},
		{"alltoall odd", "alltoall", Hint{Bytes: 1 << 10, Ranks: 5}, "linear-shift"},
		{"alltoall pair", "alltoall", Hint{Bytes: 1 << 10, Ranks: 2}, "linear-shift"},
		{"self comm", "bcast", Hint{Bytes: 1 << 10, Ranks: 1}, "binomial"},
	}
	for _, tc := range cases {
		a := Select(tc.op, tc.h)
		if a == nil {
			t.Errorf("%s: Select(%s, %+v) = nil", tc.name, tc.op, tc.h)
			continue
		}
		if a.Name != tc.want {
			t.Errorf("%s: Select(%s, %+v) = %s, want %s", tc.name, tc.op, tc.h, a.Name, tc.want)
		}
	}
}

// TestApplicability pins the gating rules a forced or selected algorithm
// must satisfy.
func TestApplicability(t *testing.T) {
	hw, _ := Lookup("bcast", "hardware")
	if hw.ok(Hint{Ranks: 8}) {
		t.Error("hardware bcast must not apply without the hardware")
	}
	if !hw.ok(Hint{Ranks: 8, HW: true}) {
		t.Error("hardware bcast must apply with the hardware")
	}
	rdbl, _ := Lookup("allreduce", "rdbl")
	if rdbl.ok(Hint{Bytes: 64, Ranks: 6}) {
		t.Error("recursive doubling must not apply to non-power-of-two sizes")
	}
	rsag, _ := Lookup("allreduce", "rsag")
	if rsag.ok(Hint{Bytes: 64 << 10, Ranks: 8}) {
		t.Error("reduce-scatter+allgather must not apply without an element size")
	}
	if rsag.ok(Hint{Bytes: 16, Elem: 8, Ranks: 8}) {
		t.Error("reduce-scatter+allgather must not apply with fewer elements than ranks")
	}
	if !rsag.ok(Hint{Bytes: 64 << 10, Elem: 8, Ranks: 8}) {
		t.Error("reduce-scatter+allgather must apply to a large 8-byte-lane vector")
	}
}

// TestRegistry pins the registry's shape: every operation registers a
// restriction-free algorithm first, so the fallback always applies.
func TestRegistry(t *testing.T) {
	for _, op := range []string{"bcast", "barrier", "gather", "gatherv", "scatter",
		"scatterv", "allgather", "allgatherv", "reduce", "allreduce",
		"reducescatter", "scan", "exscan", "alltoall", "alltoallv"} {
		algs := Names(op)
		if len(algs) == 0 {
			t.Errorf("no algorithms registered for %q", op)
			continue
		}
		first, _ := Lookup(op, algs[0])
		if first.NeedsHW || first.Pow2Only || first.NeedsElem {
			t.Errorf("%s: first-registered %q is restricted; the fallback must always apply", op, algs[0])
		}
	}
	if _, ok := Lookup("bcast", "no-such"); ok {
		t.Error("Lookup invented an algorithm")
	}
	found := false
	for _, op := range Ops() {
		if op == "bcast" {
			found = true
		}
	}
	if !found {
		t.Error("Ops() misses bcast")
	}
}

func TestParseTuning(t *testing.T) {
	tn, err := ParseTuning("bcast=pipelined, allreduce=rsag")
	if err != nil {
		t.Fatalf("ParseTuning: %v", err)
	}
	if tn["bcast"] != "pipelined" || tn["allreduce"] != "rsag" {
		t.Fatalf("ParseTuning = %v", tn)
	}
	if got := tn.String(); got != "allreduce=rsag,bcast=pipelined" {
		t.Fatalf("String() = %q", got)
	}
	if tn, err = ParseTuning(""); err != nil || tn != nil {
		t.Fatalf("empty tuning: %v, %v", tn, err)
	}
	for _, bad := range []struct{ in, wantErr string }{
		{"bcast", "want op=alg"},
		{"nosuchop=linear", "unknown collective"},
		{"bcast=nosuchalg", "unknown bcast algorithm"},
	} {
		if _, err := ParseTuning(bad.in); err == nil || !strings.Contains(err.Error(), bad.wantErr) {
			t.Errorf("ParseTuning(%q) = %v, want %q", bad.in, err, bad.wantErr)
		}
	}
}
