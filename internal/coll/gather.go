package coll

// Gather/scatter family: the rooted linear algorithms (the paper's
// implementations) and the allgather variants — gather+bcast for small
// payloads, the ring for bulk, where the root's fan-in/fan-out bottleneck
// dominates.

func init() {
	register("gather", &Alg{
		Name:   "linear",
		Rounds: func(h Hint) int { return h.Ranks - 1 },
		Run:    func(c Comm, a Args) error { return gatherLinear(c, a.Root, a.Send, a.Recv, a.Counts) },
	})
	register("gatherv", &Alg{
		Name:   "linear",
		Rounds: func(h Hint) int { return h.Ranks - 1 },
		Run:    func(c Comm, a Args) error { return gatherLinear(c, a.Root, a.Send, a.Recv, a.Counts) },
	})
	register("scatter", &Alg{
		Name:   "linear",
		Rounds: func(h Hint) int { return h.Ranks - 1 },
		Run:    func(c Comm, a Args) error { return scatterLinear(c, a.Root, a.Send, a.Counts, a.Recv) },
	})
	register("scatterv", &Alg{
		Name:   "linear",
		Rounds: func(h Hint) int { return h.Ranks - 1 },
		Run:    func(c Comm, a Args) error { return scatterLinear(c, a.Root, a.Send, a.Counts, a.Recv) },
	})
	register("allgather", &Alg{
		Name:   "gather-bcast",
		Rounds: func(h Hint) int { return h.Ranks - 1 + log2Ceil(h.Ranks) },
		Run:    func(c Comm, a Args) error { return allgatherGatherBcast(c, a.Tune, a.Send, a.Recv, a.Counts) },
	})
	register("allgather", &Alg{
		Name:   "ring",
		Rounds: func(h Hint) int { return h.Ranks - 1 },
		Run:    func(c Comm, a Args) error { return allgatherRing(c, a.Send, a.Recv) },
	})
	register("allgatherv", &Alg{
		Name:   "gather-bcast",
		Rounds: func(h Hint) int { return h.Ranks - 1 + log2Ceil(h.Ranks) },
		Run:    func(c Comm, a Args) error { return allgatherGatherBcast(c, a.Tune, a.Send, a.Recv, a.Counts) },
	})
}

// gatherLinear collects each rank's counts[r] bytes at the root, ordered
// by rank; recv is only used at the root.
func gatherLinear(c Comm, root int, send, recv []byte, counts []int) error {
	if c.Rank() != root {
		return c.Send(root, tagGather, send)
	}
	off := 0
	for r := 0; r < c.Size(); r++ {
		if r == root {
			copy(recv[off:off+counts[r]], send)
		} else {
			if err := c.Recv(r, tagGather, recv[off:off+counts[r]]); err != nil {
				return err
			}
		}
		off += counts[r]
	}
	return nil
}

// scatterLinear distributes counts[r] bytes from the root's send buffer to
// each rank r.
func scatterLinear(c Comm, root int, send []byte, counts []int, recv []byte) error {
	if c.Rank() != root {
		return c.Recv(root, tagScatter, recv)
	}
	off := 0
	for r := 0; r < c.Size(); r++ {
		if r == root {
			copy(recv, send[off:off+counts[r]])
		} else {
			if err := c.Send(r, tagScatter, send[off:off+counts[r]]); err != nil {
				return err
			}
		}
		off += counts[r]
	}
	return nil
}

// allgatherGatherBcast gathers at rank 0 then broadcasts the assembled
// buffer; the inner steps resolve through the registry, so the broadcast
// rides the hardware network where there is one.
func allgatherGatherBcast(c Comm, t Tuning, send, recv []byte, counts []int) error {
	if err := Run(c, t, "gather", len(send), Args{Root: 0, Send: send, Recv: recv, Counts: counts}); err != nil {
		return err
	}
	return Run(c, t, "bcast", len(recv), Args{Root: 0, Buf: recv})
}

// allgatherRing rotates blocks around the ring: in round i every rank
// forwards the block it received in round i-1, so after P-1 rounds each
// rank holds all P blocks having sent and received only (P-1)/P of the
// total payload — no root bottleneck.
func allgatherRing(c Comm, send, recv []byte) error {
	p := c.Size()
	me := c.Rank()
	n := len(send)
	copy(recv[me*n:(me+1)*n], send)
	if p == 1 {
		return nil
	}
	right := (me + 1) % p
	left := (me - 1 + p) % p
	for i := 0; i < p-1; i++ {
		outBlk := (me - i + p) % p
		inBlk := (me - i - 1 + 2*p) % p
		if err := sendrecv(c, right, recv[outBlk*n:(outBlk+1)*n], left, recv[inBlk*n:(inBlk+1)*n], tagGather); err != nil {
			return err
		}
	}
	return nil
}
