package coll

// Reduction algorithms. Every one preserves MPI's canonical evaluation
// order — the combination is always op over contiguous rank ranges with
// the lower range on the left — so non-commutative (but associative)
// operators give the same answer as a sequential rank-order fold. The
// conformance suite pins this with a non-commutative operator.

func init() {
	register("reduce", &Alg{
		Name:   "binomial",
		Rounds: func(h Hint) int { return log2Ceil(h.Ranks) },
		Run: func(c Comm, a Args) error {
			acc := a.Recv
			if c.Rank() != a.Root || len(acc) < len(a.Send) {
				// recv is significant only at the root; everyone else
				// accumulates in a scratch buffer.
				acc = make([]byte, len(a.Send))
			}
			return reduceTree(c, a.Root, a.Op, a.Send, acc)
		},
	})
	register("allreduce", &Alg{
		Name:   "reduce-bcast",
		Rounds: func(h Hint) int { return 2 * log2Ceil(h.Ranks) },
		Run: func(c Comm, a Args) error {
			// The small-message path: every rank accumulates directly in
			// its receive buffer (the broadcast overwrites it anyway), so
			// there is no temporary allocation and no post-reduce copy.
			if err := reduceTree(c, 0, a.Op, a.Send, a.Recv); err != nil {
				return err
			}
			return Run(c, a.Tune, "bcast", len(a.Recv), Args{Root: 0, Buf: a.Recv})
		},
	})
	register("allreduce", &Alg{
		Name:     "rdbl",
		Pow2Only: true,
		Rounds:   func(h Hint) int { return log2Ceil(h.Ranks) },
		Run:      func(c Comm, a Args) error { return allreduceRdbl(c, a.Op, a.Send, a.Recv) },
	})
	register("allreduce", &Alg{
		Name:      "rsag",
		Pow2Only:  true,
		NeedsElem: true,
		Rounds:    func(h Hint) int { return 2 * log2Ceil(h.Ranks) },
		Run:       func(c Comm, a Args) error { return allreduceRsag(c, a.Op, a.Elem, a.Send, a.Recv) },
	})
	register("reducescatter", &Alg{
		Name:   "reduce-scatterv",
		Rounds: func(h Hint) int { return log2Ceil(h.Ranks) + h.Ranks - 1 },
		Run: func(c Comm, a Args) error {
			var full []byte
			if c.Rank() == 0 {
				full = make([]byte, len(a.Send))
			}
			if err := Run(c, a.Tune, "reduce", len(a.Send), Args{Root: 0, Op: a.Op, Send: a.Send, Recv: full}); err != nil {
				return err
			}
			return Run(c, a.Tune, "scatterv", len(a.Recv), Args{Root: 0, Send: full, Counts: a.Counts, Recv: a.Recv})
		},
	})
	register("scan", &Alg{
		Name:   "linear",
		Rounds: func(h Hint) int { return h.Ranks - 1 },
		Run:    func(c Comm, a Args) error { return scanLinear(c, a.Op, a.Send, a.Recv) },
	})
	register("exscan", &Alg{
		Name:   "linear",
		Rounds: func(h Hint) int { return h.Ranks - 1 },
		Run:    func(c Comm, a Args) error { return exscanLinear(c, a.Op, a.Send, a.Recv) },
	})
}

// reduceTree is the binomial fan-in: each rank folds its children's
// contiguous higher-rank ranges into acc (acc = acc ∘ child), then sends
// acc to its parent. acc must have len(send) bytes; the result lands in
// the root's acc.
func reduceTree(c Comm, root int, op func(dst, src []byte), send, acc []byte) error {
	p := c.Size()
	rel := (c.Rank() - root + p) % p
	copy(acc, send)
	var in []byte
	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask != 0 {
			parent := ((rel &^ mask) + root) % p
			return c.Send(parent, tagReduce, acc[:len(send)])
		}
		if src := rel | mask; src < p {
			if in == nil {
				in = make([]byte, len(send))
			}
			if err := c.Recv((src+root)%p, tagReduce, in); err != nil {
				return err
			}
			op(acc, in)
		}
	}
	return nil
}

// allreduceRdbl is recursive doubling: in round k every rank exchanges its
// accumulator with rank^2^k and folds, keeping the lower rank range on the
// left (partner below us: acc = partner ∘ acc). log2 P rounds of full
// payload — latency-optimal. Power-of-two communicators only.
func allreduceRdbl(c Comm, op func(dst, src []byte), send, recv []byte) error {
	p := c.Size()
	me := c.Rank()
	copy(recv, send)
	acc := recv[:len(send)]
	in := make([]byte, len(send))
	for mask := 1; mask < p; mask <<= 1 {
		partner := me ^ mask
		if err := sendrecv(c, partner, acc, partner, in, tagReduce); err != nil {
			return err
		}
		if partner < me {
			// in holds the lower rank range: acc = in ∘ acc.
			op(in, acc)
			copy(acc, in)
		} else {
			op(acc, in)
		}
	}
	return nil
}

// allreduceRsag is Rabenseifner's reduce-scatter + allgather: recursive
// vector halving with distance doubling reduces each rank's block, then
// the allgather phase reverses the exchanges to rebuild the full vector.
// Bandwidth-optimal (each rank moves ~2·(P-1)/P of the payload instead of
// log2 P full payloads). Splits only at elem-byte boundaries, so it needs
// a declared element size; power-of-two communicators only.
func allreduceRsag(c Comm, op func(dst, src []byte), elem int, send, recv []byte) error {
	p := c.Size()
	me := c.Rank()
	copy(recv, send)
	if p == 1 {
		return nil
	}
	count := len(send) / elem
	acc := recv[:len(send)]
	scratch := make([]byte, (count/2+1)*elem)

	// Reduce-scatter phase: nearest partner first (distance doubling) with
	// recursive vector halving. After the round at distance m my kept range
	// holds the rank-ordered fold of my aligned 2m-rank block: partners
	// differ only in bit m, so their kept-range histories are identical
	// (mirror halves of the same range), and the partner with bit m clear
	// covers the adjacent lower block. Pairing at distance p/2 first — the
	// textbook halving order — would fold {0,2} then {1,3}: non-contiguous,
	// wrong for non-commutative operators.
	type step struct{ partner, kLo, kHi, sLo, sHi int }
	var steps []step
	lo, hi := 0, count // element range I still own
	for mask := 1; mask < p; mask <<= 1 {
		mid := lo + (hi-lo)/2
		lower := me&mask == 0
		var st step
		if lower {
			st = step{partner: me | mask, kLo: lo, kHi: mid, sLo: mid, sHi: hi}
		} else {
			st = step{partner: me &^ mask, kLo: mid, kHi: hi, sLo: lo, sHi: mid}
		}
		in := scratch[:(st.kHi-st.kLo)*elem]
		if err := sendrecv(c, st.partner, acc[st.sLo*elem:st.sHi*elem], st.partner, in, tagReduce); err != nil {
			return err
		}
		kept := acc[st.kLo*elem : st.kHi*elem]
		if lower {
			// Partner folds the higher block: kept = kept ∘ in.
			op(kept, in)
		} else {
			// Partner folds the lower block: kept = in ∘ kept.
			op(in, kept)
			copy(kept, in)
		}
		steps = append(steps, st)
		lo, hi = st.kLo, st.kHi
	}

	// Allgather phase: replay the exchanges in reverse. At the replay of
	// step i my fully-reduced range is exactly the range I kept then, and
	// the partner holds its mirror — the range I sent — so one exchange
	// rebuilds the step's whole block.
	for i := len(steps) - 1; i >= 0; i-- {
		st := steps[i]
		if err := sendrecv(c, st.partner, acc[st.kLo*elem:st.kHi*elem], st.partner, acc[st.sLo*elem:st.sHi*elem], tagReduce); err != nil {
			return err
		}
	}
	return nil
}

// scanLinear computes the inclusive prefix along the rank chain: rank r
// receives prefix(0..r-1), folds its own contribution, and forwards.
func scanLinear(c Comm, op func(dst, src []byte), send, recv []byte) error {
	copy(recv, send)
	out := recv[:len(send)]
	if c.Rank() > 0 {
		in := make([]byte, len(send))
		if err := c.Recv(c.Rank()-1, tagScan, in); err != nil {
			return err
		}
		// out = prefix(0..r-1) ∘ send.
		copy(out, in)
		op(out, send)
	}
	if c.Rank() < c.Size()-1 {
		return c.Send(c.Rank()+1, tagScan, out)
	}
	return nil
}

// exscanLinear computes the exclusive prefix: rank r receives
// prefix(0..r-1); rank 0's recv is left untouched.
func exscanLinear(c Comm, op func(dst, src []byte), send, recv []byte) error {
	incl := make([]byte, len(send))
	if c.Rank() > 0 {
		if err := c.Recv(c.Rank()-1, tagScan, incl); err != nil {
			return err
		}
		copy(recv, incl)
	}
	if c.Rank() < c.Size()-1 {
		out := make([]byte, len(send))
		if c.Rank() == 0 {
			copy(out, send)
		} else {
			copy(out, incl)
			op(out, send)
		}
		return c.Send(c.Rank()+1, tagScan, out)
	}
	return nil
}
