package conformance

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/coll"
	"repro/mpi"
)

// The collective matrix: every registered algorithm of every collective
// operation, forced through the tuning layer and verified against locally
// computed expectations. Reductions use a non-commutative (but
// associative) operator — 2x2 matrix multiplication over Z/2^16 — so any
// algorithm that reorders combining, instead of folding contiguous rank
// ranges lower-side-left, produces a wrong product and fails loudly.

// matLane is the packed byte width of one 2x2 uint16 matrix.
const matLane = 8

func matPut(buf []byte, m [4]uint16) {
	for i, v := range m {
		buf[2*i] = byte(v)
		buf[2*i+1] = byte(v >> 8)
	}
}

func matGet(buf []byte) (m [4]uint16) {
	for i := range m {
		m[i] = uint16(buf[2*i]) | uint16(buf[2*i+1])<<8
	}
	return m
}

// matMul is the row-by-column product a*b (left operand first: the order
// the reduction tree must preserve).
func matMul(a, b [4]uint16) [4]uint16 {
	return [4]uint16{
		a[0]*b[0] + a[1]*b[2], a[0]*b[1] + a[1]*b[3],
		a[2]*b[0] + a[3]*b[2], a[2]*b[1] + a[3]*b[3],
	}
}

// matOp is the mpi.Op: per-lane dst = dst * src.
func matOp(dst, src []byte) {
	for off := 0; off+matLane <= len(dst); off += matLane {
		matPut(dst[off:], matMul(matGet(dst[off:]), matGet(src[off:])))
	}
}

// rankMat is rank r's matrix for lane l — distinct per rank and chosen so
// products in different orders disagree (verified by TestMatOpNonCommutative).
func rankMat(r, l int) [4]uint16 {
	return [4]uint16{1, uint16(r + l + 1), uint16(2*r + l + 3), uint16(l + 2)}
}

// matVec packs rank r's matrices for lanes lanes.
func matVec(r, lanes int) []byte {
	buf := make([]byte, lanes*matLane)
	for l := 0; l < lanes; l++ {
		matPut(buf[l*matLane:], rankMat(r, l))
	}
	return buf
}

// matFold is the rank-ordered product over ranks lo..hi (inclusive) for
// lane l — the answer every conforming reduction must produce.
func matFold(lo, hi, l int) [4]uint16 {
	acc := rankMat(lo, l)
	for r := lo + 1; r <= hi; r++ {
		acc = matMul(acc, rankMat(r, l))
	}
	return acc
}

func matCheck(got []byte, lo, hi int, what string) error {
	for l := 0; l*matLane < len(got); l++ {
		want := make([]byte, matLane)
		matPut(want, matFold(lo, hi, l))
		if !bytes.Equal(got[l*matLane:(l+1)*matLane], want) {
			return fmt.Errorf("%s: lane %d: reduction order broken (ranks %d..%d)", what, l, lo, hi)
		}
	}
	return nil
}

// collSizes spans eager and rendezvous payloads on every platform,
// including one beyond the cluster's 64 KB TCP window (the symmetric
// large-payload exchange that once deadlocked socket MPIs).
var collSizes = []int{16, 1 << 10, 70_000}

// collVerifiers maps operation name -> a body that runs the operation and
// verifies the result against locally computed expectations.
var collVerifiers = map[string]func(c *mpi.Comm) error{
	"bcast": func(c *mpi.Comm) error {
		root := 1 % c.Size()
		for i, size := range collSizes {
			buf := make([]byte, size)
			if c.Rank() == root {
				fill(buf, root, 0, i)
			}
			if err := c.Bcast(root, buf); err != nil {
				return err
			}
			if err := check(buf, root, 0, i); err != nil {
				return err
			}
		}
		return nil
	},
	"barrier": func(c *mpi.Comm) error {
		for i := 0; i < 3; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	},
	"gather": func(c *mpi.Comm) error {
		for i, size := range collSizes {
			send := make([]byte, size)
			fill(send, c.Rank(), 0, i)
			recv := make([]byte, size*c.Size())
			if err := c.Gather(0, send, recv); err != nil {
				return err
			}
			if c.Rank() == 0 {
				for r := 0; r < c.Size(); r++ {
					if err := check(recv[r*size:(r+1)*size], r, 0, i); err != nil {
						return err
					}
				}
			}
		}
		return nil
	},
	"gatherv": func(c *mpi.Comm) error {
		counts := make([]int, c.Size())
		off := make([]int, c.Size())
		total := 0
		for r := range counts {
			counts[r] = 100*r + 1
			off[r] = total
			total += counts[r]
		}
		send := make([]byte, counts[c.Rank()])
		fill(send, c.Rank(), 1, 0)
		recv := make([]byte, total)
		if err := c.Gatherv(0, send, recv, counts); err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r := range counts {
				if err := check(recv[off[r]:off[r]+counts[r]], r, 1, 0); err != nil {
					return err
				}
			}
		}
		return nil
	},
	"scatter": func(c *mpi.Comm) error {
		for i, size := range collSizes {
			var send []byte
			if c.Rank() == 0 {
				send = make([]byte, size*c.Size())
				for r := 0; r < c.Size(); r++ {
					fill(send[r*size:(r+1)*size], 0, r, i)
				}
			}
			recv := make([]byte, size)
			if err := c.Scatter(0, send, recv); err != nil {
				return err
			}
			if err := check(recv, 0, c.Rank(), i); err != nil {
				return err
			}
		}
		return nil
	},
	"scatterv": func(c *mpi.Comm) error {
		counts := make([]int, c.Size())
		total := 0
		for r := range counts {
			counts[r] = 64*r + 9
			total += counts[r]
		}
		var send []byte
		if c.Rank() == 0 {
			send = make([]byte, total)
			off := 0
			for r := range counts {
				fill(send[off:off+counts[r]], 0, r, 2)
				off += counts[r]
			}
		}
		recv := make([]byte, counts[c.Rank()])
		if err := c.Scatterv(0, send, counts, recv); err != nil {
			return err
		}
		return check(recv, 0, c.Rank(), 2)
	},
	"allgather": func(c *mpi.Comm) error {
		for i, size := range collSizes {
			send := make([]byte, size)
			fill(send, c.Rank(), 2, i)
			recv := make([]byte, size*c.Size())
			if err := c.Allgather(send, recv); err != nil {
				return err
			}
			for r := 0; r < c.Size(); r++ {
				if err := check(recv[r*size:(r+1)*size], r, 2, i); err != nil {
					return err
				}
			}
		}
		return nil
	},
	"allgatherv": func(c *mpi.Comm) error {
		counts := make([]int, c.Size())
		off := make([]int, c.Size())
		total := 0
		for r := range counts {
			counts[r] = 200*r + 7
			off[r] = total
			total += counts[r]
		}
		send := make([]byte, counts[c.Rank()])
		fill(send, c.Rank(), 3, 0)
		recv := make([]byte, total)
		if err := c.Allgatherv(send, recv, counts); err != nil {
			return err
		}
		for r := range counts {
			if err := check(recv[off[r]:off[r]+counts[r]], r, 3, 0); err != nil {
				return err
			}
		}
		return nil
	},
	"reduce": func(c *mpi.Comm) error {
		for _, lanes := range []int{1, c.Size() + 3, 9000} {
			send := matVec(c.Rank(), lanes)
			recv := make([]byte, len(send))
			if err := c.Reduce(0, matOp, send, recv); err != nil {
				return err
			}
			if c.Rank() == 0 {
				if err := matCheck(recv, 0, c.Size()-1, "reduce"); err != nil {
					return err
				}
			}
		}
		return nil
	},
	"allreduce": func(c *mpi.Comm) error {
		for _, lanes := range []int{c.Size(), c.Size() + 3, 9000} {
			send := matVec(c.Rank(), lanes)
			recv := make([]byte, len(send))
			if err := c.AllreduceElem(matOp, matLane, send, recv); err != nil {
				return err
			}
			if err := matCheck(recv, 0, c.Size()-1, "allreduce"); err != nil {
				return err
			}
		}
		return nil
	},
	"scan": func(c *mpi.Comm) error {
		send := matVec(c.Rank(), 5)
		recv := make([]byte, len(send))
		if err := c.Scan(matOp, send, recv); err != nil {
			return err
		}
		return matCheck(recv, 0, c.Rank(), "scan")
	},
	"exscan": func(c *mpi.Comm) error {
		send := matVec(c.Rank(), 5)
		recv := make([]byte, len(send))
		if err := c.Exscan(matOp, send, recv); err != nil {
			return err
		}
		if c.Rank() == 0 {
			return nil // rank 0's exscan result is undefined
		}
		return matCheck(recv, 0, c.Rank()-1, "exscan")
	},
	"reducescatter": func(c *mpi.Comm) error {
		n := c.Size()
		counts := make([]int, n)
		for r := range counts {
			counts[r] = matLane // one lane per rank
		}
		send := matVec(c.Rank(), n)
		recv := make([]byte, matLane)
		if err := c.ReduceScatter(matOp, send, recv, counts); err != nil {
			return err
		}
		want := make([]byte, matLane)
		matPut(want, matFold(0, n-1, c.Rank()))
		if !bytes.Equal(recv, want) {
			return fmt.Errorf("reducescatter: rank %d's lane has broken reduction order", c.Rank())
		}
		return nil
	},
	"alltoall": func(c *mpi.Comm) error {
		n := c.Size()
		for i, size := range []int{16, 70_000} {
			send := make([]byte, size*n)
			for d := 0; d < n; d++ {
				fill(send[d*size:(d+1)*size], c.Rank(), d, i)
			}
			recv := make([]byte, size*n)
			if err := c.Alltoall(send, recv); err != nil {
				return err
			}
			for s := 0; s < n; s++ {
				if err := check(recv[s*size:(s+1)*size], s, c.Rank(), i); err != nil {
					return err
				}
			}
		}
		return nil
	},
	"alltoallv": func(c *mpi.Comm) error {
		n := c.Size()
		// Rank s sends 10*(s+d)+1 bytes to rank d: every pair distinct.
		cnt := func(s, d int) int { return 10*(s+d) + 1 }
		scounts := make([]int, n)
		sdispls := make([]int, n)
		rcounts := make([]int, n)
		rdispls := make([]int, n)
		stot, rtot := 0, 0
		for d := 0; d < n; d++ {
			scounts[d], sdispls[d] = cnt(c.Rank(), d), stot
			stot += scounts[d]
			rcounts[d], rdispls[d] = cnt(d, c.Rank()), rtot
			rtot += rcounts[d]
		}
		send := make([]byte, stot)
		for d := 0; d < n; d++ {
			fill(send[sdispls[d]:sdispls[d]+scounts[d]], c.Rank(), d, 4)
		}
		recv := make([]byte, rtot)
		if err := c.Alltoallv(send, scounts, sdispls, recv, rcounts, rdispls); err != nil {
			return err
		}
		for s := 0; s < n; s++ {
			if err := check(recv[rdispls[s]:rdispls[s]+rcounts[s]], s, c.Rank(), 4); err != nil {
				return err
			}
		}
		return nil
	},
}

// CollectiveMatrix runs every registered algorithm of every collective on
// worlds from f at the given rank count, forcing each through the tuning
// layer and verifying results. Algorithms inapplicable to the backend or
// rank count (hardware broadcast without the hardware, power-of-two
// algorithms on odd communicators) are skipped — by the same "not
// applicable" error a user forcing them would see.
func CollectiveMatrix(f Factory, ranks int) error {
	for _, op := range coll.Ops() {
		body := collVerifiers[op]
		if body == nil {
			return fmt.Errorf("collective matrix: no verifier for registered op %q", op)
		}
		for _, alg := range coll.Names(op) {
			w := f(ranks)
			w.Tune = coll.Tuning{op: alg}
			_, err := mpi.Launch(w, func(c *mpi.Comm) error { return body(c) })
			if err != nil && strings.Contains(err.Error(), "not applicable") {
				continue
			}
			if err != nil {
				return fmt.Errorf("%s/%s at %d ranks: %w", op, alg, ranks, err)
			}
		}
	}
	return nil
}
