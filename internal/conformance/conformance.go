// Package conformance is an executable specification of the MPI semantics
// every platform variant must provide. Each scenario generates a seeded
// random — but deadlock-free by construction — communication schedule,
// runs it against a World factory, and verifies payload integrity,
// status fields, and MPI's non-overtaking order. The same suite runs over
// the reference in-memory fabric, both Meiko implementations, and all four
// cluster variants.
package conformance

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps"
	"repro/mpi"
)

// Factory builds a fresh n-rank world for one scenario run.
type Factory func(n int) *mpi.World

// Scenario is one conformance check.
type Scenario struct {
	Name  string
	Ranks int
	Body  func(c *mpi.Comm, seed int64) error
}

// fill writes a deterministic pattern identifying (src, dst, seq).
func fill(buf []byte, src, dst, seq int) {
	for i := range buf {
		buf[i] = byte(src*31 + dst*17 + seq*7 + i)
	}
}

// check verifies fill's pattern.
func check(buf []byte, src, dst, seq int) error {
	for i := range buf {
		if buf[i] != byte(src*31+dst*17+seq*7+i) {
			return fmt.Errorf("payload src=%d dst=%d seq=%d corrupt at byte %d", src, dst, seq, i)
		}
	}
	return nil
}

// sizes spans zero-length, eager, threshold-straddling and rendezvous
// messages on every platform (thresholds are 180 and 16 KB).
var sizes = []int{0, 1, 17, 179, 181, 900, 5000, 20_000}

// Scenarios returns the full suite.
func Scenarios() []Scenario {
	return []Scenario{
		{"isend-storm-nonovertaking", 4, isendStorm},
		{"permutation-sendrecv", 5, permutationSendrecv},
		{"wildcard-anysource-drain", 4, wildcardDrain},
		{"mixed-modes", 3, mixedModes},
		{"random-collectives", 4, randomCollectives},
		{"threshold-straddle-pingpong", 2, thresholdStraddle},
		{"communicators", 4, communicators},
		{"persistent-ring", 4, persistentRing},
		{"rma-window-epochs", 4, rmaWindow},
	}
}

// isendStorm: every rank posts all its receives (wildcard), then fires a
// burst of nonblocking sends of random sizes at every other rank, then
// completes everything. Verifies per-source sequence order (the
// non-overtaking rule) across eager/rendezvous mixes and exercises the
// queued-send path (Isend must not block on flow control).
func isendStorm(c *mpi.Comm, seed int64) error {
	rng := rand.New(rand.NewSource(seed + int64(c.Rank())))
	const perPeer = 6
	n := c.Size()
	me := c.Rank()

	total := perPeer * (n - 1)
	recvs := make([]*mpi.Request, 0, total)
	bufs := make([][]byte, 0, total)
	for i := 0; i < total; i++ {
		buf := make([]byte, 24_000)
		r, err := c.Irecv(mpi.AnySource, mpi.AnyTag, buf)
		if err != nil {
			return err
		}
		recvs = append(recvs, r)
		bufs = append(bufs, buf)
	}

	var sendReqs []*mpi.Request
	for seq := 0; seq < perPeer; seq++ {
		for d := 0; d < n; d++ {
			if d == me {
				continue
			}
			size := sizes[rng.Intn(len(sizes))]
			data := make([]byte, size)
			fill(data, me, d, seq)
			r, err := c.Isend(d, seq, data)
			if err != nil {
				return err
			}
			sendReqs = append(sendReqs, r)
		}
	}

	lastSeq := map[int]int{}
	for i, r := range recvs {
		st, err := r.Wait()
		if err != nil {
			return err
		}
		if st.Tag != lastSeq[st.Source] {
			return fmt.Errorf("non-overtaking violated: from %d got seq %d, want %d", st.Source, st.Tag, lastSeq[st.Source])
		}
		lastSeq[st.Source]++
		if err := check(bufs[i][:st.Count], st.Source, me, st.Tag); err != nil {
			return err
		}
	}
	if _, err := mpi.WaitAll(sendReqs...); err != nil {
		return err
	}
	return c.Barrier()
}

// permutationSendrecv: phases of random permutations exchanged with
// Sendrecv — deadlock-free by construction, stressing bidirectional
// traffic and varying sizes.
func permutationSendrecv(c *mpi.Comm, seed int64) error {
	n := c.Size()
	me := c.Rank()
	const phases = 8
	for ph := 0; ph < phases; ph++ {
		rng := rand.New(rand.NewSource(seed + int64(ph))) // same on all ranks
		perm := rng.Perm(n)
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		size := sizes[rng.Intn(len(sizes))]
		out := make([]byte, size)
		fill(out, me, perm[me], ph)
		in := make([]byte, size)
		st, err := c.Sendrecv(perm[me], ph, out, inv[me], ph, in)
		if err != nil {
			return err
		}
		if st.Source != inv[me] || st.Count != size {
			return fmt.Errorf("phase %d: status %+v, want src %d count %d", ph, st, inv[me], size)
		}
		if err := check(in, inv[me], me, ph); err != nil {
			return err
		}
	}
	return nil
}

// wildcardDrain: many-to-one with Probe + ANY_SOURCE receives sized from
// the probed count.
func wildcardDrain(c *mpi.Comm, seed int64) error {
	rng := rand.New(rand.NewSource(seed + 100 + int64(c.Rank())))
	n := c.Size()
	const per = 4
	if c.Rank() != 0 {
		for i := 0; i < per; i++ {
			size := sizes[rng.Intn(len(sizes))]
			data := make([]byte, size)
			fill(data, c.Rank(), 0, i)
			if err := c.Send(0, i, data); err != nil {
				return err
			}
		}
		return c.Barrier()
	}
	seen := map[int]int{}
	for k := 0; k < per*(n-1); k++ {
		st, err := c.Probe(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return err
		}
		buf := make([]byte, st.Count)
		st2, err := c.Recv(st.Source, st.Tag, buf)
		if err != nil {
			return err
		}
		if st2.Count != st.Count {
			return fmt.Errorf("probe count %d != recv count %d", st.Count, st2.Count)
		}
		if st2.Tag != seen[st2.Source] {
			return fmt.Errorf("from %d: tag %d, want %d (order)", st2.Source, st2.Tag, seen[st2.Source])
		}
		seen[st2.Source]++
		if err := check(buf, st2.Source, 0, st2.Tag); err != nil {
			return err
		}
	}
	return c.Barrier()
}

// mixedModes exercises all four send modes against delayed receivers.
func mixedModes(c *mpi.Comm, seed int64) error {
	switch c.Rank() {
	case 0:
		c.BufferAttach(64 * 1024)
		if err := c.Bsend(1, 0, make([]byte, 700)); err != nil {
			return err
		}
		if err := c.Ssend(1, 1, make([]byte, 300)); err != nil {
			return err
		}
		if err := c.Send(1, 2, make([]byte, 5000)); err != nil {
			return err
		}
		// Rank 2 posted its receive before the barrier, so ready mode is
		// legal here.
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.Rsend(2, 3, make([]byte, 100))
	case 1:
		for tag := 0; tag < 3; tag++ {
			if _, err := c.Recv(0, tag, make([]byte, 5000)); err != nil {
				return err
			}
		}
		return c.Barrier()
	default:
		req, err := c.Irecv(0, 3, make([]byte, 100))
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		_, err = req.Wait()
		return err
	}
}

// randomCollectives runs a seeded sequence of collectives and verifies
// each against locally computed expectations.
func randomCollectives(c *mpi.Comm, seed int64) error {
	rng := rand.New(rand.NewSource(seed + 999)) // same schedule everywhere
	n := c.Size()
	for step := 0; step < 10; step++ {
		switch rng.Intn(5) {
		case 0: // bcast
			root := rng.Intn(n)
			size := 1 + rng.Intn(2000)
			buf := make([]byte, size)
			if c.Rank() == root {
				fill(buf, root, step, step)
			}
			if err := c.Bcast(root, buf); err != nil {
				return err
			}
			if err := check(buf, root, step, step); err != nil {
				return fmt.Errorf("step %d bcast: %w", step, err)
			}
		case 1: // allreduce sum
			out, err := c.AllreduceFloat64(mpi.SumFloat64, []float64{float64(c.Rank() + step)})
			if err != nil {
				return err
			}
			want := float64(n*step + n*(n-1)/2)
			if out[0] != want {
				return fmt.Errorf("step %d allreduce: %v want %v", step, out[0], want)
			}
		case 2: // barrier
			if err := c.Barrier(); err != nil {
				return err
			}
		case 3: // gather at random root
			root := rng.Intn(n)
			all := make([]byte, n)
			if err := c.Gather(root, []byte{byte(40 + c.Rank())}, all); err != nil {
				return err
			}
			if c.Rank() == root {
				for i := range all {
					if all[i] != byte(40+i) {
						return fmt.Errorf("step %d gather[%d] = %d", step, i, all[i])
					}
				}
			}
		default: // alltoall
			send := make([]byte, n)
			for i := range send {
				send[i] = byte(c.Rank()*10 + i)
			}
			recv := make([]byte, n)
			if err := c.Alltoall(send, recv); err != nil {
				return err
			}
			for i := range recv {
				if recv[i] != byte(i*10+c.Rank()) {
					return fmt.Errorf("step %d alltoall[%d] = %d", step, i, recv[i])
				}
			}
		}
	}
	return nil
}

// thresholdStraddle ping-pongs sizes bracketing every protocol boundary.
func thresholdStraddle(c *mpi.Comm, seed int64) error {
	straddle := []int{178, 179, 180, 181, 182, 16_382, 16_384, 16_386}
	for i, size := range straddle {
		buf := make([]byte, size)
		if c.Rank() == 0 {
			fill(buf, 0, 1, i)
			if err := c.Send(1, i, buf); err != nil {
				return err
			}
			in := make([]byte, size)
			if _, err := c.Recv(1, i, in); err != nil {
				return err
			}
			if err := check(in, 1, 0, i); err != nil {
				return err
			}
		} else {
			in := make([]byte, size)
			if _, err := c.Recv(0, i, in); err != nil {
				return err
			}
			if err := check(in, 0, 1, i); err != nil {
				return err
			}
			fill(buf, 1, 0, i)
			if err := c.Send(0, i, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run executes every scenario against the factory with several seeds.
// Each (scenario, seed) pair runs twice and the virtual end times must be
// bit-identical — any hidden nondeterminism in a platform model fails the
// whole suite.
func Run(f Factory, seeds []int64) error {
	for _, sc := range Scenarios() {
		for _, seed := range seeds {
			seed := seed
			var elapsed [2]int64
			for round := 0; round < 2; round++ {
				w := f(sc.Ranks)
				rep, err := mpi.Launch(w, func(c *mpi.Comm) error { return sc.Body(c, seed) })
				if err != nil {
					return fmt.Errorf("%s (seed %d): %w", sc.Name, seed, err)
				}
				elapsed[round] = int64(rep.MaxRankElapsed)
			}
			if elapsed[0] != elapsed[1] {
				return fmt.Errorf("%s (seed %d): nondeterministic timeline (%dns vs %dns)", sc.Name, seed, elapsed[0], elapsed[1])
			}
		}
	}
	return nil
}

// communicators exercises Dup isolation and Split sub-worlds with
// collectives inside each part.
func communicators(c *mpi.Comm, seed int64) error {
	dup, err := c.Dup()
	if err != nil {
		return err
	}
	// Same tag on parent and dup: contexts must isolate.
	if c.Rank() == 0 {
		if err := c.Send(1, 9, []byte{1}); err != nil {
			return err
		}
		if err := dup.Send(1, 9, []byte{2}); err != nil {
			return err
		}
	}
	if c.Rank() == 1 {
		b := make([]byte, 1)
		if _, err := dup.Recv(0, 9, b); err != nil {
			return err
		}
		if b[0] != 2 {
			return fmt.Errorf("dup got %d", b[0])
		}
		if _, err := c.Recv(0, 9, b); err != nil {
			return err
		}
		if b[0] != 1 {
			return fmt.Errorf("parent got %d", b[0])
		}
	}
	// Split into halves; allreduce within each half.
	half, err := c.Split(c.Rank()%2, c.Rank())
	if err != nil {
		return err
	}
	sum, err := half.AllreduceFloat64(mpi.SumFloat64, []float64{1})
	if err != nil {
		return err
	}
	if int(sum[0]) != half.Size() {
		return fmt.Errorf("half allreduce = %v, size %d", sum[0], half.Size())
	}
	return c.Barrier()
}

// rmaWindow drives the MPI-2 one-sided API through three fence epochs on
// every backend flavor — native remote memory and the deferred-at-fence
// emulation alike: a ring halo exchange via Put (rendezvous-sized, so the
// cluster's pre-posted RDMA-write path engages inside the emulated fence),
// an Accumulate reduction into rank 0's counter, and a fenced Get
// read-back of the result from every rank.
func rmaWindow(c *mpi.Comm, seed int64) error {
	n := c.Size()
	me := c.Rank()
	const cell = 20_000 // past every eager threshold (180 and 16 KB)
	// Layout: [left halo cell | right halo cell | 8-byte counter].
	win, err := c.WinCreate(2*cell + 8)
	if err != nil {
		return err
	}
	right := (me + 1) % n
	left := (me - 1 + n) % n

	// Epoch 1: halo exchange. My pattern lands in the right neighbor's
	// left halo and the left neighbor's right halo.
	outR := make([]byte, cell)
	fill(outR, me, right, 0)
	if err := win.Put(right, 0, outR); err != nil {
		return err
	}
	outL := make([]byte, cell)
	fill(outL, me, left, 1)
	if err := win.Put(left, cell, outL); err != nil {
		return err
	}
	if err := win.Fence(); err != nil {
		return err
	}
	if err := check(win.Bytes()[:cell], left, me, 0); err != nil {
		return fmt.Errorf("left halo: %w", err)
	}
	if err := check(win.Bytes()[cell:2*cell], right, me, 1); err != nil {
		return fmt.Errorf("right halo: %w", err)
	}

	// Epoch 2: commutative reduction — every rank adds rank+1 into rank
	// 0's counter.
	var inc [8]byte
	binary.LittleEndian.PutUint64(inc[:], uint64(me+1))
	if err := win.Accumulate(0, 2*cell, inc[:], mpi.AccSumInt64); err != nil {
		return err
	}
	if err := win.Fence(); err != nil {
		return err
	}
	want := uint64(n * (n + 1) / 2)
	if me == 0 {
		if got := binary.LittleEndian.Uint64(win.Bytes()[2*cell:]); got != want {
			return fmt.Errorf("counter after accumulate epoch = %d, want %d", got, want)
		}
	}

	// Epoch 3: every rank reads the counter back with Get.
	var back [8]byte
	if err := win.Get(0, 2*cell, back[:]); err != nil {
		return err
	}
	if err := win.Fence(); err != nil {
		return err
	}
	if got := binary.LittleEndian.Uint64(back[:]); got != want {
		return fmt.Errorf("rank %d read counter %d, want %d", me, got, want)
	}
	return win.Free()
}

// PassiveLock exercises passive-target synchronization on backends with
// native remote memory: every rank adds its contribution to rank 0's
// counter under an exclusive lock (Unlock guarantees remote completion),
// then reads the total back under a shared lock. Emulated windows reject
// Lock with a typed error, so this scenario is not part of Scenarios().
func PassiveLock(c *mpi.Comm, seed int64) error {
	n := c.Size()
	me := c.Rank()
	win, err := c.WinCreate(8)
	if err != nil {
		return err
	}
	if err := win.Lock(0, true); err != nil {
		return err
	}
	var inc [8]byte
	binary.LittleEndian.PutUint64(inc[:], uint64(me+1))
	if err := win.Accumulate(0, 0, inc[:], mpi.AccSumInt64); err != nil {
		return err
	}
	if err := win.Unlock(0); err != nil {
		return err
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	if err := win.Lock(0, false); err != nil {
		return err
	}
	var back [8]byte
	if err := win.Get(0, 0, back[:]); err != nil {
		return err
	}
	if err := win.Unlock(0); err != nil {
		return err
	}
	if got, want := binary.LittleEndian.Uint64(back[:]), uint64(n*(n+1)/2); got != want {
		return fmt.Errorf("rank %d read counter %d under shared lock, want %d", me, got, want)
	}
	return win.Free()
}

// The ft-shrink-allreduce scenario's fixed geometry: the world must be
// built with FTShrinkRanks ranks and a kill schedule of FTShrinkKills,
// which removes FTShrinkVictim during its pre-collective compute phase so
// the survivors park inside the allreduce when the death lands.
const (
	FTShrinkRanks  = 4
	FTShrinkVictim = 2
	FTShrinkKills  = "2@50us"
)

// FTShrinkAllreduce is the fault-tolerance scenario: one rank dies
// mid-allreduce, and every survivor must observe the failure (ErrPeerDown
// or a peer's revoke), run Revoke → Agree → Shrink, and complete the
// reduction on the shrunken communicator with exactly the survivors'
// contributions. It is not part of Scenarios() because it needs a kill
// schedule in the world spec — build the factory with Kills set to
// FTShrinkKills — and because the Meiko MPICH endpoint (by design)
// rejects kill schedules.
func FTShrinkAllreduce(c *mpi.Comm, seed int64) error {
	res, err := apps.FTShrink(c, apps.FTShrinkConfig{Compute: 100 * time.Microsecond})
	if err != nil {
		return err
	}
	if res.Died {
		if c.Rank() != FTShrinkVictim {
			return fmt.Errorf("rank %d died; only rank %d is scheduled to", c.Rank(), FTShrinkVictim)
		}
		return nil
	}
	if c.Rank() == FTShrinkVictim {
		return fmt.Errorf("victim rank %d survived its kill", FTShrinkVictim)
	}
	if !res.Shrunk {
		return fmt.Errorf("rank %d completed without shrinking — the kill never interrupted the collective", c.Rank())
	}
	if res.Survivors != FTShrinkRanks-1 {
		return fmt.Errorf("rank %d shrank to %d ranks, want %d", c.Rank(), res.Survivors, FTShrinkRanks-1)
	}
	want := int64(0)
	for r := 0; r < FTShrinkRanks; r++ {
		if r != FTShrinkVictim {
			want += int64(r) + 1
		}
	}
	if res.Sum != want {
		return fmt.Errorf("rank %d: shrunken allreduce = %d, want %d", c.Rank(), res.Sum, want)
	}
	return nil
}

// persistentRing drives persistent send/recv requests around a ring.
func persistentRing(c *mpi.Comm, seed int64) error {
	n := c.Size()
	right := (c.Rank() + 1) % n
	left := (c.Rank() - 1 + n) % n
	out := make([]byte, 8)
	in := make([]byte, 8)
	ps := c.SendInit(right, 3, out)
	pr := c.RecvInit(left, 3, in)
	for round := 0; round < 5; round++ {
		fill(out, c.Rank(), right, round)
		rr, err := pr.Start()
		if err != nil {
			return err
		}
		sr, err := ps.Start()
		if err != nil {
			return err
		}
		if _, err := sr.Wait(); err != nil {
			return err
		}
		if _, err := rr.Wait(); err != nil {
			return err
		}
		if err := check(in, left, c.Rank(), round); err != nil {
			return err
		}
	}
	return nil
}
