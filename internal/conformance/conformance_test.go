package conformance

import (
	"strings"
	"testing"

	"repro/mpi"
	"repro/platform/registry"

	_ "repro/platform/cluster"
	_ "repro/platform/meiko"
)

var seeds = []int64{1, 7, 42}

// factory adapts a registry spec into the suite's world factory.
func factory(t *testing.T, spec registry.Spec) func(n int) *mpi.World {
	t.Helper()
	return func(n int) *mpi.World {
		s := spec
		s.Ranks = n
		w, err := registry.Build(s)
		if err != nil {
			t.Fatalf("build %s: %v", s.Key(), err)
		}
		return w
	}
}

// TestRegistryMatrix runs the full conformance suite over every registered
// backend: a newly registered backend is swept automatically, with no test
// to write.
func TestRegistryMatrix(t *testing.T) {
	for _, name := range registry.Names() {
		spec := registry.SpecFor(name)
		if spec.Platform == "mem" {
			spec.Credit = 4096 // small, to exercise queued sends
		}
		t.Run(strings.ReplaceAll(name, "/", "_"), func(t *testing.T) {
			if err := Run(factory(t, spec), seeds); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The remaining tests pin down configuration corners the matrix's default
// specs don't reach.

func TestClusterTCPOverEthernet(t *testing.T) {
	spec := registry.Spec{Platform: "cluster", Network: "eth"}
	if err := Run(factory(t, spec), seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

func TestClusterUDPWithLoss(t *testing.T) {
	spec := registry.Spec{Platform: "cluster", Transport: "udp", LossRate: 0.03}
	if err := Run(factory(t, spec), seeds[:1]); err != nil {
		t.Fatal(err)
	}
}

// Tight flow control: tiny credit reservations force heavy queuing; the
// suite must still pass (ordering preserved through the flow layer's
// pending queues).
func TestClusterTightCredits(t *testing.T) {
	spec := registry.Spec{Platform: "cluster", Credit: 2048, Eager: 1000}
	if err := Run(factory(t, spec), seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

// A tiny Meiko eager threshold forces everything through rendezvous.
func TestMeikoAllRendezvous(t *testing.T) {
	spec := registry.Spec{Platform: "meiko", Eager: 1}
	if err := Run(factory(t, spec), seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

// The staged fat-tree congestion model must not change semantics.
func TestMeikoFatTree(t *testing.T) {
	spec := registry.Spec{Platform: "meiko", FatTree: true}
	if err := Run(factory(t, spec), seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

// Soak: a heavier randomized schedule over more seeds on the two primary
// platforms.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	long := []int64{11, 23, 37, 59, 71}
	if err := Run(factory(t, registry.Spec{Platform: "meiko"}), long); err != nil {
		t.Fatal(err)
	}
	if err := Run(factory(t, registry.Spec{Platform: "cluster"}), long[:3]); err != nil {
		t.Fatal(err)
	}
}
