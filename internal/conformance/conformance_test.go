package conformance

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/mpi"
	pcluster "repro/platform/cluster"
	pmeiko "repro/platform/meiko"
)

var seeds = []int64{1, 7, 42}

func memFactory(n int) *mpi.World {
	s := sim.NewScheduler(1)
	s.MaxEvents = 50_000_000
	fab := core.NewMemFabric(s, time.Microsecond, 180)
	fab.Credits = 4096 // small, to exercise queued sends
	eps := make([]core.Endpoint, n)
	for i := range eps {
		e := core.NewEngine(s, i, n, core.EngineCosts{}, nil)
		fab.Attach(e)
		eps[i] = e
	}
	return mpi.NewWorld(s, eps)
}

func TestMemFabric(t *testing.T) {
	if err := Run(memFactory, seeds); err != nil {
		t.Fatal(err)
	}
}

func TestMeikoLowLatency(t *testing.T) {
	f := func(n int) *mpi.World {
		w, _ := pmeiko.NewWorld(pmeiko.Config{Nodes: n, Impl: pmeiko.LowLatency})
		return w
	}
	if err := Run(f, seeds); err != nil {
		t.Fatal(err)
	}
}

func TestMeikoMPICH(t *testing.T) {
	f := func(n int) *mpi.World {
		w, _ := pmeiko.NewWorld(pmeiko.Config{Nodes: n, Impl: pmeiko.MPICH})
		return w
	}
	if err := Run(f, seeds); err != nil {
		t.Fatal(err)
	}
}

func TestClusterTCPOverATM(t *testing.T) {
	f := func(n int) *mpi.World {
		w, _ := pcluster.NewWorld(pcluster.Config{Hosts: n, Transport: pcluster.TCP, Network: atm.OverATM})
		return w
	}
	if err := Run(f, seeds); err != nil {
		t.Fatal(err)
	}
}

func TestClusterTCPOverEthernet(t *testing.T) {
	f := func(n int) *mpi.World {
		w, _ := pcluster.NewWorld(pcluster.Config{Hosts: n, Transport: pcluster.TCP, Network: atm.OverEthernet})
		return w
	}
	if err := Run(f, seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

func TestClusterUDPOverATM(t *testing.T) {
	f := func(n int) *mpi.World {
		w, _ := pcluster.NewWorld(pcluster.Config{Hosts: n, Transport: pcluster.UDP, Network: atm.OverATM})
		return w
	}
	if err := Run(f, seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

func TestClusterUDPWithLoss(t *testing.T) {
	f := func(n int) *mpi.World {
		w, _ := pcluster.NewWorld(pcluster.Config{Hosts: n, Transport: pcluster.UDP, Network: atm.OverATM, LossRate: 0.03})
		return w
	}
	if err := Run(f, seeds[:1]); err != nil {
		t.Fatal(err)
	}
}

// Tight flow control: tiny credit reservations force heavy queuing; the
// suite must still pass (ordering preserved through the pending queues).
func TestClusterTightCredits(t *testing.T) {
	f := func(n int) *mpi.World {
		w, _ := pcluster.NewWorld(pcluster.Config{Hosts: n, Transport: pcluster.TCP, Network: atm.OverATM, CreditBytes: 2048, Eager: 1000})
		return w
	}
	if err := Run(f, seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

// A tiny Meiko eager threshold forces everything through rendezvous.
func TestMeikoAllRendezvous(t *testing.T) {
	f := func(n int) *mpi.World {
		w, _ := pmeiko.NewWorld(pmeiko.Config{Nodes: n, Impl: pmeiko.LowLatency, Eager: 1})
		return w
	}
	if err := Run(f, seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

// The staged fat-tree congestion model must not change semantics.
func TestMeikoFatTree(t *testing.T) {
	f := func(n int) *mpi.World {
		w, _ := pmeiko.NewWorld(pmeiko.Config{Nodes: n, Impl: pmeiko.LowLatency, FatTree: true})
		return w
	}
	if err := Run(f, seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

// The U-Net user-level transport (the paper's future-work direction) must
// provide identical MPI semantics.
func TestClusterUNet(t *testing.T) {
	f := func(n int) *mpi.World {
		w, _ := pcluster.NewWorld(pcluster.Config{Hosts: n, Transport: pcluster.UNET, Network: atm.OverATM})
		return w
	}
	if err := Run(f, seeds); err != nil {
		t.Fatal(err)
	}
}

// Soak: a heavier randomized schedule over more seeds on the two primary
// platforms.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	long := []int64{11, 23, 37, 59, 71}
	f := func(n int) *mpi.World {
		w, _ := pmeiko.NewWorld(pmeiko.Config{Nodes: n, Impl: pmeiko.LowLatency})
		return w
	}
	if err := Run(f, long); err != nil {
		t.Fatal(err)
	}
	g := func(n int) *mpi.World {
		w, _ := pcluster.NewWorld(pcluster.Config{Hosts: n, Transport: pcluster.TCP, Network: atm.OverATM})
		return w
	}
	if err := Run(g, long[:3]); err != nil {
		t.Fatal(err)
	}
}
