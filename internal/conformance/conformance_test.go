package conformance

import (
	"fmt"
	"strings"
	"testing"

	"repro/mpi"
	"repro/platform/registry"

	_ "repro/platform/cluster"
	_ "repro/platform/meiko"
)

var seeds = []int64{1, 7, 42}

// factory adapts a registry spec into the suite's world factory.
func factory(t *testing.T, spec registry.Spec) func(n int) *mpi.World {
	t.Helper()
	return func(n int) *mpi.World {
		s := spec
		s.Ranks = n
		w, err := registry.Build(s)
		if err != nil {
			t.Fatalf("build %s: %v", s.Key(), err)
		}
		return w
	}
}

// TestRegistryMatrix runs the full conformance suite over every registered
// backend: a newly registered backend is swept automatically, with no test
// to write.
func TestRegistryMatrix(t *testing.T) {
	for _, name := range registry.Names() {
		spec := registry.SpecFor(name)
		if spec.Platform == "mem" {
			spec.Credit = 4096 // small, to exercise queued sends
		}
		t.Run(strings.ReplaceAll(name, "/", "_"), func(t *testing.T) {
			if err := Run(factory(t, spec), seeds); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The remaining tests pin down configuration corners the matrix's default
// specs don't reach.

func TestClusterTCPOverEthernet(t *testing.T) {
	spec := registry.Spec{Platform: "cluster", Network: "eth"}
	if err := Run(factory(t, spec), seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

func TestClusterUDPWithLoss(t *testing.T) {
	spec := registry.Spec{Platform: "cluster", Transport: "udp", LossRate: 0.03}
	if err := Run(factory(t, spec), seeds[:1]); err != nil {
		t.Fatal(err)
	}
}

// The hardened reliability stack must pass the full semantic suite at 1%
// injected loss under a pinned fault seed, so the drop schedule — and any
// failure — reproduces exactly.
func TestClusterUDPLossyConformance(t *testing.T) {
	spec := registry.Spec{Platform: "cluster", Transport: "udp", LossRate: 0.01, FaultSeed: 42}
	if err := Run(factory(t, spec), seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

// Collectives layer the same sequencing guarantees many ranks deep;
// they too must survive a lossy wire.
func TestClusterUDPLossyCollectives(t *testing.T) {
	spec := registry.Spec{Platform: "cluster", Transport: "udp", LossRate: 0.01, FaultSeed: 42}
	if err := CollectiveMatrix(factory(t, spec), 4); err != nil {
		t.Fatal(err)
	}
}

// Fault knobs only make sense where a fault layer exists: the registry
// must reject them on non-cluster platforms instead of silently ignoring
// them.
func TestFaultsRejectedOffCluster(t *testing.T) {
	spec := registry.Spec{Platform: "meiko", LossRate: 0.01, Ranks: 2}
	if _, err := registry.Build(spec); err == nil {
		t.Fatal("meiko accepted a fault policy it cannot apply")
	}
}

// Fault injection now composes with the sharded kernel (per-link RNG
// streams): the lossy suite must pass with ranks spread across lanes, and
// stay internally deterministic.
func TestShardedLossyConformance(t *testing.T) {
	spec := registry.Spec{Platform: "cluster", Transport: "udp", LossRate: 0.01, FaultSeed: 42, Lanes: 2}
	if err := Run(factory(t, spec), seeds[:1]); err != nil {
		t.Fatal(err)
	}
}

// Passive-target locks exist only on backends with native remote memory;
// every such backend must serialize exclusive epochs correctly. The
// socket transports reject Lock with a typed error instead.
func TestRMALockPassive(t *testing.T) {
	for _, name := range []string{"mem", "meiko/lowlatency", "cluster/shm"} {
		t.Run(strings.ReplaceAll(name, "/", "_"), func(t *testing.T) {
			f := factory(t, registry.SpecFor(name))
			if _, err := mpi.Launch(f(4), func(c *mpi.Comm) error { return PassiveLock(c, seeds[0]) }); err != nil {
				t.Fatal(err)
			}
		})
	}
	f := factory(t, registry.SpecFor("cluster/tcp"))
	_, err := mpi.Launch(f(2), func(c *mpi.Comm) error { return PassiveLock(c, seeds[0]) })
	if err == nil || !strings.Contains(err.Error(), "passive-target lock") {
		t.Fatalf("emulated window must reject Lock with the typed error, got %v", err)
	}
}

// Tight flow control: tiny credit reservations force heavy queuing; the
// suite must still pass (ordering preserved through the flow layer's
// pending queues).
func TestClusterTightCredits(t *testing.T) {
	spec := registry.Spec{Platform: "cluster", Credit: 2048, Eager: 1000}
	if err := Run(factory(t, spec), seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

// A tiny Meiko eager threshold forces everything through rendezvous.
func TestMeikoAllRendezvous(t *testing.T) {
	spec := registry.Spec{Platform: "meiko", Eager: 1}
	if err := Run(factory(t, spec), seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

// The staged fat-tree congestion model must not change semantics.
func TestMeikoFatTree(t *testing.T) {
	spec := registry.Spec{Platform: "meiko", FatTree: true}
	if err := Run(factory(t, spec), seeds[:2]); err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveMatrix forces every registered algorithm of every
// collective through the tuning layer on every backend, at a power-of-two
// and an odd rank count (the odd pass exercises the "not applicable" skip
// for power-of-two-only algorithms). Reductions run a non-commutative
// matrix product, so an algorithm that combines ranks out of order fails.
func TestCollectiveMatrix(t *testing.T) {
	if a, b := rankMat(0, 0), rankMat(1, 0); matMul(a, b) == matMul(b, a) {
		t.Fatal("rank matrices commute; the reduction-order check is vacuous")
	}
	backends := registry.Names()
	if testing.Short() {
		backends = []string{"mem", "meiko/lowlatency", "cluster/tcp"}
	}
	for _, name := range backends {
		spec := registry.SpecFor(name)
		for _, ranks := range []int{4, 5} {
			t.Run(fmt.Sprintf("%s_%dranks", strings.ReplaceAll(name, "/", "_"), ranks), func(t *testing.T) {
				if err := CollectiveMatrix(factory(t, spec), ranks); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestAutoSelection pins the end-to-end selector wiring: with no tuning
// forced, the algorithm the accounting layer records must track payload
// size and platform capability (hardware broadcast on the Meiko, software
// trees on the cluster).
func TestAutoSelection(t *testing.T) {
	cases := []struct {
		backend string
		bytes   int
		want    string
	}{
		{"meiko/lowlatency", 1 << 10, "coll.bcast.hardware"},
		{"meiko/lowlatency", 128 << 10, "coll.bcast.pipelined"},
		{"cluster/tcp", 1 << 10, "coll.bcast.binomial"},
		{"cluster/tcp", 128 << 10, "coll.bcast.pipelined"},
	}
	for _, tc := range cases {
		f := factory(t, registry.SpecFor(tc.backend))
		rep, err := mpi.Launch(f(4), func(c *mpi.Comm) error {
			return c.Bcast(0, make([]byte, tc.bytes))
		})
		if err != nil {
			t.Fatalf("%s %dB bcast: %v", tc.backend, tc.bytes, err)
		}
		if rep.Acct.Count[tc.want] == 0 {
			t.Errorf("%s %dB bcast: %s not booked; counters: %v", tc.backend, tc.bytes, tc.want, rep.Acct.Count)
		}
	}
}

// Soak: a heavier randomized schedule over more seeds on the two primary
// platforms.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	long := []int64{11, 23, 37, 59, 71}
	if err := Run(factory(t, registry.Spec{Platform: "meiko"}), long); err != nil {
		t.Fatal(err)
	}
	if err := Run(factory(t, registry.Spec{Platform: "cluster"}), long[:3]); err != nil {
		t.Fatal(err)
	}
}

// ftSpecs lists every backend that supports kill schedules (all but the
// Meiko MPICH endpoint, which rejects them by design). The last entry
// runs the recovery under 1% injected packet loss with a pinned fault
// seed: detection, revoke, agree, and shrink must all complete over a
// lossy wire, reproducibly.
var ftSpecs = []registry.Spec{
	{Platform: "mem"},
	{Platform: "meiko"},
	{Platform: "cluster"},
	{Platform: "cluster", Transport: "udp"},
	{Platform: "cluster", Transport: "unet"},
	{Platform: "cluster", Transport: "shm"},
	{Platform: "cluster", Transport: "udp", LossRate: 0.01, FaultSeed: 42},
}

func ftName(s registry.Spec) string {
	name := strings.ReplaceAll(s.Key(), "/", "_")
	if s.LossRate > 0 {
		name += "_lossy"
	}
	return name
}

// TestFTShrinkAllreduce sweeps the ft-shrink-allreduce scenario over
// every kill-capable backend and all three kernels. Each run must
// recover (checked inside the scenario body), each (backend, kernel)
// pair must be bit-identical across two runs, and — faults being
// simulated-time events, not wall-clock ones — the survivor timeline
// must match exactly between the single-lane, sharded, and parallel
// kernels. The lossy spec is exempt from the cross-kernel comparison
// only: the sharded kernel draws losses from per-link RNG streams, a
// different (but internally deterministic) drop schedule.
func TestFTShrinkAllreduce(t *testing.T) {
	kernels := []struct {
		name     string
		lanes    int
		parallel bool
	}{{"single", 0, false}, {"sharded", 2, false}, {"parallel", 8, true}}
	for _, base := range ftSpecs {
		base := base
		t.Run(ftName(base), func(t *testing.T) {
			var ref []int64
			for ki, k := range kernels {
				elapsed := make([][]int64, 2)
				for round := 0; round < 2; round++ {
					spec := base
					spec.Ranks = FTShrinkRanks
					spec.Kills = FTShrinkKills
					spec.Lanes, spec.Parallel = k.lanes, k.parallel
					w, err := registry.Build(spec)
					if err != nil {
						t.Fatal(err)
					}
					rep, err := mpi.Launch(w, func(c *mpi.Comm) error { return FTShrinkAllreduce(c, seeds[0]) })
					if err != nil {
						t.Fatalf("%s round %d: %v", k.name, round, err)
					}
					elapsed[round] = make([]int64, len(rep.RankElapsed))
					for r, d := range rep.RankElapsed {
						elapsed[round][r] = int64(d)
					}
				}
				for r := range elapsed[0] {
					if elapsed[0][r] != elapsed[1][r] {
						t.Errorf("%s rank %d: nondeterministic recovery (%dns vs %dns)", k.name, r, elapsed[0][r], elapsed[1][r])
					}
				}
				if ki == 0 {
					ref = elapsed[0]
					continue
				}
				if base.LossRate > 0 {
					continue
				}
				for r := range ref {
					if ref[r] != elapsed[0][r] {
						t.Errorf("rank %d: single %dns, %s %dns — kernels diverge under faults", r, ref[r], k.name, elapsed[0][r])
					}
				}
			}
		})
	}
}

// TestFTShrinkRejectedOnMPICH pins the capability boundary: the MPICH
// endpoint models a stack without failure detection, so building a world
// that schedules kills on it must fail with a typed error, not die at
// runtime.
func TestFTShrinkRejectedOnMPICH(t *testing.T) {
	spec := registry.SpecFor("meiko/mpich")
	spec.Ranks = FTShrinkRanks
	spec.Kills = FTShrinkKills
	if _, err := registry.Build(spec); err == nil {
		t.Fatal("meiko/mpich accepted a kill schedule it cannot detect")
	}
}

// shardedSpecs lists one spec per backend family the sharded kernel must
// reproduce bit-identically: the mem reference, both Meiko implementations
// plus the staged fat tree (whose switch stages home on lane 0), and all
// four cluster transports (the shared Ethernet segment likewise a lane-0
// stage; the ATM switch routes between lanes; the shm segment's
// visibility latency is its own lookahead bound).
var shardedSpecs = []registry.Spec{
	{Platform: "mem", Credit: 4096},
	{Platform: "meiko"},
	{Platform: "meiko", Impl: "mpich"},
	{Platform: "meiko", FatTree: true},
	{Platform: "cluster"},
	{Platform: "cluster", Transport: "udp"},
	{Platform: "cluster", Transport: "unet"},
	{Platform: "cluster", Transport: "shm"},
}

func shardedName(s registry.Spec) string {
	name := strings.ReplaceAll(s.Key(), "/", "_")
	if s.FatTree {
		name += "_fattree"
	}
	return name
}

// TestShardedConformance sweeps the full suite over the sharded kernel on
// every shardable backend: each scenario must pass and stay internally
// deterministic with ranks spread across lanes (including lane counts that
// divide the world unevenly and exceed the rank count).
func TestShardedConformance(t *testing.T) {
	for _, base := range shardedSpecs {
		for _, lanes := range []int{2, 3, 8} {
			spec := base
			spec.Lanes = lanes
			t.Run(fmt.Sprintf("%s_lanes%d", shardedName(base), lanes), func(t *testing.T) {
				if err := Run(factory(t, spec), seeds[:1]); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestShardedMatchesSingleLane runs every scenario on the single-lane and
// sharded kernels — the latter both sequentially and with the pinned-worker
// parallel executor — and requires identical per-rank virtual finish times
// on every backend: sharding is a kernel implementation detail, not a model
// change.
func TestShardedMatchesSingleLane(t *testing.T) {
	for _, base := range shardedSpecs {
		base := base
		t.Run(shardedName(base), func(t *testing.T) {
			for _, sc := range Scenarios() {
				sc := sc
				t.Run(sc.Name, func(t *testing.T) {
					kernels := []struct {
						name     string
						lanes    int
						parallel bool
					}{{"single", 0, false}, {"sharded", 3, false}, {"parallel", 3, true}}
					elapsed := make([][]int64, len(kernels))
					for i, k := range kernels {
						spec := base
						spec.Lanes, spec.Parallel, spec.Ranks = k.lanes, k.parallel, sc.Ranks
						w, err := registry.Build(spec)
						if err != nil {
							t.Fatal(err)
						}
						rep, err := mpi.Launch(w, func(c *mpi.Comm) error { return sc.Body(c, seeds[0]) })
						if err != nil {
							t.Fatalf("%s: %v", k.name, err)
						}
						elapsed[i] = make([]int64, len(rep.RankElapsed))
						for r, d := range rep.RankElapsed {
							elapsed[i][r] = int64(d)
						}
					}
					for i, k := range kernels[1:] {
						for r := range elapsed[0] {
							if elapsed[0][r] != elapsed[i+1][r] {
								t.Errorf("rank %d: single %dns, %s %dns", r, elapsed[0][r], k.name, elapsed[i+1][r])
							}
						}
					}
				})
			}
		})
	}
}
