package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Cost-accounting labels. Every microsecond the model charges is tagged
// with one of these categories, so the harness can print Table 1's overhead
// breakdown from counters instead of subtraction.
const (
	CostWire     = "wire"     // serialization + propagation on the network
	CostSyscall  = "syscall"  // kernel boundary crossings (read/write)
	CostKernel   = "kernel"   // in-kernel protocol and driver processing
	CostCopy     = "copy"     // memory copies (bounce buffer, pack/unpack)
	CostMatch    = "match"    // send/receive matching
	CostProtocol = "protocol" // envelope construction, header bytes, credits
	CostSync     = "sync"     // SPARC <-> Elan (or proc <-> NIC) synchronization
	CostCompute  = "compute"  // application computation (apps only)
	CostOverhead = "overhead" // per-call library bookkeeping
)

// Acct accumulates charged time per category and event counters per name.
// One Acct exists per rank; charging advances the owning proc's virtual
// clock, so the books always reconcile with elapsed time the proc spent.
type Acct struct {
	Time  map[string]sim.Duration
	Count map[string]int64
}

// NewAcct returns an empty account.
func NewAcct() *Acct {
	return &Acct{Time: make(map[string]sim.Duration), Count: make(map[string]int64)}
}

// Charge advances p by d and books it under label. A nil Acct still
// advances the proc (devices use this for contexts without books).
func (a *Acct) Charge(p *sim.Proc, label string, d sim.Duration) {
	if d <= 0 {
		return
	}
	p.Advance(d)
	if a != nil {
		a.Time[label] += d
	}
}

// Book records d under label without advancing any proc. Used for costs
// paid on device timelines (Elan occupancy, NIC processing) that still
// belong in the breakdown.
func (a *Acct) Book(label string, d sim.Duration) {
	if a != nil && d > 0 {
		a.Time[label] += d
	}
}

// Incr bumps the event counter name by n.
func (a *Acct) Incr(name string, n int64) {
	if a != nil {
		a.Count[name] += n
	}
}

// SetMax raises the gauge name to v when v exceeds its current value.
// High-water gauges (names ending in "-max", e.g. the matcher queue
// depths) merge by maximum rather than by sum.
func (a *Acct) SetMax(name string, v int64) {
	if a != nil && v > a.Count[name] {
		a.Count[name] = v
	}
}

// Total reports the sum of all booked time.
func (a *Acct) Total() sim.Duration {
	var t sim.Duration
	for _, d := range a.Time {
		t += d
	}
	return t
}

// Merge adds other's books into a.
func (a *Acct) Merge(other *Acct) {
	if other == nil {
		return
	}
	for k, v := range other.Time {
		a.Time[k] += v
	}
	for k, v := range other.Count {
		if strings.HasSuffix(k, "-max") {
			// High-water gauges: the job-wide value is the per-rank maximum.
			if v > a.Count[k] {
				a.Count[k] = v
			}
		} else {
			a.Count[k] += v
		}
	}
}

// String renders the account sorted by label, microseconds.
func (a *Acct) String() string {
	var labels []string
	for k := range a.Time {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	var b strings.Builder
	for _, k := range labels {
		fmt.Fprintf(&b, "%-10s %10.1f us\n", k, float64(a.Time[k])/1e3)
	}
	return b.String()
}
