package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestAcctChargeAdvancesAndBooks(t *testing.T) {
	s := sim.NewScheduler(1)
	a := NewAcct()
	s.Spawn("p", func(p *sim.Proc) {
		a.Charge(p, CostWire, 5*time.Microsecond)
		a.Charge(p, CostWire, 3*time.Microsecond)
		a.Charge(p, CostCopy, 0) // zero: no-op
		if p.Now() != sim.Time(8*time.Microsecond) {
			t.Errorf("proc at %v, want 8us", p.Now())
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Time[CostWire] != 8*time.Microsecond {
		t.Fatalf("wire = %v", a.Time[CostWire])
	}
	if _, ok := a.Time[CostCopy]; ok {
		t.Fatal("zero charge booked")
	}
	if a.Total() != 8*time.Microsecond {
		t.Fatalf("total = %v", a.Total())
	}
}

func TestAcctNilSafe(t *testing.T) {
	s := sim.NewScheduler(1)
	var a *Acct
	s.Spawn("p", func(p *sim.Proc) {
		a.Charge(p, CostWire, time.Microsecond) // must still advance
		if p.Now() != sim.Time(time.Microsecond) {
			t.Errorf("nil acct did not advance proc")
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	a.Book(CostWire, time.Microsecond) // no panic
	a.Incr("x", 1)                     // no panic
}

func TestAcctMergeAndString(t *testing.T) {
	a, b := NewAcct(), NewAcct()
	a.Book(CostMatch, 10*time.Microsecond)
	a.Incr("send", 2)
	b.Book(CostMatch, 5*time.Microsecond)
	b.Book(CostSync, time.Microsecond)
	b.Incr("send", 3)
	a.Merge(b)
	if a.Time[CostMatch] != 15*time.Microsecond || a.Time[CostSync] != time.Microsecond {
		t.Fatalf("merge: %+v", a.Time)
	}
	if a.Count["send"] != 5 {
		t.Fatalf("counters: %+v", a.Count)
	}
	out := a.String()
	if !strings.Contains(out, "match") || !strings.Contains(out, "15.0 us") {
		t.Fatalf("render:\n%s", out)
	}
	a.Merge(nil) // no panic
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeStandard: "standard", ModeSync: "sync", ModeReady: "ready", ModeBuffered: "buffered",
	} {
		if m.String() != want {
			t.Fatalf("%d = %q", m, m.String())
		}
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode renders empty")
	}
}

func TestPacketKindStrings(t *testing.T) {
	for k, want := range map[PacketKind]string{
		PktEager: "eager", PktRTS: "rts", PktCTS: "cts", PktData: "data", PktSyncAck: "syncack", PktCredit: "credit",
	} {
		if k.String() != want {
			t.Fatalf("%d = %q", k, k.String())
		}
	}
	if PacketKind(99).String() != "unknown" {
		t.Fatal("unknown kind")
	}
}

func TestErrorRendering(t *testing.T) {
	err := Errorf(ErrTruncate, "lost %d bytes", 5)
	if err.Code != ErrTruncate || !strings.Contains(err.Error(), "lost 5 bytes") {
		t.Fatalf("err = %v", err)
	}
}
