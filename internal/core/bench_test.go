package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// Host-side throughput of the protocol engine over the reference
// transport: how many simulated MPI messages per wall-clock second.

func benchPingPong(b *testing.B, size int) {
	s := sim.NewScheduler(1)
	fab := NewMemFabric(s, time.Microsecond, 180)
	e0 := NewEngine(s, 0, 2, EngineCosts{}, nil)
	e1 := NewEngine(s, 1, 2, EngineCosts{}, nil)
	fab.Attach(e0)
	fab.Attach(e1)
	data := make([]byte, size)
	buf := make([]byte, size)
	s.Spawn("r0", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			req, _ := e0.Isend(p, 1, 0, 0, ModeStandard, data)
			e0.Wait(p, req)
			rr, _ := e0.Irecv(p, 1, 0, 0, buf)
			e0.Wait(p, rr)
		}
	})
	s.Spawn("r1", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			rr, _ := e1.Irecv(p, 0, 0, 0, buf)
			e1.Wait(p, rr)
			req, _ := e1.Isend(p, 0, 0, 0, ModeStandard, data)
			e1.Wait(p, req)
		}
	})
	b.SetBytes(int64(2 * size))
	b.ResetTimer()
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEnginePingPong(b *testing.B) {
	for _, size := range []int{16, 1024, 65536} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) { benchPingPong(b, size) })
	}
}

func BenchmarkMatcherArrive(b *testing.B) {
	var m Matcher
	for i := 0; i < 64; i++ {
		m.PostRecv(&Request{IsRecv: true, Env: Envelope{Source: i, Tag: i, Context: 0}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := Envelope{Source: i % 64, Tag: i % 64, Context: 0}
		if r := m.Arrive(env); r != nil {
			m.PostRecv(r) // repost to keep the queue full
		}
	}
}
