package core

import "repro/internal/sim"

// Endpoint is the per-rank device interface the mpi package drives. The
// poll-model Engine (the paper's low-latency design) implements it, and so
// does the MPICH-over-tport baseline on the Meiko — they differ exactly in
// where matching runs (main CPU vs communications co-processor), which is
// the comparison of Figure 2.
type Endpoint interface {
	Rank() int
	Size() int
	Acct() *Acct
	Scheduler() *sim.Scheduler

	Isend(p *sim.Proc, dst, tag, ctx int, mode Mode, data []byte) (*Request, error)
	Irecv(p *sim.Proc, src, tag, ctx int, buf []byte) (*Request, error)
	Wait(p *sim.Proc, r *Request) (Status, error)
	Test(p *sim.Proc, r *Request) (Status, bool, error)
	Probe(p *sim.Proc, src, tag, ctx int) (Status, error)
	Iprobe(p *sim.Proc, src, tag, ctx int) (Status, bool, error)
	Cancel(p *sim.Proc, r *Request) error
	BufferAttach(n int)
	BufferDetach() int

	// Finalize drives progress until no locally-initiated transfer still
	// needs this process (MPI_Finalize's completion guarantee: buffered
	// sends are delivered even if the application makes no further MPI
	// calls). It must not wait for unmatched receives.
	Finalize(p *sim.Proc)
}

var _ Endpoint = (*Engine)(nil)

// HWBcaster is implemented by endpoints whose platform has a hardware
// broadcast (the Meiko CS/2). All ranks of the context must call HWBcast
// collectively; buf is the payload at the root and the destination
// elsewhere.
type HWBcaster interface {
	HWBcast(p *sim.Proc, root, ctx int, buf []byte) error
}

// NewRequest builds a bare request for alternative Endpoint
// implementations (e.g. the tport-based MPICH baseline), which manage
// completion themselves via Complete.
func NewRequest(isRecv bool, env Envelope, buf []byte) *Request {
	return &Request{IsRecv: isRecv, Env: env, Buf: buf}
}

// Complete finishes the request with the given status and error; exported
// for alternative Endpoint implementations.
func (r *Request) Complete(st Status, err error) { r.complete(st, err) }

// MarkCancelled flags the request as cancelled; exported for alternative
// Endpoint implementations.
func (r *Request) MarkCancelled() { r.cancelled = true }
