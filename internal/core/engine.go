package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// EngineCosts are the engine-level charges of the poll-model (SPARC
// matching) design. Wire, kernel and co-processor time belongs to the
// transport; the engine charges what the main CPU does: matching, bounce
// copies, and per-call bookkeeping.
type EngineCosts struct {
	Match        sim.Duration // per matching attempt (arrival or post)
	CopyBase     sim.Duration // fixed cost of a bounce-buffer copy
	CopyPerByte  sim.Duration // per-byte bounce-to-user copy cost
	SendOverhead sim.Duration // per-send library bookkeeping
	RecvOverhead sim.Duration // per-receive library bookkeeping
}

// Engine is one rank's poll-model MPI engine: the paper's low-latency
// design, where matching runs on the main processor inside MPI calls rather
// than on a communications co-processor. Exactly one proc (the rank's
// process) calls its methods; transports may additionally invoke the
// completion upcalls from scheduler/event context.
type Engine struct {
	rank  int
	size  int
	s     *sim.Scheduler
	tr    Transport
	costs EngineCosts
	acct  *Acct

	match   Matcher
	cond    *sim.Cond
	nextID  int64
	seq     map[int]uint64 // per-destination envelope sequence
	pending map[int64]*Request

	// wins holds the registered one-sided windows by id (see window.go);
	// lazily allocated by WinCreate.
	wins map[int]*WinState

	// Receive-path recycling: pool feeds self-send bounce buffers (and is
	// available to the transport), inFree recycles unexpected-queue nodes,
	// and scratch carries a matched-on-arrival message through
	// deliverMatched without heap-allocating it. scratch reuse is safe
	// because only the rank's own proc runs the arrival path and no
	// transport retains the *InMsg past Accept.
	pool    *BufPool
	inFree  []*InMsg
	scratch InMsg

	// Buffered-send (Bsend) space accounting.
	bufCap  int
	bufUsed int

	// Errors records asynchronous protocol errors (e.g. a ready-mode send
	// arriving with no posted receive), which MPI cannot attach to any
	// particular call at the receiver.
	Errors []error

	// fatal is a transport-fatal error (a dead link): once set, every
	// pending request has been completed with it and every subsequent
	// operation fails fast instead of parking forever.
	fatal error

	// Fault-tolerance state (see ft.go): peers declared dead with their
	// death reasons, in detection order; how many of those deaths the
	// process has acknowledged (FailureAck); revoked communicator context
	// ids; and window lock grants deferred out of event context.
	dead      map[int]error
	deadOrder []int
	ackedDead int
	revoked   map[int]bool
	defGrants []deferredGrant

	// Trace, when set, receives a timeline event per protocol action.
	Trace *trace.Log
}

// SetTrace attaches a timeline log (the profiling interface).
func (e *Engine) SetTrace(l *trace.Log) { e.Trace = l }

// TraceLog returns the attached timeline log (nil when tracing is off).
func (e *Engine) TraceLog() *trace.Log { return e.Trace }

// trc records an event if tracing is enabled.
func (e *Engine) trc(kind trace.Kind, peer, tag, bytes int, note string) {
	if e.Trace == nil {
		return
	}
	e.Trace.Add(trace.Event{T: e.s.Now(), Rank: e.rank, Kind: kind, Peer: peer, Tag: tag, Bytes: bytes, Note: note})
}

// NewEngine returns an engine for the given rank of a size-rank job.
func NewEngine(s *sim.Scheduler, rank, size int, costs EngineCosts, acct *Acct) *Engine {
	if acct == nil {
		acct = NewAcct()
	}
	return &Engine{
		rank:    rank,
		size:    size,
		s:       s,
		costs:   costs,
		acct:    acct,
		cond:    sim.NewCond(s),
		seq:     make(map[int]uint64),
		pending: make(map[int64]*Request),
		pool:    NewBufPool(acct),
	}
}

// Pool exposes the engine's buffer pool so its transport can draw bounce
// buffers and frames from the same recycled storage.
func (e *Engine) Pool() *BufPool { return e.pool }

// newInMsg draws an unexpected-queue node from the freelist.
func (e *Engine) newInMsg() *InMsg {
	if n := len(e.inFree); n > 0 {
		m := e.inFree[n-1]
		e.inFree[n-1] = nil
		e.inFree = e.inFree[:n-1]
		return m
	}
	return &InMsg{}
}

// freeInMsg recycles a node the matcher handed back; callers must be done
// with every field (the bounce payload has been recycled separately).
func (e *Engine) freeInMsg(m *InMsg) {
	if m == nil || m == &e.scratch {
		return
	}
	*m = InMsg{}
	e.inFree = append(e.inFree, m)
}

// SetTransport attaches the platform transport; must be called before use.
func (e *Engine) SetTransport(tr Transport) { e.tr = tr }

// MaxEager reports the transport's eager/rendezvous crossover in bytes.
func (e *Engine) MaxEager() int { return e.tr.MaxEager() }

// Transport reports the attached transport.
func (e *Engine) Transport() Transport { return e.tr }

// Rank reports this engine's rank.
func (e *Engine) Rank() int { return e.rank }

// Size reports the job size.
func (e *Engine) Size() int { return e.size }

// Acct reports the engine's cost account.
func (e *Engine) Acct() *Acct { return e.acct }

// Scheduler reports the simulation scheduler.
func (e *Engine) Scheduler() *sim.Scheduler { return e.s }

// BufferAttach provides n bytes of buffered-send space (MPI_Buffer_attach).
func (e *Engine) BufferAttach(n int) { e.bufCap = n }

// BufferDetach removes the buffered-send buffer, returning its size.
func (e *Engine) BufferDetach() int {
	n := e.bufCap
	e.bufCap = 0
	return n
}

// ---------------------------------------------------------------- sends --

// Isend starts a nonblocking send of data to dst with the given tag,
// communicator context and mode. The returned request completes according
// to the mode's semantics.
func (e *Engine) Isend(p *sim.Proc, dst, tag, ctx int, mode Mode, data []byte) (*Request, error) {
	if e.fatal != nil {
		return nil, e.fatal
	}
	if dst < 0 || dst >= e.size {
		return nil, Errorf(ErrInternal, "send to invalid rank %d (size %d)", dst, e.size)
	}
	if err := e.ftSendCheck(dst, ctx); err != nil {
		return nil, err
	}
	e.nextID++
	e.seq[dst]++
	req := &Request{
		ID: e.nextID,
		Env: Envelope{
			Source:  e.rank,
			Dest:    dst,
			Tag:     tag,
			Context: ctx,
			Count:   len(data),
			Seq:     e.seq[dst],
			Mode:    mode,
			SendID:  e.nextID,
		},
		Buf: data,
	}
	e.pending[req.ID] = req
	e.acct.Charge(p, CostOverhead, e.costs.SendOverhead)
	e.acct.Incr("send", 1)
	e.trc(trace.SendStart, dst, tag, len(data), mode.String())

	if dst == e.rank {
		return e.selfSend(p, req, mode, data)
	}

	switch mode {
	case ModeSync:
		req.ackWanted = true
		e.tr.Send(p, req)
	case ModeBuffered:
		need := len(data)
		if e.bufUsed+need > e.bufCap {
			delete(e.pending, req.ID)
			return nil, Errorf(ErrBuffer, "buffered send of %d bytes exceeds attached buffer (%d of %d used)", need, e.bufUsed, e.bufCap)
		}
		e.bufUsed += need
		// Copy into the attached buffer so the caller's storage is free to
		// reuse immediately; transmission proceeds in the background.
		stable := make([]byte, need)
		copy(stable, data)
		req.Buf = stable
		e.acct.Charge(p, CostCopy, e.costs.CopyBase+sim.Duration(need)*e.costs.CopyPerByte)
		req.buffered = true
		e.tr.Send(p, req)
		req.complete(Status{Source: dst, Tag: tag, Count: need}, nil)
	default: // standard and ready
		e.tr.Send(p, req)
	}
	req.sendMaybeComplete()
	return req, nil
}

// selfSend delivers a message to this rank without touching the transport:
// a memory copy through the matcher. All modes are locally complete except
// synchronous, which still requires the matching receive.
func (e *Engine) selfSend(p *sim.Proc, req *Request, mode Mode, data []byte) (*Request, error) {
	stable := e.pool.Get(len(data))
	copy(stable, data)
	e.acct.Charge(p, CostCopy, e.costs.CopyBase+sim.Duration(len(data))*e.costs.CopyPerByte)
	req.sent = true
	if mode == ModeSync {
		req.ackWanted = true
	}
	env := req.Env
	e.acct.Charge(p, CostMatch, e.costs.Match)
	e.trc(trace.Arrive, env.Source, env.Tag, env.Count, "self")
	if rr := e.match.Arrive(env); rr != nil {
		e.scratch = InMsg{Env: env, Data: stable, Pool: e.pool}
		e.deliverMatched(p, &e.scratch, rr)
	} else {
		if mode == ModeReady {
			e.Errors = append(e.Errors, Errorf(ErrReady, "ready-mode self-send (tag %d) before a matching receive was posted", env.Tag))
		}
		m := e.newInMsg()
		m.Env, m.Data, m.Pool = env, stable, e.pool
		e.match.AddUnexpected(m)
		e.acct.SetMax("match.unexpected-max", int64(e.match.UnexpectedLen()))
	}
	req.sendMaybeComplete()
	e.retire(req)
	return req, nil
}

// --------------------------------------------------------------- receives --

// Irecv posts a nonblocking receive into buf matching (src, tag, ctx);
// src may be AnySource and tag may be AnyTag.
func (e *Engine) Irecv(p *sim.Proc, src, tag, ctx int, buf []byte) (*Request, error) {
	if e.fatal != nil {
		return nil, e.fatal
	}
	if src != AnySource && (src < 0 || src >= e.size) {
		return nil, Errorf(ErrInternal, "receive from invalid rank %d (size %d)", src, e.size)
	}
	if err := e.ftRecvCheck(src, ctx); err != nil {
		return nil, err
	}
	e.nextID++
	req := &Request{
		ID:     e.nextID,
		IsRecv: true,
		Env:    Envelope{Source: src, Tag: tag, Context: ctx},
		Buf:    buf,
	}
	// Drain arrivals first so the unexpected queue reflects true arrival
	// order before this receive is considered (and so a ready-mode send
	// that already arrived is correctly flagged as unmatched-at-arrival).
	e.Progress(p)
	// The drain may have delivered a revoke or death notice; re-check so
	// the receive cannot post onto a context that just died.
	if err := e.ftRecvCheck(src, ctx); err != nil {
		return nil, err
	}
	e.pending[req.ID] = req
	e.acct.Charge(p, CostOverhead, e.costs.RecvOverhead)
	e.acct.Charge(p, CostMatch, e.costs.Match)
	e.acct.Incr("recv", 1)
	e.trc(trace.RecvPost, src, tag, len(buf), "")

	if msg := e.match.PostRecv(req); msg != nil {
		e.deliverMatched(p, msg, req)
		e.freeInMsg(msg)
	} else {
		e.acct.SetMax("match.posted-max", int64(e.match.PostedLen()))
		// Nothing matched on post: a rendezvous-sized receive with a fully
		// specific pattern is advertised back to its sender so a matching
		// send can skip the RTS/CTS round trip and write the payload
		// directly (the RDMA-write rendezvous; see RecvAdvertiser).
		if ra, ok := e.tr.(RecvAdvertiser); ok &&
			src != AnySource && src != e.rank && tag != AnyTag && len(buf) > e.tr.MaxEager() {
			ra.AdvertiseRecv(p, req)
		}
	}
	return req, nil
}

// deliverMatched finishes the match of an in-queue message with receive req:
// eager payloads are copied out of bounce space (and the space released);
// rendezvous messages are accepted so the transport can move the payload.
func (e *Engine) deliverMatched(p *sim.Proc, msg *InMsg, req *Request) {
	req.matched = true
	req.matchedSrc = msg.Env.Source
	e.trc(trace.Match, msg.Env.Source, msg.Env.Tag, msg.Env.Count, "")
	if msg.Rndv {
		e.tr.Accept(p, msg, req)
		return
	}
	n := len(msg.Data)
	st := Status{Source: msg.Env.Source, Tag: msg.Env.Tag, Count: n}
	var err error
	if n > len(req.Buf) {
		n = len(req.Buf)
		st.Count = n
		err = Errorf(ErrTruncate, "message of %d bytes truncated to %d-byte receive buffer", len(msg.Data), len(req.Buf))
	}
	copy(req.Buf[:n], msg.Data[:n])
	e.acct.Charge(p, CostCopy, e.costs.CopyBase+sim.Duration(n)*e.costs.CopyPerByte)
	if msg.Env.Source == e.rank {
		// Self-message: no transport resources to release; a synchronous
		// self-send acknowledges directly.
		if msg.Env.Mode == ModeSync {
			if sreq := e.pending[msg.Env.SendID]; sreq != nil {
				sreq.acked = true
				sreq.sendMaybeComplete()
				e.retire(sreq)
			}
		}
	} else {
		e.tr.Release(p, msg.Env.Source, len(msg.Data))
		if msg.Env.Mode == ModeSync {
			e.tr.Control(p, msg.Env.Source, PktSyncAck, msg.Env)
		}
	}
	if msg.Pool != nil {
		// The bounce buffer has been copied out; recycle it. No virtual
		// time is charged — pooling is a host-side optimization.
		msg.Pool.Put(msg.Data)
		msg.Data, msg.Pool = nil, nil
	}
	req.complete(st, err)
	e.retire(req)
	e.trc(trace.RecvDone, st.Source, st.Tag, st.Count, "")
	e.cond.Broadcast()
}

// ----------------------------------------------------------------- progress --

// pollOnce surfaces and handles at most one transport packet, reporting
// whether one was processed.
func (e *Engine) pollOnce(p *sim.Proc) bool {
	pkt := e.tr.Poll(p)
	if pkt == nil {
		return false
	}
	e.handle(p, pkt)
	return true
}

// Progress drains all currently pending arrivals. It is invoked by every
// blocking call and by Test/Iprobe — the poll model performs matching work
// only inside MPI calls, which is precisely the latency/background-progress
// trade the paper studies.
func (e *Engine) Progress(p *sim.Proc) {
	e.flushDeferredGrants(p)
	for e.pollOnce(p) {
	}
}

func (e *Engine) handle(p *sim.Proc, pkt *Packet) {
	switch pkt.Kind {
	case PktEager:
		e.acct.Charge(p, CostMatch, e.costs.Match)
		e.trc(trace.Arrive, pkt.Env.Source, pkt.Env.Tag, pkt.Env.Count, "eager")
		if e.revoked[pkt.Env.Context] {
			// Stale traffic on a revoked communicator: return the bounce
			// space (the sender may be alive and reuse the pair's credits on
			// another communicator) and drop the message.
			if pkt.Env.Source != e.rank {
				e.tr.Release(p, pkt.Env.Source, len(pkt.Data))
			}
			if pkt.Pool != nil {
				pkt.Pool.Put(pkt.Data)
			}
			return
		}
		if req := e.match.Arrive(pkt.Env); req != nil {
			// Matched on arrival: deliver through the reusable scratch node
			// so the hot path performs no allocation.
			e.scratch = InMsg{Env: pkt.Env, Data: pkt.Data, Pool: pkt.Pool}
			e.deliverMatched(p, &e.scratch, req)
			return
		}
		if pkt.Env.Mode == ModeReady {
			e.Errors = append(e.Errors, Errorf(ErrReady, "ready-mode send from rank %d (tag %d) arrived before a matching receive was posted", pkt.Env.Source, pkt.Env.Tag))
		}
		m := e.newInMsg()
		m.Env, m.Data, m.Pool = pkt.Env, pkt.Data, pkt.Pool
		e.match.AddUnexpected(m)
		e.acct.SetMax("match.unexpected-max", int64(e.match.UnexpectedLen()))
	case PktRTS:
		e.acct.Charge(p, CostMatch, e.costs.Match)
		e.trc(trace.Arrive, pkt.Env.Source, pkt.Env.Tag, pkt.Env.Count, "rts")
		if e.revoked[pkt.Env.Context] {
			// The sender's request was already failed by its own revoke;
			// drop the announcement instead of matching it.
			return
		}
		if req := e.match.Arrive(pkt.Env); req != nil {
			req.matched = true
			req.matchedSrc = pkt.Env.Source
			e.trc(trace.Match, pkt.Env.Source, pkt.Env.Tag, pkt.Env.Count, "rndv")
			e.scratch = InMsg{Env: pkt.Env, Rndv: true, Handle: pkt.Handle}
			e.tr.Accept(p, &e.scratch, req)
			return
		}
		if pkt.Env.Mode == ModeReady {
			e.Errors = append(e.Errors, Errorf(ErrReady, "ready-mode send from rank %d (tag %d) arrived before a matching receive was posted", pkt.Env.Source, pkt.Env.Tag))
		}
		m := e.newInMsg()
		m.Env, m.Rndv, m.Handle = pkt.Env, true, pkt.Handle
		e.match.AddUnexpected(m)
		e.acct.SetMax("match.unexpected-max", int64(e.match.UnexpectedLen()))
	case PktCTS:
		req := e.pending[pkt.ReqID]
		if req == nil {
			// Under fault tolerance a CTS may race a peer death or revoke
			// that already failed and retired the send; only an unexplained
			// orphan is a protocol error.
			if !e.ftActive() {
				e.Errors = append(e.Errors, Errorf(ErrInternal, "CTS for unknown send request %d", pkt.ReqID))
			}
			return
		}
		req.acked = true
		e.tr.SendPayload(p, req, pkt)
		req.sendMaybeComplete()
		if req.Done() {
			e.retire(req)
		}
		e.cond.Broadcast()
	case PktSyncAck:
		req := e.pending[pkt.ReqID]
		if req == nil {
			return // already completed (e.g. duplicate ack)
		}
		req.acked = true
		req.sendMaybeComplete()
		if req.Done() {
			e.retire(req)
		}
		e.cond.Broadcast()
	case PktData:
		// Stream transports place the payload into the posted buffer before
		// surfacing PktData; completion happens here so the copy/kernel
		// charges land on the receiving proc.
		req := e.pending[pkt.ReqID]
		if req == nil {
			if pkt.Pool != nil && pkt.Data != nil {
				pkt.Pool.Put(pkt.Data)
			}
			if !e.ftActive() {
				e.Errors = append(e.Errors, Errorf(ErrInternal, "payload for unknown receive request %d", pkt.ReqID))
			}
			return
		}
		if pkt.Data != nil {
			n := len(pkt.Data)
			if n > len(req.Buf) {
				n = len(req.Buf)
			}
			copy(req.Buf[:n], pkt.Data[:n])
			if pkt.Pool != nil {
				pkt.Pool.Put(pkt.Data)
				pkt.Data = nil
			}
		}
		e.finishRecvData(req, pkt.Env)
	case PktRMALock:
		e.winLockMsg(p, pkt.Env)
	case PktRMAUnlock:
		e.winUnlockMsg(p, pkt.Env)
	case PktRMAGrant:
		e.winGrantMsg(pkt.Env)
	case PktRevoke:
		e.revokeMsg(p, pkt.Env)
	default:
		e.Errors = append(e.Errors, Errorf(ErrInternal, "unexpected packet kind %v", pkt.Kind))
	}
}

func (e *Engine) finishRecvData(req *Request, env Envelope) {
	n := env.Count
	st := Status{Source: env.Source, Tag: env.Tag, Count: n}
	var err error
	if n > len(req.Buf) {
		st.Count = len(req.Buf)
		err = Errorf(ErrTruncate, "message of %d bytes truncated to %d-byte receive buffer", n, len(req.Buf))
	}
	req.complete(st, err)
	delete(e.pending, req.ID)
	e.trc(trace.RecvDone, st.Source, st.Tag, st.Count, "rndv")
	e.cond.Broadcast()
}

// retire drops a request from the pending table once nothing can still
// reference it: receives when complete, sends only after the transport has
// finished moving the data (a buffered rendezvous send is "done" for the
// caller long before its CTS arrives).
func (e *Engine) retire(req *Request) {
	if !req.done {
		return
	}
	if !req.IsRecv && !req.sent {
		return
	}
	delete(e.pending, req.ID)
}

// ------------------------------------------------- transport upcalls --

// SendDone marks req's local transmission complete. Callable from event
// context (no time is charged).
func (e *Engine) SendDone(req *Request) {
	req.sent = true
	e.trc(trace.SendDone, req.Env.Dest, req.Env.Tag, req.Env.Count, "")
	if req.buffered {
		e.bufUsed -= len(req.Buf)
		if e.bufUsed < 0 {
			e.bufUsed = 0
		}
	}
	req.sendMaybeComplete()
	if req.Done() {
		e.retire(req)
	}
	e.cond.Broadcast()
}

// SendAcked marks a send request's match acknowledged: a rendezvous CTS
// consumed by the platform (the Meiko Elan handles CTS without the engine)
// or a synchronous-mode ack. Callable from event context.
func (e *Engine) SendAcked(req *Request) {
	req.acked = true
	req.sendMaybeComplete()
	e.retire(req)
	e.cond.Broadcast()
}

// RecvDataDone marks a rendezvous payload fully landed in req.Buf (e.g. on
// DMA completion). Callable from event context.
func (e *Engine) RecvDataDone(req *Request, env Envelope) {
	e.finishRecvData(req, env)
}

// Wake nudges procs blocked in Wait/Probe to re-poll; transports call it on
// packet arrival. Callable from event context.
func (e *Engine) Wake() { e.cond.Broadcast() }

// Fatal declares the transport dead: err completes every pending request
// (so blocked Wait/Test callers observe the failure instead of spinning
// forever) and fails all subsequent operations. The first fatal error
// wins; later ones are ignored. Callable from event context.
func (e *Engine) Fatal(err error) {
	if e.fatal != nil {
		return
	}
	e.fatal = err
	e.Errors = append(e.Errors, err)
	for id, r := range e.pending {
		if !r.Done() {
			r.complete(Status{}, err)
		}
		delete(e.pending, id)
	}
	e.cond.Broadcast()
	// Transports park procs on conditions of their own (the CS/2
	// hardware-broadcast slot wait); give them a chance to wake those so
	// a killed process fails out instead of sleeping forever.
	if fn, ok := e.tr.(interface{ FatalWake() }); ok {
		fn.FatalWake()
	}
}

// FatalErr reports the transport-fatal error, if any.
func (e *Engine) FatalErr() error { return e.fatal }

// -------------------------------------------------------- completion ops --

// Wait blocks until r completes, making progress while waiting.
func (e *Engine) Wait(p *sim.Proc, r *Request) (Status, error) {
	for !r.Done() {
		e.Progress(p)
		if r.Done() {
			break
		}
		if e.fatal != nil {
			r.complete(Status{}, e.fatal)
			break
		}
		e.cond.Wait(p)
	}
	e.retire(r)
	return r.status, r.err
}

// Test makes progress and reports whether r has completed.
func (e *Engine) Test(p *sim.Proc, r *Request) (Status, bool, error) {
	e.Progress(p)
	if !r.Done() {
		return Status{}, false, nil
	}
	e.retire(r)
	return r.status, true, r.err
}

// Cancel cancels a posted receive that has not yet matched. Cancelling
// sends is not supported (as in most MPI implementations, it is best
// avoided; the paper does not use it).
func (e *Engine) Cancel(p *sim.Proc, r *Request) error {
	if !r.IsRecv {
		return Errorf(ErrInternal, "cancel of send requests is not supported")
	}
	if r.Done() {
		return nil
	}
	if e.match.CancelRecv(r) {
		r.cancelled = true
		r.complete(Status{}, nil)
		e.retire(r)
	}
	return nil
}

// Probe blocks until a message matching (src, tag, ctx) is queued, and
// reports its envelope without receiving it. Like MPI_Probe, it observes
// only the unexpected queue: a message already matched to a posted
// receive is in delivery and deliberately invisible here (see
// Matcher.Probe).
func (e *Engine) Probe(p *sim.Proc, src, tag, ctx int) (Status, error) {
	for {
		st, ok, err := e.Iprobe(p, src, tag, ctx)
		if err != nil {
			return st, err
		}
		if ok {
			return st, nil
		}
		if e.fatal != nil {
			return Status{}, e.fatal
		}
		if ferr := e.ftRecvCheck(src, ctx); ferr != nil {
			return Status{}, ferr
		}
		if e.tr.Pending() {
			// An arrival raced in while Iprobe charged time; re-poll
			// instead of parking (parking here would miss its wakeup).
			continue
		}
		e.cond.Wait(p)
	}
}

// Iprobe makes progress and reports whether a matching message is queued
// in the unexpected queue (posted-receive state is invisible, as for
// Probe). The matching charge is paid before draining arrivals: time consumed
// after the drain would open a lost-wakeup window for callers that park
// when the probe fails.
func (e *Engine) Iprobe(p *sim.Proc, src, tag, ctx int) (Status, bool, error) {
	e.acct.Charge(p, CostMatch, e.costs.Match)
	e.Progress(p)
	if msg := e.match.Probe(src, tag, ctx); msg != nil {
		return Status{Source: msg.Env.Source, Tag: msg.Env.Tag, Count: msg.Env.Count}, true, nil
	}
	return Status{}, false, nil
}

// Finalize implements Endpoint: poll until every locally-initiated send
// has been handed to the wire (a buffered rendezvous send needs this
// process to answer its CTS).
func (e *Engine) Finalize(p *sim.Proc) {
	for {
		e.Progress(p)
		if e.fatal != nil {
			return // a dead link never finishes handing off sends
		}
		busy := false
		for _, r := range e.pending {
			if !r.IsRecv && !r.sent {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
		e.cond.Wait(p)
	}
}

// ProtocolErrors reports asynchronous protocol errors recorded at this
// rank (e.g. ready-mode violations), for post-run inspection.
func (e *Engine) ProtocolErrors() []error { return e.Errors }

// QueueStats reports matcher depths (for tests and instrumentation).
func (e *Engine) QueueStats() (posted, unexpected int) {
	return e.match.PostedLen(), e.match.UnexpectedLen()
}

// String identifies the engine in traces.
func (e *Engine) String() string { return fmt.Sprintf("engine[rank %d]", e.rank) }
