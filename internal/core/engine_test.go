package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// world spins up n engines on a MemFabric and runs body[i] as rank i's
// process. It fails the test on deadlock or unexpected engine errors.
type world struct {
	s    *sim.Scheduler
	fab  *MemFabric
	engs []*Engine
}

func newWorld(n int, latency sim.Duration, eager, credits int) *world {
	s := sim.NewScheduler(1)
	fab := NewMemFabric(s, latency, eager)
	fab.Credits = credits
	w := &world{s: s, fab: fab}
	for i := 0; i < n; i++ {
		e := NewEngine(s, i, n, EngineCosts{}, nil)
		fab.Attach(e)
		w.engs = append(w.engs, e)
	}
	return w
}

func (w *world) run(t *testing.T, bodies ...func(p *sim.Proc, e *Engine)) sim.Time {
	t.Helper()
	for i, body := range bodies {
		if body == nil {
			continue
		}
		i, body := i, body
		w.s.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			body(p, w.engs[i])
			w.engs[i].Finalize(p) // as mpi.Launch does after each rank body
		})
	}
	w.s.MaxEvents = 1_000_000
	end, err := w.s.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return end
}

func mustSend(t *testing.T, p *sim.Proc, e *Engine, dst, tag int, data []byte) {
	t.Helper()
	req, err := e.Isend(p, dst, tag, 0, ModeStandard, data)
	if err != nil {
		t.Fatalf("Isend: %v", err)
	}
	if _, err := e.Wait(p, req); err != nil {
		t.Fatalf("Wait(send): %v", err)
	}
}

func mustRecv(t *testing.T, p *sim.Proc, e *Engine, src, tag int, buf []byte) Status {
	t.Helper()
	req, err := e.Irecv(p, src, tag, 0, buf)
	if err != nil {
		t.Fatalf("Irecv: %v", err)
	}
	st, err := e.Wait(p, req)
	if err != nil {
		t.Fatalf("Wait(recv): %v", err)
	}
	return st
}

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 31)
	}
	return b
}

func TestEagerSendRecv(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	data := payload(64)
	got := make([]byte, 64)
	var st Status
	w.run(t,
		func(p *sim.Proc, e *Engine) { mustSend(t, p, e, 1, 7, data) },
		func(p *sim.Proc, e *Engine) { st = mustRecv(t, p, e, 0, 7, got) },
	)
	if !bytes.Equal(got, data) {
		t.Fatal("payload corrupted")
	}
	if st.Source != 0 || st.Tag != 7 || st.Count != 64 {
		t.Fatalf("status = %+v", st)
	}
}

func TestRendezvousSendRecv(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	data := payload(5000)
	got := make([]byte, 5000)
	w.run(t,
		func(p *sim.Proc, e *Engine) { mustSend(t, p, e, 1, 1, data) },
		func(p *sim.Proc, e *Engine) { mustRecv(t, p, e, 0, 1, got) },
	)
	if !bytes.Equal(got, data) {
		t.Fatal("rendezvous payload corrupted")
	}
}

func TestRecvPostedBeforeSend(t *testing.T) {
	for _, size := range []int{10, 5000} {
		w := newWorld(2, time.Microsecond, 180, 0)
		data := payload(size)
		got := make([]byte, size)
		w.run(t,
			func(p *sim.Proc, e *Engine) {
				p.Advance(100 * time.Microsecond) // receiver posts first
				mustSend(t, p, e, 1, 3, data)
			},
			func(p *sim.Proc, e *Engine) { mustRecv(t, p, e, 0, 3, got) },
		)
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: payload corrupted", size)
		}
	}
}

func TestSendBeforeRecvUnexpected(t *testing.T) {
	for _, size := range []int{10, 5000} {
		w := newWorld(2, time.Microsecond, 180, 0)
		data := payload(size)
		got := make([]byte, size)
		w.run(t,
			func(p *sim.Proc, e *Engine) { mustSend(t, p, e, 1, 3, data) },
			func(p *sim.Proc, e *Engine) {
				p.Advance(500 * time.Microsecond) // message arrives unexpected
				mustRecv(t, p, e, 0, 3, got)
			},
		)
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: payload corrupted", size)
		}
	}
}

func TestTruncationError(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	var gotErr error
	var st Status
	w.run(t,
		func(p *sim.Proc, e *Engine) { mustSend(t, p, e, 1, 0, payload(100)) },
		func(p *sim.Proc, e *Engine) {
			req, _ := e.Irecv(p, 0, 0, 0, make([]byte, 40))
			st, gotErr = e.Wait(p, req)
		},
	)
	var me *Error
	if !errors.As(gotErr, &me) || me.Code != ErrTruncate {
		t.Fatalf("err = %v, want truncation", gotErr)
	}
	if st.Count != 40 {
		t.Fatalf("count = %d, want 40", st.Count)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w := newWorld(3, time.Microsecond, 180, 0)
	var sources []int
	w.run(t,
		func(p *sim.Proc, e *Engine) { mustSend(t, p, e, 2, 11, payload(8)) },
		func(p *sim.Proc, e *Engine) {
			p.Advance(50 * time.Microsecond)
			mustSend(t, p, e, 2, 22, payload(8))
		},
		func(p *sim.Proc, e *Engine) {
			for i := 0; i < 2; i++ {
				st := mustRecv(t, p, e, AnySource, AnyTag, make([]byte, 8))
				sources = append(sources, st.Source)
			}
		},
	)
	if len(sources) != 2 || sources[0] != 0 || sources[1] != 1 {
		t.Fatalf("sources = %v, want [0 1] (arrival order)", sources)
	}
}

func TestNonOvertakingSameTag(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	var first, second byte
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			mustSend(t, p, e, 1, 5, []byte{1})
			mustSend(t, p, e, 1, 5, []byte{2})
		},
		func(p *sim.Proc, e *Engine) {
			b := make([]byte, 1)
			mustRecv(t, p, e, 0, 5, b)
			first = b[0]
			mustRecv(t, p, e, 0, 5, b)
			second = b[0]
		},
	)
	if first != 1 || second != 2 {
		t.Fatalf("order = %d,%d; want 1,2", first, second)
	}
}

func TestTagSelectiveOutOfOrder(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	var byTag2, byTag1 byte
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			mustSend(t, p, e, 1, 1, []byte{10})
			mustSend(t, p, e, 1, 2, []byte{20})
		},
		func(p *sim.Proc, e *Engine) {
			p.Advance(time.Millisecond)
			b := make([]byte, 1)
			mustRecv(t, p, e, 0, 2, b) // retrieve tag 2 first
			byTag2 = b[0]
			mustRecv(t, p, e, 0, 1, b)
			byTag1 = b[0]
		},
	)
	if byTag2 != 20 || byTag1 != 10 {
		t.Fatalf("got tag2=%d tag1=%d", byTag2, byTag1)
	}
}

func TestSsendWaitsForMatch(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	const recvDelay = 400 * time.Microsecond
	var sendDone sim.Time
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			req, err := e.Isend(p, 1, 0, 0, ModeSync, payload(4))
			if err != nil {
				t.Errorf("Isend: %v", err)
				return
			}
			e.Wait(p, req)
			sendDone = p.Now()
		},
		func(p *sim.Proc, e *Engine) {
			p.Advance(recvDelay)
			mustRecv(t, p, e, 0, 0, make([]byte, 4))
		},
	)
	if sendDone < sim.Time(recvDelay) {
		t.Fatalf("Ssend completed at %v, before the receive was posted at %v", sendDone, recvDelay)
	}
}

func TestStandardEagerDoesNotWaitForMatch(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	var sendDone sim.Time
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			mustSend(t, p, e, 1, 0, payload(4))
			sendDone = p.Now()
		},
		func(p *sim.Proc, e *Engine) {
			p.Advance(time.Millisecond)
			mustRecv(t, p, e, 0, 0, make([]byte, 4))
		},
	)
	if sendDone > sim.Time(100*time.Microsecond) {
		t.Fatalf("standard eager send blocked until %v", sendDone)
	}
}

func TestRsendUnmatchedRecordsError(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			req, _ := e.Isend(p, 1, 0, 0, ModeReady, payload(4))
			e.Wait(p, req)
		},
		func(p *sim.Proc, e *Engine) {
			p.Advance(time.Millisecond)
			mustRecv(t, p, e, 0, 0, make([]byte, 4)) // message still delivered
		},
	)
	if len(w.engs[1].Errors) == 0 {
		t.Fatal("no ready-mode error recorded at receiver")
	}
	var me *Error
	if !errors.As(w.engs[1].Errors[0], &me) || me.Code != ErrReady {
		t.Fatalf("error = %v, want ErrReady", w.engs[1].Errors[0])
	}
}

func TestRsendMatchedOK(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	got := make([]byte, 4)
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			p.Advance(100 * time.Microsecond) // receive is posted by now
			req, _ := e.Isend(p, 1, 0, 0, ModeReady, payload(4))
			e.Wait(p, req)
		},
		func(p *sim.Proc, e *Engine) { mustRecv(t, p, e, 0, 0, got) },
	)
	if len(w.engs[1].Errors) != 0 {
		t.Fatalf("unexpected errors: %v", w.engs[1].Errors)
	}
}

func TestBsendWithoutAttachFails(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			_, err := e.Isend(p, 1, 0, 0, ModeBuffered, payload(4))
			var me *Error
			if !errors.As(err, &me) || me.Code != ErrBuffer {
				t.Errorf("err = %v, want ErrBuffer", err)
			}
		},
		nil,
	)
}

func TestBsendCompletesImmediatelyAndDelivers(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	data := payload(64)
	got := make([]byte, 64)
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			e.BufferAttach(1024)
			req, err := e.Isend(p, 1, 0, 0, ModeBuffered, data)
			if err != nil {
				t.Errorf("Bsend: %v", err)
				return
			}
			if !req.Done() {
				t.Error("Bsend request not complete at return")
			}
		},
		func(p *sim.Proc, e *Engine) {
			p.Advance(time.Millisecond)
			mustRecv(t, p, e, 0, 0, got)
		},
	)
	if !bytes.Equal(got, data) {
		t.Fatal("Bsend payload corrupted")
	}
}

func TestBsendSpaceFreedAfterDelivery(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			e.BufferAttach(100)
			for i := 0; i < 5; i++ {
				if _, err := e.Isend(p, 1, i, 0, ModeBuffered, payload(80)); err != nil {
					t.Errorf("Bsend %d: %v", i, err)
				}
				// Give the fabric time to drain so space frees.
				p.Advance(time.Millisecond)
			}
		},
		func(p *sim.Proc, e *Engine) {
			for i := 0; i < 5; i++ {
				mustRecv(t, p, e, 0, i, make([]byte, 80))
			}
		},
	)
}

func TestProbeThenRecv(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	var probed Status
	w.run(t,
		func(p *sim.Proc, e *Engine) { mustSend(t, p, e, 1, 42, payload(17)) },
		func(p *sim.Proc, e *Engine) {
			st, err := e.Probe(p, AnySource, AnyTag, 0)
			if err != nil {
				t.Errorf("Probe: %v", err)
				return
			}
			probed = st
			buf := make([]byte, st.Count)
			mustRecv(t, p, e, st.Source, st.Tag, buf)
		},
	)
	if probed.Count != 17 || probed.Tag != 42 || probed.Source != 0 {
		t.Fatalf("probed = %+v", probed)
	}
}

func TestIprobeNoMessage(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			if _, ok, _ := e.Iprobe(p, AnySource, AnyTag, 0); ok {
				t.Error("Iprobe found a phantom message")
			}
		},
		nil,
	)
}

func TestTestPollsToCompletion(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	w.run(t,
		func(p *sim.Proc, e *Engine) { mustSend(t, p, e, 1, 0, payload(8)) },
		func(p *sim.Proc, e *Engine) {
			req, _ := e.Irecv(p, 0, 0, 0, make([]byte, 8))
			n := 0
			for {
				_, ok, err := e.Test(p, req)
				if err != nil {
					t.Errorf("Test: %v", err)
					return
				}
				if ok {
					break
				}
				n++
				p.Advance(time.Microsecond)
			}
		},
	)
}

func TestCancelPostedRecv(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			req, _ := e.Irecv(p, 0, 9, 0, make([]byte, 8))
			if err := e.Cancel(p, req); err != nil {
				t.Errorf("Cancel: %v", err)
			}
			if !req.Done() || !req.Cancelled() {
				t.Error("cancelled request not done/cancelled")
			}
		},
		nil,
	)
}

func TestFlowControlLimitedCreditsNoDeadlock(t *testing.T) {
	// Credits cover only one 100-byte message; ten sends must round-trip
	// credit returns, but everything delivers and nothing deadlocks.
	w := newWorld(2, time.Microsecond, 180, 100)
	const msgs = 10
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			for i := 0; i < msgs; i++ {
				mustSend(t, p, e, 1, i, payload(100))
			}
		},
		func(p *sim.Proc, e *Engine) {
			for i := 0; i < msgs; i++ {
				got := make([]byte, 100)
				mustRecv(t, p, e, 0, i, got)
				if !bytes.Equal(got, payload(100)) {
					t.Errorf("msg %d corrupted", i)
				}
			}
		},
	)
}

func TestFlowControlBlocksSender(t *testing.T) {
	// With credits for one message and a receiver that delays, the second
	// send cannot start until a credit returns.
	w := newWorld(2, time.Microsecond, 180, 100)
	const delay = time.Millisecond
	var secondSent sim.Time
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			mustSend(t, p, e, 1, 0, payload(100))
			mustSend(t, p, e, 1, 1, payload(100))
			secondSent = p.Now()
		},
		func(p *sim.Proc, e *Engine) {
			p.Advance(delay)
			mustRecv(t, p, e, 0, 0, make([]byte, 100))
			mustRecv(t, p, e, 0, 1, make([]byte, 100))
		},
	)
	if secondSent < sim.Time(delay) {
		t.Fatalf("second send completed at %v, before receiver consumed the first at %v", secondSent, delay)
	}
}

func TestManyRanksAllToOne(t *testing.T) {
	const n = 8
	w := newWorld(n, time.Microsecond, 180, 0)
	bodies := make([]func(p *sim.Proc, e *Engine), n)
	var total int
	for i := 1; i < n; i++ {
		i := i
		bodies[i] = func(p *sim.Proc, e *Engine) {
			mustSend(t, p, e, 0, i, payload(i*100)) // mix of eager and rndv
		}
	}
	bodies[0] = func(p *sim.Proc, e *Engine) {
		for i := 1; i < n; i++ {
			st := mustRecv(t, p, e, AnySource, AnyTag, make([]byte, 4096))
			total += st.Count
		}
	}
	w.run(t, bodies...)
	want := 0
	for i := 1; i < n; i++ {
		want += i * 100
	}
	if total != want {
		t.Fatalf("total bytes = %d, want %d", total, want)
	}
}

func TestSendToInvalidRank(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			if _, err := e.Isend(p, 5, 0, 0, ModeStandard, nil); err == nil {
				t.Error("send to rank 5 of 2 succeeded")
			}
			if _, err := e.Irecv(p, 5, 0, 0, nil); err == nil {
				t.Error("recv from rank 5 of 2 succeeded")
			}
		},
		nil,
	)
}

func TestZeroByteMessage(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	var st Status
	w.run(t,
		func(p *sim.Proc, e *Engine) { mustSend(t, p, e, 1, 3, nil) },
		func(p *sim.Proc, e *Engine) { st = mustRecv(t, p, e, 0, 3, nil) },
	)
	if st.Count != 0 || st.Tag != 3 {
		t.Fatalf("status = %+v", st)
	}
}

func TestContextIsolation(t *testing.T) {
	// A message on context 1 must not match a receive on context 2.
	w := newWorld(2, time.Microsecond, 180, 0)
	var order []int
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			r1, _ := e.Isend(p, 1, 0, 1, ModeStandard, []byte{1})
			r2, _ := e.Isend(p, 1, 0, 2, ModeStandard, []byte{2})
			e.Wait(p, r1)
			e.Wait(p, r2)
		},
		func(p *sim.Proc, e *Engine) {
			b := make([]byte, 1)
			req, _ := e.Irecv(p, 0, 0, 2, b)
			e.Wait(p, req)
			order = append(order, int(b[0]))
			req, _ = e.Irecv(p, 0, 0, 1, b)
			e.Wait(p, req)
			order = append(order, int(b[0]))
		},
	)
	if order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v; context isolation broken", order)
	}
}

func TestPingPongDeterministic(t *testing.T) {
	run := func() sim.Time {
		w := newWorld(2, 3*time.Microsecond, 180, 0)
		return w.run(t,
			func(p *sim.Proc, e *Engine) {
				for i := 0; i < 10; i++ {
					mustSend(t, p, e, 1, 0, payload(32))
					mustRecv(t, p, e, 1, 0, make([]byte, 32))
				}
			},
			func(p *sim.Proc, e *Engine) {
				for i := 0; i < 10; i++ {
					mustRecv(t, p, e, 0, 0, make([]byte, 32))
					mustSend(t, p, e, 0, 0, payload(32))
				}
			},
		)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestAcctChargesBooked(t *testing.T) {
	s := sim.NewScheduler(1)
	fab := NewMemFabric(s, time.Microsecond, 180)
	costs := EngineCosts{Match: 2 * time.Microsecond, CopyPerByte: 10 * time.Nanosecond, SendOverhead: time.Microsecond, RecvOverhead: time.Microsecond}
	e0 := NewEngine(s, 0, 2, costs, nil)
	e1 := NewEngine(s, 1, 2, costs, nil)
	fab.Attach(e0)
	fab.Attach(e1)
	s.Spawn("r0", func(p *sim.Proc) {
		req, _ := e0.Isend(p, 1, 0, 0, ModeStandard, payload(100))
		e0.Wait(p, req)
	})
	s.Spawn("r1", func(p *sim.Proc) {
		req, _ := e1.Irecv(p, 0, 0, 0, make([]byte, 100))
		e1.Wait(p, req)
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if e0.Acct().Time[CostOverhead] == 0 {
		t.Error("sender overhead not booked")
	}
	if e1.Acct().Time[CostMatch] == 0 {
		t.Error("receiver match cost not booked")
	}
	if e1.Acct().Time[CostCopy] != 100*10*time.Nanosecond {
		t.Errorf("copy cost = %v, want 1us", e1.Acct().Time[CostCopy])
	}
	if e0.Acct().Count["send"] != 1 || e1.Acct().Count["recv"] != 1 {
		t.Error("counters not bumped")
	}
}

// --- regression tests for bugs found by the conformance suite ---

// Isend must not block on flow control (MPI nonblocking semantics): with
// credits for one message, a burst of Isends returns immediately and the
// queued messages drain as the receiver consumes.
func TestIsendNeverBlocksOnCredits(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 100)
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			start := p.Now()
			var reqs []*Request
			for i := 0; i < 8; i++ {
				r, err := e.Isend(p, 1, i, 0, ModeStandard, payload(100))
				if err != nil {
					t.Errorf("Isend %d: %v", i, err)
					return
				}
				reqs = append(reqs, r)
			}
			if p.Now()-start > sim.Time(50*time.Microsecond) {
				t.Errorf("Isend burst blocked: took %v", p.Now()-start)
			}
			for _, r := range reqs {
				e.Wait(p, r)
			}
		},
		func(p *sim.Proc, e *Engine) {
			p.Advance(time.Millisecond)
			for i := 0; i < 8; i++ {
				mustRecv(t, p, e, 0, i, make([]byte, 100))
			}
		},
	)
}

// A queued eager message must not be overtaken by a later rendezvous
// envelope to the same destination (non-overtaking across protocols).
func TestQueuedEagerNotOvertakenByRendezvous(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 100)
	var order []int
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			// First: eager that fits. Second: eager that must queue
			// (credits exhausted). Third: rendezvous with the same tag.
			r1, _ := e.Isend(p, 1, 7, 0, ModeStandard, payload(100))
			r2, _ := e.Isend(p, 1, 7, 0, ModeStandard, payload(100))
			r3, _ := e.Isend(p, 1, 7, 0, ModeStandard, payload(5000))
			for _, r := range []*Request{r1, r2, r3} {
				e.Wait(p, r)
			}
		},
		func(p *sim.Proc, e *Engine) {
			p.Advance(500 * time.Microsecond)
			for i := 0; i < 3; i++ {
				buf := make([]byte, 5000)
				req, _ := e.Irecv(p, 0, 7, 0, buf)
				st, err := e.Wait(p, req)
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				order = append(order, st.Count)
			}
		},
	)
	want := []int{100, 100, 5000}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", order, want)
		}
	}
}

// Buffered sends above the eager threshold (rendezvous) must survive an
// immediate Wait: the CTS arrives after the request looks complete.
func TestBufferedRendezvousSend(t *testing.T) {
	w := newWorld(2, time.Microsecond, 180, 0)
	data := payload(5000)
	got := make([]byte, 5000)
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			e.BufferAttach(64 * 1024)
			req, err := e.Isend(p, 1, 0, 0, ModeBuffered, data)
			if err != nil {
				t.Errorf("Bsend: %v", err)
				return
			}
			if !req.Done() {
				t.Error("buffered request not complete at return")
			}
			e.Wait(p, req)
		},
		func(p *sim.Proc, e *Engine) {
			p.Advance(time.Millisecond)
			mustRecv(t, p, e, 0, 0, got)
		},
	)
	if !bytes.Equal(got, data) {
		t.Fatal("buffered rendezvous payload corrupted")
	}
}

// Self-sends work in all modes (MPI requires them).
func TestSelfSendAllModes(t *testing.T) {
	w := newWorld(1, time.Microsecond, 180, 0)
	w.run(t, func(p *sim.Proc, e *Engine) {
		e.BufferAttach(4096)
		// Standard, buffered: locally complete; receive retrieves them.
		for i, mode := range []Mode{ModeStandard, ModeBuffered} {
			req, err := e.Isend(p, 0, i, 0, mode, payload(64))
			if err != nil {
				t.Errorf("self %v: %v", mode, err)
				return
			}
			if _, err := e.Wait(p, req); err != nil {
				t.Errorf("wait self %v: %v", mode, err)
			}
		}
		for i := 0; i < 2; i++ {
			got := make([]byte, 64)
			st := mustRecv(t, p, e, 0, i, got)
			if st.Source != 0 || !bytes.Equal(got, payload(64)) {
				t.Errorf("self recv %d: %+v", i, st)
			}
		}
		// Synchronous: post the receive first, then Ssend completes.
		rr, _ := e.Irecv(p, 0, 9, 0, make([]byte, 8))
		sreq, err := e.Isend(p, 0, 9, 0, ModeSync, payload(8))
		if err != nil {
			t.Errorf("self ssend: %v", err)
			return
		}
		if _, err := e.Wait(p, sreq); err != nil {
			t.Errorf("wait self ssend: %v", err)
		}
		if _, err := e.Wait(p, rr); err != nil {
			t.Errorf("wait self recv: %v", err)
		}
		// Large self-send (would be rendezvous remotely).
		big := payload(5000)
		bigBuf := make([]byte, 5000)
		br, _ := e.Isend(p, 0, 11, 0, ModeStandard, big)
		e.Wait(p, br)
		mustRecv(t, p, e, 0, 11, bigBuf)
		if !bytes.Equal(bigBuf, big) {
			t.Error("large self-send corrupted")
		}
	})
}

// A synchronous self-send with no matching receive must deadlock-detect
// (the program is erroneous); with a receive posted later it completes.
func TestSelfSsendRequiresReceive(t *testing.T) {
	s := sim.NewScheduler(1)
	fab := NewMemFabric(s, time.Microsecond, 180)
	e := NewEngine(s, 0, 1, EngineCosts{}, nil)
	fab.Attach(e)
	s.Spawn("r0", func(p *sim.Proc) {
		req, _ := e.Isend(p, 0, 0, 0, ModeSync, payload(4))
		e.Wait(p, req) // never completes: no receive
	})
	if _, err := s.Run(); err == nil {
		t.Fatal("sync self-send without receive did not deadlock")
	}
}
