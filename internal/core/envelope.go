// Package core implements the paper's primary contribution: the
// transport-independent low-latency MPI engine.
//
// The engine owns message semantics — tagged matching with wildcards,
// non-overtaking delivery order, send modes, request state machines, the
// eager/rendezvous protocol decision, and per-category cost accounting.
// Everything that moves bytes or charges platform-specific time lives behind
// the Transport interface (one implementation per platform: Meiko
// DMA/transactions, and TCP/UDP sockets on the ATM/Ethernet cluster),
// mirroring the paper's structure: the cluster port re-implements the
// primitives the Meiko implementation assumes (sending an envelope, sending
// an envelope with piggybacked data, and setting remote events / sending DMA
// data) on top of stream sockets.
package core

import "fmt"

// Wildcard values for receive matching, mirroring MPI_ANY_SOURCE and
// MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// Mode distinguishes the MPI send modes. The mode travels in the envelope:
// synchronous sends require the receiver to acknowledge the match, and
// ready sends are erroneous if no receive is posted at arrival.
type Mode uint8

const (
	ModeStandard Mode = iota
	ModeSync
	ModeReady
	ModeBuffered
)

func (m Mode) String() string {
	switch m {
	case ModeStandard:
		return "standard"
	case ModeSync:
		return "sync"
	case ModeReady:
		return "ready"
	case ModeBuffered:
		return "buffered"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Envelope is the per-message control information matched at the receiver.
// On the cluster platform it is the 20-byte envelope of the paper's 25-byte
// protocol header; on the Meiko it travels in the remote transaction that
// deposits the message into the receiver's per-sender slot.
type Envelope struct {
	Source  int    // sending rank (in the communicator)
	Dest    int    // receiving rank
	Tag     int    // user tag
	Context int    // communicator context id
	Count   int    // payload length in bytes
	Seq     uint64 // per (source, context) sequence, for diagnostics
	Mode    Mode
	SendID  int64 // sender-side request handle, echoed in CTS/acks
}

// EnvelopeWireBytes is the size of the envelope on the cluster wire.
// Together with the 1-byte message type and the 4-byte credit field it
// forms the 25 bytes of protocol information measured in Table 1.
const EnvelopeWireBytes = 20

// HeaderWireBytes is the full cluster protocol header: 1 byte of message
// type, 4 bytes of returned credit, and the 20-byte envelope.
const HeaderWireBytes = 1 + 4 + EnvelopeWireBytes

// Status describes a completed receive, like MPI_Status.
type Status struct {
	Source int
	Tag    int
	Count  int // bytes actually delivered
}

// Error codes, a subset of the MPI error classes.
type ErrCode int

const (
	ErrNone ErrCode = iota
	ErrTruncate
	ErrReady // ready-mode send arrived before a matching receive was posted
	ErrBuffer
	ErrInternal
	// ErrLinkDown is a dead transport link (e.g. reliable-UDP retransmission
	// exhaustion): the rank cannot communicate, and every pending and future
	// operation fails with it.
	ErrLinkDown
	// ErrPeerDown is a dead peer process: only operations matched to (or
	// inevitably matching) that rank fail, the rest of the world survives.
	// The message names the culprit rank.
	ErrPeerDown
	// ErrRevoked is a communicator poisoned by Comm.Revoke: every pending
	// and future operation on its contexts fails so survivors fall through
	// to the recovery path instead of hanging.
	ErrRevoked
)

// Error is an MPI-level error carrying one of the MPI error classes.
type Error struct {
	Code ErrCode
	Msg  string
}

func (e *Error) Error() string { return "mpi: " + e.Msg }

// Errorf builds an *Error with the given class.
func Errorf(code ErrCode, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}
