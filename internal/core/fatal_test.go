package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

// A transport declaring the link dead must complete every pending request
// with the error — a Wait blocked on a message that can no longer arrive
// returns instead of hanging forever.
func TestFatalCompletesPendingRequests(t *testing.T) {
	w := newWorld(2, 0, 1<<20, 0)
	linkDown := Errorf(ErrLinkDown, "test link down")
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			req, err := e.Irecv(p, 1, 0, 0, make([]byte, 8))
			if err != nil {
				t.Errorf("Irecv: %v", err)
				return
			}
			// The transport notices the dead link from event context while
			// the application is blocked in Wait.
			w.s.After(5*time.Millisecond, func() { e.Fatal(linkDown) })
			if _, err := e.Wait(p, req); !errors.Is(err, linkDown) {
				t.Errorf("Wait returned %v, want the fatal link error", err)
			}
			if p.Now() < sim.Time(5*time.Millisecond) {
				t.Error("Wait returned before the link died")
			}
		},
		nil, // rank 1 never sends
	)
}

// After Fatal, every entry point fails fast with the recorded error rather
// than queueing work that can never complete.
func TestFatalFailsFast(t *testing.T) {
	w := newWorld(2, 0, 1<<20, 0)
	linkDown := Errorf(ErrLinkDown, "test link down")
	w.run(t,
		func(p *sim.Proc, e *Engine) {
			e.Fatal(linkDown)
			if _, err := e.Isend(p, 1, 0, 0, ModeStandard, []byte{1}); !errors.Is(err, linkDown) {
				t.Errorf("Isend after Fatal: %v", err)
			}
			if _, err := e.Irecv(p, 1, 0, 0, make([]byte, 4)); !errors.Is(err, linkDown) {
				t.Errorf("Irecv after Fatal: %v", err)
			}
			if _, err := e.Probe(p, 1, 0, 0); !errors.Is(err, linkDown) {
				t.Errorf("Probe after Fatal: %v", err)
			}
		},
		nil,
	)
}

// Fatal is set-once: a second declaration must not mask the first error.
func TestFatalSetOnce(t *testing.T) {
	w := newWorld(1, 0, 1<<20, 0)
	first := Errorf(ErrLinkDown, "first failure")
	w.run(t, func(p *sim.Proc, e *Engine) {
		e.Fatal(first)
		e.Fatal(Errorf(ErrLinkDown, "second failure"))
		if !errors.Is(e.FatalErr(), first) {
			t.Errorf("FatalErr = %v, want the first declaration", e.FatalErr())
		}
		if len(e.Errors) != 1 {
			t.Errorf("Errors grew to %d entries; repeat Fatal should be a no-op", len(e.Errors))
		}
	})
}

// The typed error carries ErrLinkDown so callers can branch on the cause.
func TestFatalErrorCode(t *testing.T) {
	w := newWorld(1, 0, 1<<20, 0)
	w.run(t, func(p *sim.Proc, e *Engine) {
		e.Fatal(Errorf(ErrLinkDown, "peer 1 unreachable"))
		var ce *Error
		if !errors.As(e.FatalErr(), &ce) || ce.Code != ErrLinkDown {
			t.Errorf("fatal error %v does not expose ErrLinkDown", e.FatalErr())
		}
	})
}
