package core

import (
	"slices"

	"repro/internal/sim"
)

// ULFM-style fault tolerance: a peer death is a per-rank event, not a
// world-fatal one. PeerDown fails exactly the requests that can never
// complete (matched to or inevitably matching the dead rank), Revoke
// poisons one communicator's contexts on every survivor via a reliable
// broadcast, and the mpi layer builds Agree/Shrink on top of the
// DeadRanks/FailureAck state kept here. Everything runs on simulated-time
// deadlines scheduled by the platform (see mpi.World.ScheduleKills), so
// detection is deterministic, lane-safe, and costs zero wire traffic —
// worlds without faults stay bit-identical.

// PeerFencer is an optional Transport capability: the engine notifies it
// when a rank is declared dead so per-peer transport state (queued sends,
// rendezvous bookkeeping, flow credits, reliability timers) can be fenced
// off instead of retrying into a black hole.
type PeerFencer interface {
	PeerDown(rank int)
}

// deferredGrant is a window lock grant produced in event context (a peer
// death releasing the dead holder's lock); it is transmitted by the next
// Progress call, which has a proc to charge the packet to.
type deferredGrant struct {
	win    int
	origin int
}

// PeerDown declares rank dead for the given reason. Every pending request
// that is matched to the dead rank — or can only ever match it — completes
// with a typed ErrPeerDown; unmatched wildcard receives fail too (the dead
// rank may have been their only sender; ULFM raises the same condition
// until the process acknowledges the failure, see FailureAck). Window
// locks held or awaited by the dead rank are released. Callable from event
// context; first detection wins, and self/fatal engines ignore the call.
func (e *Engine) PeerDown(rank int, reason error) {
	if rank == e.rank || e.fatal != nil {
		return
	}
	if e.dead == nil {
		e.dead = make(map[int]error)
	}
	if _, known := e.dead[rank]; known {
		return
	}
	if reason == nil {
		reason = Errorf(ErrPeerDown, "peer rank %d is dead", rank)
	}
	e.dead[rank] = reason
	e.deadOrder = append(e.deadOrder, rank)
	e.acct.Incr("ft.peerdown", 1)

	// Fail the doomed requests in id order (map iteration order must not
	// leak into matcher state, which later matching decisions observe).
	ids := make([]int64, 0, len(e.pending))
	for id := range e.pending {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		r := e.pending[id]
		if r.IsRecv {
			if r.matched {
				if r.matchedSrc != rank {
					continue
				}
			} else if r.Env.Source != rank && r.Env.Source != AnySource {
				continue
			}
			if !r.matched {
				e.match.CancelRecv(r)
			}
		} else if r.Env.Dest != rank {
			continue
		}
		r.complete(Status{}, reason)
		delete(e.pending, id)
	}

	// Release window locks the dead rank held or queued for, granting
	// unblocked waiters (deferred — there is no proc here to charge).
	winIDs := make([]int, 0, len(e.wins))
	for id := range e.wins {
		winIDs = append(winIDs, id)
	}
	slices.Sort(winIDs)
	for _, id := range winIDs {
		e.winPeerDown(e.wins[id], rank)
	}

	if pf, ok := e.tr.(PeerFencer); ok {
		pf.PeerDown(rank)
	}
	e.cond.Broadcast()
}

// winPeerDown fences one window against a dead rank: drop it from the
// wait queue and the holder set (regranting in FIFO order), and forget any
// grant it gave us.
func (e *Engine) winPeerDown(w *WinState, rank int) {
	for i := 0; i < len(w.lockQ); {
		if w.lockQ[i].origin == rank {
			w.lockQ = append(w.lockQ[:i], w.lockQ[i+1:]...)
		} else {
			i++
		}
	}
	if w.lockHolders[rank] {
		e.winRelease(nil, w, rank)
	}
	delete(w.granted, rank)
}

// flushDeferredGrants transmits lock grants produced in event context.
func (e *Engine) flushDeferredGrants(p *sim.Proc) {
	for len(e.defGrants) > 0 {
		g := e.defGrants[0]
		e.defGrants = e.defGrants[1:]
		if _, dd := e.dead[g.origin]; dd {
			continue
		}
		if w := e.wins[g.win]; w != nil {
			e.tr.Control(p, g.origin, PktRMAGrant, Envelope{Source: e.rank, Dest: g.origin, Tag: w.ID})
		}
	}
}

// deadErr reports the death reason for rank, nil while it is alive.
func (e *Engine) deadErr(rank int) error {
	if rank == AnySource || rank == e.rank {
		return nil
	}
	return e.dead[rank]
}

// DeadErr reports the recorded death reason for rank, nil while it is
// alive — the typed error native collective paths (outside the matched
// request machinery) return when a dead member makes them uncompletable.
func (e *Engine) DeadErr(rank int) error { return e.deadErr(rank) }

// PeerDead reports whether rank has been declared dead at this engine.
func (e *Engine) PeerDead(rank int) bool {
	_, ok := e.dead[rank]
	return ok
}

// DeadRanks reports every rank declared dead at this engine, in detection
// order.
func (e *Engine) DeadRanks() []int { return slices.Clone(e.deadOrder) }

// FailureAck acknowledges every currently detected death: wildcard
// receives posted afterwards no longer fail with ErrPeerDown for those
// ranks (ULFM's MPI_Comm_failure_ack).
func (e *Engine) FailureAck() { e.ackedDead = len(e.deadOrder) }

// FailureAcked reports the dead ranks covered by the latest FailureAck, in
// detection order (ULFM's MPI_Comm_failure_get_acked).
func (e *Engine) FailureAcked() []int { return slices.Clone(e.deadOrder[:e.ackedDead]) }

// ftActive reports whether any fault-tolerance event (death or revoke) has
// occurred: stale protocol packets racing such an event are expected and
// dropped silently instead of being recorded as protocol errors.
func (e *Engine) ftActive() bool { return len(e.dead) > 0 || len(e.revoked) > 0 }

// ftSendCheck fast-fails a send on a revoked context or to a dead rank.
func (e *Engine) ftSendCheck(dst, ctx int) error {
	if e.revoked[ctx] {
		return Errorf(ErrRevoked, "communicator context %d revoked", ctx)
	}
	return e.deadErr(dst)
}

// ftRecvCheck fast-fails a receive on a revoked context, from a dead rank,
// or a wildcard receive while an unacknowledged death is outstanding (the
// dead rank may have been the only possible sender — the caller must
// FailureAck to keep using wildcards, per ULFM).
func (e *Engine) ftRecvCheck(src, ctx int) error {
	if e.revoked[ctx] {
		return Errorf(ErrRevoked, "communicator context %d revoked", ctx)
	}
	if src == AnySource {
		if len(e.deadOrder) > e.ackedDead {
			return Errorf(ErrPeerDown, "wildcard receive with unacknowledged dead peer rank %d", e.deadOrder[e.ackedDead])
		}
		return nil
	}
	return e.deadErr(src)
}

// Revoked reports whether communicator context ctx has been revoked.
func (e *Engine) Revoked(ctx int) bool { return e.revoked[ctx] }

// RevokeCtx poisons communicator context ctx (and its collective sibling
// ctx+1) at this rank and reliably broadcasts the revocation: every
// pending operation on the contexts completes with ErrRevoked and all
// future ones fail fast, on every survivor, within bounded simulated time.
func (e *Engine) RevokeCtx(p *sim.Proc, ctx int) {
	if e.markRevoked(ctx) {
		e.bcastRevoke(p, ctx)
	}
}

// revokeMsg handles an incoming PktRevoke. Re-forwarding on first receipt
// makes the broadcast reliable: as long as one survivor heard the notice,
// every survivor eventually does, even if the revoker dies mid-broadcast.
func (e *Engine) revokeMsg(p *sim.Proc, env Envelope) {
	if e.markRevoked(env.Context) {
		e.bcastRevoke(p, env.Context)
	}
}

// markRevoked records the revocation of ctx and its collective sibling
// ctx+1, failing every pending request on either context. It reports
// whether the revocation was fresh (negative contexts — the recovery
// channel Agree and Shrink run on — are never revocable).
func (e *Engine) markRevoked(ctx int) bool {
	if ctx < 0 || e.revoked[ctx] {
		return false
	}
	if e.revoked == nil {
		e.revoked = make(map[int]bool)
	}
	e.revoked[ctx] = true
	e.revoked[ctx+1] = true
	e.acct.Incr("ft.revoke", 1)
	reason := Errorf(ErrRevoked, "communicator context %d revoked", ctx)
	ids := make([]int64, 0, len(e.pending))
	for id := range e.pending {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		r := e.pending[id]
		if r.Env.Context != ctx && r.Env.Context != ctx+1 {
			continue
		}
		if r.IsRecv && !r.matched {
			e.match.CancelRecv(r)
		}
		r.complete(Status{}, reason)
		delete(e.pending, id)
	}
	e.cond.Broadcast()
	return true
}

// bcastRevoke sends the revocation notice to every live peer.
func (e *Engine) bcastRevoke(p *sim.Proc, ctx int) {
	for dst := 0; dst < e.size; dst++ {
		if dst == e.rank {
			continue
		}
		if _, dd := e.dead[dst]; dd {
			continue
		}
		e.tr.Control(p, dst, PktRevoke, Envelope{Source: e.rank, Dest: dst, Context: ctx})
	}
}
