package core

// InMsg is an arrived message known to the matcher but not yet delivered:
// either an eager message whose payload sits in a bounce buffer, or a
// rendezvous envelope (RTS) whose payload is still at the sender.
type InMsg struct {
	Env    Envelope
	Data   []byte   // eager payload (bounce buffer); nil for rendezvous RTS
	Rndv   bool     // true when this is an RTS awaiting Accept
	Handle any      // transport cookie for Accept (e.g. connection, slot id)
	Pool   *BufPool // owner of Data, for recycling after the bounce copy; nil if unpooled
}

// envMatches reports whether a posted receive pattern (src, tag, ctx)
// accepts envelope e. The context is never a wildcard; source and tag may
// each be AnySource/AnyTag.
func envMatches(e Envelope, src, tag, ctx int) bool {
	if e.Context != ctx {
		return false
	}
	if src != AnySource && e.Source != src {
		return false
	}
	if tag != AnyTag && e.Tag != tag {
		return false
	}
	return true
}

// LinearMatcher is the reference implementation of MPI's matching
// semantics for one rank: an ordered posted-receive queue and an ordered
// unexpected-message queue, both scanned linearly. MPI requires
// non-overtaking delivery — two messages from the same source on the same
// communicator match receives in send order — which falls out of scanning
// both queues strictly in arrival/post order.
//
// The engine's hot path uses the indexed Matcher instead; LinearMatcher is
// kept as the oracle the differential and fuzz tests (and the -matchbench
// speedup baseline) compare against. Both types expose the identical
// method set, so either satisfies matchQueue.
type LinearMatcher struct {
	posted     []*Request
	unexpected []*InMsg
}

// PostRecv registers r and returns the earliest unexpected message that
// matches it, removing that message from the queue; it returns nil when no
// unexpected message matches, leaving r posted.
func (m *LinearMatcher) PostRecv(r *Request) *InMsg {
	for i, msg := range m.unexpected {
		if envMatches(msg.Env, r.Env.Source, r.Env.Tag, r.Env.Context) {
			m.unexpected = append(m.unexpected[:i], m.unexpected[i+1:]...)
			return msg
		}
	}
	m.posted = append(m.posted, r)
	return nil
}

// Arrive matches an arriving envelope against the posted queue, removing
// and returning the earliest matching receive. When nothing matches it
// returns nil; the caller is responsible for queueing the message as
// unexpected (via AddUnexpected) if it should be retained.
func (m *LinearMatcher) Arrive(env Envelope) *Request {
	for i, r := range m.posted {
		if envMatches(env, r.Env.Source, r.Env.Tag, r.Env.Context) {
			m.posted = append(m.posted[:i], m.posted[i+1:]...)
			return r
		}
	}
	return nil
}

// AddUnexpected appends msg to the unexpected queue in arrival order.
func (m *LinearMatcher) AddUnexpected(msg *InMsg) {
	m.unexpected = append(m.unexpected, msg)
}

// Probe returns the earliest unexpected message matching (src, tag, ctx)
// without removing it, or nil. Like MPI_Probe, it sees only the
// unexpected queue: a message already matched to a posted receive is in
// delivery and no longer probe-visible (see Matcher.Probe).
func (m *LinearMatcher) Probe(src, tag, ctx int) *InMsg {
	for _, msg := range m.unexpected {
		if envMatches(msg.Env, src, tag, ctx) {
			return msg
		}
	}
	return nil
}

// CancelRecv removes a posted receive, reporting whether it was still
// queued (i.e. not yet matched).
func (m *LinearMatcher) CancelRecv(r *Request) bool {
	for i, q := range m.posted {
		if q == r {
			m.posted = append(m.posted[:i], m.posted[i+1:]...)
			return true
		}
	}
	return false
}

// PostedLen and UnexpectedLen expose queue depths for tests and stats.
func (m *LinearMatcher) PostedLen() int { return len(m.posted) }

// UnexpectedLen reports the unexpected-queue depth.
func (m *LinearMatcher) UnexpectedLen() int { return len(m.unexpected) }
