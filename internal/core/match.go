package core

// InMsg is an arrived message known to the matcher but not yet delivered:
// either an eager message whose payload sits in a bounce buffer, or a
// rendezvous envelope (RTS) whose payload is still at the sender.
type InMsg struct {
	Env    Envelope
	Data   []byte // eager payload (bounce buffer); nil for rendezvous RTS
	Rndv   bool   // true when this is an RTS awaiting Accept
	Handle any    // transport cookie for Accept (e.g. connection, slot id)
}

// Matcher implements MPI's matching semantics for one rank: an ordered
// posted-receive queue and an ordered unexpected-message queue. MPI requires
// non-overtaking delivery — two messages from the same source on the same
// communicator match receives in send order — which falls out of scanning
// both queues strictly in arrival/post order.
type Matcher struct {
	posted     []*Request
	unexpected []*InMsg
}

// envMatches reports whether a posted receive pattern (src, tag, ctx)
// accepts envelope e.
func envMatches(e Envelope, src, tag, ctx int) bool {
	if e.Context != ctx {
		return false
	}
	if src != AnySource && e.Source != src {
		return false
	}
	if tag != AnyTag && e.Tag != tag {
		return false
	}
	return true
}

// PostRecv registers r and returns the earliest unexpected message that
// matches it, removing that message from the queue; it returns nil when no
// unexpected message matches, leaving r posted.
func (m *Matcher) PostRecv(r *Request) *InMsg {
	for i, msg := range m.unexpected {
		if envMatches(msg.Env, r.Env.Source, r.Env.Tag, r.Env.Context) {
			m.unexpected = append(m.unexpected[:i], m.unexpected[i+1:]...)
			return msg
		}
	}
	m.posted = append(m.posted, r)
	return nil
}

// Arrive matches an arriving envelope against the posted queue, removing
// and returning the earliest matching receive. When nothing matches it
// returns nil; the caller is responsible for queueing the message as
// unexpected (via AddUnexpected) if it should be retained.
func (m *Matcher) Arrive(env Envelope) *Request {
	for i, r := range m.posted {
		if envMatches(env, r.Env.Source, r.Env.Tag, r.Env.Context) {
			m.posted = append(m.posted[:i], m.posted[i+1:]...)
			return r
		}
	}
	return nil
}

// AddUnexpected appends msg to the unexpected queue in arrival order.
func (m *Matcher) AddUnexpected(msg *InMsg) {
	m.unexpected = append(m.unexpected, msg)
}

// Probe returns the earliest unexpected message matching (src, tag, ctx)
// without removing it, or nil.
func (m *Matcher) Probe(src, tag, ctx int) *InMsg {
	for _, msg := range m.unexpected {
		if envMatches(msg.Env, src, tag, ctx) {
			return msg
		}
	}
	return nil
}

// CancelRecv removes a posted receive, reporting whether it was still
// queued (i.e. not yet matched).
func (m *Matcher) CancelRecv(r *Request) bool {
	for i, q := range m.posted {
		if q == r {
			m.posted = append(m.posted[:i], m.posted[i+1:]...)
			return true
		}
	}
	return false
}

// PostedLen and UnexpectedLen expose queue depths for tests and stats.
func (m *Matcher) PostedLen() int     { return len(m.posted) }
func (m *Matcher) UnexpectedLen() int { return len(m.unexpected) }
