package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func recvReq(src, tag, ctx int) *Request {
	return &Request{IsRecv: true, Env: Envelope{Source: src, Tag: tag, Context: ctx}}
}

func TestEnvMatchesWildcards(t *testing.T) {
	env := Envelope{Source: 3, Tag: 7, Context: 1}
	cases := []struct {
		src, tag, ctx int
		want          bool
	}{
		{3, 7, 1, true},
		{AnySource, 7, 1, true},
		{3, AnyTag, 1, true},
		{AnySource, AnyTag, 1, true},
		{2, 7, 1, false},
		{3, 8, 1, false},
		{3, 7, 2, false}, // context never wildcards
		{AnySource, AnyTag, 2, false},
	}
	for _, c := range cases {
		if got := envMatches(env, c.src, c.tag, c.ctx); got != c.want {
			t.Errorf("envMatches(%v, %d,%d,%d) = %v, want %v", env, c.src, c.tag, c.ctx, got, c.want)
		}
	}
}

func TestMatcherPostThenArrive(t *testing.T) {
	forEachMatcher(t, func(t *testing.T, mk func() matchQueue) {
		m := mk()
		r := recvReq(0, 5, 1)
		if got := m.PostRecv(r); got != nil {
			t.Fatalf("PostRecv returned %v on empty queue", got)
		}
		if got := m.Arrive(Envelope{Source: 0, Tag: 5, Context: 1}); got != r {
			t.Fatalf("Arrive = %v, want posted request", got)
		}
		if m.PostedLen() != 0 {
			t.Fatalf("posted queue not drained")
		}
	})
}

func TestMatcherUnexpectedThenPost(t *testing.T) {
	forEachMatcher(t, func(t *testing.T, mk func() matchQueue) {
		m := mk()
		msg := &InMsg{Env: Envelope{Source: 2, Tag: 9, Context: 0}}
		if m.Arrive(msg.Env) != nil {
			t.Fatal("Arrive matched with nothing posted")
		}
		m.AddUnexpected(msg)
		if got := m.PostRecv(recvReq(AnySource, 9, 0)); got != msg {
			t.Fatalf("PostRecv = %v, want the unexpected message", got)
		}
		if m.UnexpectedLen() != 0 {
			t.Fatal("unexpected queue not drained")
		}
	})
}

// MPI non-overtaking: earlier sends match earlier receives from the same
// (source, context).
func TestMatcherNonOvertaking(t *testing.T) {
	forEachMatcher(t, func(t *testing.T, mk func() matchQueue) {
		m := mk()
		m.AddUnexpected(&InMsg{Env: Envelope{Source: 1, Tag: 4, Context: 0, Seq: 1}})
		m.AddUnexpected(&InMsg{Env: Envelope{Source: 1, Tag: 4, Context: 0, Seq: 2}})
		first := m.PostRecv(recvReq(1, 4, 0))
		second := m.PostRecv(recvReq(1, AnyTag, 0))
		if first == nil || second == nil {
			t.Fatal("matches missing")
		}
		if first.Env.Seq != 1 || second.Env.Seq != 2 {
			t.Fatalf("overtaking: got seqs %d, %d", first.Env.Seq, second.Env.Seq)
		}
	})
}

// Posted wildcard receives are consumed in post order by an arrival.
func TestMatcherPostedOrder(t *testing.T) {
	forEachMatcher(t, func(t *testing.T, mk func() matchQueue) {
		m := mk()
		r1 := recvReq(AnySource, AnyTag, 0)
		r2 := recvReq(AnySource, AnyTag, 0)
		m.PostRecv(r1)
		m.PostRecv(r2)
		if got := m.Arrive(Envelope{Source: 0, Tag: 0, Context: 0}); got != r1 {
			t.Fatalf("Arrive matched %v, want first posted", got)
		}
		if got := m.Arrive(Envelope{Source: 0, Tag: 0, Context: 0}); got != r2 {
			t.Fatalf("Arrive matched %v, want second posted", got)
		}
	})
}

// An arrival must take the earliest posted receive across bins: an exact
// pattern posted before a wildcard wins, and vice versa.
func TestMatcherArriveCrossBinOrder(t *testing.T) {
	forEachMatcher(t, func(t *testing.T, mk func() matchQueue) {
		m := mk()
		exact := recvReq(0, 7, 0)
		wild := recvReq(AnySource, AnyTag, 0)
		m.PostRecv(exact)
		m.PostRecv(wild)
		if got := m.Arrive(Envelope{Source: 0, Tag: 7, Context: 0}); got != exact {
			t.Fatalf("Arrive matched %v, want the earlier exact pattern", got)
		}
		m = mk()
		m.PostRecv(wild)
		m.PostRecv(exact)
		if got := m.Arrive(Envelope{Source: 0, Tag: 7, Context: 0}); got != wild {
			t.Fatalf("Arrive matched %v, want the earlier wildcard pattern", got)
		}
	})
}

func TestMatcherTagSelective(t *testing.T) {
	forEachMatcher(t, func(t *testing.T, mk func() matchQueue) {
		m := mk()
		m.AddUnexpected(&InMsg{Env: Envelope{Source: 0, Tag: 1, Context: 0, Seq: 1}})
		m.AddUnexpected(&InMsg{Env: Envelope{Source: 0, Tag: 2, Context: 0, Seq: 2}})
		if got := m.PostRecv(recvReq(0, 2, 0)); got == nil || got.Env.Seq != 2 {
			t.Fatalf("tag-selective match failed: %v", got)
		}
		if got := m.PostRecv(recvReq(0, 1, 0)); got == nil || got.Env.Seq != 1 {
			t.Fatalf("remaining message not matched: %v", got)
		}
	})
}

func TestMatcherProbeDoesNotConsume(t *testing.T) {
	forEachMatcher(t, func(t *testing.T, mk func() matchQueue) {
		m := mk()
		m.AddUnexpected(&InMsg{Env: Envelope{Source: 0, Tag: 1, Context: 0}})
		if m.Probe(0, 1, 0) == nil {
			t.Fatal("Probe missed queued message")
		}
		if m.UnexpectedLen() != 1 {
			t.Fatal("Probe consumed the message")
		}
		if m.Probe(0, 2, 0) != nil {
			t.Fatal("Probe matched wrong tag")
		}
	})
}

// Probe sees only unexpected messages: posted-receive state is invisible
// to MPI_Probe by design.
func TestMatcherProbeIgnoresPosted(t *testing.T) {
	forEachMatcher(t, func(t *testing.T, mk func() matchQueue) {
		m := mk()
		m.PostRecv(recvReq(0, 1, 0))
		if m.Probe(0, 1, 0) != nil {
			t.Fatal("Probe reported a posted receive as a message")
		}
	})
}

func TestMatcherCancelRecv(t *testing.T) {
	forEachMatcher(t, func(t *testing.T, mk func() matchQueue) {
		m := mk()
		r := recvReq(0, 1, 0)
		m.PostRecv(r)
		if !m.CancelRecv(r) {
			t.Fatal("CancelRecv failed on posted receive")
		}
		if m.CancelRecv(r) {
			t.Fatal("CancelRecv succeeded twice")
		}
		if m.Arrive(Envelope{Source: 0, Tag: 1, Context: 0}) != nil {
			t.Fatal("cancelled receive still matched")
		}
	})
}

// Property: for random arrival sequences from one source, draining with
// wildcard receives yields exactly the arrival order (non-overtaking).
func TestMatcherFIFOProperty(t *testing.T) {
	forEachMatcher(t, func(t *testing.T, mk func() matchQueue) {
		prop := func(tags []uint8) bool {
			m := mk()
			for i, tg := range tags {
				m.AddUnexpected(&InMsg{Env: Envelope{Source: 0, Tag: int(tg % 4), Context: 0, Seq: uint64(i + 1)}})
			}
			for i := range tags {
				msg := m.PostRecv(recvReq(AnySource, AnyTag, 0))
				if msg == nil || msg.Env.Seq != uint64(i+1) {
					return false
				}
			}
			return m.UnexpectedLen() == 0
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
			t.Fatal(err)
		}
	})
}

// Property: selective receives by tag preserve per-tag order.
func TestMatcherPerTagOrderProperty(t *testing.T) {
	forEachMatcher(t, func(t *testing.T, mk func() matchQueue) {
		prop := func(tags []uint8) bool {
			m := mk()
			perTag := map[int][]uint64{}
			for i, tg := range tags {
				tag := int(tg % 3)
				seq := uint64(i + 1)
				m.AddUnexpected(&InMsg{Env: Envelope{Source: 0, Tag: tag, Context: 0, Seq: seq}})
				perTag[tag] = append(perTag[tag], seq)
			}
			for tag, seqs := range perTag {
				for _, want := range seqs {
					msg := m.PostRecv(recvReq(0, tag, 0))
					if msg == nil || msg.Env.Seq != want {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}); err != nil {
			t.Fatal(err)
		}
	})
}
