package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// matchQueue is the method set shared by the indexed Matcher and the
// LinearMatcher oracle; the behavioral tests run against both and the
// differential tests check them against each other.
type matchQueue interface {
	PostRecv(*Request) *InMsg
	Arrive(Envelope) *Request
	AddUnexpected(*InMsg)
	Probe(src, tag, ctx int) *InMsg
	CancelRecv(*Request) bool
	PostedLen() int
	UnexpectedLen() int
}

var (
	_ matchQueue = (*Matcher)(nil)
	_ matchQueue = (*LinearMatcher)(nil)
)

// forEachMatcher runs f once per matcher implementation.
func forEachMatcher(t *testing.T, f func(t *testing.T, mk func() matchQueue)) {
	t.Helper()
	t.Run("indexed", func(t *testing.T) { f(t, func() matchQueue { return &Matcher{} }) })
	t.Run("linear", func(t *testing.T) { f(t, func() matchQueue { return &LinearMatcher{} }) })
}

// runMatchDiff interprets ops as a randomized post/arrive/probe/cancel
// sequence (wildcards included), drives the indexed matcher and the linear
// oracle in lockstep, and reports the first divergence. Each op consumes
// four bytes: opcode, source, tag, context.
func runMatchDiff(ops []byte) error {
	var idx Matcher
	var lin LinearMatcher
	var posted []*Request
	var sendSeq uint64
	for step := 0; len(ops) >= 4; step++ {
		op, s, tg, cx := ops[0]%8, ops[1], ops[2], ops[3]
		ops = ops[4:]
		// Small rank/tag/context spaces force collisions, wildcard overlap
		// and deep queues; -1 is AnySource/AnyTag.
		src := int(s%5) - 1
		tag := int(tg%5) - 1
		ctx := int(cx % 2)
		switch op {
		case 0, 1, 2: // post a receive (pattern may be wildcard)
			r := &Request{IsRecv: true, Env: Envelope{Source: src, Tag: tag, Context: ctx}}
			mi := idx.PostRecv(r)
			ml := lin.PostRecv(r)
			if mi != ml {
				return fmt.Errorf("step %d: PostRecv(%d,%d,%d): indexed=%v linear=%v", step, src, tag, ctx, mi, ml)
			}
			if mi == nil {
				posted = append(posted, r)
			}
		case 3, 4, 5: // an envelope arrives (always concrete)
			if src < 0 {
				src = 0
			}
			if tag < 0 {
				tag = 0
			}
			sendSeq++
			env := Envelope{Source: src, Tag: tag, Context: ctx, Seq: sendSeq, SendID: int64(sendSeq)}
			ri := idx.Arrive(env)
			rl := lin.Arrive(env)
			if ri != rl {
				return fmt.Errorf("step %d: Arrive(%d,%d,%d): indexed=%v linear=%v", step, src, tag, ctx, ri, rl)
			}
			if ri == nil {
				msg := &InMsg{Env: env}
				idx.AddUnexpected(msg)
				lin.AddUnexpected(msg)
			}
		case 6: // probe (pattern may be wildcard)
			pi := idx.Probe(src, tag, ctx)
			pl := lin.Probe(src, tag, ctx)
			if pi != pl {
				return fmt.Errorf("step %d: Probe(%d,%d,%d): indexed=%v linear=%v", step, src, tag, ctx, pi, pl)
			}
		case 7: // cancel a previously posted receive (possibly already matched)
			if len(posted) == 0 {
				continue
			}
			i := int(s) % len(posted)
			r := posted[i]
			ci := idx.CancelRecv(r)
			cl := lin.CancelRecv(r)
			if ci != cl {
				return fmt.Errorf("step %d: CancelRecv: indexed=%v linear=%v", step, ci, cl)
			}
			if ci {
				posted = append(posted[:i], posted[i+1:]...)
			}
		}
		if idx.PostedLen() != lin.PostedLen() || idx.UnexpectedLen() != lin.UnexpectedLen() {
			return fmt.Errorf("step %d: depths diverged: indexed (%d,%d) linear (%d,%d)",
				step, idx.PostedLen(), idx.UnexpectedLen(), lin.PostedLen(), lin.UnexpectedLen())
		}
	}
	return nil
}

// TestMatchDifferentialQuick runs the lockstep driver over random op
// streams (the CI race job runs this under -race).
func TestMatchDifferentialQuick(t *testing.T) {
	prop := func(ops []byte) bool {
		if err := runMatchDiff(ops); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

// TestMatchDifferentialLong drives one long adversarial stream so queues
// grow deep enough to exercise bin compaction and freelist reuse.
func TestMatchDifferentialLong(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := make([]byte, 40000)
	rng.Read(ops)
	if err := runMatchDiff(ops); err != nil {
		t.Fatal(err)
	}
}

// FuzzMatchDiff is the native fuzz entry for the differential driver; the
// seed corpus runs in every `go test`.
func FuzzMatchDiff(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 3, 1, 2, 0})
	f.Add([]byte{2, 0, 0, 1, 5, 0, 0, 1, 6, 0, 0, 1, 7, 0, 0, 1})
	rng := rand.New(rand.NewSource(11))
	seed := make([]byte, 400)
	rng.Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, ops []byte) {
		if err := runMatchDiff(ops); err != nil {
			t.Fatal(err)
		}
	})
}

// TestMatcherArriveAllocFree locks the steady-state arrival path at zero
// allocations: after warmup, Arrive + re-post cycles must not touch the
// heap.
func TestMatcherArriveAllocFree(t *testing.T) {
	var m Matcher
	const n = 64
	reqs := make([]*Request, n)
	for i := range reqs {
		reqs[i] = &Request{IsRecv: true, Env: Envelope{Source: i % 4, Tag: i, Context: 0}}
		m.PostRecv(reqs[i])
	}
	env := Envelope{Source: (n - 1) % 4, Tag: n - 1, Context: 0}
	cycle := func() {
		r := m.Arrive(env)
		if r == nil {
			t.Fatal("arrival missed posted receive")
		}
		m.PostRecv(r)
	}
	for i := 0; i < 512; i++ { // warm bins, freelists and slice capacity
		cycle()
	}
	if allocs := testing.AllocsPerRun(500, cycle); allocs != 0 {
		t.Fatalf("steady-state Arrive/PostRecv allocates %.1f objects/op, want 0", allocs)
	}
}

// TestMatcherUnexpectedAllocFree locks the unexpected-queue cycle
// (arrival enqueued, then matched by a later receive) at zero steady-state
// allocations.
func TestMatcherUnexpectedAllocFree(t *testing.T) {
	var m Matcher
	msg := &InMsg{Env: Envelope{Source: 1, Tag: 3, Context: 0}}
	req := &Request{IsRecv: true, Env: Envelope{Source: AnySource, Tag: 3, Context: 0}}
	cycle := func() {
		m.AddUnexpected(msg)
		if got := m.PostRecv(req); got != msg {
			t.Fatal("unexpected message not matched")
		}
	}
	for i := 0; i < 512; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(500, cycle); allocs != 0 {
		t.Fatalf("steady-state unexpected cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// TestBufPoolRecycles checks class rounding, hit/miss accounting and the
// bytes-recycled counter.
func TestBufPoolRecycles(t *testing.T) {
	acct := NewAcct()
	p := NewBufPool(acct)
	b := p.Get(100)
	if len(b) != 100 || cap(b) != 128 {
		t.Fatalf("Get(100): len %d cap %d, want 100/128", len(b), cap(b))
	}
	p.Put(b)
	b2 := p.Get(120)
	if cap(b2) != 128 {
		t.Fatalf("recycled Get(120) cap %d, want 128", cap(b2))
	}
	if acct.Count[PoolHit] != 1 || acct.Count[PoolMiss] != 1 {
		t.Fatalf("hit/miss = %d/%d, want 1/1", acct.Count[PoolHit], acct.Count[PoolMiss])
	}
	if acct.Count[PoolRecycled] != 128 {
		t.Fatalf("bytes recycled = %d, want 128", acct.Count[PoolRecycled])
	}
	// Oversized buffers bypass the pool entirely.
	huge := p.Get(2 << 20)
	p.Put(huge)
	if got := p.Get(2 << 20); &got[0] == &huge[0] {
		t.Fatal("oversized buffer was pooled")
	}
	// A nil pool degrades to plain allocation.
	var np *BufPool
	if n := len(np.Get(64)); n != 64 {
		t.Fatalf("nil pool Get returned %d bytes", n)
	}
	np.Put(b)
}
