package core

// Indexed matching: the receive-side hot path of the low-latency design.
//
// The paper's central measurement is that matching and dispatch overhead —
// not wire time — dominates small-message latency (104 µs round trip over
// a 52 µs raw tport exchange). A linear scan over flat queues makes that
// overhead grow with the number of posted receives and queued unexpected
// messages; this file replaces it with constant-time bins while keeping
// MPI's ordering semantics bit-for-bit identical to the LinearMatcher
// oracle (see matchdiff_test.go).
//
// Structure. Matching state lives in FIFO bins keyed by (source, tag,
// context), with AnySource/AnyTag (-1) legal key components:
//
//   - posted receives sit in exactly one bin, keyed by their pattern —
//     (s,t,c), (s,*,c), (*,t,c) or (*,*,c);
//   - unexpected messages are indexed under all four generalizations of
//     their concrete arrival triple, sharing one entry between bins.
//
// Every entry carries a ticket from a single global sequence counter
// stamped at post/arrival time. An arriving envelope consults at most the
// four pattern bins that could match it and takes the head with the
// smallest ticket; a posted receive (or probe) with any pattern — wildcard
// or exact — reads exactly one bin, whose FIFO order is arrival order.
// Removal from the three sibling bins of a consumed unexpected entry is
// lazy: entries are tombstoned and reclaimed when a bin is next read, or
// compacted when tombstones outnumber live entries.
//
// Non-overtaking (proof sketch, expanded in DESIGN.md §10). For a fixed
// (source, context) the transports deliver envelopes in send order, so
// arrival tickets of same-(source,context) messages are ordered by send
// sequence. A receive pattern maps to one bin; within a bin candidates are
// FIFO by ticket, so the earliest matchable message wins. An arrival
// chooses among bin heads by minimum post ticket, so the earliest posted
// matching receive wins. Both directions therefore reproduce exactly the
// linear scan's choice, which is the MPI-required one.
//
// Allocation. Entries and bins come from freelists and bin slices are
// recycled in place, so steady-state matching allocates nothing; combined
// with the bounce-buffer pools (pool.go) the eager receive path runs at
// zero allocations per message.

// binKey identifies one matching bin: an arrival triple, a posted pattern,
// or one of an arrival's four generalizations (source and tag may be
// AnySource/AnyTag; the context is always exact). The triple is packed
// into one word — tag(32) | source(16) | context(16), mirroring the wire
// header's field widths — so bin maps take Go's single-word fast path.
type binKey uint64

func mkKey(src, tag, ctx int) binKey {
	return binKey(uint32(int32(tag))) | binKey(uint16(src))<<32 | binKey(uint16(ctx))<<48
}

// matchEnt is one queue node. Posted entries are referenced by exactly one
// bin; unexpected entries by up to four. refs counts the bins whose live
// window still contains the entry: it drops as bins skip or compact the
// tombstone, and the entry returns to the freelist at zero.
type matchEnt struct {
	req     *Request // posted side (nil for unexpected entries)
	msg     *InMsg   // unexpected side (nil for posted entries)
	seq     uint64   // global post/arrival ticket
	removed bool     // tombstone: consumed or cancelled
	refs    int8
}

// entQ is one FIFO bin with amortized O(1) pop and in-place compaction.
// The bin owns one reference per entry in items[head:].
type entQ struct {
	items     []*matchEnt
	head      int
	compactAt int // window size that triggers the next compaction
}

const minCompactWindow = 32

// push appends ent (taking a reference), reusing the slice from the front
// when the bin has fully drained and compacting when the slice — live
// window plus consumed prefix — outgrows twice the live population. Both
// bounds together keep a bin's slice at O(live) and the amortized cost per
// push at O(1), so steady-state cycling through a bin never grows it.
func (q *entQ) push(ent *matchEnt, m *Matcher) {
	ent.refs++
	if q.head > 0 && q.head == len(q.items) {
		// Drained: every slot before head is already nil.
		q.items = q.items[:0]
		q.head = 0
	}
	q.items = append(q.items, ent)
	if q.compactAt == 0 {
		q.compactAt = minCompactWindow
	}
	if len(q.items) >= q.compactAt {
		live := q.compact(m)
		q.compactAt = 2*live + minCompactWindow
	}
}

// compact drops tombstoned entries from the live window, releasing their
// references, and reports the number of live entries kept.
func (q *entQ) compact(m *Matcher) int {
	w := 0
	for _, ent := range q.items[q.head:] {
		if ent.removed {
			m.unref(ent)
		} else {
			q.items[w] = ent
			w++
		}
	}
	for i := w; i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = q.items[:w]
	q.head = 0
	return w
}

// first returns the earliest live entry without consuming it, reclaiming
// any tombstones in front of it. An emptied bin resets to reuse its slice.
func (q *entQ) first(m *Matcher) *matchEnt {
	for q.head < len(q.items) {
		ent := q.items[q.head]
		if !ent.removed {
			return ent
		}
		q.items[q.head] = nil
		q.head++
		m.unref(ent)
	}
	q.items = q.items[:0]
	q.head = 0
	return nil
}

// take consumes a live entry previously returned by first: tombstone it,
// advance past it, and release this bin's reference. The sibling bins of
// an unexpected entry observe the tombstone lazily.
func (q *entQ) take(ent *matchEnt, m *Matcher) {
	ent.removed = true
	q.items[q.head] = nil
	q.head++
	m.unref(ent)
}

// Matcher implements MPI's matching semantics for one rank with indexed
// (source, tag, context) bins: constant-time posting, arrival, and probing
// regardless of queue depth, identical match selection to LinearMatcher,
// and no steady-state allocation. The zero value is ready to use.
//
// Like MPI_Probe, the Probe method sees only the unexpected queue; posted
// receives are deliberately invisible to it (see Probe).
type Matcher struct {
	seq     uint64 // global post/arrival ticket counter
	posted  map[binKey]*entQ
	unex    map[binKey]*entQ
	entFree []*matchEnt
	qFree   []*entQ
	postedN int
	unexN   int

	// Posted-pattern population by wildcard class. Arrive consults a
	// generalization bin only when its class is populated, so an all-exact
	// workload pays for exactly one map lookup per arrival.
	wTag  int // patterns (src, AnyTag, ctx)
	wSrc  int // patterns (AnySource, tag, ctx)
	wBoth int // patterns (AnySource, AnyTag, ctx)
}

// countPattern books a posted pattern into its wildcard-class population
// (delta +1 on post, -1 on match or cancel).
func (m *Matcher) countPattern(env Envelope, delta int) {
	switch {
	case env.Source == AnySource && env.Tag == AnyTag:
		m.wBoth += delta
	case env.Source == AnySource:
		m.wSrc += delta
	case env.Tag == AnyTag:
		m.wTag += delta
	}
}

func (m *Matcher) newEnt() *matchEnt {
	if n := len(m.entFree); n > 0 {
		ent := m.entFree[n-1]
		m.entFree[n-1] = nil
		m.entFree = m.entFree[:n-1]
		return ent
	}
	return &matchEnt{}
}

// unref releases one bin's reference; the last reference recycles the
// entry.
func (m *Matcher) unref(ent *matchEnt) {
	ent.refs--
	if ent.refs <= 0 {
		*ent = matchEnt{}
		m.entFree = append(m.entFree, ent)
	}
}

// bin returns the queue for key in mp, creating (or recycling) it on first
// use. Empty bins stay mapped so their slice capacity is reused.
func (m *Matcher) bin(mp map[binKey]*entQ, key binKey) *entQ {
	if q := mp[key]; q != nil {
		return q
	}
	var q *entQ
	if n := len(m.qFree); n > 0 {
		q = m.qFree[n-1]
		m.qFree[n-1] = nil
		m.qFree = m.qFree[:n-1]
	} else {
		q = &entQ{}
	}
	mp[key] = q
	return q
}

// PostRecv registers r and returns the earliest unexpected message that
// matches it, removing that message from the queue; it returns nil when no
// unexpected message matches, leaving r posted. The pattern — wildcard or
// not — names exactly one unexpected bin, whose FIFO order is arrival
// order, so the lookup is O(1) amortized.
func (m *Matcher) PostRecv(r *Request) *InMsg {
	key := mkKey(r.Env.Source, r.Env.Tag, r.Env.Context)
	if q := m.unex[key]; q != nil {
		if ent := q.first(m); ent != nil {
			msg := ent.msg
			q.take(ent, m)
			m.unexN--
			return msg
		}
	}
	if m.posted == nil {
		m.posted = make(map[binKey]*entQ)
	}
	ent := m.newEnt()
	ent.req = r
	m.seq++
	ent.seq = m.seq
	m.bin(m.posted, key).push(ent, m)
	m.postedN++
	m.countPattern(r.Env, +1)
	return nil
}

// consider folds one pattern bin's head into the running minimum-ticket
// candidate for Arrive.
func (m *Matcher) consider(key binKey, best *matchEnt, bestQ *entQ) (*matchEnt, *entQ) {
	q := m.posted[key]
	if q == nil {
		return best, bestQ
	}
	ent := q.first(m)
	if ent != nil && (best == nil || ent.seq < best.seq) {
		return ent, q
	}
	return best, bestQ
}

// Arrive matches an arriving envelope against the posted queue, removing
// and returning the earliest matching receive. When nothing matches it
// returns nil; the caller is responsible for queueing the message as
// unexpected (via AddUnexpected) if it should be retained. Of the four
// pattern bins an arrival can match — exact, AnyTag, AnySource, both —
// only those whose wildcard class is populated are consulted; the head
// with the smallest post ticket is the earliest posted matching receive.
func (m *Matcher) Arrive(env Envelope) *Request {
	if m.posted == nil {
		return nil
	}
	src, tag, ctx := env.Source, env.Tag, env.Context
	best, bestQ := m.consider(mkKey(src, tag, ctx), nil, nil)
	if m.wTag > 0 && tag != AnyTag {
		best, bestQ = m.consider(mkKey(src, AnyTag, ctx), best, bestQ)
	}
	if src != AnySource {
		if m.wSrc > 0 {
			best, bestQ = m.consider(mkKey(AnySource, tag, ctx), best, bestQ)
		}
		if m.wBoth > 0 && tag != AnyTag {
			best, bestQ = m.consider(mkKey(AnySource, AnyTag, ctx), best, bestQ)
		}
	}
	if best == nil {
		return nil
	}
	req := best.req
	bestQ.take(best, m)
	m.postedN--
	m.countPattern(req.Env, -1)
	return req
}

// AddUnexpected queues msg in arrival order, indexing it under the four
// generalizations of its arrival triple — exact, (src,*,ctx), (*,tag,ctx),
// (*,*,ctx), degenerate triples collapsing to fewer — so any posted
// pattern finds it in its own bin.
func (m *Matcher) AddUnexpected(msg *InMsg) {
	if m.unex == nil {
		m.unex = make(map[binKey]*entQ)
	}
	ent := m.newEnt()
	ent.msg = msg
	m.seq++
	ent.seq = m.seq
	src, tag, ctx := msg.Env.Source, msg.Env.Tag, msg.Env.Context
	m.bin(m.unex, mkKey(src, tag, ctx)).push(ent, m)
	if tag != AnyTag {
		m.bin(m.unex, mkKey(src, AnyTag, ctx)).push(ent, m)
	}
	if src != AnySource {
		m.bin(m.unex, mkKey(AnySource, tag, ctx)).push(ent, m)
		if tag != AnyTag {
			m.bin(m.unex, mkKey(AnySource, AnyTag, ctx)).push(ent, m)
		}
	}
	m.unexN++
}

// Probe returns the earliest unexpected message matching (src, tag, ctx)
// without removing it, or nil.
//
// Like MPI_Probe, Probe sees only the unexpected queue — by design,
// posted-receive state is invisible to it. A message that already matched
// a posted receive is in delivery (its payload is being copied or its
// rendezvous accepted); MPI defines probe as "is there a message I have
// not yet asked to receive", so such messages must not reappear here.
func (m *Matcher) Probe(src, tag, ctx int) *InMsg {
	q := m.unex[mkKey(src, tag, ctx)]
	if q == nil {
		return nil
	}
	if ent := q.first(m); ent != nil {
		return ent.msg
	}
	return nil
}

// CancelRecv removes a posted receive, reporting whether it was still
// queued (i.e. not yet matched). The pattern names the one bin holding r;
// the scan is bounded by that bin's depth and cancellation is rare.
func (m *Matcher) CancelRecv(r *Request) bool {
	q := m.posted[mkKey(r.Env.Source, r.Env.Tag, r.Env.Context)]
	if q == nil {
		return false
	}
	for _, ent := range q.items[q.head:] {
		if ent.req == r && !ent.removed {
			ent.removed = true // reclaimed when the bin is next read
			m.postedN--
			m.countPattern(r.Env, -1)
			return true
		}
	}
	return false
}

// PostedLen reports the posted-queue depth.
func (m *Matcher) PostedLen() int { return m.postedN }

// UnexpectedLen reports the unexpected-queue depth.
func (m *Matcher) UnexpectedLen() int { return m.unexN }
