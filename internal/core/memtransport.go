package core

import (
	"fmt"

	"repro/internal/sim"
)

// MemFabric is a reference Transport implementation: an idealized
// interconnect with a flat latency and optional per-pair bounce credits.
// It exists to test the engine's protocol logic in isolation from any
// platform cost model, and as the executable specification of the
// Transport contract that the Meiko and cluster transports implement.
type MemFabric struct {
	S        *sim.Scheduler
	Latency  sim.Duration
	Eager    int // eager/rendezvous crossover in bytes
	Credits  int // per-(sender,receiver) bounce bytes; 0 means unlimited
	PollCost sim.Duration

	eps map[int]*MemTransport
}

// NewMemFabric returns a fabric for the given scheduler. Attach endpoints
// with Attach before running.
func NewMemFabric(s *sim.Scheduler, latency sim.Duration, eager int) *MemFabric {
	return &MemFabric{S: s, Latency: latency, Eager: eager, eps: make(map[int]*MemTransport)}
}

// Attach creates the rank's transport and wires it to engine e.
func (f *MemFabric) Attach(e *Engine) *MemTransport {
	t := &MemTransport{
		fab:       f,
		eng:       e,
		rank:      e.Rank(),
		avail:     make(map[int]int),
		sendQ:     make(map[int][]*Request),
		creditCnd: sim.NewCond(f.S),
	}
	f.eps[e.Rank()] = t
	e.SetTransport(t)
	return t
}

// MemTransport is one rank's endpoint on a MemFabric.
type MemTransport struct {
	fab   *MemFabric
	eng   *Engine
	rank  int
	inbox []*Packet

	// Sender-side credit state per destination; lazily initialized to the
	// fabric's credit allotment.
	avail     map[int]int
	sendQ     map[int][]*Request // eager sends queued awaiting credits
	creditCnd *sim.Cond

	// Counters for tests.
	NSent, NDelivered int
}

var _ Transport = (*MemTransport)(nil)

// MaxEager implements Transport.
func (t *MemTransport) MaxEager() int { return t.fab.Eager }

func (t *MemTransport) creditsFor(dst int) int {
	if t.fab.Credits == 0 {
		return 1 << 30
	}
	if _, ok := t.avail[dst]; !ok {
		t.avail[dst] = t.fab.Credits
	}
	return t.avail[dst]
}

// deliver ships pkt to dst after the fabric latency.
func (t *MemTransport) deliver(dst int, pkt *Packet) {
	t.NSent++
	t.fab.S.After(t.fab.Latency, func() {
		peer := t.fab.eps[dst]
		if peer == nil {
			panic(fmt.Sprintf("memtransport: no endpoint for rank %d", dst))
		}
		peer.NDelivered++
		if pkt.Kind == PktCredit {
			// Credits are transport-internal: restore and drain the queue.
			peer.avail[pkt.Env.Dest] = peer.creditsFor(pkt.Env.Dest) + pkt.Env.Count
			peer.drainSendQ(pkt.Env.Dest)
			peer.creditCnd.Broadcast()
			peer.eng.Wake()
			return
		}
		peer.inbox = append(peer.inbox, pkt)
		peer.eng.Wake()
	})
}

// drainSendQ transmits queued sends for dst, in issue order, while flow
// control allows. Runs in event context; completions go through
// Engine.SendDone.
func (t *MemTransport) drainSendQ(dst int) {
	q := t.sendQ[dst]
	for len(q) > 0 {
		req := q[0]
		if req.Env.Count <= t.fab.Eager {
			if t.creditsFor(dst) < req.Env.Count {
				break
			}
			t.avail[dst] -= req.Env.Count
			t.sendEager(req)
			t.eng.SendDone(req)
		} else {
			t.deliver(dst, &Packet{Kind: PktRTS, Env: req.Env})
		}
		q = q[1:]
	}
	t.sendQ[dst] = q
}

func (t *MemTransport) sendEager(req *Request) {
	// Bounce space comes from the sender engine's pool; the receiving
	// engine recycles it after copy-out (single-scheduler worlds make the
	// cross-rank Put safe).
	pool := t.eng.Pool()
	data := pool.Get(len(req.Buf))
	copy(data, req.Buf)
	t.deliver(req.Env.Dest, &Packet{Kind: PktEager, Env: req.Env, Data: data, Pool: pool})
}

// Send implements Transport. Messages queue in issue order behind any
// flow-controlled predecessor so delivery order is preserved.
func (t *MemTransport) Send(p *sim.Proc, req *Request) {
	dst := req.Env.Dest
	n := req.Env.Count
	if len(t.sendQ[dst]) > 0 {
		t.sendQ[dst] = append(t.sendQ[dst], req)
		return
	}
	if n > t.fab.Eager {
		// Rendezvous: ship the envelope; the payload moves on CTS.
		t.deliver(dst, &Packet{Kind: PktRTS, Env: req.Env})
		return
	}
	if t.creditsFor(dst) < n {
		t.sendQ[dst] = append(t.sendQ[dst], req)
		return
	}
	t.avail[dst] -= n
	t.sendEager(req)
	t.eng.SendDone(req)
}

// Accept implements Transport: CTS back to the sender; the payload will
// arrive as PktData carrying the receiver request id.
func (t *MemTransport) Accept(p *sim.Proc, msg *InMsg, req *Request) {
	t.deliver(msg.Env.Source, &Packet{Kind: PktCTS, Env: msg.Env, ReqID: msg.Env.SendID, Handle: req.ID})
}

// SendPayload implements Transport: the CTS surfaced at the sender; move
// the payload straight into the posted receive.
func (t *MemTransport) SendPayload(p *sim.Proc, req *Request, pkt *Packet) {
	pool := t.eng.Pool()
	data := pool.Get(len(req.Buf))
	copy(data, req.Buf)
	recvID, _ := pkt.Handle.(int64)
	t.deliver(req.Env.Dest, &Packet{Kind: PktData, Env: req.Env, ReqID: recvID, Data: data, Pool: pool})
	t.eng.SendDone(req)
}

// Control implements Transport.
func (t *MemTransport) Control(p *sim.Proc, dst int, kind PacketKind, env Envelope) {
	t.deliver(dst, &Packet{Kind: kind, Env: env, ReqID: env.SendID})
}

// Release implements Transport: return n bounce bytes to the sender side.
func (t *MemTransport) Release(p *sim.Proc, src int, n int) {
	if t.fab.Credits == 0 {
		return
	}
	// Env.Dest names the rank whose credit account at src is restored.
	t.deliver(src, &Packet{Kind: PktCredit, Env: Envelope{Dest: t.rank, Count: n}})
}

// Poll implements Transport.
func (t *MemTransport) Poll(p *sim.Proc) *Packet {
	if len(t.inbox) == 0 {
		return nil
	}
	t.eng.Acct().Charge(p, CostProtocol, t.fab.PollCost)
	pkt := t.inbox[0]
	t.inbox = t.inbox[1:]
	return pkt
}

// Pending implements Transport.
func (t *MemTransport) Pending() bool { return len(t.inbox) > 0 }
