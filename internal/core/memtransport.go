package core

import (
	"fmt"

	"repro/internal/sim"
)

// MemFabric is a reference Transport implementation: an idealized
// interconnect with a flat latency and optional per-pair bounce credits.
// It exists to test the engine's protocol logic in isolation from any
// platform cost model, and as the executable specification of the
// Transport contract that the Meiko and cluster transports implement.
//
// The fabric runs on either kernel: on a single scheduler (NewMemFabric)
// every delivery is a plain timer event, and on a shard
// (NewShardedMemFabric) each rank's endpoint lives on its node's lane and
// deliveries cross lanes through Route — the flat Latency is the shard's
// natural lookahead bound.
type MemFabric struct {
	S        *sim.Scheduler
	Latency  sim.Duration
	Eager    int // eager/rendezvous crossover in bytes
	Credits  int // per-(sender,receiver) bounce bytes; 0 means unlimited
	PollCost sim.Duration

	sh     *sim.Shard
	laneOf []int // world rank -> lane; nil when single-scheduler

	eps map[int]*MemTransport
}

// NewMemFabric returns a fabric for the given scheduler. Attach endpoints
// with Attach before running.
func NewMemFabric(s *sim.Scheduler, latency sim.Duration, eager int) *MemFabric {
	return &MemFabric{S: s, Latency: latency, Eager: eager, eps: make(map[int]*MemTransport)}
}

// NewShardedMemFabric returns a fabric whose rank endpoints are pinned to
// shard lanes by laneOf (world rank -> lane). The fabric latency must be at
// least the shard's lookahead, or cross-lane deliveries would land inside
// the epoch window.
func NewShardedMemFabric(sh *sim.Shard, laneOf []int, latency sim.Duration, eager int) *MemFabric {
	if latency < sh.Lookahead() {
		panic(fmt.Sprintf("memtransport: fabric latency %v below shard lookahead %v", latency, sh.Lookahead()))
	}
	return &MemFabric{
		S: sh.Lane(0), Latency: latency, Eager: eager,
		sh: sh, laneOf: laneOf, eps: make(map[int]*MemTransport),
	}
}

// schedFor reports the scheduler owning rank's endpoint.
func (f *MemFabric) schedFor(rank int) *sim.Scheduler {
	if f.sh == nil {
		return f.S
	}
	return f.sh.Lane(f.laneOf[rank])
}

// laneFor reports rank's lane (0 on a single scheduler, where Route
// degrades to a local timer anyway).
func (f *MemFabric) laneFor(rank int) int {
	if f.laneOf == nil {
		return 0
	}
	return f.laneOf[rank]
}

// crossLane reports whether a and b live on different lanes.
func (f *MemFabric) crossLane(a, b int) bool {
	return f.laneOf != nil && f.laneOf[a] != f.laneOf[b]
}

// Attach creates the rank's transport and wires it to engine e. In a
// sharded fabric, e must have been built on its rank's lane scheduler.
func (f *MemFabric) Attach(e *Engine) *MemTransport {
	s := f.schedFor(e.Rank())
	t := &MemTransport{
		fab:       f,
		eng:       e,
		s:         s,
		rank:      e.Rank(),
		avail:     make(map[int]int),
		sendQ:     make(map[int][]*Request),
		creditCnd: sim.NewCond(s),
	}
	f.eps[e.Rank()] = t
	e.SetTransport(t)
	return t
}

// MemTransport is one rank's endpoint on a MemFabric.
type MemTransport struct {
	fab   *MemFabric
	eng   *Engine
	s     *sim.Scheduler // this rank's (lane) scheduler
	rank  int
	inbox []*Packet
	inPos int // consumed prefix of inbox; avoids O(n) head shifts

	// Sender-side credit state per destination; lazily initialized to the
	// fabric's credit allotment.
	avail     map[int]int
	sendQ     map[int][]*Request // eager sends queued awaiting credits
	creditCnd *sim.Cond

	// Counters for tests.
	NSent, NDelivered int
}

var _ Transport = (*MemTransport)(nil)

// MaxEager implements Transport.
func (t *MemTransport) MaxEager() int { return t.fab.Eager }

func (t *MemTransport) creditsFor(dst int) int {
	if t.fab.Credits == 0 {
		return 1 << 30
	}
	if _, ok := t.avail[dst]; !ok {
		t.avail[dst] = t.fab.Credits
	}
	return t.avail[dst]
}

// deliver ships pkt to dst after the fabric latency. Every call site runs
// on t's own lane (sends from the rank's proc, credit/CTS turnarounds from
// delivery context), so Route's staging is always lane-local; on a
// single-scheduler fabric Route degrades to a plain timer.
func (t *MemTransport) deliver(dst int, pkt *Packet) {
	t.NSent++
	t.s.RouteAfter(t.fab.laneFor(dst), t.fab.Latency, func() {
		peer := t.fab.eps[dst]
		if peer == nil {
			panic(fmt.Sprintf("memtransport: no endpoint for rank %d", dst))
		}
		peer.NDelivered++
		if pkt.Kind == PktCredit {
			// Credits are transport-internal: restore and drain the queue.
			peer.avail[pkt.Env.Dest] = peer.creditsFor(pkt.Env.Dest) + pkt.Env.Count
			peer.drainSendQ(pkt.Env.Dest)
			peer.creditCnd.Broadcast()
			peer.eng.Wake()
			return
		}
		peer.inbox = append(peer.inbox, pkt)
		peer.eng.Wake()
	})
}

// drainSendQ transmits queued sends for dst, in issue order, while flow
// control allows. Runs in event context; completions go through
// Engine.SendDone.
func (t *MemTransport) drainSendQ(dst int) {
	q := t.sendQ[dst]
	for len(q) > 0 {
		req := q[0]
		if req.Env.Count <= t.fab.Eager {
			if t.creditsFor(dst) < req.Env.Count {
				break
			}
			t.avail[dst] -= req.Env.Count
			t.sendEager(req)
			t.eng.SendDone(req)
		} else {
			t.deliver(dst, &Packet{Kind: PktRTS, Env: req.Env})
		}
		q = q[1:]
	}
	t.sendQ[dst] = q
}

// bounce allocates delivery storage for a payload copy. Same-lane (and
// single-scheduler) transfers draw from the sender engine's pool and the
// receiving engine recycles the buffer after copy-out — safe because both
// ends share one scheduler. A cross-lane Put would mutate the source
// lane's freelist from the destination lane, so those transfers use plain
// GC-owned buffers (Pool nil) instead.
func (t *MemTransport) bounce(dst, n int) ([]byte, *BufPool) {
	if t.fab.crossLane(t.rank, dst) {
		return make([]byte, n), nil
	}
	pool := t.eng.Pool()
	return pool.Get(n), pool
}

func (t *MemTransport) sendEager(req *Request) {
	data, pool := t.bounce(req.Env.Dest, len(req.Buf))
	copy(data, req.Buf)
	t.deliver(req.Env.Dest, &Packet{Kind: PktEager, Env: req.Env, Data: data, Pool: pool})
}

// Send implements Transport. Messages queue in issue order behind any
// flow-controlled predecessor so delivery order is preserved.
func (t *MemTransport) Send(p *sim.Proc, req *Request) {
	dst := req.Env.Dest
	n := req.Env.Count
	if len(t.sendQ[dst]) > 0 {
		t.sendQ[dst] = append(t.sendQ[dst], req)
		return
	}
	if n > t.fab.Eager {
		// Rendezvous: ship the envelope; the payload moves on CTS.
		t.deliver(dst, &Packet{Kind: PktRTS, Env: req.Env})
		return
	}
	if t.creditsFor(dst) < n {
		t.sendQ[dst] = append(t.sendQ[dst], req)
		return
	}
	t.avail[dst] -= n
	t.sendEager(req)
	t.eng.SendDone(req)
}

// Accept implements Transport: CTS back to the sender; the payload will
// arrive as PktData carrying the receiver request id.
func (t *MemTransport) Accept(p *sim.Proc, msg *InMsg, req *Request) {
	t.deliver(msg.Env.Source, &Packet{Kind: PktCTS, Env: msg.Env, ReqID: msg.Env.SendID, Handle: req.ID})
}

// SendPayload implements Transport: the CTS surfaced at the sender; move
// the payload straight into the posted receive.
func (t *MemTransport) SendPayload(p *sim.Proc, req *Request, pkt *Packet) {
	data, pool := t.bounce(req.Env.Dest, len(req.Buf))
	copy(data, req.Buf)
	recvID, _ := pkt.Handle.(int64)
	t.deliver(req.Env.Dest, &Packet{Kind: PktData, Env: req.Env, ReqID: recvID, Data: data, Pool: pool})
	t.eng.SendDone(req)
}

// Control implements Transport.
func (t *MemTransport) Control(p *sim.Proc, dst int, kind PacketKind, env Envelope) {
	t.deliver(dst, &Packet{Kind: kind, Env: env, ReqID: env.SendID})
}

// Release implements Transport: return n bounce bytes to the sender side.
func (t *MemTransport) Release(p *sim.Proc, src int, n int) {
	if t.fab.Credits == 0 {
		return
	}
	// Env.Dest names the rank whose credit account at src is restored.
	t.deliver(src, &Packet{Kind: PktCredit, Env: Envelope{Dest: t.rank, Count: n}})
}

// PeerDown implements PeerFencer: drop sends queued toward the dead rank
// (the engine already failed their requests) and reset its credit account —
// a corpse never returns credits, so nothing may wait on them.
func (t *MemTransport) PeerDown(rank int) {
	delete(t.sendQ, rank)
	delete(t.avail, rank)
	t.creditCnd.Broadcast()
}

// Poll implements Transport. The inbox keeps a consumed-prefix index and
// recycles its backing array once drained, so steady-state polling neither
// shifts nor reallocates.
func (t *MemTransport) Poll(p *sim.Proc) *Packet {
	if t.inPos == len(t.inbox) {
		return nil
	}
	t.eng.Acct().Charge(p, CostProtocol, t.fab.PollCost)
	pkt := t.inbox[t.inPos]
	t.inbox[t.inPos] = nil
	t.inPos++
	if t.inPos == len(t.inbox) {
		t.inbox = t.inbox[:0]
		t.inPos = 0
	}
	return pkt
}

// Pending implements Transport.
func (t *MemTransport) Pending() bool { return t.inPos < len(t.inbox) }

// ------------------------------------------------------------ RemoteMemory --
//
// The fabric's one-sided operations are the executable specification of
// the RemoteMemory contract: a store crosses the fabric at the flat
// latency, applies directly to the target window in delivery context
// (never touching the target's matcher or inbox), and the completion ack
// crosses back before done fires on the origin lane. Payloads are
// snapshotted on the origin lane so cross-lane transfers never share
// mutable storage between lanes.

var _ RemoteMemory = (*MemTransport)(nil)

// RMAPut implements RemoteMemory.
func (t *MemTransport) RMAPut(p *sim.Proc, dst, win, off int, data []byte, done func()) {
	snap := make([]byte, len(data))
	copy(snap, data)
	home := t.fab.laneFor(t.rank)
	t.s.RouteAfter(t.fab.laneFor(dst), t.fab.Latency, func() {
		peer := t.fab.eps[dst]
		peer.eng.Win(win).ApplyPut(off, snap)
		peer.s.RouteAfter(home, t.fab.Latency, done)
	})
}

// RMAGet implements RemoteMemory.
func (t *MemTransport) RMAGet(p *sim.Proc, dst, win, off int, buf []byte, done func()) {
	home := t.fab.laneFor(t.rank)
	t.s.RouteAfter(t.fab.laneFor(dst), t.fab.Latency, func() {
		peer := t.fab.eps[dst]
		snap := make([]byte, len(buf))
		peer.eng.Win(win).ReadInto(off, snap)
		peer.s.RouteAfter(home, t.fab.Latency, func() {
			copy(buf, snap)
			done()
		})
	})
}

// RMAAccumulate implements RemoteMemory.
func (t *MemTransport) RMAAccumulate(p *sim.Proc, dst, win, off int, data []byte, op RMAOp, done func()) {
	snap := make([]byte, len(data))
	copy(snap, data)
	home := t.fab.laneFor(t.rank)
	t.s.RouteAfter(t.fab.laneFor(dst), t.fab.Latency, func() {
		peer := t.fab.eps[dst]
		peer.eng.Win(win).ApplyAccumulate(off, snap, op)
		peer.s.RouteAfter(home, t.fab.Latency, done)
	})
}
