package core

import "repro/internal/sim"

// PacketKind enumerates the protocol messages exchanged by engines. The
// 1-byte "message type" of the paper's 25-byte cluster header carries
// exactly this discriminator.
type PacketKind uint8

const (
	// PktEager carries an envelope with the payload piggybacked; the
	// payload is deposited in receiver-side bounce space (the Meiko
	// per-sender slot, or the cluster's reserved credit memory).
	PktEager PacketKind = iota
	// PktRTS is a rendezvous envelope: payload stays at the sender until
	// the receiver matches and accepts.
	PktRTS
	// PktCTS flows back to the sender once an RTS matched; it names the
	// sender request that may now transmit its payload.
	PktCTS
	// PktData is a rendezvous payload arriving into the posted buffer.
	PktData
	// PktSyncAck acknowledges the match of a synchronous-mode eager send.
	PktSyncAck
	// PktCredit returns freed bounce space to a sender (cluster transport;
	// usually piggybacked, explicit when traffic is one-sided).
	PktCredit
	// PktRTR (ready-to-receive) advertises a freshly posted rendezvous-sized
	// receive back to its prospective sender — the RDMA-write rendezvous
	// fast path (MPICH2/InfiniBand style): the sender may then write the
	// payload directly into the posted buffer, skipping the RTS/CTS round
	// trip. Transports that implement RecvAdvertiser consume it internally;
	// it never surfaces to the engine.
	PktRTR
	// PktRMALock requests a passive-target window lock (Env.Tag carries the
	// window id; Env.Count is 1 for exclusive, 0 for shared).
	PktRMALock
	// PktRMAUnlock releases a passive-target window lock.
	PktRMAUnlock
	// PktRMAGrant notifies a waiting origin that its lock request was
	// granted (Env.Source is the target rank, Env.Tag the window id).
	PktRMAGrant
	// PktRevoke is the reliable-broadcast notice that a communicator was
	// revoked (Env.Context carries the revoked p2p context id). Every engine
	// re-forwards it on first receipt, so it reaches all survivors even if
	// the revoker dies mid-broadcast.
	PktRevoke
)

func (k PacketKind) String() string {
	switch k {
	case PktEager:
		return "eager"
	case PktRTS:
		return "rts"
	case PktCTS:
		return "cts"
	case PktData:
		return "data"
	case PktSyncAck:
		return "syncack"
	case PktCredit:
		return "credit"
	case PktRTR:
		return "rtr"
	case PktRMALock:
		return "rma-lock"
	case PktRMAUnlock:
		return "rma-unlock"
	case PktRMAGrant:
		return "rma-grant"
	case PktRevoke:
		return "revoke"
	default:
		return "unknown"
	}
}

// Packet is a protocol message surfaced to an engine by its transport.
type Packet struct {
	Kind   PacketKind
	Env    Envelope
	Data   []byte   // eager payload (bounce storage owned by transport until Release)
	ReqID  int64    // CTS/SyncAck: sender request; Data: receiver request
	Handle any      // transport cookie threaded from RTS to Accept
	Pool   *BufPool // owner of Data; the engine recycles the bounce buffer after its copy-out
}

// Transport moves bytes and charges platform time on behalf of an Engine.
// The three primitives mirror the paper's §5.1 list: sending an envelope,
// sending an envelope with piggybacked data, and setting remote events /
// sending DMA data. Implementations exist for the Meiko (DMA, transactions,
// per-sender envelope slots) and the cluster (TCP/UDP streams, byte credits).
//
// All methods taking a *sim.Proc run in that proc's context and may park it
// (flow control) and charge it time. Delivery upcalls into the Engine
// (SendDone, RecvDataDone, Wake) may instead come from event context.
type Transport interface {
	// MaxEager is the eager/rendezvous crossover in payload bytes
	// (180 on the Meiko, per Figure 1).
	MaxEager() int

	// Send transmits req's message: eager when req.Env.Count <= MaxEager,
	// rendezvous RTS otherwise. Send never blocks (MPI_Isend semantics):
	// when flow control (an envelope slot or byte credits) is exhausted,
	// the transport queues the message internally and transmits when space
	// frees — in issue order, so MPI's non-overtaking rule survives a mix
	// of queued eager messages and rendezvous envelopes. The transport
	// marks the local send complete via Engine.SendDone (or synchronously
	// before returning).
	Send(p *sim.Proc, req *Request)

	// Accept informs the transport that the receiver matched RTS msg with
	// posted receive req: it issues the CTS and arranges for the payload to
	// land in req.Buf, then calls Engine.RecvDataDone.
	Accept(p *sim.Proc, msg *InMsg, req *Request)

	// SendPayload handles a CTS that surfaced through Poll (stream
	// transports, where the sending process itself must push the data):
	// transmit req's payload toward the destination named in pkt.
	SendPayload(p *sim.Proc, req *Request, pkt *Packet)

	// Control sends a small control message (PktSyncAck, PktCredit).
	Control(p *sim.Proc, dst int, kind PacketKind, env Envelope)

	// Release returns n bytes of eager bounce space for messages from src
	// (frees the Meiko slot / returns cluster credits).
	Release(p *sim.Proc, src int, n int)

	// Poll surfaces the next arrived packet, charging p the platform's
	// per-packet receive costs (kernel reads, slot scans); nil when idle.
	Poll(p *sim.Proc) *Packet

	// Pending cheaply reports whether Poll would surface a packet.
	Pending() bool
}
