package core

import "math/bits"

// BufPool recycles byte buffers in power-of-two size classes: eager bounce
// buffers, packet frames, and envelope encode scratch on the receive hot
// path. Recycling is a host-side optimization — pools charge no virtual
// time, so the modeled latencies (anchors, figures) are unchanged — but
// hit/miss and bytes-recycled counters are booked into the owning Acct for
// the trace tool.
//
// Pools are deliberately unsynchronized: every pool is owned by one
// simulated world, whose scheduler admits a single running proc at a time,
// so Get/Put never race. Buffers may migrate between the pools of
// different ranks in one world (a receiver recycles a frame the sender's
// pool allocated); that is safe for the same reason.
type BufPool struct {
	acct    *Acct
	classes [poolClasses][][]byte
}

const (
	poolMinShift = 6  // smallest class: 64 B
	poolMaxShift = 20 // largest class: 1 MiB; bigger buffers bypass the pool
	poolClasses  = poolMaxShift - poolMinShift + 1
	poolPerClass = 64 // retained buffers per class; excess is dropped to the GC
)

// Pool counter names booked into the owning Acct.
const (
	PoolHit      = "pool.hit"            // Get satisfied from a free list
	PoolMiss     = "pool.miss"           // Get fell through to make()
	PoolRecycled = "pool.bytes-recycled" // capacity returned via Put
)

// NewBufPool returns an empty pool booking its counters into acct (which
// may be nil for an unaccounted pool).
func NewBufPool(acct *Acct) *BufPool {
	return &BufPool{acct: acct}
}

// classFor maps a capacity to its size class, or -1 when the pool does not
// handle it.
func classFor(n int) int {
	if n <= 0 || n > 1<<poolMaxShift {
		return -1
	}
	c := bits.Len(uint(n-1)) - poolMinShift // ceil(log2(n)) - min
	if c < 0 {
		c = 0
	}
	return c
}

// Get returns a length-n buffer, reusing pooled space when a class fits.
// A nil pool degrades to plain allocation.
func (p *BufPool) Get(n int) []byte {
	if p == nil {
		return make([]byte, n)
	}
	c := classFor(n)
	if c < 0 {
		p.acct.Incr(PoolMiss, 1)
		return make([]byte, n)
	}
	if free := p.classes[c]; len(free) > 0 {
		b := free[len(free)-1]
		free[len(free)-1] = nil
		p.classes[c] = free[:len(free)-1]
		p.acct.Incr(PoolHit, 1)
		return b[:n]
	}
	p.acct.Incr(PoolMiss, 1)
	return make([]byte, n, 1<<(poolMinShift+c))
}

// Put returns b's storage to the pool. Only exact class-sized capacities
// are retained (everything Get hands out qualifies); foreign or oversized
// buffers and overflow beyond the per-class cap fall to the garbage
// collector. Callers must not retain b after Put.
func (p *BufPool) Put(b []byte) {
	if p == nil {
		return
	}
	n := cap(b)
	c := classFor(n)
	if c < 0 || n != 1<<(poolMinShift+c) || len(p.classes[c]) >= poolPerClass {
		return
	}
	p.classes[c] = append(p.classes[c], b[:0])
	p.acct.Incr(PoolRecycled, int64(n))
}
