package core

// Request is the state of an in-flight nonblocking operation. Requests are
// created by the engine and completed either in the receiving/sending proc's
// context (poll model) or from a device event (DMA completion).
type Request struct {
	ID     int64
	IsRecv bool
	Env    Envelope // for sends: the outgoing envelope; for recvs: the match pattern in Source/Tag/Context
	Buf    []byte   // send payload or receive buffer

	// Send-side protocol state.
	sent      bool // transport finished moving the data (or accepted it for background delivery)
	acked     bool // match acknowledged (sync mode) or rendezvous completed
	ackWanted bool
	buffered  bool // Bsend: attached-buffer space is freed on SendDone

	// Recv-side state.
	matched    bool
	matchedSrc int // the source rank this receive matched (valid once matched)

	done   bool
	status Status
	err    error

	// cancelled via MPI_Cancel semantics (receives only).
	cancelled bool
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// Status reports the completion status; valid only once Done.
func (r *Request) Status() Status { return r.status }

// Err reports the terminal error, if any.
func (r *Request) Err() error { return r.err }

// Cancelled reports whether the request was cancelled before matching.
func (r *Request) Cancelled() bool { return r.cancelled }

// complete marks the request done with the given status. Completion is
// first-wins: a request failed by peer death or a revoke must not be
// overwritten by a late transport event (e.g. a rendezvous payload already
// in flight when the peer died lands after the receive was failed).
func (r *Request) complete(st Status, err error) {
	if r.done {
		return
	}
	r.done = true
	r.status = st
	r.err = err
}

// sendMaybeComplete completes a send request once the transport has moved
// the data and any required acknowledgement has arrived.
func (r *Request) sendMaybeComplete() {
	if r.done || !r.sent {
		return
	}
	if r.ackWanted && !r.acked {
		return
	}
	r.complete(Status{Source: r.Env.Dest, Tag: r.Env.Tag, Count: r.Env.Count}, r.err)
}
