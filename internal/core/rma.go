package core

import (
	"encoding/binary"
	"math"

	"repro/internal/sim"
)

// RemoteMemory is the one-sided capability a Transport may implement
// alongside matched delivery: direct placement into a registered window
// region on the target rank, bypassing the matching engine entirely. The
// Meiko maps it to Elan remote transactions and DMA, the in-memory fabric
// and the cluster shared-memory segment to direct stores across the
// medium; socket transports, which have no remote-write primitive, leave
// it unimplemented and the mpi layer falls back to a deferred-at-fence
// emulation over matched sends.
//
// All three methods run in the origin proc's context. done MUST fire
// exactly once, in the origin rank's scheduler (lane) context, and only
// after the operation is remotely complete — the bytes applied at the
// target (Put/Accumulate) or landed in buf (Get). The engine's fence
// machinery counts on that ordering: outstanding-operation draining plus
// a barrier is what makes a fence epoch.
//
// Implementations locate the target region via Engine.Win on the target
// rank's engine; origins validate offsets before issuing, so a
// transport-side out-of-range apply is an invariant violation (panic),
// not a user error.
type RemoteMemory interface {
	// RMAPut writes data into target dst's window win at byte offset off.
	RMAPut(p *sim.Proc, dst, win, off int, data []byte, done func())
	// RMAGet reads len(buf) bytes from dst's window win at off into buf.
	RMAGet(p *sim.Proc, dst, win, off int, buf []byte, done func())
	// RMAAccumulate combines data into dst's window win at off with op.
	RMAAccumulate(p *sim.Proc, dst, win, off int, data []byte, op RMAOp, done func())
}

// RecvAdvertiser is an optional Transport capability backing the
// RDMA-write rendezvous (MPICH2/InfiniBand): when a rendezvous-sized
// receive is posted with a specific source and tag and nothing matched it
// on post, the engine advertises it to the prospective sender so a later
// matching send can write the payload straight into the posted buffer,
// eliminating the RTS/CTS round trip. Purely an optimization — a lost or
// unconsumed advertisement leaves the normal rendezvous path intact.
type RecvAdvertiser interface {
	AdvertiseRecv(p *sim.Proc, req *Request)
}

// RMAOp enumerates the accumulate operators applied element-wise at the
// target. Sum operators require the payload length to be a multiple of 8
// (int64/float64 little-endian elements); Replace and Xor are byte-wise.
// All operators are commutative, so concurrent same-epoch accumulates
// from different origins produce the same contents regardless of
// application order.
type RMAOp uint8

const (
	// RMAReplace overwrites the target bytes (MPI_REPLACE).
	RMAReplace RMAOp = iota
	// RMASumInt64 adds little-endian int64 elements (MPI_SUM).
	RMASumInt64
	// RMASumFloat64 adds little-endian float64 elements (MPI_SUM).
	RMASumFloat64
	// RMAXor xors bytes (MPI_BXOR).
	RMAXor
)

func (op RMAOp) String() string {
	switch op {
	case RMAReplace:
		return "replace"
	case RMASumInt64:
		return "sum-int64"
	case RMASumFloat64:
		return "sum-float64"
	case RMAXor:
		return "xor"
	default:
		return "unknown"
	}
}

// ValidLen reports whether op can apply to an n-byte payload (the sum
// operators consume whole 8-byte elements). The mpi layer uses it to
// validate emulated accumulates with the same rule the engine applies to
// native ones.
func (op RMAOp) ValidLen(n int) bool { return op.valid(n) }

// valid reports whether op can apply to an n-byte payload.
func (op RMAOp) valid(n int) bool {
	switch op {
	case RMASumInt64, RMASumFloat64:
		return n%8 == 0
	default:
		return true
	}
}

// apply combines src into dst element-wise. len(dst) == len(src).
func (op RMAOp) apply(dst, src []byte) {
	switch op {
	case RMAReplace:
		copy(dst, src)
	case RMASumInt64:
		for i := 0; i+8 <= len(src); i += 8 {
			v := int64(binary.LittleEndian.Uint64(dst[i:])) + int64(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], uint64(v))
		}
	case RMASumFloat64:
		for i := 0; i+8 <= len(src); i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:])) +
				math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(v))
		}
	case RMAXor:
		for i := range src {
			dst[i] ^= src[i]
		}
	}
}
