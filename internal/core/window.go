package core

import "repro/internal/sim"

// WinState is one rank's side of an MPI-2 window: the locally exposed
// memory region plus the origin-side epoch counter and the target-side
// passive-target lock manager. The mpi layer creates one per rank per
// window (same id on every rank) and drives it through the Engine's Win*
// methods; transports implementing RemoteMemory reach the target's state
// via Engine.Win to apply operations directly, bypassing the matcher.
type WinState struct {
	// ID is the window identifier, agreed collectively at creation (the
	// mpi layer allocates it from the same space as communicator
	// contexts, so window traffic can never collide with message tags).
	ID int
	// Mem is the exposed region.
	Mem []byte

	// outstanding counts this rank's issued-but-incomplete one-sided
	// operations (as origin). WinFence drains it to zero.
	outstanding int

	// Target-side passive-target lock manager: current holders (shared
	// readers or one exclusive writer) and the FIFO wait queue.
	lockExcl    bool
	lockHolders map[int]bool
	lockQ       []lockWaiter

	// Origin-side grants held, by target rank.
	granted map[int]bool
}

type lockWaiter struct {
	origin int
	excl   bool
}

// ApplyPut stores data at off; called by RemoteMemory transports in the
// target's delivery context. Bounds were validated at the origin.
func (w *WinState) ApplyPut(off int, data []byte) {
	copy(w.Mem[off:off+len(data)], data)
}

// ApplyAccumulate combines data into the region at off with op.
func (w *WinState) ApplyAccumulate(off int, data []byte, op RMAOp) {
	op.apply(w.Mem[off:off+len(data)], data)
}

// ReadInto copies len(buf) bytes at off into buf (the Get service side).
func (w *WinState) ReadInto(off int, buf []byte) {
	copy(buf, w.Mem[off:off+len(buf)])
}

// grantable reports whether origin's request can be granted now: the FIFO
// queue is empty (no starvation of queued waiters) and the lock is free or
// shared-compatible.
func (w *WinState) grantable(excl bool) bool {
	if len(w.lockQ) > 0 {
		return false
	}
	if len(w.lockHolders) == 0 {
		return true
	}
	return !excl && !w.lockExcl
}

// acquire records origin as a holder.
func (w *WinState) acquire(origin int, excl bool) {
	if len(w.lockHolders) == 0 {
		w.lockExcl = excl
	}
	w.lockHolders[origin] = true
}

// ------------------------------------------------------------ engine side --

// SupportsRMA reports whether this engine's transport implements the
// RemoteMemory capability (native one-sided operations). Without it the
// mpi layer emulates windows over matched sends at fence time.
func (e *Engine) SupportsRMA() bool {
	_, ok := e.tr.(RemoteMemory)
	return ok
}

// WinCreate registers a window of size bytes under id and returns its
// state. The id must be unused on this engine.
func (e *Engine) WinCreate(id, size int) (*WinState, error) {
	if e.fatal != nil {
		return nil, e.fatal
	}
	if e.wins == nil {
		e.wins = make(map[int]*WinState)
	}
	if e.wins[id] != nil {
		return nil, Errorf(ErrInternal, "window id %d already exists", id)
	}
	w := &WinState{
		ID:          id,
		Mem:         make([]byte, size),
		lockHolders: make(map[int]bool),
		granted:     make(map[int]bool),
	}
	e.wins[id] = w
	return w, nil
}

// WinFree unregisters window id.
func (e *Engine) WinFree(id int) {
	delete(e.wins, id)
}

// Win reports the window registered under id (nil if none). Transports
// use it to locate the target region when applying remote operations.
func (e *Engine) Win(id int) *WinState { return e.wins[id] }

// winFor looks up a window for an origin-side operation.
func (e *Engine) winFor(id int) (*WinState, error) {
	w := e.wins[id]
	if w == nil {
		return nil, Errorf(ErrInternal, "no window with id %d", id)
	}
	return w, nil
}

// rmaDone builds the completion callback decrementing w's outstanding
// count. It may fire from event context (a DMA landing), so it wakes any
// proc parked in WinFence.
func (e *Engine) rmaDone(w *WinState) func() {
	return func() {
		w.outstanding--
		e.cond.Broadcast()
	}
}

// RMAPut issues a one-sided put of data into dst's window id at off.
// Local completion is deferred to WinFence (or WinUnlock), per MPI RMA
// semantics; data must stay unmodified until then.
func (e *Engine) RMAPut(p *sim.Proc, dst, id, off int, data []byte) error {
	w, err := e.rmaStart(p, dst, id, "rma.put")
	if err != nil {
		return err
	}
	if dst == e.rank {
		w.ApplyPut(off, data)
		e.acct.Charge(p, CostCopy, e.costs.CopyBase+sim.Duration(len(data))*e.costs.CopyPerByte)
		return nil
	}
	w.outstanding++
	e.tr.(RemoteMemory).RMAPut(p, dst, id, off, data, e.rmaDone(w))
	return nil
}

// RMAGet issues a one-sided read of len(buf) bytes from dst's window id
// at off into buf; buf is valid only after the closing WinFence/WinUnlock.
func (e *Engine) RMAGet(p *sim.Proc, dst, id, off int, buf []byte) error {
	w, err := e.rmaStart(p, dst, id, "rma.get")
	if err != nil {
		return err
	}
	if dst == e.rank {
		w.ReadInto(off, buf)
		e.acct.Charge(p, CostCopy, e.costs.CopyBase+sim.Duration(len(buf))*e.costs.CopyPerByte)
		return nil
	}
	w.outstanding++
	e.tr.(RemoteMemory).RMAGet(p, dst, id, off, buf, e.rmaDone(w))
	return nil
}

// RMAAccumulate combines data into dst's window id at off with op.
func (e *Engine) RMAAccumulate(p *sim.Proc, dst, id, off int, data []byte, op RMAOp) error {
	w, err := e.rmaStart(p, dst, id, "rma.acc")
	if err != nil {
		return err
	}
	if !op.valid(len(data)) {
		return Errorf(ErrInternal, "%d-byte accumulate payload not a multiple of the %s element size", len(data), op)
	}
	if dst == e.rank {
		w.ApplyAccumulate(off, data, op)
		e.acct.Charge(p, CostCopy, e.costs.CopyBase+sim.Duration(len(data))*e.costs.CopyPerByte)
		return nil
	}
	w.outstanding++
	e.tr.(RemoteMemory).RMAAccumulate(p, dst, id, off, data, op, e.rmaDone(w))
	return nil
}

// rmaStart is the common origin-side prologue: fatal check, window and
// capability lookup, bookkeeping charge.
func (e *Engine) rmaStart(p *sim.Proc, dst, id int, counter string) (*WinState, error) {
	if e.fatal != nil {
		return nil, e.fatal
	}
	if _, ok := e.tr.(RemoteMemory); !ok {
		return nil, Errorf(ErrInternal, "transport has no remote-memory capability")
	}
	if dst < 0 || dst >= e.size {
		return nil, Errorf(ErrInternal, "one-sided op to invalid rank %d (size %d)", dst, e.size)
	}
	if err := e.deadErr(dst); err != nil {
		return nil, err
	}
	w, err := e.winFor(id)
	if err != nil {
		return nil, err
	}
	e.acct.Charge(p, CostOverhead, e.costs.SendOverhead)
	e.acct.Incr(counter, 1)
	return w, nil
}

// WinFence drains this rank's outstanding one-sided operations on window
// id, making progress while waiting (incoming operations and their acks
// are processed inside Progress, exactly like two-sided completion). A
// dead link completes the fence with the typed link error rather than
// parking forever. The mpi layer follows the drain with a barrier to
// close the epoch collectively.
func (e *Engine) WinFence(p *sim.Proc, id int) error {
	w, err := e.winFor(id)
	if err != nil {
		return err
	}
	e.acct.Incr("rma.fence", 1)
	for w.outstanding > 0 {
		e.Progress(p)
		if w.outstanding == 0 {
			break
		}
		if e.fatal != nil {
			return e.fatal
		}
		e.cond.Wait(p)
	}
	if e.fatal != nil {
		return e.fatal
	}
	return nil
}

// WinLock acquires a passive-target lock on dst's window id (excl for
// MPI_LOCK_EXCLUSIVE, else shared). The request travels as a control
// packet; the target's lock manager grants in FIFO order — under the poll
// model the grant arrives once the target enters any MPI call, the same
// progress trade as two-sided traffic.
func (e *Engine) WinLock(p *sim.Proc, dst, id int, excl bool) error {
	w, err := e.rmaStart(p, dst, id, "rma.lock")
	if err != nil {
		return err
	}
	if dst == e.rank {
		if w.grantable(excl) {
			w.acquire(e.rank, excl)
			w.granted[e.rank] = true
			return nil
		}
		w.lockQ = append(w.lockQ, lockWaiter{origin: e.rank, excl: excl})
	} else {
		count := 0
		if excl {
			count = 1
		}
		e.tr.Control(p, dst, PktRMALock, Envelope{Source: e.rank, Dest: dst, Tag: id, Count: count})
	}
	for !w.granted[dst] {
		e.Progress(p)
		if w.granted[dst] {
			break
		}
		if e.fatal != nil {
			return e.fatal
		}
		// The grant can never arrive from a dead target; fail instead of
		// parking forever.
		if err := e.deadErr(dst); err != nil {
			return err
		}
		e.cond.Wait(p)
	}
	return nil
}

// WinUnlock completes all outstanding operations on window id (MPI's
// unlock guarantee covers remote completion) and releases the lock held
// on dst.
func (e *Engine) WinUnlock(p *sim.Proc, dst, id int) error {
	w, err := e.winFor(id)
	if err != nil {
		return err
	}
	if !w.granted[dst] {
		return Errorf(ErrInternal, "unlock of window %d at rank %d without holding its lock", id, dst)
	}
	// Drain every outstanding op: coarser than per-target tracking but
	// correct — remote completion of the ops issued under this lock is
	// what MPI_Win_unlock promises.
	if err := e.WinFence(p, id); err != nil {
		return err
	}
	delete(w.granted, dst)
	if dst == e.rank {
		e.winRelease(p, w, e.rank)
		return nil
	}
	e.tr.Control(p, dst, PktRMAUnlock, Envelope{Source: e.rank, Dest: dst, Tag: id})
	return nil
}

// winLockMsg handles an arriving PktRMALock at the target.
func (e *Engine) winLockMsg(p *sim.Proc, env Envelope) {
	w := e.wins[env.Tag]
	if w == nil {
		e.Errors = append(e.Errors, Errorf(ErrInternal, "lock request from rank %d for unknown window %d", env.Source, env.Tag))
		return
	}
	excl := env.Count == 1
	if w.grantable(excl) {
		w.acquire(env.Source, excl)
		e.winGrant(p, w, env.Source)
		return
	}
	w.lockQ = append(w.lockQ, lockWaiter{origin: env.Source, excl: excl})
}

// winUnlockMsg handles an arriving PktRMAUnlock at the target.
func (e *Engine) winUnlockMsg(p *sim.Proc, env Envelope) {
	w := e.wins[env.Tag]
	if w == nil {
		return
	}
	e.winRelease(p, w, env.Source)
}

// winRelease drops origin from the holder set and grants queued waiters
// that became compatible, in FIFO order.
func (e *Engine) winRelease(p *sim.Proc, w *WinState, origin int) {
	delete(w.lockHolders, origin)
	for len(w.lockQ) > 0 {
		next := w.lockQ[0]
		if len(w.lockHolders) > 0 && (next.excl || w.lockExcl) {
			break
		}
		w.lockQ = w.lockQ[1:]
		w.acquire(next.origin, next.excl)
		e.winGrant(p, w, next.origin)
	}
}

// winGrant notifies origin that it now holds w's lock. With a nil proc
// (event context — a peer death released the lock) the remote grant packet
// is deferred to the next Progress call, which has a proc to charge.
func (e *Engine) winGrant(p *sim.Proc, w *WinState, origin int) {
	if origin == e.rank {
		w.granted[e.rank] = true
		e.cond.Broadcast()
		return
	}
	if p == nil {
		e.defGrants = append(e.defGrants, deferredGrant{win: w.ID, origin: origin})
		e.cond.Broadcast()
		return
	}
	e.tr.Control(p, origin, PktRMAGrant, Envelope{Source: e.rank, Dest: origin, Tag: w.ID})
}

// winGrantMsg handles an arriving PktRMAGrant at the origin.
func (e *Engine) winGrantMsg(env Envelope) {
	w := e.wins[env.Tag]
	if w == nil {
		return
	}
	w.granted[env.Source] = true
	e.cond.Broadcast()
}

// ClaimDirect atomically claims a posted receive for direct payload
// placement (the RDMA-write rendezvous): if req is still posted and
// unmatched, it is removed from the matcher and marked matched, and the
// transport may land the payload straight into req.Buf. Returns false if
// the receive already matched, completed, or was cancelled — the caller
// must then fall back to re-injecting the payload through the matcher in
// its arrival-order position.
func (e *Engine) ClaimDirect(req *Request) bool {
	if req.done || req.cancelled || req.matched {
		return false
	}
	if !e.match.CancelRecv(req) {
		return false
	}
	req.matched = true
	req.matchedSrc = req.Env.Source // RTR requires a fully specific pattern
	return true
}
