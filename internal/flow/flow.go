// Package flow is the shared flow-control layer beneath every transport:
// the machinery the paper's two ports (Meiko envelope slots, cluster byte
// credits) had in common but previously implemented twice.
//
// It provides three pieces:
//
//   - Queue: an issue-order send queue with per-peer capacity accounting.
//     A message that cannot transmit immediately — its destination's
//     capacity (envelope slots or credit bytes) is exhausted, or an earlier
//     message to the same destination is already queued — waits in FIFO
//     order behind its predecessors, preserving MPI's non-overtaking rule
//     across mixed eager and rendezvous traffic.
//   - Owed: receiver-side tracking of freed reservation owed back to each
//     sender, piggybacked on outgoing headers or flushed explicitly when
//     traffic is one-sided.
//   - The 25-byte wire header codec (wire.go), shared by the TCP, RUDP and
//     U-Net cluster transports.
//
// The layer is capacity-unit agnostic: the Meiko charges one unit per
// envelope against a slot budget, the cluster charges header+payload bytes
// against a credit reservation, and a rendezvous envelope on the cluster
// charges nothing (only its later DMA-sized payload is flow controlled by
// the CTS handshake). A CostFunc expresses the difference.
package flow

import (
	"repro/internal/core"
)

// CostFunc reports the capacity units a queued message consumes at its
// destination: 1 envelope slot on the Meiko, header+payload credit bytes
// for a cluster eager message, 0 for a cluster rendezvous envelope.
type CostFunc func(req *core.Request) int

// Queue is the issue-order send queue with per-peer capacity accounting.
// It decides *when* a message may transmit; the owning transport decides
// *how* (transaction, DMA, socket write). Not safe for concurrent use: the
// simulation's single-token scheduler serializes all callers.
type Queue struct {
	cost  CostFunc
	limit int // Grant clamp (envelope slots); 0 = unbounded (byte credits)
	avail []int
	pend  [][]*core.Request
	acct  *core.Acct
}

// NewQueue returns a queue for peers destinations, each starting with
// initial capacity units. limit, when non-zero, caps the capacity a Grant
// may restore (the Meiko's fixed slot count); byte-credit schemes pass 0.
// The optional acct receives the uniform flow counters ("flow-queued",
// "flow-granted") every backend books through this layer.
func NewQueue(peers, initial, limit int, cost CostFunc, acct *core.Acct) *Queue {
	q := &Queue{
		cost:  cost,
		limit: limit,
		avail: make([]int, peers),
		pend:  make([][]*core.Request, peers),
		acct:  acct,
	}
	for i := range q.avail {
		q.avail[i] = initial
	}
	return q
}

// Offer submits req for transmission toward req.Env.Dest. It reports true
// when the caller must transmit the message now — capacity has been
// charged. Otherwise the message is queued, strictly behind every earlier
// offer to the same destination (including rendezvous envelopes), and will
// be handed to a Grant callback once capacity returns.
func (q *Queue) Offer(req *core.Request) bool {
	dst := req.Env.Dest
	if len(q.pend[dst]) > 0 {
		q.pend[dst] = append(q.pend[dst], req)
		q.acct.Incr("flow-queued", 1)
		return false
	}
	need := q.cost(req)
	if q.avail[dst] < need {
		q.pend[dst] = append(q.pend[dst], req)
		q.acct.Incr("flow-queued", 1)
		return false
	}
	q.avail[dst] -= need
	return true
}

// Grant restores n capacity units toward dst and drains the destination's
// queue in issue order, invoking ship for every message whose capacity now
// clears (capacity already charged). Draining stops at the first message
// that still does not fit, keeping the non-overtaking order intact.
func (q *Queue) Grant(dst, n int, ship func(*core.Request)) {
	q.avail[dst] += n
	if q.limit > 0 && q.avail[dst] > q.limit {
		q.avail[dst] = q.limit
	}
	for len(q.pend[dst]) > 0 {
		req := q.pend[dst][0]
		need := q.cost(req)
		if q.avail[dst] < need {
			return
		}
		q.avail[dst] -= need
		q.pend[dst] = q.pend[dst][1:]
		q.acct.Incr("flow-granted", 1)
		ship(req)
	}
}

// DropDst fences a dead destination: every message queued toward dst is
// removed (in issue order, handed to the optional drop callback so the
// owner can fail it) and the destination's capacity is restored to full so
// nothing ever queues behind a peer that can no longer grant credit back.
func (q *Queue) DropDst(dst, capacity int, drop func(*core.Request)) {
	for _, req := range q.pend[dst] {
		if drop != nil {
			drop(req)
		}
	}
	q.pend[dst] = nil
	q.avail[dst] = capacity
	if q.limit > 0 && q.avail[dst] > q.limit {
		q.avail[dst] = q.limit
	}
}

// Available reports the capacity units currently free toward dst.
func (q *Queue) Available(dst int) int { return q.avail[dst] }

// QueuedLen reports how many messages wait on capacity toward dst.
func (q *Queue) QueuedLen(dst int) int { return len(q.pend[dst]) }

// Owed tracks, at the receiver, freed reservation owed back to each
// sender. Returns normally piggyback on outgoing protocol headers (Take);
// when traffic is one-sided the balance crosses flushAt and the transport
// must send an explicit credit message — keeping the pair deadlock-free.
type Owed struct {
	owed    []int
	flushAt int // explicit-return threshold; 0 = piggyback only
}

// NewOwed returns an Owed ledger for peers senders with the given
// explicit-flush threshold.
func NewOwed(peers, flushAt int) *Owed {
	return &Owed{owed: make([]int, peers), flushAt: flushAt}
}

// Add books n freed units owed to src and reports whether the balance has
// reached the explicit-flush threshold.
func (o *Owed) Add(src, n int) bool {
	o.owed[src] += n
	return o.flushAt > 0 && o.owed[src] >= o.flushAt
}

// Take consumes the balance owed to src, for piggybacking on an outgoing
// header (explicit credit messages ride the same path: their header's
// credit field carries the flushed balance).
func (o *Owed) Take(src int) int {
	n := o.owed[src]
	o.owed[src] = 0
	return n
}

// Balance reports the units currently owed to src without consuming them.
func (o *Owed) Balance(src int) int { return o.owed[src] }
