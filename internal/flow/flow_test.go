package flow

import (
	"testing"

	"repro/internal/core"
)

func req(dst, count int) *core.Request {
	return core.NewRequest(false, core.Envelope{Dest: dst, Count: count}, nil)
}

// byteCost mimics the cluster: header+payload bytes for eager traffic,
// nothing for a rendezvous envelope (count above the 100-byte threshold).
func byteCost(r *core.Request) int {
	if r.Env.Count > 100 {
		return 0
	}
	return HeaderBytes + r.Env.Count
}

func TestQueueImmediateWhenCapacityFree(t *testing.T) {
	q := NewQueue(2, 1000, 0, byteCost, nil)
	if !q.Offer(req(1, 50)) {
		t.Fatal("offer with free capacity must transmit immediately")
	}
	if got := q.Available(1); got != 1000-HeaderBytes-50 {
		t.Fatalf("available = %d", got)
	}
}

func TestQueueBlocksAndDrainsInIssueOrder(t *testing.T) {
	q := NewQueue(2, 60, 0, byteCost, nil)
	a, b, c := req(1, 50), req(1, 200), req(1, 10)
	if q.Offer(a) {
		t.Fatal("a exceeds capacity, must queue")
	}
	// b is rendezvous (cost 0) but must not overtake the queued a.
	if q.Offer(b) {
		t.Fatal("b must queue behind a")
	}
	if q.Offer(c) {
		t.Fatal("c must queue behind b")
	}
	var shipped []*core.Request
	q.Grant(1, 20, func(r *core.Request) { shipped = append(shipped, r) })
	// 80 units: a (75) clears, then b (0), then c needs 35 > 5 left.
	if len(shipped) != 2 || shipped[0] != a || shipped[1] != b {
		t.Fatalf("shipped %d messages, want a then b", len(shipped))
	}
	q.Grant(1, 100, func(r *core.Request) { shipped = append(shipped, r) })
	if len(shipped) != 3 || shipped[2] != c {
		t.Fatal("c must ship after more capacity returns")
	}
	if q.QueuedLen(1) != 0 {
		t.Fatal("queue must be empty")
	}
}

func TestQueueSlotSemantics(t *testing.T) {
	// One envelope slot per pair, unit cost: the Meiko regime. A freed slot
	// is immediately reused by the queued successor.
	slot := func(*core.Request) int { return 1 }
	q := NewQueue(2, 1, 1, slot, nil)
	if !q.Offer(req(1, 5)) {
		t.Fatal("first envelope owns the slot")
	}
	b := req(1, 6)
	if q.Offer(b) {
		t.Fatal("second envelope must wait for the slot")
	}
	var shipped []*core.Request
	q.Grant(1, 1, func(r *core.Request) { shipped = append(shipped, r) })
	if len(shipped) != 1 || shipped[0] != b {
		t.Fatal("freed slot must be reused by the queued envelope")
	}
	if q.Available(1) != 0 {
		t.Fatalf("slot must be busy again, avail = %d", q.Available(1))
	}
	// Draining with nothing queued frees the slot, clamped at the limit.
	q.Grant(1, 1, func(*core.Request) { t.Fatal("nothing queued") })
	q.Grant(1, 1, func(*core.Request) { t.Fatal("nothing queued") })
	if q.Available(1) != 1 {
		t.Fatalf("avail = %d, want clamp at 1", q.Available(1))
	}
}

func TestQueuePerDestinationIsolation(t *testing.T) {
	q := NewQueue(3, 30, 0, byteCost, nil)
	if q.Offer(req(1, 50)) {
		t.Fatal("dst 1 must queue")
	}
	if !q.Offer(req(2, 1)) {
		t.Fatal("dst 2 has free capacity; queues are per destination")
	}
}

func TestQueueAcctCounters(t *testing.T) {
	a := core.NewAcct()
	q := NewQueue(2, 0, 0, byteCost, a)
	q.Offer(req(1, 1))
	q.Grant(1, 1000, func(*core.Request) {})
	if a.Count["flow-queued"] != 1 || a.Count["flow-granted"] != 1 {
		t.Fatalf("counters = %v", a.Count)
	}
}

func TestOwedPiggybackAndFlush(t *testing.T) {
	o := NewOwed(2, 100)
	if o.Add(1, 40) {
		t.Fatal("below threshold")
	}
	if got := o.Take(1); got != 40 {
		t.Fatalf("take = %d", got)
	}
	if o.Balance(1) != 0 {
		t.Fatal("take must consume the balance")
	}
	o.Add(1, 60)
	if !o.Add(1, 40) {
		t.Fatal("threshold reached, must flush")
	}
	if got := o.Take(1); got != 100 {
		t.Fatalf("take = %d", got)
	}
}

func TestOwedNoFlushWhenDisabled(t *testing.T) {
	o := NewOwed(1, 0)
	if o.Add(0, 1<<20) {
		t.Fatal("flushAt 0 means piggyback only")
	}
}
