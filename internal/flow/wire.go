package flow

import (
	"encoding/binary"

	"repro/internal/core"
)

// Wire header: exactly the paper's 25 bytes of protocol information,
// shared by every socket-class transport (TCP, reliable UDP, U-Net).
//
//	byte  0      message type (packet kind in the low nibble, send mode in
//	             the high nibble)
//	bytes 1-4    returned credit (freed receiver reservation, piggybacked)
//	bytes 5-24   envelope: source(2) context(2) tag(4) count(4) id(4) aux(4)
//
// id is the sender request for RTS/CTS/acks; aux carries the receiver-side
// rendezvous handle (CTS/Data) or, for chunked UDP payloads, the chunk
// offset rides in the tag field (Data packets need no user tag).
const HeaderBytes = core.HeaderWireBytes // 25

// The kind rides in a 4-bit field: one more kind past 15 would bleed into
// the mode nibble and corrupt every frame. The one-sided protocol grew the
// space (RTR adverts, lock/unlock/grant control), so guard the bound at
// compile time — this declaration fails to build if the highest kind ever
// exceeds the nibble.
var _ [15 - int(core.PktRMAGrant)]struct{}

// EncodeHeader serializes one protocol header.
func EncodeHeader(kind core.PacketKind, credit int, env core.Envelope, aux uint32) [HeaderBytes]byte {
	var h [HeaderBytes]byte
	EncodeHeaderInto(h[:], kind, credit, env, aux)
	return h
}

// EncodeHeaderInto serializes one protocol header into dst (which must
// hold at least HeaderBytes). It is EncodeHeader without the array copy,
// for transports assembling frames in pooled scratch buffers.
func EncodeHeaderInto(dst []byte, kind core.PacketKind, credit int, env core.Envelope, aux uint32) {
	dst[0] = byte(kind)&0x0F | byte(env.Mode)<<4
	binary.BigEndian.PutUint32(dst[1:5], uint32(credit))
	binary.BigEndian.PutUint16(dst[5:7], uint16(env.Source))
	binary.BigEndian.PutUint16(dst[7:9], uint16(env.Context))
	binary.BigEndian.PutUint32(dst[9:13], uint32(int32(env.Tag)))
	binary.BigEndian.PutUint32(dst[13:17], uint32(env.Count))
	binary.BigEndian.PutUint32(dst[17:21], uint32(env.SendID))
	binary.BigEndian.PutUint32(dst[21:25], aux)
}

// DecodeHeader parses a protocol header produced by EncodeHeader.
func DecodeHeader(h []byte) (kind core.PacketKind, credit int, env core.Envelope, aux uint32) {
	kind = core.PacketKind(h[0] & 0x0F)
	env.Mode = core.Mode(h[0] >> 4)
	credit = int(binary.BigEndian.Uint32(h[1:5]))
	env.Source = int(binary.BigEndian.Uint16(h[5:7]))
	env.Context = int(binary.BigEndian.Uint16(h[7:9]))
	env.Tag = int(int32(binary.BigEndian.Uint32(h[9:13])))
	env.Count = int(binary.BigEndian.Uint32(h[13:17]))
	env.SendID = int64(binary.BigEndian.Uint32(h[17:21]))
	aux = binary.BigEndian.Uint32(h[21:25])
	return kind, credit, env, aux
}
