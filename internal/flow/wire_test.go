package flow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// Property: header encode/decode is the identity on every field the wire
// carries (within field widths).
func TestHeaderRoundTripProperty(t *testing.T) {
	prop := func(kind uint8, credit uint32, src, ctx uint16, tag int32, count, id, aux uint32, mode uint8) bool {
		env := core.Envelope{
			Source:  int(src),
			Context: int(ctx),
			Tag:     int(tag),
			Count:   int(count),
			SendID:  int64(id),
			Mode:    core.Mode(mode % 4),
		}
		k := core.PacketKind(kind % 6)
		h := EncodeHeader(k, int(credit), env, aux)
		if len(h) != 25 {
			return false
		}
		gk, gc, genv, gaux := DecodeHeader(h[:])
		return gk == k && gc == int(credit) && gaux == aux &&
			genv.Source == env.Source && genv.Context == env.Context &&
			genv.Tag == env.Tag && genv.Count == env.Count &&
			genv.SendID == env.SendID && genv.Mode == env.Mode
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderIs25Bytes(t *testing.T) {
	if HeaderBytes != 25 {
		t.Fatalf("header is %d bytes; the paper specifies 25", HeaderBytes)
	}
}

func TestHeaderNegativeTag(t *testing.T) {
	// Chunk offsets travel in the tag field and collective tags are small
	// positives, but the codec must survive negative int32 values.
	env := core.Envelope{Tag: -5}
	h := EncodeHeader(core.PktData, 0, env, 0)
	_, _, got, _ := DecodeHeader(h[:])
	if got.Tag != -5 {
		t.Fatalf("tag = %d", got.Tag)
	}
}
