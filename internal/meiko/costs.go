// Package meiko models the Meiko CS/2: per-node 40 MHz SPARC processors
// paired with 10 MHz Elan communication co-processors, a fat-tree network
// with hardware broadcast, secure user-level remote transactions, and a DMA
// engine — the substrate of the paper's sections 4 and the MPICH/tport
// baseline. Costs are calibrated to the paper's anchors (52 µs tport
// round trip, 39 MB/s DMA bandwidth); see DESIGN.md §6.
package meiko

import (
	"time"

	"repro/internal/sim"
)

// Costs parameterizes the CS/2 model. All values are virtual time.
type Costs struct {
	// SPARC-side costs (charged to the calling process).
	TxnIssue    sim.Duration // issue a remote transaction from user space
	DMAIssue    sim.Duration // hand a DMA descriptor to the Elan
	ElanSync    sim.Duration // observe an Elan-set event from the SPARC
	CopyPerByte sim.Duration // SPARC memcpy bandwidth (bounce-buffer copies)
	CopyBase    sim.Duration

	// Elan-side occupancy (the 10 MHz co-processor is a serial resource).
	ElanTxnHandle   sim.Duration // process an incoming transaction
	ElanDMASetup    sim.Duration // start a DMA transfer
	ElanDMARecv     sim.Duration // land an incoming DMA
	ElanTportSend   sim.Duration // process a tport send descriptor
	ElanTportMatch  sim.Duration // match an arriving tport message
	ElanCopyPerByte sim.Duration // Elan-mediated buffer copy (tport unexpected)

	// Network.
	WireLatency  sim.Duration // switch traversal + propagation per packet
	TxnPerByte   sim.Duration // transaction payload serialization
	DMAPerByte   sim.Duration // DMA serialization (39 MB/s peak)
	BcastPerNode sim.Duration // hardware broadcast per-destination skew

	// tport widget SPARC costs.
	TportIssue sim.Duration // SPARC cost to issue a tport send/recv
}

// DefaultCosts reproduces the paper's measured anchors:
//
//	tport 1-byte round trip ≈ 52 µs   (Figure 2)
//	DMA peak bandwidth      ≈ 39 MB/s (Figure 3)
//	eager/rendezvous crossover at ≈ 180 bytes (Figure 1)
func DefaultCosts() Costs {
	return Costs{
		TxnIssue:    5 * time.Microsecond,
		DMAIssue:    4 * time.Microsecond,
		ElanSync:    4 * time.Microsecond,
		CopyPerByte: 100 * time.Nanosecond, // ~10 MB/s SPARC memcpy
		CopyBase:    1 * time.Microsecond,

		ElanTxnHandle:   4 * time.Microsecond,
		ElanDMASetup:    5 * time.Microsecond,
		ElanDMARecv:     2 * time.Microsecond,
		ElanTportSend:   5 * time.Microsecond,
		ElanTportMatch:  5 * time.Microsecond,
		ElanCopyPerByte: 120 * time.Nanosecond,

		WireLatency:  3 * time.Microsecond,
		TxnPerByte:   40 * time.Nanosecond, // transactions move data slower than DMA
		DMAPerByte:   25 * time.Nanosecond, // 40 MB/s wire; ~39 MB/s delivered
		BcastPerNode: 300 * time.Nanosecond,

		TportIssue: 4 * time.Microsecond,
	}
}
