package meiko

import (
	"fmt"

	"repro/internal/sim"
)

// The CS/2's data network is a 4-ary fat tree of Elite switches. The
// default Machine model charges a flat WireLatency per packet — adequate
// for the paper's two-node microbenchmarks — but application traffic at
// scale contends inside the tree. FatTree is an optional topology model.
//
// A fat tree has full bisection bandwidth, so the ascending half of a
// route never contends (there is an up-link per node at every stage), and
// each stage-s subtree is entered by radix^s parallel down-links.
// Descending is where congestion lives: flows converging into the same
// subtree lane serialize, with the leaf group's single link the classic
// incast bottleneck. The model charges hop latency per stage climbed, then
// reserves the down-link lane (selected by source, standing in for the
// deterministic source routing of the Elite switches) at each descent
// stage.
type FatTree struct {
	m      *Machine
	radix  int
	stages int
	stage  *sim.Stage      // lane-routable home for the shared switch state
	down   [][][]*sim.FIFO // down[stage][subtree][lane]
	// HopLatency is the per-switch traversal latency.
	HopLatency sim.Duration
}

// NewFatTree attaches a radix-4 fat tree sized to cover all nodes. On a
// sharded machine the tree's switch state homes on lane 0 as a sim.Stage:
// every delivery detours there with its source stamp, reserves the
// wormhole route backdated to the stamp, and exits to the destination's
// lane — so the shard lookahead must not exceed HopLatency (the minimum
// stamp-to-exit span is 2 hop latencies, the required 2x lookahead bound).
func (m *Machine) NewFatTree() *FatTree {
	const radix = 4
	stages := 1
	cover := radix
	for cover < len(m.Nodes) {
		cover *= radix
		stages++
	}
	t := &FatTree{m: m, radix: radix, stages: stages, HopLatency: m.Costs.WireLatency / 2}
	if t.HopLatency <= 0 {
		t.HopLatency = 1
	}
	if sh := m.S.Shard(); sh != nil && t.HopLatency < sh.Lookahead() {
		panic(fmt.Sprintf("meiko: fat-tree hop latency %v below shard lookahead %v", t.HopLatency, sh.Lookahead()))
	}
	t.stage = sim.NewStage(m.S)
	t.down = make([][][]*sim.FIFO, stages)
	for s := 0; s < stages; s++ {
		nsub := (len(m.Nodes) + pow(radix, s+1) - 1) / pow(radix, s+1)
		lanes := pow(radix, s)
		t.down[s] = make([][]*sim.FIFO, nsub)
		for g := 0; g < nsub; g++ {
			t.down[s][g] = make([]*sim.FIFO, lanes)
			for l := 0; l < lanes; l++ {
				t.down[s][g][l] = sim.NewFIFO(m.S, fmt.Sprintf("ft-down-s%d-g%d-l%d", s, g, l))
			}
		}
	}
	return t
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// climb reports the stage count to the nearest common ancestor switch.
func (t *FatTree) climb(src, dst int) int {
	for s := 0; s < t.stages; s++ {
		span := pow(t.radix, s+1)
		if src/span == dst/span {
			return s + 1
		}
	}
	return t.stages
}

// Deliver carries nbytes from src to dst through the tree at the given
// serialization rate, then runs fn. The Elite switches are
// wormhole-routed, so the whole descending path is reserved jointly for
// one serialization span: the transfer starts when every lane on the
// route is free and occupies them all together — the ascent contributes
// hop latency only (full bisection). Event-context safe; must be called
// from src's lane context on a sharded machine. fn runs on dst's lane.
func (t *FatTree) Deliver(src, dst, nbytes int, perByte sim.Duration, fn func()) {
	hops := t.climb(src, dst)
	d := sim.Duration(nbytes) * perByte
	t.stage.Request(t.m.Nodes[src].S, func(t0 sim.Time) {
		// Collect the route's down-link lanes.
		route := make([]*sim.FIFO, 0, hops)
		for stage := hops - 1; stage >= 0; stage-- {
			lanes := t.down[stage][dst/pow(t.radix, stage+1)]
			// Deterministic dispersive lane selection (Fibonacci hash of the
			// source), standing in for the Elite switches' source routing.
			route = append(route, lanes[int(uint32(src)*2654435761>>16)%len(lanes)])
		}
		start := t0
		for _, l := range route {
			if l.BusyUntil() > start {
				start = l.BusyUntil()
			}
		}
		end := start + sim.Time(d)
		for _, l := range route {
			l.ExtendBusy(end)
		}
		t.stage.Exit(t.m.Nodes[dst].Lane, end+sim.Time(sim.Duration(2*hops)*t.HopLatency), fn)
	})
}

// Stages reports the tree depth.
func (t *FatTree) Stages() int { return t.stages }
