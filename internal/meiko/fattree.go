package meiko

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// The CS/2's data network is a 4-ary fat tree of Elite switches. The
// default Machine model charges a flat WireLatency per packet — adequate
// for the paper's two-node microbenchmarks — but application traffic at
// scale contends inside the tree. FatTree is an optional topology model.
//
// A fat tree has full bisection bandwidth, so the ascending half of a
// route never contends (there is an up-link per node at every stage), and
// each stage-s subtree is entered by radix^s parallel down-links.
// Descending is where congestion lives: flows converging into the same
// subtree lane serialize, with the leaf group's single link the classic
// incast bottleneck. The model charges hop latency per stage climbed, then
// reserves the down-link lane (selected by source, standing in for the
// deterministic source routing of the Elite switches) at each descent
// stage.
type FatTree struct {
	m      *Machine
	radix  int
	stages int
	stage  *sim.Stage      // lane-routable home for the shared switch state
	down   [][][]*sim.FIFO // down[stage][subtree][lane]
	faults []TreeFault
	// HopLatency is the per-switch traversal latency.
	HopLatency sim.Duration
}

// TreeFault takes one switch plane out of service for a window of
// simulated time: every down-link with lane index Lane at stage Stage is
// unusable from From until Until. The fat tree's redundant upper stages
// make this survivable — at every stage above the leaves a destination
// subtree is entered by radix^stage parallel down-links, so traffic
// reroutes through a neighbouring plane at an extra hop of latency per
// detour (the adaptive source-routing cost of crossing to the next Elite
// switch). Stage 0 is deliberately not faultable: a leaf group hangs off a
// single link, so losing it is a node death, not degradation — model that
// with a kill schedule instead.
type TreeFault struct {
	Stage int          // faulted stage, >= 1 (upper stages have redundant planes)
	Lane  int          // down-link lane index within each subtree at that stage
	From  sim.Duration // window start
	Until sim.Duration // window end; 0 means for the rest of the run
}

// SetFaults installs the switch-fault schedule, validating it against the
// tree's geometry.
func (t *FatTree) SetFaults(faults []TreeFault) error {
	for _, f := range faults {
		if f.Stage < 1 || f.Stage >= t.stages {
			return fmt.Errorf("meiko: tree fault stage %d out of range [1,%d) (stage 0 leaf links have no redundant plane)", f.Stage, t.stages)
		}
		if f.Lane < 0 || f.Lane >= pow(t.radix, f.Stage) {
			return fmt.Errorf("meiko: tree fault lane %d out of range [0,%d) at stage %d", f.Lane, pow(t.radix, f.Stage), f.Stage)
		}
		if f.Until != 0 && f.Until <= f.From {
			return fmt.Errorf("meiko: tree fault window [%v,%v) is empty", f.From, f.Until)
		}
	}
	t.faults = faults
	return nil
}

// blockedAt reports whether the (stage, lane) plane is faulted at the
// instant the route is being reserved.
func (t *FatTree) blockedAt(stage, lane int, at sim.Time) bool {
	for _, f := range t.faults {
		if f.Stage == stage && f.Lane == lane &&
			sim.Time(f.From) <= at && (f.Until == 0 || at < sim.Time(f.Until)) {
			return true
		}
	}
	return false
}

// ParseTreeFaults parses a switch-fault schedule DSL: semicolon-separated
// entries of the form "STAGE:LANE@FROM-UNTIL", with UNTIL optional.
//
//	"1:0@5ms-20ms"        stage-1 plane 0 down between 5 ms and 20 ms
//	"1:0@5ms;2:3@0s-1ms"  two faults, the first permanent from 5 ms
func ParseTreeFaults(spec string) ([]TreeFault, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []TreeFault
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		plane, window, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("tree fault %q: want STAGE:LANE@FROM[-UNTIL]", entry)
		}
		stageStr, laneStr, ok := strings.Cut(plane, ":")
		if !ok {
			return nil, fmt.Errorf("tree fault %q: want STAGE:LANE before @", entry)
		}
		stage, err := strconv.Atoi(strings.TrimSpace(stageStr))
		if err != nil || stage < 1 {
			return nil, fmt.Errorf("tree fault %q: bad stage %q (must be >= 1)", entry, stageStr)
		}
		lane, err := strconv.Atoi(strings.TrimSpace(laneStr))
		if err != nil || lane < 0 {
			return nil, fmt.Errorf("tree fault %q: bad lane %q", entry, laneStr)
		}
		f := TreeFault{Stage: stage, Lane: lane}
		fromStr, untilStr, hasUntil := strings.Cut(window, "-")
		if f.From, err = time.ParseDuration(strings.TrimSpace(fromStr)); err != nil {
			return nil, fmt.Errorf("tree fault %q: bad start %q: %v", entry, fromStr, err)
		}
		if hasUntil {
			if f.Until, err = time.ParseDuration(strings.TrimSpace(untilStr)); err != nil {
				return nil, fmt.Errorf("tree fault %q: bad end %q: %v", entry, untilStr, err)
			}
			if f.Until <= f.From {
				return nil, fmt.Errorf("tree fault %q: window [%v,%v) is empty", entry, f.From, f.Until)
			}
		}
		out = append(out, f)
	}
	return out, nil
}

// NewFatTree attaches a radix-4 fat tree sized to cover all nodes. On a
// sharded machine the tree's switch state homes on lane 0 as a sim.Stage:
// every delivery detours there with its source stamp, reserves the
// wormhole route backdated to the stamp, and exits to the destination's
// lane — so the shard lookahead must not exceed HopLatency (the minimum
// stamp-to-exit span is 2 hop latencies, the required 2x lookahead bound).
func (m *Machine) NewFatTree() *FatTree {
	const radix = 4
	stages := 1
	cover := radix
	for cover < len(m.Nodes) {
		cover *= radix
		stages++
	}
	t := &FatTree{m: m, radix: radix, stages: stages, HopLatency: m.Costs.WireLatency / 2}
	if t.HopLatency <= 0 {
		t.HopLatency = 1
	}
	if sh := m.S.Shard(); sh != nil && t.HopLatency < sh.Lookahead() {
		panic(fmt.Sprintf("meiko: fat-tree hop latency %v below shard lookahead %v", t.HopLatency, sh.Lookahead()))
	}
	t.stage = sim.NewStage(m.S)
	t.down = make([][][]*sim.FIFO, stages)
	for s := 0; s < stages; s++ {
		nsub := (len(m.Nodes) + pow(radix, s+1) - 1) / pow(radix, s+1)
		lanes := pow(radix, s)
		t.down[s] = make([][]*sim.FIFO, nsub)
		for g := 0; g < nsub; g++ {
			t.down[s][g] = make([]*sim.FIFO, lanes)
			for l := 0; l < lanes; l++ {
				t.down[s][g][l] = sim.NewFIFO(m.S, fmt.Sprintf("ft-down-s%d-g%d-l%d", s, g, l))
			}
		}
	}
	return t
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// climb reports the stage count to the nearest common ancestor switch.
func (t *FatTree) climb(src, dst int) int {
	for s := 0; s < t.stages; s++ {
		span := pow(t.radix, s+1)
		if src/span == dst/span {
			return s + 1
		}
	}
	return t.stages
}

// Deliver carries nbytes from src to dst through the tree at the given
// serialization rate, then runs fn. The Elite switches are
// wormhole-routed, so the whole descending path is reserved jointly for
// one serialization span: the transfer starts when every lane on the
// route is free and occupies them all together — the ascent contributes
// hop latency only (full bisection). Event-context safe; must be called
// from src's lane context on a sharded machine. fn runs on dst's lane.
func (t *FatTree) Deliver(src, dst, nbytes int, perByte sim.Duration, fn func()) {
	hops := t.climb(src, dst)
	d := sim.Duration(nbytes) * perByte
	t.stage.Request(t.m.Nodes[src].S, func(t0 sim.Time) {
		// Collect the route's down-link lanes, detouring around faulted
		// planes: the primary lane is the deterministic dispersive pick
		// (Fibonacci hash of the source, standing in for the Elite
		// switches' source routing); when its plane is down the route
		// crosses to the next plane at one extra hop of latency per
		// detour. If every plane at a stage is down the primary is used
		// anyway — degraded, never dead.
		route := make([]*sim.FIFO, 0, hops)
		detours := 0
		for stage := hops - 1; stage >= 0; stage-- {
			lanes := t.down[stage][dst/pow(t.radix, stage+1)]
			h := int(uint32(src)*2654435761>>16) % len(lanes)
			pick := h
			if t.blockedAt(stage, pick, t0) {
				for i := 1; i < len(lanes); i++ {
					alt := (h + i) % len(lanes)
					detours++
					if !t.blockedAt(stage, alt, t0) {
						pick = alt
						break
					}
				}
			}
			route = append(route, lanes[pick])
		}
		start := t0
		for _, l := range route {
			if l.BusyUntil() > start {
				start = l.BusyUntil()
			}
		}
		end := start + sim.Time(d)
		for _, l := range route {
			l.ExtendBusy(end)
		}
		t.stage.Exit(t.m.Nodes[dst].Lane, end+sim.Time(sim.Duration(2*hops+detours)*t.HopLatency), fn)
	})
}

// Stages reports the tree depth.
func (t *FatTree) Stages() int { return t.stages }
