package meiko

import (
	"testing"

	"repro/internal/sim"
)

func TestFatTreeStages(t *testing.T) {
	cases := []struct{ nodes, stages int }{
		{2, 1}, {4, 1}, {5, 2}, {16, 2}, {17, 3}, {64, 3},
	}
	for _, c := range cases {
		s := sim.NewScheduler(1)
		m := NewMachine(s, c.nodes, DefaultCosts())
		ft := m.NewFatTree()
		if ft.Stages() != c.stages {
			t.Errorf("%d nodes: %d stages, want %d", c.nodes, ft.Stages(), c.stages)
		}
	}
}

func TestFatTreeClimb(t *testing.T) {
	s := sim.NewScheduler(1)
	m := NewMachine(s, 64, DefaultCosts())
	ft := m.NewFatTree()
	cases := []struct{ a, b, hops int }{
		{0, 1, 1},  // same leaf group
		{0, 4, 2},  // adjacent group
		{0, 15, 2}, // same 16-subtree
		{0, 16, 3}, // crosses the top
		{63, 62, 1},
	}
	for _, c := range cases {
		if got := ft.climb(c.a, c.b); got != c.hops {
			t.Errorf("climb(%d,%d) = %d, want %d", c.a, c.b, got, c.hops)
		}
	}
}

// Incast traffic to one destination region serializes on the shared
// down-links; the same traffic to distinct subtrees does not.
func TestFatTreeIncastContention(t *testing.T) {
	run := func(dsts []int) sim.Time {
		s := sim.NewScheduler(1)
		s.MaxEvents = 1_000_000
		m := NewMachine(s, 64, DefaultCosts())
		m.Tree = m.NewFatTree()
		var last sim.Time
		s.At(0, func() {
			for i, d := range dsts {
				src := 32 + i*4 // distinct source subtrees
				m.Nodes[src].DMA(d, 100_000, nil, func() {
					if s.Now() > last {
						last = s.Now()
					}
				})
			}
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	incast := run([]int{0, 0, 0, 0})  // hammering node 0
	spread := run([]int{0, 4, 8, 12}) // distinct leaf groups (same 16-subtree)
	wide := run([]int{0, 16, 4, 20})  // split across top-level subtrees
	if incast < spread || spread < wide {
		t.Fatalf("contention ordering wrong: incast %v, spread %v, wide %v", incast, spread, wide)
	}
	// Store-and-forward staging means even uncontended flows pay per-stage
	// serialization; incast must still clearly exceed spread traffic.
	if float64(incast) < 1.5*float64(wide) {
		t.Fatalf("incast (%v) should serialize well beyond wide traffic (%v)", incast, wide)
	}
}

// Per-pair FIFO order survives tree routing (deterministic single path).
func TestFatTreeOrderPreserved(t *testing.T) {
	s := sim.NewScheduler(1)
	s.MaxEvents = 1_000_000
	m := NewMachine(s, 16, DefaultCosts())
	m.Tree = m.NewFatTree()
	var order []int
	s.At(0, func() {
		for i := 0; i < 6; i++ {
			i := i
			m.Nodes[3].Txn(12, 50, false, func() { order = append(order, i) })
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

// The flat and tree models agree for an uncontended transfer, modulo the
// staged serialization and hop latencies.
func TestFatTreeUncontendedClose(t *testing.T) {
	measure := func(tree bool) sim.Time {
		s := sim.NewScheduler(1)
		m := NewMachine(s, 16, DefaultCosts())
		if tree {
			m.Tree = m.NewFatTree()
		}
		var done sim.Time
		s.At(0, func() {
			m.Nodes[0].DMA(15, 10_000, nil, func() { done = s.Now() })
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	flat, tree := measure(false), measure(true)
	if tree < flat {
		t.Fatalf("tree (%v) cheaper than flat (%v)?", tree, flat)
	}
	if tree > 4*flat {
		t.Fatalf("tree (%v) unreasonably above flat (%v) without contention", tree, flat)
	}
}

// MPI-level runs remain correct over the tree (used via platform flag).
func TestTportOverFatTree(t *testing.T) {
	s := sim.NewScheduler(1)
	s.MaxEvents = 10_000_000
	m := NewMachine(s, 16, DefaultCosts())
	m.Tree = m.NewFatTree()
	t0 := m.NewTport(m.Nodes[0])
	t9 := m.NewTport(m.Nodes[9])
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i)
	}
	got := make([]byte, 5000)
	s.Spawn("tx", func(p *sim.Proc) { t0.Send(p, 9, 1, data) })
	s.Spawn("rx", func(p *sim.Proc) { t9.Recv(p, 1, ^uint64(0), got) })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("corrupt at %d", i)
		}
	}
}
