package meiko

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestFatTreeStages(t *testing.T) {
	cases := []struct{ nodes, stages int }{
		{2, 1}, {4, 1}, {5, 2}, {16, 2}, {17, 3}, {64, 3},
	}
	for _, c := range cases {
		s := sim.NewScheduler(1)
		m := NewMachine(s, c.nodes, DefaultCosts())
		ft := m.NewFatTree()
		if ft.Stages() != c.stages {
			t.Errorf("%d nodes: %d stages, want %d", c.nodes, ft.Stages(), c.stages)
		}
	}
}

func TestFatTreeClimb(t *testing.T) {
	s := sim.NewScheduler(1)
	m := NewMachine(s, 64, DefaultCosts())
	ft := m.NewFatTree()
	cases := []struct{ a, b, hops int }{
		{0, 1, 1},  // same leaf group
		{0, 4, 2},  // adjacent group
		{0, 15, 2}, // same 16-subtree
		{0, 16, 3}, // crosses the top
		{63, 62, 1},
	}
	for _, c := range cases {
		if got := ft.climb(c.a, c.b); got != c.hops {
			t.Errorf("climb(%d,%d) = %d, want %d", c.a, c.b, got, c.hops)
		}
	}
}

// Incast traffic to one destination region serializes on the shared
// down-links; the same traffic to distinct subtrees does not.
func TestFatTreeIncastContention(t *testing.T) {
	run := func(dsts []int) sim.Time {
		s := sim.NewScheduler(1)
		s.MaxEvents = 1_000_000
		m := NewMachine(s, 64, DefaultCosts())
		m.Tree = m.NewFatTree()
		var last sim.Time
		s.At(0, func() {
			for i, d := range dsts {
				src := 32 + i*4 // distinct source subtrees
				m.Nodes[src].DMA(d, 100_000, nil, func() {
					if s.Now() > last {
						last = s.Now()
					}
				})
			}
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	incast := run([]int{0, 0, 0, 0})  // hammering node 0
	spread := run([]int{0, 4, 8, 12}) // distinct leaf groups (same 16-subtree)
	wide := run([]int{0, 16, 4, 20})  // split across top-level subtrees
	if incast < spread || spread < wide {
		t.Fatalf("contention ordering wrong: incast %v, spread %v, wide %v", incast, spread, wide)
	}
	// Store-and-forward staging means even uncontended flows pay per-stage
	// serialization; incast must still clearly exceed spread traffic.
	if float64(incast) < 1.5*float64(wide) {
		t.Fatalf("incast (%v) should serialize well beyond wide traffic (%v)", incast, wide)
	}
}

// Per-pair FIFO order survives tree routing (deterministic single path).
func TestFatTreeOrderPreserved(t *testing.T) {
	s := sim.NewScheduler(1)
	s.MaxEvents = 1_000_000
	m := NewMachine(s, 16, DefaultCosts())
	m.Tree = m.NewFatTree()
	var order []int
	s.At(0, func() {
		for i := 0; i < 6; i++ {
			i := i
			m.Nodes[3].Txn(12, 50, false, func() { order = append(order, i) })
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

// The flat and tree models agree for an uncontended transfer, modulo the
// staged serialization and hop latencies.
func TestFatTreeUncontendedClose(t *testing.T) {
	measure := func(tree bool) sim.Time {
		s := sim.NewScheduler(1)
		m := NewMachine(s, 16, DefaultCosts())
		if tree {
			m.Tree = m.NewFatTree()
		}
		var done sim.Time
		s.At(0, func() {
			m.Nodes[0].DMA(15, 10_000, nil, func() { done = s.Now() })
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	flat, tree := measure(false), measure(true)
	if tree < flat {
		t.Fatalf("tree (%v) cheaper than flat (%v)?", tree, flat)
	}
	if tree > 4*flat {
		t.Fatalf("tree (%v) unreasonably above flat (%v) without contention", tree, flat)
	}
}

// A faulted upper-stage plane degrades latency instead of killing the
// route: the transfer detours through a neighbouring plane during the
// outage window and the primary route comes back afterwards.
func TestFatTreeFaultDegradesAndRecovers(t *testing.T) {
	send := func(faults []TreeFault, at sim.Duration) sim.Time {
		s := sim.NewScheduler(1)
		m := NewMachine(s, 64, DefaultCosts())
		m.Tree = m.NewFatTree()
		if err := m.Tree.SetFaults(faults); err != nil {
			t.Fatal(err)
		}
		var done sim.Time
		s.At(sim.Time(at), func() {
			m.Nodes[0].DMA(20, 10_000, nil, func() { done = s.Now() })
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return done - sim.Time(at)
	}
	// Node 0 -> 20 crosses the top (3 hops); fault every plane node 0's
	// hash could pick at stages 1 and 2 during [0, 1ms) so the route must
	// detour whatever the lane hash lands on.
	var faults []TreeFault
	for stage := 1; stage <= 2; stage++ {
		for lane := 0; lane < pow(4, stage); lane++ {
			faults = append(faults, TreeFault{Stage: stage, Lane: lane, From: 0, Until: 999 * time.Microsecond})
		}
	}
	healthy := send(nil, 0)
	during := send(faults, 0)
	after := send(faults, time.Millisecond)
	if during <= healthy {
		t.Fatalf("faulted route (%v) not slower than healthy (%v)", during, healthy)
	}
	if after != healthy {
		t.Fatalf("post-window route %v, want healthy %v", after, healthy)
	}
	// Full-plane outage degrades, never drops: the delivery above completed.
}

// The detour is deterministic: identical schedules give bit-identical
// delivery times.
func TestFatTreeFaultDeterministic(t *testing.T) {
	run := func() []sim.Time {
		s := sim.NewScheduler(7)
		m := NewMachine(s, 64, DefaultCosts())
		m.Tree = m.NewFatTree()
		if err := m.Tree.SetFaults([]TreeFault{{Stage: 2, Lane: 5, From: 0, Until: 500 * time.Microsecond}}); err != nil {
			t.Fatal(err)
		}
		var times []sim.Time
		s.At(0, func() {
			for i := 0; i < 8; i++ {
				m.Nodes[i*7%64].DMA((i*13+16)%64, 5_000, nil, func() {
					times = append(times, s.Now())
				})
			}
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	if len(a) != 8 || len(a) != len(b) {
		t.Fatalf("deliveries: %d vs %d, want 8", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at delivery %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTreeFaultValidation(t *testing.T) {
	s := sim.NewScheduler(1)
	m := NewMachine(s, 64, DefaultCosts())
	ft := m.NewFatTree() // 3 stages
	for _, bad := range [][]TreeFault{
		{{Stage: 0, Lane: 0}}, // leaf links have no redundancy
		{{Stage: 3, Lane: 0}}, // beyond the tree
		{{Stage: 1, Lane: 4}}, // stage 1 has 4 planes
		{{Stage: 1, Lane: 0, From: time.Millisecond, Until: time.Microsecond}}, // empty window
	} {
		if err := ft.SetFaults(bad); err == nil {
			t.Errorf("SetFaults(%+v) accepted", bad)
		}
	}
	if err := ft.SetFaults([]TreeFault{{Stage: 2, Lane: 15, From: 0, Until: time.Second}}); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestParseTreeFaults(t *testing.T) {
	got, err := ParseTreeFaults(" 1:0@5ms-20ms ; 2:3@1ms ")
	if err != nil {
		t.Fatal(err)
	}
	want := []TreeFault{
		{Stage: 1, Lane: 0, From: 5 * time.Millisecond, Until: 20 * time.Millisecond},
		{Stage: 2, Lane: 3, From: time.Millisecond},
	}
	if len(got) != len(want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"1@5ms", "0:0@5ms", "1:-1@5ms", "1:0@bogus", "1:0@5ms-1ms"} {
		if _, err := ParseTreeFaults(bad); err == nil {
			t.Errorf("ParseTreeFaults(%q) accepted", bad)
		}
	}
	if out, err := ParseTreeFaults("  "); err != nil || out != nil {
		t.Errorf("blank spec: %v, %v", out, err)
	}
}

// MPI-level runs remain correct over the tree (used via platform flag).
func TestTportOverFatTree(t *testing.T) {
	s := sim.NewScheduler(1)
	s.MaxEvents = 10_000_000
	m := NewMachine(s, 16, DefaultCosts())
	m.Tree = m.NewFatTree()
	t0 := m.NewTport(m.Nodes[0])
	t9 := m.NewTport(m.Nodes[9])
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i)
	}
	got := make([]byte, 5000)
	s.Spawn("tx", func(p *sim.Proc) { t0.Send(p, 9, 1, data) })
	s.Spawn("rx", func(p *sim.Proc) { t9.Recv(p, 1, ^uint64(0), got) })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("corrupt at %d", i)
		}
	}
}
