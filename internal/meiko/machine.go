package meiko

import (
	"fmt"

	"repro/internal/sim"
)

// Machine is a CS/2: a set of nodes on a fat-tree network with hardware
// broadcast. The network model charges a per-packet wire latency plus
// per-byte serialization on the sender's injection port; each node's Elan
// is a serial resource, so co-processor occupancy queues realistically.
//
// A machine can be built on a single scheduler (NewMachine) or with its
// nodes pinned to shard lanes (NewShardedMachine): each node's Elan and
// injection-port FIFOs then live on that node's lane, and the wire-latency
// hop between nodes crosses lanes through Route — WireLatency is the
// natural lookahead bound. The staged fat-tree model homes its shared
// switch stages on lane 0 as a sim.Stage (see NewFatTree); with the tree
// attached the lookahead bound tightens to HopLatency = WireLatency/2.
type Machine struct {
	S     *sim.Scheduler
	Costs Costs
	Nodes []*Node
	// Tree, when set (see NewFatTree), routes unicast traffic through the
	// staged fat-tree model instead of the flat-latency wire.
	Tree *FatTree
}

// NewMachine builds an n-node CS/2 on scheduler s.
func NewMachine(s *sim.Scheduler, n int, c Costs) *Machine {
	m := &Machine{S: s, Costs: c}
	for i := 0; i < n; i++ {
		m.Nodes = append(m.Nodes, newNode(m, i, s, 0))
	}
	return m
}

// NewShardedMachine builds an n-node CS/2 with node i pinned to lane
// laneOf[i]. The wire latency must be at least the shard's lookahead or
// cross-node deliveries would land inside the epoch window.
func NewShardedMachine(sh *sim.Shard, laneOf []int, n int, c Costs) *Machine {
	if sim.Duration(c.WireLatency) < sh.Lookahead() {
		panic(fmt.Sprintf("meiko: wire latency %v below shard lookahead %v", c.WireLatency, sh.Lookahead()))
	}
	m := &Machine{S: sh.Lane(0), Costs: c}
	for i := 0; i < n; i++ {
		m.Nodes = append(m.Nodes, newNode(m, i, sh.Lane(laneOf[i]), laneOf[i]))
	}
	return m
}

func newNode(m *Machine, id int, s *sim.Scheduler, lane int) *Node {
	return &Node{
		ID:   id,
		M:    m,
		S:    s,
		Lane: lane,
		Elan: sim.NewFIFO(s, fmt.Sprintf("elan%d", id)),
		Out:  sim.NewFIFO(s, fmt.Sprintf("link%d", id)),
	}
}

// Node is one CS/2 node: the SPARC is modeled by whatever proc runs the
// application; the Elan and the injection port are serial resources, both
// owned by the node's scheduler (its shard lane, when sharded).
type Node struct {
	ID   int
	M    *Machine
	S    *sim.Scheduler // this node's (lane) scheduler
	Lane int
	Elan *sim.FIFO // Elan co-processor occupancy
	Out  *sim.FIFO // network injection port
	Port *Tport    // attached tport widget, if any
}

// Txn models a user-level remote transaction carrying nbytes of payload to
// node dst: serialization on the source port, wire latency, then deliver
// runs after the destination Elan processes the transaction. The caller is
// responsible for charging the SPARC-side issue cost (Costs.TxnIssue) when
// issued from a process; Elan-issued transactions instead occupy the source
// Elan first (elanIssued).
//
// Txn is safe to call from event context; delivery order between a given
// (src, dst) pair is FIFO because packets serialize on the source port and
// experience identical latency.
func (n *Node) Txn(dst int, nbytes int, elanIssued bool, deliver func()) {
	c := n.M.Costs
	send := func() {
		wire := sim.Duration(nbytes) * c.TxnPerByte
		n.Out.UseAsync(wire, func() {
			n.M.transit(n, dst, nbytes, c.TxnPerByte, func() {
				n.M.Nodes[dst].Elan.UseAsync(c.ElanTxnHandle, deliver)
			})
		})
	}
	if elanIssued {
		n.Elan.UseAsync(c.ElanTxnHandle, send)
	} else {
		send()
	}
}

// DMA models an Elan-driven bulk transfer of nbytes to node dst. The Elan
// sets up the transfer, the payload serializes on the injection port at DMA
// bandwidth, and after the wire latency the destination Elan lands it.
// onLocal fires when the last byte leaves the source (the sender's buffer
// is then reusable); onRemote fires when the destination Elan completes.
// Either callback may be nil. Safe to call from event context.
func (n *Node) DMA(dst int, nbytes int, onLocal, onRemote func()) {
	c := n.M.Costs
	n.Elan.UseAsync(c.ElanDMASetup, func() {
		wire := sim.Duration(nbytes) * c.DMAPerByte
		n.Out.UseAsync(wire, func() {
			if onLocal != nil {
				onLocal()
			}
			n.M.transit(n, dst, nbytes, c.DMAPerByte, func() {
				n.M.Nodes[dst].Elan.UseAsync(c.ElanDMARecv, func() {
					if onRemote != nil {
						onRemote()
					}
				})
			})
		})
	})
}

// Broadcast models the CS/2 hardware broadcast: one injection of nbytes
// fans out to every other node, with a small per-destination skew in the
// switches. deliver runs once per destination node (in id order, skewed);
// onLocal fires when the source has injected the payload.
func (n *Node) Broadcast(nbytes int, onLocal func(), deliver func(dst *Node)) {
	c := n.M.Costs
	n.Elan.UseAsync(c.ElanDMASetup, func() {
		wire := sim.Duration(nbytes) * c.DMAPerByte
		n.Out.UseAsync(wire, func() {
			if onLocal != nil {
				onLocal()
			}
			skew := sim.Duration(0)
			for _, d := range n.M.Nodes {
				if d.ID == n.ID {
					continue
				}
				dst := d
				// The fan-out hop leaves the source node: route to each
				// destination's lane (a local timer when unsharded).
				n.S.RouteAfter(dst.Lane, c.WireLatency+skew, func() {
					dst.Elan.UseAsync(c.ElanDMARecv, func() { deliver(dst) })
				})
				skew += c.BcastPerNode
			}
		})
	})
}

// transit carries nbytes from src to dst: through the fat tree when one
// is attached, otherwise at the flat wire latency (the serialization on
// the source injection port has already been paid by the caller). The
// wire hop is where traffic leaves the source node's lane, so fn runs on
// the destination's scheduler; on a single-scheduler machine Route
// degrades to a plain timer and the timing is bit-identical to the
// historical After path.
func (m *Machine) transit(src *Node, dst, nbytes int, perByte sim.Duration, fn func()) {
	if m.Tree != nil {
		m.Tree.Deliver(src.ID, dst, nbytes, perByte, fn)
		return
	}
	src.S.RouteAfter(m.Nodes[dst].Lane, m.Costs.WireLatency, fn)
}

// Event is an Elan event word: device completions set it, the SPARC waits
// on it. Waiting charges the SPARC/Elan synchronization cost on wakeup,
// modeling the handshake the paper identifies as extra latency when the
// Elan performs background matching.
type Event struct {
	s    *sim.Scheduler
	c    Costs
	set  bool
	cond *sim.Cond
}

// NewEvent returns an unset event on machine m (on lane 0 of a sharded
// machine; node-local events come from Node.NewEvent).
func (m *Machine) NewEvent() *Event {
	return &Event{s: m.S, c: m.Costs, cond: sim.NewCond(m.S)}
}

// NewEvent returns an unset event owned by n's scheduler, so waits and
// device completions stay lane-local on a sharded machine.
func (n *Node) NewEvent() *Event {
	return &Event{s: n.S, c: n.M.Costs, cond: sim.NewCond(n.S)}
}

// Set marks the event and wakes waiters. Safe from event context.
func (e *Event) Set() {
	e.set = true
	e.cond.Broadcast()
}

// IsSet reports the event state without waiting.
func (e *Event) IsSet() bool { return e.set }

// Clear resets the event.
func (e *Event) Clear() { e.set = false }

// Wait parks p until the event is set, charging the SPARC<->Elan sync cost
// if the proc actually had to block and be woken by the Elan.
func (e *Event) Wait(p *sim.Proc) {
	if e.set {
		return
	}
	for !e.set {
		e.cond.Wait(p)
	}
	p.Advance(e.c.ElanSync)
}
