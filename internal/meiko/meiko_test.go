package meiko

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func newMachine(n int) (*sim.Scheduler, *Machine) {
	s := sim.NewScheduler(1)
	s.MaxEvents = 5_000_000
	return s, NewMachine(s, n, DefaultCosts())
}

func TestTxnDelivers(t *testing.T) {
	s, m := newMachine(2)
	var deliveredAt sim.Time
	s.At(0, func() {
		m.Nodes[0].Txn(1, 8, false, func() { deliveredAt = s.Now() })
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	c := m.Costs
	want := sim.Time(8*c.TxnPerByte + c.WireLatency + c.ElanTxnHandle)
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestTxnFIFOPerPair(t *testing.T) {
	s, m := newMachine(2)
	var order []int
	s.At(0, func() {
		for i := 0; i < 5; i++ {
			i := i
			m.Nodes[0].Txn(1, 100, false, func() { order = append(order, i) })
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestDMACompletionOrder(t *testing.T) {
	s, m := newMachine(2)
	var localAt, remoteAt sim.Time
	s.At(0, func() {
		m.Nodes[0].DMA(1, 1000,
			func() { localAt = s.Now() },
			func() { remoteAt = s.Now() })
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if localAt == 0 || remoteAt == 0 || localAt >= remoteAt {
		t.Fatalf("local %v, remote %v: want local < remote", localAt, remoteAt)
	}
}

func TestDMABandwidthApproaches39MBps(t *testing.T) {
	s, m := newMachine(2)
	const n = 1 << 20
	var remoteAt sim.Time
	s.At(0, func() {
		m.Nodes[0].DMA(1, n, nil, func() { remoteAt = s.Now() })
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	mbps := float64(n) / remoteAt.Duration().Seconds() / 1e6
	if mbps < 37 || mbps > 41 {
		t.Fatalf("DMA bandwidth = %.1f MB/s, want ~39-40", mbps)
	}
}

func TestBroadcastReachesAllNodes(t *testing.T) {
	s, m := newMachine(8)
	got := map[int]sim.Time{}
	s.At(0, func() {
		m.Nodes[3].Broadcast(256, nil, func(dst *Node) { got[dst.ID] = s.Now() })
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("broadcast reached %d nodes, want 7", len(got))
	}
	if _, self := got[3]; self {
		t.Fatal("broadcast delivered to source")
	}
}

func TestBroadcastCheaperThanSequentialSends(t *testing.T) {
	// One hardware broadcast of n bytes must beat n sequential DMAs —
	// the structural reason Figure 7 favors the low-latency implementation.
	const nodes, size = 16, 1024
	bcast := func() sim.Time {
		s, m := newMachine(nodes)
		var last sim.Time
		s.At(0, func() {
			m.Nodes[0].Broadcast(size, nil, func(dst *Node) { last = s.Now() })
		})
		s.Run()
		return last
	}()
	seq := func() sim.Time {
		s, m := newMachine(nodes)
		var last sim.Time
		s.At(0, func() {
			for i := 1; i < nodes; i++ {
				m.Nodes[0].DMA(i, size, nil, func() {
					if s.Now() > last {
						last = s.Now()
					}
				})
			}
		})
		s.Run()
		return last
	}()
	if !(bcast < seq/4) {
		t.Fatalf("broadcast %v not clearly cheaper than %d sequential sends %v", bcast, nodes-1, seq)
	}
}

func TestEventWaitBeforeSet(t *testing.T) {
	s, m := newMachine(1)
	ev := m.NewEvent()
	var wokeAt sim.Time
	s.Spawn("w", func(p *sim.Proc) {
		ev.Wait(p)
		wokeAt = p.Now()
	})
	s.At(100, func() { ev.Set() })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(100) + sim.Time(m.Costs.ElanSync)
	if wokeAt != want {
		t.Fatalf("woke at %v, want %v (set time + sync cost)", wokeAt, want)
	}
}

func TestEventAlreadySetNoSyncCost(t *testing.T) {
	s, m := newMachine(1)
	ev := m.NewEvent()
	ev.Set()
	var wokeAt sim.Time
	s.Spawn("w", func(p *sim.Proc) {
		ev.Wait(p)
		wokeAt = p.Now()
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 0 {
		t.Fatalf("pre-set event cost %v", wokeAt)
	}
}

// tportPingPong measures a tport round trip for n-byte messages.
func tportPingPong(t *testing.T, n, iters int) sim.Duration {
	t.Helper()
	s, m := newMachine(2)
	t0 := m.NewTport(m.Nodes[0])
	t1 := m.NewTport(m.Nodes[1])
	data := make([]byte, n)
	var total sim.Duration
	s.Spawn("n0", func(p *sim.Proc) {
		buf := make([]byte, n)
		start := p.Now()
		for i := 0; i < iters; i++ {
			t0.Send(p, 1, 7, data)
			t0.Recv(p, 7, ^uint64(0), buf)
		}
		total = sim.Duration(p.Now()-start) / sim.Duration(iters)
	})
	s.Spawn("n1", func(p *sim.Proc) {
		buf := make([]byte, n)
		for i := 0; i < iters; i++ {
			t1.Recv(p, 7, ^uint64(0), buf)
			t1.Send(p, 0, 7, data)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return total
}

// Paper anchor (Figure 2): the tport 1-byte round trip is 52 us.
func TestTportRTTCalibration(t *testing.T) {
	rtt := tportPingPong(t, 1, 20)
	us := float64(rtt) / 1e3
	if us < 49 || us > 55 {
		t.Fatalf("tport 1-byte RTT = %.1f us, want ~52 (paper anchor)", us)
	}
}

func TestTportRTTMonotonicInSize(t *testing.T) {
	var prev sim.Duration
	for _, n := range []int{1, 64, 256, 1024, 4096} {
		rtt := tportPingPong(t, n, 5)
		if rtt < prev {
			t.Fatalf("RTT decreased from %v to %v at size %d", prev, rtt, n)
		}
		prev = rtt
	}
}

func TestTportPayloadIntegrityEagerAndRndv(t *testing.T) {
	for _, n := range []int{1, TportEager, TportEager + 1, 100_000} {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			s, m := newMachine(2)
			t0 := m.NewTport(m.Nodes[0])
			t1 := m.NewTport(m.Nodes[1])
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(i)
			}
			got := make([]byte, n)
			s.Spawn("sender", func(p *sim.Proc) { t0.Send(p, 1, 3, data) })
			s.Spawn("recver", func(p *sim.Proc) {
				nn, src, tag := t1.Recv(p, 3, ^uint64(0), got)
				if nn != n || src != 0 || tag != 3 {
					t.Errorf("recv = (%d, %d, %d)", nn, src, tag)
				}
			})
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("payload corrupted")
			}
		})
	}
}

func TestTportUnexpectedThenRecv(t *testing.T) {
	for _, n := range []int{32, 5000} {
		s, m := newMachine(2)
		t0 := m.NewTport(m.Nodes[0])
		t1 := m.NewTport(m.Nodes[1])
		data := make([]byte, n)
		got := make([]byte, n)
		s.Spawn("sender", func(p *sim.Proc) { t0.Send(p, 1, 9, data) })
		s.Spawn("recver", func(p *sim.Proc) {
			p.Advance(time.Millisecond) // arrive before the receive posts
			nn, _, _ := t1.Recv(p, 9, ^uint64(0), got)
			if nn != n {
				t.Errorf("n = %d, want %d", nn, n)
			}
		})
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTportMaskWildcard(t *testing.T) {
	s, m := newMachine(2)
	t0 := m.NewTport(m.Nodes[0])
	t1 := m.NewTport(m.Nodes[1])
	s.Spawn("sender", func(p *sim.Proc) { t0.Send(p, 1, 0xABCD, []byte{1}) })
	s.Spawn("recver", func(p *sim.Proc) {
		// Match only the high byte of the low word.
		_, _, tag := t1.Recv(p, 0xAB00, 0xFF00, make([]byte, 1))
		if tag != 0xABCD {
			t.Errorf("tag = %#x", tag)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTportProbe(t *testing.T) {
	s, m := newMachine(2)
	t0 := m.NewTport(m.Nodes[0])
	t1 := m.NewTport(m.Nodes[1])
	s.Spawn("sender", func(p *sim.Proc) { t0.Send(p, 1, 5, make([]byte, 77)) })
	s.Spawn("recver", func(p *sim.Proc) {
		p.Advance(time.Millisecond)
		src, n, tag, ok := t1.Probe(p, 5, ^uint64(0))
		if !ok || src != 0 || n != 77 || tag != 5 {
			t.Errorf("probe = (%d,%d,%d,%v)", src, n, tag, ok)
		}
		if _, _, _, ok := t1.Probe(p, 6, ^uint64(0)); ok {
			t.Error("probe matched wrong tag")
		}
		t1.Recv(p, 5, ^uint64(0), make([]byte, 77))
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTportISendNonblocking(t *testing.T) {
	s, m := newMachine(2)
	t0 := m.NewTport(m.Nodes[0])
	t1 := m.NewTport(m.Nodes[1])
	s.Spawn("sender", func(p *sim.Proc) {
		req := t0.ISend(p, 1, 5, make([]byte, 100_000)) // rendezvous-sized
		if req.Done() {
			t.Error("large ISend done immediately")
		}
		t0.Wait(p, req)
		if !req.Done() {
			t.Error("ISend not done after Wait")
		}
	})
	s.Spawn("recver", func(p *sim.Proc) {
		t1.Recv(p, 5, ^uint64(0), make([]byte, 100_000))
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTportManySenders(t *testing.T) {
	const n = 8
	s, m := newMachine(n)
	ports := make([]*Tport, n)
	for i := range ports {
		ports[i] = m.NewTport(m.Nodes[i])
	}
	seen := map[int]bool{}
	for i := 1; i < n; i++ {
		i := i
		s.Spawn(fmt.Sprintf("s%d", i), func(p *sim.Proc) {
			ports[i].Send(p, 0, uint64(i), []byte{byte(i)})
		})
	}
	s.Spawn("recv", func(p *sim.Proc) {
		for k := 1; k < n; k++ {
			buf := make([]byte, 1)
			_, src, _ := ports[0].Recv(p, 0, 0, buf) // mask 0: wildcard all
			if int(buf[0]) != src {
				t.Errorf("src %d delivered byte %d", src, buf[0])
			}
			seen[src] = true
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n-1 {
		t.Fatalf("saw %d senders, want %d", len(seen), n-1)
	}
}

// The Elan is a serial resource: a burst of arrivals at one node
// serializes on its co-processor, delaying the last delivery by at least
// the summed handling costs.
func TestElanOccupancySerializes(t *testing.T) {
	s, m := newMachine(9)
	const burst = 8
	var last sim.Time
	s.At(0, func() {
		for i := 1; i <= burst; i++ {
			m.Nodes[i].Txn(0, 8, false, func() {
				if s.Now() > last {
					last = s.Now()
				}
			})
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	c := m.Costs
	minSerial := sim.Time(sim.Duration(burst) * c.ElanTxnHandle)
	if last < minSerial {
		t.Fatalf("burst completed at %v; Elan handling alone needs %v", last, minSerial)
	}
}

// Hardware broadcast skew: later nodes receive later, by BcastPerNode.
func TestBroadcastSkewOrdering(t *testing.T) {
	s, m := newMachine(8)
	arrive := map[int]sim.Time{}
	s.At(0, func() {
		m.Nodes[0].Broadcast(64, nil, func(dst *Node) { arrive[dst.ID] = s.Now() })
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for id := 2; id < 8; id++ {
		if arrive[id] < arrive[id-1] {
			t.Fatalf("node %d received before node %d", id, id-1)
		}
	}
}
