package meiko

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// The sharded machine is the same cost model on a different kernel: raw
// media operations must complete at exactly the single-scheduler times.
func TestShardedMachineMatchesSingleScheduler(t *testing.T) {
	c := DefaultCosts()
	type result struct{ txn, dmaLocal, dmaRemote, bcast1, bcast2 sim.Time }
	run := func(m *Machine, drive func() (sim.Time, error)) result {
		var r result
		src := m.Nodes[0]
		src.Txn(1, 64, false, func() { r.txn = m.Nodes[1].S.Now() })
		src.DMA(2, 4096,
			func() { r.dmaLocal = src.S.Now() },
			func() { r.dmaRemote = m.Nodes[2].S.Now() })
		src.Broadcast(128, nil, func(dst *Node) {
			if dst.ID == 1 {
				r.bcast1 = dst.S.Now()
			}
			if dst.ID == 2 {
				r.bcast2 = dst.S.Now()
			}
		})
		if _, err := drive(); err != nil {
			t.Fatal(err)
		}
		return r
	}
	s := sim.NewScheduler(1)
	want := run(NewMachine(s, 3, c), s.Run)
	sh := sim.NewShard(1, 3, sim.Duration(c.WireLatency))
	got := run(NewShardedMachine(sh, []int{0, 1, 2}, 3, c), sh.Run)
	if got != want {
		t.Fatalf("sharded machine times %+v != single-scheduler times %+v", got, want)
	}
	if want.txn == 0 || want.dmaRemote == 0 || want.bcast2 == 0 {
		t.Fatalf("deliveries did not run: %+v", want)
	}
}

// Contention on a destination Elan from two source nodes on different
// lanes must serialize exactly as on one scheduler.
func TestShardedMachineElanContention(t *testing.T) {
	c := DefaultCosts()
	run := func(m *Machine, drive func() (sim.Time, error)) []sim.Time {
		var ends []sim.Time
		m.Nodes[0].Txn(2, 256, false, func() { ends = append(ends, m.Nodes[2].S.Now()) })
		m.Nodes[1].Txn(2, 256, false, func() { ends = append(ends, m.Nodes[2].S.Now()) })
		if _, err := drive(); err != nil {
			t.Fatal(err)
		}
		return ends
	}
	s := sim.NewScheduler(1)
	want := run(NewMachine(s, 3, c), s.Run)
	sh := sim.NewShard(1, 3, sim.Duration(c.WireLatency))
	got := run(NewShardedMachine(sh, []int{0, 1, 2}, 3, c), sh.Run)
	if len(got) != len(want) {
		t.Fatalf("deliveries: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d at %v sharded, %v single", i, got[i], want[i])
		}
	}
}

// The staged fat tree homes its switch state on lane 0 as a sim.Stage:
// deliveries from every lane must queue on the wormhole routes exactly as
// they do on one scheduler, including contention between sources that now
// live on different lanes.
func TestShardedMachineFatTreeMatchesSingleScheduler(t *testing.T) {
	c := DefaultCosts()
	const n = 8
	run := func(m *Machine, drive func() (sim.Time, error)) []sim.Time {
		m.Tree = m.NewFatTree()
		ends := make([]sim.Time, n)
		for src := 0; src < n; src++ {
			src := src
			// Everyone converges on node 0's leaf group: the incast case
			// where down-link contention decides the timing.
			m.Nodes[src].Txn((src+1)%2, 512, false, func() {
				ends[src] = m.Nodes[(src+1)%2].S.Now()
			})
		}
		if _, err := drive(); err != nil {
			t.Fatal(err)
		}
		return ends
	}
	s := sim.NewScheduler(1)
	want := run(NewMachine(s, n, c), s.Run)
	lanes := []int{0, 0, 1, 1, 2, 2, 3, 3}
	sh := sim.NewShard(1, 4, sim.Duration(c.WireLatency)/2)
	got := run(NewShardedMachine(sh, lanes, n, c), sh.Run)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d at %v sharded, %v single", i, got[i], want[i])
		}
		if want[i] == 0 {
			t.Fatalf("delivery %d never ran", i)
		}
	}
}

func TestShardedMachineRejectsFatTreeShortHop(t *testing.T) {
	c := DefaultCosts()
	// WireLatency satisfies the flat-wire bound but the tree's HopLatency
	// (WireLatency/2) does not: attaching the tree must panic.
	sh := sim.NewShard(1, 2, sim.Duration(c.WireLatency))
	m := NewShardedMachine(sh, []int{0, 1}, 2, c)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic attaching a fat tree with hop latency below lookahead")
		}
	}()
	m.Tree = m.NewFatTree()
}

func TestShardedMachineRejectsShortWire(t *testing.T) {
	c := DefaultCosts()
	sh := sim.NewShard(1, 2, sim.Duration(c.WireLatency)+time.Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wire latency below lookahead")
		}
	}()
	NewShardedMachine(sh, []int{0, 1}, 2, c)
}
