package meiko

import (
	"repro/internal/sim"
)

// TportHeaderBytes is the tagged-port header carried by every tport
// message on the wire.
const TportHeaderBytes = 16

// TportEager is the widget's internal eager limit: messages at or below
// it travel with the first transaction; larger messages rendezvous between
// the Elans and move by DMA. The real widget was tuned for bandwidth,
// which is exactly the latency trade the paper measures against.
const TportEager = 512

// Tport is the Meiko tagged-message-port widget on one node. All matching
// runs on the Elan co-processor (charged as Elan occupancy), so receives
// progress in the background; the SPARC only synchronizes on completion
// events. This is the substrate of the MPICH baseline and the third series
// of Figures 2 and 3.
type Tport struct {
	node    *Node
	posted  []*tportRecv
	unex    []*tportUnex
	arrival *sim.Cond // broadcast whenever a message reaches the Elan
}

// TportReq is an in-flight tport operation.
type TportReq struct {
	ev   *Event
	done bool
	// Receive results, valid once done.
	N   int
	Src int
	Tag uint64
	// OnDone, if set before completion, runs when the request completes
	// (event context). Used by layered libraries for buffer recycling.
	OnDone func()
}

func (r *TportReq) finish() {
	r.done = true
	r.ev.Set()
	if r.OnDone != nil {
		r.OnDone()
	}
}

// Done reports completion without blocking.
func (r *TportReq) Done() bool { return r.done }

type tportRecv struct {
	tag, mask uint64
	buf       []byte
	req       *TportReq
}

type tportUnex struct {
	src  int
	tag  uint64
	data []byte // eager payload buffered by the Elan
	rndv *tportRndv
}

type tportRndv struct {
	src    int
	tag    uint64
	nbytes int
	onCTS  func(dstBuf []byte, done func(n int)) // sender-side DMA trigger
}

// NewTport attaches a tport to node n and registers it as the node's port.
func (m *Machine) NewTport(n *Node) *Tport {
	t := &Tport{node: n, arrival: sim.NewCond(n.S)}
	n.Port = t
	return t
}

// WaitArrival parks p until some message reaches this port's Elan; layered
// libraries use it to implement blocking probes.
func (t *Tport) WaitArrival(p *sim.Proc) { t.arrival.Wait(p) }

// CancelRecv removes a posted receive that has not matched, reporting
// whether it was still queued.
func (t *Tport) CancelRecv(req *TportReq) bool {
	for i, rc := range t.posted {
		if rc.req == req {
			t.posted = append(t.posted[:i], t.posted[i+1:]...)
			return true
		}
	}
	return false
}

// tagMatches applies the widget's tag/mask match: bits outside mask are
// wildcarded.
func tagMatches(msgTag, want, mask uint64) bool { return (msgTag & mask) == (want & mask) }

// ISend starts a tagged send of data to node dst. The returned request
// completes when the sender's buffer is reusable (eager: injected;
// rendezvous: DMA drained).
func (t *Tport) ISend(p *sim.Proc, dst int, tag uint64, data []byte) *TportReq {
	c := t.node.M.Costs
	req := &TportReq{ev: t.node.NewEvent()}
	p.Advance(c.TportIssue) // SPARC hands the descriptor to the Elan
	peer := t.node.M.Nodes[dst]
	src := t.node.ID
	n := len(data)

	complete := func() {
		req.N = n
		req.finish()
	}

	if n <= TportEager {
		stable := make([]byte, n)
		copy(stable, data)
		t.node.Elan.UseAsync(c.ElanTportSend, func() {
			t.node.Txn(dst, TportHeaderBytes+n, false, func() {
				peerPort(peer).arriveEager(src, tag, stable)
			})
			complete() // locally complete once handed to the wire
		})
		return req
	}

	// Rendezvous: the envelope transaction announces the message; the
	// receiver's Elan answers with a CTS once matched, and the sender's
	// Elan DMAs the payload autonomously — the SPARC is not involved.
	rv := &tportRndv{src: src, tag: tag, nbytes: n}
	rv.onCTS = func(dstBuf []byte, done func(nn int)) {
		m := n
		if m > len(dstBuf) {
			m = len(dstBuf)
		}
		copy(dstBuf[:m], data[:m])
		t.node.DMA(dst, m, complete, func() { done(m) })
	}
	t.node.Elan.UseAsync(c.ElanTportSend, func() {
		t.node.Txn(dst, TportHeaderBytes, false, func() {
			peerPort(peer).arriveRndv(rv)
		})
	})
	return req
}

// Send is the blocking form of ISend.
func (t *Tport) Send(p *sim.Proc, dst int, tag uint64, data []byte) {
	t.Wait(p, t.ISend(p, dst, tag, data))
}

// IRecv posts a receive for messages whose tag matches (tag, mask).
func (t *Tport) IRecv(p *sim.Proc, tag, mask uint64, buf []byte) *TportReq {
	c := t.node.M.Costs
	req := &TportReq{ev: t.node.NewEvent()}
	p.Advance(c.TportIssue)
	rc := &tportRecv{tag: tag, mask: mask, buf: buf, req: req}
	// Matching against the unexpected queue runs on the Elan.
	t.node.Elan.UseAsync(c.ElanTportMatch, func() {
		for i, u := range t.unex {
			if tagMatches(u.tag, tag, mask) {
				t.unex = append(t.unex[:i], t.unex[i+1:]...)
				t.deliverUnexpected(u, rc)
				return
			}
		}
		t.posted = append(t.posted, rc)
	})
	return req
}

// Recv is the blocking form of IRecv; it reports the received byte count,
// source node and full tag.
func (t *Tport) Recv(p *sim.Proc, tag, mask uint64, buf []byte) (int, int, uint64) {
	req := t.IRecv(p, tag, mask, buf)
	t.Wait(p, req)
	return req.N, req.Src, req.Tag
}

// Wait blocks p until req completes, paying the SPARC<->Elan sync cost if
// it actually blocks.
func (t *Tport) Wait(p *sim.Proc, req *TportReq) {
	req.ev.Wait(p)
}

// Probe reports whether an unexpected message matching (tag, mask) is
// buffered, with its source, byte count and tag. Probing is a SPARC->Elan
// query.
func (t *Tport) Probe(p *sim.Proc, tag, mask uint64) (src, n int, mtag uint64, ok bool) {
	c := t.node.M.Costs
	p.Advance(c.TportIssue + c.ElanSync)
	for _, u := range t.unex {
		if tagMatches(u.tag, tag, mask) {
			if u.rndv != nil {
				return u.src, u.rndv.nbytes, u.tag, true
			}
			return u.src, len(u.data), u.tag, true
		}
	}
	return 0, 0, 0, false
}

// arriveEager runs on the destination Elan when an eager message lands.
func (t *Tport) arriveEager(src int, tag uint64, data []byte) {
	c := t.node.M.Costs
	t.node.Elan.UseAsync(c.ElanTportMatch, func() {
		if rc := t.takeMatch(tag); rc != nil {
			// Matched: the network deposits straight into the posted
			// buffer; no intermediate copy (the widget's bandwidth
			// optimization).
			n := copy(rc.buf, data)
			rc.req.N = n
			rc.req.Src = src
			rc.req.Tag = tag
			rc.req.finish()
			return
		}
		// Buffer unexpected data Elan-side. The queue entry is made
		// immediately so arrival order (and MPI's non-overtaking rule) is
		// preserved even against receives posted during the copy; the
		// copy itself is modeled as Elan occupancy.
		t.unex = append(t.unex, &tportUnex{src: src, tag: tag, data: data})
		t.node.Elan.UseAsync(sim.Duration(len(data))*c.ElanCopyPerByte, func() {
			t.arrival.Broadcast()
		})
	})
}

// arriveRndv runs on the destination Elan when a rendezvous envelope lands.
func (t *Tport) arriveRndv(rv *tportRndv) {
	c := t.node.M.Costs
	t.node.Elan.UseAsync(c.ElanTportMatch, func() {
		if rc := t.takeMatch(rv.tag); rc != nil {
			t.cts(rv, rc)
			return
		}
		t.unex = append(t.unex, &tportUnex{src: rv.src, tag: rv.tag, rndv: rv})
		t.arrival.Broadcast()
	})
}

// cts sends the clear-to-send back to the sender's Elan and arranges
// completion when the DMA lands.
func (t *Tport) cts(rv *tportRndv, rc *tportRecv) {
	t.node.Txn(rv.src, TportHeaderBytes, true, func() {
		rv.onCTS(rc.buf, func(n int) {
			rc.req.N = n
			rc.req.Src = rv.src
			rc.req.Tag = rv.tag
			rc.req.finish()
		})
	})
}

// deliverUnexpected completes a receive from the unexpected queue
// (running on the Elan).
func (t *Tport) deliverUnexpected(u *tportUnex, rc *tportRecv) {
	c := t.node.M.Costs
	if u.rndv != nil {
		t.cts(u.rndv, rc)
		return
	}
	n := copy(rc.buf, u.data)
	t.node.Elan.UseAsync(sim.Duration(n)*c.ElanCopyPerByte, func() {
		rc.req.N = n
		rc.req.Src = u.src
		rc.req.Tag = u.tag
		rc.req.finish()
	})
}

// takeMatch removes and returns the earliest posted receive matching tag.
func (t *Tport) takeMatch(tag uint64) *tportRecv {
	for i, rc := range t.posted {
		if tagMatches(tag, rc.tag, rc.mask) {
			t.posted = append(t.posted[:i], t.posted[i+1:]...)
			return rc
		}
	}
	return nil
}

// peerPort finds the tport attached to a node; ports register themselves.
func peerPort(n *Node) *Tport {
	if n.Port == nil {
		panic("meiko: destination node has no tport attached")
	}
	return n.Port
}
