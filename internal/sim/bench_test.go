package sim

import (
	"testing"
	"time"
)

// Host-side performance of the simulation kernel itself.

func BenchmarkEventDispatch(b *testing.B) {
	s := NewScheduler(1)
	n := 0
	var loop func()
	loop = func() {
		n++
		if n < b.N {
			s.After(1, loop)
		}
	}
	s.At(0, loop)
	b.ResetTimer()
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkProcSwitch(b *testing.B) {
	s := NewScheduler(1)
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(time.Nanosecond)
		}
	})
	b.ResetTimer()
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCondHandoff(b *testing.B) {
	s := NewScheduler(1)
	c1 := NewCond(s)
	c2 := NewCond(s)
	// a spawns first, so it is parked on c1 before b's first signal.
	s.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c1.Wait(p)
			c2.Signal()
		}
	})
	s.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c1.Signal()
			c2.Wait(p)
		}
	})
	b.ResetTimer()
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
