package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Shard is the control plane of the sharded kernel: a set of per-node
// data-plane lanes (each a full Scheduler with its own event queue, proc
// set, and RNG stream) synchronized by a conservative lookahead barrier.
//
// Execution proceeds in epochs. Each epoch the control plane finds the
// earliest pending event time T0 across lanes and sets the horizon
// H = T0 + lookahead; every lane then executes its events with t < H
// independently — sequentially or on parallel goroutines, the results are
// identical. Cross-lane effects are staged through Route into per-lane
// outboxes and merged at the epoch barrier. The merge is the determinism
// linchpin: envelopes are ordered by (t, srcLane, srcSeq) — the lane id
// breaks (time, seq) ties — and destination-local sequence numbers are
// assigned in that canonical order, so the run is bit-identical regardless
// of how lane execution interleaved.
//
// Safety requires every cross-lane delivery to land at or beyond the
// horizon of the epoch that sent it. Route enforces t >= H, which holds by
// construction whenever the model's minimum cross-lane latency is at least
// the shard's lookahead: a sender executing at now < H schedules delivery
// at now + δ with δ >= lookahead, and now >= T0 gives
// now + δ >= T0 + lookahead = H.
type Shard struct {
	lanes     []*Scheduler
	lookahead Time

	// Parallel selects pinned-worker epoch execution: min(GOMAXPROCS,
	// lanes) persistent workers, each owning a contiguous block of lanes,
	// woken once per epoch with the horizon and joined at the barrier. Off
	// by default: the sequential path is the determinism oracle for the
	// parallel one, and on a single core the worker pool degenerates to one
	// worker with only a channel handoff per epoch of overhead.
	Parallel bool

	// Limits guard against runaway models; zero means no limit. MaxEvents
	// bounds the total across lanes (checked at epoch granularity, and
	// per-lane within an epoch so a same-instant livelock still terminates).
	MaxEvents uint64
	MaxTime   Time

	scratch []*xmsg // merge staging, reused across epochs
	stats   ShardStats

	// Pinned-worker pool (Parallel mode). Workers are started lazily by Run
	// and torn down on every return path; each owns lanes [lo, hi) and
	// touches nothing else during an epoch, so lane state needs no locks —
	// the work channel send and barrier wait provide the happens-before
	// edges for the control plane's reads between epochs.
	work    []chan Time
	barrier sync.WaitGroup
}

// xmsg is a pooled cross-lane envelope: an event staged in a lane outbox
// until the epoch barrier merges it into the destination lane.
type xmsg struct {
	t       Time
	srcLane int
	srcSeq  uint64
	dst     int
	fn      func()
	next    *xmsg // freelist link while recycled
}

// ShardStats counts control-plane activity for Acct/trace reporting.
type ShardStats struct {
	Lanes            int
	Epochs           uint64   // lookahead windows executed
	Stalls           uint64   // lane-epochs that ran zero events
	Routed           uint64   // cross-lane envelopes merged
	MailboxHighWater int      // most envelopes staged at one barrier
	LaneEvents       []uint64 // events executed per lane
	Events           uint64   // total events across lanes
}

// NewShard builds a shard of n lanes with the given lookahead bound, which
// must be positive (it is the epoch width, and the model's minimum
// cross-lane latency must be at least this). Lane i's RNG stream is seeded
// seed+i so lanes draw independently and deterministically.
func NewShard(seed int64, n int, lookahead Duration) *Shard {
	if n < 1 {
		panic("sim: shard needs at least one lane")
	}
	if lookahead <= 0 {
		panic("sim: shard lookahead must be positive")
	}
	sh := &Shard{lanes: make([]*Scheduler, n), lookahead: Time(lookahead)}
	for i := range sh.lanes {
		ln := NewScheduler(seed + int64(i))
		ln.coro = true
		ln.shard = sh
		ln.lane = i
		sh.lanes[i] = ln
	}
	return sh
}

// Lanes reports the number of lanes.
func (sh *Shard) Lanes() int { return len(sh.lanes) }

// Lane reports lane i's scheduler, on which procs are spawned and media
// built. Everything reachable from a lane's procs must be lane-local;
// cross-lane effects go through Route.
func (sh *Shard) Lane(i int) *Scheduler { return sh.lanes[i] }

// Lookahead reports the shard's lookahead bound. Media use it to validate
// that their cross-lane latencies qualify.
func (sh *Shard) Lookahead() Duration { return Duration(sh.lookahead) }

// Stats reports control-plane counters for the run so far.
func (sh *Shard) Stats() ShardStats {
	st := sh.stats
	st.Lanes = len(sh.lanes)
	st.LaneEvents = make([]uint64, len(sh.lanes))
	for i, ln := range sh.lanes {
		st.LaneEvents[i] = ln.nEvents
		st.Events += ln.nEvents
	}
	return st
}

// Events reports the total events executed across lanes.
func (sh *Shard) Events() uint64 {
	var n uint64
	for _, ln := range sh.lanes {
		n += ln.nEvents
	}
	return n
}

// Now reports the shard's virtual time: the maximum across lanes (lanes
// whose queues ran dry lag until a merged event advances them).
func (sh *Shard) Now() Time {
	var t Time
	for _, ln := range sh.lanes {
		if ln.now > t {
			t = ln.now
		}
	}
	return t
}

// Route schedules fn at time t on lane dstLane. Called from the sending
// lane's context (proc body or event callback). Same-lane routes — and any
// route on a standalone scheduler — degrade to At. Cross-lane routes are
// staged in the sender's outbox and merged at the epoch barrier; t must be
// at or beyond the current horizon (guaranteed when the modeled latency is
// >= the shard lookahead), otherwise Route panics — delivering into the
// current window would break the conservative synchronization contract.
func (s *Scheduler) Route(dstLane int, t Time, fn func()) {
	sh := s.shard
	if sh == nil || dstLane == s.lane {
		s.At(t, fn)
		return
	}
	if t < s.window {
		panic(fmt.Sprintf("sim: lookahead violation: lane %d routing to lane %d at %v, inside horizon %v (cross-lane latency below shard lookahead %v)",
			s.lane, dstLane, t, s.window, Duration(sh.lookahead)))
	}
	s.xseq++
	m := s.allocX()
	m.t, m.srcLane, m.srcSeq, m.dst, m.fn = t, s.lane, s.xseq, dstLane, fn
	s.outbox = append(s.outbox, m)
}

// RouteAfter schedules fn on lane dstLane, d from now.
func (s *Scheduler) RouteAfter(dstLane int, d Duration, fn func()) {
	s.Route(dstLane, s.now+Time(d), fn)
}

func (s *Scheduler) allocX() *xmsg {
	m := s.xfree
	if m == nil {
		return &xmsg{}
	}
	s.xfree = m.next
	m.next = nil
	return m
}

func (s *Scheduler) freeX(m *xmsg) {
	m.fn = nil
	m.next = s.xfree
	s.xfree = m
}

// runWindow executes the lane's events strictly before horizon h, stopping
// early if the lane alone exceeds maxEv events (a per-lane bound that keeps
// a same-instant livelock inside one window from running away before the
// control plane can apply the global limit). It reports how many events ran.
func (s *Scheduler) runWindow(h Time, maxEv uint64) uint64 {
	s.window = h
	var n uint64
	for len(s.events) > 0 && s.events[0].t < h {
		// Strictly-greater mirrors the global check: a lane halted here has
		// already pushed the global total over the limit, so Run cannot spin
		// on a capped lane without returning the LimitError.
		if maxEv != 0 && s.nEvents > maxEv {
			break
		}
		s.runEvent(s.events.pop())
		n++
	}
	return n
}

// nextTime reports the earliest pending event time across lanes.
func (sh *Shard) nextTime() (Time, bool) {
	var t0 Time
	any := false
	for _, ln := range sh.lanes {
		if len(ln.events) == 0 {
			continue
		}
		if !any || ln.events[0].t < t0 {
			t0 = ln.events[0].t
		}
		any = true
	}
	return t0, any
}

// merge drains every lane outbox into the destination lanes in canonical
// (t, srcLane, srcSeq) order, assigning destination-local sequence numbers
// in that order so downstream execution is bit-identical however the lanes
// were executed. Runs in control-plane context (the barrier), so touching
// every lane is safe.
func (sh *Shard) merge() {
	sc := sh.scratch[:0]
	for _, ln := range sh.lanes {
		sc = append(sc, ln.outbox...)
		ln.outbox = ln.outbox[:0]
	}
	if len(sc) > sh.stats.MailboxHighWater {
		sh.stats.MailboxHighWater = len(sc)
	}
	sh.stats.Routed += uint64(len(sc))
	sort.Slice(sc, func(i, j int) bool {
		a, b := sc[i], sc[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.srcLane != b.srcLane {
			return a.srcLane < b.srcLane
		}
		return a.srcSeq < b.srcSeq
	})
	for _, m := range sc {
		sh.lanes[m.dst].schedule(m.t, m.fn, nil)
		sh.lanes[m.srcLane].freeX(m)
	}
	sh.scratch = sc[:0]
}

// startWorkers spins up the pinned worker pool: each worker owns a
// contiguous block of lanes and loops epoch-to-epoch on its work channel.
// MaxEvents is read by workers and must not change while they run.
func (sh *Shard) startWorkers() {
	w := runtime.GOMAXPROCS(0)
	if w > len(sh.lanes) {
		w = len(sh.lanes)
	}
	sh.work = make([]chan Time, w)
	for i := range sh.work {
		ch := make(chan Time, 1)
		sh.work[i] = ch
		block := sh.lanes[i*len(sh.lanes)/w : (i+1)*len(sh.lanes)/w]
		go func() {
			for h := range ch {
				for _, ln := range block {
					ln.runWindow(h, sh.MaxEvents)
				}
				sh.barrier.Done()
			}
		}()
	}
}

// stopWorkers tears the pool down (idempotent).
func (sh *Shard) stopWorkers() {
	for _, ch := range sh.work {
		close(ch)
	}
	sh.work = nil
}

// Run drives all lanes to completion under the epoch/lookahead barrier and
// returns the final virtual time. Deadlock (all queues and outboxes
// drained with procs still parked) and limit overruns surface exactly as
// on the single-lane kernel, as *DeadlockError / *LimitError.
func (sh *Shard) Run() (Time, error) {
	if sh.Parallel && len(sh.lanes) > 1 && sh.work == nil {
		sh.startWorkers()
		defer sh.stopWorkers()
	}
	for {
		t0, any := sh.nextTime()
		if !any {
			var names []string
			for _, ln := range sh.lanes {
				for p := range ln.procs {
					names = append(names, p.name)
				}
			}
			if len(names) != 0 {
				sort.Strings(names)
				return sh.Now(), &DeadlockError{At: sh.Now(), Parked: names}
			}
			return sh.Now(), nil
		}
		if sh.MaxTime != 0 && t0 > sh.MaxTime {
			return t0, &LimitError{At: t0, Events: sh.Events(), What: "time"}
		}
		h := t0 + sh.lookahead
		sh.stats.Epochs++
		if sh.work != nil {
			// Stalls are counted by the control plane before the workers
			// wake (same predicate runWindow uses), so the counters stay
			// off the worker hot path.
			for _, ln := range sh.lanes {
				if len(ln.events) == 0 || ln.events[0].t >= h {
					sh.stats.Stalls++
				}
			}
			sh.barrier.Add(len(sh.work))
			for _, ch := range sh.work {
				ch <- h
			}
			sh.barrier.Wait()
		} else {
			for _, ln := range sh.lanes {
				if ln.runWindow(h, sh.MaxEvents) == 0 {
					sh.stats.Stalls++
				}
			}
		}
		sh.merge()
		if sh.MaxEvents != 0 && sh.Events() > sh.MaxEvents {
			return sh.Now(), &LimitError{At: sh.Now(), Events: sh.Events(), What: "event"}
		}
	}
}

// Shutdown terminates every lane's parked procs (linear per lane; see
// Scheduler.Shutdown). Call after Run returns an error.
func (sh *Shard) Shutdown() {
	for _, ln := range sh.lanes {
		ln.Shutdown()
	}
}
