package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"
)

// --- basic lane mechanics ---

func TestShardSingleLaneMatchesScheduler(t *testing.T) {
	// The same two-proc program on a standalone scheduler and on a 1-lane
	// shard (coroutine procs) must produce identical timelines.
	var traces [2][]string
	run := func(idx int, s *Scheduler, drive func() (Time, error)) {
		log := func(p *Proc, what string) {
			traces[idx] = append(traces[idx], fmt.Sprintf("%s@%d:%s", p.Name(), p.Now(), what))
		}
		s.Spawn("a", func(p *Proc) {
			log(p, "start")
			p.Advance(10)
			log(p, "mid")
			p.Advance(20)
			log(p, "end")
		})
		s.Spawn("b", func(p *Proc) {
			log(p, "start")
			p.Advance(15)
			log(p, "end")
		})
		if _, err := drive(); err != nil {
			t.Fatal(err)
		}
	}
	s := NewScheduler(1)
	run(0, s, s.Run)
	sh := NewShard(1, 1, time.Microsecond)
	run(1, sh.Lane(0), sh.Run)
	if got, want := strings.Join(traces[1], " "), strings.Join(traces[0], " "); got != want {
		t.Fatalf("lane trace %q != scheduler trace %q", got, want)
	}
}

func TestShardLaneYieldOrdersSameInstantEvents(t *testing.T) {
	// Same-instant Yield/event ordering must hold on coroutine lanes too:
	// an event queued before the Yield runs first.
	sh := NewShard(1, 2, time.Microsecond)
	ln := sh.Lane(1)
	var order []string
	ln.Spawn("p", func(p *Proc) {
		ln.At(p.Now(), func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "proc")
	})
	if _, err := sh.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "event" || order[1] != "proc" {
		t.Fatalf("order = %v", order)
	}
}

func TestShardRouteCrossLane(t *testing.T) {
	sh := NewShard(1, 2, 100*time.Nanosecond)
	var got Time
	var gotLane int
	sh.Lane(0).Spawn("src", func(p *Proc) {
		p.Advance(40)
		p.s.RouteAfter(1, 100, func() {
			got = sh.Lane(1).Now()
			gotLane = 1
		})
		p.Advance(10)
	})
	if _, err := sh.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 140 || gotLane != 1 {
		t.Fatalf("delivery at %v on lane %d, want 140 on lane 1", got, gotLane)
	}
	st := sh.Stats()
	if st.Routed != 1 || st.MailboxHighWater != 1 {
		t.Fatalf("stats = %+v, want Routed=1 HighWater=1", st)
	}
}

func TestShardRouteSameLaneIsLocal(t *testing.T) {
	sh := NewShard(1, 2, 100*time.Nanosecond)
	fired := false
	// Same-lane routes bypass the mailbox entirely, so sub-lookahead
	// delays are fine (node-local hops are not bounded by the lookahead).
	sh.Lane(0).At(0, func() {
		sh.Lane(0).RouteAfter(0, 5, func() { fired = true })
	})
	if _, err := sh.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("same-lane route not delivered")
	}
	if sh.Stats().Routed != 0 {
		t.Fatalf("same-lane route counted as cross-lane: %+v", sh.Stats())
	}
}

func TestStandaloneRouteDegradesToAt(t *testing.T) {
	s := NewScheduler(1)
	fired := Time(-1)
	s.At(0, func() { s.RouteAfter(7, 10, func() { fired = s.Now() }) })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 10 {
		t.Fatalf("fired = %v, want 10", fired)
	}
}

func TestShardLookaheadViolationPanics(t *testing.T) {
	sh := NewShard(1, 2, 100*time.Nanosecond)
	sh.Lane(0).At(0, func() {
		sh.Lane(0).RouteAfter(1, 10, func() {}) // below the 100ns lookahead
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected lookahead-violation panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "lookahead violation") {
			t.Fatalf("panic = %v", r)
		}
	}()
	sh.Run()
}

// --- limits and teardown ---

func TestShardMaxEventsLimit(t *testing.T) {
	sh := NewShard(1, 2, time.Microsecond)
	sh.MaxEvents = 100
	var loop func()
	ln := sh.Lane(0)
	loop = func() { ln.After(1, loop) }
	ln.At(0, loop)
	_, err := sh.Run()
	var le *LimitError
	if !errors.As(err, &le) || le.What != "event" {
		t.Fatalf("err = %v, want event LimitError", err)
	}
}

func TestShardMaxTimeLimit(t *testing.T) {
	sh := NewShard(1, 2, time.Microsecond)
	sh.MaxTime = 50_000
	var loop func()
	ln := sh.Lane(1)
	loop = func() { ln.After(10_000, loop) }
	ln.At(0, loop)
	_, err := sh.Run()
	var le *LimitError
	if !errors.As(err, &le) || le.What != "time" {
		t.Fatalf("err = %v, want time LimitError", err)
	}
}

func TestShardDeadlockDetected(t *testing.T) {
	sh := NewShard(1, 2, time.Microsecond)
	for i := 0; i < 2; i++ {
		ln := sh.Lane(i)
		c := NewCond(ln)
		ln.Spawn(fmt.Sprintf("stuck%d", i), func(p *Proc) { c.Wait(p) })
	}
	_, err := sh.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Parked) != 2 || de.Parked[0] != "stuck0" || de.Parked[1] != "stuck1" {
		t.Fatalf("parked = %v", de.Parked)
	}
	sh.Shutdown()
}

func TestShardShutdownReleasesParkedProcs(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		sh := NewShard(1, 4, time.Microsecond)
		for l := 0; l < 4; l++ {
			ln := sh.Lane(l)
			c := NewCond(ln)
			for j := 0; j < 10; j++ {
				ln.Spawn(fmt.Sprintf("stuck%d.%d", l, j), func(p *Proc) { c.Wait(p) })
			}
		}
		if _, err := sh.Run(); err == nil {
			t.Fatal("expected deadlock")
		}
		sh.Shutdown()
	}
	for i := 0; i < 100 && runtime.NumGoroutine() > before+5; i++ {
		runtime.Gosched()
	}
	if g := runtime.NumGoroutine(); g > before+5 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

// Procs that were spawned but never dispatched (the run hit a limit first)
// must be reaped by Shutdown without their bodies ever running — on both
// kernels.
func TestShutdownNeverDispatchedProcRunsNoUserCode(t *testing.T) {
	t.Run("scheduler", func(t *testing.T) {
		before := runtime.NumGoroutine()
		s := NewScheduler(1)
		s.MaxEvents = 2
		for i := 0; i < 3; i++ {
			s.At(0, func() {})
		}
		ran := false
		s.Spawn("late", func(p *Proc) { ran = true })
		if _, err := s.Run(); err == nil {
			t.Fatal("expected limit error")
		}
		s.Shutdown()
		if ran {
			t.Fatal("never-dispatched proc body ran during Shutdown")
		}
		for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
			runtime.Gosched()
		}
		if g := runtime.NumGoroutine(); g > before {
			t.Fatalf("goroutines leaked: %d before, %d after", before, g)
		}
	})
	t.Run("shard", func(t *testing.T) {
		sh := NewShard(1, 2, time.Microsecond)
		sh.MaxEvents = 2
		// Three same-lane events ahead of the spawn push the lane over its
		// budget before the spawn's dispatch event can run.
		for i := 0; i < 3; i++ {
			sh.Lane(1).At(0, func() {})
		}
		ran := false
		sh.Lane(1).Spawn("late", func(p *Proc) { ran = true })
		if _, err := sh.Run(); err == nil {
			t.Fatal("expected limit error")
		}
		sh.Shutdown()
		if ran {
			t.Fatal("never-dispatched lane proc body ran during Shutdown")
		}
	})
}

// --- allocation-free scheduling ---

// Intra-lane event scheduling must be allocation-free in steady state:
// after pool warmup, Advance (schedule + coroutine dispatch) and FIFO
// reservations allocate nothing, on both kernels.
func TestLaneSchedulingAllocFree(t *testing.T) {
	measure := func(s *Scheduler, drive func() (Time, error)) uint64 {
		f := NewFIFO(s, "link")
		var delta uint64
		s.Spawn("hot", func(p *Proc) {
			for i := 0; i < 1000; i++ { // warm the event pool and heap
				p.Advance(10)
				f.UseAsync(1, nil)
			}
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			for i := 0; i < 5000; i++ {
				p.Advance(10)
				f.UseAsync(1, nil)
			}
			runtime.ReadMemStats(&m1)
			delta = m1.Mallocs - m0.Mallocs
		})
		if _, err := drive(); err != nil {
			t.Fatal(err)
		}
		return delta
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	t.Run("lane", func(t *testing.T) {
		sh := NewShard(1, 1, time.Microsecond)
		if d := measure(sh.Lane(0), sh.Run); d != 0 {
			t.Fatalf("lane steady-state scheduling allocated %d times", d)
		}
	})
	t.Run("scheduler", func(t *testing.T) {
		s := NewScheduler(1)
		if d := measure(s, s.Run); d != 0 {
			t.Fatalf("scheduler steady-state scheduling allocated %d times", d)
		}
	})
}

// --- differential oracle ---

// diffMsg is one recorded delivery: virtual arrival time and payload.
type diffMsg struct {
	t       Time
	payload int
}

// runDiffProgram drives a fixed randomized messaging program — ranks
// advance by rank-seeded random spans and send lookahead-respecting
// messages round-robin while receivers block on conds until their quota
// arrives — and returns the per-channel delivery traces and per-rank
// finish times. The program is written once against the Route API and runs
// unchanged on the single-lane kernel (lanes=0) and on sharded kernels.
func runDiffProgram(t *testing.T, seed int64, ranks, lanes, msgs int, par bool) ([][]diffMsg, []Time) {
	t.Helper()
	const la = 100 * time.Nanosecond

	var scheds []*Scheduler
	var drive func() (Time, error)
	var shutdown func()
	laneOf := make([]int, ranks)
	if lanes == 0 {
		s := NewScheduler(seed)
		drive, shutdown = s.Run, s.Shutdown
		scheds = make([]*Scheduler, ranks)
		for i := range scheds {
			scheds[i] = s
		}
	} else {
		sh := NewShard(seed, lanes, la)
		sh.Parallel = par
		drive, shutdown = sh.Run, sh.Shutdown
		scheds = make([]*Scheduler, ranks)
		for i := range scheds {
			laneOf[i] = i % lanes
			scheds[i] = sh.Lane(laneOf[i])
		}
	}

	// Indexed [src*ranks+dst]: every channel (·,dst) is written only from
	// dst's lane (delivery context), and distinct channels occupy distinct
	// preallocated elements, so parallel lane execution stays race-free.
	traces := make([][]diffMsg, ranks*ranks)
	finish := make([]Time, ranks)
	conds := make([]*Cond, ranks)
	got := make([]int, ranks)
	for i := 0; i < ranks; i++ {
		conds[i] = NewCond(scheds[i])
	}
	for i := 0; i < ranks; i++ {
		i := i
		scheds[i].Spawn(fmt.Sprintf("send%d", i), func(p *Proc) {
			rng := rand.New(rand.NewSource(seed*1000 + int64(i)))
			for k := 0; k < msgs; k++ {
				p.Advance(Duration(rng.Intn(50)))
				dst := (i + k + 1) % ranks
				payload := i*1_000_000 + k
				delay := la + Duration(rng.Intn(100))
				p.s.RouteAfter(laneOf[dst], delay, func() {
					ch := i*ranks + dst
					traces[ch] = append(traces[ch], diffMsg{scheds[dst].Now(), payload})
					got[dst]++
					conds[dst].Signal()
				})
			}
		})
		scheds[i].Spawn(fmt.Sprintf("recv%d", i), func(p *Proc) {
			for got[i] < msgs {
				conds[i].Wait(p)
			}
			finish[i] = p.Now()
		})
	}
	if _, err := drive(); err != nil {
		shutdown()
		t.Fatalf("drive: %v", err)
	}
	return traces, finish
}

// The shard kernel is a refactoring of the single-lane kernel, not a new
// model: the same program must produce identical per-channel delivery
// traces and identical per-rank finish times on the single-lane oracle, on
// 1..N-lane shards run sequentially, and on shards run with parallel lane
// goroutines.
func TestShardDifferentialAgainstSingleLane(t *testing.T) {
	const ranks, msgs = 12, 8
	for _, seed := range []int64{3, 17, 91} {
		wantTr, wantFin := runDiffProgram(t, seed, ranks, 0, msgs, false)
		for _, lanes := range []int{1, 3, 4, 12} {
			gotTr, gotFin := runDiffProgram(t, seed, ranks, lanes, msgs, false)
			for ch := range wantTr {
				want, gotC := wantTr[ch], gotTr[ch]
				if len(gotC) != len(want) {
					t.Fatalf("seed %d lanes %d ch %d: %d msgs, want %d", seed, lanes, ch, len(gotC), len(want))
				}
				for j := range want {
					if gotC[j] != want[j] {
						t.Fatalf("seed %d lanes %d ch %d msg %d: %+v, want %+v", seed, lanes, ch, j, gotC[j], want[j])
					}
				}
			}
			for r := range wantFin {
				if gotFin[r] != wantFin[r] {
					t.Fatalf("seed %d lanes %d rank %d: finish %v, want %v", seed, lanes, r, gotFin[r], wantFin[r])
				}
			}
		}
	}
}

// Sequential and parallel lane execution must be bit-identical: same
// per-channel traces, same finish times, and the same control-plane
// counters (epochs, routed envelopes).
func TestShardParallelBitIdentical(t *testing.T) {
	const ranks, lanes, msgs = 8, 4, 6
	for _, seed := range []int64{5, 23} {
		seqTr, seqFin := runDiffProgram(t, seed, ranks, lanes, msgs, false)
		parTr, parFin := runDiffProgram(t, seed, ranks, lanes, msgs, true)
		for ch := range seqTr {
			want, gotC := seqTr[ch], parTr[ch]
			if len(gotC) != len(want) {
				t.Fatalf("seed %d ch %d: par %d msgs, seq %d", seed, ch, len(gotC), len(want))
			}
			for j := range want {
				if gotC[j] != want[j] {
					t.Fatalf("seed %d ch %d msg %d: par %+v, seq %+v", seed, ch, j, gotC[j], want[j])
				}
			}
		}
		for r := range seqFin {
			if parFin[r] != seqFin[r] {
				t.Fatalf("seed %d rank %d: par finish %v, seq %v", seed, r, parFin[r], seqFin[r])
			}
		}
	}
}

func TestShardStatsAccounting(t *testing.T) {
	const ranks, lanes, msgs = 8, 4, 6
	sh := NewShard(9, lanes, 100*time.Nanosecond)
	for i := 0; i < ranks; i++ {
		i := i
		ln := sh.Lane(i % lanes)
		ln.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < msgs; k++ {
				p.Advance(30)
				p.s.RouteAfter((i%lanes+1)%lanes, 150, func() {})
			}
		})
	}
	if _, err := sh.Run(); err != nil {
		t.Fatal(err)
	}
	st := sh.Stats()
	if st.Lanes != lanes {
		t.Fatalf("Lanes = %d", st.Lanes)
	}
	if st.Routed != uint64(ranks*msgs) {
		t.Fatalf("Routed = %d, want %d", st.Routed, ranks*msgs)
	}
	if st.Epochs == 0 || st.MailboxHighWater == 0 {
		t.Fatalf("stats not counted: %+v", st)
	}
	var sum uint64
	for _, n := range st.LaneEvents {
		sum += n
	}
	if sum != st.Events || sum != sh.Events() {
		t.Fatalf("LaneEvents sum %d, Events %d, sh.Events %d", sum, st.Events, sh.Events())
	}
}

// --- benchmarks ---

// BenchmarkLaneProcSwitch measures the coroutine-based proc switch on a
// shard lane; compare BenchmarkProcSwitch for the channel-based kernel.
func BenchmarkLaneProcSwitch(b *testing.B) {
	sh := NewShard(1, 1, time.Microsecond)
	sh.Lane(0).Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(time.Nanosecond)
		}
	})
	b.ResetTimer()
	if _, err := sh.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLaneCondHandoff measures the Cond wait/signal cycle between two
// coroutine procs on one lane.
func BenchmarkLaneCondHandoff(b *testing.B) {
	sh := NewShard(1, 1, time.Microsecond)
	s := sh.Lane(0)
	c1 := NewCond(s)
	c2 := NewCond(s)
	s.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c1.Wait(p)
			c2.Signal()
		}
	})
	s.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c1.Signal()
			c2.Wait(p)
		}
	})
	b.ResetTimer()
	if _, err := sh.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShardCrossLaneRoute measures the full cross-lane path: stage,
// barrier merge, and destination dispatch, ping-ponging between two lanes.
func BenchmarkShardCrossLaneRoute(b *testing.B) {
	sh := NewShard(1, 2, 100*time.Nanosecond)
	n := 0
	var ping func(lane int)
	ping = func(lane int) {
		n++
		if n < b.N {
			next := 1 - lane
			sh.Lane(lane).RouteAfter(next, 100, func() { ping(next) })
		}
	}
	sh.Lane(0).At(0, func() { ping(0) })
	b.ResetTimer()
	if _, err := sh.Run(); err != nil {
		b.Fatal(err)
	}
}
