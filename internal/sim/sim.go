// Package sim provides a deterministic discrete-event simulation kernel.
//
// A simulation consists of a Scheduler owning a virtual clock and an event
// queue, plus any number of Procs (logical processes). Procs run as
// goroutines, but the kernel enforces that at any instant exactly one of
// {the scheduler, one proc} executes; control is handed off over channels,
// which also provides the happens-before edges that make shared model state
// race-free without locks.
//
// Time is virtual: a Proc consumes time only by calling Advance (modeling
// computation or device occupancy) or by blocking on a Cond/FIFO until some
// event wakes it. Event ordering is (time, sequence), so runs are fully
// deterministic for a given program and seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts directly
// to and from time.Duration.
type Duration = time.Duration

// Microseconds reports t as a floating-point count of microseconds,
// the unit used throughout the paper.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

// Duration reports the span from the zero time to t.
func (t Time) Duration() Duration { return Duration(t) }

func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Microseconds()) }

type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler owns the virtual clock and the event queue.
//
// A Scheduler must be driven by Run (or Step) from the goroutine that
// created it. Event callbacks and Proc bodies may freely schedule further
// events, spawn procs, and signal conditions.
type Scheduler struct {
	now     Time
	events  eventHeap
	seq     uint64
	yield   chan struct{} // proc -> scheduler: parked or finished
	procs   map[*Proc]struct{}
	current *Proc // proc holding the execution token, nil if scheduler
	rng     *rand.Rand
	stopped bool
	// Limits guard against runaway models; zero means no limit.
	MaxEvents uint64
	MaxTime   Time
	nEvents   uint64
}

// NewScheduler returns a Scheduler with the deterministic RNG seeded by seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand exposes the run's deterministic random source. It must only be used
// while holding the execution token (i.e. from proc bodies or event
// callbacks), which all model code does by construction.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at time t (clamped to now). fn runs with the
// execution token held, in scheduler context.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{t: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d Duration, fn func()) { s.At(s.now+Time(d), fn) }

// Proc is a logical process: a goroutine whose execution interleaves with
// events under the scheduler's single execution token.
type Proc struct {
	s      *Scheduler
	name   string
	resume chan struct{}
	state  procState
	done   bool
}

type procState int

const (
	procReady procState = iota
	procRunning
	procParked
	procDone
)

// Name reports the name the proc was spawned with.
func (p *Proc) Name() string { return p.name }

// Scheduler reports the scheduler that owns p.
func (p *Proc) Scheduler() *Scheduler { return p.s }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.s.now }

// Spawn creates a proc named name running fn, starting at the current
// virtual time (after already-queued events at this time).
func (s *Scheduler) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{s: s, name: name, resume: make(chan struct{})}
	s.procs[p] = struct{}{}
	go func() {
		<-p.resume // wait for first dispatch
		fn(p)
		p.state = procDone
		p.done = true
		delete(s.procs, p)
		s.yield <- struct{}{}
	}()
	s.At(s.now, func() { s.dispatch(p) })
	return p
}

// dispatch hands the execution token to p and blocks until p parks or
// finishes. Must be called from scheduler context.
func (s *Scheduler) dispatch(p *Proc) {
	if p.done {
		return
	}
	prev := s.current
	s.current = p
	p.state = procRunning
	p.resume <- struct{}{}
	<-s.yield
	s.current = prev
}

// park gives the execution token back to the scheduler and blocks until the
// proc is dispatched again. Must be called from p's goroutine. If the
// scheduler has been shut down in the meantime, the goroutine exits here
// instead of resuming user code.
func (p *Proc) park() {
	p.state = procParked
	p.s.yield <- struct{}{}
	<-p.resume
	if p.s.stopped {
		p.state = procDone
		p.done = true
		delete(p.s.procs, p)
		p.s.yield <- struct{}{}
		runtime.Goexit()
	}
	p.state = procRunning
}

// Advance consumes d of virtual time: the proc parks and is woken once the
// clock reaches now+d. Negative durations are treated as zero.
func (p *Proc) Advance(d Duration) {
	if d < 0 {
		d = 0
	}
	s := p.s
	s.At(s.now+Time(d), func() { s.dispatch(p) })
	p.park()
}

// Yield parks the proc and reschedules it at the current time, letting
// other events and procs scheduled for this instant run first.
func (p *Proc) Yield() { p.Advance(0) }

// Cond is a virtual-time condition variable. Procs Wait on it; Signal and
// Broadcast wake waiters via zero-delay events, so wakeups are ordered and
// deterministic. There is no spurious wakeup, but as with sync.Cond the
// guarded predicate should be re-checked by the waiter.
type Cond struct {
	s       *Scheduler
	waiters []*Proc
}

// NewCond returns a condition variable bound to s.
func NewCond(s *Scheduler) *Cond { return &Cond{s: s} }

// Wait parks p until a Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting proc, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.s.At(c.s.now, func() { c.s.dispatch(p) })
}

// Broadcast wakes all waiting procs in FIFO order.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		q := p
		c.s.At(c.s.now, func() { c.s.dispatch(q) })
	}
}

// Waiting reports how many procs are blocked on c.
func (c *Cond) Waiting() int { return len(c.waiters) }

// FIFO models a serially-reusable resource: a link, bus, DMA engine, or
// shared medium. Use occupies the resource for a span of virtual time;
// contending users are served in FIFO order.
type FIFO struct {
	s         *Scheduler
	name      string
	busyUntil Time
}

// NewFIFO returns a FIFO resource bound to s.
func NewFIFO(s *Scheduler, name string) *FIFO { return &FIFO{s: s, name: name} }

// Use blocks p until the resource is free, then occupies it for d and
// returns at the completion time.
func (f *FIFO) Use(p *Proc, d Duration) {
	start := f.reserve(d)
	wait := Duration(start - p.s.now + Time(d))
	p.Advance(wait)
}

// UseAsync occupies the resource for d starting as soon as it is free, and
// schedules fn at the completion time. It does not block the caller; it is
// the device-side counterpart of Use and may be called from event context.
// It returns the completion time.
func (f *FIFO) UseAsync(d Duration, fn func()) Time {
	start := f.reserve(d)
	end := start + Time(d)
	if fn != nil {
		f.s.At(end, fn)
	}
	return end
}

// reserve allocates the next available slot of length d and returns its
// start time.
func (f *FIFO) reserve(d Duration) Time {
	start := f.s.now
	if f.busyUntil > start {
		start = f.busyUntil
	}
	f.busyUntil = start + Time(d)
	return start
}

// BusyUntil reports the time at which currently reserved work completes.
func (f *FIFO) BusyUntil() Time { return f.busyUntil }

// ExtendBusy marks the resource occupied until t (if later than its
// current horizon). Used for joint multi-resource reservations (wormhole
// circuits), where a path of resources is held for one span together.
func (f *FIFO) ExtendBusy(t Time) {
	if t > f.busyUntil {
		f.busyUntil = t
	}
}

// DeadlockError reports that the event queue drained while procs were
// still parked.
type DeadlockError struct {
	At     Time
	Parked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: parked procs %v", e.At, e.Parked)
}

// LimitError reports that an execution limit was exceeded.
type LimitError struct {
	At     Time
	Events uint64
	What   string
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("sim: %s limit exceeded at %v after %d events", e.What, e.At, e.Events)
}

// Step runs the single earliest pending event. It reports false when the
// queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.t
	s.nEvents++
	e.fn()
	return true
}

// Run drives the simulation until the event queue drains. It returns the
// final virtual time. If procs remain parked when the queue drains, Run
// returns a *DeadlockError; if a configured limit is exceeded it returns a
// *LimitError.
func (s *Scheduler) Run() (Time, error) {
	for s.Step() {
		if s.MaxEvents != 0 && s.nEvents > s.MaxEvents {
			return s.now, &LimitError{At: s.now, Events: s.nEvents, What: "event"}
		}
		if s.MaxTime != 0 && s.now > s.MaxTime {
			return s.now, &LimitError{At: s.now, Events: s.nEvents, What: "time"}
		}
	}
	if len(s.procs) != 0 {
		var names []string
		for p := range s.procs {
			names = append(names, p.name)
		}
		sort.Strings(names)
		return s.now, &DeadlockError{At: s.now, Parked: names}
	}
	return s.now, nil
}

// Events reports how many events have executed.
func (s *Scheduler) Events() uint64 { return s.nEvents }

// Shutdown terminates every parked proc goroutine (they exit inside park
// without running further user code). Call after Run returns an error
// (deadlock, limit) to avoid leaking goroutines; a clean Run has nothing
// left to stop.
func (s *Scheduler) Shutdown() {
	s.stopped = true
	for len(s.procs) > 0 {
		var p *Proc
		for q := range s.procs {
			p = q
			break
		}
		// Wake the proc; park observes stopped and exits the goroutine.
		p.resume <- struct{}{}
		<-s.yield
	}
}
