// Package sim provides a deterministic discrete-event simulation kernel.
//
// A simulation consists of a Scheduler owning a virtual clock and an event
// queue, plus any number of Procs (logical processes). Procs run as
// goroutines, but the kernel enforces that at any instant exactly one of
// {the scheduler, one proc} executes; control is handed off over channels,
// which also provides the happens-before edges that make shared model state
// race-free without locks.
//
// Time is virtual: a Proc consumes time only by calling Advance (modeling
// computation or device occupancy) or by blocking on a Cond/FIFO until some
// event wakes it. Event ordering is (time, sequence), so runs are fully
// deterministic for a given program and seed.
//
// Two kernels share this machinery. The default single-lane kernel above is
// the reference: one Scheduler, one event queue, channel handoffs. The
// sharded kernel (see Shard) partitions a world into per-node lanes — each
// lane is a Scheduler in its own right — synchronized by a conservative
// lookahead barrier; lane procs switch on runtime coroutines (iter.Pull)
// instead of channels, which removes the goroutine round-trip per switch.
// Scheduling is allocation-free in both: events are pooled on an intrusive
// freelist and proc wakeups are typed events, not closures.
package sim

import (
	"fmt"
	"iter"
	"math/rand"
	"runtime"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts directly
// to and from time.Duration.
type Duration = time.Duration

// Microseconds reports t as a floating-point count of microseconds,
// the unit used throughout the paper.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

// Duration reports the span from the zero time to t.
func (t Time) Duration() Duration { return Duration(t) }

func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Microseconds()) }

// event is one queue entry: either a callback (fn) or a proc wakeup (proc).
// Proc wakeups carry the proc pointer instead of a closure so the Advance/
// Cond/FIFO hot paths schedule without allocating. Recycled events chain
// through next on the scheduler's freelist.
type event struct {
	t    Time
	seq  uint64
	fn   func()
	proc *Proc
	next *event // freelist link while recycled
}

// eventQueue is a binary min-heap over (t, seq), hand-rolled so push/pop
// stay monomorphic: no interface boxing, no container/heap indirection, and
// the backing slice is reused for the life of the scheduler.
type eventQueue []*event

func (q eventQueue) less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e *event) {
	h := append(*q, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*q = h
}

func (q *eventQueue) pop() *event {
	h := *q
	n := len(h) - 1
	e := h[0]
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return e
}

// Scheduler owns the virtual clock and the event queue.
//
// A Scheduler must be driven by Run (or Step) from the goroutine that
// created it. Event callbacks and Proc bodies may freely schedule further
// events, spawn procs, and signal conditions.
//
// A Scheduler may also be one lane of a Shard (see NewShard), in which case
// it is driven by the shard's epoch loop instead of Run, and cross-lane
// events go through Route.
type Scheduler struct {
	now     Time
	events  eventQueue
	free    *event // event freelist (intrusive, via event.next)
	seq     uint64
	yield   chan struct{} // proc -> scheduler: parked or finished
	procs   map[*Proc]struct{}
	current *Proc // proc holding the execution token, nil if scheduler
	rng     *rand.Rand
	stopped bool
	coro    bool // lane mode: procs switch on coroutines, not channels
	// Limits guard against runaway models; zero means no limit.
	MaxEvents uint64
	MaxTime   Time
	nEvents   uint64

	// Lane wiring; zero-valued for a standalone scheduler.
	shard  *Shard
	lane   int
	xseq   uint64  // staging order of cross-lane sends from this lane
	outbox []*xmsg // cross-lane sends staged until the epoch barrier
	xfree  *xmsg   // mailbox envelope freelist
	window Time    // current epoch horizon (lane mode; events < window run)
}

// NewScheduler returns a Scheduler with the deterministic RNG seeded by seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand exposes the run's deterministic random source. It must only be used
// while holding the execution token (i.e. from proc bodies or event
// callbacks), which all model code does by construction. Each lane of a
// shard has its own stream.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// LaneID reports which shard lane this scheduler is, or -1 for a standalone
// (single-lane kernel) scheduler.
func (s *Scheduler) LaneID() int {
	if s.shard == nil {
		return -1
	}
	return s.lane
}

// Shard reports the shard this scheduler is a lane of, or nil.
func (s *Scheduler) Shard() *Shard { return s.shard }

// alloc draws a recycled event or grows the pool by one.
func (s *Scheduler) alloc() *event {
	e := s.free
	if e == nil {
		return &event{}
	}
	s.free = e.next
	e.next = nil
	return e
}

// release recycles e onto the freelist. Callers must have copied out any
// fields they still need.
func (s *Scheduler) release(e *event) {
	e.fn, e.proc = nil, nil
	e.next = s.free
	s.free = e
}

func (s *Scheduler) schedule(t Time, fn func(), p *Proc) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := s.alloc()
	e.t, e.seq, e.fn, e.proc = t, s.seq, fn, p
	s.events.push(e)
}

// At schedules fn to run at time t (clamped to now). fn runs with the
// execution token held, in scheduler context.
func (s *Scheduler) At(t Time, fn func()) { s.schedule(t, fn, nil) }

// After schedules fn to run d from now.
func (s *Scheduler) After(d Duration, fn func()) { s.At(s.now+Time(d), fn) }

// atProc schedules a proc wakeup without allocating a closure.
func (s *Scheduler) atProc(t Time, p *Proc) { s.schedule(t, nil, p) }

// Proc is a logical process: a goroutine whose execution interleaves with
// events under the scheduler's single execution token. On a standalone
// scheduler the handoff is a channel pair; on a shard lane it is a runtime
// coroutine switch (iter.Pull), which is several times cheaper.
type Proc struct {
	s     *Scheduler
	name  string
	state procState
	done  bool

	// Channel kernel.
	resume chan struct{}

	// Coroutine kernel.
	next    func() (struct{}, bool)
	stop    func()
	yieldTo func(struct{}) bool
}

type procState int

const (
	procReady procState = iota
	procRunning
	procParked
	procDone
)

// procStopped is the panic sentinel that unwinds a coroutine proc during
// Shutdown without running further user code.
type procStopped struct{}

// Name reports the name the proc was spawned with.
func (p *Proc) Name() string { return p.name }

// Scheduler reports the scheduler that owns p.
func (p *Proc) Scheduler() *Scheduler { return p.s }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.s.now }

// Spawn creates a proc named name running fn, starting at the current
// virtual time (after already-queued events at this time).
func (s *Scheduler) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{s: s, name: name}
	s.procs[p] = struct{}{}
	if s.coro {
		p.next, p.stop = iter.Pull(func(yield func(struct{}) bool) {
			p.yieldTo = yield
			defer func() {
				p.state = procDone
				p.done = true
				delete(s.procs, p)
				if r := recover(); r != nil {
					if _, ok := r.(procStopped); !ok {
						panic(r)
					}
				}
			}()
			fn(p)
		})
	} else {
		p.resume = make(chan struct{})
		go func() {
			<-p.resume // wait for first dispatch
			if s.stopped {
				// Shut down before ever running: exit without user code.
				p.state = procDone
				p.done = true
				delete(s.procs, p)
				s.yield <- struct{}{}
				return
			}
			fn(p)
			p.state = procDone
			p.done = true
			delete(s.procs, p)
			s.yield <- struct{}{}
		}()
	}
	s.atProc(s.now, p)
	return p
}

// dispatch hands the execution token to p and blocks until p parks or
// finishes. Must be called from scheduler context.
func (s *Scheduler) dispatch(p *Proc) {
	if p.done {
		return
	}
	prev := s.current
	s.current = p
	p.state = procRunning
	if s.coro {
		p.next()
	} else {
		p.resume <- struct{}{}
		<-s.yield
	}
	s.current = prev
}

// park gives the execution token back to the scheduler and blocks until the
// proc is dispatched again. Must be called from p's goroutine. If the
// scheduler has been shut down in the meantime, the goroutine exits here
// instead of resuming user code.
func (p *Proc) park() {
	p.state = procParked
	s := p.s
	if s.coro {
		if !p.yieldTo(struct{}{}) {
			// Shutdown stopped the coroutine: unwind without user code.
			panic(procStopped{})
		}
	} else {
		s.yield <- struct{}{}
		<-p.resume
		if s.stopped {
			p.state = procDone
			p.done = true
			delete(s.procs, p)
			s.yield <- struct{}{}
			runtime.Goexit()
		}
	}
	p.state = procRunning
}

// Advance consumes d of virtual time: the proc parks and is woken once the
// clock reaches now+d. Negative durations are treated as zero.
func (p *Proc) Advance(d Duration) {
	if d < 0 {
		d = 0
	}
	s := p.s
	s.atProc(s.now+Time(d), p)
	p.park()
}

// Yield parks the proc and reschedules it at the current time, letting
// other events and procs scheduled for this instant run first.
func (p *Proc) Yield() { p.Advance(0) }

// Cond is a virtual-time condition variable. Procs Wait on it; Signal and
// Broadcast wake waiters via zero-delay events, so wakeups are ordered and
// deterministic. There is no spurious wakeup, but as with sync.Cond the
// guarded predicate should be re-checked by the waiter.
type Cond struct {
	s       *Scheduler
	waiters []*Proc
	head    int // index of the longest waiter; avoids O(n) head shifts
}

// NewCond returns a condition variable bound to s.
func NewCond(s *Scheduler) *Cond { return &Cond{s: s} }

// Wait parks p until a Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting proc, if any. It runs in O(1): the wait
// queue keeps a head index instead of shifting the slice — Signal sits on
// the wakeup path of every credit and slot stall.
func (c *Cond) Signal() {
	if c.head == len(c.waiters) {
		return
	}
	p := c.waiters[c.head]
	c.waiters[c.head] = nil
	c.head++
	if c.head == len(c.waiters) {
		c.waiters = c.waiters[:0]
		c.head = 0
	} else if c.head >= 32 && c.head*2 >= len(c.waiters) {
		// Compact so a never-drained queue cannot grow without bound.
		n := copy(c.waiters, c.waiters[c.head:])
		clear(c.waiters[n:])
		c.waiters = c.waiters[:n]
		c.head = 0
	}
	c.s.atProc(c.s.now, p)
}

// Broadcast wakes all waiting procs in FIFO order.
func (c *Cond) Broadcast() {
	for i := c.head; i < len(c.waiters); i++ {
		c.s.atProc(c.s.now, c.waiters[i])
		c.waiters[i] = nil
	}
	c.waiters = c.waiters[:0]
	c.head = 0
}

// Waiting reports how many procs are blocked on c.
func (c *Cond) Waiting() int { return len(c.waiters) - c.head }

// FIFO models a serially-reusable resource: a link, bus, DMA engine, or
// shared medium. Use occupies the resource for a span of virtual time;
// contending users are served in FIFO order. In a sharded world a FIFO
// belongs to the lane of the scheduler it was built on — media pin each
// node's FIFOs to that node's lane so reservations stay lane-local.
type FIFO struct {
	s         *Scheduler
	name      string
	busyUntil Time
}

// NewFIFO returns a FIFO resource bound to s.
func NewFIFO(s *Scheduler, name string) *FIFO { return &FIFO{s: s, name: name} }

// Use blocks p until the resource is free, then occupies it for d and
// returns at the completion time.
func (f *FIFO) Use(p *Proc, d Duration) {
	start := f.reserve(d)
	wait := Duration(start - p.s.now + Time(d))
	p.Advance(wait)
}

// UseAsync occupies the resource for d starting as soon as it is free, and
// schedules fn at the completion time. It does not block the caller; it is
// the device-side counterpart of Use and may be called from event context.
// It returns the completion time.
func (f *FIFO) UseAsync(d Duration, fn func()) Time {
	start := f.reserve(d)
	end := start + Time(d)
	if fn != nil {
		f.s.At(end, fn)
	}
	return end
}

// reserve allocates the next available slot of length d and returns its
// start time.
func (f *FIFO) reserve(d Duration) Time {
	start := f.s.now
	if f.busyUntil > start {
		start = f.busyUntil
	}
	f.busyUntil = start + Time(d)
	return start
}

// ReserveAt allocates the next slot of length d with the queueing clock
// floored at t0 instead of the scheduler's now, and returns the completion
// time. Stages use it when processing a request after the instant it was
// stamped (see Stage): FIFO arithmetic depends only on the stamp and the
// resource horizon, so a deferred reservation queues exactly as an
// immediate one would have.
func (f *FIFO) ReserveAt(t0 Time, d Duration) Time {
	start := t0
	if f.busyUntil > start {
		start = f.busyUntil
	}
	f.busyUntil = start + Time(d)
	return f.busyUntil
}

// BusyUntil reports the time at which currently reserved work completes.
func (f *FIFO) BusyUntil() Time { return f.busyUntil }

// ExtendBusy marks the resource occupied until t (if later than its
// current horizon). Used for joint multi-resource reservations (wormhole
// circuits), where a path of resources is held for one span together.
func (f *FIFO) ExtendBusy(t Time) {
	if t > f.busyUntil {
		f.busyUntil = t
	}
}

// DeadlockError reports that the event queue drained while procs were
// still parked.
type DeadlockError struct {
	At     Time
	Parked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: parked procs %v", e.At, e.Parked)
}

// LimitError reports that an execution limit was exceeded.
type LimitError struct {
	At     Time
	Events uint64
	What   string
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("sim: %s limit exceeded at %v after %d events", e.What, e.At, e.Events)
}

// runEvent executes one popped event: the event is recycled before its
// payload runs, so a chain of self-rescheduling events reuses one node.
func (s *Scheduler) runEvent(e *event) {
	s.now = e.t
	s.nEvents++
	fn, p := e.fn, e.proc
	s.release(e)
	if p != nil {
		s.dispatch(p)
	} else {
		fn()
	}
}

// Step runs the single earliest pending event. It reports false when the
// queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	s.runEvent(s.events.pop())
	return true
}

// Run drives the simulation until the event queue drains. It returns the
// final virtual time. If procs remain parked when the queue drains, Run
// returns a *DeadlockError; if a configured limit is exceeded it returns a
// *LimitError. Lanes of a shard are driven by Shard.Run instead.
func (s *Scheduler) Run() (Time, error) {
	if s.shard != nil {
		panic("sim: lane schedulers are driven by Shard.Run, not Scheduler.Run")
	}
	for s.Step() {
		if s.MaxEvents != 0 && s.nEvents > s.MaxEvents {
			return s.now, &LimitError{At: s.now, Events: s.nEvents, What: "event"}
		}
		if s.MaxTime != 0 && s.now > s.MaxTime {
			return s.now, &LimitError{At: s.now, Events: s.nEvents, What: "time"}
		}
	}
	if len(s.procs) != 0 {
		var names []string
		for p := range s.procs {
			names = append(names, p.name)
		}
		sort.Strings(names)
		return s.now, &DeadlockError{At: s.now, Parked: names}
	}
	return s.now, nil
}

// Events reports how many events have executed.
func (s *Scheduler) Events() uint64 { return s.nEvents }

// Shutdown terminates every parked proc goroutine (they exit inside park
// without running further user code; procs spawned but never dispatched
// exit without running any user code at all). Call after Run returns an
// error (deadlock, limit) to avoid leaking goroutines; a clean Run has
// nothing left to stop. Shutdown is linear in the number of procs: the
// survivors are collected once, then each is woken exactly once — procs
// remove themselves from the table as they exit.
func (s *Scheduler) Shutdown() {
	s.stopped = true
	ps := make([]*Proc, 0, len(s.procs))
	for p := range s.procs {
		ps = append(ps, p)
	}
	for _, p := range ps {
		if p.done {
			continue
		}
		if s.coro {
			// stop resumes the suspended coroutine with yield -> false;
			// park unwinds it without user code. A proc that was never
			// dispatched never runs at all.
			p.stop()
			p.done = true
			p.state = procDone
			delete(s.procs, p)
		} else {
			p.resume <- struct{}{}
			<-s.yield
		}
	}
}
