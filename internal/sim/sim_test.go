package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestAdvanceAccumulates(t *testing.T) {
	s := NewScheduler(1)
	var end Time
	s.Spawn("p", func(p *Proc) {
		p.Advance(10 * time.Microsecond)
		p.Advance(5 * time.Microsecond)
		end = p.Now()
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Time(15 * time.Microsecond); end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestAdvanceNegativeIsZero(t *testing.T) {
	s := NewScheduler(1)
	s.Spawn("p", func(p *Proc) {
		p.Advance(-time.Second)
		if p.Now() != 0 {
			t.Errorf("now = %v after negative advance", p.Now())
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() []int {
		s := NewScheduler(7)
		var order []int
		// Same timestamp: must run in scheduling order.
		for i := 0; i < 10; i++ {
			i := i
			s.At(100, func() { order = append(order, i) })
		}
		s.At(50, func() { order = append(order, -1) })
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 11 || a[0] != -1 {
		t.Fatalf("order = %v", a)
	}
	for i := 1; i < len(a); i++ {
		if a[i] != i-1 {
			t.Fatalf("same-time events out of scheduling order: %v", a)
		}
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order: %v vs %v", a, b)
		}
	}
}

func TestAtClampsToPast(t *testing.T) {
	s := NewScheduler(1)
	var fired Time
	s.At(100, func() {
		s.At(10, func() { fired = s.Now() }) // in the past: clamp to 100
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 100 {
		t.Fatalf("past event fired at %v, want 100", fired)
	}
}

func TestInterleavingTwoProcs(t *testing.T) {
	s := NewScheduler(1)
	var trace []string
	log := func(p *Proc, what string) {
		trace = append(trace, fmt.Sprintf("%s@%d:%s", p.Name(), p.Now(), what))
	}
	s.Spawn("a", func(p *Proc) {
		log(p, "start")
		p.Advance(10)
		log(p, "mid")
		p.Advance(20)
		log(p, "end") // t=30
	})
	s.Spawn("b", func(p *Proc) {
		log(p, "start")
		p.Advance(15)
		log(p, "end") // t=15
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@0:start", "b@0:start", "a@10:mid", "b@15:end", "a@30:end"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %s, want %s (full: %v)", i, trace[i], want[i], trace)
		}
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	s := NewScheduler(1)
	c := NewCond(s)
	var woke []string
	for _, name := range []string{"p0", "p1", "p2"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			c.Wait(p)
			woke = append(woke, name)
		})
	}
	s.At(10, func() { c.Signal() })
	s.At(20, func() { c.Signal() })
	s.At(30, func() { c.Signal() })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 || woke[0] != "p0" || woke[1] != "p1" || woke[2] != "p2" {
		t.Fatalf("wake order = %v", woke)
	}
}

func TestCondBroadcast(t *testing.T) {
	s := NewScheduler(1)
	c := NewCond(s)
	n := 0
	for i := 0; i < 5; i++ {
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			c.Wait(p)
			n++
		})
	}
	s.At(5, func() {
		if c.Waiting() != 5 {
			t.Errorf("Waiting = %d, want 5", c.Waiting())
		}
		c.Broadcast()
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("woke %d, want 5", n)
	}
}

func TestCondSignalEmptyIsNoop(t *testing.T) {
	s := NewScheduler(1)
	c := NewCond(s)
	s.At(1, func() { c.Signal(); c.Broadcast() })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := NewScheduler(1)
	c := NewCond(s)
	s.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	_, err := s.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Parked) != 1 || de.Parked[0] != "stuck" {
		t.Fatalf("parked = %v", de.Parked)
	}
}

func TestFIFOSerializes(t *testing.T) {
	s := NewScheduler(1)
	f := NewFIFO(s, "link")
	var ends []Time
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			f.Use(p, 10)
			ends = append(ends, p.Now())
		})
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	want := []Time{10, 20, 30}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestFIFOUseAsync(t *testing.T) {
	s := NewScheduler(1)
	f := NewFIFO(s, "dma")
	var done []Time
	s.At(0, func() {
		f.UseAsync(10, func() { done = append(done, s.Now()) })
		end := f.UseAsync(5, func() { done = append(done, s.Now()) })
		if end != 15 {
			t.Errorf("second completion = %v, want 15", end)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 || done[0] != 10 || done[1] != 15 {
		t.Fatalf("done = %v", done)
	}
}

func TestFIFOIdleThenReuse(t *testing.T) {
	s := NewScheduler(1)
	f := NewFIFO(s, "bus")
	var end Time
	s.Spawn("u", func(p *Proc) {
		f.Use(p, 10) // 0..10
		p.Advance(100)
		f.Use(p, 10) // idle gap: 110..120
		end = p.Now()
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 120 {
		t.Fatalf("end = %v, want 120", end)
	}
}

func TestSpawnFromProc(t *testing.T) {
	s := NewScheduler(1)
	var childEnd Time
	s.Spawn("parent", func(p *Proc) {
		p.Advance(10)
		s.Spawn("child", func(q *Proc) {
			q.Advance(5)
			childEnd = q.Now()
		})
		p.Advance(100)
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childEnd != 15 {
		t.Fatalf("child end = %v, want 15", childEnd)
	}
}

func TestYieldLetsSameTimeEventsRun(t *testing.T) {
	s := NewScheduler(1)
	var order []string
	s.Spawn("p", func(p *Proc) {
		s.At(p.Now(), func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "proc")
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "event" || order[1] != "proc" {
		t.Fatalf("order = %v", order)
	}
}

func TestMaxEventsLimit(t *testing.T) {
	s := NewScheduler(1)
	s.MaxEvents = 100
	var loop func()
	loop = func() { s.After(1, loop) }
	s.At(0, loop)
	_, err := s.Run()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LimitError", err)
	}
}

func TestMaxTimeLimit(t *testing.T) {
	s := NewScheduler(1)
	s.MaxTime = 50
	var loop func()
	loop = func() { s.After(10, loop) }
	s.At(0, loop)
	_, err := s.Run()
	var le *LimitError
	if !errors.As(err, &le) || le.What != "time" {
		t.Fatalf("err = %v, want time LimitError", err)
	}
}

func TestRunReturnsFinalTime(t *testing.T) {
	s := NewScheduler(1)
	s.Spawn("p", func(p *Proc) { p.Advance(12345) })
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 12345 {
		t.Fatalf("end = %v, want 12345", end)
	}
}

func TestDeterministicRand(t *testing.T) {
	draw := func() []int64 {
		s := NewScheduler(42)
		var out []int64
		s.At(0, func() {
			for i := 0; i < 5; i++ {
				out = append(out, s.Rand().Int63())
			}
		})
		s.Run()
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rand not deterministic: %v vs %v", a, b)
		}
	}
}

// Property: for any set of FIFO jobs submitted at time zero, the completions
// are exactly the prefix sums of the durations (pure serialization).
func TestFIFOPrefixSumProperty(t *testing.T) {
	prop := func(durs []uint16) bool {
		if len(durs) > 50 {
			durs = durs[:50]
		}
		s := NewScheduler(1)
		f := NewFIFO(s, "r")
		got := make([]Time, 0, len(durs))
		s.At(0, func() {
			for _, d := range durs {
				f.UseAsync(Duration(d), nil)
			}
		})
		s.Run()
		var sum Time
		for _, d := range durs {
			sum += Time(d)
		}
		_ = got
		return f.BusyUntil() == sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: two interleaved advancing procs always finish at the sum of
// their own advances, independent of the other proc.
func TestAdvanceIndependenceProperty(t *testing.T) {
	prop := func(a, b []uint16) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		s := NewScheduler(1)
		var endA, endB Time
		s.Spawn("a", func(p *Proc) {
			for _, d := range a {
				p.Advance(Duration(d))
			}
			endA = p.Now()
		})
		s.Spawn("b", func(p *Proc) {
			for _, d := range b {
				p.Advance(Duration(d))
			}
			endB = p.Now()
		})
		if _, err := s.Run(); err != nil {
			return false
		}
		var sa, sb Time
		for _, d := range a {
			sa += Time(d)
		}
		for _, d := range b {
			sb += Time(d)
		}
		return endA == sa && endB == sb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeMicroseconds(t *testing.T) {
	if us := Time(1500).Microseconds(); us != 1.5 {
		t.Fatalf("Microseconds = %v, want 1.5", us)
	}
	if s := Time(2500).String(); s != "2.500us" {
		t.Fatalf("String = %q", s)
	}
	if d := Time(42).Duration(); d != 42 {
		t.Fatalf("Duration = %v", d)
	}
}

func TestShutdownReleasesParkedProcs(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		s := NewScheduler(1)
		c := NewCond(s)
		for j := 0; j < 10; j++ {
			s.Spawn(fmt.Sprintf("stuck%d", j), func(p *Proc) { c.Wait(p) })
		}
		if _, err := s.Run(); err == nil {
			t.Fatal("expected deadlock")
		}
		s.Shutdown()
	}
	// Give exited goroutines a moment to be reaped.
	for i := 0; i < 100 && runtime.NumGoroutine() > before+5; i++ {
		runtime.Gosched()
	}
	if g := runtime.NumGoroutine(); g > before+5 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

func TestShutdownAfterCleanRunIsNoop(t *testing.T) {
	s := NewScheduler(1)
	s.Spawn("p", func(p *Proc) { p.Advance(10) })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Shutdown() // nothing parked: must not hang
}
