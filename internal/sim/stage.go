package sim

// Stage models a contended resource shared by the whole world — a switch
// stage, a shared wire segment — as a lane-routable object: the resource's
// state (FIFOs, counters, RNG draws) lives on one home lane, requests from
// any lane detour to that lane deterministically, and completions route
// back out to the destination's lane. On a standalone scheduler every hop
// degrades to an inline call or a plain timer, so single-lane behavior is
// bit-identical to a direct implementation.
//
// The protocol is detour-and-backdate. Request stamps the requester's
// current time t0 and runs the processing callback on the home lane at
// t0 + ε, where ε is the shard's lookahead (zero when standalone, so the
// callback runs inline). Every requester — including one already on the
// home lane — pays the same ε detour, so processing order on the home lane
// equals stamp order: requests stamped earlier are processed earlier, and
// same-instant requests are processed in the deterministic merge order
// (srcLane, srcSeq), which block-mapped worlds make rank order. Inside the
// callback the model reserves its FIFOs *backdated to t0* (FIFO.ReserveAt,
// ExtendBusy from a t0-floored start): queueing arithmetic depends only on
// the stamp and the resource horizon, so the deferred processing computes
// the same occupancy the single-lane kernel computes inline.
//
// Safety: the entry detour lands at t0 + ε, which is always at or beyond
// the sending epoch's horizon (a sender executing inside the window has
// t0 >= T0, so t0 + ε >= T0 + lookahead = H). The exit hop must itself
// clear the horizon of the epoch that processes the request, which holds
// whenever the modeled span from stamp to exit is at least 2ε — media
// validate that bound at construction.
type Stage struct {
	home *Scheduler
	eps  Time // entry detour: the shard lookahead, 0 standalone
}

// NewStage builds a stage homed on the given scheduler (the lane that owns
// the resource's state; lane 0 by convention for world-global resources).
func NewStage(home *Scheduler) *Stage {
	st := &Stage{home: home}
	if home.shard != nil {
		st.eps = home.shard.lookahead
	}
	return st
}

// Home reports the scheduler owning the stage's state. Processing
// callbacks run in its context; local completion timers belong on it.
func (st *Stage) Home() *Scheduler { return st.home }

// Request enters the stage from src's lane context: process runs on the
// home lane with the requester's stamp t0. Standalone, it runs inline
// (t0 = now); sharded, it runs at t0 + lookahead after the deterministic
// merge. process must touch only home-lane state and must backdate its
// reservations to t0.
func (st *Stage) Request(src *Scheduler, process func(t0 Time)) {
	t0 := src.now
	if st.eps == 0 {
		process(t0)
		return
	}
	src.Route(st.home.lane, t0+st.eps, func() { process(t0) })
}

// Exit leaves the stage: fn runs at t on dstLane. Called from the
// processing callback (home-lane context); t must be at or beyond the
// processing epoch's horizon, which the construction-time span bound
// guarantees.
func (st *Stage) Exit(dstLane int, t Time, fn func()) {
	st.home.Route(dstLane, t, fn)
}

// At schedules a home-lane-local event (wire completions, counter decay)
// from the processing callback.
func (st *Stage) At(t Time, fn func()) { st.home.At(t, fn) }
