// Package trace records message-level timelines from MPI runs: one event
// per protocol action (send start, envelope arrival, match, data landing,
// completion), timestamped in virtual time. It backs the library's
// profiling interface (the MPI standard names one; the paper's analysis of
// where each microsecond goes is exactly what these timelines show) and
// the cmd/trace visualizer.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Kind classifies a timeline event.
type Kind uint8

const (
	SendStart Kind = iota
	SendDone
	RecvPost
	Arrive
	Match
	RecvDone
	CollectiveStart
	CollectiveDone
)

func (k Kind) String() string {
	switch k {
	case SendStart:
		return "send-start"
	case SendDone:
		return "send-done"
	case RecvPost:
		return "recv-post"
	case Arrive:
		return "arrive"
	case Match:
		return "match"
	case RecvDone:
		return "recv-done"
	case CollectiveStart:
		return "coll-start"
	case CollectiveDone:
		return "coll-done"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one timeline record.
type Event struct {
	T     sim.Time
	Rank  int
	Kind  Kind
	Peer  int // source or destination rank; -1 when not applicable
	Tag   int
	Bytes int
	Note  string
}

// Log collects events from all ranks of a run. It is safe for the
// single-token simulation (no concurrent writers) but guards with a mutex
// anyway so host-side readers may inspect it after Run returns.
type Log struct {
	mu     sync.Mutex
	events []Event
	// Cap bounds memory; 0 means unlimited. Once exceeded, further
	// events are dropped and Dropped counts them.
	Cap     int
	Dropped int
}

// Add appends an event.
func (l *Log) Add(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.Cap > 0 && len(l.events) >= l.Cap {
		l.Dropped++
		return
	}
	l.events = append(l.events, e)
}

// Events returns a copy of the log ordered by (time, insertion).
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// MessageStats summarizes per-(src,dst) traffic.
type MessageStats struct {
	Messages int
	Bytes    int
	// MatchLatency sums arrival->match delay; divide by Matched for mean.
	MatchLatency sim.Duration
	Matched      int
}

// Stats aggregates the log into a (src -> dst -> stats) table using
// send-start events for counts and arrive/match pairs for latency.
func (l *Log) Stats() map[int]map[int]*MessageStats {
	out := map[int]map[int]*MessageStats{}
	get := func(src, dst int) *MessageStats {
		m, ok := out[src]
		if !ok {
			m = map[int]*MessageStats{}
			out[src] = m
		}
		s, ok := m[dst]
		if !ok {
			s = &MessageStats{}
			m[dst] = s
		}
		return s
	}
	type key struct{ rank, peer, tag int }
	arrivals := map[key][]sim.Time{}
	for _, e := range l.Events() {
		switch e.Kind {
		case SendStart:
			s := get(e.Rank, e.Peer)
			s.Messages++
			s.Bytes += e.Bytes
		case Arrive:
			k := key{e.Rank, e.Peer, e.Tag}
			arrivals[k] = append(arrivals[k], e.T)
		case Match:
			k := key{e.Rank, e.Peer, e.Tag}
			if q := arrivals[k]; len(q) > 0 {
				s := get(e.Peer, e.Rank)
				s.MatchLatency += sim.Duration(e.T - q[0])
				s.Matched++
				arrivals[k] = q[1:]
			}
		}
	}
	return out
}

// Timeline renders the log as an aligned text timeline.
func (l *Log) Timeline() string {
	var b strings.Builder
	for _, e := range l.Events() {
		fmt.Fprintf(&b, "%12.2fus  rank%-2d %-11s", e.T.Microseconds(), e.Rank, e.Kind)
		if e.Peer >= 0 {
			fmt.Fprintf(&b, " peer=%-2d", e.Peer)
		}
		if e.Bytes > 0 {
			fmt.Fprintf(&b, " %dB", e.Bytes)
		}
		if e.Tag != 0 {
			fmt.Fprintf(&b, " tag=%d", e.Tag)
		}
		if e.Note != "" {
			fmt.Fprintf(&b, " (%s)", e.Note)
		}
		b.WriteByte('\n')
	}
	if l.Dropped > 0 {
		fmt.Fprintf(&b, "  ... %d events dropped (cap %d)\n", l.Dropped, l.Cap)
	}
	return b.String()
}
