package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestLogOrderAndTimeline(t *testing.T) {
	var l Log
	l.Add(Event{T: 30, Rank: 1, Kind: Arrive, Peer: 0, Tag: 5, Bytes: 10})
	l.Add(Event{T: 10, Rank: 0, Kind: SendStart, Peer: 1, Tag: 5, Bytes: 10, Note: "standard"})
	l.Add(Event{T: 40, Rank: 1, Kind: Match, Peer: 0, Tag: 5, Bytes: 10})
	evs := l.Events()
	if len(evs) != 3 || evs[0].Kind != SendStart || evs[2].Kind != Match {
		t.Fatalf("events out of order: %+v", evs)
	}
	out := l.Timeline()
	for _, want := range []string{"send-start", "arrive", "match", "rank0", "rank1", "standard"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestLogCap(t *testing.T) {
	l := Log{Cap: 2}
	for i := 0; i < 5; i++ {
		l.Add(Event{T: 1})
	}
	if l.Len() != 2 || l.Dropped != 3 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped)
	}
	if !strings.Contains(l.Timeline(), "3 events dropped") {
		t.Fatal("timeline does not mention drops")
	}
}

func TestStatsAggregation(t *testing.T) {
	var l Log
	// Two messages 0 -> 1, each arriving then matching 5us later.
	for i := 0; i < 2; i++ {
		base := int64(i * 100)
		l.Add(Event{T: sim.Time(base), Rank: 0, Kind: SendStart, Peer: 1, Tag: 7, Bytes: 50})
		l.Add(Event{T: sim.Time(base + 20), Rank: 1, Kind: Arrive, Peer: 0, Tag: 7, Bytes: 50})
		l.Add(Event{T: sim.Time(base + 25), Rank: 1, Kind: Match, Peer: 0, Tag: 7, Bytes: 50})
	}
	st := l.Stats()
	s := st[0][1]
	if s == nil {
		t.Fatal("no stats for 0->1")
	}
	if s.Messages != 2 || s.Bytes != 100 {
		t.Fatalf("messages=%d bytes=%d", s.Messages, s.Bytes)
	}
	if s.Matched != 2 || s.MatchLatency != 10 {
		t.Fatalf("matched=%d latency=%v", s.Matched, s.MatchLatency)
	}
}
