package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"
)

// Arrivals is a deterministic open-loop arrival process on the simulated
// clock: Next returns the gap to the following arrival. Generators are
// seeded, so the same (kind, rate, seed) triple always yields the same
// arrival sequence — the foundation of trace replay.
type Arrivals interface {
	// Next returns the inter-arrival gap to the next request.
	Next() time.Duration
}

// ArrivalNames lists the registered arrival processes in the order
// NewArrivals accepts them.
func ArrivalNames() []string { return []string{"poisson", "bursty", "diurnal"} }

// NewArrivals builds the named arrival process. rate is the long-run mean
// arrivals per simulated second and must be positive.
func NewArrivals(kind string, rate float64, seed int64) (Arrivals, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %g", rate)
	}
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "", "poisson":
		return &poissonArrivals{rate: rate, rng: rng}, nil
	case "bursty":
		return &burstyArrivals{rate: rate, rng: rng}, nil
	case "diurnal":
		return &diurnalArrivals{rate: rate, rng: rng}, nil
	}
	return nil, fmt.Errorf("workload: unknown arrival process %q (registered: %s)",
		kind, strings.Join(ArrivalNames(), ", "))
}

// poissonArrivals draws exponential gaps: a memoryless process at the
// configured mean rate.
type poissonArrivals struct {
	rate float64
	rng  *rand.Rand
}

func (p *poissonArrivals) Next() time.Duration {
	return gap(p.rng.ExpFloat64() / p.rate)
}

// burstyArrivals is a two-state Markov-modulated Poisson process: bursts
// arrive at burstFactor times the mean rate, separated by quiet spells at
// quietFactor of it. State lengths are geometric. The constants balance:
// a mean burst is 10 arrivals over 2/rate seconds and a mean quiet spell
// 2 arrivals over 10/rate seconds, so the long-run rate equals the
// configured mean while the short-run rate whipsaws 25x.
type burstyArrivals struct {
	rate    float64
	rng     *rand.Rand
	inBurst bool
	left    int // arrivals remaining in the current state
}

const (
	burstFactor = 5.0 // burst-state rate multiplier
	quietFactor = 0.2 // quiet-state rate multiplier
	burstLen    = 10  // mean arrivals per burst
	quietLen    = 2   // mean arrivals per quiet spell
)

func (b *burstyArrivals) Next() time.Duration {
	if b.left == 0 {
		b.inBurst = !b.inBurst
		mean := quietLen
		if b.inBurst {
			mean = burstLen
		}
		// Geometric state length with the given mean, at least 1.
		b.left = 1 + int(float64(mean)*b.rng.ExpFloat64())
	}
	b.left--
	r := b.rate * quietFactor
	if b.inBurst {
		r = b.rate * burstFactor
	}
	return gap(b.rng.ExpFloat64() / r)
}

// diurnalArrivals modulates a Poisson process with a sinusoid over a
// virtual "day", rising to 1.8x the mean at peak and falling to 0.2x in
// the trough. The phase advances with the arrivals themselves, so the
// process stays deterministic on the simulated clock.
type diurnalArrivals struct {
	rate float64
	rng  *rand.Rand
	t    float64 // virtual seconds since the epoch of this generator
}

// diurnalPeriod is the virtual day length in seconds. It is short so the
// default sweeps traverse several peaks and troughs.
const diurnalPeriod = 0.05

func (d *diurnalArrivals) Next() time.Duration {
	r := d.rate * (1 + 0.8*math.Sin(2*math.Pi*d.t/diurnalPeriod))
	if min := d.rate * 0.2; r < min {
		r = min
	}
	g := d.rng.ExpFloat64() / r
	d.t += g
	return gap(g)
}

// gap converts seconds to a Duration, clamping below at one nanosecond so
// arrivals always advance the clock.
func gap(sec float64) time.Duration {
	d := time.Duration(sec * float64(time.Second))
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	return d
}
