package workload

import (
	"testing"
	"time"
)

func drain(t *testing.T, kind string, rate float64, seed int64, n int) []time.Duration {
	t.Helper()
	a, err := NewArrivals(kind, rate, seed)
	if err != nil {
		t.Fatal(err)
	}
	gaps := make([]time.Duration, n)
	for i := range gaps {
		gaps[i] = a.Next()
		if gaps[i] <= 0 {
			t.Fatalf("%s gap %d is %v; arrivals must advance the clock", kind, i, gaps[i])
		}
	}
	return gaps
}

// Same (kind, rate, seed) must reproduce the exact arrival sequence;
// different seeds must not.
func TestArrivalsDeterministic(t *testing.T) {
	for _, kind := range ArrivalNames() {
		a := drain(t, kind, 1000, 42, 500)
		b := drain(t, kind, 1000, 42, 500)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: gap %d differs across same-seed generators: %v vs %v", kind, i, a[i], b[i])
			}
		}
		c := drain(t, kind, 1000, 43, 500)
		same := 0
		for i := range a {
			if a[i] == c[i] {
				same++
			}
		}
		if same == len(a) {
			t.Fatalf("%s: different seeds produced identical sequences", kind)
		}
	}
}

// Every process should realize its configured long-run mean rate.
func TestArrivalsMeanRate(t *testing.T) {
	const rate, n = 1000.0, 60000
	for _, kind := range ArrivalNames() {
		var total time.Duration
		for _, g := range drain(t, kind, rate, 7, n) {
			total += g
		}
		got := float64(n) / total.Seconds()
		if got < rate*0.85 || got > rate*1.15 {
			t.Errorf("%s: long-run rate %.1f/s, want within 15%% of %.1f/s", kind, got, rate)
		}
	}
}

// Bursty must actually whipsaw: the short-run rate spread should far
// exceed a plain Poisson process at the same mean.
func TestBurstyIsBursty(t *testing.T) {
	gaps := drain(t, "bursty", 1000, 3, 20000)
	var short, long int
	mean := time.Duration(float64(time.Second) / 1000)
	for _, g := range gaps {
		if g < mean/3 {
			short++
		}
		if g > 2*mean {
			long++
		}
	}
	// Bursts at 5x produce many sub-mean/3 gaps; quiet spells at 0.2x
	// produce many super-2x gaps. A flat Poisson has ~28% and ~14%.
	if short < len(gaps)/2 {
		t.Errorf("only %d/%d gaps are burst-short", short, len(gaps))
	}
	if long < len(gaps)/20 {
		t.Errorf("only %d/%d gaps are quiet-long", long, len(gaps))
	}
}

func TestNewArrivalsRejects(t *testing.T) {
	if _, err := NewArrivals("tidal", 100, 1); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := NewArrivals("poisson", 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewArrivals("", 100, 1); err != nil {
		t.Errorf("empty kind should default to poisson: %v", err)
	}
}
