package workload_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented enforces the documentation bar
// hermetically, mirroring mpi/doc_test.go (the CI revive step is
// best-effort because linter installs need the network): every exported
// symbol in package workload must carry a doc comment.
func TestExportedSymbolsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["workload"]
	if !ok {
		t.Fatal("package workload not found")
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, kind, name))
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue
				}
				if d.Doc == nil {
					name := d.Name.Name
					if d.Recv != nil {
						name = receiverName(d.Recv) + "." + name
					}
					report(d.Pos(), "func", name)
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							// A doc comment on the grouped decl covers the
							// whole block; line comments cover single specs.
							if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
							}
						}
					}
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("exported symbols without doc comments:\n  %s", strings.Join(missing, "\n  "))
	}
}

// exportedReceiver reports whether a method's receiver type is exported.
func exportedReceiver(recv *ast.FieldList) bool {
	name := receiverName(recv)
	return name != "" && ast.IsExported(name)
}

// receiverName extracts the bare receiver type name (pointer stripped).
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}
