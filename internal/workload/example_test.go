package workload_test

import (
	"fmt"

	"repro/internal/workload"
	"repro/platform/registry"
)

// Record a halo-exchange workload, round-trip it through the binary trace
// format, and replay it on a freshly built world: the replayed timeline
// must reproduce the recording event for event, byte for byte.
func Example() {
	spec := registry.Spec{Platform: "mem", Ranks: 4, Seed: 1, Workload: "halo"}
	cfg := workload.Config{Pattern: "halo", Backend: spec.Key(), Ranks: 4, Steps: 4, Seed: 1}

	w, err := registry.Build(spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := workload.Run(w, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	// The trace is a compact versioned binary blob (DESIGN.md §15).
	tr, err := workload.Unmarshal(res.Trace.Marshal())
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	w2, err := registry.Build(spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := workload.Replay(w2, tr); err != nil {
		fmt.Println("diverged:", err)
		return
	}
	fmt.Printf("replayed %d events bit-identically\n", len(tr.Events))
	// Output: replayed 80 events bit-identically
}
