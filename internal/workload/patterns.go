package workload

import (
	"fmt"
	"time"

	"repro/mpi"
)

// The canonical patterns. Each registers at init; Names() is the CLI
// contract. Every body is deterministic given (Config, rank): message
// payloads come from the rank's seeded RNG, arrival times from the seeded
// generators, and all waiting happens on the virtual clock.
func init() {
	Register(Pattern{Name: "allreduce", SLO: OpCollective, Body: allreduceLoop,
		Doc: "data-parallel training loop: per-step compute, then a gradient allreduce"})
	Register(Pattern{Name: "halo", SLO: OpStep, Body: halo,
		Doc: "2-D periodic halo exchange: four Sendrecv legs per sweep plus interior compute"})
	Register(Pattern{Name: "rpc", SLO: OpRequest, Body: rpcFanIn,
		Doc: "many-client RPC fan-in: open-loop arrivals at every client, rank 0 serves"})
	Register(Pattern{Name: "shuffle", SLO: OpCollective, Body: shuffle,
		Doc: "all-to-all shuffle rounds (samplesort/repartition traffic)"})
	Register(Pattern{Name: "stencil", SLO: OpStep, Body: stencil,
		Doc: "1-D ring stencil: boundary exchange both ways, compute, periodic residual allreduce"})
}

// fill draws a payload from the rank's RNG so recordings consume the
// seeded stream even though the engine never inspects bytes.
func (e *Env) fill(b []byte) {
	_, _ = e.RNG.Read(b)
}

// halo sweeps a 2-D periodic Cartesian grid: each step exchanges a
// boundary payload with all four neighbors via Sendrecv (one OpExchange
// per leg), charges the interior compute, and closes with an OpStep.
func halo(e *Env) error {
	c := e.C
	py, px := mpi.Dims2(c.Size())
	cart, err := c.CartCreate([]int{py, px}, []bool{true, true})
	if err != nil {
		return err
	}
	n := e.Cfg.Bytes
	out := make([]byte, n)
	in := make([]byte, n)
	e.fill(out)
	for step := 0; step < e.Cfg.Steps; step++ {
		start := c.Wtime()
		for dim := 0; dim < 2; dim++ {
			for _, disp := range []int{1, -1} {
				src, dst := cart.Shift(dim, disp)
				if dst == c.Rank() {
					continue // 1-wide periodic dimension: no neighbor
				}
				xs := c.Wtime()
				if _, err := c.Sendrecv(dst, step, out, src, step, in); err != nil {
					return err
				}
				e.Record(OpExchange, dst, step, n, xs)
			}
		}
		c.Compute(e.Cfg.Compute)
		e.Record(OpStep, -1, step, 4*n, start)
	}
	return c.Barrier()
}

// stencil iterates a 1-D periodic ring: exchange one boundary plane with
// each neighbor, charge the sweep compute, and every residualEvery steps
// run a one-element allreduce standing in for the convergence check.
const residualEvery = 8

func stencil(e *Env) error {
	c := e.C
	size, me := c.Size(), c.Rank()
	left, right := (me-1+size)%size, (me+1)%size
	n := e.Cfg.Bytes
	out := make([]byte, n)
	in := make([]byte, n)
	e.fill(out)
	residual := []float64{float64(me + 1)}
	for step := 0; step < e.Cfg.Steps; step++ {
		start := c.Wtime()
		if left != me {
			xs := c.Wtime()
			if _, err := c.Sendrecv(left, step, out, right, step, in); err != nil {
				return err
			}
			e.Record(OpExchange, left, step, n, xs)
			xs = c.Wtime()
			if _, err := c.Sendrecv(right, step, out, left, step, in); err != nil {
				return err
			}
			e.Record(OpExchange, right, step, n, xs)
		}
		c.Compute(e.Cfg.Compute)
		if (step+1)%residualEvery == 0 {
			xs := c.Wtime()
			if _, err := c.AllreduceFloat64(mpi.SumFloat64, residual); err != nil {
				return err
			}
			e.Record(OpCollective, -1, step, 8, xs)
		}
		e.Record(OpStep, -1, step, 2*n, start)
	}
	return c.Barrier()
}

// shuffle runs all-to-all rounds: every rank scatters a Bytes block to
// each peer (samplesort/repartition traffic), then charges the
// repartition compute.
func shuffle(e *Env) error {
	c := e.C
	size := c.Size()
	n := e.Cfg.Bytes
	send := make([]byte, size*n)
	recv := make([]byte, size*n)
	e.fill(send)
	for step := 0; step < e.Cfg.Steps; step++ {
		start := c.Wtime()
		if err := c.Alltoall(send, recv); err != nil {
			return err
		}
		e.Record(OpCollective, -1, step, size*n, start)
		c.Compute(e.Cfg.Compute)
		e.Record(OpStep, -1, step, size*n, start)
	}
	return c.Barrier()
}

// allreduceLoop models a data-parallel training step: compute the local
// gradient, then allreduce it. The collective is the SLO op.
func allreduceLoop(e *Env) error {
	c := e.C
	elems := e.Cfg.Bytes / 8
	if elems < 1 {
		elems = 1
	}
	grad := make([]float64, elems)
	for i := range grad {
		grad[i] = e.RNG.Float64()
	}
	for step := 0; step < e.Cfg.Steps; step++ {
		start := c.Wtime()
		c.Compute(e.Cfg.Compute)
		xs := c.Wtime()
		if _, err := c.AllreduceFloat64(mpi.SumFloat64, grad); err != nil {
			return err
		}
		e.Record(OpCollective, -1, step, elems*8, xs)
		e.Record(OpStep, -1, step, elems*8, start)
	}
	return c.Barrier()
}

// rpcFanIn drives many clients against a single server (rank 0). Clients
// are open-loop: request i is issued at its generated arrival instant
// whether or not earlier replies are back, so queueing delay lands in the
// recorded latency (OpRequest Dur spans arrival to reply). The server
// probes AnySource, charges the service time, and replies in arrival
// order; non-overtaking on the (server, client, tag) triple lets clients
// harvest replies in issue order.
func rpcFanIn(e *Env) error {
	c := e.C
	size := c.Size()
	if size < 2 {
		return fmt.Errorf("workload rpc: needs at least 2 ranks, have %d", size)
	}
	const server = 0
	n := e.Cfg.Bytes
	if c.Rank() == server {
		total := e.Cfg.Steps * (size - 1)
		reply := make([]byte, n)
		e.fill(reply)
		var pend []*mpi.Request
		for k := 0; k < total; k++ {
			st, err := c.Probe(mpi.AnySource, mpi.AnyTag)
			if err != nil {
				return err
			}
			start := c.Wtime()
			buf := make([]byte, st.Count)
			if _, err := c.Recv(st.Source, st.Tag, buf); err != nil {
				return err
			}
			c.Compute(e.Cfg.Compute)
			r, err := c.Isend(st.Source, st.Tag, reply)
			if err != nil {
				return err
			}
			pend = append(pend, r)
			e.Record(OpServe, st.Source, st.Tag, st.Count, start)
		}
		if _, err := mpi.WaitAll(pend...); err != nil {
			return err
		}
		return nil
	}
	arr, err := NewArrivals(e.Cfg.Arrival, e.Cfg.Rate, e.Cfg.Seed<<20+int64(c.Rank()))
	if err != nil {
		return err
	}
	req := make([]byte, n)
	e.fill(req)
	type inflight struct {
		r       *mpi.Request
		arrival time.Duration
		tag     int
	}
	var replies []inflight
	var sends []*mpi.Request
	var t time.Duration
	for i := 0; i < e.Cfg.Steps; i++ {
		t += arr.Next()
		if now := c.Wtime(); now < t {
			c.Compute(t - now) // idle until the open-loop arrival instant
		}
		rr, err := c.Irecv(server, i, make([]byte, n))
		if err != nil {
			return err
		}
		sr, err := c.Isend(server, i, req)
		if err != nil {
			return err
		}
		replies = append(replies, inflight{rr, t, i})
		sends = append(sends, sr)
	}
	for _, f := range replies {
		if _, err := f.r.Wait(); err != nil {
			return err
		}
		e.Record(OpRequest, server, f.tag, n, f.arrival)
	}
	_, err = mpi.WaitAll(sends...)
	return err
}
