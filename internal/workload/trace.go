package workload

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// Op classifies a recorded workload event. The trace keeps one completion
// event per operation the pattern cares about; the per-pattern SLO op
// (Pattern.SLO) is the one whose Dur feeds the latency percentiles.
type Op uint8

// Event classes. Zero is reserved so a zeroed byte never decodes as a
// valid op.
const (
	// OpExchange is a completed neighbor exchange (one Sendrecv leg).
	OpExchange Op = iota + 1
	// OpCollective is a completed collective (allreduce, alltoall, ...).
	OpCollective
	// OpStep is one completed pattern iteration (halo sweep, stencil
	// step, shuffle round, training step).
	OpStep
	// OpRequest is an RPC client reply completion; Dur spans from the
	// open-loop arrival instant, so it includes queueing delay.
	OpRequest
	// OpServe is an RPC server-side request completion (recv through
	// reply issue).
	OpServe
)

// String names the op for divergence reports and summaries.
func (o Op) String() string {
	switch o {
	case OpExchange:
		return "exchange"
	case OpCollective:
		return "collective"
	case OpStep:
		return "step"
	case OpRequest:
		return "request"
	case OpServe:
		return "serve"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Event is one completed operation in a recorded workload. All times are
// virtual (simulated) nanoseconds, so a trace is bit-reproducible from
// (spec, seed) alone.
type Event struct {
	// T is the virtual completion time in nanoseconds.
	T int64
	// Rank is the completing rank.
	Rank int32
	// Op classifies the event.
	Op Op
	// Peer is the counterpart rank (-1 for collectives and steps).
	Peer int32
	// Tag is the message tag or iteration index.
	Tag int32
	// Bytes is the payload size the event accounts for.
	Bytes uint32
	// Dur is the event's latency in nanoseconds (completion minus the
	// op-defined start instant).
	Dur int64
}

// String renders the event with rank/time/op context for divergence
// reports.
func (e Event) String() string {
	return fmt.Sprintf("t=%v rank=%d %s peer=%d tag=%d bytes=%d dur=%v",
		time.Duration(e.T), e.Rank, e.Op, e.Peer, e.Tag, e.Bytes, time.Duration(e.Dur))
}

// Trace is a recorded workload run: the configuration that produced it
// plus the canonical merged event stream (sorted by (T, Rank), per-rank
// order preserved).
type Trace struct {
	// Cfg is the recording configuration. Backend and Lanes are
	// provenance — replay may rebuild the world on a different kernel
	// to check cross-kernel determinism.
	Cfg Config
	// Events is the canonical merged event stream.
	Events []Event
}

// Binary trace format (DESIGN.md §15):
//
//	magic   "MPWT"            4 bytes
//	version uint16 LE          2 bytes (this package writes Version)
//	header  pattern, backend, arrival  (uvarint length + UTF-8 bytes each)
//	        ranks, lanes uvarint; parallel 1 byte; steps, bytes uvarint
//	        seed varint; rate float64 LE bits; compute varint (ns)
//	count   uvarint            number of events
//	events  per event: dt uvarint (delta from previous T, ns), rank uvarint,
//	        op 1 byte, peer varint, tag varint, bytes uvarint, dur uvarint
//	crc     crc32(IEEE) LE over everything above, 4 bytes
const (
	traceMagic = "MPWT"
	// Version is the trace format version this build reads and writes.
	Version = 1
	// maxEvents caps the declared event count during decode so a corrupt
	// header cannot drive a huge allocation.
	maxEvents = 1 << 26
	// maxString caps header string lengths during decode.
	maxString = 1 << 12
)

// FormatError reports a trace that this build cannot decode: bad magic,
// an unsupported (newer) format version, or corruption. Version is
// nonzero when the rejection is a version mismatch.
type FormatError struct {
	// Version is the on-disk format version when the error is an
	// unsupported-version rejection, zero otherwise.
	Version uint16
	// Msg describes the problem.
	Msg string
}

// Error implements error.
func (e *FormatError) Error() string { return "workload trace: " + e.Msg }

// Marshal encodes the trace into the compact binary format.
func (t *Trace) Marshal() []byte {
	buf := make([]byte, 0, 64+len(t.Events)*10)
	buf = append(buf, traceMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = appendStr(buf, t.Cfg.Pattern)
	buf = appendStr(buf, t.Cfg.Backend)
	buf = appendStr(buf, t.Cfg.Arrival)
	buf = binary.AppendUvarint(buf, uint64(t.Cfg.Ranks))
	buf = binary.AppendUvarint(buf, uint64(t.Cfg.Lanes))
	if t.Cfg.Parallel {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(t.Cfg.Steps))
	buf = binary.AppendUvarint(buf, uint64(t.Cfg.Bytes))
	buf = binary.AppendVarint(buf, t.Cfg.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.Cfg.Rate))
	buf = binary.AppendVarint(buf, int64(t.Cfg.Compute))
	buf = binary.AppendUvarint(buf, uint64(len(t.Events)))
	prev := int64(0)
	for _, ev := range t.Events {
		buf = binary.AppendUvarint(buf, uint64(ev.T-prev))
		prev = ev.T
		buf = binary.AppendUvarint(buf, uint64(ev.Rank))
		buf = append(buf, byte(ev.Op))
		buf = binary.AppendVarint(buf, int64(ev.Peer))
		buf = binary.AppendVarint(buf, int64(ev.Tag))
		buf = binary.AppendUvarint(buf, uint64(ev.Bytes))
		buf = binary.AppendUvarint(buf, uint64(ev.Dur))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Unmarshal decodes a binary trace. It returns a *FormatError for bad
// magic, an unsupported version, or corruption (CRC mismatch, truncation,
// trailing bytes).
func Unmarshal(data []byte) (*Trace, error) {
	if len(data) < len(traceMagic)+2+4 {
		return nil, &FormatError{Msg: "truncated (shorter than the fixed header)"}
	}
	if !bytes.Equal(data[:4], []byte(traceMagic)) {
		return nil, &FormatError{Msg: "bad magic (not a workload trace)"}
	}
	ver := binary.LittleEndian.Uint16(data[4:6])
	if ver != Version {
		return nil, &FormatError{Version: ver, Msg: fmt.Sprintf("format v%d; this build reads v%d", ver, Version)}
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, &FormatError{Msg: "corrupt (crc mismatch)"}
	}
	r := &traceReader{b: body, off: 6}
	tr := &Trace{}
	tr.Cfg.Pattern = r.str()
	tr.Cfg.Backend = r.str()
	tr.Cfg.Arrival = r.str()
	tr.Cfg.Ranks = int(r.uvarint())
	tr.Cfg.Lanes = int(r.uvarint())
	tr.Cfg.Parallel = r.byte() != 0
	tr.Cfg.Steps = int(r.uvarint())
	tr.Cfg.Bytes = int(r.uvarint())
	tr.Cfg.Seed = r.varint()
	tr.Cfg.Rate = math.Float64frombits(r.u64())
	tr.Cfg.Compute = time.Duration(r.varint())
	count := r.uvarint()
	if r.err == nil && count > maxEvents {
		r.fail("event count %d exceeds the %d cap", count, maxEvents)
	}
	if r.err == nil {
		tr.Events = make([]Event, 0, count)
		prev := int64(0)
		for i := uint64(0); i < count && r.err == nil; i++ {
			var ev Event
			ev.T = prev + int64(r.uvarint())
			prev = ev.T
			ev.Rank = int32(r.uvarint())
			ev.Op = Op(r.byte())
			ev.Peer = int32(r.varint())
			ev.Tag = int32(r.varint())
			ev.Bytes = uint32(r.uvarint())
			ev.Dur = int64(r.uvarint())
			tr.Events = append(tr.Events, ev)
		}
	}
	if r.err == nil && r.off != len(body) {
		r.fail("%d trailing bytes after the event stream", len(body)-r.off)
	}
	if r.err != nil {
		return nil, r.err
	}
	return tr, nil
}

// traceReader is a sticky-error cursor over the trace body.
type traceReader struct {
	b   []byte
	off int
	err *FormatError
}

func (r *traceReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = &FormatError{Msg: fmt.Sprintf(format, args...)}
	}
}

func (r *traceReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *traceReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *traceReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated at offset %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *traceReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *traceReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxString {
		r.fail("string length %d exceeds the %d cap", n, maxString)
		return ""
	}
	if r.off+int(n) > len(r.b) {
		r.fail("truncated string at offset %d", r.off)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Divergence reports the first event where a replay departed from the
// recording, with rank/time/op context. It implements error so Replay can
// return it directly.
type Divergence struct {
	// Index is the position in the canonical merged stream.
	Index int
	// Rank, T, and Op identify the first divergent event (taken from the
	// recorded side when present, else from the replayed side).
	Rank int
	T    time.Duration
	Op   Op
	// Want is the recorded event (nil when the replay produced extra
	// events past the end of the recording).
	Want *Event
	// Got is the replayed event (nil when the replay ended early).
	Got *Event
}

// Error implements error.
func (d *Divergence) Error() string {
	switch {
	case d.Want == nil:
		return fmt.Sprintf("replay diverged at event %d: recording ended, replay produced extra [%v]", d.Index, *d.Got)
	case d.Got == nil:
		return fmt.Sprintf("replay diverged at event %d: replay ended early, recording has [%v]", d.Index, *d.Want)
	}
	return fmt.Sprintf("replay diverged at event %d: recorded [%v], replayed [%v]", d.Index, *d.Want, *d.Got)
}

// Diff compares a recording against a replay and returns the first
// divergent event, or nil when the streams are identical. Comparison is
// positional over the canonical merged order, so it catches timing shifts
// as well as reordered, missing, or extra operations.
func Diff(want, got *Trace) *Divergence {
	n := len(want.Events)
	if len(got.Events) < n {
		n = len(got.Events)
	}
	for i := 0; i < n; i++ {
		if want.Events[i] != got.Events[i] {
			w, g := want.Events[i], got.Events[i]
			return &Divergence{Index: i, Rank: int(w.Rank), T: time.Duration(w.T), Op: w.Op, Want: &w, Got: &g}
		}
	}
	if len(want.Events) > n {
		w := want.Events[n]
		return &Divergence{Index: n, Rank: int(w.Rank), T: time.Duration(w.T), Op: w.Op, Want: &w}
	}
	if len(got.Events) > n {
		g := got.Events[n]
		return &Divergence{Index: n, Rank: int(g.Rank), T: time.Duration(g.T), Op: g.Op, Got: &g}
	}
	return nil
}
