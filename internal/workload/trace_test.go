package workload

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"
	"time"
)

func sampleTrace() *Trace {
	return &Trace{
		Cfg: Config{
			Pattern: "halo", Backend: "cluster/tcp", Ranks: 8, Lanes: 2,
			Parallel: true, Steps: 20, Bytes: 1024, Seed: 7,
			Arrival: "bursty", Rate: 1500.5, Compute: 20 * time.Microsecond,
		},
		Events: []Event{
			{T: 1000, Rank: 0, Op: OpExchange, Peer: 1, Tag: 0, Bytes: 1024, Dur: 900},
			{T: 1000, Rank: 3, Op: OpExchange, Peer: 2, Tag: 0, Bytes: 1024, Dur: 850},
			{T: 2500, Rank: 1, Op: OpCollective, Peer: -1, Tag: 1, Bytes: 8192, Dur: 1500},
			{T: 4000, Rank: 2, Op: OpStep, Peer: -1, Tag: 1, Bytes: 4096, Dur: 3000},
			{T: 9000, Rank: 7, Op: OpRequest, Peer: 0, Tag: 5, Bytes: 64, Dur: 5000},
		},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	data := tr.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", tr, got)
	}
	// Canonical: marshaling the decoded trace reproduces the bytes.
	if again := got.Marshal(); !reflect.DeepEqual(data, again) {
		t.Fatal("re-marshal is not byte-identical")
	}
}

// A trace stamped with a future format version must be rejected with a
// typed error carrying that version, not misparsed.
func TestUnmarshalRejectsNewerVersion(t *testing.T) {
	data := sampleTrace().Marshal()
	binary.LittleEndian.PutUint16(data[4:6], Version+1)
	body := data[:len(data)-4]
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(body))
	_, err := Unmarshal(data)
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FormatError, got %v", err)
	}
	if fe.Version != Version+1 {
		t.Fatalf("want rejected version %d reported, got %d (%v)", Version+1, fe.Version, fe)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"short":     []byte("MPW"),
		"bad magic": append([]byte("NOPE"), make([]byte, 32)...),
	}
	data := sampleTrace().Marshal()
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	cases["bit flip"] = flipped
	cases["truncated"] = data[:len(data)-9]
	for name, b := range cases {
		var fe *FormatError
		if _, err := Unmarshal(b); !errors.As(err, &fe) {
			t.Errorf("%s: want *FormatError, got %v", name, err)
		}
	}
}

// Diff reports the first divergent event with its rank/time/op context.
func TestDiffReportsFirstDivergence(t *testing.T) {
	base := sampleTrace()
	perturbed, err := Unmarshal(base.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	perturbed.Events[3].Dur += 7 // a one-event perturbation

	div := Diff(perturbed, base)
	if div == nil {
		t.Fatal("perturbation not detected")
	}
	if div.Index != 3 {
		t.Fatalf("first divergence at index %d, want 3", div.Index)
	}
	want := perturbed.Events[3]
	if int32(div.Rank) != want.Rank || int64(div.T) != want.T || div.Op != want.Op {
		t.Fatalf("context %+v does not cite the perturbed event %v", div, want)
	}
	if div.Want == nil || div.Got == nil || *div.Want == *div.Got {
		t.Fatalf("divergence should carry both events: %v", div)
	}

	if d := Diff(base, base); d != nil {
		t.Fatalf("identical traces reported divergent: %v", d)
	}
}

func TestDiffLengthMismatch(t *testing.T) {
	base := sampleTrace()
	short := &Trace{Cfg: base.Cfg, Events: base.Events[:3]}

	if div := Diff(base, short); div == nil || div.Index != 3 || div.Got != nil {
		t.Fatalf("missing tail not reported: %v", div)
	}
	if div := Diff(short, base); div == nil || div.Index != 3 || div.Want != nil {
		t.Fatalf("extra tail not reported: %v", div)
	}
}
