// Package workload generates macro-level MPI traffic and records it as
// replayable traces. Where internal/bench measures single operations, a
// workload drives a canonical application pattern — 2-D halo exchange,
// stencil iteration, all-to-all shuffle, an allreduce training loop, or
// many-client RPC fan-in under an open-loop arrival process — and logs
// every completion as a trace event on the virtual clock.
//
// Because the simulator is deterministic, a trace is a pure function of
// its Config: recording the same Config twice yields byte-identical
// traces, and Replay re-runs the Config and byte-compares the fresh event
// stream against the recording, reporting the first divergent event with
// rank/time/op context. DESIGN.md §15 documents the model and the binary
// trace format.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/mpi"
)

// Config describes one workload run. The zero value is not runnable; use
// Norm to fill defaults. By convention Seed seeds both the world spec and
// the workload's per-rank RNG streams, so a (backend, Config) pair pins
// the whole timeline.
type Config struct {
	// Pattern names a registered pattern (see Names).
	Pattern string
	// Backend is the registry key the trace was recorded on. Provenance
	// only: replay may rebuild the world elsewhere to compare backends.
	Backend string
	// Ranks is the world size (default 8).
	Ranks int
	// Lanes and Parallel record the kernel the recording ran on.
	// Provenance only: determinism makes traces kernel-independent.
	Lanes    int
	Parallel bool
	// Steps is the iteration count per rank; for rpc, requests per
	// client (default 20).
	Steps int
	// Bytes is the per-message payload size (default 1024).
	Bytes int
	// Seed seeds the per-rank RNG streams (default 1).
	Seed int64
	// Arrival picks the rpc arrival process: poisson, bursty, or
	// diurnal (default poisson). Ignored by closed-loop patterns.
	Arrival string
	// Rate is the rpc mean arrivals per virtual second per client
	// (default 2000).
	Rate float64
	// Compute is the modeled per-step compute charge (default 20µs);
	// for rpc it is the server's per-request service time.
	Compute time.Duration
}

// Norm returns the config with defaults filled in.
func (c Config) Norm() Config {
	if c.Ranks == 0 {
		c.Ranks = 8
	}
	if c.Steps == 0 {
		c.Steps = 20
	}
	if c.Bytes == 0 {
		c.Bytes = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Arrival == "" {
		c.Arrival = "poisson"
	}
	if c.Rate == 0 {
		c.Rate = 2000
	}
	if c.Compute == 0 {
		c.Compute = 20 * time.Microsecond
	}
	return c
}

// Pattern is a registered workload body. SLO designates the op whose Dur
// samples feed the latency percentiles in Summary.
type Pattern struct {
	// Name is the registry key.
	Name string
	// SLO is the op class scored by Summarize.
	SLO Op
	// Doc is a one-line description for CLI help and docs.
	Doc string
	// Body runs the pattern on one rank.
	Body func(*Env) error
}

var patterns = map[string]Pattern{}

// Register adds a pattern to the registry; it panics on duplicates, like
// the platform registry.
func Register(p Pattern) {
	if _, dup := patterns[p.Name]; dup {
		panic("workload: duplicate pattern " + p.Name)
	}
	patterns[p.Name] = p
}

// Names lists the registered patterns, sorted.
func Names() []string {
	out := make([]string, 0, len(patterns))
	for n := range patterns {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup finds a registered pattern by name.
func Lookup(name string) (Pattern, bool) {
	p, ok := patterns[name]
	return p, ok
}

// Env is the per-rank execution context a pattern body runs in.
type Env struct {
	// C is the rank's world communicator.
	C *mpi.Comm
	// Cfg is the normalized run configuration.
	Cfg Config
	// RNG is this rank's seeded stream (rank-disjoint from the others).
	RNG *rand.Rand

	evs []Event
}

// Record logs a completed operation at the current virtual time; start is
// the op-defined begin instant, so Dur = now − start.
func (e *Env) Record(op Op, peer, tag, bytes int, start time.Duration) {
	now := e.C.Wtime()
	e.evs = append(e.evs, Event{
		T:     int64(now),
		Rank:  int32(e.C.Rank()),
		Op:    op,
		Peer:  int32(peer),
		Tag:   int32(tag),
		Bytes: uint32(bytes),
		Dur:   int64(now - start),
	})
}

// Result bundles a recorded run: the trace, the launch report, and the
// SLO summary.
type Result struct {
	// Trace is the canonical recording.
	Trace *Trace
	// Report is the underlying launch report (per-rank finish times).
	Report *mpi.Report
	// Summary scores the SLO op stream.
	Summary Summary
}

// Run records the configured workload on a freshly built world. The
// world's size must match cfg.Ranks. The returned trace's event stream is
// merged across ranks and sorted by (T, Rank) with per-rank order
// preserved, which makes the encoding canonical.
func Run(w *mpi.World, cfg Config) (*Result, error) {
	cfg = cfg.Norm()
	pat, ok := Lookup(cfg.Pattern)
	if !ok {
		return nil, fmt.Errorf("workload: unknown pattern %q (registered: %s)",
			cfg.Pattern, strings.Join(Names(), ", "))
	}
	if w.Size() != cfg.Ranks {
		return nil, fmt.Errorf("workload: world has %d ranks, config wants %d", w.Size(), cfg.Ranks)
	}
	envs := make([]*Env, cfg.Ranks)
	var mu sync.Mutex
	rep, err := mpi.Launch(w, func(c *mpi.Comm) error {
		e := &Env{C: c, Cfg: cfg, RNG: rand.New(rand.NewSource(cfg.Seed<<20 + int64(c.Rank())))}
		mu.Lock()
		envs[c.Rank()] = e
		mu.Unlock()
		return pat.Body(e)
	})
	if err != nil {
		return nil, err
	}
	for i, e := range rep.Errs {
		if e != nil {
			return nil, fmt.Errorf("workload %s: rank %d: %w", cfg.Pattern, i, e)
		}
	}
	tr := &Trace{Cfg: cfg}
	for _, e := range envs {
		tr.Events = append(tr.Events, e.evs...)
	}
	sort.SliceStable(tr.Events, func(i, j int) bool {
		a, b := tr.Events[i], tr.Events[j]
		if a.T != b.T {
			return a.T < b.T
		}
		return a.Rank < b.Rank
	})
	return &Result{Trace: tr, Report: rep, Summary: Summarize(tr, rep.MaxRankElapsed)}, nil
}

// Replay re-drives a recorded trace's workload on w and verifies the run
// reproduces the recording exactly. On mismatch it returns the fresh
// Result together with a *Divergence error naming the first divergent
// event. The world may run a different kernel (lanes/parallel) than the
// recording — per-rank timelines are kernel-independent, so the streams
// must still match byte for byte.
func Replay(w *mpi.World, tr *Trace) (*Result, error) {
	res, err := Run(w, tr.Cfg)
	if err != nil {
		return nil, err
	}
	if div := Diff(tr, res.Trace); div != nil {
		return res, div
	}
	return res, nil
}

// Summary scores a trace's SLO op stream: latency percentiles over the
// designated op's Dur samples plus throughput over the run's elapsed
// virtual time.
type Summary struct {
	// Pattern is the scored pattern name.
	Pattern string
	// Events is the number of SLO-op completions scored.
	Events int
	// ElapsedUS is the slowest rank's virtual finish time in µs.
	ElapsedUS float64
	// P50US, P99US, and P999US are latency percentiles in µs.
	P50US  float64
	P99US  float64
	P999US float64
	// OpsPerSec is SLO completions per virtual second.
	OpsPerSec float64
	// MBPerSec is SLO payload megabytes per virtual second.
	MBPerSec float64
}

// Summarize scores tr's SLO op stream against the run's elapsed virtual
// time.
func Summarize(tr *Trace, elapsed time.Duration) Summary {
	pat, _ := Lookup(tr.Cfg.Pattern)
	var durs []float64
	var bytes int64
	for _, ev := range tr.Events {
		if ev.Op != pat.SLO {
			continue
		}
		durs = append(durs, float64(ev.Dur)/float64(time.Microsecond))
		bytes += int64(ev.Bytes)
	}
	sort.Float64s(durs)
	s := Summary{
		Pattern:   tr.Cfg.Pattern,
		Events:    len(durs),
		ElapsedUS: float64(elapsed) / float64(time.Microsecond),
		P50US:     pct(durs, 0.50),
		P99US:     pct(durs, 0.99),
		P999US:    pct(durs, 0.999),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		s.OpsPerSec = float64(len(durs)) / sec
		s.MBPerSec = float64(bytes) / 1e6 / sec
	}
	return s
}

// pct is the nearest-rank percentile over a sorted sample, matching
// internal/bench's convention.
func pct(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1)+0.5)]
}
