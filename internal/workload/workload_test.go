package workload_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/workload"
	"repro/mpi"
	"repro/platform/registry"

	_ "repro/platform/cluster"
	_ "repro/platform/meiko"
)

// build constructs a world for a recorded/replayed workload run.
func build(t *testing.T, backend string, ranks, lanes int, parallel bool) *mpi.World {
	t.Helper()
	spec := registry.SpecFor(backend)
	spec.Ranks = ranks
	spec.Seed = 1
	spec.Lanes = lanes
	spec.Parallel = parallel
	w, err := registry.Build(spec)
	if err != nil {
		t.Fatalf("build %s lanes=%d: %v", backend, lanes, err)
	}
	return w
}

func record(t *testing.T, backend, pattern string, lanes int, parallel bool) *workload.Result {
	t.Helper()
	cfg := workload.Config{Pattern: pattern, Backend: backend, Ranks: 8, Seed: 1, Lanes: lanes, Parallel: parallel}
	res, err := workload.Run(build(t, backend, 8, lanes, parallel), cfg)
	if err != nil {
		t.Fatalf("run %s on %s: %v", pattern, backend, err)
	}
	return res
}

// Every pattern records on the reference fabric, produces SLO samples,
// and re-records byte-identically.
func TestPatternsRecordDeterministically(t *testing.T) {
	for _, pattern := range workload.Names() {
		t.Run(pattern, func(t *testing.T) {
			res := record(t, "mem", pattern, 1, false)
			if len(res.Trace.Events) == 0 {
				t.Fatal("no events recorded")
			}
			s := res.Summary
			if s.Events == 0 || s.P50US <= 0 || s.OpsPerSec <= 0 {
				t.Fatalf("degenerate summary: %+v", s)
			}
			if s.P50US > s.P99US || s.P99US > s.P999US {
				t.Fatalf("percentiles out of order: %+v", s)
			}
			again := record(t, "mem", pattern, 1, false)
			if !bytes.Equal(res.Trace.Marshal(), again.Trace.Marshal()) {
				t.Fatal("re-record is not byte-identical")
			}
		})
	}
}

// Recordings replay without divergence on every backend, and the sharded
// (lanes=2) and parallel (lanes=8) kernels reproduce the single-lane
// recording event for event with identical per-rank finish times.
func TestReplayParityAcrossKernels(t *testing.T) {
	backends := []string{"mem", "meiko/lowlatency", "cluster/tcp"}
	if testing.Short() {
		backends = backends[:1]
	}
	kernels := []struct {
		name     string
		lanes    int
		parallel bool
	}{
		{"sharded2", 2, false},
		{"parallel8", 8, true},
	}
	for _, backend := range backends {
		for _, pattern := range workload.Names() {
			t.Run(strings.ReplaceAll(backend, "/", "_")+"/"+pattern, func(t *testing.T) {
				base := record(t, backend, pattern, 1, false)
				for _, k := range kernels {
					res, err := workload.Replay(build(t, backend, 8, k.lanes, k.parallel), base.Trace)
					if err != nil {
						t.Fatalf("%s replay: %v", k.name, err)
					}
					for r, d := range res.Report.RankElapsed {
						if d != base.Report.RankElapsed[r] {
							t.Fatalf("%s: rank %d finished at %v, single-lane at %v",
								k.name, r, d, base.Report.RankElapsed[r])
						}
					}
				}
			})
		}
	}
}

// Replaying against a world with a different protocol crossover must
// report a divergence, not silently pass.
func TestReplayDetectsModelChange(t *testing.T) {
	base := record(t, "mem", "halo", 1, false)
	spec := registry.SpecFor("mem")
	spec.Ranks = 8
	spec.Seed = 1
	spec.Eager = 4096 // default is 180: the 1 KiB payloads switch protocol
	w, err := registry.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = workload.Replay(w, base.Trace)
	var div *workload.Divergence
	if !errors.As(err, &div) {
		t.Fatalf("want *Divergence, got %v", err)
	}
	if div.Want == nil || div.Got == nil {
		t.Fatalf("divergence should cite both sides: %v", div)
	}
	if div.Index < 0 || div.Index >= len(base.Trace.Events) {
		t.Fatalf("divergence index %d out of range", div.Index)
	}
	want := base.Trace.Events[div.Index]
	if int32(div.Rank) != want.Rank || int64(div.T) != want.T || div.Op != want.Op {
		t.Fatalf("divergence context %v does not match recorded event %v", div, want)
	}
}

func TestRunRejectsUnknownPattern(t *testing.T) {
	w := build(t, "mem", 8, 1, false)
	_, err := workload.Run(w, workload.Config{Pattern: "nope", Ranks: 8})
	if err == nil || !strings.Contains(err.Error(), "halo") {
		t.Fatalf("want an error listing registered patterns, got %v", err)
	}
}

func TestRunRejectsRankMismatch(t *testing.T) {
	w := build(t, "mem", 4, 1, false)
	_, err := workload.Run(w, workload.Config{Pattern: "halo", Ranks: 8})
	if err == nil || !strings.Contains(err.Error(), "ranks") {
		t.Fatalf("want a rank-mismatch error, got %v", err)
	}
}

func TestRegistryValidatesWorkloadName(t *testing.T) {
	spec := registry.Spec{Platform: "mem", Ranks: 4, Workload: "definitely-not-registered"}
	_, err := registry.Build(spec)
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("want unknown-workload error, got %v", err)
	}
	spec.Workload = "halo"
	if _, err := registry.Build(spec); err != nil {
		t.Fatalf("valid workload name rejected: %v", err)
	}
}
