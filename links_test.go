// Markdown hygiene for the repo documentation: every relative link and
// local anchor in the top-level *.md files must resolve. Runs hermetically
// in `go test ./...` (and therefore in the CI race job) — no external link
// checker to install, and http(s) links are deliberately not fetched.
package repro_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target); images share the
// syntax with a leading bang.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// mdHeading matches ATX headings, whose GitHub anchor we derive below.
var mdHeading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

// TestMarkdownLinks resolves every relative link in the repo's markdown
// files against the working tree, and every #fragment against the target
// file's headings.
func TestMarkdownLinks(t *testing.T) {
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found at the repo root")
	}
	var broken []string
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		text := string(data)
		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			if path == "" { // same-file anchor
				path = f
			}
			path = filepath.Clean(path)
			info, err := os.Stat(path)
			if err != nil {
				broken = append(broken, fmt.Sprintf("%s: link %q: missing file %s", f, target, path))
				continue
			}
			if frag == "" || info.IsDir() || !strings.HasSuffix(path, ".md") {
				continue
			}
			if !hasAnchor(t, path, frag) {
				broken = append(broken, fmt.Sprintf("%s: link %q: no heading for #%s in %s", f, target, frag, path))
			}
		}
	}
	if len(broken) > 0 {
		t.Errorf("broken markdown links:\n  %s", strings.Join(broken, "\n  "))
	}
}

// hasAnchor reports whether file has a heading whose GitHub-style anchor
// equals frag (lowercase, spaces to dashes, punctuation dropped).
func hasAnchor(t *testing.T, file, frag string) bool {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mdHeading.FindAllStringSubmatch(string(data), -1) {
		if githubAnchor(m[1]) == strings.ToLower(frag) {
			return true
		}
	}
	return false
}

func githubAnchor(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r >= 0x80:
			b.WriteRune(r)
		case r == ' ', r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}
