package mpi

import "repro/internal/core"

// Cart is a Cartesian virtual topology over a communicator
// (MPI_Cart_create family). The MPI standard lists virtual topology
// management among its primitives; the ring used by the particle
// application is the 1-D periodic case.
type Cart struct {
	*Comm
	Dims     []int
	Periodic []bool
}

// CartCreate builds a row-major Cartesian topology over the communicator.
// The product of dims must not exceed the communicator size; surplus ranks
// receive nil (as with MPI_Cart_create without reorder).
func (c *Comm) CartCreate(dims []int, periodic []bool) (*Cart, error) {
	if len(dims) != len(periodic) {
		return nil, core.Errorf(core.ErrInternal, "dims/periodic length mismatch")
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, core.Errorf(core.ErrInternal, "non-positive cartesian dimension %d", d)
		}
		n *= d
	}
	if n > c.Size() {
		return nil, core.Errorf(core.ErrInternal, "cartesian grid of %d exceeds communicator size %d", n, c.Size())
	}
	if c.rank >= n {
		return nil, nil
	}
	d := make([]int, len(dims))
	copy(d, dims)
	pp := make([]bool, len(periodic))
	copy(pp, periodic)
	return &Cart{Comm: c, Dims: d, Periodic: pp}, nil
}

// Coords reports the Cartesian coordinates of a rank (MPI_Cart_coords).
func (t *Cart) Coords(rank int) []int {
	coords := make([]int, len(t.Dims))
	for i := len(t.Dims) - 1; i >= 0; i-- {
		coords[i] = rank % t.Dims[i]
		rank /= t.Dims[i]
	}
	return coords
}

// RankOf reports the rank at the given coordinates, honoring periodicity;
// it returns -1 for out-of-range coordinates on non-periodic dimensions
// (like MPI_PROC_NULL).
func (t *Cart) RankOf(coords []int) int {
	rank := 0
	for i, d := range t.Dims {
		c := coords[i]
		if c < 0 || c >= d {
			if !t.Periodic[i] {
				return -1
			}
			c = ((c % d) + d) % d
		}
		rank = rank*d + c
	}
	return rank
}

// Shift reports the (source, dest) ranks displaced along dim
// (MPI_Cart_shift); -1 plays the role of MPI_PROC_NULL.
func (t *Cart) Shift(dim, disp int) (src, dst int) {
	coords := t.Coords(t.rank)
	up := make([]int, len(coords))
	down := make([]int, len(coords))
	copy(up, coords)
	copy(down, coords)
	up[dim] += disp
	down[dim] -= disp
	return t.RankOf(down), t.RankOf(up)
}

// Dims2 suggests a balanced 2-factor decomposition of n (MPI_Dims_create
// for two dimensions).
func Dims2(n int) (int, int) {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best, n / best
}
