package mpi

import (
	"repro/internal/core"
)

// Collective-context tags (one per operation type, for readable traces;
// correctness comes from the dedicated collective context and MPI's
// non-overtaking order).
const (
	tagBcast = iota + 1
	tagBarrier
	tagGather
	tagScatter
	tagReduce
	tagScan
	tagAlltoall
	tagCommMgmt
)

// csend/crecv run point-to-point traffic on the communicator's collective
// context, keeping collectives isolated from user tags.
func (c *Comm) csend(dst, tag int, data []byte) error {
	wr, err := c.worldRank(dst)
	if err != nil {
		return err
	}
	req, err := c.ep.Isend(c.p, wr, tag, c.ctx+1, core.ModeStandard, data)
	if err != nil {
		return err
	}
	_, err = c.ep.Wait(c.p, req)
	return err
}

func (c *Comm) crecv(src, tag int, buf []byte) (Status, error) {
	wr, err := c.worldRank(src)
	if err != nil {
		return Status{}, err
	}
	req, err := c.ep.Irecv(c.p, wr, tag, c.ctx+1, buf)
	if err != nil {
		return Status{}, err
	}
	st, err := c.ep.Wait(c.p, req)
	return c.fixStatus(st), err
}

// isWorld reports whether the communicator spans the full world in rank
// order (hardware broadcast reaches exactly that set).
func (c *Comm) isWorld() bool {
	if len(c.group) != c.ep.Size() {
		return false
	}
	for i, wr := range c.group {
		if wr != i {
			return false
		}
	}
	return true
}

// Bcast broadcasts buf from root to every rank of the communicator
// (MPI_Bcast); buf is input at the root and output elsewhere. The
// algorithm follows the world's Bcast setting.
func (c *Comm) Bcast(root int, buf []byte) error {
	alg := c.w.Bcast
	hb, hasHW := c.ep.(core.HWBcaster)
	switch alg {
	case BcastHardware:
		if !hasHW {
			return core.Errorf(core.ErrInternal, "BcastHardware on a device without hardware broadcast")
		}
		if !c.isWorld() {
			return core.Errorf(core.ErrInternal, "hardware broadcast requires the world communicator")
		}
		wr, _ := c.worldRank(root)
		return hb.HWBcast(c.p, wr, c.ctx+1, buf)
	case BcastAuto:
		if hasHW && c.isWorld() {
			wr, _ := c.worldRank(root)
			return hb.HWBcast(c.p, wr, c.ctx+1, buf)
		}
		return c.bcastBinomial(root, buf)
	case BcastLinear:
		return c.bcastLinear(root, buf)
	case BcastPipelined:
		return c.bcastPipelined(root, buf)
	default:
		return c.bcastBinomial(root, buf)
	}
}

// bcastSegment is the pipeline stage size for BcastPipelined.
const bcastSegment = 8 * 1024

// bcastPipelined streams buf through the chain root, root+1, ..., in
// bcastSegment-sized pieces: while rank r forwards segment k, rank r-1 is
// already sending it segment k+1. Completion latency approaches one
// traversal plus one full payload time, instead of log2(P) payload times.
func (c *Comm) bcastPipelined(root int, buf []byte) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	rel := (c.rank - root + p) % p
	prev := (c.rank - 1 + p) % p
	next := (c.rank + 1) % p
	last := rel == p-1

	nseg := (len(buf) + bcastSegment - 1) / bcastSegment
	if nseg == 0 {
		nseg = 1
	}
	var fwd *Request
	for k := 0; k < nseg; k++ {
		lo := k * bcastSegment
		hi := lo + bcastSegment
		if hi > len(buf) {
			hi = len(buf)
		}
		seg := buf[lo:hi]
		if rel != 0 {
			if _, err := c.crecv(prev, tagBcast, seg); err != nil {
				return err
			}
		}
		if !last {
			if fwd != nil {
				if _, err := c.ep.Wait(c.p, fwd.req); err != nil {
					return err
				}
			}
			wr, err := c.worldRank(next)
			if err != nil {
				return err
			}
			req, err := c.ep.Isend(c.p, wr, tagBcast, c.ctx+1, core.ModeStandard, seg)
			if err != nil {
				return err
			}
			fwd = &Request{c: c, req: req}
		}
	}
	if fwd != nil {
		if _, err := fwd.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// bcastLinear is the paper's cluster broadcast: a succession of
// point-to-point messages from the root.
func (c *Comm) bcastLinear(root int, buf []byte) error {
	if c.rank == root {
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.csend(r, tagBcast, buf); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := c.crecv(root, tagBcast, buf)
	return err
}

// bcastBinomial is MPICH's tree broadcast over point-to-point messages:
// each rank receives from the parent at its lowest set bit (in root-relative
// numbering), then forwards down each lower bit.
func (c *Comm) bcastBinomial(root int, buf []byte) error {
	p := c.Size()
	rel := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			parent := ((rel - mask) + root) % p
			if _, err := c.crecv(parent, tagBcast, buf); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if child := rel + mask; child < p {
			if err := c.csend((child+root)%p, tagBcast, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// Barrier blocks until every rank of the communicator has entered it
// (MPI_Barrier); dissemination algorithm, log2(P) rounds.
func (c *Comm) Barrier() error {
	p := c.Size()
	token := []byte{0}
	in := make([]byte, 1)
	for k := 1; k < p; k <<= 1 {
		to := (c.rank + k) % p
		from := (c.rank - k + p) % p
		rr, err := c.irecvCtx(from, tagBarrier, in)
		if err != nil {
			return err
		}
		if err := c.csend(to, tagBarrier, token); err != nil {
			return err
		}
		if _, err := c.ep.Wait(c.p, rr); err != nil {
			return err
		}
	}
	return nil
}

func (c *Comm) irecvCtx(src, tag int, buf []byte) (*core.Request, error) {
	wr, err := c.worldRank(src)
	if err != nil {
		return nil, err
	}
	return c.ep.Irecv(c.p, wr, tag, c.ctx+1, buf)
}

// Gather collects each rank's n-byte contribution at the root, which
// receives Size()*n bytes ordered by rank (MPI_Gather). recvBuf is only
// used at the root.
func (c *Comm) Gather(root int, send []byte, recvBuf []byte) error {
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = len(send)
	}
	return c.Gatherv(root, send, recvBuf, counts)
}

// Gatherv is Gather with per-rank counts; recvBuf must hold their sum.
func (c *Comm) Gatherv(root int, send []byte, recvBuf []byte, counts []int) error {
	if c.rank != root {
		return c.csend(root, tagGather, send)
	}
	off := 0
	for r := 0; r < c.Size(); r++ {
		if r == root {
			copy(recvBuf[off:off+counts[r]], send)
		} else {
			if _, err := c.crecv(r, tagGather, recvBuf[off:off+counts[r]]); err != nil {
				return err
			}
		}
		off += counts[r]
	}
	return nil
}

// Scatter distributes Size() slices of n bytes from the root's sendBuf,
// one per rank (MPI_Scatter); recv receives this rank's slice.
func (c *Comm) Scatter(root int, sendBuf []byte, recv []byte) error {
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = len(recv)
	}
	return c.Scatterv(root, sendBuf, counts, recv)
}

// Scatterv is Scatter with per-rank counts.
func (c *Comm) Scatterv(root int, sendBuf []byte, counts []int, recv []byte) error {
	if c.rank != root {
		_, err := c.crecv(root, tagScatter, recv)
		return err
	}
	off := 0
	for r := 0; r < c.Size(); r++ {
		if r == root {
			copy(recv, sendBuf[off:off+counts[r]])
		} else {
			if err := c.csend(r, tagScatter, sendBuf[off:off+counts[r]]); err != nil {
				return err
			}
		}
		off += counts[r]
	}
	return nil
}

// Allgather gathers every rank's n bytes at every rank (MPI_Allgather).
func (c *Comm) Allgather(send []byte, recvBuf []byte) error {
	if err := c.Gather(0, send, recvBuf); err != nil {
		return err
	}
	return c.Bcast(0, recvBuf)
}

// Op combines src into dst elementwise over packed representations
// (MPI_Op). Both slices have equal length.
type Op func(dst, src []byte)

// Reduce combines each rank's send buffer with op, leaving the result in
// recv at the root (MPI_Reduce); binomial fan-in tree.
func (c *Comm) Reduce(root int, op Op, send []byte, recv []byte) error {
	p := c.Size()
	rel := (c.rank - root + p) % p
	acc := make([]byte, len(send))
	copy(acc, send)
	in := make([]byte, len(send))
	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask != 0 {
			parent := ((rel &^ mask) + root) % p
			return c.csend(parent, tagReduce, acc)
		}
		src := rel | mask
		if src < p {
			if _, err := c.crecv((src+root)%p, tagReduce, in); err != nil {
				return err
			}
			op(acc, in)
		}
	}
	if c.rank == root {
		copy(recv, acc)
	}
	return nil
}

// Allreduce is Reduce to rank 0 followed by Bcast (MPI_Allreduce).
func (c *Comm) Allreduce(op Op, send []byte, recv []byte) error {
	tmp := recv
	if c.rank != 0 {
		tmp = make([]byte, len(send))
	}
	if err := c.Reduce(0, op, send, tmp); err != nil {
		return err
	}
	if c.rank == 0 {
		copy(recv, tmp)
	}
	return c.Bcast(0, recv)
}

// Scan computes the inclusive prefix reduction: rank r receives the
// combination of ranks 0..r (MPI_Scan); linear chain.
func (c *Comm) Scan(op Op, send []byte, recv []byte) error {
	copy(recv, send)
	if c.rank > 0 {
		in := make([]byte, len(send))
		if _, err := c.crecv(c.rank-1, tagScan, in); err != nil {
			return err
		}
		// recv = prefix(0..r-1) op send
		copy(recv, in)
		op(recv, send)
	}
	if c.rank < c.Size()-1 {
		return c.csend(c.rank+1, tagScan, recv)
	}
	return nil
}

// Alltoall exchanges n-byte slices between all pairs: rank r's send slice
// i lands in rank i's recv slice r (MPI_Alltoall). n = len(send)/Size().
func (c *Comm) Alltoall(send []byte, recvBuf []byte) error {
	p := c.Size()
	n := len(send) / p
	copy(recvBuf[c.rank*n:(c.rank+1)*n], send[c.rank*n:(c.rank+1)*n])
	for round := 1; round < p; round++ {
		to := (c.rank + round) % p
		from := (c.rank - round + p) % p
		rr, err := c.irecvCtx(from, tagAlltoall, recvBuf[from*n:(from+1)*n])
		if err != nil {
			return err
		}
		if err := c.csend(to, tagAlltoall, send[to*n:(to+1)*n]); err != nil {
			return err
		}
		if _, err := c.ep.Wait(c.p, rr); err != nil {
			return err
		}
	}
	return nil
}
