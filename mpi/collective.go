package mpi

import (
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Collectives route through the algorithm layer (internal/coll): each call
// resolves to a registered algorithm — forced by World.Tune / the legacy
// Bcast knob, or auto-selected by message size, communicator size, and
// platform capability — and the layer books per-algorithm rounds/bytes
// into the rank's cost account and trace timeline.

// collComm adapts a communicator to the algorithm layer's narrow
// interface: rank-addressed point-to-point traffic on the communicator's
// collective context (ctx+1), keeping collectives isolated from user tags.
type collComm struct{ c *Comm }

func (k collComm) Rank() int { return k.c.rank }
func (k collComm) Size() int { return len(k.c.group) }

func (k collComm) Send(dst, tag int, data []byte) error {
	r, err := k.Isend(dst, tag, data)
	if err != nil {
		return err
	}
	return k.Wait(r)
}

func (k collComm) Recv(src, tag int, buf []byte) error {
	r, err := k.Irecv(src, tag, buf)
	if err != nil {
		return err
	}
	return k.Wait(r)
}

func (k collComm) Isend(dst, tag int, data []byte) (coll.Req, error) {
	wr, err := k.c.worldRank(dst)
	if err != nil {
		return nil, err
	}
	return k.c.ep.Isend(k.c.p, wr, tag, k.c.ctx+1, core.ModeStandard, data)
}

func (k collComm) Irecv(src, tag int, buf []byte) (coll.Req, error) {
	wr, err := k.c.worldRank(src)
	if err != nil {
		return nil, err
	}
	return k.c.ep.Irecv(k.c.p, wr, tag, k.c.ctx+1, buf)
}

func (k collComm) Wait(r coll.Req) error {
	_, err := k.c.ep.Wait(k.c.p, r.(*core.Request))
	return err
}

func (k collComm) HasHW() bool {
	_, ok := k.c.ep.(core.HWBcaster)
	return ok && k.c.isWorld()
}

func (k collComm) HWBcast(root int, buf []byte) error {
	hb, ok := k.c.ep.(core.HWBcaster)
	if !ok {
		return core.Errorf(core.ErrInternal, "hardware broadcast on a device without one")
	}
	if !k.c.isWorld() {
		return core.Errorf(core.ErrInternal, "hardware broadcast requires the world communicator")
	}
	wr, err := k.c.worldRank(root)
	if err != nil {
		return err
	}
	return hb.HWBcast(k.c.p, wr, k.c.ctx+1, buf)
}

func (k collComm) Acct() *core.Acct { return k.c.ep.Acct() }

func (k collComm) TraceLog() *trace.Log {
	if t, ok := k.c.ep.(interface{ TraceLog() *trace.Log }); ok {
		return t.TraceLog()
	}
	return nil
}

func (k collComm) WorldRank() int { return k.c.ep.Rank() }
func (k collComm) Now() sim.Time  { return k.c.p.Now() }

// runColl dispatches one collective call through the algorithm layer
// under this communicator's tuning.
func (c *Comm) runColl(op string, bytes int, a coll.Args) error {
	return coll.Run(collComm{c}, c.tune, op, bytes, a)
}

// isWorld reports whether the communicator spans the full world in rank
// order (hardware broadcast reaches exactly that set).
func (c *Comm) isWorld() bool {
	if len(c.group) != c.ep.Size() {
		return false
	}
	for i, wr := range c.group {
		if wr != i {
			return false
		}
	}
	return true
}

// ---- argument validation ---------------------------------------------
//
// The checks below turn malformed buffers into proper MPI errors
// (truncation-style) instead of out-of-range panics inside an algorithm.

// uniformCounts builds the per-rank count slice of the fixed-size
// collectives.
func uniformCounts(p, n int) []int {
	counts := make([]int, p)
	for i := range counts {
		counts[i] = n
	}
	return counts
}

// checkCounts validates a per-rank count slice.
func checkCounts(op string, p int, counts []int) error {
	if len(counts) != p {
		return core.Errorf(core.ErrInternal, "%s: %d counts for communicator of size %d", op, len(counts), p)
	}
	for i, n := range counts {
		if n < 0 {
			return core.Errorf(core.ErrInternal, "%s: negative count %d for rank %d", op, n, i)
		}
	}
	return nil
}

func sum(counts []int) int {
	t := 0
	for _, n := range counts {
		t += n
	}
	return t
}

// Bcast broadcasts buf from root to every rank of the communicator
// (MPI_Bcast); buf is input at the root and output elsewhere.
func (c *Comm) Bcast(root int, buf []byte) error {
	return c.runColl("bcast", len(buf), coll.Args{Root: root, Buf: buf})
}

// Barrier blocks until every rank of the communicator has entered it
// (MPI_Barrier).
func (c *Comm) Barrier() error {
	return c.runColl("barrier", 0, coll.Args{})
}

// Gather collects each rank's n-byte contribution at the root, which
// receives Size()*n bytes ordered by rank (MPI_Gather). recvBuf is only
// used at the root.
func (c *Comm) Gather(root int, send []byte, recvBuf []byte) error {
	return c.gather("Gather", root, send, recvBuf, uniformCounts(c.Size(), len(send)))
}

// Gatherv is Gather with per-rank counts; recvBuf must hold their sum.
func (c *Comm) Gatherv(root int, send []byte, recvBuf []byte, counts []int) error {
	return c.gather("Gatherv", root, send, recvBuf, counts)
}

func (c *Comm) gather(op string, root int, send, recvBuf []byte, counts []int) error {
	if err := checkCounts(op, c.Size(), counts); err != nil {
		return err
	}
	if c.rank == root {
		if need := sum(counts); len(recvBuf) < need {
			return core.Errorf(core.ErrTruncate, "%s: %d-byte receive buffer truncates %d gathered bytes", op, len(recvBuf), need)
		}
	}
	name := "gather"
	if op == "Gatherv" {
		name = "gatherv"
	}
	return c.runColl(name, len(send), coll.Args{Root: root, Send: send, Recv: recvBuf, Counts: counts})
}

// Scatter distributes Size() slices of n bytes from the root's sendBuf,
// one per rank (MPI_Scatter); recv receives this rank's slice.
func (c *Comm) Scatter(root int, sendBuf []byte, recv []byte) error {
	return c.scatter("Scatter", root, sendBuf, uniformCounts(c.Size(), len(recv)), recv)
}

// Scatterv is Scatter with per-rank counts.
func (c *Comm) Scatterv(root int, sendBuf []byte, counts []int, recv []byte) error {
	return c.scatter("Scatterv", root, sendBuf, counts, recv)
}

func (c *Comm) scatter(op string, root int, sendBuf []byte, counts []int, recv []byte) error {
	if c.rank == root {
		if err := checkCounts(op, c.Size(), counts); err != nil {
			return err
		}
		if need := sum(counts); len(sendBuf) < need {
			return core.Errorf(core.ErrTruncate, "%s: %d-byte send buffer short of %d scattered bytes", op, len(sendBuf), need)
		}
		if len(recv) < counts[c.rank] {
			return core.Errorf(core.ErrTruncate, "%s: %d-byte receive buffer truncates rank %d's %d bytes", op, len(recv), c.rank, counts[c.rank])
		}
	}
	name := "scatter"
	if op == "Scatterv" {
		name = "scatterv"
	}
	return c.runColl(name, len(recv), coll.Args{Root: root, Send: sendBuf, Counts: counts, Recv: recv})
}

// Allgather gathers every rank's n bytes at every rank (MPI_Allgather).
func (c *Comm) Allgather(send []byte, recvBuf []byte) error {
	p := c.Size()
	if need := p * len(send); len(recvBuf) < need {
		return core.Errorf(core.ErrTruncate, "Allgather: %d-byte receive buffer truncates %d gathered bytes", len(recvBuf), need)
	}
	return c.runColl("allgather", len(send), coll.Args{Send: send, Recv: recvBuf, Counts: uniformCounts(p, len(send))})
}

// Op combines src into dst elementwise over packed representations
// (MPI_Op). Both slices have equal length.
type Op func(dst, src []byte)

// Reduce combines each rank's send buffer with op, leaving the result in
// recv at the root (MPI_Reduce). Algorithms preserve rank order, so
// non-commutative (associative) operators reduce deterministically.
func (c *Comm) Reduce(root int, op Op, send []byte, recv []byte) error {
	if c.rank == root && len(recv) < len(send) {
		return core.Errorf(core.ErrTruncate, "Reduce: %d-byte receive buffer truncates %d-byte reduction", len(recv), len(send))
	}
	return c.runColl("reduce", len(send), coll.Args{Root: root, Op: op, Send: send, Recv: recv})
}

// Allreduce reduces every rank's send buffer and delivers the result
// everywhere (MPI_Allreduce). The element size is unknown for an opaque
// byte operator, so vector-splitting algorithms are ruled out; use
// AllreduceElem (or the typed wrappers) to enable them.
func (c *Comm) Allreduce(op Op, send []byte, recv []byte) error {
	return c.AllreduceElem(op, 0, send, recv)
}

// AllreduceElem is Allreduce with a declared element size in bytes:
// algorithms that partition the vector (reduce-scatter+allgather) split
// only at elem-byte boundaries. elem 0 means the buffer is opaque.
func (c *Comm) AllreduceElem(op Op, elem int, send []byte, recv []byte) error {
	if len(recv) < len(send) {
		return core.Errorf(core.ErrTruncate, "Allreduce: %d-byte receive buffer truncates %d-byte reduction", len(recv), len(send))
	}
	if elem > 0 && len(send)%elem != 0 {
		return core.Errorf(core.ErrInternal, "Allreduce: %d-byte buffer not a multiple of %d-byte elements", len(send), elem)
	}
	return c.runColl("allreduce", len(send), coll.Args{Op: op, Elem: elem, Send: send, Recv: recv})
}

// Scan computes the inclusive prefix reduction: rank r receives the
// combination of ranks 0..r (MPI_Scan).
func (c *Comm) Scan(op Op, send []byte, recv []byte) error {
	if len(recv) < len(send) {
		return core.Errorf(core.ErrTruncate, "Scan: %d-byte receive buffer truncates %d-byte reduction", len(recv), len(send))
	}
	return c.runColl("scan", len(send), coll.Args{Op: op, Send: send, Recv: recv})
}

// Alltoall exchanges n-byte slices between all pairs: rank r's send slice
// i lands in rank i's recv slice r (MPI_Alltoall). n = len(send)/Size().
func (c *Comm) Alltoall(send []byte, recvBuf []byte) error {
	p := c.Size()
	if p > 0 && len(send)%p != 0 {
		return core.Errorf(core.ErrTruncate, "Alltoall: %d-byte send buffer not divisible into %d rank slices", len(send), p)
	}
	if len(recvBuf) < len(send) {
		return core.Errorf(core.ErrTruncate, "Alltoall: %d-byte receive buffer truncates %d exchanged bytes", len(recvBuf), len(send))
	}
	return c.runColl("alltoall", len(send), coll.Args{Send: send, Recv: recvBuf})
}
