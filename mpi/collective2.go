package mpi

import (
	"time"

	"repro/internal/core"
)

// Extended collectives beyond the paper's Bcast: the vector variants and
// the derived reductions of MPI-1.

// Allgatherv gathers variable-sized contributions everywhere; counts[i] is
// rank i's byte count and recvBuf holds their sum, ordered by rank.
func (c *Comm) Allgatherv(send []byte, recvBuf []byte, counts []int) error {
	if err := c.Gatherv(0, send, recvBuf, counts); err != nil {
		return err
	}
	return c.Bcast(0, recvBuf)
}

// Alltoallv exchanges variable-sized slices: rank r sends
// send[sdispls[i]:sdispls[i]+scounts[i]] to rank i and receives rank i's
// slice for r at recv[rdispls[i]:rdispls[i]+rcounts[i]].
func (c *Comm) Alltoallv(send []byte, scounts, sdispls []int, recv []byte, rcounts, rdispls []int) error {
	p := c.Size()
	copy(recv[rdispls[c.rank]:rdispls[c.rank]+rcounts[c.rank]],
		send[sdispls[c.rank]:sdispls[c.rank]+scounts[c.rank]])
	for round := 1; round < p; round++ {
		to := (c.rank + round) % p
		from := (c.rank - round + p) % p
		rr, err := c.irecvCtx(from, tagAlltoall, recv[rdispls[from]:rdispls[from]+rcounts[from]])
		if err != nil {
			return err
		}
		if err := c.csend(to, tagAlltoall, send[sdispls[to]:sdispls[to]+scounts[to]]); err != nil {
			return err
		}
		if _, err := c.ep.Wait(c.p, rr); err != nil {
			return err
		}
	}
	return nil
}

// ReduceScatter reduces send elementwise across ranks and scatters the
// result: rank r receives the slice of counts[r] bytes at offset
// sum(counts[:r]) (MPI_Reduce_scatter, implemented as reduce + scatterv).
func (c *Comm) ReduceScatter(op Op, send []byte, recv []byte, counts []int) error {
	var full []byte
	if c.rank == 0 {
		full = make([]byte, len(send))
	}
	if err := c.Reduce(0, op, send, full); err != nil {
		return err
	}
	return c.Scatterv(0, full, counts, recv)
}

// Exscan computes the exclusive prefix reduction: rank r receives the
// combination of ranks 0..r-1; rank 0's recv is left untouched
// (MPI_Exscan).
func (c *Comm) Exscan(op Op, send []byte, recv []byte) error {
	// Linear chain carrying the inclusive prefix; each rank hands its
	// predecessor-prefix downstream before folding its own contribution.
	incl := make([]byte, len(send))
	if c.rank > 0 {
		if _, err := c.crecv(c.rank-1, tagScan, incl); err != nil {
			return err
		}
		copy(recv, incl)
	}
	if c.rank < c.Size()-1 {
		out := make([]byte, len(send))
		if c.rank == 0 {
			copy(out, send)
		} else {
			copy(out, incl)
			op(out, send)
		}
		return c.csend(c.rank+1, tagScan, out)
	}
	return nil
}

// Wtick reports the virtual clock resolution, like MPI_Wtick.
func Wtick() time.Duration { return time.Nanosecond }

// GetCount reports how many whole elements of dt a status describes, and
// whether the byte count is an exact multiple (MPI_Get_count semantics:
// not-a-multiple maps to MPI_UNDEFINED).
func GetCount(st Status, dt Datatype) (int, bool) {
	sz := dt.Size()
	if sz == 0 {
		return 0, true
	}
	if st.Count%sz != 0 {
		return 0, false
	}
	return st.Count / sz, true
}

// Abort terminates the job abnormally from one rank by surfacing an error
// the runner reports (MPI_Abort's moral equivalent under simulation: there
// is no process to kill, so the error carries the code).
func (c *Comm) Abort(code int) error {
	return core.Errorf(core.ErrInternal, "MPI_Abort called on rank %d with code %d", c.rank, code)
}
