package mpi

import (
	"time"

	"repro/internal/coll"
	"repro/internal/core"
)

// Extended collectives beyond the paper's Bcast: the vector variants and
// the derived reductions of MPI-1, all routed through the algorithm layer.

// Allgatherv gathers variable-sized contributions everywhere; counts[i] is
// rank i's byte count and recvBuf holds their sum, ordered by rank.
func (c *Comm) Allgatherv(send []byte, recvBuf []byte, counts []int) error {
	if err := checkCounts("Allgatherv", c.Size(), counts); err != nil {
		return err
	}
	if need := sum(counts); len(recvBuf) < need {
		return core.Errorf(core.ErrTruncate, "Allgatherv: %d-byte receive buffer truncates %d gathered bytes", len(recvBuf), need)
	}
	return c.runColl("allgatherv", len(send), coll.Args{Send: send, Recv: recvBuf, Counts: counts})
}

// Alltoallv exchanges variable-sized slices: rank r sends
// send[sdispls[i]:sdispls[i]+scounts[i]] to rank i and receives rank i's
// slice for r at recv[rdispls[i]:rdispls[i]+rcounts[i]].
func (c *Comm) Alltoallv(send []byte, scounts, sdispls []int, recv []byte, rcounts, rdispls []int) error {
	p := c.Size()
	for _, v := range []struct {
		name    string
		counts  []int
		displs  []int
		buf     []byte
		bufName string
	}{
		{"send", scounts, sdispls, send, "send"},
		{"receive", rcounts, rdispls, recv, "receive"},
	} {
		if err := checkCounts("Alltoallv", p, v.counts); err != nil {
			return err
		}
		if len(v.displs) != p {
			return core.Errorf(core.ErrInternal, "Alltoallv: %d %s displacements for communicator of size %d", len(v.displs), v.name, p)
		}
		for i := 0; i < p; i++ {
			if v.displs[i] < 0 || v.displs[i]+v.counts[i] > len(v.buf) {
				return core.Errorf(core.ErrTruncate, "Alltoallv: rank %d's slice [%d:%d] outside %d-byte %s buffer",
					i, v.displs[i], v.displs[i]+v.counts[i], len(v.buf), v.bufName)
			}
		}
	}
	return c.runColl("alltoallv", sum(scounts), coll.Args{
		Send: send, SCounts: scounts, SDispls: sdispls,
		Recv: recv, RCounts: rcounts, RDispls: rdispls,
	})
}

// ReduceScatter reduces send elementwise across ranks and scatters the
// result: rank r receives the slice of counts[r] bytes at offset
// sum(counts[:r]) (MPI_Reduce_scatter, implemented as reduce + scatterv).
func (c *Comm) ReduceScatter(op Op, send []byte, recv []byte, counts []int) error {
	if err := checkCounts("ReduceScatter", c.Size(), counts); err != nil {
		return err
	}
	if need := sum(counts); need > len(send) {
		return core.Errorf(core.ErrTruncate, "ReduceScatter: counts total %d bytes but send buffer has %d", need, len(send))
	}
	if len(recv) < counts[c.rank] {
		return core.Errorf(core.ErrTruncate, "ReduceScatter: %d-byte receive buffer truncates rank %d's %d bytes", len(recv), c.rank, counts[c.rank])
	}
	return c.runColl("reducescatter", len(send), coll.Args{Op: op, Send: send, Recv: recv, Counts: counts})
}

// Exscan computes the exclusive prefix reduction: rank r receives the
// combination of ranks 0..r-1; rank 0's recv is left untouched
// (MPI_Exscan).
func (c *Comm) Exscan(op Op, send []byte, recv []byte) error {
	if c.rank > 0 && len(recv) < len(send) {
		return core.Errorf(core.ErrTruncate, "Exscan: %d-byte receive buffer truncates %d-byte reduction", len(recv), len(send))
	}
	return c.runColl("exscan", len(send), coll.Args{Op: op, Send: send, Recv: recv})
}

// Wtick reports the virtual clock resolution, like MPI_Wtick.
func Wtick() time.Duration { return time.Nanosecond }

// GetCount reports how many whole elements of dt a status describes, and
// whether the byte count is an exact multiple (MPI_Get_count semantics:
// not-a-multiple maps to MPI_UNDEFINED).
func GetCount(st Status, dt Datatype) (int, bool) {
	sz := dt.Size()
	if sz == 0 {
		return 0, true
	}
	if st.Count%sz != 0 {
		return 0, false
	}
	return st.Count / sz, true
}

// Abort terminates the job abnormally from one rank by surfacing an error
// the runner reports (MPI_Abort's moral equivalent under simulation: there
// is no process to kill, so the error carries the code).
func (c *Comm) Abort(code int) error {
	return core.Errorf(core.ErrInternal, "MPI_Abort called on rank %d with code %d", c.rank, code)
}
