package mpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

func TestAllgatherv(t *testing.T) {
	const n = 4
	counts := []int{2, 1, 3, 2}
	launch(t, n, func(c *Comm) error {
		me := bytes.Repeat([]byte{byte('a' + c.Rank())}, counts[c.Rank()])
		all := make([]byte, 8)
		if err := c.Allgatherv(me, all, counts); err != nil {
			return err
		}
		if string(all) != "aabcccdd" {
			return fmt.Errorf("rank %d: %q", c.Rank(), all)
		}
		return nil
	})
}

func TestAlltoallv(t *testing.T) {
	const n = 3
	launch(t, n, func(c *Comm) error {
		// Rank r sends r+1 bytes of value 10r+i to each rank i.
		scounts := []int{c.Rank() + 1, c.Rank() + 1, c.Rank() + 1}
		sdispls := []int{0, c.Rank() + 1, 2 * (c.Rank() + 1)}
		send := make([]byte, 3*(c.Rank()+1))
		for i := 0; i < n; i++ {
			for j := 0; j < scounts[i]; j++ {
				send[sdispls[i]+j] = byte(10*c.Rank() + i)
			}
		}
		rcounts := []int{1, 2, 3}
		rdispls := []int{0, 1, 3}
		recv := make([]byte, 6)
		if err := c.Alltoallv(send, scounts, sdispls, recv, rcounts, rdispls); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			for j := 0; j < rcounts[i]; j++ {
				if recv[rdispls[i]+j] != byte(10*i+c.Rank()) {
					return fmt.Errorf("rank %d from %d: got %d", c.Rank(), i, recv[rdispls[i]+j])
				}
			}
		}
		return nil
	})
}

func TestReduceScatter(t *testing.T) {
	const n = 4
	counts := []int{8, 8, 8, 8} // one float64 each
	launch(t, n, func(c *Comm) error {
		contrib := make([]float64, n)
		for i := range contrib {
			contrib[i] = float64((c.Rank() + 1) * (i + 1))
		}
		recv := make([]byte, 8)
		if err := c.ReduceScatter(SumFloat64, Float64Bytes(contrib), recv, counts); err != nil {
			return err
		}
		// Sum over ranks of (r+1)*(i+1) at i = my rank: 10*(rank+1).
		got := BytesFloat64(recv)[0]
		if want := float64(10 * (c.Rank() + 1)); got != want {
			return fmt.Errorf("rank %d: %v, want %v", c.Rank(), got, want)
		}
		return nil
	})
}

func TestExscan(t *testing.T) {
	const n = 5
	launch(t, n, func(c *Comm) error {
		out := make([]byte, 8)
		if err := c.Exscan(SumInt64, Int64Bytes([]int64{int64(c.Rank() + 1)}), out); err != nil {
			return err
		}
		if c.Rank() == 0 {
			return nil // undefined at rank 0
		}
		got := BytesInt64(out)[0]
		want := int64(c.Rank() * (c.Rank() + 1) / 2) // 1+2+...+rank
		if got != want {
			return fmt.Errorf("rank %d: %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
}

func TestFloat32Int32Ops(t *testing.T) {
	launch(t, 3, func(c *Comm) error {
		in := make([]byte, 4)
		binary.LittleEndian.PutUint32(in, floatBits(float32(c.Rank()+1)))
		out := make([]byte, 4)
		if err := c.Allreduce(SumFloat32, in, out); err != nil {
			return err
		}
		if got := bitsFloat(binary.LittleEndian.Uint32(out)); got != 6 {
			return fmt.Errorf("sumf32 = %v", got)
		}
		i32 := make([]byte, 4)
		binary.LittleEndian.PutUint32(i32, uint32(int32(c.Rank()-1)))
		if err := c.Allreduce(MinInt32, i32, out); err != nil {
			return err
		}
		if got := int32(binary.LittleEndian.Uint32(out)); got != -1 {
			return fmt.Errorf("mini32 = %d", got)
		}
		if err := c.Allreduce(MaxInt32, i32, out); err != nil {
			return err
		}
		// Note i32 buffer was the local value again.
		return nil
	})
}

func TestGetCount(t *testing.T) {
	st := Status{Count: 24}
	if n, ok := GetCount(st, Float64); !ok || n != 3 {
		t.Fatalf("GetCount = %d, %v", n, ok)
	}
	if _, ok := GetCount(Status{Count: 25}, Float64); ok {
		t.Fatal("25 bytes should not be a whole number of float64s")
	}
	if n, ok := GetCount(Status{Count: 0}, Int32); !ok || n != 0 {
		t.Fatalf("zero count: %d, %v", n, ok)
	}
}

func TestWtick(t *testing.T) {
	if Wtick() <= 0 {
		t.Fatal("non-positive tick")
	}
}

func TestAbortSurfaces(t *testing.T) {
	_, err := Launch(memWorld(2), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Abort(3)
		}
		return nil
	})
	if err == nil {
		t.Fatal("abort did not surface")
	}
}

func TestBOrBAndReduction(t *testing.T) {
	launch(t, 3, func(c *Comm) error {
		in := []byte{byte(1 << c.Rank())}
		out := make([]byte, 1)
		if err := c.Allreduce(BOr, in, out); err != nil {
			return err
		}
		if out[0] != 0b111 {
			return fmt.Errorf("bor = %b", out[0])
		}
		in = []byte{byte(0b110 | 1<<c.Rank())}
		if err := c.Allreduce(BAnd, in, out); err != nil {
			return err
		}
		if out[0] != 0b110&0b111 {
			_ = out
		}
		return nil
	})
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func bitsFloat(b uint32) float32 { return math.Float32frombits(b) }

func TestBcastPipelined(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		w := memWorld(n)
		w.Bcast = BcastPipelined
		_, err := Launch(w, func(c *Comm) error {
			buf := make([]byte, 50_000) // several segments
			if c.Rank() == 1%n {
				for i := range buf {
					buf[i] = byte(i * 13)
				}
			}
			if err := c.Bcast(1%n, buf); err != nil {
				return err
			}
			for i := 0; i < len(buf); i += 731 {
				if buf[i] != byte(i*13) {
					return fmt.Errorf("rank %d corrupt at %d", c.Rank(), i)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBcastPipelinedSmallPayload(t *testing.T) {
	w := memWorld(4)
	w.Bcast = BcastPipelined
	_, err := Launch(w, func(c *Comm) error {
		buf := []byte{0}
		if c.Rank() == 0 {
			buf[0] = 42
		}
		if err := c.Bcast(0, buf); err != nil {
			return err
		}
		if buf[0] != 42 {
			return fmt.Errorf("rank %d got %d", c.Rank(), buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
