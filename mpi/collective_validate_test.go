package mpi

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

// The collectives must turn malformed buffers into proper MPI errors
// (truncation-style, like a short point-to-point receive) instead of
// panicking out of an algorithm's slice arithmetic. Each case runs the bad
// call on every rank (or on a single-rank communicator for root-side
// checks, so no peer is left waiting on a rank that errored out early).

func wantCollErr(t *testing.T, ranks int, code core.ErrCode, substr string, body func(c *Comm) error) {
	t.Helper()
	_, err := Launch(memWorld(ranks), body)
	var me *core.Error
	if !errors.As(err, &me) {
		t.Fatalf("got %v, want a *core.Error containing %q", err, substr)
	}
	if me.Code != code || !strings.Contains(me.Error(), substr) {
		t.Fatalf("got code=%v %q, want code=%v containing %q", me.Code, me, code, substr)
	}
}

func TestAlltoallValidation(t *testing.T) {
	wantCollErr(t, 2, core.ErrTruncate, "not divisible into 2 rank slices", func(c *Comm) error {
		return c.Alltoall(make([]byte, 3), make([]byte, 4))
	})
	wantCollErr(t, 2, core.ErrTruncate, "receive buffer truncates", func(c *Comm) error {
		return c.Alltoall(make([]byte, 4), make([]byte, 2))
	})
}

func TestGatherValidation(t *testing.T) {
	wantCollErr(t, 1, core.ErrTruncate, "receive buffer truncates", func(c *Comm) error {
		return c.Gather(0, make([]byte, 8), make([]byte, 4))
	})
	wantCollErr(t, 1, core.ErrInternal, "2 counts for communicator of size 1", func(c *Comm) error {
		return c.Gatherv(0, make([]byte, 4), make([]byte, 8), []int{4, 4})
	})
	wantCollErr(t, 1, core.ErrInternal, "negative count", func(c *Comm) error {
		return c.Gatherv(0, make([]byte, 4), make([]byte, 8), []int{-4})
	})
}

func TestScatterValidation(t *testing.T) {
	wantCollErr(t, 1, core.ErrTruncate, "send buffer short", func(c *Comm) error {
		return c.Scatter(0, make([]byte, 4), make([]byte, 8))
	})
	wantCollErr(t, 1, core.ErrTruncate, "receive buffer truncates rank 0", func(c *Comm) error {
		return c.Scatterv(0, make([]byte, 8), []int{8}, make([]byte, 4))
	})
}

func TestAllgatherValidation(t *testing.T) {
	wantCollErr(t, 2, core.ErrTruncate, "receive buffer truncates 8 gathered bytes", func(c *Comm) error {
		return c.Allgather(make([]byte, 4), make([]byte, 6))
	})
	wantCollErr(t, 2, core.ErrTruncate, "truncates 7 gathered bytes", func(c *Comm) error {
		return c.Allgatherv(make([]byte, 4), make([]byte, 6), []int{4, 3})
	})
}

func TestReduceValidation(t *testing.T) {
	noop := func(dst, src []byte) {}
	wantCollErr(t, 1, core.ErrTruncate, "truncates 8-byte reduction", func(c *Comm) error {
		return c.Reduce(0, noop, make([]byte, 8), make([]byte, 4))
	})
	wantCollErr(t, 2, core.ErrTruncate, "truncates 8-byte reduction", func(c *Comm) error {
		return c.Allreduce(noop, make([]byte, 8), make([]byte, 4))
	})
	wantCollErr(t, 2, core.ErrInternal, "not a multiple of 8-byte elements", func(c *Comm) error {
		return c.AllreduceElem(noop, 8, make([]byte, 12), make([]byte, 12))
	})
	wantCollErr(t, 2, core.ErrTruncate, "Scan", func(c *Comm) error {
		return c.Scan(noop, make([]byte, 8), make([]byte, 4))
	})
	wantCollErr(t, 2, core.ErrTruncate, "ReduceScatter: counts total 12 bytes", func(c *Comm) error {
		return c.ReduceScatter(noop, make([]byte, 8), make([]byte, 8), []int{6, 6})
	})
	wantCollErr(t, 2, core.ErrTruncate, "ReduceScatter", func(c *Comm) error {
		return c.ReduceScatter(noop, make([]byte, 8), make([]byte, 2), []int{4, 4})
	})
}

func TestAlltoallvValidation(t *testing.T) {
	wantCollErr(t, 2, core.ErrInternal, "send displacements", func(c *Comm) error {
		return c.Alltoallv(make([]byte, 8), []int{4, 4}, []int{0}, make([]byte, 8), []int{4, 4}, []int{0, 4})
	})
	wantCollErr(t, 2, core.ErrTruncate, "outside 8-byte send buffer", func(c *Comm) error {
		return c.Alltoallv(make([]byte, 8), []int{4, 6}, []int{0, 4}, make([]byte, 16), []int{4, 6}, []int{0, 4})
	})
	wantCollErr(t, 2, core.ErrTruncate, "outside 6-byte receive buffer", func(c *Comm) error {
		return c.Alltoallv(make([]byte, 8), []int{4, 4}, []int{0, 4}, make([]byte, 6), []int{4, 4}, []int{0, 4})
	})
}

// TestExscanValidation: only ranks past 0 have a significant receive
// buffer, so only they must reject a short one. Rank 0 proceeds; its sends
// are small enough to complete eagerly against the errored peer.
func TestExscanValidation(t *testing.T) {
	wantCollErr(t, 2, core.ErrTruncate, "Exscan", func(c *Comm) error {
		noop := func(dst, src []byte) {}
		return c.Exscan(noop, make([]byte, 8), make([]byte, 4))
	})
}
