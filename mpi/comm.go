package mpi

import (
	"encoding/binary"
	"sort"

	"repro/internal/coll"
	"repro/internal/core"
)

// mgmtTune pins communicator-management traffic to the binomial broadcast
// regardless of user tuning: bootstrap must work on any communicator shape
// (a forced hardware broadcast is world-only, for instance).
var mgmtTune = coll.Tuning{"bcast": "binomial"}

// mgmtBcast broadcasts communicator-management metadata from root.
func (c *Comm) mgmtBcast(root int, buf []byte) error {
	return coll.Run(collComm{c}, mgmtTune, "bcast", len(buf), coll.Args{Root: root, Buf: buf})
}

// Communicator management: Dup and Split create new communicators whose
// context ids isolate their traffic from the parent's, as required by the
// MPI standard's library-composition guarantees. Agreement on the new
// context id is reached the way real implementations do it: rank 0 of the
// parent allocates and broadcasts.

// Dup creates a communicator with the same group but fresh contexts
// (MPI_Comm_dup). Collective over the parent.
func (c *Comm) Dup() (*Comm, error) {
	ctxBuf := make([]byte, 8)
	if c.rank == 0 {
		binary.LittleEndian.PutUint64(ctxBuf, uint64(c.w.allocCtxPair()))
	}
	if err := c.mgmtBcast(0, ctxBuf); err != nil {
		return nil, err
	}
	group := make([]int, len(c.group))
	copy(group, c.group)
	return &Comm{
		w:     c.w,
		p:     c.p,
		ep:    c.ep,
		ctx:   int(binary.LittleEndian.Uint64(ctxBuf)),
		group: group,
		rank:  c.rank,
		tune:  c.tune,
	}, nil
}

// Split partitions the communicator by color, ordering ranks within each
// new communicator by (key, parent rank) (MPI_Comm_split). Ranks passing
// color < 0 (like MPI_UNDEFINED) receive nil. Collective over the parent.
func (c *Comm) Split(color, key int) (*Comm, error) {
	p := c.Size()
	// Gather (color, key) pairs everywhere via the collective context.
	mine := make([]byte, 16)
	binary.LittleEndian.PutUint64(mine[0:], uint64(int64(color)))
	binary.LittleEndian.PutUint64(mine[8:], uint64(int64(key)))
	all := make([]byte, 16*p)
	if err := c.Gather(0, mine, all); err != nil {
		return nil, err
	}
	// Rank 0 appends the context ids: one pair per distinct color, in
	// ascending color order.
	meta := make([]byte, 16*p+8*p)
	if c.rank == 0 {
		copy(meta, all)
		colors := map[int64]int{}
		var order []int64
		for r := 0; r < p; r++ {
			col := int64(binary.LittleEndian.Uint64(all[16*r:]))
			if col < 0 {
				continue
			}
			if _, ok := colors[col]; !ok {
				colors[col] = 0
				order = append(order, col)
			}
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		ctxByColor := map[int64]int{}
		for _, col := range order {
			ctxByColor[col] = c.w.allocCtxPair()
		}
		for r := 0; r < p; r++ {
			col := int64(binary.LittleEndian.Uint64(all[16*r:]))
			ctx := -1
			if col >= 0 {
				ctx = ctxByColor[col]
			}
			binary.LittleEndian.PutUint64(meta[16*p+8*r:], uint64(int64(ctx)))
		}
	}
	if err := c.mgmtBcast(0, meta); err != nil {
		return nil, err
	}

	if color < 0 {
		return nil, nil
	}
	// Build my group: parent ranks with my color, sorted by (key, rank).
	type member struct{ key, parentRank int }
	var members []member
	myCtx := -1
	for r := 0; r < p; r++ {
		col := int64(binary.LittleEndian.Uint64(meta[16*r:]))
		k := int64(binary.LittleEndian.Uint64(meta[16*r+8:]))
		if col == int64(color) {
			members = append(members, member{int(k), r})
			if r == c.rank {
				myCtx = int(int64(binary.LittleEndian.Uint64(meta[16*p+8*r:])))
			}
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].parentRank < members[j].parentRank
	})
	group := make([]int, len(members))
	myNewRank := -1
	for i, m := range members {
		group[i] = c.group[m.parentRank]
		if m.parentRank == c.rank {
			myNewRank = i
		}
	}
	if myCtx < 0 || myNewRank < 0 {
		return nil, core.Errorf(core.ErrInternal, "split bookkeeping failed (ctx=%d rank=%d)", myCtx, myNewRank)
	}
	return &Comm{w: c.w, p: c.p, ep: c.ep, ctx: myCtx, group: group, rank: myNewRank, tune: c.tune}, nil
}

// Group returns a copy of the communicator's world-rank group.
func (c *Comm) Group() []int {
	g := make([]int, len(c.group))
	copy(g, c.group)
	return g
}

// Translate maps a rank of this communicator to the corresponding rank in
// other, or -1 when the process is not a member
// (MPI_Group_translate_ranks).
func (c *Comm) Translate(rank int, other *Comm) int {
	if rank < 0 || rank >= len(c.group) {
		return -1
	}
	return other.commRank(c.group[rank])
}
