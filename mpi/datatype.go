package mpi

import (
	"encoding/binary"
	"math"
	"time"

	"repro/internal/core"
)

// Datatype describes a (possibly non-contiguous) layout of typed elements
// in a byte buffer, in the spirit of MPI derived datatypes. Pack gathers
// one element from its layout into contiguous bytes; Unpack scatters back.
//
// Size is the packed byte count of one element; Extent is the span the
// element occupies in the source buffer (stride-aware, like MPI extents).
type Datatype interface {
	Size() int
	Extent() int
	Pack(dst, src []byte)
	Unpack(dst, src []byte)
}

// base is a contiguous fixed-width type.
type base int

// Basic datatypes.
const (
	Byte    base = 1
	Int16   base = 2
	Int32   base = 4
	Float32 base = 5 // distinct tag; width via width()
	Int64   base = 8
	Float64 base = 9
)

func (b base) width() int {
	switch b {
	case Byte:
		return 1
	case Int16:
		return 2
	case Int32, Float32:
		return 4
	case Int64, Float64:
		return 8
	default:
		panic("mpi: unknown basic datatype")
	}
}

func (b base) Size() int   { return b.width() }
func (b base) Extent() int { return b.width() }
func (b base) Pack(dst, src []byte) {
	copy(dst[:b.width()], src)
}
func (b base) Unpack(dst, src []byte) {
	copy(dst, src[:b.width()])
}

// Contig is count consecutive elements of a base type
// (MPI_Type_contiguous).
type Contig struct {
	Count int
	Of    Datatype
}

// Size implements Datatype: the packed bytes of all Count elements.
func (c Contig) Size() int { return c.Count * c.Of.Size() }

// Extent implements Datatype: contiguous elements span their extents
// back to back.
func (c Contig) Extent() int { return c.Count * c.Of.Extent() }

// Pack implements Datatype.
func (c Contig) Pack(dst, src []byte) {
	sz, ex := c.Of.Size(), c.Of.Extent()
	for i := 0; i < c.Count; i++ {
		c.Of.Pack(dst[i*sz:], src[i*ex:])
	}
}

// Unpack implements Datatype.
func (c Contig) Unpack(dst, src []byte) {
	sz, ex := c.Of.Size(), c.Of.Extent()
	for i := 0; i < c.Count; i++ {
		c.Of.Unpack(dst[i*ex:], src[i*sz:])
	}
}

// Vector is count blocks of blocklen elements separated by stride elements
// (MPI_Type_vector). Stride is in elements of the underlying type.
type Vector struct {
	Count, BlockLen, Stride int
	Of                      Datatype
}

// Size implements Datatype: Count blocks of BlockLen packed elements.
func (v Vector) Size() int { return v.Count * v.BlockLen * v.Of.Size() }

// Extent implements Datatype: the span from the first element through the
// end of the last block, stride included.
func (v Vector) Extent() int {
	if v.Count == 0 {
		return 0
	}
	return ((v.Count-1)*v.Stride + v.BlockLen) * v.Of.Extent()
}

// Pack implements Datatype.
func (v Vector) Pack(dst, src []byte) {
	sz, ex := v.Of.Size(), v.Of.Extent()
	o := 0
	for i := 0; i < v.Count; i++ {
		for j := 0; j < v.BlockLen; j++ {
			v.Of.Pack(dst[o:], src[(i*v.Stride+j)*ex:])
			o += sz
		}
	}
}

// Unpack implements Datatype.
func (v Vector) Unpack(dst, src []byte) {
	sz, ex := v.Of.Size(), v.Of.Extent()
	o := 0
	for i := 0; i < v.Count; i++ {
		for j := 0; j < v.BlockLen; j++ {
			v.Of.Unpack(dst[(i*v.Stride+j)*ex:], src[o:])
			o += sz
		}
	}
}

// Indexed is blocks of varying lengths at varying element displacements
// (MPI_Type_indexed).
type Indexed struct {
	BlockLens []int
	Displs    []int
	Of        Datatype
}

// Size implements Datatype: the packed bytes of every block.
func (x Indexed) Size() int {
	n := 0
	for _, b := range x.BlockLens {
		n += b
	}
	return n * x.Of.Size()
}

// Extent implements Datatype: the span through the end of the
// furthest-displaced block.
func (x Indexed) Extent() int {
	max := 0
	for i, b := range x.BlockLens {
		if end := x.Displs[i] + b; end > max {
			max = end
		}
	}
	return max * x.Of.Extent()
}

// Pack implements Datatype.
func (x Indexed) Pack(dst, src []byte) {
	sz, ex := x.Of.Size(), x.Of.Extent()
	o := 0
	for i, b := range x.BlockLens {
		for j := 0; j < b; j++ {
			x.Of.Pack(dst[o:], src[(x.Displs[i]+j)*ex:])
			o += sz
		}
	}
}

// Unpack implements Datatype.
func (x Indexed) Unpack(dst, src []byte) {
	sz, ex := x.Of.Size(), x.Of.Extent()
	o := 0
	for i, b := range x.BlockLens {
		for j := 0; j < b; j++ {
			x.Of.Unpack(dst[(x.Displs[i]+j)*ex:], src[o:])
			o += sz
		}
	}
}

// StructType is a sequence of fields at byte displacements, each with its
// own datatype and count (MPI_Type_struct).
type StructType struct {
	Fields []StructField
}

// StructField is one field of a StructType.
type StructField struct {
	Displ int // byte displacement within the struct
	Count int
	Of    Datatype
}

// Size implements Datatype: the packed bytes of every field.
func (s StructType) Size() int {
	n := 0
	for _, f := range s.Fields {
		n += f.Count * f.Of.Size()
	}
	return n
}

// Extent implements Datatype: the span through the end of the
// furthest-displaced field.
func (s StructType) Extent() int {
	max := 0
	for _, f := range s.Fields {
		if end := f.Displ + f.Count*f.Of.Extent(); end > max {
			max = end
		}
	}
	return max
}

// Pack implements Datatype.
func (s StructType) Pack(dst, src []byte) {
	o := 0
	for _, f := range s.Fields {
		sz, ex := f.Of.Size(), f.Of.Extent()
		for j := 0; j < f.Count; j++ {
			f.Of.Pack(dst[o:], src[f.Displ+j*ex:])
			o += sz
		}
	}
}

// Unpack implements Datatype.
func (s StructType) Unpack(dst, src []byte) {
	o := 0
	for _, f := range s.Fields {
		sz, ex := f.Of.Size(), f.Of.Extent()
		for j := 0; j < f.Count; j++ {
			f.Of.Unpack(dst[f.Displ+j*ex:], src[o:])
			o += sz
		}
	}
}

// Pack gathers count elements of dt from src into a fresh contiguous
// buffer (MPI_Pack), charging the copy to the calling rank.
func (c *Comm) Pack(dt Datatype, count int, src []byte) []byte {
	out := make([]byte, count*dt.Size())
	for i := 0; i < count; i++ {
		dt.Pack(out[i*dt.Size():], src[i*dt.Extent():])
	}
	c.Acct().Charge(c.p, core.CostCopy, chargePerByte(len(out)))
	return out
}

// Unpack scatters packed elements back into dst's layout (MPI_Unpack).
func (c *Comm) Unpack(dt Datatype, count int, packed, dst []byte) {
	for i := 0; i < count; i++ {
		dt.Unpack(dst[i*dt.Extent():], packed[i*dt.Size():])
	}
	c.Acct().Charge(c.p, core.CostCopy, chargePerByte(count*dt.Size()))
}

// chargePerByte is the nominal pack/unpack cost (a main-CPU memcpy at
// roughly the platforms' 10 MB/s).
func chargePerByte(n int) time.Duration { return time.Duration(n) * 100 * time.Nanosecond }

// SendTyped packs count elements of dt from src and sends them
// (the typed-buffer form of MPI_Send).
func (c *Comm) SendTyped(dst, tag int, dt Datatype, count int, src []byte) error {
	return c.Send(dst, tag, c.Pack(dt, count, src))
}

// RecvTyped receives count elements of dt into dst's layout.
func (c *Comm) RecvTyped(src, tag int, dt Datatype, count int, dst []byte) (Status, error) {
	packed := make([]byte, count*dt.Size())
	st, err := c.Recv(src, tag, packed)
	if err != nil {
		return st, err
	}
	c.Unpack(dt, count, packed, dst)
	return st, nil
}

// Float64Bytes views a []float64 as its little-endian byte encoding
// (copying), for use with the []byte message API.
func Float64Bytes(xs []float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// BytesFloat64 decodes Float64Bytes.
func BytesFloat64(b []byte) []float64 {
	xs := make([]float64, len(b)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs
}
