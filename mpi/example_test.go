package mpi_test

import (
	"fmt"

	"repro/internal/atm"
	"repro/mpi"
	"repro/platform/cluster"
	"repro/platform/meiko"
)

// A two-rank ping-pong on the modeled Meiko CS/2.
func Example() {
	_, err := meiko.Run(meiko.Config{Nodes: 2, Impl: meiko.LowLatency}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []byte("ping")); err != nil {
				return err
			}
			buf := make([]byte, 4)
			if _, err := c.Recv(1, 7, buf); err != nil {
				return err
			}
			fmt.Printf("rank 0 got %q\n", buf)
			return nil
		}
		buf := make([]byte, 4)
		if _, err := c.Recv(0, 7, buf); err != nil {
			return err
		}
		return c.Send(0, 7, []byte("pong"))
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: rank 0 got "pong"
}

// Collectives: an allreduce over the TCP/ATM cluster.
func ExampleComm_Allreduce() {
	_, err := cluster.Run(cluster.Config{Hosts: 4, Transport: cluster.TCP, Network: atm.OverATM}, func(c *mpi.Comm) error {
		sum, err := c.AllreduceFloat64(mpi.SumFloat64, []float64{float64(c.Rank() + 1)})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("sum of 1..4 = %v\n", sum[0])
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: sum of 1..4 = 10
}

// Nonblocking requests with MPI_ANY_SOURCE and probe-sized receives.
func ExampleComm_Probe() {
	_, err := meiko.Run(meiko.Config{Nodes: 3, Impl: meiko.LowLatency}, func(c *mpi.Comm) error {
		if c.Rank() != 0 {
			msg := fmt.Sprintf("hello from %d", c.Rank())
			return c.Send(0, c.Rank(), []byte(msg))
		}
		for i := 0; i < 2; i++ {
			st, err := c.Probe(mpi.AnySource, mpi.AnyTag)
			if err != nil {
				return err
			}
			buf := make([]byte, st.Count)
			if _, err := c.Recv(st.Source, st.Tag, buf); err != nil {
				return err
			}
			fmt.Printf("%s (%d bytes)\n", buf, st.Count)
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Unordered output:
	// hello from 1 (12 bytes)
	// hello from 2 (12 bytes)
}

// Wildcard receives: AnySource/AnyTag patterns match whichever message
// arrived first, and the returned Status reports the concrete source and
// tag. Per source, messages still match in send order (non-overtaking).
func ExampleComm_Recv_wildcard() {
	_, err := meiko.Run(meiko.Config{Nodes: 3, Impl: meiko.LowLatency}, func(c *mpi.Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, 10*c.Rank(), []byte{byte(c.Rank())})
		}
		buf := make([]byte, 1)
		for i := 0; i < 2; i++ {
			st, err := c.Recv(mpi.AnySource, mpi.AnyTag, buf)
			if err != nil {
				return err
			}
			fmt.Printf("from rank %d, tag %d\n", st.Source, st.Tag)
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Unordered output:
	// from rank 1, tag 10
	// from rank 2, tag 20
}

// Forcing collective algorithms: World.Tune pins operations to registered
// algorithms by name (everything else keeps auto-selecting).
func ExampleWorld_Tune() {
	w, _ := meiko.NewWorld(meiko.Config{Nodes: 4, Impl: meiko.LowLatency})
	w.Tune = mpi.Tuning{"bcast": "binomial"}
	_, err := mpi.Launch(w, func(c *mpi.Comm) error {
		buf := []byte{0}
		if c.Rank() == 0 {
			buf[0] = 42
		}
		if err := c.Bcast(0, buf); err != nil {
			return err
		}
		if c.Rank() == 3 {
			fmt.Println("rank 3 got", buf[0])
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: rank 3 got 42
}

// One-sided communication: a halo exchange where each rank Puts its
// boundary cell into its right neighbor's window, with fences delimiting
// the access epoch. On the Meiko the Put maps to Elan remote DMA; no
// receive is ever posted.
func ExampleWin() {
	_, err := meiko.Run(meiko.Config{Nodes: 4, Impl: meiko.LowLatency}, func(c *mpi.Comm) error {
		win, err := c.WinCreate(1) // one halo cell per rank
		if err != nil {
			return err
		}
		right := (c.Rank() + 1) % c.Size()
		if err := win.Put(right, 0, []byte{byte(10 * c.Rank())}); err != nil {
			return err
		}
		if err := win.Fence(); err != nil { // close the epoch: puts visible
			return err
		}
		if c.Rank() == 0 {
			fmt.Println("rank 0's halo cell:", win.Bytes()[0])
		}
		return win.Free()
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: rank 0's halo cell: 30
}

// Accumulate: every rank adds into a shared counter on rank 0. The sum
// operators are commutative, so the result is deterministic regardless of
// arrival order.
func ExampleWin_Accumulate() {
	_, err := meiko.Run(meiko.Config{Nodes: 4, Impl: meiko.LowLatency}, func(c *mpi.Comm) error {
		size := 0
		if c.Rank() == 0 {
			size = 8 // the counter lives on rank 0
		}
		win, err := c.WinCreate(size)
		if err != nil {
			return err
		}
		one := make([]byte, 8)
		one[0] = 1 // little-endian int64(1)
		if err := win.Accumulate(0, 0, one, mpi.AccSumInt64); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Println("counter:", win.Bytes()[0])
		}
		return win.Free()
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: counter: 4
}

// Derived datatypes: sending a strided matrix column.
func ExampleVector() {
	col := mpi.Vector{Count: 3, BlockLen: 1, Stride: 3, Of: mpi.Float64}
	_, err := meiko.Run(meiko.Config{Nodes: 2, Impl: meiko.LowLatency}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			matrix := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9} // row-major 3x3
			return c.SendTyped(1, 0, col, 1, mpi.Float64Bytes(matrix))
		}
		out := make([]byte, 9*8)
		if _, err := c.RecvTyped(0, 0, col, 1, out); err != nil {
			return err
		}
		dec := mpi.BytesFloat64(out)
		fmt.Println("column 0:", dec[0], dec[3], dec[6])
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: column 0: 1 4 7
}
