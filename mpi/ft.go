package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/sim"
)

// ULFM-style fault tolerance (User-Level Failure Mitigation): a process
// death is survivable. The platform injects deaths on a simulated-time
// schedule (ScheduleKills); each survivor's engine declares the victim
// dead after the backend's detection latency and fails exactly the
// operations that can never complete. Applications then recover with the
// ULFM triple: Revoke poisons the broken communicator on every survivor,
// Agree reaches consensus across the survivors, and Shrink builds a dense
// working communicator from them.

// recoveryCtx is the dedicated point-to-point context Agree and Shrink
// exchange on. It is negative, which the engine treats as never revocable:
// recovery traffic must flow even while every user communicator is
// poisoned.
const recoveryCtx = -2

// defaultFTDetect is the detection latency when the platform set none.
const defaultFTDetect = 100 * time.Microsecond

// ftEndpoint is the engine surface fault tolerance needs. The poll-model
// engine implements it on every platform; the MPICH-over-tport baseline
// does not (the co-processor owns matching, so the host library cannot
// fail requests per-peer), which ScheduleKills reports as a typed error.
type ftEndpoint interface {
	core.Endpoint
	Fatal(error)
	PeerDown(rank int, reason error)
	PeerDead(rank int) bool
	DeadRanks() []int
	FailureAck()
	FailureAcked() []int
	RevokeCtx(p *sim.Proc, ctx int)
	Revoked(ctx int) bool
}

// IsPeerDown reports whether err carries the typed peer-death code: the
// operation failed because a specific peer process died, not because of a
// program bug or a link failure. Survivors branch on this to enter the
// Revoke/Agree/Shrink recovery path.
func IsPeerDown(err error) bool {
	var ce *core.Error
	return errors.As(err, &ce) && ce.Code == core.ErrPeerDown
}

// IsRevoked reports whether err carries the typed revocation code: the
// communicator was poisoned by Comm.Revoke (here or at a peer) and every
// operation on it fails fast. The communicator's group may be fine — the
// revoke is a control signal; rebuild with Shrink.
func IsRevoked(err error) bool {
	var ce *core.Error
	return errors.As(err, &ce) && ce.Code == core.ErrRevoked
}

// ScheduleKills installs a fault schedule: each entry kills one rank at a
// simulated time. The victim's engine turns fatal at exactly At on its own
// lane's clock, and every survivor independently declares the victim dead
// at At+FTDetect — a scheduled deadline, not heartbeat traffic, so
// detection is deterministic, lane-safe, and costs zero messages when no
// faults are configured. It fails with a typed error on endpoints that
// cannot fail requests per-peer (the MPICH-over-tport baseline).
func (w *World) ScheduleKills(kills []atm.Kill) error {
	if len(kills) == 0 {
		return nil
	}
	fts := make([]ftEndpoint, len(w.eps))
	for i, ep := range w.eps {
		ft, ok := ep.(ftEndpoint)
		if !ok {
			return core.Errorf(core.ErrInternal, "endpoint %T does not support fault tolerance (kill schedules need the poll-model engine)", ep)
		}
		fts[i] = ft
	}
	detect := w.FTDetect
	if detect <= 0 {
		detect = defaultFTDetect
	}
	for _, k := range kills {
		if k.Rank < 0 || k.Rank >= len(w.eps) {
			return core.Errorf(core.ErrInternal, "kill schedule names rank %d of a %d-rank world", k.Rank, len(w.eps))
		}
		victim := fts[k.Rank]
		reason := core.Errorf(core.ErrPeerDown, "rank %d killed at %v by fault schedule", k.Rank, k.At)
		w.Sched(k.Rank).After(k.At, func() { victim.Fatal(reason) })
		for r := range w.eps {
			if r == k.Rank {
				continue
			}
			surv := fts[r]
			rank := k.Rank
			w.Sched(r).After(k.At+detect, func() { surv.PeerDown(rank, reason) })
		}
	}
	return nil
}

// shrinkCtx hands out the context pair for the shrink of parent described
// by key, memoized so every survivor picks the same contexts without a
// bootstrap broadcast over the (typically revoked) parent. The context
// value is a pure matching label — which number a racing pair of distinct
// shrinks draws never affects timing — so the mutex is enough even on
// parallel lanes.
func (w *World) shrinkCtx(key string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.shrinkCtxs == nil {
		w.shrinkCtxs = make(map[string]int)
	}
	if ctx, ok := w.shrinkCtxs[key]; ok {
		return ctx
	}
	ctx := w.nextCtx
	w.nextCtx += 2
	w.shrinkCtxs[key] = ctx
	return ctx
}

// ft asserts the communicator's endpoint supports fault tolerance.
func (c *Comm) ft() (ftEndpoint, error) {
	ft, ok := c.ep.(ftEndpoint)
	if !ok {
		return nil, core.Errorf(core.ErrInternal, "endpoint %T does not support fault tolerance", c.ep)
	}
	return ft, nil
}

// Revoke poisons the communicator (ULFM's MPI_Comm_revoke): every pending
// and future operation on it fails with a revoked error, at this rank
// immediately and at every survivor within bounded simulated time via a
// reliable broadcast (each rank re-forwards the notice on first receipt,
// so the revocation completes even if the revoker dies mid-broadcast).
// Not collective — any member may revoke after spotting a failure; peers
// hung inside a collective on this communicator are woken with the error
// instead of waiting forever on a dead partner's contribution.
func (c *Comm) Revoke() error {
	ft, err := c.ft()
	if err != nil {
		return err
	}
	ft.RevokeCtx(c.p, c.ctx)
	return nil
}

// Dead reports whether this rank's own process has been killed by the
// fault schedule. A killed process keeps executing its body — the
// simulation of death is that every communication it attempts fails with
// its own death reason — so fault-aware applications use Dead to tell "I
// died" from "a peer died" and bow out instead of entering recovery.
func (c *Comm) Dead() bool {
	f, ok := c.ep.(interface{ FatalErr() error })
	return ok && f.FatalErr() != nil
}

// Revoked reports whether the communicator has been revoked.
func (c *Comm) Revoked() bool {
	ft, err := c.ft()
	if err != nil {
		return false
	}
	return ft.Revoked(c.ctx)
}

// FailureAck acknowledges all currently detected process failures (ULFM's
// MPI_Comm_failure_ack): wildcard receives posted after the call stop
// failing for the acknowledged deaths.
func (c *Comm) FailureAck() error {
	ft, err := c.ft()
	if err != nil {
		return err
	}
	ft.FailureAck()
	return nil
}

// FailureAcked reports the communicator ranks covered by the latest
// FailureAck, in detection order (ULFM's MPI_Comm_failure_get_acked).
func (c *Comm) FailureAcked() ([]int, error) {
	ft, err := c.ft()
	if err != nil {
		return nil, err
	}
	var out []int
	for _, wr := range ft.FailureAcked() {
		if cr := c.commRank(wr); cr >= 0 {
			out = append(out, cr)
		}
	}
	return out, nil
}

// Agree reaches agreement across the communicator's survivors on the
// bitwise AND of flag (ULFM's MPI_Comm_agree), merging every member's
// knowledge of dead ranks along the way. It runs on the dedicated
// recovery context, so it works on a revoked communicator — that is the
// point: Revoke first, then Agree/Shrink to rebuild.
func (c *Comm) Agree(flag uint64) (uint64, error) {
	out, _, err := c.agree(flag)
	return out, err
}

// agree is the dissemination consensus under Agree and Shrink: two sweeps
// of the Bruck pattern (round k sends to rank+2^k, receives from
// rank-2^k, over the original group) carrying a dead-rank bitmap
// (OR-merged) and the flag word (AND-merged). Survivors detect each
// scheduled death at the same simulated instant, so their dead sets agree
// when the exchange starts and the skip decisions stay symmetric; rounds
// that race a fresh death degrade gracefully (a peer-down exchange is
// treated as contributing nothing). The payload is far below every
// backend's eager threshold.
func (c *Comm) agree(flag uint64) (uint64, []bool, error) {
	ft, err := c.ft()
	if err != nil {
		return 0, nil, err
	}
	n := len(c.group)
	dead := make([]bool, n) // by communicator rank
	for _, wr := range ft.DeadRanks() {
		if cr := c.commRank(wr); cr >= 0 {
			dead[cr] = true
		}
	}
	if n == 1 {
		return flag, dead, nil
	}
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	nb := (n + 7) / 8
	inbuf := make([]byte, nb+8)
	for sweep := 0; sweep < 2; sweep++ {
		for k := 0; k < rounds; k++ {
			to := (c.rank + 1<<k) % n
			from := ((c.rank-1<<k)%n + n) % n
			// Tag space: one slot per (parent context, sweep, round), so
			// concurrent recoveries of different communicators never cross.
			tag := c.ctx*256 + sweep*128 + k
			payload := make([]byte, nb+8)
			for i := 0; i < n; i++ {
				if dead[i] {
					payload[i/8] |= 1 << (i % 8)
				}
			}
			binary.LittleEndian.PutUint64(payload[nb:], flag)
			var sr, rr *core.Request
			if from != c.rank && !dead[from] {
				if rr, err = ft.Irecv(c.p, c.group[from], tag, recoveryCtx, inbuf); err != nil {
					if !IsPeerDown(err) {
						return 0, nil, err
					}
					rr = nil
				}
			}
			if to != c.rank && !dead[to] {
				if sr, err = ft.Isend(c.p, c.group[to], tag, recoveryCtx, core.ModeStandard, payload); err != nil && !IsPeerDown(err) {
					return 0, nil, err
				}
			}
			if sr != nil {
				if _, werr := ft.Wait(c.p, sr); werr != nil && !IsPeerDown(werr) {
					return 0, nil, werr
				}
			}
			if rr != nil {
				if _, werr := ft.Wait(c.p, rr); werr == nil {
					for i := 0; i < n; i++ {
						if inbuf[i/8]&(1<<(i%8)) != 0 {
							dead[i] = true
						}
					}
					flag &= binary.LittleEndian.Uint64(inbuf[nb:])
				} else if !IsPeerDown(werr) {
					return 0, nil, werr
				}
			}
		}
	}
	return flag, dead, nil
}

// Shrink builds a working communicator from the survivors (ULFM's
// MPI_Comm_shrink): the members not agreed dead, densely re-ranked in
// their original communicator order, on fresh contexts every survivor
// derives without touching the revoked parent. Collective over the
// survivors. The usual recovery sequence, from the rank that caught the
// failure first to the ranks woken out of a collective by the revoke:
//
//	sum, err := comm.AllreduceInt64(mpi.SumInt64, contrib)
//	if mpi.IsPeerDown(err) {
//		comm.Revoke() // wake peers hung on the dead rank's contribution
//	}
//	if mpi.IsPeerDown(err) || mpi.IsRevoked(err) {
//		smaller, serr := comm.Shrink()
//		if serr != nil {
//			return serr
//		}
//		sum, err = smaller.AllreduceInt64(mpi.SumInt64, contrib) // survivors finish
//	}
func (c *Comm) Shrink() (*Comm, error) {
	_, dead, err := c.agree(0)
	if err != nil {
		return nil, err
	}
	group := make([]int, 0, len(c.group))
	newRank := -1
	for r, wr := range c.group {
		if dead[r] {
			continue
		}
		if r == c.rank {
			newRank = len(group)
		}
		group = append(group, wr)
	}
	if newRank < 0 {
		return nil, core.Errorf(core.ErrInternal, "shrink called from a rank agreed dead")
	}
	// Every survivor computes the same key (the agreed dead set over the
	// same parent), so the memo hands all of them the same context pair.
	key := fmt.Sprintf("%d|%v", c.ctx, dead)
	ctx := c.w.shrinkCtx(key)
	return &Comm{w: c.w, p: c.p, ep: c.ep, ctx: ctx, group: group, rank: newRank, tune: c.tune}, nil
}
