package mpi_test

import (
	"fmt"
	"time"

	"repro/mpi"
	"repro/platform/registry"
)

// The ULFM recovery loop: a fault schedule kills rank 2 mid-run, the
// survivors' allreduce fails with ErrPeerDown, and they revoke the
// communicator, shrink to the agreed-live membership, and retry the
// reduction there. Survivor ranks 0, 1, and 3 contribute rank+1.
func ExampleComm_Shrink() {
	spec := registry.Spec{Platform: "mem", Ranks: 4, Kills: "2@50us"}
	_, err := registry.Run(spec, func(c *mpi.Comm) error {
		c.Compute(100 * time.Microsecond) // the kill lands in this window
		contrib := []int64{int64(c.Rank()) + 1}
		cur := c
		for {
			sum, err := cur.AllreduceInt64(mpi.SumInt64, contrib)
			if err == nil {
				if cur != c && cur.Rank() == 0 {
					fmt.Printf("sum %d over %d survivors\n", sum[0], cur.Size())
				}
				return nil
			}
			switch {
			case c.Dead():
				return nil // the injected death, not an application failure
			case mpi.IsPeerDown(err):
				// First observer: poison the communicator so peers blocked
				// on the dead rank wake with ErrRevoked instead of hanging.
				if rerr := cur.Revoke(); rerr != nil {
					return rerr
				}
			case mpi.IsRevoked(err):
				// A peer revoked first; fall through to the rebuild.
			default:
				return err
			}
			smaller, serr := cur.Shrink()
			if serr != nil {
				return serr
			}
			cur = smaller
		}
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: sum 7 over 3 survivors
}

// Fault-tolerant agreement: Agree ANDs one flag word across the live
// membership, so a rank that failed its phase clears a bit for everyone.
func ExampleComm_Agree() {
	_, err := registry.Run(registry.Spec{Platform: "mem", Ranks: 4}, func(c *mpi.Comm) error {
		flag := uint64(0b11) // bit 0: phase done; bit 1: checkpoint written
		if c.Rank() == 3 {
			flag = 0b01 // rank 3 could not checkpoint
		}
		agreed, err := c.Agree(flag)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("agreed flags %#b\n", agreed)
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: agreed flags 0b1
}
