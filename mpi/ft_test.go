package mpi_test

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/mpi"
)

func memWorld(t *testing.T, n int) *mpi.World {
	t.Helper()
	s := sim.NewScheduler(1)
	fab := core.NewMemFabric(s, time.Microsecond, 180)
	eps := make([]core.Endpoint, n)
	for i := range eps {
		e := core.NewEngine(s, i, n, core.EngineCosts{}, nil)
		fab.Attach(e)
		eps[i] = e
	}
	w := mpi.NewWorld(s, eps)
	w.FTDetect = 10 * time.Microsecond
	return w
}

// TestShrinkAllreduceSurvivesKill is the core ULFM loop: kill one rank mid
// allreduce, survivors revoke, shrink, and finish the reduction on the
// shrunken communicator with the correct survivor-only sum.
func TestShrinkAllreduceSurvivesKill(t *testing.T) {
	const n, victim = 4, 2
	w := memWorld(t, n)
	if err := w.ScheduleKills([]atm.Kill{{Rank: victim, At: 50 * time.Microsecond}}); err != nil {
		t.Fatalf("ScheduleKills: %v", err)
	}
	wantSum := int64(0)
	for r := 0; r < n; r++ {
		if r != victim {
			wantSum += int64(r)
		}
	}
	rep, err := mpi.Launch(w, func(c *mpi.Comm) error {
		contrib := []int64{int64(c.Rank())}
		if c.Rank() == victim {
			// Nap past the kill so the survivors are parked inside the
			// collective waiting on our contribution when the death lands;
			// our own call then fails with our death reason.
			c.Compute(100 * time.Microsecond)
			_, aerr := c.AllreduceInt64(mpi.SumInt64, contrib)
			if aerr == nil {
				t.Errorf("victim allreduce succeeded past its own death")
			}
			return nil
		}
		_, aerr := c.AllreduceInt64(mpi.SumInt64, contrib)
		switch {
		case mpi.IsPeerDown(aerr):
			if rerr := c.Revoke(); rerr != nil {
				return rerr
			}
		case mpi.IsRevoked(aerr):
			// A peer spotted the death first and revoked; proceed.
		case aerr == nil:
			t.Errorf("rank %d: allreduce succeeded despite dead member", c.Rank())
		default:
			return aerr
		}
		smaller, serr := c.Shrink()
		if serr != nil {
			return serr
		}
		if smaller.Size() != n-1 {
			t.Errorf("rank %d: shrunken size = %d, want %d", c.Rank(), smaller.Size(), n-1)
		}
		sum, aerr := smaller.AllreduceInt64(mpi.SumInt64, contrib)
		if aerr != nil {
			return aerr
		}
		if sum[0] != wantSum {
			t.Errorf("rank %d: survivor sum = %d, want %d", c.Rank(), sum[0], wantSum)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Launch: %v (errs %v)", err, rep.Errs)
	}
}

// TestAgreeMergesFlags checks the AND semantics and the dead-set merge.
func TestAgreeMergesFlags(t *testing.T) {
	const n, victim = 5, 1
	w := memWorld(t, n)
	if err := w.ScheduleKills([]atm.Kill{{Rank: victim, At: 5 * time.Microsecond}}); err != nil {
		t.Fatalf("ScheduleKills: %v", err)
	}
	if _, err := mpi.Launch(w, func(c *mpi.Comm) error {
		if c.Rank() == victim {
			c.Compute(time.Millisecond) // die during the nap
			return nil
		}
		c.Compute(100 * time.Microsecond) // everyone past the detection deadline
		flag, err := c.Agree(0xff &^ uint64(1<<c.Rank()))
		if err != nil {
			return err
		}
		// AND of 0xff minus each survivor's own bit.
		want := uint64(0xff)
		for r := 0; r < n; r++ {
			if r != victim {
				want &^= 1 << r
			}
		}
		if flag != want {
			t.Errorf("rank %d: agree flag = %#x, want %#x", c.Rank(), flag, want)
		}
		return nil
	}); err != nil {
		t.Fatalf("Launch: %v", err)
	}
}

// TestWildcardRecvFailsUntilAck checks the ULFM wildcard rule: a pending
// any-source receive fails on a death, and new ones keep failing until the
// failure is acknowledged.
func TestWildcardRecvFailsUntilAck(t *testing.T) {
	const n, victim = 3, 2
	w := memWorld(t, n)
	if err := w.ScheduleKills([]atm.Kill{{Rank: victim, At: 20 * time.Microsecond}}); err != nil {
		t.Fatalf("ScheduleKills: %v", err)
	}
	if _, err := mpi.Launch(w, func(c *mpi.Comm) error {
		switch c.Rank() {
		case 0:
			buf := make([]byte, 8)
			// The wildcard receive is pending when rank 2 dies: it must fail
			// (the dead rank may have been the only sender).
			if _, rerr := c.Recv(mpi.AnySource, 7, buf); !mpi.IsPeerDown(rerr) {
				t.Errorf("pending wildcard recv: err = %v, want peer-down", rerr)
			}
			// Still failing before the ack, fine after.
			if _, rerr := c.Recv(mpi.AnySource, 7, buf); !mpi.IsPeerDown(rerr) {
				t.Errorf("pre-ack wildcard recv: err = %v, want peer-down", rerr)
			}
			if aerr := c.FailureAck(); aerr != nil {
				return aerr
			}
			if acked, _ := c.FailureAcked(); len(acked) != 1 || acked[0] != victim {
				t.Errorf("FailureAcked = %v, want [%d]", acked, victim)
			}
			if _, rerr := c.Recv(mpi.AnySource, 7, buf); rerr != nil {
				t.Errorf("post-ack wildcard recv: %v", rerr)
			}
			return nil
		case 1:
			c.Compute(200 * time.Microsecond) // past rank 0's ack
			return c.Send(0, 7, make([]byte, 8))
		default:
			c.Compute(time.Millisecond) // die napping
			return nil
		}
	}); err != nil {
		t.Fatalf("Launch: %v", err)
	}
}

// TestKillRejectedOnMPICH checks the typed error for endpoints that cannot
// fail requests per peer.
func TestSendToDeadPeerFailsFast(t *testing.T) {
	const n, victim = 2, 1
	w := memWorld(t, n)
	if err := w.ScheduleKills([]atm.Kill{{Rank: victim, At: 10 * time.Microsecond}}); err != nil {
		t.Fatalf("ScheduleKills: %v", err)
	}
	if _, err := mpi.Launch(w, func(c *mpi.Comm) error {
		if c.Rank() == victim {
			c.Compute(time.Millisecond)
			return nil
		}
		c.Compute(100 * time.Microsecond)
		if serr := c.Send(victim, 1, make([]byte, 4)); !mpi.IsPeerDown(serr) {
			t.Errorf("send to dead rank: err = %v, want peer-down", serr)
		}
		return nil
	}); err != nil {
		t.Fatalf("Launch: %v", err)
	}
}
