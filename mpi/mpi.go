// Package mpi is the public API of the reproduction: an MPI-1 style
// message-passing library with point-to-point communication in all four
// send modes (standard, buffered, synchronous, ready; blocking and
// nonblocking), probes, persistent requests, derived datatypes,
// communicator management, and collective operations, running over either
// modeled platform (Meiko CS/2 or the ATM/Ethernet cluster — see the
// platform packages).
//
// Programs are written as a rank body func(*Comm) error; the platform
// runners spawn one simulated process per rank and hand each its
// world communicator. Time inside a rank body is virtual: Wtime reads the
// simulation clock and Compute models application computation.
package mpi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Wildcards, re-exported from the engine.
const (
	AnySource = core.AnySource
	AnyTag    = core.AnyTag
)

// Status describes a completed receive.
type Status = core.Status

// Tuning maps collective operation names to forced algorithm names — the
// type of World.Tune. A nil Tuning auto-selects every operation by message
// size, communicator size, and platform capability.
type Tuning = coll.Tuning

// ParseTuning parses "op=alg,op=alg" (e.g. "bcast=binomial,allreduce=rsag")
// into a Tuning, validating both operation and algorithm names against the
// registry — a typo reports the available listing instead of silently
// auto-selecting.
func ParseTuning(s string) (Tuning, error) { return coll.ParseTuning(s) }

// BcastAlg selects the broadcast algorithm.
type BcastAlg int

const (
	// BcastAuto uses the platform's hardware broadcast when the
	// communicator spans the whole world and the device has one, falling
	// back to a binomial tree.
	BcastAuto BcastAlg = iota
	// BcastLinear sends root -> each rank in turn (the paper's cluster
	// implementation of MPI_Bcast).
	BcastLinear
	// BcastBinomial uses a binomial tree of point-to-point messages
	// (MPICH's algorithm).
	BcastBinomial
	// BcastHardware requires the hardware broadcast; it is an error if the
	// device has none or the communicator is not the world.
	BcastHardware
	// BcastPipelined streams the payload through a rank chain in segments,
	// overlapping the stages — the classic large-message broadcast that
	// point-to-point trees leave on the table.
	BcastPipelined
)

// World owns the per-rank endpoints of one job and the shared communicator
// state (context-id allocation). It is created by the platform runners.
type World struct {
	S     *sim.Scheduler
	Bcast BcastAlg
	// Tune forces collective algorithms by registered name, per operation
	// (see ParseTuning); a "bcast" entry wins over the legacy Bcast knob.
	// Operations without an entry auto-select by message size, communicator
	// size, and platform capability.
	Tune Tuning
	// FTDetect is the failure-detection latency the platform wired in: how
	// long after a scheduled kill each survivor declares the victim dead
	// (see ScheduleKills). Platform builders calibrate it to the transport's
	// loss-recovery horizon; zero falls back to a 100 µs default.
	FTDetect sim.Duration
	eps      []core.Endpoint
	mu       sync.Mutex // guards nextCtx (ranks may run on parallel lanes)
	nextCtx  int
	// shrinkCtxs memoizes the context pair agreed for each (parent context,
	// dead set) so every survivor of a Shrink picks the same fresh contexts
	// without communicating over the (possibly revoked) parent.
	shrinkCtxs map[string]int
	rankDone   []sim.Time

	// Sharded-kernel wiring; nil/empty on single-scheduler worlds. Sh is
	// the control plane and laneOf maps world rank -> lane; Launch spawns
	// each rank on its lane and drives Sh.Run instead of S.Run.
	Sh     *sim.Shard
	laneOf []int

	// group is the world communicator's identity rank mapping, built once
	// and shared read-only by every rank's Comm — at thousands of ranks,
	// per-rank copies cost O(n²) memory and blow the cache on every
	// worldRank translation.
	group []int
}

// NewWorld wraps endpoints (one per rank, indexed by rank) into a world.
func NewWorld(s *sim.Scheduler, eps []core.Endpoint) *World {
	group := make([]int, len(eps))
	for i := range group {
		group[i] = i
	}
	return &World{S: s, eps: eps, nextCtx: 2, rankDone: make([]sim.Time, len(eps)), group: group}
}

// NewShardedWorld wraps endpoints built on sh's lanes (rank i's endpoint
// on lane laneOf[i]) into a world driven by the sharded kernel. W.S is
// lane 0, for callers that need a scheduler handle for world-global state.
func NewShardedWorld(sh *sim.Shard, eps []core.Endpoint, laneOf []int) *World {
	w := NewWorld(sh.Lane(0), eps)
	w.Sh, w.laneOf = sh, laneOf
	return w
}

// Sched reports the scheduler that owns rank r.
func (w *World) Sched(r int) *sim.Scheduler {
	if w.Sh == nil {
		return w.S
	}
	return w.Sh.Lane(w.laneOf[r])
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.eps) }

// Traceable endpoints can emit message timelines (the profiling
// interface); both engine flavors implement it.
type Traceable interface {
	SetTrace(*trace.Log)
}

// EnableTrace attaches a fresh trace log to every traceable endpoint and
// returns it.
func (w *World) EnableTrace() *trace.Log {
	l := &trace.Log{}
	for _, ep := range w.eps {
		if t, ok := ep.(Traceable); ok {
			t.SetTrace(l)
		}
	}
	return l
}

// tuning folds the legacy Bcast knob into the world's collective tuning:
// an explicit Tune["bcast"] entry wins, otherwise a non-Auto Bcast maps to
// the corresponding registered algorithm name.
func (w *World) tuning() coll.Tuning {
	name := ""
	switch w.Bcast {
	case BcastLinear:
		name = "linear"
	case BcastBinomial:
		name = "binomial"
	case BcastHardware:
		name = "hardware"
	case BcastPipelined:
		name = "pipelined"
	}
	if name == "" {
		return w.Tune
	}
	if _, forced := w.Tune["bcast"]; forced {
		return w.Tune
	}
	t := coll.Tuning{"bcast": name}
	for op, alg := range w.Tune {
		t[op] = alg
	}
	return t
}

// allocCtxPair hands out a fresh (point-to-point, collective) context-id
// pair. Callers must invoke it from exactly one rank per communicator
// creation and distribute the result (Dup/Split do this at their root),
// mirroring how real implementations agree on context ids. The mutex makes
// concurrent creations from different communicators safe when ranks run on
// parallel shard lanes (ids are agreed over messages, so allocation order
// never affects timing).
func (w *World) allocCtxPair() int {
	w.mu.Lock()
	c := w.nextCtx
	w.nextCtx += 2
	w.mu.Unlock()
	return c
}

// Comm binds one rank's endpoint to a communicator (a context-id pair and
// a group mapping communicator ranks to world ranks).
type Comm struct {
	w     *World
	p     *sim.Proc
	ep    core.Endpoint
	ctx   int         // point-to-point context; ctx+1 is the collective context
	group []int       // comm rank -> world rank
	rank  int         // this process's rank in the communicator
	tune  coll.Tuning // effective collective tuning, inherited by Dup/Split
}

// NewRankComm builds rank r's world communicator; used by platform runners.
// The identity group is shared across ranks (communicator groups are
// read-only after creation; Dup/Split build fresh ones).
func NewRankComm(w *World, r int, p *sim.Proc) *Comm {
	return &Comm{w: w, p: p, ep: w.eps[r], ctx: 0, group: w.group, rank: r, tune: w.tuning()}
}

// Rank reports the calling process's rank in the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size reports the communicator size.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank reports the calling process's rank in the world.
func (c *Comm) WorldRank() int { return c.ep.Rank() }

// Proc exposes the rank's simulated process (for platform integration).
func (c *Comm) Proc() *sim.Proc { return c.p }

// Endpoint exposes the underlying device endpoint.
func (c *Comm) Endpoint() core.Endpoint { return c.ep }

// Wtime reports elapsed virtual time, like MPI_Wtime.
func (c *Comm) Wtime() time.Duration { return c.p.Now().Duration() }

// Compute models local computation taking d of virtual time.
func (c *Comm) Compute(d time.Duration) {
	c.ep.Acct().Charge(c.p, core.CostCompute, d)
}

// Acct exposes this rank's cost account.
func (c *Comm) Acct() *core.Acct { return c.ep.Acct() }

// world rank of communicator rank r, with wildcard passthrough.
func (c *Comm) worldRank(r int) (int, error) {
	if r == AnySource {
		return AnySource, nil
	}
	if r < 0 || r >= len(c.group) {
		return 0, core.Errorf(core.ErrInternal, "rank %d out of range for communicator of size %d", r, len(c.group))
	}
	return c.group[r], nil
}

// commRank translates a world rank in a Status back to a communicator rank.
func (c *Comm) commRank(world int) int {
	for i, wr := range c.group {
		if wr == world {
			return i
		}
	}
	return -1
}

func (c *Comm) fixStatus(st Status) Status {
	st.Source = c.commRank(st.Source)
	return st
}

// BufferAttach provides buffered-send space (MPI_Buffer_attach).
func (c *Comm) BufferAttach(n int) { c.ep.BufferAttach(n) }

// BufferDetach removes the buffered-send buffer, returning its size.
func (c *Comm) BufferDetach() int { return c.ep.BufferDetach() }

// String identifies the communicator in traces.
func (c *Comm) String() string {
	return fmt.Sprintf("comm(ctx=%d rank=%d/%d)", c.ctx, c.rank, len(c.group))
}
