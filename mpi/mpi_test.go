package mpi

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// memWorld builds an n-rank world over the reference in-memory transport.
func memWorld(n int) *World {
	s := sim.NewScheduler(1)
	s.MaxEvents = 5_000_000
	fab := core.NewMemFabric(s, time.Microsecond, 180)
	eps := make([]core.Endpoint, n)
	for i := range eps {
		e := core.NewEngine(s, i, n, core.EngineCosts{}, nil)
		fab.Attach(e)
		eps[i] = e
	}
	return NewWorld(s, eps)
}

func launch(t *testing.T, n int, body func(c *Comm) error) *Report {
	t.Helper()
	rep, err := Launch(memWorld(n), body)
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	return rep
}

func TestSendRecvBasic(t *testing.T) {
	launch(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 5, []byte("ping"))
		}
		buf := make([]byte, 4)
		st, err := c.Recv(0, 5, buf)
		if err != nil {
			return err
		}
		if string(buf) != "ping" || st.Source != 0 || st.Count != 4 {
			t.Errorf("got %q, %+v", buf, st)
		}
		return nil
	})
}

func TestRingSendrecv(t *testing.T) {
	const n = 6
	launch(t, n, func(c *Comm) error {
		right := (c.Rank() + 1) % n
		left := (c.Rank() - 1 + n) % n
		out := []byte{byte(c.Rank())}
		in := make([]byte, 1)
		st, err := c.Sendrecv(right, 1, out, left, 1, in)
		if err != nil {
			return err
		}
		if int(in[0]) != left || st.Source != left {
			t.Errorf("rank %d got %d from %d", c.Rank(), in[0], st.Source)
		}
		return nil
	})
}

func TestWtimeAdvances(t *testing.T) {
	launch(t, 1, func(c *Comm) error {
		t0 := c.Wtime()
		c.Compute(3 * time.Millisecond)
		if d := c.Wtime() - t0; d != 3*time.Millisecond {
			t.Errorf("Wtime advanced %v, want 3ms", d)
		}
		return nil
	})
}

func TestBcastAlgorithms(t *testing.T) {
	for _, alg := range []BcastAlg{BcastLinear, BcastBinomial, BcastAuto} {
		alg := alg
		t.Run(fmt.Sprint(alg), func(t *testing.T) {
			for _, n := range []int{1, 2, 3, 7, 8} {
				w := memWorld(n)
				w.Bcast = alg
				rep, err := Launch(w, func(c *Comm) error {
					buf := make([]byte, 100)
					if c.Rank() == 2%n {
						for i := range buf {
							buf[i] = byte(i * 3)
						}
					}
					if err := c.Bcast(2%n, buf); err != nil {
						return err
					}
					for i := range buf {
						if buf[i] != byte(i*3) {
							return fmt.Errorf("rank %d: bcast corrupted at %d", c.Rank(), i)
						}
					}
					return nil
				})
				if err != nil {
					t.Fatalf("n=%d: %v (rep %+v)", n, err, rep.Errs)
				}
			}
		})
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 5
	var after [n]time.Duration
	launch(t, n, func(c *Comm) error {
		// Rank r arrives at the barrier at (r+1)*10ms.
		c.Compute(time.Duration(c.Rank()+1) * 10 * time.Millisecond)
		if err := c.Barrier(); err != nil {
			return err
		}
		after[c.Rank()] = c.Wtime()
		return nil
	})
	for r := 0; r < n; r++ {
		if after[r] < 50*time.Millisecond {
			t.Fatalf("rank %d left the barrier at %v, before the slowest rank arrived", r, after[r])
		}
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 4
	launch(t, n, func(c *Comm) error {
		me := []byte{byte(10 + c.Rank())}
		all := make([]byte, n)
		if err := c.Gather(0, me, all); err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if all[i] != byte(10+i) {
					t.Errorf("gather[%d] = %d", i, all[i])
				}
			}
		}
		// Scatter back doubled values.
		var src []byte
		if c.Rank() == 0 {
			src = make([]byte, n)
			for i := range src {
				src[i] = byte(2 * (10 + i))
			}
		}
		out := make([]byte, 1)
		if err := c.Scatter(0, src, out); err != nil {
			return err
		}
		if out[0] != byte(2*(10+c.Rank())) {
			t.Errorf("rank %d scatter got %d", c.Rank(), out[0])
		}
		return nil
	})
}

func TestGathervScatterv(t *testing.T) {
	const n = 3
	counts := []int{1, 3, 2}
	launch(t, n, func(c *Comm) error {
		me := bytes.Repeat([]byte{byte('a' + c.Rank())}, counts[c.Rank()])
		all := make([]byte, 6)
		if err := c.Gatherv(0, me, all, counts); err != nil {
			return err
		}
		if c.Rank() == 0 && string(all) != "abbbcc" {
			t.Errorf("gatherv = %q", all)
		}
		recv := make([]byte, counts[c.Rank()])
		var src []byte
		if c.Rank() == 0 {
			src = []byte("xyyyzz")
		}
		if err := c.Scatterv(0, src, counts, recv); err != nil {
			return err
		}
		want := string(bytes.Repeat([]byte{byte('x' + c.Rank())}, counts[c.Rank()]))
		if string(recv) != want {
			t.Errorf("rank %d scatterv got %q want %q", c.Rank(), recv, want)
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	const n = 5
	launch(t, n, func(c *Comm) error {
		all := make([]byte, n)
		if err := c.Allgather([]byte{byte(c.Rank())}, all); err != nil {
			return err
		}
		for i := range all {
			if all[i] != byte(i) {
				t.Errorf("rank %d allgather[%d]=%d", c.Rank(), i, all[i])
			}
		}
		return nil
	})
}

func TestReduceAllreduceScan(t *testing.T) {
	const n = 6
	launch(t, n, func(c *Comm) error {
		x := []float64{float64(c.Rank() + 1), 2}
		sum, err := c.ReduceFloat64(0, SumFloat64, x)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if sum[0] != 21 || sum[1] != 12 {
				t.Errorf("reduce sum = %v", sum)
			}
		} else if sum != nil {
			t.Errorf("non-root got reduce result")
		}
		all, err := c.AllreduceFloat64(MaxFloat64, []float64{float64(c.Rank())})
		if err != nil {
			return err
		}
		if all[0] != n-1 {
			t.Errorf("allreduce max = %v", all)
		}
		// Scan over int64.
		out := make([]byte, 8)
		if err := c.Scan(SumInt64, Int64Bytes([]int64{1}), out); err != nil {
			return err
		}
		if got := BytesInt64(out)[0]; got != int64(c.Rank()+1) {
			t.Errorf("rank %d scan = %d", c.Rank(), got)
		}
		return nil
	})
}

func TestAlltoall(t *testing.T) {
	const n = 4
	launch(t, n, func(c *Comm) error {
		send := make([]byte, n)
		for i := range send {
			send[i] = byte(c.Rank()*10 + i)
		}
		recv := make([]byte, n)
		if err := c.Alltoall(send, recv); err != nil {
			return err
		}
		for i := range recv {
			if recv[i] != byte(i*10+c.Rank()) {
				t.Errorf("rank %d recv[%d] = %d", c.Rank(), i, recv[i])
			}
		}
		return nil
	})
}

func TestCommDupIsolation(t *testing.T) {
	launch(t, 2, func(c *Comm) error {
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			// Same tag on both communicators; receiver distinguishes by comm.
			if err := c.Send(1, 7, []byte{1}); err != nil {
				return err
			}
			return dup.Send(1, 7, []byte{2})
		}
		b := make([]byte, 1)
		if _, err := dup.Recv(0, 7, b); err != nil {
			return err
		}
		if b[0] != 2 {
			t.Errorf("dup comm received %d, want 2", b[0])
		}
		if _, err := c.Recv(0, 7, b); err != nil {
			return err
		}
		if b[0] != 1 {
			t.Errorf("parent comm received %d, want 1", b[0])
		}
		return nil
	})
}

func TestCommSplit(t *testing.T) {
	const n = 6
	launch(t, n, func(c *Comm) error {
		color := c.Rank() % 2
		sub, err := c.Split(color, -c.Rank()) // reverse order by key
		if err != nil {
			return err
		}
		if sub == nil {
			t.Errorf("rank %d got nil subcomm", c.Rank())
			return nil
		}
		if sub.Size() != 3 {
			t.Errorf("subcomm size %d", sub.Size())
		}
		// Keys are -rank, so higher parent rank sorts first.
		wantRank := map[int]int{4: 0, 2: 1, 0: 2, 5: 0, 3: 1, 1: 2}[c.Rank()]
		if sub.Rank() != wantRank {
			t.Errorf("rank %d -> subrank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// A bcast within the subcomm touches only members.
		buf := []byte{byte(sub.Rank())}
		if sub.Rank() == 0 {
			buf[0] = byte(100 + color)
		}
		if err := sub.Bcast(0, buf); err != nil {
			return err
		}
		if buf[0] != byte(100+color) {
			t.Errorf("rank %d subcomm bcast got %d", c.Rank(), buf[0])
		}
		return nil
	})
}

func TestCommSplitUndefined(t *testing.T) {
	launch(t, 4, func(c *Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("undefined color produced a communicator")
			}
			return nil
		}
		if sub == nil || sub.Size() != 3 {
			t.Errorf("rank %d: bad subcomm", c.Rank())
		}
		return nil
	})
}

func TestTranslate(t *testing.T) {
	launch(t, 4, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			return err
		}
		world := c
		if got := sub.Translate(sub.Rank(), world); got != c.Rank() {
			t.Errorf("translate sub->world = %d, want %d", got, c.Rank())
		}
		return nil
	})
}

func TestPersistentRequests(t *testing.T) {
	launch(t, 2, func(c *Comm) error {
		const iters = 5
		if c.Rank() == 0 {
			buf := []byte{0}
			ps := c.SendInit(1, 3, buf)
			for i := 0; i < iters; i++ {
				buf[0] = byte(i)
				r, err := ps.Start()
				if err != nil {
					return err
				}
				if _, err := r.Wait(); err != nil {
					return err
				}
			}
			return nil
		}
		buf := []byte{0}
		pr := c.RecvInit(0, 3, buf)
		for i := 0; i < iters; i++ {
			r, err := pr.Start()
			if err != nil {
				return err
			}
			if _, err := r.Wait(); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				t.Errorf("iter %d got %d", i, buf[0])
			}
		}
		return nil
	})
}

func TestWaitAllWaitAny(t *testing.T) {
	launch(t, 3, func(c *Comm) error {
		if c.Rank() == 0 {
			var reqs []*Request
			bufs := make([][]byte, 2)
			for i := 1; i <= 2; i++ {
				bufs[i-1] = make([]byte, 1)
				r, err := c.Irecv(i, AnyTag, bufs[i-1])
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			idx, st, err := WaitAny(reqs...)
			if err != nil {
				return err
			}
			if idx < 0 || st.Source < 1 {
				t.Errorf("WaitAny = %d, %+v", idx, st)
			}
			if _, err := WaitAll(reqs...); err != nil {
				return err
			}
			return nil
		}
		c.Compute(time.Duration(c.Rank()) * time.Millisecond)
		return c.Send(0, c.Rank(), []byte{byte(c.Rank())})
	})
}

func TestTestAllProgresses(t *testing.T) {
	launch(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Compute(time.Millisecond)
			return c.Send(1, 0, []byte{42})
		}
		r, err := c.Irecv(0, 0, make([]byte, 1))
		if err != nil {
			return err
		}
		for {
			ok, err := TestAll(r)
			if err != nil {
				return err
			}
			if ok {
				return nil
			}
			c.Compute(100 * time.Microsecond)
		}
	})
}

func TestCartRingShift(t *testing.T) {
	const n = 6
	launch(t, n, func(c *Comm) error {
		cart, err := c.CartCreate([]int{n}, []bool{true})
		if err != nil {
			return err
		}
		src, dst := cart.Shift(0, 1)
		if dst != (c.Rank()+1)%n || src != (c.Rank()-1+n)%n {
			t.Errorf("rank %d shift = (%d, %d)", c.Rank(), src, dst)
		}
		return nil
	})
}

func TestCart2D(t *testing.T) {
	launch(t, 6, func(c *Comm) error {
		cart, err := c.CartCreate([]int{2, 3}, []bool{false, true})
		if err != nil {
			return err
		}
		coords := cart.Coords(c.Rank())
		if got := cart.RankOf(coords); got != c.Rank() {
			t.Errorf("RankOf(Coords(%d)) = %d", c.Rank(), got)
		}
		// Non-periodic out-of-range is PROC_NULL.
		if cart.RankOf([]int{-1, 0}) != -1 {
			t.Error("non-periodic dimension wrapped")
		}
		// Periodic wraps.
		if cart.RankOf([]int{1, 3}) != cart.RankOf([]int{1, 0}) {
			t.Error("periodic dimension did not wrap")
		}
		return nil
	})
}

func TestDims2(t *testing.T) {
	for _, tc := range []struct{ n, a, b int }{{1, 1, 1}, {6, 2, 3}, {12, 3, 4}, {7, 1, 7}, {16, 4, 4}} {
		a, b := Dims2(tc.n)
		if a != tc.a || b != tc.b {
			t.Errorf("Dims2(%d) = (%d,%d), want (%d,%d)", tc.n, a, b, tc.a, tc.b)
		}
	}
}

func TestTypedSendRecvVector(t *testing.T) {
	launch(t, 2, func(c *Comm) error {
		// A column of a 4x4 float64 matrix: 4 blocks of 1 element, stride 4.
		col := Vector{Count: 4, BlockLen: 1, Stride: 4, Of: Float64}
		if c.Rank() == 0 {
			m := make([]float64, 16)
			for i := range m {
				m[i] = float64(i)
			}
			return c.SendTyped(1, 0, col, 1, Float64Bytes(m))
		}
		out := make([]byte, 16*8)
		if _, err := c.RecvTyped(0, 0, col, 1, out); err != nil {
			return err
		}
		dec := BytesFloat64(out)
		// Column 0 of the matrix: elements 0, 4, 8, 12 land at strided slots.
		for i := 0; i < 4; i++ {
			if dec[i*4] != float64(i*4) {
				t.Errorf("col[%d] = %v", i, dec[i*4])
			}
		}
		return nil
	})
}

// Property: Pack followed by Unpack is the identity on the packed view for
// every derived datatype shape.
func TestDatatypePackUnpackProperty(t *testing.T) {
	prop := func(raw []byte, count, blockLen, stride uint8) bool {
		cnt := int(count%4) + 1
		bl := int(blockLen%3) + 1
		st := bl + int(stride%3)
		dt := Vector{Count: cnt, BlockLen: bl, Stride: st, Of: Byte}
		need := dt.Extent()
		src := make([]byte, need)
		copy(src, raw)
		packed := make([]byte, dt.Size())
		dt.Pack(packed, src)
		dst := make([]byte, need)
		dt.Unpack(dst, packed)
		packed2 := make([]byte, dt.Size())
		dt.Pack(packed2, dst)
		return bytes.Equal(packed, packed2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedDatatype(t *testing.T) {
	dt := Indexed{BlockLens: []int{2, 1, 3}, Displs: []int{0, 4, 6}, Of: Byte}
	if dt.Size() != 6 || dt.Extent() != 9 {
		t.Fatalf("size=%d extent=%d", dt.Size(), dt.Extent())
	}
	src := []byte{'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i'}
	packed := make([]byte, 6)
	dt.Pack(packed, src)
	if string(packed) != "abeghi" {
		t.Fatalf("packed = %q", packed)
	}
	dst := make([]byte, 9)
	dt.Unpack(dst, packed)
	if dst[0] != 'a' || dst[4] != 'e' || dst[8] != 'i' || dst[2] != 0 {
		t.Fatalf("unpacked = %q", dst)
	}
}

func TestStructDatatype(t *testing.T) {
	// struct { x float64; pad; n int32 } laid out with displacements.
	dt := StructType{Fields: []StructField{
		{Displ: 0, Count: 1, Of: Float64},
		{Displ: 12, Count: 1, Of: Int32},
	}}
	if dt.Size() != 12 || dt.Extent() != 16 {
		t.Fatalf("size=%d extent=%d", dt.Size(), dt.Extent())
	}
	src := make([]byte, 16)
	copy(src, Float64Bytes([]float64{3.5}))
	src[12] = 42
	packed := make([]byte, 12)
	dt.Pack(packed, src)
	dst := make([]byte, 16)
	dt.Unpack(dst, packed)
	if !bytes.Equal(dst[:8], src[:8]) || dst[12] != 42 {
		t.Fatal("struct roundtrip failed")
	}
}

func TestContigDatatype(t *testing.T) {
	dt := Contig{Count: 3, Of: Int32}
	if dt.Size() != 12 || dt.Extent() != 12 {
		t.Fatalf("size=%d extent=%d", dt.Size(), dt.Extent())
	}
}

func TestPackUnpackComm(t *testing.T) {
	launch(t, 1, func(c *Comm) error {
		dt := Vector{Count: 2, BlockLen: 1, Stride: 2, Of: Byte}
		src := []byte{1, 2, 3}
		packed := c.Pack(dt, 1, src)
		if len(packed) != 2 || packed[0] != 1 || packed[1] != 3 {
			t.Errorf("packed = %v", packed)
		}
		dst := make([]byte, 3)
		c.Unpack(dt, 1, packed, dst)
		if dst[0] != 1 || dst[2] != 3 {
			t.Errorf("unpacked = %v", dst)
		}
		return nil
	})
}

func TestReportAccounts(t *testing.T) {
	rep := launch(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, make([]byte, 50))
		}
		_, err := c.Recv(0, 0, make([]byte, 50))
		return err
	})
	if rep.Acct.Count["send"] != 1 || rep.Acct.Count["recv"] != 1 {
		t.Fatalf("counters: %+v", rep.Acct.Count)
	}
	if rep.MaxRankElapsed == 0 {
		t.Fatal("no elapsed time recorded")
	}
}

func TestDeadlockSurfacesAsError(t *testing.T) {
	_, err := Launch(memWorld(2), func(c *Comm) error {
		// Both ranks receive; nobody sends.
		_, err := c.Recv(AnySource, AnyTag, make([]byte, 1))
		return err
	})
	if err == nil {
		t.Fatal("deadlocked program reported success")
	}
}

func TestLaunchDeterministic(t *testing.T) {
	run := func() time.Duration {
		rep, err := Launch(memWorld(4), func(c *Comm) error {
			buf := make([]byte, 64)
			if err := c.Bcast(0, buf); err != nil {
				return err
			}
			return c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaxRankElapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

// --- additional edge-case coverage ---

func TestRendezvousTruncation(t *testing.T) {
	launch(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, make([]byte, 4000)) // > mem fabric eager 180
		}
		buf := make([]byte, 100)
		st, err := c.Recv(0, 0, buf)
		if err == nil {
			t.Error("rendezvous truncation not reported")
		}
		if st.Count != 100 {
			t.Errorf("count = %d", st.Count)
		}
		return nil
	})
}

func TestRecvBufferLargerThanMessage(t *testing.T) {
	launch(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, []byte{1, 2, 3})
		}
		buf := make([]byte, 100)
		st, err := c.Recv(0, 0, buf)
		if err != nil {
			return err
		}
		if st.Count != 3 {
			t.Errorf("count = %d, want 3", st.Count)
		}
		return nil
	})
}

func TestCancelThenMatchingSendGoesToNextRecv(t *testing.T) {
	launch(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Compute(time.Millisecond)
			return c.Send(1, 0, []byte{9})
		}
		first, err := c.Irecv(0, 0, make([]byte, 1))
		if err != nil {
			return err
		}
		if err := first.Cancel(); err != nil {
			return err
		}
		if !first.Cancelled() {
			t.Error("request not marked cancelled")
		}
		buf := make([]byte, 1)
		if _, err := c.Recv(0, 0, buf); err != nil {
			return err
		}
		if buf[0] != 9 {
			t.Errorf("second recv got %d", buf[0])
		}
		return nil
	})
}

func TestBufferAttachDetach(t *testing.T) {
	launch(t, 2, func(c *Comm) error {
		if c.Rank() != 0 {
			_, err := c.Recv(0, 0, make([]byte, 8))
			return err
		}
		c.BufferAttach(512)
		if err := c.Bsend(1, 0, make([]byte, 8)); err != nil {
			return err
		}
		if n := c.BufferDetach(); n != 512 {
			t.Errorf("detach = %d", n)
		}
		// After detach, buffered sends fail again.
		if err := c.Bsend(1, 1, make([]byte, 8)); err == nil {
			t.Error("Bsend succeeded with no attached buffer")
		}
		return nil
	})
}

func TestSendrecvSelf(t *testing.T) {
	launch(t, 1, func(c *Comm) error {
		out := []byte{42}
		in := make([]byte, 1)
		st, err := c.Sendrecv(0, 0, out, 0, 0, in)
		if err != nil {
			return err
		}
		if in[0] != 42 || st.Source != 0 {
			t.Errorf("self sendrecv: %d, %+v", in[0], st)
		}
		return nil
	})
}

func TestReportProtocolErrors(t *testing.T) {
	rep, err := Launch(memWorld(2), func(c *Comm) error {
		if c.Rank() == 0 {
			// Ready-mode send with no posted receive: erroneous program,
			// recorded as a protocol error at the receiver.
			if err := c.Rsend(1, 0, []byte{1}); err != nil {
				return err
			}
			return nil
		}
		c.Compute(time.Millisecond)
		_, err := c.Recv(0, 0, make([]byte, 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Protocol) == 0 {
		t.Fatal("ready-mode violation not surfaced in Report.Protocol")
	}
}

func TestCollectivesOnSizeOneComm(t *testing.T) {
	launch(t, 1, func(c *Comm) error {
		buf := []byte{7}
		if err := c.Bcast(0, buf); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		all := make([]byte, 1)
		if err := c.Allgather([]byte{3}, all); err != nil {
			return err
		}
		if all[0] != 3 {
			t.Errorf("allgather = %v", all)
		}
		sum, err := c.AllreduceFloat64(SumFloat64, []float64{5})
		if err != nil {
			return err
		}
		if sum[0] != 5 {
			t.Errorf("allreduce = %v", sum)
		}
		recv := make([]byte, 1)
		if err := c.Alltoall([]byte{8}, recv); err != nil {
			return err
		}
		if recv[0] != 8 {
			t.Errorf("alltoall = %v", recv)
		}
		return nil
	})
}
