package mpi

import (
	"encoding/binary"
	"math"
)

// Prebuilt reduction operators over packed little-endian buffers, the
// analogues of MPI_SUM, MPI_PROD, MPI_MAX, MPI_MIN, MPI_BAND, MPI_BOR.

func float64Op(f func(a, b float64) float64) Op {
	return func(dst, src []byte) {
		for i := 0; i+8 <= len(dst); i += 8 {
			a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(f(a, b)))
		}
	}
}

func int64Op(f func(a, b int64) int64) Op {
	return func(dst, src []byte) {
		for i := 0; i+8 <= len(dst); i += 8 {
			a := int64(binary.LittleEndian.Uint64(dst[i:]))
			b := int64(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], uint64(f(a, b)))
		}
	}
}

// Float64 reductions.
var (
	SumFloat64  = float64Op(func(a, b float64) float64 { return a + b })
	ProdFloat64 = float64Op(func(a, b float64) float64 { return a * b })
	MaxFloat64  = float64Op(math.Max)
	MinFloat64  = float64Op(math.Min)
)

// Int64 reductions.
var (
	SumInt64 = int64Op(func(a, b int64) int64 { return a + b })
	MaxInt64 = int64Op(func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
	MinInt64 = int64Op(func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
)

func float32Op(f func(a, b float32) float32) Op {
	return func(dst, src []byte) {
		for i := 0; i+4 <= len(dst); i += 4 {
			a := math.Float32frombits(binary.LittleEndian.Uint32(dst[i:]))
			b := math.Float32frombits(binary.LittleEndian.Uint32(src[i:]))
			binary.LittleEndian.PutUint32(dst[i:], math.Float32bits(f(a, b)))
		}
	}
}

func int32Op(f func(a, b int32) int32) Op {
	return func(dst, src []byte) {
		for i := 0; i+4 <= len(dst); i += 4 {
			a := int32(binary.LittleEndian.Uint32(dst[i:]))
			b := int32(binary.LittleEndian.Uint32(src[i:]))
			binary.LittleEndian.PutUint32(dst[i:], uint32(f(a, b)))
		}
	}
}

// Float32 and Int32 reductions.
var (
	SumFloat32 = float32Op(func(a, b float32) float32 { return a + b })
	MaxFloat32 = float32Op(func(a, b float32) float32 {
		if a > b {
			return a
		}
		return b
	})
	SumInt32 = int32Op(func(a, b int32) int32 { return a + b })
	MaxInt32 = int32Op(func(a, b int32) int32 {
		if a > b {
			return a
		}
		return b
	})
	MinInt32 = int32Op(func(a, b int32) int32 {
		if a < b {
			return a
		}
		return b
	})
)

// Bitwise reductions over raw bytes.
var (
	BAnd Op = func(dst, src []byte) {
		for i := range dst {
			dst[i] &= src[i]
		}
	}
	BOr Op = func(dst, src []byte) {
		for i := range dst {
			dst[i] |= src[i]
		}
	}
)

// Int64Bytes and BytesInt64 encode []int64 for the reduction helpers.
func Int64Bytes(xs []int64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

// BytesInt64 decodes Int64Bytes.
func BytesInt64(b []byte) []int64 {
	xs := make([]int64, len(b)/8)
	for i := range xs {
		xs[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs
}

// AllreduceFloat64 is a convenience wrapper reducing a float64 slice. The
// declared 8-byte element size lets the vector-splitting allreduce
// algorithms apply.
func (c *Comm) AllreduceFloat64(op Op, xs []float64) ([]float64, error) {
	out := make([]byte, 8*len(xs))
	if err := c.AllreduceElem(op, 8, Float64Bytes(xs), out); err != nil {
		return nil, err
	}
	return BytesFloat64(out), nil
}

// AllreduceInt64 is AllreduceFloat64's integer sibling.
func (c *Comm) AllreduceInt64(op Op, xs []int64) ([]int64, error) {
	out := make([]byte, 8*len(xs))
	if err := c.AllreduceElem(op, 8, Int64Bytes(xs), out); err != nil {
		return nil, err
	}
	return BytesInt64(out), nil
}

// ReduceFloat64 reduces a float64 slice to the root (nil elsewhere).
func (c *Comm) ReduceFloat64(root int, op Op, xs []float64) ([]float64, error) {
	out := make([]byte, 8*len(xs))
	if err := c.Reduce(root, op, Float64Bytes(xs), out); err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	return BytesFloat64(out), nil
}
