package mpi

import (
	"repro/internal/core"
)

// Request is an in-flight nonblocking operation bound to its communicator.
type Request struct {
	c   *Comm
	req *core.Request
}

// Wait blocks until the request completes.
func (r *Request) Wait() (Status, error) {
	st, err := r.c.ep.Wait(r.c.p, r.req)
	return r.c.fixStatus(st), err
}

// Test reports whether the request has completed, making progress.
func (r *Request) Test() (Status, bool, error) {
	st, ok, err := r.c.ep.Test(r.c.p, r.req)
	if !ok {
		return st, false, err
	}
	return r.c.fixStatus(st), true, err
}

// Cancel cancels an unmatched posted receive.
func (r *Request) Cancel() error { return r.c.ep.Cancel(r.c.p, r.req) }

// Cancelled reports whether the request was cancelled.
func (r *Request) Cancelled() bool { return r.req.Cancelled() }

// Done reports completion without making progress.
func (r *Request) Done() bool { return r.req.Done() }

// ---------------------------------------------------------------- sends --

func (c *Comm) isend(dst, tag int, mode core.Mode, data []byte) (*Request, error) {
	wr, err := c.worldRank(dst)
	if err != nil {
		return nil, err
	}
	req, err := c.ep.Isend(c.p, wr, tag, c.ctx, mode, data)
	if err != nil {
		return nil, err
	}
	return &Request{c: c, req: req}, nil
}

func (c *Comm) send(dst, tag int, mode core.Mode, data []byte) error {
	r, err := c.isend(dst, tag, mode, data)
	if err != nil {
		return err
	}
	_, err = r.Wait()
	return err
}

// Send is the blocking standard-mode send (MPI_Send).
func (c *Comm) Send(dst, tag int, data []byte) error {
	return c.send(dst, tag, core.ModeStandard, data)
}

// Ssend is the blocking synchronous-mode send: it completes only once the
// matching receive is posted (MPI_Ssend).
func (c *Comm) Ssend(dst, tag int, data []byte) error {
	return c.send(dst, tag, core.ModeSync, data)
}

// Rsend is the blocking ready-mode send: the program asserts the matching
// receive is already posted (MPI_Rsend).
func (c *Comm) Rsend(dst, tag int, data []byte) error {
	return c.send(dst, tag, core.ModeReady, data)
}

// Bsend is the blocking buffered-mode send, drawing on the buffer provided
// with BufferAttach (MPI_Bsend).
func (c *Comm) Bsend(dst, tag int, data []byte) error {
	return c.send(dst, tag, core.ModeBuffered, data)
}

// Isend, Issend, Irsend and Ibsend are the nonblocking variants.
func (c *Comm) Isend(dst, tag int, data []byte) (*Request, error) {
	return c.isend(dst, tag, core.ModeStandard, data)
}

// Issend starts a nonblocking synchronous-mode send.
func (c *Comm) Issend(dst, tag int, data []byte) (*Request, error) {
	return c.isend(dst, tag, core.ModeSync, data)
}

// Irsend starts a nonblocking ready-mode send.
func (c *Comm) Irsend(dst, tag int, data []byte) (*Request, error) {
	return c.isend(dst, tag, core.ModeReady, data)
}

// Ibsend starts a nonblocking buffered-mode send.
func (c *Comm) Ibsend(dst, tag int, data []byte) (*Request, error) {
	return c.isend(dst, tag, core.ModeBuffered, data)
}

// -------------------------------------------------------------- receives --

// Irecv posts a nonblocking receive (MPI_Irecv). src may be AnySource and
// tag may be AnyTag.
func (c *Comm) Irecv(src, tag int, buf []byte) (*Request, error) {
	wr, err := c.worldRank(src)
	if err != nil {
		return nil, err
	}
	req, err := c.ep.Irecv(c.p, wr, tag, c.ctx, buf)
	if err != nil {
		return nil, err
	}
	return &Request{c: c, req: req}, nil
}

// Recv is the blocking receive (MPI_Recv).
func (c *Comm) Recv(src, tag int, buf []byte) (Status, error) {
	r, err := c.Irecv(src, tag, buf)
	if err != nil {
		return Status{}, err
	}
	return r.Wait()
}

// Probe blocks until a matching message is available and reports its
// status without receiving it (MPI_Probe).
func (c *Comm) Probe(src, tag int) (Status, error) {
	wr, err := c.worldRank(src)
	if err != nil {
		return Status{}, err
	}
	st, err := c.ep.Probe(c.p, wr, tag, c.ctx)
	return c.fixStatus(st), err
}

// Iprobe reports whether a matching message is available (MPI_Iprobe).
func (c *Comm) Iprobe(src, tag int) (Status, bool, error) {
	wr, err := c.worldRank(src)
	if err != nil {
		return Status{}, false, err
	}
	st, ok, err := c.ep.Iprobe(c.p, wr, tag, c.ctx)
	return c.fixStatus(st), ok, err
}

// Sendrecv concurrently sends to dst and receives from src, avoiding the
// cyclic-blocking pitfall (MPI_Sendrecv).
func (c *Comm) Sendrecv(dst, sendTag int, sendData []byte, src, recvTag int, recvBuf []byte) (Status, error) {
	rr, err := c.Irecv(src, recvTag, recvBuf)
	if err != nil {
		return Status{}, err
	}
	sr, err := c.Isend(dst, sendTag, sendData)
	if err != nil {
		return Status{}, err
	}
	if _, err := sr.Wait(); err != nil {
		return Status{}, err
	}
	return rr.Wait()
}

// --------------------------------------------------- multiple completion --

// WaitAll completes every request (MPI_Waitall).
func WaitAll(reqs ...*Request) ([]Status, error) {
	sts := make([]Status, len(reqs))
	var firstErr error
	for i, r := range reqs {
		if r == nil {
			continue
		}
		st, err := r.Wait()
		sts[i] = st
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return sts, firstErr
}

// WaitAny blocks until some request completes and returns its index
// (MPI_Waitany).
func WaitAny(reqs ...*Request) (int, Status, error) {
	if len(reqs) == 0 {
		return -1, Status{}, core.Errorf(core.ErrInternal, "WaitAny with no requests")
	}
	for {
		for i, r := range reqs {
			if r == nil || r.req.Done() {
				continue
			}
			st, ok, err := r.Test()
			if ok {
				return i, st, err
			}
		}
		// Nothing ready: block on the first incomplete request's engine by
		// yielding virtual time; Test above already polled for progress.
		allDone := true
		for i, r := range reqs {
			if r != nil && !r.req.Done() {
				allDone = false
				_ = i
				break
			}
		}
		if allDone {
			return -1, Status{}, core.Errorf(core.ErrInternal, "WaitAny: all requests already completed")
		}
		// Park briefly; arrival wakeups happen inside Test's Progress.
		reqs[0].c.p.Advance(1000) // 1us poll interval
	}
}

// TestAll reports whether every request has completed (MPI_Testall).
func TestAll(reqs ...*Request) (bool, error) {
	all := true
	var firstErr error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		_, ok, err := r.Test()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if !ok {
			all = false
		}
	}
	return all, firstErr
}

// WaitSome blocks until at least one request completes, returning the
// indices completed (MPI_Waitsome).
func WaitSome(reqs ...*Request) ([]int, error) {
	idx, _, err := WaitAny(reqs...)
	if err != nil {
		return nil, err
	}
	done := []int{idx}
	for i, r := range reqs {
		if i == idx || r == nil {
			continue
		}
		if r.req.Done() {
			done = append(done, i)
		}
	}
	return done, nil
}

// ------------------------------------------------------------- persistent --

// Persistent is a persistent communication request (MPI_Send_init /
// MPI_Recv_init): Start launches one instance of the operation.
type Persistent struct {
	c      *Comm
	isRecv bool
	mode   core.Mode
	peer   int
	tag    int
	buf    []byte
}

// SendInit creates a persistent standard-mode send.
func (c *Comm) SendInit(dst, tag int, buf []byte) *Persistent {
	return &Persistent{c: c, mode: core.ModeStandard, peer: dst, tag: tag, buf: buf}
}

// SsendInit creates a persistent synchronous-mode send.
func (c *Comm) SsendInit(dst, tag int, buf []byte) *Persistent {
	return &Persistent{c: c, mode: core.ModeSync, peer: dst, tag: tag, buf: buf}
}

// RecvInit creates a persistent receive.
func (c *Comm) RecvInit(src, tag int, buf []byte) *Persistent {
	return &Persistent{c: c, isRecv: true, peer: src, tag: tag, buf: buf}
}

// Start launches one instance of the persistent operation.
func (pr *Persistent) Start() (*Request, error) {
	if pr.isRecv {
		return pr.c.Irecv(pr.peer, pr.tag, pr.buf)
	}
	return pr.c.isend(pr.peer, pr.tag, pr.mode, pr.buf)
}

// StartAll launches a set of persistent operations (MPI_Startall).
func StartAll(prs ...*Persistent) ([]*Request, error) {
	reqs := make([]*Request, len(prs))
	for i, pr := range prs {
		r, err := pr.Start()
		if err != nil {
			return nil, err
		}
		reqs[i] = r
	}
	return reqs, nil
}
