package mpi

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Report summarizes one job run.
type Report struct {
	// Elapsed is the virtual time at which the whole simulation drained.
	Elapsed sim.Duration
	// RankElapsed is each rank's virtual finish time.
	RankElapsed []sim.Duration
	// MaxRankElapsed is the slowest rank's finish time — the job's
	// wall-clock in the paper's figures.
	MaxRankElapsed sim.Duration
	// Errs holds the per-rank body errors (nil entries for success).
	Errs []error
	// Acct is the merged cost account across ranks.
	Acct *core.Acct
	// RankAccts are the per-rank accounts (indexed by world rank).
	RankAccts []*core.Acct
	// Protocol collects asynchronous protocol errors recorded at any rank
	// (e.g. a ready-mode send that arrived before its receive was posted)
	// — erroneous-program conditions MPI cannot attach to a call.
	Protocol []error
	// Events is the total simulation events the run executed.
	Events uint64
	// Shard holds the control-plane counters when the world ran on the
	// sharded kernel; nil on the single-lane kernel.
	Shard *sim.ShardStats
}

// IsLinkDown reports whether err carries the typed link-failure code a
// transport raises when a peer becomes unreachable — the one failure an
// application may want to distinguish from its own bugs.
func IsLinkDown(err error) bool {
	var ce *core.Error
	return errors.As(err, &ce) && ce.Code == core.ErrLinkDown
}

// FirstErr reports the first per-rank error, if any.
func (r *Report) FirstErr() error {
	for _, e := range r.Errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Launch spawns one simulated process per rank running body, drives the
// simulation to completion, and gathers the report. Deadlocks in the
// application (e.g. mismatched sends/receives) surface as the returned
// error, naming the parked ranks.
func Launch(w *World, body func(c *Comm) error) (*Report, error) {
	n := w.Size()
	rep := &Report{
		RankElapsed: make([]sim.Duration, n),
		Errs:        make([]error, n),
		Acct:        core.NewAcct(),
		RankAccts:   make([]*core.Acct, n),
	}
	for i := 0; i < n; i++ {
		i := i
		w.Sched(i).Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			c := NewRankComm(w, i, p)
			rep.Errs[i] = body(c)
			if rep.Errs[i] == nil {
				// MPI_Finalize: drain transfers this process still owes
				// (e.g. buffered sends awaiting their rendezvous CTS).
				w.eps[i].Finalize(p)
			}
			rep.RankElapsed[i] = p.Now().Duration()
		})
	}
	var end sim.Time
	var err error
	if w.Sh != nil {
		end, err = w.Sh.Run()
		if err != nil {
			w.Sh.Shutdown()
		}
		st := w.Sh.Stats()
		rep.Shard = &st
		rep.Events = st.Events
		// Fold the control-plane counters into the merged account so every
		// reporting surface (cmd/trace, bench JSON) sees them.
		rep.Acct.Incr("shard-epochs", int64(st.Epochs))
		rep.Acct.Incr("shard-stalls", int64(st.Stalls))
		rep.Acct.Incr("shard-routed", int64(st.Routed))
		rep.Acct.SetMax("shard-mailbox-max", int64(st.MailboxHighWater))
	} else {
		end, err = w.S.Run()
		if err != nil {
			// Reap parked rank goroutines so failed runs don't leak.
			w.S.Shutdown()
		}
		rep.Events = w.S.Events()
	}
	rep.Elapsed = end.Duration()
	for i := 0; i < n; i++ {
		if rep.RankElapsed[i] > rep.MaxRankElapsed {
			rep.MaxRankElapsed = rep.RankElapsed[i]
		}
		rep.RankAccts[i] = w.eps[i].Acct()
		rep.Acct.Merge(w.eps[i].Acct())
		if pe, ok := w.eps[i].(interface{ ProtocolErrors() []error }); ok {
			rep.Protocol = append(rep.Protocol, pe.ProtocolErrors()...)
		}
	}
	if err != nil {
		return rep, err
	}
	return rep, rep.FirstErr()
}
