package mpi

import (
	"testing"

	"repro/internal/trace"
)

func TestEnableTraceRecordsTimeline(t *testing.T) {
	w := memWorld(3)
	tl := w.EnableTrace()
	_, err := Launch(w, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 5, make([]byte, 40)); err != nil {
				return err
			}
			return c.Send(2, 6, make([]byte, 4000)) // rendezvous
		}
		src := 0
		tag := 5
		size := 40
		if c.Rank() == 2 {
			tag, size = 6, 4000
		}
		_, err := c.Recv(src, tag, make([]byte, size))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	kinds := map[trace.Kind]int{}
	for _, e := range tl.Events() {
		kinds[e.Kind]++
	}
	if kinds[trace.SendStart] != 2 {
		t.Fatalf("send-start events = %d, want 2", kinds[trace.SendStart])
	}
	if kinds[trace.Arrive] < 2 {
		t.Fatalf("arrive events = %d, want >= 2 (eager + rts)", kinds[trace.Arrive])
	}
	if kinds[trace.Match] != 2 || kinds[trace.RecvDone] != 2 {
		t.Fatalf("match=%d recvdone=%d, want 2 each", kinds[trace.Match], kinds[trace.RecvDone])
	}

	// Per-pair stats reflect the two messages.
	stats := tl.Stats()
	if s := stats[0][1]; s == nil || s.Messages != 1 || s.Bytes != 40 {
		t.Fatalf("stats[0][1] = %+v", s)
	}
	if s := stats[0][2]; s == nil || s.Messages != 1 || s.Bytes != 4000 {
		t.Fatalf("stats[0][2] = %+v", s)
	}
	// Timestamps are monotone within the sorted view.
	evs := tl.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatal("events out of time order")
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	w := memWorld(2)
	_, err := Launch(w, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, []byte{1})
		}
		_, err := c.Recv(0, 0, make([]byte, 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// No panic, nothing to assert: tracing off is the default path.
}
