package mpi

import (
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/sim"
)

// AccOp selects the element-wise operator of Win.Accumulate. The operators
// are commutative, so same-epoch accumulates from different origins yield
// the same window contents regardless of delivery order.
type AccOp = core.RMAOp

// Accumulate operators (MPI_REPLACE, MPI_SUM over int64/float64 elements,
// MPI_BXOR over bytes).
const (
	// AccReplace overwrites the target bytes (MPI_REPLACE).
	AccReplace = core.RMAReplace
	// AccSumInt64 adds little-endian int64 elements (MPI_SUM).
	AccSumInt64 = core.RMASumInt64
	// AccSumFloat64 adds little-endian float64 elements (MPI_SUM).
	AccSumFloat64 = core.RMASumFloat64
	// AccXor xors bytes (MPI_BXOR).
	AccXor = core.RMAXor
)

// rmaEndpoint is the promoted engine surface a device endpoint exposes
// when its transport can do native one-sided transfers. *core.Engine
// implements it; engine-backed endpoints (the in-memory fabric, the Meiko
// low-latency device, the cluster shared-memory segment) inherit it by
// embedding. SupportsRMA still gates the native path per transport:
// socket transports share the engine but have no remote-write primitive.
type rmaEndpoint interface {
	core.Endpoint
	SupportsRMA() bool
	WinCreate(id, size int) (*core.WinState, error)
	WinFree(id int)
	RMAPut(p *sim.Proc, dst, id, off int, data []byte) error
	RMAGet(p *sim.Proc, dst, id, off int, buf []byte) error
	RMAAccumulate(p *sim.Proc, dst, id, off int, data []byte, op core.RMAOp) error
	WinFence(p *sim.Proc, id int) error
	WinLock(p *sim.Proc, dst, id int, excl bool) error
	WinUnlock(p *sim.Proc, dst, id int) error
}

// Win is an MPI-2 one-sided communication window (MPI_Win): a region of
// this rank's memory exposed to Put/Get/Accumulate from every rank of the
// creating communicator, with access epochs delimited by Fence (active
// target) or Lock/Unlock (passive target).
//
// On transports with a remote-memory primitive (Meiko Elan transactions
// and DMA, the in-memory fabric, the cluster shared-memory segment) the
// operations map to native one-sided transfers that bypass the message
// matcher. Socket transports have no remote-write primitive, so windows
// fall back to a deferred-at-fence emulation: operations are recorded at
// the origin and exchanged as matched messages inside the closing Fence,
// applied in source-rank order. Both flavors meet MPI's epoch contract —
// one-sided results are undefined until the epoch closes — but only the
// native flavor supports passive-target locks.
type Win struct {
	c      *Comm // window-private communicator (fresh context pair = window id)
	id     int
	sizes  []int // per-rank region sizes, indexed by comm rank
	native bool

	ne rmaEndpoint    // native path (nil when emulated)
	st *core.WinState // this rank's region (both paths)

	// Emulated-path epoch state: recorded operations per target comm rank,
	// and the origin-side get landings.
	pend [][]winOp
	gets []winGet
}

// winOp is one recorded one-sided operation awaiting the closing fence.
type winOp struct {
	kind byte // opPut, opAcc, opGet
	off  int
	op   core.RMAOp
	data []byte // put/acc payload snapshot
	idx  int    // get: index into Win.gets
}

// winGet is an origin-side pending get: where the reply lands.
type winGet struct {
	target int
	buf    []byte
}

const (
	opPut byte = iota
	opAcc
	opGet
)

// Fence-protocol tags on the window's private context.
const (
	winTagFence = 0 // operation blobs
	winTagGets  = 1 // get replies
)

// WinCreate collectively creates a window exposing size bytes of this
// rank's memory (MPI_Win_create; sizes may differ per rank, zero exposes
// nothing). The window gets a private communicator context, so its
// internal traffic can never collide with user messages.
func (c *Comm) WinCreate(size int) (*Win, error) {
	if size < 0 {
		return nil, core.Errorf(core.ErrInternal, "negative window size %d", size)
	}
	// Dup's root-allocates-and-broadcasts agreement hands every rank the
	// same fresh context pair; the point-to-point context doubles as the
	// window id (unique per world, same id on every rank).
	wc, err := c.Dup()
	if err != nil {
		return nil, err
	}
	w := &Win{c: wc, id: wc.ctx}

	// Every rank needs every region size for origin-side bounds checks.
	mine := make([]byte, 8)
	binary.LittleEndian.PutUint64(mine, uint64(size))
	all := make([]byte, 8*wc.Size())
	if err := wc.Allgather(mine, all); err != nil {
		return nil, err
	}
	w.sizes = make([]int, wc.Size())
	for r := range w.sizes {
		w.sizes[r] = int(binary.LittleEndian.Uint64(all[8*r:]))
	}

	if ne, ok := wc.ep.(rmaEndpoint); ok && ne.SupportsRMA() {
		st, err := ne.WinCreate(w.id, size)
		if err != nil {
			return nil, err
		}
		w.native, w.ne, w.st = true, ne, st
	} else {
		w.st = &core.WinState{ID: w.id, Mem: make([]byte, size)}
		w.pend = make([][]winOp, wc.Size())
	}
	// Creation is an epoch boundary: no rank may be targeted before its
	// window exists everywhere.
	return w, wc.Barrier()
}

// Bytes exposes this rank's window region. Reading it between an
// operation and the closing Fence observes unspecified intermediate
// state, exactly as MPI leaves it undefined.
func (w *Win) Bytes() []byte { return w.st.Mem }

// Native reports whether one-sided operations map to the transport's
// remote-memory primitive (false means deferred-at-fence emulation over
// matched sends).
func (w *Win) Native() bool { return w.native }

// RegionSize reports the window region size exposed by comm rank r.
func (w *Win) RegionSize(r int) int {
	if r < 0 || r >= len(w.sizes) {
		return 0
	}
	return w.sizes[r]
}

// checkAccess validates an origin-side access of n bytes at off in dst's
// region, using the sizes gathered at creation.
func (w *Win) checkAccess(dst, off, n int) error {
	if dst < 0 || dst >= w.c.Size() {
		return core.Errorf(core.ErrInternal, "one-sided op to rank %d out of range for window over %d ranks", dst, w.c.Size())
	}
	if off < 0 || n < 0 || off+n > w.sizes[dst] {
		return core.Errorf(core.ErrInternal, "one-sided access [%d,%d) outside rank %d's %d-byte window", off, off+n, dst, w.sizes[dst])
	}
	return nil
}

// Put transfers data into rank dst's window region at byte offset off
// (MPI_Put). The transfer completes at the closing Fence (or Unlock);
// until then data must stay unmodified and the target contents are
// undefined.
func (w *Win) Put(dst, off int, data []byte) error {
	if err := w.checkAccess(dst, off, len(data)); err != nil {
		return err
	}
	if w.native {
		wr, err := w.c.worldRank(dst)
		if err != nil {
			return err
		}
		return w.ne.RMAPut(w.c.p, wr, w.id, off, data)
	}
	snap := make([]byte, len(data))
	copy(snap, data)
	w.pend[dst] = append(w.pend[dst], winOp{kind: opPut, off: off, data: snap})
	return nil
}

// Get transfers len(buf) bytes from rank dst's window region at off into
// buf (MPI_Get). buf is valid only after the closing Fence (or Unlock).
func (w *Win) Get(dst, off int, buf []byte) error {
	if err := w.checkAccess(dst, off, len(buf)); err != nil {
		return err
	}
	if w.native {
		wr, err := w.c.worldRank(dst)
		if err != nil {
			return err
		}
		return w.ne.RMAGet(w.c.p, wr, w.id, off, buf)
	}
	w.gets = append(w.gets, winGet{target: dst, buf: buf})
	w.pend[dst] = append(w.pend[dst], winOp{kind: opGet, off: off, idx: len(w.gets) - 1})
	return nil
}

// Accumulate combines data into rank dst's window region at off with op
// (MPI_Accumulate). Like Put, it completes at the closing Fence.
func (w *Win) Accumulate(dst, off int, data []byte, op AccOp) error {
	if err := w.checkAccess(dst, off, len(data)); err != nil {
		return err
	}
	if !op.ValidLen(len(data)) {
		return core.Errorf(core.ErrInternal, "%d-byte accumulate payload not a multiple of the %s element size", len(data), op)
	}
	if w.native {
		wr, err := w.c.worldRank(dst)
		if err != nil {
			return err
		}
		return w.ne.RMAAccumulate(w.c.p, wr, w.id, off, data, op)
	}
	snap := make([]byte, len(data))
	copy(snap, data)
	w.pend[dst] = append(w.pend[dst], winOp{kind: opAcc, off: off, op: op, data: snap})
	return nil
}

// Fence closes the current access epoch and opens the next
// (MPI_Win_fence): it is collective, and on return every one-sided
// operation issued by any rank in the closing epoch is complete — puts
// and accumulates applied at their targets, gets landed at their origins.
func (w *Win) Fence() error {
	if w.native {
		if err := w.ne.WinFence(w.c.p, w.id); err != nil {
			return err
		}
		return w.c.Barrier()
	}
	return w.fenceEmulated()
}

// Lock opens a passive-target access epoch on rank dst's window
// (MPI_Win_lock; excl selects MPI_LOCK_EXCLUSIVE over MPI_LOCK_SHARED).
// Passive target requires the transport's native remote-memory
// capability: emulated windows would need the target inside the epoch,
// which is exactly what passive target promises not to require.
func (w *Win) Lock(dst int, excl bool) error {
	if err := w.checkAccess(dst, 0, 0); err != nil {
		return err
	}
	if !w.native {
		return core.Errorf(core.ErrInternal, "passive-target lock needs a transport with native remote memory (window is emulated over matched sends)")
	}
	wr, err := w.c.worldRank(dst)
	if err != nil {
		return err
	}
	return w.ne.WinLock(w.c.p, wr, w.id, excl)
}

// Unlock closes the passive-target epoch on rank dst (MPI_Win_unlock):
// on return the operations issued under the lock are complete at both
// ends, and the lock is released.
func (w *Win) Unlock(dst int) error {
	if err := w.checkAccess(dst, 0, 0); err != nil {
		return err
	}
	if !w.native {
		return core.Errorf(core.ErrInternal, "passive-target lock needs a transport with native remote memory (window is emulated over matched sends)")
	}
	wr, err := w.c.worldRank(dst)
	if err != nil {
		return err
	}
	return w.ne.WinUnlock(w.c.p, wr, w.id)
}

// Free collectively releases the window (MPI_Win_free). The caller must
// have closed the last epoch (Fence) first; Free barriers so no rank
// tears its region down while a peer could still target it.
func (w *Win) Free() error {
	if err := w.c.Barrier(); err != nil {
		return err
	}
	if w.native {
		w.ne.WinFree(w.id)
	}
	w.st = nil
	return nil
}

// ------------------------------------------------- deferred-at-fence path --
//
// The emulated closing fence runs a deterministic four-step exchange on
// the window's private context:
//
//  1. serialize this epoch's recorded operations into one blob per
//     target, and swap blob lengths with an alltoall;
//  2. exchange the blobs as matched messages (self-targeted blobs
//     short-circuit locally);
//  3. apply arriving blobs in source-rank order — puts and accumulates
//     mutate the local region, get requests are collected;
//  4. serve the collected gets from the post-apply region, reply to each
//     origin, land replies into the recorded buffers, and barrier.
//
// Applying in source-rank order makes the epoch deterministic: MPI
// declares overlapping same-epoch puts erroneous and accumulate operators
// are commutative, so any fixed order is a legal serialization.

// fenceEmulated implements Fence over matched sends.
func (w *Win) fenceEmulated() error {
	n := w.c.Size()
	me := w.c.Rank()

	blobs := make([][]byte, n)
	for t := 0; t < n; t++ {
		blobs[t] = w.encodeOps(w.pend[t])
	}

	lens := make([]byte, 8*n)
	for t := range blobs {
		binary.LittleEndian.PutUint64(lens[8*t:], uint64(len(blobs[t])))
	}
	inLens := make([]byte, 8*n)
	if err := w.c.Alltoall(lens, inLens); err != nil {
		return err
	}

	// Bulk epochs synchronize once more before the blob exchange (below),
	// so every blob finds its receive already posted and rides the
	// receiver-ready rendezvous fast path. The decision must be symmetric
	// — the extra round is collective — so it comes from the global max
	// blob size, not the local one.
	maxBlob := int64(0)
	for _, b := range blobs {
		if int64(len(b)) > maxBlob {
			maxBlob = int64(len(b))
		}
	}
	globalMax, err := w.c.AllreduceInt64(MaxInt64, []int64{maxBlob})
	if err != nil {
		return err
	}
	bulk := false
	if me, ok := w.c.ep.(interface{ MaxEager() int }); ok {
		bulk = globalMax[0] > int64(me.MaxEager())
	}

	// Pre-post the get-reply receives (lengths are known from our own get
	// list) so large replies can take the pre-posted rendezvous fast path.
	replyLen := make([]int, n)
	for _, g := range w.gets {
		replyLen[g.target] += 8 + len(g.buf)
	}
	var reqs []*Request
	replies := make([][]byte, n)
	for t := 0; t < n; t++ {
		if t == me || replyLen[t] == 0 {
			continue
		}
		replies[t] = make([]byte, replyLen[t])
		r, err := w.c.Irecv(t, winTagGets, replies[t])
		if err != nil {
			return err
		}
		reqs = append(reqs, r)
	}

	// Exchange operation blobs.
	inBlobs := make([][]byte, n)
	for s := 0; s < n; s++ {
		if s == me {
			inBlobs[s] = blobs[me]
			continue
		}
		sz := int(binary.LittleEndian.Uint64(inLens[8*s:]))
		if sz == 0 {
			continue
		}
		inBlobs[s] = make([]byte, sz)
		r, err := w.c.Irecv(s, winTagFence, inBlobs[s])
		if err != nil {
			return err
		}
		reqs = append(reqs, r)
	}
	if bulk {
		// All receives are pre-posted everywhere once the barrier opens:
		// no RTS can beat its receive, so every rendezvous blob lands on
		// the RTR fast path (an RDMA write on the socket transports)
		// instead of round-tripping RTS/CTS against an unmatched queue.
		if err := w.c.Barrier(); err != nil {
			return err
		}
	}
	var blobReqs []*Request
	for t := 0; t < n; t++ {
		if t == me || len(blobs[t]) == 0 {
			continue
		}
		r, err := w.c.Isend(t, winTagFence, blobs[t])
		if err != nil {
			return err
		}
		blobReqs = append(blobReqs, r)
	}
	if _, err := WaitAll(blobReqs...); err != nil {
		return err
	}

	// Apply in source-rank order, collecting get requests for phase 4.
	// Incoming blobs must all have arrived first.
	type getReq struct{ idx, off, n int }
	getsBySrc := make([][]getReq, n)
	apply := func(src int) error {
		blob := inBlobs[src]
		for pos := 0; pos < len(blob); {
			kind := blob[pos]
			off := int(binary.LittleEndian.Uint64(blob[pos+1:]))
			sz := int(binary.LittleEndian.Uint64(blob[pos+9:]))
			pos += 17
			switch kind {
			case opPut:
				w.st.ApplyPut(off, blob[pos:pos+sz])
				pos += sz
			case opAcc:
				op := core.RMAOp(blob[pos])
				pos++
				w.st.ApplyAccumulate(off, blob[pos:pos+sz], op)
				pos += sz
			case opGet:
				idx := int(binary.LittleEndian.Uint64(blob[pos:]))
				pos += 8
				getsBySrc[src] = append(getsBySrc[src], getReq{idx: idx, off: off, n: sz})
			default:
				return core.Errorf(core.ErrInternal, "corrupt window fence blob from rank %d (op %d)", src, kind)
			}
		}
		return nil
	}
	// Waiting on our own Irecvs completes them in reqs order; WaitAll
	// above already drained the sends, so only receives remain.
	if _, err := WaitAll(reqs...); err != nil {
		return err
	}
	for s := 0; s < n; s++ {
		if len(inBlobs[s]) == 0 {
			continue
		}
		if err := apply(s); err != nil {
			return err
		}
	}

	// Serve gets from the post-apply region.
	var replyReqs []*Request
	for s := 0; s < n; s++ {
		gets := getsBySrc[s]
		if len(gets) == 0 {
			continue
		}
		if s == me {
			for _, g := range gets {
				w.st.ReadInto(g.off, w.gets[g.idx].buf)
			}
			continue
		}
		reply := make([]byte, 0, 16)
		for _, g := range gets {
			hdr := make([]byte, 8)
			binary.LittleEndian.PutUint64(hdr, uint64(g.idx))
			reply = append(reply, hdr...)
			data := make([]byte, g.n)
			w.st.ReadInto(g.off, data)
			reply = append(reply, data...)
		}
		r, err := w.c.Isend(s, winTagGets, reply)
		if err != nil {
			return err
		}
		replyReqs = append(replyReqs, r)
	}
	if _, err := WaitAll(replyReqs...); err != nil {
		return err
	}

	// Land remote get replies.
	for t := 0; t < n; t++ {
		reply := replies[t]
		for pos := 0; pos < len(reply); {
			idx := int(binary.LittleEndian.Uint64(reply[pos:]))
			pos += 8
			buf := w.gets[idx].buf
			copy(buf, reply[pos:pos+len(buf)])
			pos += len(buf)
		}
	}

	for t := range w.pend {
		w.pend[t] = nil
	}
	w.gets = w.gets[:0]
	return w.c.Barrier()
}

// encodeOps serializes one target's recorded operations.
func (w *Win) encodeOps(ops []winOp) []byte {
	if len(ops) == 0 {
		return nil
	}
	sz := 0
	for _, o := range ops {
		sz += 17
		switch o.kind {
		case opPut:
			sz += len(o.data)
		case opAcc:
			sz += 1 + len(o.data)
		case opGet:
			sz += 8
		}
	}
	blob := make([]byte, 0, sz)
	var u [8]byte
	put64 := func(v int) {
		binary.LittleEndian.PutUint64(u[:], uint64(v))
		blob = append(blob, u[:]...)
	}
	for _, o := range ops {
		blob = append(blob, o.kind)
		put64(o.off)
		switch o.kind {
		case opPut:
			put64(len(o.data))
			blob = append(blob, o.data...)
		case opAcc:
			put64(len(o.data))
			blob = append(blob, byte(o.op))
			blob = append(blob, o.data...)
		case opGet:
			gsz := len(w.gets[o.idx].buf)
			put64(gsz)
			put64(o.idx)
		}
	}
	return blob
}
