package mpi_test

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/mpi"
	"repro/platform/registry"

	_ "repro/platform/cluster"
	_ "repro/platform/meiko"
)

// lockBackends are the backends with native remote memory, where
// passive-target Lock/Unlock is available.
var lockBackends = []string{"mem", "meiko/lowlatency", "cluster/shm"}

func lockWorld(t *testing.T, backend string, ranks int, kills string) *mpi.World {
	t.Helper()
	spec := registry.SpecFor(backend)
	spec.Ranks = ranks
	spec.Kills = kills
	w, err := registry.Build(spec)
	if err != nil {
		t.Fatalf("build %s: %v", backend, err)
	}
	return w
}

// TestLockExclusiveContention drives 4 concurrent lockers (including the
// target itself) through exclusive epochs on one rank's window. Each
// write epoch stores the same stamp at two offsets and bumps a counter;
// each check epoch reads the pair back. Exclusive epochs serialize, so a
// reader must never observe a torn pair, and every counter increment must
// land.
func TestLockExclusiveContention(t *testing.T) {
	const n, iters = 4, 3
	for _, backend := range lockBackends {
		t.Run(backend, func(t *testing.T) {
			w := lockWorld(t, backend, n, "")
			if _, err := mpi.Launch(w, func(c *mpi.Comm) error {
				win, err := c.WinCreate(24)
				if err != nil {
					return err
				}
				for i := 0; i < iters; i++ {
					stamp := make([]byte, 8)
					binary.LittleEndian.PutUint64(stamp, uint64(c.Rank()*1000+i+1))
					if err := win.Lock(0, true); err != nil {
						return err
					}
					if err := win.Put(0, 0, stamp); err != nil {
						return err
					}
					if err := win.Put(0, 8, stamp); err != nil {
						return err
					}
					if err := win.Accumulate(0, 16, mpi.Int64Bytes([]int64{1}), mpi.AccSumInt64); err != nil {
						return err
					}
					if err := win.Unlock(0); err != nil {
						return err
					}
					pair := make([]byte, 16)
					if err := win.Lock(0, true); err != nil {
						return err
					}
					if err := win.Get(0, 0, pair); err != nil {
						return err
					}
					if err := win.Unlock(0); err != nil {
						return err
					}
					a := binary.LittleEndian.Uint64(pair[:8])
					b := binary.LittleEndian.Uint64(pair[8:])
					if a != b {
						t.Errorf("%s: rank %d read torn stamp pair %d/%d (exclusive epochs overlapped)", backend, c.Rank(), a, b)
					}
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if c.Rank() == 0 {
					got := binary.LittleEndian.Uint64(win.Bytes()[16:])
					if got != n*iters {
						t.Errorf("%s: counter = %d, want %d (lost an exclusive epoch)", backend, got, n*iters)
					}
				}
				return win.Free()
			}); err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
		})
	}
}

// TestLockSharedReaders checks that shared epochs coexist: three readers
// take MPI_LOCK_SHARED concurrently around an exclusive writer, and every
// read observes either the old or the new value, never a torn one.
func TestLockSharedReaders(t *testing.T) {
	const n = 4
	const magic = 0x1122334455667788
	for _, backend := range lockBackends {
		t.Run(backend, func(t *testing.T) {
			w := lockWorld(t, backend, n, "")
			if _, err := mpi.Launch(w, func(c *mpi.Comm) error {
				win, err := c.WinCreate(8)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					// Exclusive writer: one epoch installing the magic word.
					if err := win.Lock(0, true); err != nil {
						return err
					}
					val := make([]byte, 8)
					binary.LittleEndian.PutUint64(val, magic)
					if err := win.Put(0, 0, val); err != nil {
						return err
					}
					if err := win.Unlock(0); err != nil {
						return err
					}
				} else {
					// Three shared readers, repeatedly.
					for i := 0; i < 4; i++ {
						if err := win.Lock(0, false); err != nil {
							return err
						}
						got := make([]byte, 8)
						if err := win.Get(0, 0, got); err != nil {
							return err
						}
						if err := win.Unlock(0); err != nil {
							return err
						}
						v := binary.LittleEndian.Uint64(got)
						if v != 0 && v != magic {
							t.Errorf("%s: rank %d read torn value %#x", backend, c.Rank(), v)
						}
					}
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				return win.Free()
			}); err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
		})
	}
}

// TestLockHolderDies kills a rank while it holds the exclusive lock: the
// target's failure detector must release the dead holder's lock and
// regrant to the queued waiters, so the surviving lockers complete
// instead of parking forever behind a corpse. The kill lands at 600µs —
// after WinCreate's collective has completed on every backend (the
// slowest, cluster/shm, finishes around 300µs) and squarely inside the
// victim's 1ms hold.
func TestLockHolderDies(t *testing.T) {
	const n, victim = 4, 2
	for _, backend := range lockBackends {
		t.Run(backend, func(t *testing.T) {
			w := lockWorld(t, backend, n, "2@600us")
			if _, err := mpi.Launch(w, func(c *mpi.Comm) error {
				win, err := c.WinCreate(8)
				if err != nil {
					return err
				}
				if c.Rank() == victim {
					// Grab the lock and die holding it.
					if err := win.Lock(0, true); err != nil {
						if c.Dead() {
							return nil
						}
						return err
					}
					if err := win.Accumulate(0, 0, mpi.Int64Bytes([]int64{100}), mpi.AccSumInt64); err != nil {
						if c.Dead() {
							return nil
						}
						return err
					}
					c.Compute(time.Millisecond) // killed mid-epoch
					if !c.Dead() {
						t.Errorf("%s: victim outlived its kill", backend)
						return win.Unlock(0)
					}
					return nil
				}
				if c.Rank() != 0 {
					// Two surviving lockers contend behind the doomed holder.
					c.Compute(100 * time.Microsecond)
					if err := win.Lock(0, true); err != nil {
						return err
					}
					if err := win.Accumulate(0, 0, mpi.Int64Bytes([]int64{1}), mpi.AccSumInt64); err != nil {
						return err
					}
					if err := win.Unlock(0); err != nil {
						return err
					}
					if err := c.Send(0, 9, []byte{1}); err != nil {
						return err
					}
					return nil
				}
				// Target: make progress (grants flow through our engine)
				// until both survivors report done, then inspect.
				buf := make([]byte, 1)
				for _, s := range []int{1, 3} {
					if _, err := c.Recv(s, 9, buf); err != nil {
						return err
					}
				}
				got := binary.LittleEndian.Uint64(win.Bytes())
				// The dead holder's epoch never closed with an Unlock, so
				// its accumulate may or may not have landed; the survivors'
				// two increments must have.
				if got != 2 && got != 102 {
					t.Errorf("%s: counter = %d, want 2 (or 102 if the orphaned epoch landed)", backend, got)
				}
				return nil
			}); err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
		})
	}
}
