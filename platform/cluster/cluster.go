// Package cluster runs MPI jobs on the modeled SGI workstation cluster —
// the paper's second platform — over TCP or reliable UDP, on either the
// 10 Mbit/s shared Ethernet or the 155 Mbit/s Fore ATM switch.
//
// The device re-implements the primitives the Meiko implementation
// assumes (paper §5.1) on stream sockets: sending an envelope, sending an
// envelope with piggybacked data, and "setting remote events and sending
// DMA data" for rendezvous payloads. Every protocol message carries the
// paper's 25 bytes of control information: 1 byte of message type, 4 bytes
// of returned credit, and the 20-byte envelope. Flow control is the
// paper's credit scheme: the receiver reserves memory per sender, senders
// transmit optimistically against it, and freed space flows back
// piggybacked (or explicitly when traffic is one-sided).
package cluster

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/mpi"
)

// TransportKind selects the cluster transport protocol.
type TransportKind int

const (
	// TCP carries MPI over per-pair TCP connections.
	TCP TransportKind = iota
	// UDP carries MPI over the reliable-UDP layer (sequence numbers,
	// acks, retransmission).
	UDP
	// UNET carries MPI over the U-Net-style user-level endpoints — the
	// kernel-bypass future work the paper's related-work section points
	// at. ATM only.
	UNET
	// SHM carries MPI over a coherent shared-memory segment mapped by all
	// hosts (the CXL-style attached-memory analogue of the Meiko's
	// remote-store hardware): direct stores, no kernel, no frames — and
	// native one-sided remote memory.
	SHM
)

func (k TransportKind) String() string {
	switch k {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	case SHM:
		return "shm"
	default:
		return "unet"
	}
}

// Config describes a cluster job.
type Config struct {
	Hosts     int
	Transport TransportKind
	Network   atm.MediumKind // OverATM or OverEthernet
	// Lanes > 1 builds the world on the sharded kernel: hosts block-mapped
	// onto that many lanes, the ATM switch hop routing between them, the
	// shared Ethernet homed on lane 0 as a stage, and SwitchDelay (the
	// segment latency for SHM) as the lookahead bound. Fault injection
	// composes with lanes: each (src, dst) link draws from its own
	// seed-derived RNG stream, so lossy sweeps shard too — single-lane
	// lossy runs stay bit-identical to earlier releases via the legacy
	// world-global stream.
	Lanes int
	// Eager is the eager/rendezvous crossover in bytes (0 = DefaultEager).
	Eager int
	// CreditBytes is the per-(sender,receiver) reserved memory
	// (0 = DefaultCredit).
	CreditBytes int
	// Costs overrides the kernel/wire cost model; nil means DefaultCosts.
	Costs *atm.Costs
	// Bcast forces the broadcast algorithm; the default (BcastAuto) lets
	// the collective layer select by message and communicator size.
	Bcast mpi.BcastAlg
	// LossRate injects datagram loss — shorthand for Faults{Loss: rate}.
	LossRate float64
	// Faults installs a full fault policy on both media (loss, delay,
	// jitter, reordering, duplication, partitions; see atm.Faults). When
	// both Faults and LossRate are set, Faults wins.
	Faults *atm.Faults
	// TCPNagle disables the implicit TCP_NODELAY: connections run with
	// Nagle coalescing and delayed acks, the configuration every
	// low-latency MPI of the era had to turn off. For the ablation.
	TCPNagle bool
	// RUDPMaxRetries overrides the reliable-UDP retry budget before a link
	// is declared dead (0 = the layer's default; tests shorten it).
	RUDPMaxRetries int
	// RUDPAckDelay enables delayed acks on the reliable-UDP layer: pure
	// acks wait this long for reverse data to piggyback them (0 = ack
	// immediately, the paper's measured configuration).
	RUDPAckDelay sim.Duration
	// NoRTR disables the RDMA-write rendezvous (pre-posted receive
	// advertisements), pinning large transfers to the two-sided RTS/CTS
	// protocol. For the rendezvous ablation.
	NoRTR bool
	Seed  int64
}

// DefaultEager is the cluster crossover: socket round trips cost ~1 ms, so
// piggybacking data with the envelope pays until the bounce-copy cost
// rivals a rendezvous round trip (§5.1: "piggybacking data is more
// important than in the Meiko implementation").
const DefaultEager = 16 * 1024

// DefaultCredit is the per-pair reserved receiver memory.
const DefaultCredit = 64 * 1024

// NewWorld builds the cluster and per-rank endpoints for cfg.
func NewWorld(cfg Config) (*mpi.World, *atm.Cluster) {
	w, cl, err := newWorld(cfg)
	if err != nil {
		panic(err) // direct Config construction with an invalid fault policy
	}
	return w, cl
}

func newWorld(cfg Config) (*mpi.World, *atm.Cluster, error) {
	costs := atm.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	faults := cfg.Faults
	if faults == nil && cfg.LossRate > 0 {
		faults = &atm.Faults{Seed: cfg.Seed, Loss: cfg.LossRate}
	}
	var (
		cl     *atm.Cluster
		sh     *sim.Shard
		laneOf []int
	)
	if faults != nil && cfg.Transport == SHM {
		return nil, nil, fmt.Errorf("cluster/shm: fault injection is not supported (a memory segment has no lossy wire)")
	}
	if cfg.Lanes > 1 {
		lanes := cfg.Lanes
		if lanes > cfg.Hosts {
			lanes = cfg.Hosts
		}
		// One lane per host block; the minimum cross-lane latency — the
		// switch forwarding delay, or the segment visibility latency on
		// shm — is the lookahead bound.
		lookahead := costs.SwitchDelay
		if cfg.Transport == SHM {
			lookahead = costs.ShmLatency
		}
		sh = sim.NewShard(cfg.Seed+1, lanes, lookahead)
		sh.MaxEvents = 500_000_000
		laneOf = make([]int, cfg.Hosts)
		for i := range laneOf {
			laneOf[i] = i * lanes / cfg.Hosts
		}
		cl = atm.NewShardedCluster(sh, laneOf, costs)
	} else {
		s := sim.NewScheduler(cfg.Seed + 1)
		s.MaxEvents = 500_000_000
		cl = atm.NewCluster(s, cfg.Hosts, costs)
	}
	if faults != nil {
		if err := cl.SetFaults(*faults); err != nil {
			return nil, nil, err
		}
	}
	eager := cfg.Eager
	if eager == 0 {
		eager = DefaultEager
	}
	credit := cfg.CreditBytes
	if credit == 0 {
		credit = DefaultCredit
	}

	n := cfg.Hosts
	eps := make([]core.Endpoint, n)
	if cfg.Transport == SHM {
		shms := make([]*shmTransport, n)
		for i := 0; i < n; i++ {
			eng := core.NewEngine(cl.SchedOf(i), i, n, shmEngineCosts(), nil)
			shms[i] = newShmTransport(cl, eng, i, eager, shms)
			eng.SetTransport(shms[i])
			eps[i] = eng
		}
	} else {
		trs := make([]*transport, n)
		for i := 0; i < n; i++ {
			eng := core.NewEngine(cl.SchedOf(i), i, n, clusterEngineCosts(), nil)
			trs[i] = newTransport(cl, eng, i, n, eager, credit, cfg.Transport, cfg.Network, trs)
			trs[i].noRTR = cfg.NoRTR
			eng.SetTransport(trs[i])
			eps[i] = eng
		}
		// Static all-pairs TCP mesh, as in the paper's setup.
		if cfg.Transport == TCP {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					a, b := cl.TCPPair(i, j, cfg.Network)
					if cfg.TCPNagle {
						a.Nagle, a.DelayedAck = true, true
						b.Nagle, b.DelayedAck = true, true
					}
					trs[i].attachConn(j, a)
					trs[j].attachConn(i, b)
				}
			}
		} else if cfg.Transport == UDP {
			for i := 0; i < n; i++ {
				r := atm.NewRUDP(cl.UDPSocket(i, cfg.Network))
				if cfg.RUDPMaxRetries > 0 {
					r.MaxRetries = cfg.RUDPMaxRetries
				}
				r.AckDelay = cfg.RUDPAckDelay
				trs[i].attachDgram(r)
			}
		} else {
			for i := 0; i < n; i++ {
				trs[i].attachDgram(unetLink{cl.UNetSocket(i)})
			}
		}
	}

	var w *mpi.World
	if sh != nil {
		w = mpi.NewShardedWorld(sh, eps, laneOf)
	} else {
		w = mpi.NewWorld(cl.S, eps)
	}
	w.Bcast = cfg.Bcast // BcastAuto defers to the collective layer's selector
	// Failure-detection latency: how long after a death survivors take to
	// declare the peer dead (see mpi.World.ScheduleKills). Scaled to each
	// transport's loss-recovery horizon — RUDP must let a few retransmission
	// timeouts expire before silence means death, TCP a couple of RTTs, the
	// kernel-bypass and shared-memory paths far less.
	switch cfg.Transport {
	case SHM:
		w.FTDetect = 50 * time.Microsecond
	case TCP:
		w.FTDetect = 2 * time.Millisecond
	case UDP:
		w.FTDetect = 40 * time.Millisecond
	default: // UNET
		w.FTDetect = 500 * time.Microsecond
	}
	return w, cl, nil
}

// Run executes body as an MPI job on the configured cluster.
func Run(cfg Config, body func(c *mpi.Comm) error) (*mpi.Report, error) {
	w, _ := NewWorld(cfg)
	return mpi.Launch(w, body)
}

// clusterEngineCosts carries Table 1's user-level charges: 35 µs matching
// on the 133 MHz SGI, plus bounce-buffer copies and call bookkeeping.
func clusterEngineCosts() core.EngineCosts {
	return core.EngineCosts{
		Match:        18 * time.Microsecond, // 2 scans per message = the paper's ~35 us
		CopyBase:     2 * time.Microsecond,
		CopyPerByte:  60 * time.Nanosecond,
		SendOverhead: 10 * time.Microsecond,
		RecvOverhead: 10 * time.Microsecond,
	}
}
