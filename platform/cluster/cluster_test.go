package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/mpi"
)

func pingPong(t *testing.T, cfg Config, n, iters int) time.Duration {
	t.Helper()
	cfg.Hosts = 2
	var rtt time.Duration
	_, err := Run(cfg, func(c *mpi.Comm) error {
		data := make([]byte, n)
		buf := make([]byte, n)
		if c.Rank() == 0 {
			start := c.Wtime()
			for i := 0; i < iters; i++ {
				if err := c.Send(1, 0, data); err != nil {
					return err
				}
				if _, err := c.Recv(1, 0, buf); err != nil {
					return err
				}
			}
			rtt = (c.Wtime() - start) / time.Duration(iters)
			return nil
		}
		for i := 0; i < iters; i++ {
			if _, err := c.Recv(0, 0, buf); err != nil {
				return err
			}
			if err := c.Send(0, 0, data); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rtt
}

// Figure 5: MPI over TCP adds a near-constant offset (kernel reads and
// matching) over raw TCP on both media, and the ATM/Ethernet ordering of
// raw TCP carries over.
func TestFigure5Shape(t *testing.T) {
	mpiEth := pingPong(t, Config{Transport: TCP, Network: atm.OverEthernet}, 1, 10)
	mpiATM := pingPong(t, Config{Transport: TCP, Network: atm.OverATM}, 1, 10)
	// Raw anchors from the substrate calibration.
	rawEth := 925 * time.Microsecond
	rawATM := 1065 * time.Microsecond
	dEth := mpiEth - rawEth
	dATM := mpiATM - rawATM
	if dEth < 150*time.Microsecond || dEth > 450*time.Microsecond {
		t.Fatalf("mpi/tcp/eth overhead = %v; want a few hundred us (paper: reads+matching)", dEth)
	}
	if dATM < 150*time.Microsecond || dATM > 550*time.Microsecond {
		t.Fatalf("mpi/tcp/atm overhead = %v", dATM)
	}
	if mpiATM < mpiEth {
		t.Fatalf("1-byte: mpi/tcp/atm %v < mpi/tcp/eth %v; ATM should be slower for tiny messages", mpiATM, mpiEth)
	}
	// At 8 KB the ATM bandwidth advantage must flip the order.
	bigEth := pingPong(t, Config{Transport: TCP, Network: atm.OverEthernet}, 8192, 5)
	bigATM := pingPong(t, Config{Transport: TCP, Network: atm.OverATM}, 8192, 5)
	if bigATM > bigEth {
		t.Fatalf("8KB: mpi/tcp/atm %v > mpi/tcp/eth %v", bigATM, bigEth)
	}
}

// Table 1: the per-message overhead components exist with the paper's
// magnitudes: two header reads (~65 us Ethernet, ~85 us ATM) and ~35 us
// of matching.
func TestTable1Breakdown(t *testing.T) {
	for _, net := range []atm.MediumKind{atm.OverEthernet, atm.OverATM} {
		net := net
		t.Run(net.String(), func(t *testing.T) {
			cfg := Config{Hosts: 2, Transport: TCP, Network: net}
			const iters = 10
			rep, err := Run(cfg, func(c *mpi.Comm) error {
				data := make([]byte, 1)
				if c.Rank() == 0 {
					for i := 0; i < iters; i++ {
						if err := c.Send(1, 0, data); err != nil {
							return err
						}
						if _, err := c.Recv(1, 0, data); err != nil {
							return err
						}
					}
					return nil
				}
				for i := 0; i < iters; i++ {
					if _, err := c.Recv(0, 0, data); err != nil {
						return err
					}
					if err := c.Send(0, 0, data); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			acct := rep.RankAccts[1]
			perMsg := func(label string) float64 {
				if acct.Count[label] == 0 {
					return float64(acct.Time[label]) / float64(iters) / 1e3
				}
				return float64(acct.Time[label]) / float64(acct.Count[label]) / 1e3
			}
			readType := perMsg(acctReadType)
			readEnv := perMsg(acctReadEnv)
			match := float64(acct.Time["match"]) / float64(acct.Count["recv"]) / 1e3
			wantRead := 65.0
			if net == atm.OverATM {
				wantRead = 85.0
			}
			if readType < wantRead*0.8 || readType > wantRead*1.3 {
				t.Errorf("read-for-type = %.1f us/msg, want ~%.0f (Table 1)", readType, wantRead)
			}
			if readEnv < wantRead*0.8 || readEnv > wantRead*1.3 {
				t.Errorf("read-for-envelope = %.1f us/msg, want ~%.0f (Table 1)", readEnv, wantRead)
			}
			if match < 30 || match > 80 {
				t.Errorf("matching = %.1f us/recv, want ~35-70 (Table 1)", match)
			}
		})
	}
}

// Figure 6 shape: MPI-over-TCP bandwidth approaches raw TCP, and ATM
// exceeds Ethernet severalfold.
func TestFigure6Bandwidth(t *testing.T) {
	bw := func(net atm.MediumKind) float64 {
		cfg := Config{Hosts: 2, Transport: TCP, Network: net}
		const chunk = 64 * 1024
		const iters = 8
		var elapsed time.Duration
		_, err := Run(cfg, func(c *mpi.Comm) error {
			if c.Rank() == 0 {
				data := make([]byte, chunk)
				for i := 0; i < iters; i++ {
					if err := c.Send(1, 0, data); err != nil {
						return err
					}
				}
				_, err := c.Recv(1, 1, make([]byte, 1))
				return err
			}
			buf := make([]byte, chunk)
			for i := 0; i < iters; i++ {
				if _, err := c.Recv(0, 0, buf); err != nil {
					return err
				}
			}
			elapsed = c.Wtime()
			return c.Send(0, 1, []byte{1})
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(chunk*iters) / elapsed.Seconds() / 1e6
	}
	eth := bw(atm.OverEthernet)
	am := bw(atm.OverATM)
	if eth < 0.6 || eth > 1.2 {
		t.Fatalf("mpi/tcp/eth bandwidth = %.2f MB/s, want ~0.8-1.1", eth)
	}
	if am < 3 || am > 14 {
		t.Fatalf("mpi/tcp/atm bandwidth = %.2f MB/s", am)
	}
	if am < 3*eth {
		t.Fatalf("atm (%.2f) should be several times eth (%.2f)", am, eth)
	}
}

// The paper's finding: the reliable-UDP MPI performs like the TCP one.
func TestUDPComparableToTCP(t *testing.T) {
	tcp := pingPong(t, Config{Transport: TCP, Network: atm.OverATM}, 256, 10)
	udp := pingPong(t, Config{Transport: UDP, Network: atm.OverATM}, 256, 10)
	ratio := float64(udp) / float64(tcp)
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("udp/tcp RTT ratio = %.2f (udp %v, tcp %v); paper found them similar", ratio, udp, tcp)
	}
}

func TestSemanticsAllVariants(t *testing.T) {
	for _, tr := range []TransportKind{TCP, UDP} {
		for _, net := range []atm.MediumKind{atm.OverEthernet, atm.OverATM} {
			tr, net := tr, net
			t.Run(fmt.Sprintf("%v-%v", tr, net), func(t *testing.T) {
				const n = 4
				_, err := Run(Config{Hosts: n, Transport: tr, Network: net}, func(c *mpi.Comm) error {
					// Eager and rendezvous sizes with wildcards.
					for _, size := range []int{1, 500, 40_000} {
						if c.Rank() != 0 {
							data := make([]byte, size)
							for i := range data {
								data[i] = byte(i + c.Rank())
							}
							if err := c.Send(0, size%1000, data); err != nil {
								return err
							}
						} else {
							for k := 1; k < n; k++ {
								buf := make([]byte, size)
								st, err := c.Recv(mpi.AnySource, size%1000, buf)
								if err != nil {
									return err
								}
								for i := 0; i < size; i += 97 {
									if buf[i] != byte(i+st.Source) {
										return fmt.Errorf("size %d from %d corrupt at %d", size, st.Source, i)
									}
								}
							}
						}
						if err := c.Barrier(); err != nil {
							return err
						}
					}
					// Collective sanity.
					sum, err := c.AllreduceFloat64(mpi.SumFloat64, []float64{1})
					if err != nil {
						return err
					}
					if sum[0] != n {
						return fmt.Errorf("allreduce = %v", sum)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	for _, tr := range []TransportKind{TCP, UDP} {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			const size = 300_000
			_, err := Run(Config{Hosts: 2, Transport: tr, Network: atm.OverATM}, func(c *mpi.Comm) error {
				if c.Rank() == 0 {
					data := make([]byte, size)
					for i := range data {
						data[i] = byte(i * 13)
					}
					return c.Send(1, 0, data)
				}
				buf := make([]byte, size)
				st, err := c.Recv(0, 0, buf)
				if err != nil {
					return err
				}
				if st.Count != size {
					return fmt.Errorf("count = %d", st.Count)
				}
				for i := 0; i < size; i += 1009 {
					if buf[i] != byte(i*13) {
						return fmt.Errorf("corrupt at %d", i)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCreditFlowControlOneSided(t *testing.T) {
	// Many eager messages to a slow receiver with a small reservation:
	// credits must round-trip (explicit returns) without deadlock.
	_, err := Run(Config{Hosts: 2, Transport: TCP, Network: atm.OverATM, CreditBytes: 4096, Eager: 1000}, func(c *mpi.Comm) error {
		const msgs = 30
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, i, make([]byte, 900)); err != nil {
					return err
				}
			}
			return nil
		}
		c.Compute(20 * time.Millisecond)
		for i := 0; i < msgs; i++ {
			if _, err := c.Recv(0, i, make([]byte, 900)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreditBlocksSender(t *testing.T) {
	const delay = 50 * time.Millisecond
	var allSent time.Duration
	_, err := Run(Config{Hosts: 2, Transport: TCP, Network: atm.OverATM, CreditBytes: 2048, Eager: 1000}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				if err := c.Send(1, i, make([]byte, 900)); err != nil {
					return err
				}
			}
			allSent = c.Wtime()
			return nil
		}
		c.Compute(delay)
		for i := 0; i < 5; i++ {
			if _, err := c.Recv(0, i, make([]byte, 900)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if allSent < delay {
		t.Fatalf("5x900B against a 2KB reservation finished at %v, before the receiver drained at %v", allSent, delay)
	}
}

func TestUDPWithLossStillCorrect(t *testing.T) {
	const size = 20_000
	rep, err := Run(Config{Hosts: 2, Transport: UDP, Network: atm.OverATM, LossRate: 0.1}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i * 3)
			}
			for k := 0; k < 3; k++ {
				if err := c.Send(1, k, data); err != nil {
					return err
				}
			}
			return nil
		}
		for k := 0; k < 3; k++ {
			buf := make([]byte, size)
			if _, err := c.Recv(0, k, buf); err != nil {
				return err
			}
			for i := 0; i < size; i += 487 {
				if buf[i] != byte(i*3) {
					return fmt.Errorf("msg %d corrupt at %d", k, i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
}

func TestSsendBlocksOnCluster(t *testing.T) {
	const delay = 10 * time.Millisecond
	var done time.Duration
	_, err := Run(Config{Hosts: 2, Transport: TCP, Network: atm.OverATM}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			if err := c.Ssend(1, 0, []byte{1}); err != nil {
				return err
			}
			done = c.Wtime()
			return nil
		}
		c.Compute(delay)
		_, err := c.Recv(0, 0, make([]byte, 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if done < delay {
		t.Fatalf("Ssend completed at %v before receive posted at %v", done, delay)
	}
}

func TestEagerPayloadIntegrity(t *testing.T) {
	for _, size := range []int{0, 1, 100, 5000, 15_000} {
		size := size
		_, err := Run(Config{Hosts: 2, Transport: TCP, Network: atm.OverATM}, func(c *mpi.Comm) error {
			if c.Rank() == 0 {
				data := make([]byte, size)
				for i := range data {
					data[i] = byte(i ^ 0x5A)
				}
				return c.Send(1, 0, data)
			}
			buf := make([]byte, size)
			if _, err := c.Recv(0, 0, buf); err != nil {
				return err
			}
			want := make([]byte, size)
			for i := range want {
				want[i] = byte(i ^ 0x5A)
			}
			if !bytes.Equal(buf, want) {
				return fmt.Errorf("size %d corrupted", size)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestLinearVsBinomialBcast(t *testing.T) {
	elapsed := func(alg mpi.BcastAlg) time.Duration {
		rep, err := Run(Config{Hosts: 8, Transport: TCP, Network: atm.OverATM, Bcast: alg}, func(c *mpi.Comm) error {
			buf := make([]byte, 4096)
			for i := 0; i < 5; i++ {
				if err := c.Bcast(0, buf); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaxRankElapsed
	}
	lin, bin := elapsed(mpi.BcastLinear), elapsed(mpi.BcastBinomial)
	if bin >= lin {
		t.Fatalf("binomial bcast %v not faster than linear %v at 8 ranks", bin, lin)
	}
}

func TestDeterministicCluster(t *testing.T) {
	run := func() time.Duration {
		rep, err := Run(Config{Hosts: 4, Transport: TCP, Network: atm.OverEthernet}, func(c *mpi.Comm) error {
			return c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaxRankElapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
