package cluster

import (
	"testing"
	"time"

	"repro/internal/atm"
	"repro/mpi"
)

// A permanently severed link must surface as a typed MPI error at every
// rank with traffic in flight — not as a simulation deadlock. Both ranks
// send first so both reliability endpoints have undeliverable frames and
// both observe the death.
func TestDeadLinkSurfacesTypedError(t *testing.T) {
	rep, err := Run(Config{
		Hosts: 2, Transport: UDP, Network: atm.OverATM,
		RUDPMaxRetries: 3,
		Faults:         &atm.Faults{Partitions: []atm.Partition{{A: 0, B: 1}}},
	}, func(c *mpi.Comm) error {
		if err := c.Send(1-c.Rank(), 0, []byte{1}); err != nil {
			return err
		}
		_, err := c.Recv(1-c.Rank(), 0, make([]byte, 4))
		return err
	})
	if err == nil {
		t.Fatal("job over a severed link finished without error")
	}
	if !mpi.IsLinkDown(err) {
		t.Fatalf("error %v is not the typed link-down failure", err)
	}
	for r, e := range rep.Errs {
		if e == nil {
			t.Errorf("rank %d finished cleanly over a severed link", r)
		} else if !mpi.IsLinkDown(e) {
			t.Errorf("rank %d failed with %v, want link-down", r, e)
		}
	}
}

// A partition that heals is an outage, not a death: retransmission bridges
// it and the job completes with correct data.
func TestPartitionOutageHealsTransparently(t *testing.T) {
	const size = 4096
	_, err := Run(Config{
		Hosts: 2, Transport: UDP, Network: atm.OverATM,
		Faults: &atm.Faults{Partitions: []atm.Partition{
			{A: 0, B: 1, From: time.Millisecond, Until: 40 * time.Millisecond},
		}},
	}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i * 5)
			}
			return c.Send(1, 0, data)
		}
		buf := make([]byte, size)
		if _, err := c.Recv(0, 0, buf); err != nil {
			return err
		}
		for i := range buf {
			if buf[i] != byte(i*5) {
				t.Errorf("corrupt byte %d after outage", i)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// An added link delay fault must show up in the measured round trip —
// proof the injector sits under MPI, not beside it.
func TestDelayFaultStretchesRTT(t *testing.T) {
	base := pingPong(t, Config{Transport: UDP, Network: atm.OverATM}, 1, 5)
	const oneWay = 2 * time.Millisecond
	slowed := pingPong(t, Config{
		Transport: UDP, Network: atm.OverATM,
		Faults: &atm.Faults{Delay: oneWay},
	}, 1, 5)
	if d := slowed - base; d < 2*oneWay*9/10 {
		t.Fatalf("2ms one-way delay fault stretched the RTT by only %v", d)
	}
}

// Messages stay intact and ordered under combined reordering and
// duplication — the reliability layer's sequencing absorbs both.
func TestReorderDuplicateStillCorrect(t *testing.T) {
	const msgs = 20
	_, err := Run(Config{
		Hosts: 2, Transport: UDP, Network: atm.OverATM,
		Faults: &atm.Faults{Seed: 9, Reorder: 0.3, Duplicate: 0.3},
	}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, i, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			buf := make([]byte, 4)
			if _, err := c.Recv(0, i, buf); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				t.Errorf("msg %d carried %d", i, buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// An invalid fault policy is rejected at world construction, not at the
// first mangled frame.
func TestInvalidFaultPolicyRejected(t *testing.T) {
	_, _, err := newWorld(Config{
		Hosts: 2, Transport: UDP, Network: atm.OverATM,
		Faults: &atm.Faults{Loss: 1.5},
	})
	if err == nil {
		t.Fatal("out-of-range loss probability accepted")
	}
}
