package cluster

import (
	"fmt"

	"repro/internal/atm"
	"repro/mpi"
	"repro/platform/registry"
)

// The cluster backends: one per socket transport, all sharing the flow
// layer's credit scheme and the 25-byte wire header.
func init() {
	register := func(name string, kind TransportKind) {
		registry.Register(name, func(s registry.Spec) (*mpi.World, error) {
			cfg, err := specConfig(s)
			if err != nil {
				return nil, err
			}
			cfg.Transport = kind
			if kind == UNET && cfg.Network != atm.OverATM {
				return nil, fmt.Errorf("cluster/unet: the U-Net endpoint exists only on the ATM fabric (network %q)", s.Network)
			}
			w, _, err := newWorld(cfg)
			return w, err
		})
	}
	register("cluster/tcp", TCP)
	register("cluster/udp", UDP)
	register("cluster/unet", UNET)
	register("cluster/shm", SHM)
}

// specConfig maps the platform-neutral job spec onto this platform's
// Config.
func specConfig(s registry.Spec) (Config, error) {
	cfg := Config{
		Hosts:       s.Ranks,
		Lanes:       s.Lanes,
		Eager:       s.Eager,
		CreditBytes: s.Credit,
		Bcast:       s.Bcast,
		TCPNagle:    s.TCPNagle,
		NoRTR:       s.NoRTR,
		Seed:        s.Seed,
	}
	if s.HasFaults() {
		parts, err := atm.ParsePartitions(s.Partition)
		if err != nil {
			return Config{}, fmt.Errorf("cluster: %v", err)
		}
		seed := s.FaultSeed
		if seed == 0 {
			seed = s.Seed
		}
		f := &atm.Faults{
			Seed:       seed,
			Loss:       s.LossRate,
			DropEveryN: s.DropEveryN,
			Delay:      s.Delay,
			Jitter:     s.Jitter,
			Reorder:    s.Reorder,
			Duplicate:  s.Duplicate,
			Partitions: parts,
		}
		if err := f.Validate(); err != nil {
			return Config{}, fmt.Errorf("cluster: %v", err)
		}
		cfg.Faults = f
	}
	switch s.Network {
	case "", "atm":
		cfg.Network = atm.OverATM
	case "eth":
		cfg.Network = atm.OverEthernet
	default:
		return Config{}, fmt.Errorf("cluster: unknown network %q (atm | eth)", s.Network)
	}
	if s.Costs != nil {
		costs, ok := s.Costs.(*atm.Costs)
		if !ok {
			return Config{}, fmt.Errorf("cluster: spec costs are %T, want *atm.Costs", s.Costs)
		}
		cfg.Costs = costs
	}
	return cfg, nil
}
