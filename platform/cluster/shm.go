package cluster

import (
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/sim"
)

// shmTransport carries MPI over the cluster's coherent shared-memory
// segment: every host maps one region, a message is a store burst into the
// receiver's mailbox, and the only wire is the attachment link (ShmLatency
// visibility plus ShmPerByte copy bandwidth). There is no kernel, no
// framing and no credit scheme — the segment itself is the reserved
// memory, so senders never block on flow control.
//
// Ordering: stores from one host drain through its write buffer in issue
// order, so deliveries to a given destination are kept non-overtaking by
// tracking the last arrival time per (sender, destination) pair and never
// scheduling an earlier one. The arrival delay is always at least
// ShmLatency, which is also the shard lookahead for shm worlds, so the
// same model runs unchanged on the sharded kernel.
//
// The segment is also the cluster's native one-sided fabric: RMAPut /
// RMAGet / RMAAccumulate apply directly to the target window in delivery
// context — the CXL-style analogue of the Meiko's remote-store hardware —
// so shm windows never fall back to the matched-send emulation.
type shmTransport struct {
	cl    *atm.Cluster
	eng   *core.Engine
	s     *sim.Scheduler // this host's (lane) scheduler
	rank  int
	eager int
	peers []*shmTransport

	inbox []*core.Packet
	inPos int // consumed prefix of inbox; avoids O(n) head shifts

	// lastArrival[dst] is the latest delivery time already scheduled
	// toward dst; successors are clamped to it (write-buffer FIFO).
	lastArrival map[int]sim.Time
}

var (
	_ core.Transport    = (*shmTransport)(nil)
	_ core.RemoteMemory = (*shmTransport)(nil)
)

func newShmTransport(cl *atm.Cluster, eng *core.Engine, rank, eager int, peers []*shmTransport) *shmTransport {
	return &shmTransport{
		cl:          cl,
		eng:         eng,
		s:           cl.SchedOf(rank),
		rank:        rank,
		eager:       eager,
		peers:       peers,
		lastArrival: make(map[int]sim.Time),
	}
}

// shmEngineCosts keeps the SGI's user-level matching charges (the CPU is
// the same 133 MHz Indy) but drops the syscall-sized send/receive
// overheads to a store-burst setup cost: no kernel sits between the MPI
// library and the segment.
func shmEngineCosts() core.EngineCosts {
	return core.EngineCosts{
		Match:        18 * time.Microsecond,
		CopyBase:     2 * time.Microsecond,
		CopyPerByte:  60 * time.Nanosecond,
		SendOverhead: 2 * time.Microsecond,
		RecvOverhead: 2 * time.Microsecond,
	}
}

// shmPollCost is the per-packet mailbox check (a cached flag read).
const shmPollCost = 500 * time.Nanosecond

// xferDelay is the store-burst visibility delay for n payload bytes,
// clamped so deliveries toward dst never overtake an earlier one.
func (t *shmTransport) xferDelay(dst, n int) sim.Duration {
	now := t.s.Now()
	arrival := now + sim.Time(t.cl.Costs.ShmLatency) + sim.Time(sim.Duration(n)*t.cl.Costs.ShmPerByte)
	if last, ok := t.lastArrival[dst]; ok && last > arrival {
		arrival = last
	}
	t.lastArrival[dst] = arrival
	return sim.Duration(arrival - now)
}

// deliver ships pkt into dst's mailbox after the FIFO-clamped store delay
// for n payload bytes. Payload storage must be a GC-owned snapshot made on
// this lane (Pool nil): the packet may cross lanes.
func (t *shmTransport) deliver(dst, n int, pkt *core.Packet) {
	t.s.RouteAfter(t.cl.LaneOf(dst), t.xferDelay(dst, n), func() {
		peer := t.peers[dst]
		if peer == nil {
			panic(fmt.Sprintf("cluster/shm: no endpoint for rank %d", dst))
		}
		peer.inbox = append(peer.inbox, pkt)
		peer.eng.Wake()
	})
}

// snapshot copies a payload into GC-owned storage for cross-lane delivery.
func snapshot(data []byte) []byte {
	s := make([]byte, len(data))
	copy(s, data)
	return s
}

// MaxEager implements core.Transport.
func (t *shmTransport) MaxEager() int { return t.eager }

// Send implements core.Transport. With no flow control the segment never
// queues: eager payloads ship with the envelope, larger ones open the
// RTS/CTS rendezvous so the payload lands straight in the posted buffer.
func (t *shmTransport) Send(p *sim.Proc, req *core.Request) {
	if req.Env.Count > t.eager {
		t.deliver(req.Env.Dest, 0, &core.Packet{Kind: core.PktRTS, Env: req.Env})
		return
	}
	t.deliver(req.Env.Dest, len(req.Buf), &core.Packet{Kind: core.PktEager, Env: req.Env, Data: snapshot(req.Buf)})
	t.eng.SendDone(req)
}

// Accept implements core.Transport: CTS back to the sender; the payload
// arrives as PktData carrying the receiver request id.
func (t *shmTransport) Accept(p *sim.Proc, msg *core.InMsg, req *core.Request) {
	t.deliver(msg.Env.Source, 0, &core.Packet{Kind: core.PktCTS, Env: msg.Env, ReqID: msg.Env.SendID, Handle: req.ID})
}

// SendPayload implements core.Transport: the CTS surfaced at the sender;
// burst the payload into the receiver's posted buffer.
func (t *shmTransport) SendPayload(p *sim.Proc, req *core.Request, pkt *core.Packet) {
	recvID, _ := pkt.Handle.(int64)
	t.deliver(req.Env.Dest, len(req.Buf), &core.Packet{Kind: core.PktData, Env: req.Env, ReqID: recvID, Data: snapshot(req.Buf)})
	t.eng.SendDone(req)
}

// Control implements core.Transport.
func (t *shmTransport) Control(p *sim.Proc, dst int, kind core.PacketKind, env core.Envelope) {
	t.deliver(dst, 0, &core.Packet{Kind: kind, Env: env, ReqID: env.SendID})
}

// Release implements core.Transport: the segment has no credit scheme, so
// freed bounce space needs no message back to the sender.
func (t *shmTransport) Release(p *sim.Proc, src int, n int) {}

// Poll implements core.Transport.
func (t *shmTransport) Poll(p *sim.Proc) *core.Packet {
	if t.inPos == len(t.inbox) {
		return nil
	}
	t.eng.Acct().Charge(p, core.CostProtocol, shmPollCost)
	pkt := t.inbox[t.inPos]
	t.inbox[t.inPos] = nil
	t.inPos++
	if t.inPos == len(t.inbox) {
		t.inbox = t.inbox[:0]
		t.inPos = 0
	}
	return pkt
}

// Pending implements core.Transport.
func (t *shmTransport) Pending() bool { return t.inPos < len(t.inbox) }

// ------------------------------------------------------------ RemoteMemory --
//
// One-sided operations bypass the mailbox entirely: the origin stores into
// (or reads from) the target window across the segment, the apply runs in
// delivery context on the target's lane, and the completion ack crosses
// back before done fires. RMA transfers are unordered within an epoch
// (fence/lock synchronization orders them), so they use the plain
// store-burst delay without the mailbox's FIFO clamp.

// rmaDelay is the unclamped store-burst delay for n bytes.
func (t *shmTransport) rmaDelay(n int) sim.Duration {
	return t.cl.Costs.ShmLatency + sim.Duration(n)*t.cl.Costs.ShmPerByte
}

// RMAPut implements core.RemoteMemory.
func (t *shmTransport) RMAPut(p *sim.Proc, dst, win, off int, data []byte, done func()) {
	snap := snapshot(data)
	home := t.cl.LaneOf(t.rank)
	t.s.RouteAfter(t.cl.LaneOf(dst), t.rmaDelay(len(snap)), func() {
		peer := t.peers[dst]
		peer.eng.Win(win).ApplyPut(off, snap)
		peer.s.RouteAfter(home, t.rmaDelay(0), done)
	})
}

// RMAGet implements core.RemoteMemory.
func (t *shmTransport) RMAGet(p *sim.Proc, dst, win, off int, buf []byte, done func()) {
	home := t.cl.LaneOf(t.rank)
	t.s.RouteAfter(t.cl.LaneOf(dst), t.rmaDelay(0), func() {
		peer := t.peers[dst]
		snap := make([]byte, len(buf))
		peer.eng.Win(win).ReadInto(off, snap)
		peer.s.RouteAfter(home, t.rmaDelay(len(snap)), func() {
			copy(buf, snap)
			done()
		})
	})
}

// RMAAccumulate implements core.RemoteMemory.
func (t *shmTransport) RMAAccumulate(p *sim.Proc, dst, win, off int, data []byte, op core.RMAOp, done func()) {
	snap := snapshot(data)
	home := t.cl.LaneOf(t.rank)
	t.s.RouteAfter(t.cl.LaneOf(dst), t.rmaDelay(len(snap)), func() {
		peer := t.peers[dst]
		peer.eng.Win(win).ApplyAccumulate(off, snap, op)
		peer.s.RouteAfter(home, t.rmaDelay(0), done)
	})
}
